package transit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := Generate("oahu", 0.06, 21)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGenerateFamilies(t *testing.T) {
	fams := GenerateFamilies()
	if len(fams) != 5 || fams[0] != "oahu" || fams[4] != "europe" {
		t.Fatalf("families = %v", fams)
	}
	for _, f := range fams {
		n, err := Generate(f, 0.03, 1)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if n.NumStations() == 0 {
			t.Fatalf("%s: empty network", f)
		}
	}
	if _, err := Generate("nowhere", 1, 0); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Generate("oahu", -1, 0); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestNetworkBasics(t *testing.T) {
	n := testNetwork(t)
	if n.Period() != 1440 {
		t.Fatalf("period = %d", n.Period())
	}
	s := n.Station(0)
	id, ok := n.StationByName(s.Name)
	if !ok || id != 0 {
		t.Fatalf("StationByName(%q) = %d,%v", s.Name, id, ok)
	}
	if _, ok := n.StationByName("no such station"); ok {
		t.Fatal("found nonexistent station")
	}
	if !strings.Contains(n.Stats(), "stations") {
		t.Fatalf("Stats = %q", n.Stats())
	}
	if n.FormatClock(495) != "08:15" {
		t.Fatal("FormatClock broken")
	}
	if v, err := ParseClock("08:15"); err != nil || v != 495 {
		t.Fatal("ParseClock broken")
	}
	if n.Preprocessed() {
		t.Fatal("fresh network claims preprocessing")
	}
}

func TestWriteReadNetworkRoundTrip(t *testing.T) {
	n := testNetwork(t)
	var sb strings.Builder
	if err := n.WriteTimetable(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStations() != n.NumStations() {
		t.Fatal("round trip changed station count")
	}
	// Same query answers.
	a1, err := n.EarliestArrival(0, 5, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.EarliestArrival(0, 5, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("round trip changed answers: %d vs %d", a1, a2)
	}
}

func TestEarliestArrivalAndProfileAgree(t *testing.T) {
	n := testNetwork(t)
	all, err := n.ProfileAll(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for dst := StationID(1); int(dst) < n.NumStations(); dst += 3 {
		for dep := Ticks(300); dep < 1440; dep += 333 {
			ea, err := n.EarliestArrival(0, dst, dep, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := all.EarliestArrival(dst, dep); got != ea {
				t.Fatalf("ProfileAll vs EarliestArrival differ at %d→%d dep %d: %d vs %d", 0, dst, dep, got, ea)
			}
			p, _, err := n.Profile(0, dst, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got := p.EarliestArrival(dep); got != ea {
				t.Fatalf("Profile vs EarliestArrival differ at %d→%d dep %d: %d vs %d", 0, dst, dep, got, ea)
			}
		}
	}
}

func TestProfileAPI(t *testing.T) {
	n := testNetwork(t)
	p, st, err := n.Profile(0, 7, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.SettledConnections <= 0 || st.QueueOps <= 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	conns := p.Connections()
	if len(conns) == 0 {
		t.Fatal("no connections in profile")
	}
	for i := 1; i < len(conns); i++ {
		if conns[i].Departure <= conns[i-1].Departure {
			t.Fatal("connections not strictly ordered by departure")
		}
		if conns[i].Arrival <= conns[i-1].Arrival {
			t.Fatal("reduced profile must have strictly increasing arrivals")
		}
	}
	cp, wait, err := p.NextDeparture(conns[0].Departure)
	if err != nil || wait != 0 || cp != conns[0] {
		t.Fatalf("NextDeparture at first departure: %+v wait %d err %v", cp, wait, err)
	}
	if p.TravelTime(conns[0].Departure) != conns[0].Arrival-conns[0].Departure {
		t.Fatal("TravelTime inconsistent with connection point")
	}
	if p.Empty() {
		t.Fatal("profile should not be empty")
	}
	// Self profile.
	self, _, err := n.Profile(3, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if self.EarliestArrival(100) != 100 || self.TravelTime(100) != 0 {
		t.Fatal("self profile must be identity")
	}
}

func TestPreprocessAcceleratesQueries(t *testing.T) {
	n := testNetwork(t)
	pre, ps, err := n.Preprocess(TransferSelection{Fraction: 0.10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Preprocessed() || n.Preprocessed() {
		t.Fatal("Preprocess must return a new preprocessed network, leaving the base untouched")
	}
	if ps.TransferStations <= 0 || ps.TableBytes <= 0 {
		t.Fatalf("preprocess stats: %+v", ps)
	}
	var base, accel int64
	for dst := StationID(1); int(dst) < n.NumStations(); dst += 5 {
		pb, sb, err := n.Profile(0, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pa, sa, err := pre.Profile(0, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base += sb.SettledConnections
		accel += sa.SettledConnections
		// Identical answers.
		for dep := Ticks(0); dep < 1440; dep += 181 {
			if pb.EarliestArrival(dep) != pa.EarliestArrival(dep) {
				t.Fatalf("preprocessing changed answer %d→%d at %d", 0, dst, dep)
			}
		}
	}
	if accel > base {
		t.Fatalf("preprocessing increased work: %d vs %d", accel, base)
	}
	// Selection by degree also works.
	pre2, ps2, err := n.Preprocess(TransferSelection{MinDegree: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pre2.Preprocessed() || ps2.TransferStations == 0 {
		t.Fatal("degree selection broken")
	}
	// Invalid selection.
	if _, _, err := n.Preprocess(TransferSelection{}, Options{}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestJourneyAPI(t *testing.T) {
	n := testNetwork(t)
	all, err := n.ProfileAll(0, Options{TrackJourneys: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for dst := StationID(1); int(dst) < n.NumStations() && !found; dst++ {
		p, err := all.To(dst)
		if err != nil || p.Empty() {
			continue
		}
		dep := Ticks(480)
		j, err := all.Journey(dst, dep)
		if err != nil {
			t.Fatalf("Journey to %d: %v", dst, err)
		}
		if len(j.Legs) == 0 {
			t.Fatal("journey has no legs")
		}
		if j.Legs[0].From != 0 {
			t.Fatalf("journey starts at %d, want 0", j.Legs[0].From)
		}
		if j.Legs[len(j.Legs)-1].To != dst {
			t.Fatalf("journey ends at %d, want %d", j.Legs[len(j.Legs)-1].To, dst)
		}
		if j.Transfers() != len(j.Legs)-1 {
			t.Fatal("Transfers inconsistent")
		}
		if j.String() == "" {
			t.Fatal("empty journey string")
		}
		// Arrival must match the profile.
		if got := j.Legs[len(j.Legs)-1].Arrival; got != p.EarliestArrival(dep) {
			t.Fatalf("journey arrives %d, profile says %d", got, p.EarliestArrival(dep))
		}
		// Legs are temporally consistent.
		for i := 1; i < len(j.Legs); i++ {
			if j.Legs[i].From != j.Legs[i-1].To {
				t.Fatal("legs not connected")
			}
		}
		found = true
	}
	if !found {
		t.Fatal("no reachable station found for journey test")
	}
	// Journeys require TrackJourneys.
	plain, err := n.ProfileAll(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Journey(1, 480); err == nil {
		t.Fatal("journey without tracking accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	n := testNetwork(t)
	if _, err := n.ProfileAll(0, Options{Partition: "zigzag"}); err == nil {
		t.Fatal("unknown partition accepted")
	}
	if _, err := n.ProfileAll(-1, Options{}); err == nil {
		t.Fatal("bad station accepted")
	}
	if _, err := n.EarliestArrival(0, 99999, 0, Options{}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, _, err := n.Profile(0, 99999, Options{}); err == nil {
		t.Fatal("bad target accepted by Profile")
	}
}

func TestPartitionNamesWork(t *testing.T) {
	n := testNetwork(t)
	for _, part := range []string{"", "equal-connections", "equal-time-slots", "k-means"} {
		all, err := n.ProfileAll(0, Options{Threads: 3, Partition: part})
		if err != nil {
			t.Fatalf("%q: %v", part, err)
		}
		if all.Stats().SettledConnections == 0 {
			t.Fatalf("%q: no work recorded", part)
		}
	}
}

func TestPreprocessingSaveLoad(t *testing.T) {
	n := testNetwork(t)
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.15}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := pre.SavePreprocessing(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := n.LoadPreprocessing(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Preprocessed() {
		t.Fatal("loaded network not preprocessed")
	}
	// Same answers and same work as the freshly preprocessed network.
	for dst := StationID(1); int(dst) < n.NumStations(); dst += 7 {
		pa, sa, err := pre.Profile(0, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pb, sb, err := loaded.Profile(0, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sa.SettledConnections != sb.SettledConnections {
			t.Fatalf("loaded table changes work: %d vs %d", sa.SettledConnections, sb.SettledConnections)
		}
		for dep := Ticks(0); dep < 1440; dep += 311 {
			if pa.EarliestArrival(dep) != pb.EarliestArrival(dep) {
				t.Fatalf("loaded table changes answers at %d→%d dep %d", 0, dst, dep)
			}
		}
	}
	// Saving without preprocessing fails.
	if err := n.SavePreprocessing(&strings.Builder{}); err == nil {
		t.Fatal("saving unpreprocessed network accepted")
	}
	// Loading garbage fails.
	if _, err := n.LoadPreprocessing(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage preprocessing accepted")
	}
}

func TestParetoPublicAPI(t *testing.T) {
	n := testNetwork(t)
	pareto, err := n.ProfileAllPareto(0, 4, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pareto.Source() != 0 || pareto.MaxTransfers() != 4 {
		t.Fatal("metadata wrong")
	}
	if pareto.Stats().SettledConnections <= 0 {
		t.Fatal("no work recorded")
	}
	all, err := n.ProfileAll(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for dst := StationID(1); int(dst) < n.NumStations(); dst += 4 {
		choices, err := pareto.Choices(dst, 480)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(choices); i++ {
			if choices[i].Arrival >= choices[i-1].Arrival || choices[i].Transfers <= choices[i-1].Transfers {
				t.Fatalf("frontier not strictly improving: %+v", choices)
			}
		}
		// The best Pareto arrival can never beat the unconstrained search.
		if len(choices) > 0 {
			best := choices[len(choices)-1].Arrival
			unconstrained := all.EarliestArrival(dst, 480)
			if best < unconstrained {
				t.Fatalf("Pareto arrival %d beats unconstrained %d at %d", best, unconstrained, dst)
			}
		}
		// Budgeted profile evaluates consistently with Choices.
		p4, err := pareto.To(dst, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(choices) > 0 && p4.EarliestArrival(480) != choices[len(choices)-1].Arrival {
			t.Fatalf("To(·,4) disagrees with Choices at %d", dst)
		}
	}
	if _, err := n.ProfileAllPareto(0, -1, Options{}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := pareto.Choices(99999, 480); err == nil {
		t.Fatal("bad station accepted")
	}
}

func TestJourneyConvenience(t *testing.T) {
	n := testNetwork(t)
	dep := Ticks(480)
	j, err := n.Journey(0, 9, dep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := n.EarliestArrival(0, 9, dep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Legs[len(j.Legs)-1].Arrival; got != arr {
		t.Fatalf("journey arrives %d, time-query says %d", got, arr)
	}
	if j.RequestedDeparture != dep {
		t.Fatal("requested departure not recorded")
	}
	if _, err := n.Journey(0, 99999, dep, Options{}); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestBinaryNetworkRoundTrip(t *testing.T) {
	n := testNetwork(t)
	var buf strings.Builder
	if err := n.WriteTimetableBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := n.EarliestArrival(0, 5, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.EarliestArrival(0, 5, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("binary round trip changed answers: %d vs %d", a1, a2)
	}
}

// A single Network must serve many goroutines concurrently; run with
// -race in CI.
func TestConcurrentQueries(t *testing.T) {
	n := testNetwork(t)
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.15}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers, sequential.
	type key struct {
		dst StationID
		dep Ticks
	}
	want := map[key]Ticks{}
	for dst := StationID(1); int(dst) < n.NumStations(); dst += 3 {
		for dep := Ticks(400); dep < 1200; dep += 400 {
			a, err := pre.EarliestArrival(0, dst, dep, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want[key{dst, dep}] = a
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k, expect := range want {
				var got Ticks
				if w%2 == 0 {
					a, err := pre.EarliestArrival(0, k.dst, k.dep, Options{})
					if err != nil {
						errs <- err
						return
					}
					got = a
				} else {
					p, _, err := pre.Profile(0, k.dst, Options{Threads: 2})
					if err != nil {
						errs <- err
						return
					}
					got = p.EarliestArrival(k.dep)
				}
				if got != expect {
					errs <- fmt.Errorf("worker %d: %v got %d want %d", w, k, got, expect)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFootpathsPublicAPI(t *testing.T) {
	tb := NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	c := tb.AddStation("C", 2)
	if err := tb.AddTrain("t1", []StationID{a, b}, 480, []Ticks{15}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddTrain("t2", []StationID{c, a}, 520, []Ticks{15}, 0); err != nil {
		t.Fatal(err)
	}
	tb.AddFootpath(b, c, 5)
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A → B by train, then on foot to C.
	arr, err := n.EarliestArrival(a, c, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 500 {
		t.Fatalf("arrival at C = %d, want 500 (495 + 5 walk)", arr)
	}
	// Profile to C accounts the walk; B→C is walk-only.
	p, _, err := n.Profile(b, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.WalkOnly() != 5 {
		t.Fatalf("WalkOnly = %d, want 5", p.WalkOnly())
	}
	if got := p.EarliestArrival(1000); got != 1005 {
		t.Fatalf("walk-only arrival = %d, want 1005", got)
	}
	if p.Empty() {
		t.Fatal("walkable profile must not be Empty")
	}
	if got := p.TravelTime(1000); got != 5 {
		t.Fatalf("walk-only travel time = %d, want 5", got)
	}
	// Footpaths survive serialization in both formats.
	var txt strings.Builder
	if err := n.WriteTimetable(&txt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(strings.NewReader(txt.String()))
	if err != nil {
		t.Fatal(err)
	}
	arr2, err := back.EarliestArrival(a, c, 480, Options{})
	if err != nil || arr2 != arr {
		t.Fatalf("text round trip changed footpath answer: %d vs %d (%v)", arr2, arr, err)
	}
	var bin strings.Builder
	if err := n.WriteTimetableBinary(&bin); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadNetwork(strings.NewReader(bin.String()))
	if err != nil {
		t.Fatal(err)
	}
	arr3, err := back2.EarliestArrival(a, c, 480, Options{})
	if err != nil || arr3 != arr {
		t.Fatalf("binary round trip changed footpath answer: %d vs %d (%v)", arr3, arr, err)
	}
	// Footpaths survive ApplyDelays.
	delayed, _, err := n.ApplyDelays(10, func(ci ConnectionInfo) bool { return ci.Train == "t1" })
	if err != nil {
		t.Fatal(err)
	}
	arr4, err := delayed.EarliestArrival(a, c, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr4 != 510 {
		t.Fatalf("delayed arrival = %d, want 510", arr4)
	}
	// ... and equally survive the incremental patch path: the patched
	// network shares the footpath structures and answers identically.
	patched, st, err := n.ApplyUpdates([]DelayOp{{Train: "t1", Delay: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ConnsRetimed != 1 {
		t.Fatalf("incremental delay retimed %d conns, want 1", st.ConnsRetimed)
	}
	arr5, err := patched.EarliestArrival(a, c, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr5 != 510 {
		t.Fatalf("incrementally delayed arrival = %d, want 510", arr5)
	}
	if p2, _, err := patched.Profile(b, c, Options{}); err != nil || p2.WalkOnly() != 5 {
		t.Fatalf("walk-only time lost under incremental patch: %v (%v)", p2.WalkOnly(), err)
	}
	// Cancelling the only train leaves the walk as the sole option.
	walked, _, err := patched.ApplyUpdates([]DelayOp{{Train: "t1", Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	if arr6, err := walked.EarliestArrival(b, c, 480, Options{}); err != nil || arr6 != 485 {
		t.Fatalf("walk after cancellation = %d (%v), want 485", arr6, err)
	}
}

func TestConnectionsAndDepartures(t *testing.T) {
	n := testNetwork(t)
	conns := n.Connections()
	if len(conns) != n.Timetable().NumConnections() {
		t.Fatal("Connections length mismatch")
	}
	c0 := conns[0]
	if c0.Train == "" || c0.From == c0.To || c0.Arr < c0.Dep {
		t.Fatalf("malformed connection info: %+v", c0)
	}
	deps, err := n.Departures(0)
	if err != nil {
		t.Fatal(err)
	}
	prev := Ticks(-1)
	for _, d := range deps {
		if d.From != 0 {
			t.Fatal("departure from wrong station")
		}
		if d.Dep < prev {
			t.Fatal("departures unsorted")
		}
		prev = d.Dep
	}
	if _, err := n.Departures(-3); err == nil {
		t.Fatal("bad station accepted")
	}
}

func TestLoadGTFSPublic(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"stops.txt": "stop_id,stop_name\nA,Alpha\nB,Beta\n",
		"trips.txt": "trip_id\nt1\n",
		"stop_times.txt": "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
			"t1,08:00:00,08:00:00,A,1\nt1,08:10:00,08:10:00,B,2\n",
	}
	for name, content := range files {
		if err := writeFileHelper(dir, name, content); err != nil {
			t.Fatal(err)
		}
	}
	n, err := LoadGTFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := n.EarliestArrival(0, 1, 470, Options{})
	if err != nil || arr != 490 {
		t.Fatalf("GTFS arrival = %d, %v", arr, err)
	}
	if _, err := LoadGTFS(t.TempDir()); err == nil {
		t.Fatal("empty GTFS dir accepted")
	}
}

func writeFileHelper(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func TestAllProfilesSource(t *testing.T) {
	n := testNetwork(t)
	all, err := n.ProfileAll(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Source() != 4 {
		t.Fatal("Source wrong")
	}
	if _, err := all.To(-1); err == nil {
		t.Fatal("bad target accepted by To")
	}
	pareto, err := n.ProfileAllPareto(4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pareto.To(-1, 2); err == nil {
		t.Fatal("bad target accepted by pareto To")
	}
}

func TestProfileAllWindowPublic(t *testing.T) {
	n := testNetwork(t)
	from, _ := ParseClock("07:00")
	to, _ := ParseClock("10:00")
	win, err := n.ProfileAllWindow(0, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := n.ProfileAll(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if win.Stats().SettledConnections >= full.Stats().SettledConnections {
		t.Fatal("window search did not reduce work")
	}
	p, err := win.To(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Connections() {
		if c.Departure < from || c.Departure > to {
			t.Fatalf("connection departs %d outside window", c.Departure)
		}
	}
	if _, err := n.ProfileAllWindow(0, to, from, Options{}); err == nil {
		t.Fatal("inverted window accepted")
	}
}

package transit

import (
	"io"
	"time"

	"transit/internal/graph"
	"transit/internal/snapshot"
)

// SnapshotState is the live-serving provenance carried by a network
// snapshot: which update epoch the network represents and when that epoch
// was created. A freshly built network is epoch 0; internal/live bumps the
// epoch per applied delay batch and persists it here so a restarted server
// resumes where it left off.
type SnapshotState struct {
	Epoch   uint64
	Created time.Time
}

// WriteSnapshot serializes the complete query-ready network — timetable,
// station graph, and the distance table if the network is preprocessed —
// into the versioned snapshot container (docs/SNAPSHOT_FORMAT.md). A server
// booting from the result (LoadSnapshot, tpserver -snapshot) skips
// generation, validation and preprocessing entirely.
func (n *Network) WriteSnapshot(w io.Writer) error {
	return n.WriteSnapshotState(w, SnapshotState{})
}

// WriteSnapshotState is WriteSnapshot with explicit provenance: the given
// epoch and creation time are stored in the snapshot's live-state section.
// internal/live.Registry.Persist uses this to checkpoint the current patched
// epoch.
func (n *Network) WriteSnapshotState(w io.Writer, st SnapshotState) error {
	return snapshot.Write(w, &snapshot.Data{
		TT:      n.tt,
		SG:      n.sg,
		Table:   n.table,
		Epoch:   st.Epoch,
		Created: st.Created,
		// Patchedness survives persistence even without live provenance
		// (epoch 0), so a restored network keeps refusing stale tables.
		Patched: n.patched,
	})
}

// LoadSnapshot reconstructs a query-ready Network from a snapshot written by
// WriteSnapshot. The timetable, station graph and distance table are decoded
// from their checksummed sections; only the (cheap) time-dependent graph is
// rebuilt. The returned state reports the snapshot's epoch and creation
// time. A network restored from a patched snapshot (epoch > 0, or written
// from a patched network) stays patched, so — exactly like the result of
// ApplyUpdates — it refuses LoadPreprocessing of a table saved for the
// original times (its own embedded table, built after the patches, is
// attached as-is).
func LoadSnapshot(r io.Reader) (*Network, *SnapshotState, error) {
	d, err := snapshot.Read(r)
	if err != nil {
		return nil, nil, err
	}
	n := &Network{
		tt:      d.TT,
		g:       graph.Build(d.TT),
		sg:      d.SG,
		byName:  make(map[string]StationID, len(d.TT.Stations)),
		table:   d.Table,
		patched: d.Patched,
	}
	for _, s := range d.TT.Stations {
		if _, dup := n.byName[s.Name]; !dup {
			n.byName[s.Name] = s.ID
		}
	}
	return n, &SnapshotState{Epoch: d.Epoch, Created: d.Created}, nil
}

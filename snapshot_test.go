package transit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleQueries compares earliest-arrival and profile answers of two
// networks over a grid of station pairs and departure times; they must be
// identical — the snapshot round-trip correctness bar.
func sampleQueries(t *testing.T, want, got *Network, label string) {
	t.Helper()
	if want.NumStations() != got.NumStations() {
		t.Fatalf("%s: station count %d vs %d", label, got.NumStations(), want.NumStations())
	}
	nS := want.NumStations()
	deps := []Ticks{0, 7 * 60, 12*60 + 30, 23 * 60}
	step := nS/7 + 1
	for from := 0; from < nS; from += step {
		for to := nS - 1; to >= 0; to -= step {
			src, dst := StationID(from), StationID(to)
			for _, dep := range deps {
				a1, err1 := want.EarliestArrival(src, dst, dep, Options{})
				a2, err2 := got.EarliestArrival(src, dst, dep, Options{})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: EarliestArrival(%d,%d,%d) errors diverge: %v vs %v", label, src, dst, dep, err1, err2)
				}
				if a1 != a2 {
					t.Fatalf("%s: EarliestArrival(%d,%d,%d) = %d, want %d", label, src, dst, dep, a2, a1)
				}
			}
			p1, _, err1 := want.Profile(src, dst, Options{})
			p2, _, err2 := got.Profile(src, dst, Options{})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: Profile(%d,%d) errors diverge: %v vs %v", label, src, dst, err1, err2)
			}
			if err1 != nil {
				continue
			}
			c1, c2 := p1.Connections(), p2.Connections()
			if len(c1) != len(c2) {
				t.Fatalf("%s: Profile(%d,%d) has %d connections, want %d", label, src, dst, len(c2), len(c1))
			}
			for i := range c1 {
				if c1[i] != c2[i] {
					t.Fatalf("%s: Profile(%d,%d) connection %d = %+v, want %+v", label, src, dst, i, c2[i], c1[i])
				}
			}
		}
	}
}

func TestSnapshotRoundTripQueries(t *testing.T) {
	n, err := Generate("oahu", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.1}, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pre.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, st, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 {
		t.Errorf("epoch = %d, want 0", st.Epoch)
	}
	if !loaded.Preprocessed() {
		t.Fatal("loaded network lost its distance table")
	}
	sampleQueries(t, pre, loaded, "preprocessed")
}

func TestSnapshotRoundTripUnpreprocessed(t *testing.T) {
	n, err := Generate("losangeles", 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Preprocessed() {
		t.Fatal("unpreprocessed network gained a table")
	}
	sampleQueries(t, n, loaded, "unpreprocessed")
}

// TestSnapshotRoundTripPatched is the round-trip bar on a patched network:
// delays and cancellations applied via ApplyUpdates must survive
// persistence byte-exactly, including the live epoch.
func TestSnapshotRoundTripPatched(t *testing.T) {
	n, err := Generate("oahu", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	patched, st1, err := n.ApplyUpdates([]DelayOp{
		{Routes: []int{0}, Delay: 17},
		{Routes: []int{1}, Cancel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st1.ConnsRetimed == 0 || st1.ConnsCancelled == 0 {
		t.Fatalf("update did nothing: %+v", st1)
	}
	created := time.Unix(1700000000, 0).UTC()
	var buf bytes.Buffer
	if err := patched.WriteSnapshotState(&buf, SnapshotState{Epoch: 3, Created: created}); err != nil {
		t.Fatal(err)
	}
	loaded, st, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 || !st.Created.Equal(created) {
		t.Errorf("state = %+v, want epoch 3 at %v", st, created)
	}
	sampleQueries(t, patched, loaded, "patched")

	// Cancellation survives: every cancelled connection is still cancelled.
	wantConns, gotConns := patched.Connections(), loaded.Connections()
	if len(wantConns) != len(gotConns) {
		t.Fatalf("connection count %d, want %d", len(gotConns), len(wantConns))
	}
	cancelled := 0
	for i := range wantConns {
		if wantConns[i].Cancelled != gotConns[i].Cancelled {
			t.Fatalf("connection %d cancelled = %v, want %v", i, gotConns[i].Cancelled, wantConns[i].Cancelled)
		}
		if gotConns[i].Cancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no cancelled connections survived the round trip")
	}

	// A network restored at epoch > 0 is patched: stale preprocessing must
	// be rejected just like on the original patched network.
	var table bytes.Buffer
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.SavePreprocessing(&table); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.LoadPreprocessing(bytes.NewReader(table.Bytes())); err == nil {
		t.Fatal("snapshot-restored patched network accepted a stale table")
	}

	// Patchedness survives even a WriteSnapshot without live provenance
	// (epoch 0): the patched flag travels in the live-state section.
	var noState bytes.Buffer
	if err := patched.WriteSnapshot(&noState); err != nil {
		t.Fatal(err)
	}
	loaded0, st0, err := LoadSnapshot(&noState)
	if err != nil {
		t.Fatal(err)
	}
	if st0.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", st0.Epoch)
	}
	if _, err := loaded0.LoadPreprocessing(bytes.NewReader(table.Bytes())); err == nil {
		t.Fatal("epoch-0 snapshot of a patched network accepted a stale table")
	}
}

// TestLoadPreprocessingRejectsPatched is the regression test for the stale
// distance-table bug: attaching a table saved before a dynamic update would
// silently serve travel times of the old schedule.
func TestLoadPreprocessingRejectsPatched(t *testing.T) {
	n, err := Generate("oahu", 0.06, 21)
	if err != nil {
		t.Fatal(err)
	}
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var saved bytes.Buffer
	if err := pre.SavePreprocessing(&saved); err != nil {
		t.Fatal(err)
	}

	patched, _, err := n.ApplyUpdates([]DelayOp{{Delay: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if patched.Preprocessed() {
		t.Fatal("patched network still preprocessed")
	}
	_, err = patched.LoadPreprocessing(bytes.NewReader(saved.Bytes()))
	if err == nil {
		t.Fatal("patched network accepted a stale preprocessing table")
	}
	if !strings.Contains(err.Error(), "patched") {
		t.Fatalf("error %q does not explain the patched-network cause", err)
	}

	// The full-rebuild path is patched, too.
	delayed, shifted, err := n.ApplyDelays(5, func(ConnectionInfo) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if shifted == 0 {
		t.Fatal("ApplyDelays shifted nothing")
	}
	if _, err := delayed.LoadPreprocessing(bytes.NewReader(saved.Bytes())); err == nil {
		t.Fatal("ApplyDelays result accepted a stale preprocessing table")
	}

	// Patchedness is sticky: a no-op ApplyDelays on a patched network must
	// not launder it back into accepting stale tables.
	laundered, shifted, err := patched.ApplyDelays(5, func(ConnectionInfo) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if shifted != 0 {
		t.Fatalf("no-op filter shifted %d connections", shifted)
	}
	if _, err := laundered.LoadPreprocessing(bytes.NewReader(saved.Bytes())); err == nil {
		t.Fatal("no-op ApplyDelays laundered the patched flag away")
	}

	// Re-preprocessing a patched network remains allowed and yields a table
	// that can serve queries.
	repre, _, err := patched.Preprocess(TransferSelection{Fraction: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !repre.Preprocessed() {
		t.Fatal("re-preprocess did not attach a table")
	}
	// And an unpatched network still accepts its own saved table.
	if _, err := n.LoadPreprocessing(bytes.NewReader(saved.Bytes())); err != nil {
		t.Fatalf("unpatched network rejected its own table: %v", err)
	}
}

// TestSnapshotBootFasterThanPreprocessing measures the tentpole's point:
// booting from a snapshot must beat rebuilding with preprocessing by a wide
// margin. The CI-safe assertion is 3x; the README reports the (much larger)
// ratio on the benchmark network.
func TestSnapshotBootFasterThanPreprocessing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	n, err := Generate("oahu", 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	sel := TransferSelection{Fraction: 0.05}

	rebuildStart := time.Now()
	pre, _, err := n.Preprocess(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rebuild := time.Since(rebuildStart)

	var buf bytes.Buffer
	if err := pre.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loadStart := time.Now()
	loaded, _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	load := time.Since(loadStart)
	if !loaded.Preprocessed() {
		t.Fatal("snapshot lost the table")
	}
	t.Logf("preprocess: %v, snapshot load: %v (%.0fx)", rebuild, load, float64(rebuild)/float64(load))
	if load*3 > rebuild {
		t.Errorf("snapshot load %v not at least 3x faster than preprocessing %v", load, rebuild)
	}
}

// Package transit is a Go library for computing best connections in public
// transportation networks. It implements the parallel self-pruning
// connection-setting profile-search algorithm of Delling, Katz and Pajor
// ("Parallel Computation of Best Connections in Public Transportation
// Networks", IPDPS 2010) together with the station-to-station accelerations
// of that paper: stopping criterion, distance-table pruning over transfer
// stations, and target pruning.
//
// The central object is a Network, built from a timetable (loaded from
// GTFS, the library's own text format, or the synthetic generator). All
// queries run through one unified, context-aware entry point:
//
//	res, err := net.Plan(ctx, transit.Request{Kind: transit.KindProfile, From: a, To: b})
//
// Request kinds cover the paper's queries and their batch forms —
// earliest-arrival (time-query), journey, station-to-station profile,
// one-to-all (optionally windowed), multi-criteria pareto, and matrix
// (many-to-many earliest arrivals). Plan honors ctx cancellation and
// deadlines inside the search loops and reports failures as typed *Error
// values with machine-readable codes; cmd/tpserver exposes the same
// requests over the versioned /v1 JSON API (docs/API.md).
//
// Convenience wrappers remain for the common shapes:
//
//   - EarliestArrival: one departure time, one target (a "time-query").
//   - Profile: all best connections of the whole period to one target.
//   - ProfileAll: all best connections to every station in one run — the
//     paper's one-to-all profile search, parallelizable over goroutines.
//   - Journey, ProfileAllWindow, ProfileAllPareto: itineraries, interval
//     and multi-criteria searches.
//
// Preprocess accelerates repeated station-to-station queries with a
// distance table between automatically selected transfer stations.
//
// # Dynamic updates
//
// Networks are immutable; delay feeds produce new networks. ApplyDelays is
// the simple path (full rebuild + re-validation); ApplyUpdates is the
// incremental path: a batch of train-level DelayOps (delays and
// cancellations, selected by train name, route class and/or departure
// window) patches only the touched connection and ride-edge slices,
// sharing everything else with the receiver, so in-flight queries on the
// old network stay valid. That snapshot discipline is what internal/live
// builds on to serve delay ingestion under live traffic (cmd/tpserver's
// POST /delays): queries always read one consistent version, updates swap
// the next version in atomically. Updates invalidate a distance table —
// the patched network returns Preprocessed() == false — so serving systems
// re-preprocess (asynchronously, in live.Registry) or run unpruned.
package transit

import (
	"errors"
	"fmt"
	"io"

	"transit/internal/core"
	"transit/internal/dtable"
	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/gtfs"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Ticks is a point in time or duration in timetable ticks (minutes by
// default). See FormatClock/ParseClock for rendering.
type Ticks = timeutil.Ticks

// Infinity is the "unreachable" sentinel for times and durations.
const Infinity = timeutil.Infinity

// StationID identifies a station of a Network.
type StationID = timetable.StationID

// Station describes a stop of the network.
type Station = timetable.Station

// Network is an immutable, query-ready public transportation network. All
// methods are safe for concurrent use; per-query state lives on the stack
// of each call.
type Network struct {
	tt *timetable.Timetable
	g  *graph.Graph
	sg *stationgraph.Graph

	byName map[string]StationID

	// Preprocessing artifacts (nil until Preprocess is called). A Network
	// with preprocessing is still immutable: Preprocess returns a new
	// wrapper sharing the base data.
	table *dtable.Table

	// patched marks networks produced by dynamic updates (ApplyUpdates,
	// ApplyDelays, or a snapshot restored at epoch > 0): their times differ
	// from what any previously saved distance table was built for, so
	// LoadPreprocessing refuses to attach one. Preprocess (which recomputes)
	// remains available.
	patched bool
}

// NewNetwork builds the query structures (time-dependent graph of the
// realistic model, station graph) for a validated timetable.
func NewNetwork(tt *timetable.Timetable) *Network {
	n := &Network{
		tt:     tt,
		g:      graph.Build(tt),
		sg:     stationgraph.Build(tt),
		byName: make(map[string]StationID, len(tt.Stations)),
	}
	for _, s := range tt.Stations {
		if _, dup := n.byName[s.Name]; !dup {
			n.byName[s.Name] = s.ID
		}
	}
	return n
}

// LoadGTFS reads a GTFS feed directory into a Network.
func LoadGTFS(dir string) (*Network, error) {
	tt, err := gtfs.Load(dir)
	if err != nil {
		return nil, err
	}
	return NewNetwork(tt), nil
}

// ReadNetwork parses a timetable in either of the library's formats (text
// or binary, auto-detected by the leading magic) into a Network.
func ReadNetwork(r io.Reader) (*Network, error) {
	tt, err := timetable.ReadAuto(r)
	if err != nil {
		return nil, err
	}
	return NewNetwork(tt), nil
}

// WriteTimetable serializes the network's timetable in the library's text
// format (human-readable, diffable).
func (n *Network) WriteTimetable(w io.Writer) error { return timetable.Write(w, n.tt) }

// WriteTimetableBinary serializes the network's timetable in the compact
// binary format, which loads several times faster for large networks.
func (n *Network) WriteTimetableBinary(w io.Writer) error { return timetable.WriteBinary(w, n.tt) }

// Generate builds a synthetic network. Family is one of "oahu",
// "losangeles", "washington", "germany", "europe" — structural analogues of
// the paper's five evaluation inputs (see DESIGN.md). Scale 1.0 is the
// default laptop-friendly size; seed 0 picks a per-family default.
func Generate(family string, scale float64, seed int64) (*Network, error) {
	cfg, err := gen.FamilyConfig(gen.Family(family), scale, seed)
	if err != nil {
		return nil, err
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return NewNetwork(tt), nil
}

// GenerateFamilies lists the synthetic family names in the paper's order.
func GenerateFamilies() []string {
	fams := gen.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = string(f)
	}
	return out
}

// Timetable exposes the underlying validated timetable.
func (n *Network) Timetable() *timetable.Timetable { return n.tt }

// NumStations returns the number of stations.
func (n *Network) NumStations() int { return n.tt.NumStations() }

// Station returns a station by ID.
func (n *Network) Station(id StationID) Station { return n.tt.Stations[id] }

// StationByName finds a station by exact name.
func (n *Network) StationByName(name string) (StationID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Period returns the timetable period π (1440 for minute-of-day networks).
func (n *Network) Period() Ticks { return n.tt.Period.Len() }

// FormatClock renders an absolute tick value as a clock time.
func (n *Network) FormatClock(t Ticks) string { return n.tt.Period.FormatClock(t) }

// ParseClock parses "HH:MM" (or "D:HH:MM") into ticks.
func ParseClock(s string) (Ticks, error) { return timeutil.ParseClock(s) }

// Stats summarizes the network.
func (n *Network) Stats() string {
	return fmt.Sprintf("%v; graph: %v", n.tt.Stats(), n.g.Stats())
}

// TransferSelection names a transfer-station selection strategy for
// Preprocess.
type TransferSelection struct {
	// Fraction selects the top fraction (0 < f ≤ 1) of stations by
	// contraction importance (the paper's contraction strategy).
	Fraction float64
	// MinDegree, when > 0, instead selects all stations with station-graph
	// degree greater than this value (the paper's "deg > k" strategy).
	MinDegree int
}

// Preprocess computes a distance table between transfer stations selected
// by the given strategy, returning a new Network that shares all base data
// and answers station-to-station queries with the Section 4 prunings.
// Preprocessing cost is reported through PreprocessStats.
//
// The table is built with repair provenance, so later dynamic updates can
// be absorbed incrementally with Repreprocess instead of re-running the
// full preprocessing.
func (n *Network) Preprocess(sel TransferSelection, opt Options) (*Network, *PreprocessStats, error) {
	var marked []bool
	switch {
	case sel.MinDegree > 0:
		marked = n.sg.SelectByDegree(sel.MinDegree)
	case sel.Fraction > 0 && sel.Fraction <= 1:
		keep := int(float64(n.tt.NumStations()) * sel.Fraction)
		if keep < 1 {
			keep = 1
		}
		marked = n.sg.SelectByContraction(keep)
	default:
		return nil, nil, fmt.Errorf("transit: invalid transfer selection %+v", sel)
	}
	pre, err := core.BuildDistanceTable(n.g, marked, opt.core(), opt.sourceParallelism(), true)
	if err != nil {
		return nil, nil, err
	}
	n2 := *n
	n2.table = pre.Table
	return &n2, n.preprocessStats(pre), nil
}

func (n *Network) preprocessStats(pre *core.PreprocessResult) *PreprocessStats {
	return &PreprocessStats{
		TransferStations: pre.Table.NumTransfer(),
		Elapsed:          pre.Elapsed,
		TableBytes:       pre.SizeBytes,
		ProvenanceBytes:  pre.ProvenanceBytes,
		Rows:             pre.Rows,
		RowsRepaired:     pre.RowsRepaired,
		DirtyByUsed:      pre.DirtyByUsed,
		DirtyBySeed:      pre.DirtyBySeed,
		DirtyByArc:       pre.DirtyByArc,
		RowsWindowed:     pre.RowsWindowed,
		FullRebuild:      pre.FullRebuild,
		Fallback:         pre.Fallback,
	}
}

// RepairMaxDirtyDefault is the dirty-row fraction above which Repreprocess
// abandons an incremental repair for a full rebuild (recomputing most rows
// through the repair path costs the same as a rebuild but would leave the
// table derived; the rebuild also refreshes provenance).
const RepairMaxDirtyDefault = 0.30

// Repreprocess recomputes the distance table of this (updated) network
// incrementally: base is a previously preprocessed network of the same
// lineage whose table carries repair provenance, and touched is the
// accumulated TouchedConn set separating base's schedule from n's (one
// batch's UpdateStats.Touched, or several composed with MergeTouched).
// Only table rows the updates can affect are recomputed; the repaired
// table answers every query exactly like a from-scratch Preprocess of n.
//
// When an incremental repair is not possible — nil or unpreprocessed base,
// base table without provenance (e.g. loaded from a legacy file), a base
// that is itself repaired, or a dirty fraction above Options.RepairMaxDirty
// — Repreprocess transparently falls back to a full rebuild (using sel
// when the base provides no transfer set) and reports it in the stats.
// Repaired tables cannot serve as a future repair base (their kept rows'
// provenance describes the pre-update schedule), so callers keep the last
// fully built network as base and accumulate touches against it; full
// rebuilds (FullRebuild in the stats) establish a new base.
func (n *Network) Repreprocess(base *Network, touched []TouchedConn, sel TransferSelection, opt Options) (*Network, *PreprocessStats, error) {
	if base == nil || base.table == nil {
		pre, ps, err := n.Preprocess(sel, opt)
		if err != nil {
			return nil, nil, err
		}
		ps.Fallback = "no preprocessed base network"
		return pre, ps, nil
	}
	dt := make([]dtable.TouchedConn, len(touched))
	for i, tc := range touched {
		dt[i] = dtable.TouchedConn{
			Conn:      timetable.ConnID(tc.Conn),
			Train:     timetable.TrainID(tc.Train),
			Route:     timetable.RouteID(tc.Route),
			From:      tc.From,
			OldDep:    tc.OldDep,
			NewDep:    tc.NewDep,
			Cancelled: tc.Cancelled,
		}
	}
	// Tighten the improvement arcs against the base schedule: a moved
	// departure dominated by a same-edge alternative cannot improve any
	// journey, which is what keeps small batches from dirtying whole rows
	// on high-frequency routes.
	dt = core.RefineTouched(base.g, dt)
	maxDirty := opt.RepairMaxDirty
	if maxDirty == 0 {
		maxDirty = RepairMaxDirtyDefault
	}
	pre, err := core.RepairDistanceTable(n.g, base.table, dt, opt.core(), opt.sourceParallelism(), maxDirty)
	if errors.Is(err, dtable.ErrRepairFallback) {
		// Full rebuild under the *configured* selection — also the moment a
		// changed selection (e.g. a new -preprocess flag after a restart
		// from a snapshot) takes effect.
		reason := err.Error()
		full, ps, err := n.Preprocess(sel, opt)
		if err != nil {
			return nil, nil, err
		}
		ps.Fallback = reason
		return full, ps, nil
	}
	if err != nil {
		return nil, nil, err
	}
	n2 := *n
	n2.table = pre.Table
	return &n2, n.preprocessStats(pre), nil
}

// Preprocessed reports whether this Network carries a distance table.
func (n *Network) Preprocessed() bool { return n.table != nil }

// TableRepairable reports whether the network's distance table can serve as
// the base of an incremental Repreprocess: it must carry repair provenance
// and not itself be the product of a repair.
func (n *Network) TableRepairable() bool {
	return n.table != nil && n.table.HasProvenance()
}

// SavePreprocessing serializes the network's distance table so that the
// (expensive) preprocessing survives restarts. The network must have been
// preprocessed.
func (n *Network) SavePreprocessing(w io.Writer) error {
	if n.table == nil {
		return fmt.Errorf("transit: network has no preprocessing to save")
	}
	return dtable.Write(w, n.table, n.tt.NumStations())
}

// LoadPreprocessing attaches a previously saved distance table, returning a
// new preprocessed Network sharing the base data. The table must have been
// built for a network with the same station count; loading a table from a
// different network yields wrong answers, so prefer saving/loading network
// and table together (WriteSnapshot stores both in one checksummed file).
//
// A network patched by dynamic updates (ApplyUpdates/ApplyDelays) rejects
// saved tables: their entries are travel times of the original schedule,
// which the patches changed. Re-preprocess instead, or boot from a snapshot
// that carries a table built after the patches.
func (n *Network) LoadPreprocessing(r io.Reader) (*Network, error) {
	if n.patched {
		return nil, fmt.Errorf("transit: cannot load preprocessing into a dynamically patched network: " +
			"the saved table was built for the original schedule; call Preprocess to rebuild it " +
			"(or load a snapshot that embeds a post-update table)")
	}
	t, err := dtable.Read(r, n.tt.NumStations())
	if err != nil {
		return nil, err
	}
	n2 := *n
	n2.table = t
	return &n2, nil
}

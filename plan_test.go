package transit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"transit/internal/core"
)

// cancelNetwork returns a network big enough that profile and pareto
// searches run long enough (hundreds of microseconds to milliseconds) for
// a mid-flight cancellation to land inside the settle loops. Cached across
// tests; queries never mutate a Network.
var cancelNetwork = sync.OnceValues(func() (*Network, error) {
	return Generate("oahu", 0.35, 7)
})

// planPairs yields deterministic station pairs spread over the network.
func planPairs(n *Network, count int) [][2]StationID {
	ns := n.NumStations()
	out := make([][2]StationID, 0, count)
	for i := 0; i < count; i++ {
		src := StationID((i * 31) % ns)
		dst := StationID((i*17 + 5) % ns)
		if src == dst {
			dst = StationID((int(dst) + 1) % ns)
		}
		out = append(out, [2]StationID{src, dst})
	}
	return out
}

// TestPlanEarliestArrivalEquivalence pins Plan's earliest-arrival path to
// the direct core time-query it replaced (and to the legacy wrapper, which
// now delegates).
func TestPlanEarliestArrivalEquivalence(t *testing.T) {
	n := testNetwork(t)
	for _, pair := range planPairs(n, 24) {
		for _, dep := range []Ticks{0, 445, 480, 1100} {
			res, err := n.Plan(context.Background(), Request{
				Kind: KindEarliestArrival, From: pair[0], To: pair[1], Depart: dep,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Arrival()
			if err != nil {
				t.Fatal(err)
			}
			tq, err := core.TimeQuery(n.g, pair[0], dep, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := tq.StationArrival(pair[1]); got != want {
				t.Fatalf("%d→%d@%d: Plan %d, core time-query %d", pair[0], pair[1], dep, got, want)
			}
			legacy, err := n.EarliestArrival(pair[0], pair[1], dep, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != legacy {
				t.Fatalf("%d→%d@%d: Plan %d, legacy wrapper %d", pair[0], pair[1], dep, got, legacy)
			}
		}
	}
}

// TestPlanProfileEquivalence pins Plan's station-to-station path to the
// direct core query, on the plain and the preprocessed network.
func TestPlanProfileEquivalence(t *testing.T) {
	plain := testNetwork(t)
	pre, _, err := plain.Preprocess(TransferSelection{Fraction: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range map[string]*Network{"plain": plain, "preprocessed": pre} {
		env := core.QueryEnv{Graph: n.g}
		if n.table != nil {
			env.StationGraph = n.sg
			env.Table = n.table
		}
		for _, pair := range planPairs(n, 16) {
			res, err := n.Plan(context.Background(), Request{Kind: KindProfile, From: pair[0], To: pair[1]})
			if err != nil {
				t.Fatal(err)
			}
			p, err := res.Profile()
			if err != nil {
				t.Fatal(err)
			}
			sres, err := core.StationToStation(env, pair[0], pair[1], core.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fn, err := sres.Profile()
			if err != nil {
				t.Fatal(err)
			}
			want := fn.Points()
			got := p.Connections()
			if len(got) != len(want) {
				t.Fatalf("%s %d→%d: %d connections, core says %d", name, pair[0], pair[1], len(got), len(want))
			}
			for i := range got {
				if got[i].Departure != want[i].Dep || got[i].Arrival != want[i].Arr() {
					t.Fatalf("%s %d→%d: point %d = %+v, core says (%d,%d)",
						name, pair[0], pair[1], i, got[i], want[i].Dep, want[i].Arr())
				}
			}
			if p.WalkOnly() != sres.WalkOnly {
				t.Fatalf("%s %d→%d: walk %d vs %d", name, pair[0], pair[1], p.WalkOnly(), sres.WalkOnly)
			}
		}
	}
}

// TestPlanOneToAllEquivalence pins Plan's one-to-all path (full period and
// windowed) to the direct core searches.
func TestPlanOneToAllEquivalence(t *testing.T) {
	n := testNetwork(t)
	src := StationID(3)
	windows := []*Window{nil, {From: 420, To: 600}}
	for _, w := range windows {
		res, err := n.Plan(context.Background(), Request{Kind: KindOneToAll, From: src, Window: w})
		if err != nil {
			t.Fatal(err)
		}
		all, err := res.All()
		if err != nil {
			t.Fatal(err)
		}
		var want *core.ProfileResult
		if w == nil {
			want, err = core.OneToAll(n.g, src, core.Options{})
		} else {
			want, err = core.OneToAllWindow(n.g, src, w.From, w.To, core.Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < n.NumStations(); s++ {
			st := StationID(s)
			for _, dep := range []Ticks{430, 500, 590} {
				if got, wantArr := all.EarliestArrival(st, dep), want.EarliestArrival(st, dep); got != wantArr {
					t.Fatalf("window %v, station %d @%d: %d vs core %d", w, s, dep, got, wantArr)
				}
			}
		}
	}
}

// TestPlanJourneyEquivalence pins Plan's journey path to the legacy
// construction (one-to-all with parent tracking, then extraction).
func TestPlanJourneyEquivalence(t *testing.T) {
	n := testNetwork(t)
	found := 0
	for _, pair := range planPairs(n, 12) {
		res, err := n.Plan(context.Background(), Request{
			Kind: KindJourney, From: pair[0], To: pair[1], Depart: 480,
		})
		if err != nil {
			if ErrorCodeOf(err) == CodeUnreachable {
				continue
			}
			t.Fatal(err)
		}
		j, err := res.Journey()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.OneToAll(n.g, pair[0], core.Options{TrackParents: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&AllProfiles{n: n, res: pr}).Journey(pair[1], 480)
		if err != nil {
			t.Fatal(err)
		}
		if j.String() != want.String() || j.Transfers() != want.Transfers() {
			t.Fatalf("%d→%d: Plan journey %q, legacy path %q", pair[0], pair[1], j, want)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no reachable journey pair in the sample")
	}
}

// TestPlanParetoEquivalence pins Plan's pareto path to the direct core
// multi-criteria search.
func TestPlanParetoEquivalence(t *testing.T) {
	n := testNetwork(t)
	src := StationID(2)
	res, err := n.Plan(context.Background(), Request{Kind: KindPareto, From: src, MaxTransfers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := res.Pareto()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.OneToAllPareto(n.g, src, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n.NumStations(); s++ {
		st := StationID(s)
		got, err := pp.Choices(st, 480)
		if err != nil {
			t.Fatal(err)
		}
		wantSet, err := want.ParetoSet(st, 480)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantSet) {
			t.Fatalf("station %d: %d choices vs core %d", s, len(got), len(wantSet))
		}
		for i := range got {
			if got[i].Transfers != wantSet[i].Transfers || got[i].Arrival != wantSet[i].Arrival {
				t.Fatalf("station %d choice %d: %+v vs core %+v", s, i, got[i], wantSet[i])
			}
		}
	}
}

// TestPlanMatrix checks the batch kind cell-by-cell against the scalar
// earliest-arrival query, sequentially and with row parallelism.
func TestPlanMatrix(t *testing.T) {
	n := testNetwork(t)
	ns := n.NumStations()
	sources := []StationID{0, 3, 7, StationID(11 % ns), StationID(ns - 1)}
	targets := []StationID{1, 5, 7, StationID(13 % ns)}
	for _, threads := range []int{1, 3} {
		res, err := n.Plan(context.Background(), Request{
			Kind: KindMatrix, Sources: sources, Targets: targets, Depart: 495,
			Options: Options{Threads: threads},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := res.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != len(sources) {
			t.Fatalf("threads=%d: %d rows, want %d", threads, len(m), len(sources))
		}
		for i, src := range sources {
			if len(m[i]) != len(targets) {
				t.Fatalf("threads=%d: row %d has %d cells, want %d", threads, i, len(m[i]), len(targets))
			}
			for j, dst := range targets {
				want, err := n.EarliestArrival(src, dst, 495, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if m[i][j] != want {
					t.Fatalf("threads=%d: cell (%d,%d) = %d, scalar query says %d", threads, i, j, m[i][j], want)
				}
			}
		}
	}
}

// TestPlanValidationCodes walks the request-validation catalogue: every
// malformed request must fail with its documented machine-readable code.
func TestPlanValidationCodes(t *testing.T) {
	n := testNetwork(t)
	ns := StationID(n.NumStations())
	cases := []struct {
		name string
		req  Request
		code ErrorCode
	}{
		{"unknown kind", Request{Kind: "teleport", From: 0, To: 1}, CodeUnknownKind},
		{"empty kind", Request{From: 0, To: 1}, CodeUnknownKind},
		{"from out of range", Request{Kind: KindEarliestArrival, From: ns, To: 1}, CodeStationRange},
		{"to out of range", Request{Kind: KindProfile, From: 0, To: -1}, CodeStationRange},
		{"matrix no sources", Request{Kind: KindMatrix, Targets: []StationID{1}}, CodeInvalidRequest},
		{"matrix no targets", Request{Kind: KindMatrix, Sources: []StationID{1}}, CodeInvalidRequest},
		{"matrix bad source", Request{Kind: KindMatrix, Sources: []StationID{ns}, Targets: []StationID{0}}, CodeStationRange},
		{"window on profile", Request{Kind: KindProfile, From: 0, To: 1, Window: &Window{0, 600}}, CodeBadWindow},
		{"empty window", Request{Kind: KindOneToAll, From: 0, Window: &Window{From: 600, To: 400}}, CodeBadWindow},
		{"transfers on profile", Request{Kind: KindProfile, From: 0, To: 1, MaxTransfers: 3}, CodeBadTransfers},
		{"transfers out of range", Request{Kind: KindPareto, From: 0, MaxTransfers: 99}, CodeBadTransfers},
		{"negative transfers", Request{Kind: KindPareto, From: 0, MaxTransfers: -1}, CodeBadTransfers},
		{"sources on journey", Request{Kind: KindJourney, From: 0, To: 1, Sources: []StationID{2}}, CodeInvalidRequest},
		{"negative depart", Request{Kind: KindEarliestArrival, From: 0, To: 1, Depart: -5}, CodeBadTime},
	}
	for _, tc := range cases {
		_, err := n.Plan(context.Background(), tc.req)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := ErrorCodeOf(err); got != tc.code {
			t.Fatalf("%s: code %q, want %q (err: %v)", tc.name, got, tc.code, err)
		}
		var te *Error
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %T is not *transit.Error", tc.name, err)
		}
	}
}

// TestResultKindMismatch pins the accessor guards.
func TestResultKindMismatch(t *testing.T) {
	n := testNetwork(t)
	res, err := n.Plan(context.Background(), Request{Kind: KindEarliestArrival, From: 0, To: 1, Depart: 480})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Journey(); ErrorCodeOf(err) != CodeKindMismatch {
		t.Fatalf("Journey() on earliest-arrival result: %v", err)
	}
	if _, err := res.Matrix(); ErrorCodeOf(err) != CodeKindMismatch {
		t.Fatalf("Matrix() on earliest-arrival result: %v", err)
	}
	if _, err := res.Arrival(); err != nil {
		t.Fatalf("Arrival() on earliest-arrival result: %v", err)
	}
}

// TestPlanContextCancellation covers the three context failure shapes: a
// context cancelled before the call, a deadline that already passed, and a
// cancellation racing a running profile/pareto search.
func TestPlanContextCancellation(t *testing.T) {
	n, err2 := cancelNetwork()
	if err2 != nil {
		t.Fatal(err2)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.Plan(pre, Request{Kind: KindProfile, From: 0, To: 1})
	if ErrorCodeOf(err) != CodeCancelled || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: %v (code %q)", err, ErrorCodeOf(err))
	}

	dl, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	_, err = n.Plan(dl, Request{Kind: KindPareto, From: 0, MaxTransfers: 2})
	if ErrorCodeOf(err) != CodeDeadlineExceeded || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v (code %q)", err, ErrorCodeOf(err))
	}

	// Mid-flight: cancel while profile and pareto searches run. Outcomes
	// race (a search may finish first), so loop until one observes the
	// cancellation; every error must be the typed cancellation error.
	for _, kind := range []Kind{KindProfile, KindPareto} {
		sawCancel := false
		deadline := time.Now().Add(10 * time.Second)
		for i := 0; !sawCancel && time.Now().Before(deadline); i++ {
			ctx, cancelMid := context.WithCancel(context.Background())
			// Cycle the cancel delay from "immediately" upward so some
			// cancellation lands inside (or just before) the search no
			// matter how fast the network answers.
			go func(d time.Duration) {
				if d > 0 {
					time.Sleep(d)
				}
				cancelMid()
			}(time.Duration(i%64) * 5 * time.Microsecond)
			req := Request{Kind: kind, From: StationID(i % n.NumStations()), To: 1, MaxTransfers: 0}
			if kind == KindPareto {
				req.MaxTransfers = 6
			}
			_, err := n.Plan(ctx, req)
			switch {
			case err == nil:
			case ErrorCodeOf(err) == CodeCancelled:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s: cancellation does not wrap context.Canceled: %v", kind, err)
				}
				sawCancel = true
			default:
				t.Fatalf("%s: unexpected error %v", kind, err)
			}
			cancelMid()
		}
		if !sawCancel {
			t.Fatalf("%s: no query observed the mid-flight cancellation", kind)
		}
	}
}

// TestPlanEarliestArrivalAllocs is the allocation-regression guard of the
// unified API: the scalar path through Plan, with a reused Result, must
// stay at zero allocations per query like the legacy wrapper it backs.
func TestPlanEarliestArrivalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	n := testNetwork(t)
	pairs := planPairs(n, 16)
	ctx := context.Background()
	var reuse Result
	// Warm up the workspace pool to steady-state sizes.
	for i := 0; i < 8; i++ {
		if _, err := n.Plan(ctx, Request{
			Kind: KindEarliestArrival, From: pairs[i][0], To: pairs[i][1], Depart: 480, Reuse: &reuse,
		}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		p := pairs[i%len(pairs)]
		i++
		res, err := n.Plan(ctx, Request{
			Kind: KindEarliestArrival, From: p[0], To: p[1], Depart: 480, Reuse: &reuse,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res != &reuse {
			t.Fatal("Plan did not return the reused result")
		}
	})
	if allocs != 0 {
		t.Fatalf("Plan earliest-arrival with Reuse allocates %.1f objects per query, want 0", allocs)
	}
	// The legacy wrapper shares the same path and pooling.
	wrapped := testing.AllocsPerRun(64, func() {
		p := pairs[i%len(pairs)]
		i++
		if _, err := n.EarliestArrival(p[0], p[1], 480, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped != 0 {
		t.Fatalf("legacy EarliestArrival wrapper allocates %.1f objects per query, want 0", wrapped)
	}
}

// TestPlanReuseAcrossKinds makes sure a reused Result carries nothing over
// from its previous life.
func TestPlanReuseAcrossKinds(t *testing.T) {
	n := testNetwork(t)
	var r Result
	if _, err := n.Plan(context.Background(), Request{Kind: KindJourney, From: 0, To: 7, Depart: 480, Reuse: &r}); err != nil {
		if ErrorCodeOf(err) != CodeUnreachable {
			t.Fatal(err)
		}
	}
	res, err := n.Plan(context.Background(), Request{Kind: KindEarliestArrival, From: 0, To: 7, Depart: 480, Reuse: &r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind() != KindEarliestArrival {
		t.Fatalf("kind = %q after reuse", res.Kind())
	}
	if _, err := res.Journey(); ErrorCodeOf(err) != CodeKindMismatch {
		t.Fatalf("stale journey accessor survived reuse: %v", err)
	}
}

// TestPlanMatrixCancellation cancels a matrix batch mid-flight.
func TestPlanMatrixCancellation(t *testing.T) {
	n, err2 := cancelNetwork()
	if err2 != nil {
		t.Fatal(err2)
	}
	sources := make([]StationID, n.NumStations())
	for i := range sources {
		sources[i] = StationID(i)
	}
	targets := []StationID{0, 1, 2}
	sawCancel := false
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; !sawCancel && time.Now().Before(deadline); i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			if d > 0 {
				time.Sleep(d)
			}
			cancel()
		}(time.Duration(i%64) * 5 * time.Microsecond)
		_, err := n.Plan(ctx, Request{Kind: KindMatrix, Sources: sources, Targets: targets, Depart: 480})
		switch {
		case err == nil:
		case ErrorCodeOf(err) == CodeCancelled:
			sawCancel = true
		default:
			t.Fatalf("unexpected error: %v", err)
		}
		cancel()
	}
	if !sawCancel {
		t.Fatal("no matrix batch observed the cancellation")
	}
}

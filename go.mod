module transit

go 1.24

package transit

import "transit/internal/stats"

// SearchEffort is an optional per-query work-counter block. Attach one via
// Options.Effort (or Request.Options.Effort) and every search the query
// runs folds its counters in: connections scanned, labels settled, pruned
// extractions, priority-queue traffic, cancel polls, and the number of
// search rounds. Counters are atomic, so a single block can be shared by
// the worker goroutines of a matrix or parallel profile query; call
// Snapshot for a plain-value copy and Reset to reuse the block.
//
// The result cache ignores Options when keying requests, so attaching an
// Effort never fragments the cache; a cache hit simply leaves the block
// untouched (Rounds stays 0 — the signal that no search ran).
type SearchEffort = stats.Effort

// SearchEffortSnapshot is the plain-value, JSON-ready copy returned by
// SearchEffort.Snapshot.
type SearchEffortSnapshot = stats.EffortSnapshot

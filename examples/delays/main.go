// Delays: the fully dynamic scenario the paper's conclusion points at
// (Müller-Hannemann et al. [20]). Because the one-to-all profile search
// needs *no preprocessing*, a delayed train simply means: apply the delay,
// rebuild the cheap query structures, query again — fast enough for
// on-line use after every delay message.
//
// The example delays all morning trips of one route by 20 minutes and
// diffs the resulting arrivals against the original timetable.
//
//	go run ./examples/delays
package main

import (
	"fmt"
	"log"
	"time"

	"transit"
)

func main() {
	net, err := transit.Generate("washington", 0.2, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	src := transit.StationID(1)
	dst := transit.StationID(net.NumStations() - 2)

	before, _, err := net.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the route with the most morning departures out of src and
	// delay its 07:00–10:00 trips by 20 minutes.
	route := busiestMorningRoute(net, src)
	start := time.Now()
	updated, shifted, err := net.ApplyDelays(20, func(c transit.ConnectionInfo) bool {
		return c.Route == route && c.Dep >= 420 && c.Dep <= 600
	})
	if err != nil {
		log.Fatal(err)
	}
	rebuild := time.Since(start)

	after, stats, err := updated.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelayed %d connections; applied + rebuilt in %v, re-query in %v\n",
		shifted, rebuild, stats.Elapsed)

	fmt.Printf("\n%-12s %-16s %-16s\n", "depart", "arrive (before)", "arrive (after)")
	for _, at := range []string{"07:00", "07:45", "08:30", "09:15", "12:00"} {
		dep, _ := transit.ParseClock(at)
		b := before.EarliestArrival(dep)
		a := after.EarliestArrival(dep)
		mark := ""
		if a != b {
			mark = fmt.Sprintf("  ← %+d min", a-b)
		}
		fmt.Printf("%-12s %-16s %-16s%s\n", at, net.FormatClock(b), net.FormatClock(a), mark)
	}
}

// busiestMorningRoute returns the route class with the most 07:00–10:00
// departures from src.
func busiestMorningRoute(net *transit.Network, src transit.StationID) int {
	deps, err := net.Departures(src)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, c := range deps {
		if c.Dep >= 420 && c.Dep <= 600 {
			counts[c.Route]++
		}
	}
	best, bestN := 0, -1
	for r, n := range counts {
		if n > bestN {
			best, bestN = r, n
		}
	}
	return best
}

// Delays: the fully dynamic scenario the paper's conclusion points at
// (Müller-Hannemann et al. [20]). Because the one-to-all profile search
// needs *no preprocessing*, a delayed train simply means: apply the delay,
// refresh the cheap query structures, query again — fast enough for
// on-line use after every delay message.
//
// The example delays all morning trips of one route by 20 minutes through
// both update paths — ApplyDelays (full rebuild + re-validation) and
// ApplyUpdates (the incremental copy-on-write patch behind the live-update
// subsystem, internal/live) — verifies they agree, compares their cost,
// and then cancels the route outright.
//
//	go run ./examples/delays
package main

import (
	"fmt"
	"log"
	"time"

	"transit"
)

func main() {
	net, err := transit.Generate("washington", 0.2, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	src := transit.StationID(1)
	dst := transit.StationID(net.NumStations() - 2)

	before, _, err := net.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the route with the most morning departures out of src and
	// delay its 07:00–10:00 trips by 20 minutes — first the seed way
	// (rebuild everything), then the live-update way (patch in place).
	route := busiestMorningRoute(net, src)
	start := time.Now()
	rebuilt, shifted, err := net.ApplyDelays(20, func(c transit.ConnectionInfo) bool {
		return c.Route == route && c.Dep >= 420 && c.Dep <= 600
	})
	if err != nil {
		log.Fatal(err)
	}
	fullRebuild := time.Since(start)

	ops := []transit.DelayOp{{Routes: []int{route}, WindowFrom: 420, WindowTo: 600, Delay: 20}}
	start = time.Now()
	patched, st, err := net.ApplyUpdates(ops)
	if err != nil {
		log.Fatal(err)
	}
	incremental := time.Since(start)

	after, stats, err := patched.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelayed %d connections (%d trains)\n", st.ConnsRetimed, st.TrainsDelayed)
	fmt.Printf("  full rebuild (ApplyDelays):    %v  (%d conns shifted)\n", fullRebuild, shifted)
	fmt.Printf("  incremental (ApplyUpdates):    %v  (%.0fx faster)\n",
		incremental, float64(fullRebuild)/float64(incremental))
	fmt.Printf("  re-query on patched snapshot:  %v\n", stats.Elapsed)

	ref, _, err := rebuilt.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %-16s %-16s\n", "depart", "arrive (before)", "arrive (after)")
	for _, at := range []string{"07:00", "07:45", "08:30", "09:15", "12:00"} {
		dep, _ := transit.ParseClock(at)
		b := before.EarliestArrival(dep)
		a := after.EarliestArrival(dep)
		if ra := ref.EarliestArrival(dep); ra != a {
			log.Fatalf("paths disagree at %s: rebuild %d, incremental %d", at, ra, a)
		}
		mark := ""
		if a != b {
			mark = fmt.Sprintf("  ← %+d min", a-b)
		}
		fmt.Printf("%-12s %-16s %-16s%s\n", at, net.FormatClock(b), net.FormatClock(a), mark)
	}

	// Cancellations ride the same patch path: drop the route entirely and
	// watch the profile fall back to alternatives.
	cancelled, cst, err := patched.ApplyUpdates([]transit.DelayOp{{Routes: []int{route}, Cancel: true}})
	if err != nil {
		log.Fatal(err)
	}
	pc, _, err := cancelled.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	dep, _ := transit.ParseClock("08:30")
	fmt.Printf("\ncancelled the route outright (%d connections): 08:30 arrival %s → %s\n",
		cst.ConnsCancelled, net.FormatClock(after.EarliestArrival(dep)), net.FormatClock(pc.EarliestArrival(dep)))
}

// busiestMorningRoute returns the route class with the most 07:00–10:00
// departures from src.
func busiestMorningRoute(net *transit.Network, src transit.StationID) int {
	deps, err := net.Departures(src)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, c := range deps {
		if c.Dep >= 420 && c.Dep <= 600 {
			counts[c.Route]++
		}
	}
	best, bestN := 0, -1
	for r, n := range counts {
		if n > bestN {
			best, bestN = r, n
		}
	}
	return best
}

// Pareto: the multi-criteria extension from the paper's future-work
// section — minimize arrival time *and* number of transfers together. One
// search yields, for every station and every departure time, the full
// trade-off curve: "arrive at 9:04 with 0 transfers, 8:51 with 1, 8:43
// with 2".
//
//	go run ./examples/pareto
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	net, err := transit.Generate("germany", 0.25, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	src := transit.StationID(0)
	pareto, err := net.ProfileAllPareto(src, 4, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	st := pareto.Stats()
	fmt.Printf("multi-criteria one-to-all from %q: %d settled labels in %v\n\n",
		net.Station(src).Name, st.SettledConnections, st.Elapsed)

	dep, _ := transit.ParseClock("08:00")
	shown := 0
	for dst := transit.StationID(1); int(dst) < net.NumStations() && shown < 6; dst++ {
		choices, err := pareto.Choices(dst, dep)
		if err != nil {
			log.Fatal(err)
		}
		if len(choices) < 2 {
			continue // only interesting when there is a real trade-off
		}
		shown++
		fmt.Printf("to %q departing %s:\n", net.Station(dst).Name, net.FormatClock(dep))
		for _, c := range choices {
			fmt.Printf("  %d transfer(s) → arrive %s\n", c.Transfers, net.FormatClock(c.Arrival))
		}
	}
	if shown == 0 {
		fmt.Println("(no stations with a transfers/time trade-off at this departure)")
		return
	}

	// The trade-off as a daily profile: compare travel time with at most
	// 0 transfers vs unlimited, hour by hour.
	fmt.Println("\ntravel-time vs transfer budget over the day (last target above):")
	var target transit.StationID
	for dst := transit.StationID(net.NumStations() - 1); dst > 0; dst-- {
		if ch, _ := pareto.Choices(dst, dep); len(ch) >= 2 {
			target = dst
			break
		}
	}
	direct, err := pareto.To(target, 0)
	if err != nil {
		log.Fatal(err)
	}
	any, err := pareto.To(target, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-18s %-18s\n", "depart", "≤0 transfers", "≤4 transfers")
	for h := 6; h <= 20; h += 2 {
		d := transit.Ticks(h * 60)
		f := func(p *transit.Profile) string {
			a := p.EarliestArrival(d)
			if a.IsInf() {
				return "unreachable"
			}
			return fmt.Sprintf("%s (%d min)", net.FormatClock(a), a-d)
		}
		fmt.Printf("%02d:00    %-18s %-18s\n", h, f(direct), f(any))
	}
}

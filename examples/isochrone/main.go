// Isochrone: network analysis built on the one-to-all profile search. A
// single ProfileAll run yields, for every station, the complete travel-time
// function from a source — enough to compute reachability maps for *every*
// departure time at once, where a classic Dijkstra would need one run per
// departure time.
//
// The example renders an ASCII isochrone map of a rail network at two
// departure times and reports all-day accessibility statistics.
//
//	go run ./examples/isochrone
package main

import (
	"fmt"
	"log"
	"sort"

	"transit"
)

func main() {
	net, err := transit.Generate("germany", 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	hub := busiestStation(net)
	fmt.Printf("source: %q\n", net.Station(hub).Name)

	// ONE query — then any departure time is a lookup.
	all, err := net.ProfileAll(hub, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	st := all.Stats()
	fmt.Printf("one-to-all profile search: %d settled labels in %v\n\n",
		st.SettledConnections, st.Elapsed)

	for _, at := range []string{"08:00", "23:00"} {
		dep, _ := transit.ParseClock(at)
		fmt.Printf("isochrones departing %s:\n", at)
		drawMap(net, all, dep)
		fmt.Println()
	}

	// All-day accessibility: for each station, best and worst travel time
	// over all departures — derived from the profile, no extra searches.
	type acc struct {
		name     string
		min, max transit.Ticks
	}
	var rows []acc
	for s := 0; s < net.NumStations(); s++ {
		id := transit.StationID(s)
		if id == hub {
			continue
		}
		p, err := all.To(id)
		if err != nil || p.Empty() {
			continue
		}
		mn, mx := transit.Ticks(1<<30), transit.Ticks(0)
		for _, c := range p.Connections() {
			d := c.Arrival - c.Departure
			if d < mn {
				mn = d
			}
			if d > mx {
				mx = d
			}
		}
		rows = append(rows, acc{net.Station(id).Name, mn, mx})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].min < rows[j].min })
	fmt.Println("best-connected stations (min / max travel time over the day):")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-18s %4d / %4d min\n", r.name, r.min, r.max)
	}
}

// busiestStation picks the station with the most outgoing connections.
func busiestStation(net *transit.Network) transit.StationID {
	tt := net.Timetable()
	best, bestN := transit.StationID(0), -1
	for s := 0; s < tt.NumStations(); s++ {
		if n := len(tt.Outgoing(transit.StationID(s))); n > bestN {
			best, bestN = transit.StationID(s), n
		}
	}
	return best
}

// drawMap bins stations into a coarse grid by their layout coordinates and
// prints the minimum travel time class per cell.
func drawMap(net *transit.Network, all *transit.AllProfiles, dep transit.Ticks) {
	const W, H = 48, 16
	minX, maxX, minY, maxY := 1e18, -1e18, 1e18, -1e18
	for s := 0; s < net.NumStations(); s++ {
		st := net.Station(transit.StationID(s))
		minX, maxX = min(minX, st.X), max(maxX, st.X)
		minY, maxY = min(minY, st.Y), max(maxY, st.Y)
	}
	grid := make([][]transit.Ticks, H)
	for y := range grid {
		grid[y] = make([]transit.Ticks, W)
		for x := range grid[y] {
			grid[y][x] = transit.Infinity
		}
	}
	for s := 0; s < net.NumStations(); s++ {
		id := transit.StationID(s)
		st := net.Station(id)
		x := int((st.X - minX) / (maxX - minX + 1e-9) * (W - 1))
		y := int((st.Y - minY) / (maxY - minY + 1e-9) * (H - 1))
		arr := all.EarliestArrival(id, dep)
		if arr.IsInf() {
			continue
		}
		if d := arr - dep; d < grid[y][x] {
			grid[y][x] = d
		}
	}
	classes := []struct {
		limit transit.Ticks
		ch    byte
	}{{60, '#'}, {120, '+'}, {240, '.'}, {1 << 30, ' '}}
	for y := 0; y < H; y++ {
		line := make([]byte, W)
		for x := 0; x < W; x++ {
			d := grid[y][x]
			c := byte(' ')
			if !d.IsInf() {
				for _, cl := range classes {
					if d <= cl.limit {
						c = cl.ch
						break
					}
				}
			} else {
				c = ' '
			}
			line[x] = c
		}
		fmt.Printf("  %s\n", line)
	}
	fmt.Println("  # ≤1h   + ≤2h   . ≤4h")
}

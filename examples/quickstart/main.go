// Quickstart: generate a small city network, ask for the earliest arrival,
// the full daily profile, and a concrete itinerary between two stations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	// A small synthetic city bus network (structural analogue of the
	// paper's Oahu input; see DESIGN.md). Real data loads with
	// transit.LoadGTFS("feed/") or transit.ReadNetwork(file).
	net, err := transit.Generate("oahu", 0.15, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	src := transit.StationID(0)
	dst := transit.StationID(net.NumStations() / 2)
	fmt.Printf("\nfrom %q to %q\n", net.Station(src).Name, net.Station(dst).Name)

	// 1. A plain time-query: depart at 08:15, when do we arrive?
	dep, _ := transit.ParseClock("08:15")
	arr, err := net.EarliestArrival(src, dst, dep, transit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depart %s → arrive %s (%d min)\n",
		net.FormatClock(dep), net.FormatClock(arr), arr-dep)

	// 2. The full profile: every relevant connection of the day in one
	// query (the paper's core contribution), computed in parallel.
	profile, stats, err := net.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	conns := profile.Connections()
	fmt.Printf("\n%d relevant connections today (settled %d labels in %v):\n",
		len(conns), stats.SettledConnections, stats.Elapsed)
	for i, c := range conns {
		if i >= 5 {
			fmt.Printf("  … and %d more\n", len(conns)-5)
			break
		}
		fmt.Printf("  dep %s  arr %s  (%d min)\n",
			net.FormatClock(c.Departure), net.FormatClock(c.Arrival), c.Arrival-c.Departure)
	}

	// 3. A concrete itinerary with trains and transfers.
	all, err := net.ProfileAll(src, transit.Options{TrackJourneys: true})
	if err != nil {
		log.Fatal(err)
	}
	journey, err := all.Journey(dst, dep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nitinerary (%d transfers):\n", journey.Transfers())
	for _, leg := range journey.Legs {
		fmt.Printf("  %-28s %s %s → %s %s\n",
			leg.Train, leg.FromName, net.FormatClock(leg.Departure),
			leg.ToName, net.FormatClock(leg.Arrival))
	}
}

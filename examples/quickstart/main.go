// Quickstart: generate a small city network, ask for the earliest arrival,
// the full daily profile, and a concrete itinerary between two stations.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"transit"
)

func main() {
	// A small synthetic city bus network (structural analogue of the
	// paper's Oahu input; see DESIGN.md). Real data loads with
	// transit.LoadGTFS("feed/") or transit.ReadNetwork(file).
	net, err := transit.Generate("oahu", 0.15, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	src := transit.StationID(0)
	dst := transit.StationID(net.NumStations() / 2)
	fmt.Printf("\nfrom %q to %q\n", net.Station(src).Name, net.Station(dst).Name)

	// 1. A plain time-query: depart at 08:15, when do we arrive? Every
	// query kind runs through the unified, context-aware entry point
	// Network.Plan (the convenience methods below wrap it).
	dep, _ := transit.ParseClock("08:15")
	res, err := net.Plan(context.Background(), transit.Request{
		Kind: transit.KindEarliestArrival, From: src, To: dst, Depart: dep,
	})
	if err != nil {
		log.Fatal(err)
	}
	arr, _ := res.Arrival()
	fmt.Printf("depart %s → arrive %s (%d min)\n",
		net.FormatClock(dep), net.FormatClock(arr), arr-dep)

	// 1b. The batch form: one matrix request answers many pairs at once
	// (the /v1/matrix endpoint of cmd/tpserver).
	mres, err := net.Plan(context.Background(), transit.Request{
		Kind:    transit.KindMatrix,
		Sources: []transit.StationID{src, dst},
		Targets: []transit.StationID{src, dst},
		Depart:  dep,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, _ := mres.Matrix()
	fmt.Printf("2×2 travel matrix at %s:\n", net.FormatClock(dep))
	for i, row := range m {
		for j, a := range row {
			mins := "—"
			if !a.IsInf() {
				mins = fmt.Sprintf("%d min", a-dep)
			}
			fmt.Printf("  [%d→%d] %s", i, j, mins)
		}
		fmt.Println()
	}

	// 2. The full profile: every relevant connection of the day in one
	// query (the paper's core contribution), computed in parallel.
	profile, stats, err := net.Profile(src, dst, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	conns := profile.Connections()
	fmt.Printf("\n%d relevant connections today (settled %d labels in %v):\n",
		len(conns), stats.SettledConnections, stats.Elapsed)
	for i, c := range conns {
		if i >= 5 {
			fmt.Printf("  … and %d more\n", len(conns)-5)
			break
		}
		fmt.Printf("  dep %s  arr %s  (%d min)\n",
			net.FormatClock(c.Departure), net.FormatClock(c.Arrival), c.Arrival-c.Departure)
	}

	// 3. A concrete itinerary with trains and transfers.
	all, err := net.ProfileAll(src, transit.Options{TrackJourneys: true})
	if err != nil {
		log.Fatal(err)
	}
	journey, err := all.Journey(dst, dep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nitinerary (%d transfers):\n", journey.Transfers())
	for _, leg := range journey.Legs {
		fmt.Printf("  %-28s %s %s → %s %s\n",
			leg.Train, leg.FromName, net.FormatClock(leg.Departure),
			leg.ToName, net.FormatClock(leg.Arrival))
	}
}

// Commuter: the scenario from the paper's introduction — a commuter wants
// *all* good options between home and work for the whole day, not a single
// departure: the morning options, the evening return options, and how
// travel time varies over the day (rush-hour service vs. night gaps).
//
// One profile query answers all of it. The example also shows the effect
// of preprocessing: the same query against a distance-table-accelerated
// network, with work counters side by side.
//
//	go run ./examples/commuter
package main

import (
	"fmt"
	"log"

	"transit"
)

func main() {
	net, err := transit.Generate("losangeles", 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	home := transit.StationID(3)
	work := transit.StationID(net.NumStations() - 4)
	fmt.Printf("home %q → work %q\n\n", net.Station(home).Name, net.Station(work).Name)

	morning, stats, err := net.Profile(home, work, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	evening, _, err := net.Profile(work, home, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("morning options (06:30–09:30):")
	printWindow(net, morning, "06:30", "09:30")
	fmt.Println("\nevening options (16:30–19:30):")
	printWindow(net, evening, "16:30", "19:30")

	// Travel time over the day: the profile evaluates in O(log n) at any
	// departure time, so plotting is trivial.
	fmt.Println("\ntravel time by hour of day (home → work):")
	for h := 0; h < 24; h += 2 {
		dep := transit.Ticks(h * 60)
		tt := morning.TravelTime(dep)
		bar := ""
		for i := transit.Ticks(0); i < tt && i < 90; i += 5 {
			bar += "▇"
		}
		fmt.Printf("  %02d:00  %4d min  %s\n", h, tt, bar)
	}

	// Preprocessing pays off for repeated station-to-station queries.
	pre, ps, err := net.Preprocess(transit.TransferSelection{Fraction: 0.10}, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	_, accel, err := pre.Profile(home, work, transit.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npreprocessing: %d transfer stations, %.1f MiB, built in %v\n",
		ps.TransferStations, float64(ps.TableBytes)/(1<<20), ps.Elapsed)
	fmt.Printf("query work: %d settled labels without table, %d with (%.0f%%)\n",
		stats.SettledConnections, accel.SettledConnections,
		100*float64(accel.SettledConnections)/float64(stats.SettledConnections))
}

func printWindow(net *transit.Network, p *transit.Profile, from, to string) {
	lo, _ := transit.ParseClock(from)
	hi, _ := transit.ParseClock(to)
	shown := 0
	for _, c := range p.Connections() {
		if c.Departure < lo || c.Departure > hi {
			continue
		}
		fmt.Printf("  dep %s  arr %s  (%d min)\n",
			net.FormatClock(c.Departure), net.FormatClock(c.Arrival), c.Arrival-c.Departure)
		shown++
		if shown >= 8 {
			fmt.Println("  …")
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (no connections in window)")
	}
}

package transit

import (
	"fmt"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// ConnectionInfo is the public view of one elementary connection, used by
// the dynamic-update API and network inspection.
type ConnectionInfo struct {
	Train string
	// Route is the route class index of the train (trains with identical
	// station sequences share a route).
	Route int
	From  StationID
	To    StationID
	Dep   Ticks // departure time point within the period
	Arr   Ticks // absolute arrival time (≥ Dep; may exceed the period)
}

// Connections lists all elementary connections of the network.
func (n *Network) Connections() []ConnectionInfo {
	out := make([]ConnectionInfo, len(n.tt.Connections))
	for i, c := range n.tt.Connections {
		out[i] = n.connInfo(c)
	}
	return out
}

func (n *Network) connInfo(c timetable.Connection) ConnectionInfo {
	return ConnectionInfo{
		Train: n.tt.Trains[c.Train].Name,
		Route: int(n.tt.RouteOf(c.Train)),
		From:  c.From,
		To:    c.To,
		Dep:   c.Dep,
		Arr:   c.Arr,
	}
}

// Departures lists the outgoing connections of a station in departure
// order — the set conn(S) that bounds the profile complexity.
func (n *Network) Departures(s StationID) ([]ConnectionInfo, error) {
	if err := n.checkStation(s); err != nil {
		return nil, err
	}
	ids := n.tt.Outgoing(s)
	out := make([]ConnectionInfo, len(ids))
	for i, id := range ids {
		out[i] = n.connInfo(n.tt.Connections[id])
	}
	return out, nil
}

// ApplyDelays returns a new Network in which every connection accepted by
// the filter is shifted delta ticks later (negative delta means earlier;
// the result is re-validated). This is the fully dynamic scenario the
// paper's conclusion targets: the profile search needs no preprocessing, so
// delayed trains only require rebuilding the (cheap) query structures.
//
// The filter decides per *train*: if any connection of a train matches, the
// whole train is shifted, keeping its internal schedule consistent.
func (n *Network) ApplyDelays(delta Ticks, filter func(ConnectionInfo) bool) (*Network, int, error) {
	affected := make(map[timetable.TrainID]bool)
	for _, c := range n.tt.Connections {
		if filter(n.connInfo(c)) {
			affected[c.Train] = true
		}
	}
	conns := make([]timetable.Connection, len(n.tt.Connections))
	copy(conns, n.tt.Connections)
	shifted := 0
	for i := range conns {
		if !affected[conns[i].Train] {
			continue
		}
		dep := conns[i].Dep + delta
		dur := conns[i].Arr - conns[i].Dep
		dep = n.tt.Period.Wrap(dep)
		conns[i].Dep = dep
		conns[i].Arr = dep + dur
		shifted++
	}
	stations := make([]timetable.Station, len(n.tt.Stations))
	copy(stations, n.tt.Stations)
	trains := make([]timetable.Train, len(n.tt.Trains))
	copy(trains, n.tt.Trains)
	footpaths := make([]timetable.Footpath, len(n.tt.Footpaths))
	copy(footpaths, n.tt.Footpaths)
	tt, err := timetable.NewWithFootpaths(n.tt.Period, stations, trains, conns, footpaths)
	if err != nil {
		return nil, 0, fmt.Errorf("transit: delayed timetable invalid: %w", err)
	}
	return NewNetwork(tt), shifted, nil
}

// TimetableBuilder assembles a custom network programmatically through the
// public API. Times are in minutes of a 1440-minute day unless a different
// period is given.
type TimetableBuilder struct {
	b *timetable.Builder
}

// NewTimetableBuilder returns a builder over a period of the given length
// (0 means the 1440-minute day).
func NewTimetableBuilder(period Ticks) *TimetableBuilder {
	if period <= 0 {
		period = timeutil.DayMinutes
	}
	return &TimetableBuilder{b: timetable.NewBuilder(timeutil.NewPeriod(period))}
}

// AddStation adds a station with the given minimum transfer time and
// returns its ID.
func (tb *TimetableBuilder) AddStation(name string, transfer Ticks) StationID {
	return tb.b.AddStation(name, transfer)
}

// AddTrain adds a train serving the given stations in order: it departs the
// first station at dep, hop i takes hops[i] ticks, and the train waits
// dwell ticks at intermediate stops.
func (tb *TimetableBuilder) AddTrain(name string, stations []StationID, dep Ticks, hops []Ticks, dwell Ticks) error {
	if len(hops) != len(stations)-1 {
		return fmt.Errorf("transit: %d stations need %d hop times, got %d", len(stations), len(stations)-1, len(hops))
	}
	tb.b.AddTrainRun(name, stations, dep, hops, dwell)
	return nil
}

// AddFootpath adds a directed walking link: arriving at from at time t one
// reaches to at t + walk, at any time of day.
func (tb *TimetableBuilder) AddFootpath(from, to StationID, walk Ticks) {
	tb.b.AddFootpath(from, to, walk)
}

// Build validates the timetable and returns the query-ready Network.
func (tb *TimetableBuilder) Build() (*Network, error) {
	tt, err := tb.b.Build()
	if err != nil {
		return nil, err
	}
	return NewNetwork(tt), nil
}

package transit

import (
	"fmt"
	"sort"
	"time"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// ConnectionInfo is the public view of one elementary connection, used by
// the dynamic-update API and network inspection.
type ConnectionInfo struct {
	Train string
	// Route is the route class index of the train (trains with identical
	// station sequences share a route).
	Route int
	From  StationID
	To    StationID
	Dep   Ticks // departure time point within the period
	Arr   Ticks // absolute arrival time (≥ Dep; may exceed the period)
	// Cancelled marks connections removed by a dynamic update (ApplyUpdates
	// with DelayOp.Cancel): they keep their slot — IDs stay dense — but are
	// excluded from every query structure and never boarded.
	Cancelled bool
}

// Connections lists all elementary connections of the network.
func (n *Network) Connections() []ConnectionInfo {
	out := make([]ConnectionInfo, len(n.tt.Connections))
	for i, c := range n.tt.Connections {
		out[i] = n.connInfo(c)
	}
	return out
}

func (n *Network) connInfo(c timetable.Connection) ConnectionInfo {
	return ConnectionInfo{
		Train:     n.tt.Trains[c.Train].Name,
		Route:     int(n.tt.RouteOf(c.Train)),
		From:      c.From,
		To:        c.To,
		Dep:       c.Dep,
		Arr:       c.Arr,
		Cancelled: c.Arr.IsInf(),
	}
}

// Departures lists the outgoing connections of a station in departure
// order — the set conn(S) that bounds the profile complexity.
func (n *Network) Departures(s StationID) ([]ConnectionInfo, error) {
	if err := n.checkStation(s); err != nil {
		return nil, err
	}
	ids := n.tt.Outgoing(s)
	out := make([]ConnectionInfo, len(ids))
	for i, id := range ids {
		out[i] = n.connInfo(n.tt.Connections[id])
	}
	return out, nil
}

// ApplyDelays returns a new Network in which every connection accepted by
// the filter is shifted delta ticks later (negative delta means earlier;
// the result is re-validated). This is the fully dynamic scenario the
// paper's conclusion targets: the profile search needs no preprocessing, so
// delayed trains only require rebuilding the (cheap) query structures.
//
// The filter decides per *train*: if any connection of a train matches, the
// whole train is shifted, keeping its internal schedule consistent.
func (n *Network) ApplyDelays(delta Ticks, filter func(ConnectionInfo) bool) (*Network, int, error) {
	affected := make(map[timetable.TrainID]bool)
	for _, c := range n.tt.Connections {
		if filter(n.connInfo(c)) {
			affected[c.Train] = true
		}
	}
	conns := make([]timetable.Connection, len(n.tt.Connections))
	copy(conns, n.tt.Connections)
	shifted := 0
	for i := range conns {
		if !affected[conns[i].Train] {
			continue
		}
		if conns[i].Arr.IsInf() {
			// Cancelled by a previous ApplyUpdates: cancellation is
			// permanent for the snapshot lineage. Re-timing would push the
			// Infinity arrival below the sentinel and resurrect the train.
			continue
		}
		dep := conns[i].Dep + delta
		dur := conns[i].Arr - conns[i].Dep
		dep = n.tt.Period.Wrap(dep)
		conns[i].Dep = dep
		conns[i].Arr = dep + dur
		shifted++
	}
	stations := make([]timetable.Station, len(n.tt.Stations))
	copy(stations, n.tt.Stations)
	trains := make([]timetable.Train, len(n.tt.Trains))
	copy(trains, n.tt.Trains)
	footpaths := make([]timetable.Footpath, len(n.tt.Footpaths))
	copy(footpaths, n.tt.Footpaths)
	tt, err := timetable.NewWithFootpaths(n.tt.Period, stations, trains, conns, footpaths)
	if err != nil {
		return nil, 0, fmt.Errorf("transit: delayed timetable invalid: %w", err)
	}
	nn := NewNetwork(tt)
	// A no-op filter on an unpatched network leaves an equivalent schedule;
	// patchedness is otherwise sticky along the derivation chain.
	nn.patched = n.patched || shifted > 0
	return nn, shifted, nil
}

// DelayOp is one operation of a dynamic-update batch: a train-level delay
// or cancellation, selected by train name, route class and/or a departure
// window. Selection is per train — every connection of a matched train is
// shifted (or cancelled) together, keeping its schedule consistent, exactly
// like ApplyDelays. All set filters must match (AND); an op with no filter
// at all matches every train whose departures intersect the window.
type DelayOp struct {
	// Train selects trains by exact name; "" disables the name filter.
	Train string
	// Routes selects trains by route class index; empty disables the route
	// filter (so the zero DelayOp matches every train, like the other
	// selectors).
	Routes []int
	// WindowFrom and WindowTo restrict the selection to trains with at
	// least one (non-cancelled) connection departing in [WindowFrom,
	// WindowTo], both time points of the period. WindowTo = 0 means "no
	// upper bound", so the zero window matches the whole period.
	WindowFrom, WindowTo Ticks
	// Delay shifts every connection of each selected train Delay ticks
	// later; negative means earlier. Departure time points wrap around the
	// period; durations are preserved.
	Delay Ticks
	// Cancel removes the selected trains from service instead of shifting
	// them. Cancellation wins over Delay and is permanent for the lifetime
	// of the snapshot lineage.
	Cancel bool
}

// TouchedConn records one connection a dynamic-update batch changed: the
// departure it had before (OldDep) and after (NewDep), or Cancelled. It is
// the unit of incremental distance-table repair (Repreprocess): a batch's
// touched set, accumulated across epochs with MergeTouched, tells the
// repair which table rows the updates can possibly affect.
type TouchedConn struct {
	Conn      int
	Train     int
	Route     int
	From      StationID
	OldDep    Ticks
	NewDep    Ticks
	Cancelled bool
}

// MergeTouched composes touched sets of consecutive update batches into one
// set describing the total change: per connection the first OldDep and the
// last NewDep (cancellation is sticky, matching the patch semantics), with
// net no-op retimes dropped. Both inputs are left untouched; the result is
// sorted by connection ID.
func MergeTouched(acc, next []TouchedConn) []TouchedConn {
	byConn := make(map[int]TouchedConn, len(acc)+len(next))
	for _, t := range acc {
		byConn[t.Conn] = t
	}
	for _, t := range next {
		if prev, ok := byConn[t.Conn]; ok {
			t.OldDep = prev.OldDep
			t.Cancelled = t.Cancelled || prev.Cancelled
		}
		byConn[t.Conn] = t
	}
	out := make([]TouchedConn, 0, len(byConn))
	for _, t := range byConn {
		if !t.Cancelled && t.OldDep == t.NewDep {
			continue // retimed back to its original slot: periodically a no-op
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}

// UpdateStats reports the work of one ApplyUpdates call.
type UpdateStats struct {
	TrainsDelayed   int
	TrainsCancelled int
	ConnsRetimed    int
	ConnsCancelled  int
	Elapsed         time.Duration
	// Touched lists the connections this batch changed (sorted by ID) —
	// the input Repreprocess needs to repair a distance table built before
	// the batch.
	Touched []TouchedConn
}

// ApplyUpdates is the incremental counterpart of ApplyDelays: it returns a
// new Network with the delay/cancellation batch applied, sharing every
// untouched structure with the receiver — the route partition, the
// time-dependent graph's node set and CSR skeleton, the station graph, and
// the per-station connection indexes of unaffected stations. An update
// touching k connections costs O(k log k) recompute plus flat copies of the
// connection and edge arrays, instead of the full rebuild + re-validation
// ApplyDelays pays; see BenchmarkApplyDelays for the gap.
//
// The receiver is never modified, so in-flight queries on it stay valid —
// this is the snapshot discipline internal/live builds on. The returned
// Network carries no distance table: preprocessing computed against the old
// times is invalid, so callers either re-preprocess (live.Registry does
// this asynchronously) or serve with the stopping criterion alone. A batch
// matching no train returns the receiver itself, unchanged.
func (n *Network) ApplyUpdates(ops []DelayOp) (*Network, *UpdateStats, error) {
	start := time.Now()
	tt := n.tt
	type action struct {
		delta  Ticks
		cancel bool
	}
	acts := make(map[timetable.TrainID]*action)
	collect := func(z timetable.TrainID, op DelayOp) {
		if !trainInWindow(tt, z, op.WindowFrom, op.WindowTo) {
			return
		}
		a := acts[z]
		if a == nil {
			a = &action{}
			acts[z] = a
		}
		if op.Cancel {
			a.cancel = true
		} else {
			a.delta += op.Delay
		}
	}
	for _, op := range ops {
		for _, q := range op.Routes {
			if q < 0 || q >= len(tt.Routes()) {
				return nil, nil, fmt.Errorf("transit: delay op references route %d, have %d routes", q, len(tt.Routes()))
			}
		}
		if op.WindowTo != 0 && op.WindowTo < op.WindowFrom {
			return nil, nil, fmt.Errorf("transit: delay op window [%d,%d] is empty", op.WindowFrom, op.WindowTo)
		}
		routeMatch := func(z timetable.TrainID) bool {
			if len(op.Routes) == 0 {
				return true
			}
			r := tt.RouteOf(z)
			for _, q := range op.Routes {
				if timetable.RouteID(q) == r {
					return true
				}
			}
			return false
		}
		switch {
		case op.Train != "":
			for _, z := range tt.TrainsByName(op.Train) {
				if routeMatch(z) {
					collect(z, op)
				}
			}
		case len(op.Routes) > 0:
			seen := make(map[int]bool, len(op.Routes))
			for _, q := range op.Routes {
				if seen[q] {
					continue // duplicate route entries must not double-apply
				}
				seen[q] = true
				for _, z := range tt.Routes()[q].Trains {
					collect(z, op)
				}
			}
		default:
			for z := range tt.Trains {
				collect(timetable.TrainID(z), op)
			}
		}
	}
	st := &UpdateStats{}
	var updates []timetable.ConnUpdate
	var touched []timetable.ConnID
	for z, a := range acts {
		switch {
		case a.cancel:
			st.TrainsCancelled++
		case a.delta != 0:
			st.TrainsDelayed++
		default:
			continue // net-zero delay: nothing to do
		}
		route := int(tt.RouteOf(z))
		for _, id := range tt.TrainConnections(z) {
			if tt.Cancelled(id) {
				continue
			}
			c := tt.Connections[id]
			tc := TouchedConn{Conn: int(id), Train: int(z), Route: route, From: c.From, OldDep: c.Dep, NewDep: c.Dep}
			if a.cancel {
				updates = append(updates, timetable.ConnUpdate{ID: id, Cancel: true})
				tc.Cancelled = true
				st.ConnsCancelled++
			} else {
				dep := tt.Period.Wrap(c.Dep + a.delta)
				updates = append(updates, timetable.ConnUpdate{ID: id, Dep: dep, Arr: dep + c.Duration()})
				tc.NewDep = dep
				st.ConnsRetimed++
			}
			st.Touched = append(st.Touched, tc)
			touched = append(touched, id)
		}
	}
	sort.Slice(st.Touched, func(i, j int) bool { return st.Touched[i].Conn < st.Touched[j].Conn })
	if len(updates) == 0 {
		st.Elapsed = time.Since(start)
		return n, st, nil
	}
	ntt, err := tt.Patch(updates)
	if err != nil {
		return nil, nil, fmt.Errorf("transit: incremental update: %w", err)
	}
	ng, err := n.g.PatchTimes(ntt, touched)
	if err != nil {
		return nil, nil, fmt.Errorf("transit: incremental update: %w", err)
	}
	// The station graph condenses connectivity, which delays never change
	// and cancellations only shrink — a (possibly stale) superset keeps the
	// via-station computation conservative, hence correct — so it is shared.
	// The distance table is NOT shared: its entries are travel times, which
	// the update changed.
	n2 := &Network{tt: ntt, g: ng, sg: n.sg, byName: n.byName, patched: true}
	st.Elapsed = time.Since(start)
	return n2, st, nil
}

// trainInWindow reports whether train z has a non-cancelled connection
// departing in [from, to]; to = 0 means no upper bound.
func trainInWindow(tt *timetable.Timetable, z timetable.TrainID, from, to Ticks) bool {
	for _, id := range tt.TrainConnections(z) {
		if tt.Cancelled(id) {
			continue
		}
		d := tt.Connections[id].Dep
		if d >= from && (to == 0 || d <= to) {
			return true
		}
	}
	return false
}

// TimetableBuilder assembles a custom network programmatically through the
// public API. Times are in minutes of a 1440-minute day unless a different
// period is given.
type TimetableBuilder struct {
	b *timetable.Builder
}

// NewTimetableBuilder returns a builder over a period of the given length
// (0 means the 1440-minute day).
func NewTimetableBuilder(period Ticks) *TimetableBuilder {
	if period <= 0 {
		period = timeutil.DayMinutes
	}
	return &TimetableBuilder{b: timetable.NewBuilder(timeutil.NewPeriod(period))}
}

// AddStation adds a station with the given minimum transfer time and
// returns its ID.
func (tb *TimetableBuilder) AddStation(name string, transfer Ticks) StationID {
	return tb.b.AddStation(name, transfer)
}

// AddTrain adds a train serving the given stations in order: it departs the
// first station at dep, hop i takes hops[i] ticks, and the train waits
// dwell ticks at intermediate stops.
func (tb *TimetableBuilder) AddTrain(name string, stations []StationID, dep Ticks, hops []Ticks, dwell Ticks) error {
	if len(hops) != len(stations)-1 {
		return fmt.Errorf("transit: %d stations need %d hop times, got %d", len(stations), len(stations)-1, len(hops))
	}
	tb.b.AddTrainRun(name, stations, dep, hops, dwell)
	return nil
}

// AddFootpath adds a directed walking link: arriving at from at time t one
// reaches to at t + walk, at any time of day.
func (tb *TimetableBuilder) AddFootpath(from, to StationID, walk Ticks) {
	tb.b.AddFootpath(from, to, walk)
}

// Build validates the timetable and returns the query-ready Network.
func (tb *TimetableBuilder) Build() (*Network, error) {
	tt, err := tb.b.Build()
	if err != nil {
		return nil, err
	}
	return NewNetwork(tt), nil
}

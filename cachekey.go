package transit

import (
	"fmt"
	"strings"
)

// CacheKey returns the canonical serialization of the request for use as a
// result-cache key: two requests with equal keys are answered identically
// on the same network version (same live delay epoch), so a server may
// serve one's Result for the other.
//
// Only the fields the request's Kind consults (see the Request table) are
// encoded — a Depart on a profile request, say, does not change the answer
// and therefore does not change the key. Execution tuning (Options) and
// Reuse never affect the answer and are always excluded. An unknown Kind
// yields the empty string: such requests fail validation and must not be
// cached.
func (r Request) CacheKey() string {
	var b strings.Builder
	b.Grow(48)
	b.WriteString(string(r.Kind))
	switch r.Kind {
	case KindEarliestArrival, KindJourney:
		fmt.Fprintf(&b, "|%d>%d@%d", r.From, r.To, r.Depart)
	case KindProfile:
		fmt.Fprintf(&b, "|%d>%d", r.From, r.To)
	case KindOneToAll:
		fmt.Fprintf(&b, "|%d", r.From)
		if r.Window != nil {
			fmt.Fprintf(&b, "[%d,%d]", r.Window.From, r.Window.To)
		}
	case KindPareto:
		// To and Depart steer only the wire-layer rendering of the
		// frontier, not the search; the Result depends on From and the
		// transfer budget alone.
		fmt.Fprintf(&b, "|%d!%d", r.From, r.MaxTransfers)
	case KindMatrix:
		b.WriteByte('|')
		for i, s := range r.Sources {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteByte('>')
		for i, t := range r.Targets {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", t)
		}
		fmt.Fprintf(&b, "@%d", r.Depart)
	default:
		return ""
	}
	return b.String()
}

// ApproxBytes estimates the heap memory a Result retains, for byte-bounded
// result caches. Estimates are deliberately coarse (struct shells and map
// overheads are flat constants; Ticks and IDs count 4 bytes) but scale
// with the dominant term of each kind: label arrays for the one-to-all
// kinds, rows for matrices, points for profiles.
func (r *Result) ApproxBytes() int {
	const shell = 160 // the Result struct itself plus per-entry bookkeeping
	switch r.kind {
	case KindJourney:
		n := shell
		if r.journey != nil {
			n += 48
			for _, l := range r.journey.Legs {
				n += 96 + len(l.Train) + len(l.FromName) + len(l.ToName)
			}
		}
		return n
	case KindProfile:
		n := shell + 64
		if r.profile != nil && r.profile.fn != nil {
			n += r.profile.fn.NumPoints() * 8
		}
		return n
	case KindOneToAll:
		n := shell
		if r.all != nil {
			n += r.all.res.MemBytes()
		}
		return n
	case KindPareto:
		n := shell
		if r.pareto != nil {
			n += r.pareto.res.MemBytes()
		}
		return n
	case KindMatrix:
		n := shell
		for _, row := range r.matrix {
			n += 24 + 4*len(row)
		}
		return n
	default: // earliest-arrival carries only scalars
		return shell
	}
}

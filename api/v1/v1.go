// Package apiv1 defines the wire types of the versioned /v1 JSON HTTP API
// served by cmd/tpserver and emitted by cmd/tpquery -json: typed request
// and response structs, the structured error envelope, and the translation
// between them and the library's transit.Request / transit.Result.
//
// Keeping the types here — outside the server binary — gives every tool
// one serialization path: a response printed by tpquery -json is
// byte-compatible with the same query answered over HTTP.
//
// The wire format is specified in docs/API.md. Compatibility contract:
// fields are only ever added to /v1 responses, never renamed or removed;
// breaking changes get a new version prefix.
package apiv1

import (
	"encoding/json"
	"errors"
	"fmt"

	"transit"
)

// StationRef addresses a station by numeric ID or by exact name. On the
// wire it is either a JSON number (the ID) or a JSON string (the name):
//
//	{"from": 12, "to": "losangeles-10-2"}
type StationRef struct {
	id     int
	name   string
	byName bool
}

// ByID returns a reference by numeric station ID.
func ByID(id int) StationRef { return StationRef{id: id} }

// ByName returns a reference by exact station name.
func ByName(name string) StationRef { return StationRef{name: name, byName: true} }

// UnmarshalJSON accepts a number (ID) or a string (name).
func (s *StationRef) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		*s = ByName(name)
		return nil
	}
	var id int
	if err := json.Unmarshal(b, &id); err != nil {
		return fmt.Errorf("station reference must be a numeric ID or a name string")
	}
	*s = ByID(id)
	return nil
}

// MarshalJSON renders the reference the way it was specified.
func (s StationRef) MarshalJSON() ([]byte, error) {
	if s.byName {
		return json.Marshal(s.name)
	}
	return json.Marshal(s.id)
}

// Resolve maps the reference to a station of the network.
func (s StationRef) Resolve(n *transit.Network, field string) (transit.StationID, error) {
	if s.byName {
		id, ok := n.StationByName(s.name)
		if !ok {
			return 0, &transit.Error{
				Code: transit.CodeUnknownStation, Field: field,
				Message: fmt.Sprintf("unknown station %q", s.name),
			}
		}
		return id, nil
	}
	// Range validation happens in transit.Plan; pass the raw ID through.
	return transit.StationID(s.id), nil
}

// PlanRequest is the JSON request body shared by every /v1 query endpoint.
// The endpoint determines the request kind, so the body carries only the
// kind's parameters; fields foreign to the endpoint's kind are rejected by
// the library's request validation.
type PlanRequest struct {
	From    *StationRef  `json:"from,omitempty"`
	To      *StationRef  `json:"to,omitempty"`
	Sources []StationRef `json:"sources,omitempty"`
	Targets []StationRef `json:"targets,omitempty"`
	// Depart is a clock time "HH:MM" (or "D:HH:MM" for multi-day periods).
	Depart string `json:"depart,omitempty"`
	// WindowFrom / WindowTo restrict a one-to-all search.
	WindowFrom string `json:"window_from,omitempty"`
	WindowTo   string `json:"window_to,omitempty"`
	// MaxTransfers is the pareto transfer budget.
	MaxTransfers int `json:"max_transfers,omitempty"`
}

func missing(field string) error {
	return &transit.Error{
		Code: transit.CodeInvalidRequest, Field: field,
		Message: fmt.Sprintf("missing required field %q", field),
	}
}

func badTime(field, value string, err error) error {
	return &transit.Error{
		Code: transit.CodeBadTime, Field: field,
		Message: fmt.Sprintf("bad time %q: %v", value, err),
	}
}

// needsTo reports whether a kind requires a target station on the wire:
// the single-pair kinds, plus pareto (whose frontier is evaluated toward
// the target even though the search itself is one-to-all).
func needsTo(kind transit.Kind) bool {
	switch kind {
	case transit.KindEarliestArrival, transit.KindJourney, transit.KindProfile, transit.KindPareto:
		return true
	}
	return false
}

// Resolve translates the wire request into a transit.Request of the given
// kind, resolving station references and parsing clock times. Execution
// tuning (threads) is the server's, not the client's, so it arrives via
// opt.
func (p *PlanRequest) Resolve(n *transit.Network, kind transit.Kind, opt transit.Options) (transit.Request, error) {
	req := transit.Request{Kind: kind, Options: opt, MaxTransfers: p.MaxTransfers}
	var err error
	switch kind {
	case transit.KindMatrix:
		if len(p.Sources) == 0 {
			return req, missing("sources")
		}
		if len(p.Targets) == 0 {
			return req, missing("targets")
		}
		req.Sources = make([]transit.StationID, len(p.Sources))
		for i, s := range p.Sources {
			if req.Sources[i], err = s.Resolve(n, "sources"); err != nil {
				return req, err
			}
		}
		req.Targets = make([]transit.StationID, len(p.Targets))
		for i, t := range p.Targets {
			if req.Targets[i], err = t.Resolve(n, "targets"); err != nil {
				return req, err
			}
		}
	default:
		if p.From == nil {
			return req, missing("from")
		}
		if req.From, err = p.From.Resolve(n, "from"); err != nil {
			return req, err
		}
		if needsTo(kind) {
			if p.To == nil {
				return req, missing("to")
			}
			if req.To, err = p.To.Resolve(n, "to"); err != nil {
				return req, err
			}
		}
	}
	if p.Depart != "" {
		if req.Depart, err = transit.ParseClock(p.Depart); err != nil {
			return req, badTime("depart", p.Depart, err)
		}
	}
	if p.WindowFrom != "" || p.WindowTo != "" {
		w := &transit.Window{}
		if p.WindowFrom != "" {
			if w.From, err = transit.ParseClock(p.WindowFrom); err != nil {
				return req, badTime("window_from", p.WindowFrom, err)
			}
		}
		if p.WindowTo != "" {
			if w.To, err = transit.ParseClock(p.WindowTo); err != nil {
				return req, badTime("window_to", p.WindowTo, err)
			}
		} else {
			w.To = transit.Infinity
		}
		req.Window = w
	}
	return req, nil
}

// Station is the brief station echo used inside responses.
type Station struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

func station(n *transit.Network, id transit.StationID) Station {
	return Station{ID: int(id), Name: n.Station(id).Name}
}

// StationInfo is the full station record of /v1/stations.
type StationInfo struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	TransferMin int     `json:"transfer_min"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
}

// StationsResponse is the body of GET /v1/stations.
type StationsResponse struct {
	Stations []StationInfo `json:"stations"`
}

// NewStationsResponse lists every station of the network.
func NewStationsResponse(n *transit.Network) *StationsResponse {
	out := make([]StationInfo, n.NumStations())
	for i := range out {
		st := n.Station(transit.StationID(i))
		out[i] = StationInfo{ID: int(st.ID), Name: st.Name, TransferMin: int(st.Transfer), X: st.X, Y: st.Y}
	}
	return &StationsResponse{Stations: out}
}

// ArrivalResponse is the body of /v1/arrival.
type ArrivalResponse struct {
	From      Station `json:"from"`
	To        Station `json:"to"`
	Depart    string  `json:"depart"`
	Reachable bool    `json:"reachable"`
	// Arrive is present only when Reachable. Minutes is always serialized
	// and only meaningful when Reachable (a genuine zero-minute trip
	// exists: from == to), so branch on Reachable, not on Minutes.
	Arrive  string  `json:"arrive,omitempty"`
	Minutes int     `json:"minutes"`
	QueryMS float64 `json:"query_ms"`
	Trace   *Trace  `json:"trace,omitempty"`
}

// NewArrivalResponse renders an earliest-arrival result.
func NewArrivalResponse(n *transit.Network, req transit.Request, res *transit.Result) (*ArrivalResponse, error) {
	arr, err := res.Arrival()
	if err != nil {
		return nil, err
	}
	out := &ArrivalResponse{
		From:    station(n, req.From),
		To:      station(n, req.To),
		Depart:  n.FormatClock(req.Depart),
		QueryMS: queryMS(res),
	}
	if !arr.IsInf() {
		out.Reachable = true
		out.Arrive = n.FormatClock(arr)
		out.Minutes = int(arr - req.Depart)
	}
	return out, nil
}

// Connection is one relevant departure of a profile.
type Connection struct {
	Depart  string `json:"depart"`
	Arrive  string `json:"arrive"`
	Minutes int    `json:"minutes"`
}

// ProfileResponse is the body of /v1/profile.
type ProfileResponse struct {
	From        Station      `json:"from"`
	To          Station      `json:"to"`
	Connections []Connection `json:"connections"`
	// WalkMinutes is the pure footpath time, -1 when not walkable.
	WalkMinutes int     `json:"walk_minutes"`
	QueryMS     float64 `json:"query_ms"`
	Trace       *Trace  `json:"trace,omitempty"`
}

// NewProfileResponse renders a station-to-station profile result.
func NewProfileResponse(n *transit.Network, req transit.Request, res *transit.Result) (*ProfileResponse, error) {
	p, err := res.Profile()
	if err != nil {
		return nil, err
	}
	out := &ProfileResponse{
		From:        station(n, req.From),
		To:          station(n, req.To),
		Connections: []Connection{},
		WalkMinutes: -1,
		QueryMS:     queryMS(res),
	}
	if w := p.WalkOnly(); !w.IsInf() {
		out.WalkMinutes = int(w)
	}
	for _, c := range p.Connections() {
		out.Connections = append(out.Connections, Connection{
			Depart:  n.FormatClock(c.Departure),
			Arrive:  n.FormatClock(c.Arrival),
			Minutes: int(c.Arrival - c.Departure),
		})
	}
	return out, nil
}

// Leg is one train ride of a journey.
type Leg struct {
	Train  string  `json:"train"`
	From   Station `json:"from"`
	Depart string  `json:"depart"`
	To     Station `json:"to"`
	Arrive string  `json:"arrive"`
	Stops  int     `json:"stops"`
}

// JourneyResponse is the body of /v1/journey.
type JourneyResponse struct {
	From      Station `json:"from"`
	To        Station `json:"to"`
	Depart    string  `json:"depart"`
	Transfers int     `json:"transfers"`
	Legs      []Leg   `json:"legs"`
	QueryMS   float64 `json:"query_ms"`
	Trace     *Trace  `json:"trace,omitempty"`
}

// NewJourneyResponse renders a journey result.
func NewJourneyResponse(n *transit.Network, req transit.Request, res *transit.Result) (*JourneyResponse, error) {
	j, err := res.Journey()
	if err != nil {
		return nil, err
	}
	out := &JourneyResponse{
		From:      station(n, req.From),
		To:        station(n, req.To),
		Depart:    n.FormatClock(req.Depart),
		Transfers: j.Transfers(),
		Legs:      []Leg{},
		QueryMS:   queryMS(res),
	}
	for _, l := range j.Legs {
		out.Legs = append(out.Legs, Leg{
			Train:  l.Train,
			From:   Station{ID: int(l.From), Name: l.FromName},
			Depart: n.FormatClock(l.Departure),
			To:     Station{ID: int(l.To), Name: l.ToName},
			Arrive: n.FormatClock(l.Arrival),
			Stops:  l.Stops,
		})
	}
	return out, nil
}

// ParetoChoice is one point of the arrival/transfers trade-off.
type ParetoChoice struct {
	Transfers int    `json:"transfers"`
	Arrive    string `json:"arrive"`
	Minutes   int    `json:"minutes"`
}

// ParetoResponse is the body of /v1/pareto: the Pareto frontier toward To
// for a departure at Depart. To and Depart come from the request body like
// the other endpoints'.
type ParetoResponse struct {
	From         Station        `json:"from"`
	To           Station        `json:"to"`
	Depart       string         `json:"depart"`
	MaxTransfers int            `json:"max_transfers"`
	Choices      []ParetoChoice `json:"choices"`
	QueryMS      float64        `json:"query_ms"`
	Trace        *Trace         `json:"trace,omitempty"`
}

// NewParetoResponse renders a pareto result evaluated toward req.To at the
// requested departure (the target steers the rendering, not the search).
func NewParetoResponse(n *transit.Network, req transit.Request, res *transit.Result) (*ParetoResponse, error) {
	pp, err := res.Pareto()
	if err != nil {
		return nil, err
	}
	choices, err := pp.Choices(req.To, req.Depart)
	if err != nil {
		return nil, err
	}
	out := &ParetoResponse{
		From:         station(n, req.From),
		To:           station(n, req.To),
		Depart:       n.FormatClock(req.Depart),
		MaxTransfers: req.MaxTransfers,
		Choices:      []ParetoChoice{},
		QueryMS:      queryMS(res),
	}
	for _, c := range choices {
		out.Choices = append(out.Choices, ParetoChoice{
			Transfers: c.Transfers,
			Arrive:    n.FormatClock(c.Arrival),
			Minutes:   int(c.Arrival - req.Depart),
		})
	}
	return out, nil
}

// MatrixResponse is the body of /v1/matrix: travel minutes from every
// source (row) to every target (column), -1 when unreachable.
type MatrixResponse struct {
	Depart  string    `json:"depart"`
	Sources []Station `json:"sources"`
	Targets []Station `json:"targets"`
	Minutes [][]int   `json:"minutes"`
	QueryMS float64   `json:"query_ms"`
	Trace   *Trace    `json:"trace,omitempty"`
}

// NewMatrixResponse renders a matrix result.
func NewMatrixResponse(n *transit.Network, req transit.Request, res *transit.Result) (*MatrixResponse, error) {
	m, err := res.Matrix()
	if err != nil {
		return nil, err
	}
	out := &MatrixResponse{
		Depart:  n.FormatClock(req.Depart),
		Sources: make([]Station, len(req.Sources)),
		Targets: make([]Station, len(req.Targets)),
		Minutes: make([][]int, len(m)),
		QueryMS: queryMS(res),
	}
	for i, s := range req.Sources {
		out.Sources[i] = station(n, s)
	}
	for j, t := range req.Targets {
		out.Targets[j] = station(n, t)
	}
	for i, row := range m {
		r := make([]int, len(row))
		for j, arr := range row {
			if arr.IsInf() {
				r[j] = -1
			} else {
				r[j] = int(arr - req.Depart)
			}
		}
		out.Minutes[i] = r
	}
	return out, nil
}

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

// ErrorResponse is the envelope every /v1 error travels in.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// NewErrorResponse wraps any error into the envelope, preserving the
// transit error code and field when present.
func NewErrorResponse(err error) *ErrorResponse {
	body := ErrorBody{Code: string(transit.ErrorCodeOf(err)), Message: err.Error()}
	var te *transit.Error
	if errors.As(err, &te) {
		body.Field = te.Field
		body.Message = te.Message
	}
	return &ErrorResponse{Error: body}
}

// HTTPStatus maps an error code to the status of its /v1 response.
func HTTPStatus(code transit.ErrorCode) int {
	switch code {
	case transit.CodeUnreachable, transit.CodeUnknownNetwork:
		return 404
	case transit.CodeCancelled:
		// Client went away; 499 in the nginx tradition (no stdlib constant).
		return 499
	case transit.CodeDeadlineExceeded:
		return 504
	case transit.CodeOverloaded:
		// Shed by admission control; the response carries a Retry-After
		// back-off hint.
		return 429
	case transit.CodeReadOnly:
		// A write addressed to a replica; the response's Location header
		// names the updater that accepts it.
		return 403
	case transit.CodeInternal:
		return 500
	default:
		return 400
	}
}

// HealthResponse is the body of the GET /readyz readiness probe. Status is
// "ready" while the instance should receive traffic, "starting" before the
// listener is up, "draining" once shutdown began, and "syncing" on a
// replica still catching up with its updater (more than -sync-lag epochs
// behind, or not yet connected); Epoch is the default network's serving
// epoch, present only when ready. LagEpochs accompanies "syncing" with how
// far behind the replica knows itself to be.
type HealthResponse struct {
	Status    string `json:"status"`
	Epoch     uint64 `json:"epoch,omitempty"`
	LagEpochs uint64 `json:"lag_epochs,omitempty"`
}

// ReplicationStatus is the body of GET /v1/replication/status, served by
// both replication roles. Role is "updater" or "replica"; Epoch is the
// local serving epoch. The remaining fields describe one side each and are
// zero on the other.
type ReplicationStatus struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`

	// Updater side: connected stream subscribers, the oldest epoch a
	// stream can resume from (below it a follower is sent to the full
	// snapshot), and the cumulative deltas/snapshots served.
	Subscribers     int    `json:"subscribers,omitempty"`
	RetainedFloor   uint64 `json:"retained_floor,omitempty"`
	DeltasSent      uint64 `json:"deltas_sent,omitempty"`
	SnapshotsServed uint64 `json:"snapshots_served,omitempty"`

	// Replica side: the updater it follows, how far behind it is (valid
	// only once LagKnown — a replica that never reached its updater cannot
	// claim a lag), and the cumulative deltas applied, stream reconnects,
	// full-snapshot resyncs, and detected divergences.
	UpdaterURL      string `json:"updater_url,omitempty"`
	LagEpochs       uint64 `json:"lag_epochs,omitempty"`
	LagKnown        bool   `json:"lag_known,omitempty"`
	DeltasApplied   uint64 `json:"deltas_applied,omitempty"`
	Reconnects      uint64 `json:"reconnects,omitempty"`
	SnapshotFetches uint64 `json:"snapshot_fetches,omitempty"`
	Divergences     uint64 `json:"divergences,omitempty"`
}

// NetworkInfo describes one network of a multi-tenant catalog server, as
// listed by GET /v1/networks.
type NetworkInfo struct {
	Name string `json:"name"`
	// Default marks the network serving the un-prefixed legacy routes and
	// the un-prefixed /v1 query endpoints.
	Default bool `json:"default,omitempty"`
	// Resident reports whether the network is currently loaded; Epoch and
	// SnapshotBytes describe the loaded (or last-loaded) state. A cold
	// network that was never loaded reports epoch 0 and zero bytes.
	Resident      bool   `json:"resident"`
	Epoch         uint64 `json:"epoch"`
	SnapshotBytes int64  `json:"snapshot_bytes,omitempty"`
}

// NetworksResponse is the body of GET /v1/networks.
type NetworksResponse struct {
	Networks []NetworkInfo `json:"networks"`
}

// queryMS renders the query wall time in milliseconds.
func queryMS(res *transit.Result) float64 {
	return float64(res.Stats().Elapsed.Microseconds()) / 1000
}

package apiv1

import "transit"

// Effort is the wire form of the search-work counters a query accumulated
// (transit.SearchEffortSnapshot re-exported under this package's
// compatibility contract).
type Effort = transit.SearchEffortSnapshot

// Trace is the per-query breakdown attached to a response when the client
// requests ?debug=trace: where the request's wall time went, stage by
// stage, plus the search-effort counters. The same stages travel on every
// response as a Server-Timing header; the inline block exists so a single
// curl shows the whole picture without header parsing.
//
// Stage semantics: QueueWaitMS is time spent queued at the admission gate;
// CacheLookupMS is time inside the result cache outside the search
// (for hits it is the whole plan step, for coalesced requests it includes
// waiting on the leader's in-flight search); SearchMS is the query
// execution itself; EncodeMS is JSON rendering. TotalMS is the handler's
// wall time and exceeds the sum by routing/decode overhead.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Network is the catalog tenant that answered (omitted by
	// single-network servers predating the catalog, where it is implied).
	Network string `json:"network,omitempty"`
	Epoch   uint64 `json:"epoch"`
	// Cache is the result-cache outcome: "bypass", "miss", "hit", or
	// "coalesced".
	Cache         string  `json:"cache"`
	QueueWaitMS   float64 `json:"queue_wait_ms"`
	CacheLookupMS float64 `json:"cache_lookup_ms"`
	SearchMS      float64 `json:"search_ms"`
	EncodeMS      float64 `json:"encode_ms"`
	TotalMS       float64 `json:"total_ms"`
	// Effort is present when a search actually ran (cache hits report
	// zero rounds and omit it).
	Effort *Effort `json:"effort,omitempty"`
}

// SetTrace attaches the debug trace block to a response. Each query
// response type implements it so the server can set the block after the
// (timed) first encode without knowing the concrete type.
func (r *ArrivalResponse) SetTrace(t *Trace) { r.Trace = t }
func (r *ProfileResponse) SetTrace(t *Trace) { r.Trace = t }
func (r *JourneyResponse) SetTrace(t *Trace) { r.Trace = t }
func (r *ParetoResponse) SetTrace(t *Trace)  { r.Trace = t }
func (r *MatrixResponse) SetTrace(t *Trace)  { r.Trace = t }

package transit

// Benchmarks regenerating the paper's evaluation (see DESIGN.md §4 and
// EXPERIMENTS.md). One benchmark per table and per ablation:
//
//	BenchmarkTable1OneToAll/<family>/CS-p<N>   — Table 1 rows (CS, 1–8 cores)
//	BenchmarkTable1OneToAll/<family>/LC        — Table 1 LC baseline rows
//	BenchmarkTable2StationToStation/<family>/<selection> — Table 2 rows
//	BenchmarkAblation*                          — design-choice ablations
//
// The per-op metrics reported via b.ReportMetric mirror the paper's
// columns: settled connections per query and (for parallel runs) the
// critical-path work that determines achievable speed-up.

import (
	"fmt"
	"testing"

	"transit/internal/bench"
	"transit/internal/core"
	"transit/internal/timetable"
)

// benchScale keeps `go test -bench=.` under a few minutes on one core
// while preserving the workload shape; cmd/tpbench -scale raises it.
const benchScale = 0.12

var benchNets = map[string]*bench.Network{}

func benchNet(b *testing.B, family string) *bench.Network {
	b.Helper()
	if n, ok := benchNets[family]; ok {
		return n
	}
	n, err := bench.Load(family, benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchNets[family] = n
	return n
}

func benchSources(net *bench.Network, n int) []timetable.StationID {
	out := make([]timetable.StationID, n)
	for i := range out {
		out[i] = timetable.StationID((i * 7919) % net.TT.NumStations())
	}
	return out
}

// BenchmarkRepreprocess regenerates the incremental distance-table repair
// acceptance numbers on the losangeles 0.25 network: full re-preprocessing
// (Preprocess of the patched network) against incremental Repreprocess from
// the pre-delay base, for small delay batches (well under 1% of the
// network's connections). rows_repaired/op and rows_windowed/op report how
// much of the table the repair actually recomputed and how many of those
// rows used the interval search over the batch's departure window.
func BenchmarkRepreprocess(b *testing.B) {
	net, err := Generate("losangeles", 0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	sel := TransferSelection{Fraction: 0.10}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		ops  []DelayOp
	}{
		{"delayed-train", []DelayOp{{Train: net.Timetable().Trains[0].Name, Delay: 10}}},
		{"route-disruption", []DelayOp{{Routes: []int{3}, WindowFrom: 480, WindowTo: 540, Delay: 12}}},
	}
	for _, tc := range cases {
		next, st, err := base.ApplyUpdates(tc.ops)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/full", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := next.Preprocess(sel, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/repair", func(b *testing.B) {
			var repaired, windowed int
			for i := 0; i < b.N; i++ {
				_, ps, err := next.Repreprocess(base, st.Touched, sel, opt)
				if err != nil {
					b.Fatal(err)
				}
				if ps.FullRebuild {
					b.Fatalf("repair fell back: %s", ps.Fallback)
				}
				repaired += ps.RowsRepaired
				windowed += ps.RowsWindowed
			}
			b.ReportMetric(float64(repaired)/float64(b.N), "rows_repaired/op")
			b.ReportMetric(float64(windowed)/float64(b.N), "rows_windowed/op")
		})
	}
}

// BenchmarkTable1OneToAll regenerates Table 1: one-to-all profile queries
// with the connection-setting algorithm on 1, 2, 4 and 8 threads, and the
// label-correcting baseline.
func BenchmarkTable1OneToAll(b *testing.B) {
	for _, family := range bench.Families() {
		b.Run(family, func(b *testing.B) {
			net := benchNet(b, family)
			sources := benchSources(net, 16)
			for _, p := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("CS-p%d", p), func(b *testing.B) {
					var settled, critical int64
					for i := 0; i < b.N; i++ {
						res, err := core.OneToAll(net.G, sources[i%len(sources)], core.Options{Threads: p})
						if err != nil {
							b.Fatal(err)
						}
						settled += res.Run.Total.SettledConns
						critical += res.Run.MaxThreadSettled()
					}
					b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
					b.ReportMetric(float64(critical)/float64(b.N), "critical/op")
				})
			}
			b.Run("LC", func(b *testing.B) {
				var settled int64
				for i := 0; i < b.N; i++ {
					res, err := core.LabelCorrecting(net.G, sources[i%len(sources)], core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					settled += res.Run.Total.SettledConns
				}
				b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
			})
		})
	}
}

// BenchmarkTable2StationToStation regenerates Table 2: station-to-station
// profile queries with the stopping criterion and distance tables of
// varying size.
func BenchmarkTable2StationToStation(b *testing.B) {
	for _, family := range bench.Families() {
		b.Run(family, func(b *testing.B) {
			net := benchNet(b, family)
			sources := benchSources(net, 32)
			for _, sel := range bench.PaperSelections(false) {
				b.Run(selName(sel.Label), func(b *testing.B) {
					env := core.QueryEnv{Graph: net.G}
					if sel.Fraction > 0 || sel.MinDegree > 0 {
						var marked []bool
						if sel.MinDegree > 0 {
							marked = net.SG.SelectByDegree(sel.MinDegree)
						} else {
							keep := int(float64(net.TT.NumStations()) * sel.Fraction)
							if keep < 1 {
								keep = 1
							}
							marked = net.SG.SelectByContraction(keep)
						}
						pre, err := core.BuildDistanceTable(net.G, marked, core.Options{}, 1, false)
						if err != nil {
							b.Fatal(err)
						}
						env.StationGraph = net.SG
						env.Table = pre.Table
					}
					b.ReportAllocs()
					b.ResetTimer()
					var settled int64
					for i := 0; i < b.N; i++ {
						src := sources[i%len(sources)]
						dst := sources[(i+5)%len(sources)]
						if src == dst {
							dst = timetable.StationID((int(dst) + 1) % net.TT.NumStations())
						}
						res, err := core.StationToStation(env, src, dst, core.QueryOptions{})
						if err != nil {
							b.Fatal(err)
						}
						settled += res.Run.Total.SettledConns
					}
					b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
				})
			}
		})
	}
}

func selName(label string) string {
	switch label {
	case "deg > 2":
		return "deg2"
	default:
		return "frac" + label
	}
}

// BenchmarkAblationSelfPruning quantifies Theorem 1 (self-pruning) on the
// one-to-all workload.
func BenchmarkAblationSelfPruning(b *testing.B) {
	net := benchNet(b, "oahu")
	sources := benchSources(net, 16)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var settled int64
			for i := 0; i < b.N; i++ {
				res, err := core.OneToAll(net.G, sources[i%len(sources)], core.Options{DisableSelfPruning: disable})
				if err != nil {
					b.Fatal(err)
				}
				settled += res.Run.Total.SettledConns
			}
			b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
		})
	}
}

// BenchmarkAblationPartition compares the partition strategies of
// Section 3.2 at 4 threads.
func BenchmarkAblationPartition(b *testing.B) {
	net := benchNet(b, "losangeles")
	sources := benchSources(net, 16)
	for _, strat := range []core.PartitionStrategy{core.EqualConnections, core.EqualTimeSlots, core.KMeans} {
		b.Run(strat.String(), func(b *testing.B) {
			var critical int64
			for i := 0; i < b.N; i++ {
				res, err := core.OneToAll(net.G, sources[i%len(sources)], core.Options{Threads: 4, Partition: strat})
				if err != nil {
					b.Fatal(err)
				}
				critical += res.Run.MaxThreadSettled()
			}
			b.ReportMetric(float64(critical)/float64(b.N), "critical/op")
		})
	}
}

// BenchmarkAblationHeap compares the paper's binary heap with a 4-ary heap.
func BenchmarkAblationHeap(b *testing.B) {
	net := benchNet(b, "washington")
	sources := benchSources(net, 16)
	for _, arity := range []int{2, 4} {
		b.Run(fmt.Sprintf("%d-ary", arity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.OneToAll(net.G, sources[i%len(sources)], core.Options{HeapArity: arity}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStopping quantifies Theorem 2 on station-to-station
// queries without distance tables.
func BenchmarkAblationStopping(b *testing.B) {
	net := benchNet(b, "germany")
	sources := benchSources(net, 32)
	env := core.QueryEnv{Graph: net.G}
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var settled int64
			for i := 0; i < b.N; i++ {
				src := sources[i%len(sources)]
				dst := sources[(i+9)%len(sources)]
				if src == dst {
					dst = timetable.StationID((int(dst) + 1) % net.TT.NumStations())
				}
				res, err := core.StationToStation(env, src, dst, core.QueryOptions{DisableStoppingCriterion: disable})
				if err != nil {
					b.Fatal(err)
				}
				settled += res.Run.Total.SettledConns
			}
			b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
		})
	}
}

// BenchmarkApplyDelays compares the two dynamic-update paths on a delay
// batch of roughly 100 connections (one route class of the benchmark
// network): ApplyDelays — the seed's full rebuild with re-validation, route
// re-derivation and complete index reconstruction — against ApplyUpdates,
// the incremental copy-on-write patch behind internal/live. The gap is the
// per-update cost a live server saves on every delay message.
func BenchmarkApplyDelays(b *testing.B) {
	net := benchNet(b, "washington")
	n := transitNetwork(net)
	// Pick the route class whose connection count is closest to 100.
	counts := map[int]int{}
	for _, ci := range n.Connections() {
		counts[ci.Route]++
	}
	route, batch := -1, 0
	for r, c := range counts {
		if route < 0 || absInt(c-100) < absInt(batch-100) || (absInt(c-100) == absInt(batch-100) && r < route) {
			route, batch = r, c
		}
	}
	if route < 0 {
		b.Fatal("no routes")
	}
	b.Logf("delaying route %d: %d connections per batch", route, batch)
	b.Run("full-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := n.ApplyDelays(7, func(ci ConnectionInfo) bool { return ci.Route == route }); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "conns/batch")
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := n.ApplyUpdates([]DelayOp{{Routes: []int{route}, Delay: 7}}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch), "conns/batch")
	})
}

// transitNetwork wraps a bench network's timetable as a public Network.
func transitNetwork(net *bench.Network) *Network { return NewNetwork(net.TT) }

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkPublicAPIQuery measures the end-to-end public API path.
func BenchmarkPublicAPIQuery(b *testing.B) {
	n, err := Generate("oahu", benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("EarliestArrival", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := n.EarliestArrival(0, StationID(1+i%(n.NumStations()-1)), 480, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Profile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := n.Profile(0, StationID(1+i%(n.NumStations()-1)), Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteadyStateStationQuery measures the zero-allocation query path:
// station-to-station profile queries through one reused core.Workspace —
// the paper's per-thread data-structure reuse, and the configuration a
// server worker runs in. The allocs/op column is the headline: the
// pre-workspace implementation allocated and Infinity-filled O(n·k) arrays
// per query here.
func BenchmarkSteadyStateStationQuery(b *testing.B) {
	net := benchNet(b, "oahu")
	sources := benchSources(net, 32)
	env := core.QueryEnv{Graph: net.G}
	// The effort-tracked mode runs the same pooled-workspace loop with an
	// attached core.Effort counter block — the observability contract is
	// that tracing a query costs zero allocations, so its allocs/op column
	// must read identically to pooled-workspace.
	for _, mode := range []string{"pooled-workspace", "effort-tracked", "detached"} {
		b.Run(mode, func(b *testing.B) {
			ws := core.GetWorkspace()
			defer core.PutWorkspace(ws)
			opts := core.QueryOptions{}
			var effort core.Effort
			if mode == "effort-tracked" {
				opts.Effort = &effort
			}
			// Warm-up grows the workspace arrays to steady-state size.
			if _, err := ws.StationToStation(env, sources[0], sources[1], opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var settled int64
			for i := 0; i < b.N; i++ {
				src := sources[i%len(sources)]
				dst := sources[(i+5)%len(sources)]
				if src == dst {
					dst = timetable.StationID((int(dst) + 1) % net.TT.NumStations())
				}
				var err error
				var res *core.StationQueryResult
				if mode == "detached" {
					// Package-level wrapper: pools the search arrays but
					// detaches (copies) the O(k) result vectors.
					res, err = core.StationToStation(env, src, dst, opts)
				} else {
					res, err = ws.StationToStation(env, src, dst, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
				settled += res.Run.Total.SettledConns
			}
			b.ReportMetric(float64(settled)/float64(b.N), "settled/op")
			if mode == "effort-tracked" && effort.ConnsScanned.Load() == 0 {
				b.Fatal("effort block saw no work")
			}
		})
	}
}

// BenchmarkBaselineCSA measures the Connection Scan reference on the same
// time-query workload as the graph-based search, for the modern-baseline
// comparison in EXPERIMENTS.md.
func BenchmarkBaselineCSA(b *testing.B) {
	net := benchNet(b, "oahu")
	sched := core.NewConnectionScan(net.TT)
	sources := benchSources(net, 16)
	b.Run("csa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.Query(sources[i%len(sources)], 480, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("td-dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TimeQuery(net.G, sources[i%len(sources)], 480, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package transit

// Shape assertions for the paper's evaluation: each qualitative claim of
// Section 5 (who wins, by roughly what factor, where behaviour degrades)
// is checked against the regenerated tables. Absolute numbers differ from
// the paper — the networks are scaled-down synthetic analogues and the
// host differs — but these shapes are what the paper's conclusions rest
// on. EXPERIMENTS.md records the measured values side by side with the
// paper's.

import (
	"testing"

	"transit/internal/bench"
)

const expScale = 0.12

func expNet(t *testing.T, family string) *bench.Network {
	t.Helper()
	net, err := bench.Load(family, expScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// Table 1, claim 1: connection-setting clearly outperforms label-correcting
// in settled connections (paper: 6–15× depending on network).
func TestShapeT1CSBeatsLC(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	for _, family := range []string{"oahu", "germany"} {
		net := expNet(t, family)
		rows, err := bench.Table1(net, []int{1}, 6, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		cs, lc := rows[0], rows[1]
		if lc.Algo != "LC" {
			t.Fatal("row order changed")
		}
		ratio := lc.MeanSettled / cs.MeanSettled
		if ratio < 3 {
			t.Errorf("%s: LC/CS settled ratio %.1f, want ≥3 (paper: 6–15)", family, ratio)
		}
		t.Logf("%s: CS %.0f vs LC %.0f settled (ratio %.1f)", family, cs.MeanSettled, lc.MeanSettled, ratio)
	}
}

// Table 1, claim 2: parallelization costs little extra work (paper: ≈10–20%
// more settled connections at p=8, worse only on sparse Europe), and the
// critical-path (ideal) speed-up grows with p: ≈1.9 / 3 / 4.6 measured on
// real 8-core hardware, which work-based speed-up upper-bounds.
func TestShapeT1Scalability(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	growth := map[string]float64{}
	for _, family := range []string{"oahu", "europe"} {
		net := expNet(t, family)
		rows, err := bench.Table1(net, []int{1, 2, 4, 8}, 6, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		p1 := rows[0]
		prevIdeal := 0.0
		for _, r := range rows {
			if r.IdealSpeedUp < prevIdeal-0.2 {
				t.Errorf("%s: ideal speed-up not monotone: %v", family, rows)
			}
			prevIdeal = r.IdealSpeedUp
		}
		p8 := rows[3]
		g := p8.MeanSettled / p1.MeanSettled
		growth[family] = g
		if g < 0.99 {
			t.Errorf("%s: parallel run settled less than sequential (%.2f)", family, g)
		}
		if g > 2.0 {
			t.Errorf("%s: work grew %.2f× at p=8, want moderate growth", family, g)
		}
		if rows[1].IdealSpeedUp < 1.5 || rows[2].IdealSpeedUp < 2.2 || p8.IdealSpeedUp < 3.0 {
			t.Errorf("%s: ideal speed-ups too low: p2=%.1f p4=%.1f p8=%.1f",
				family, rows[1].IdealSpeedUp, rows[2].IdealSpeedUp, p8.IdealSpeedUp)
		}
		t.Logf("%s: work growth %.2f, ideal speed-ups %.1f/%.1f/%.1f",
			family, g, rows[1].IdealSpeedUp, rows[2].IdealSpeedUp, p8.IdealSpeedUp)
	}
	// Sparse rail loses more self-pruning across threads than dense bus
	// (the paper's Europe observation). Allow generous slack for noise.
	if growth["europe"] < growth["oahu"]-0.05 {
		t.Errorf("europe work growth (%.2f) expected ≥ oahu (%.2f)", growth["europe"], growth["oahu"])
	}
}

// Table 2, claim 1: the stopping criterion alone reduces work on
// station-to-station queries (paper: ≈20%).
func TestShapeT2StoppingCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	net := expNet(t, "washington")
	rows, err := bench.AblationStopping(net, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	on, off := rows[0], rows[1]
	if on.MeanSettled >= off.MeanSettled {
		t.Errorf("stopping criterion did not reduce work: %.0f vs %.0f", on.MeanSettled, off.MeanSettled)
	}
	t.Logf("stopping criterion: %.0f vs %.0f settled (%.0f%%)",
		on.MeanSettled, off.MeanSettled, 100*on.MeanSettled/off.MeanSettled)
}

// Table 2, claim 2: distance tables accelerate queries, with diminishing
// returns — tiny tables hardly help, larger selections give real speed-ups,
// preprocessing cost grows with the selection.
func TestShapeT2DistanceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	// Rail shows separation already at moderate size; bus needs larger
	// scale for the same effect (see EXPERIMENTS.md), so assert on rail
	// at the default experiment scale plus the larger oahu check below.
	net := expNet(t, "germany")
	sels := []bench.Selection{
		{Label: "0.0%"},
		{Label: "5.0%", Fraction: 0.05},
		{Label: "20.0%", Fraction: 0.20},
		{Label: "deg > 2", MinDegree: 2},
	}
	rows, err := bench.Table2(net, sels, 10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, five, twenty, deg := rows[0], rows[1], rows[2], rows[3]
	if base.SpeedUp != 1 {
		t.Fatal("baseline speed-up must be 1")
	}
	if twenty.SpeedUp < 1.1 {
		t.Errorf("20%% table speed-up %.2f, want > 1.1", twenty.SpeedUp)
	}
	if twenty.SpeedUp < five.SpeedUp-0.1 {
		t.Errorf("speed-up shrank with larger table: 5%%=%.2f 20%%=%.2f", five.SpeedUp, twenty.SpeedUp)
	}
	if twenty.PreproTime <= five.PreproTime/4 {
		t.Errorf("preprocessing time did not grow with the table: %v vs %v", five.PreproTime, twenty.PreproTime)
	}
	if twenty.TableMiB <= five.TableMiB {
		t.Errorf("table size did not grow: %.2f vs %.2f MiB", five.TableMiB, twenty.TableMiB)
	}
	t.Logf("germany: spd 5%%=%.2f 20%%=%.2f deg>2=%.2f (sizes %.2f/%.2f/%.2f MiB)",
		five.SpeedUp, twenty.SpeedUp, deg.SpeedUp, five.TableMiB, twenty.TableMiB, deg.TableMiB)
}

// Table 2, claim 3: on dense bus networks the same effect appears once the
// transfer-station set is dense enough to separate neighbourhoods (larger
// scale; the paper's full-size networks are 10–17× bigger still).
func TestShapeT2BusAtLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	net, err := bench.Load("oahu", 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sels := []bench.Selection{
		{Label: "0.0%"},
		{Label: "20.0%", Fraction: 0.20},
	}
	rows, err := bench.Table2(net, sels, 6, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].SpeedUp < 1.3 {
		t.Errorf("oahu@0.4 20%% table speed-up %.2f, want ≥1.3", rows[1].SpeedUp)
	}
	t.Logf("oahu@0.4: 20%% table speed-up %.2f", rows[1].SpeedUp)
}

// Ablation: the equal-time-slots partition is less balanced than equal
// connections under rush-hour departure distributions (Section 3.2).
func TestShapePartitionBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests run the full harness")
	}
	net := expNet(t, "losangeles")
	rows, err := bench.AblationPartition(net, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bench.AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	ec := byName["equal-connections"]
	ts := byName["equal-time-slots"]
	if ts.Imbalance < ec.Imbalance {
		t.Errorf("time-slots (%.2f) should be less balanced than equal-connections (%.2f)",
			ts.Imbalance, ec.Imbalance)
	}
	t.Logf("imbalance: equal-conns %.2f, time-slots %.2f, k-means %.2f",
		ec.Imbalance, ts.Imbalance, byName["k-means"].Imbalance)
}

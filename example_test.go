package transit_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"transit"
)

// exampleNetwork builds a tiny deterministic three-station network: an
// express and a local line from Airport via Center to Harbor, hourly.
func exampleNetwork() *transit.Network {
	tb := transit.NewTimetableBuilder(0) // 0 = the 1440-minute day
	airport := tb.AddStation("Airport", 2)
	center := tb.AddStation("Center", 3)
	harbor := tb.AddStation("Harbor", 2)
	for h := 6; h <= 22; h++ {
		// Express: Airport →(24 min)→ Center, on the hour.
		if err := tb.AddTrain(fmt.Sprintf("X%02d", h), []transit.StationID{airport, center},
			transit.Ticks(h*60), []transit.Ticks{24}, 0); err != nil {
			log.Fatal(err)
		}
		// Local: Airport →(40)→ Center →(15)→ Harbor, at half past.
		if err := tb.AddTrain(fmt.Sprintf("L%02d", h), []transit.StationID{airport, center, harbor},
			transit.Ticks(h*60+30), []transit.Ticks{40, 15}, 2); err != nil {
			log.Fatal(err)
		}
	}
	net, err := tb.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

// A plain time-query: depart at 08:10, when do we arrive? The 08:00 express
// is gone, so the answer rides the 08:30 local.
func ExampleNetwork_EarliestArrival() {
	net := exampleNetwork()
	airport, _ := net.StationByName("Airport")
	center, _ := net.StationByName("Center")

	dep, _ := transit.ParseClock("08:10")
	arr, err := net.EarliestArrival(airport, center, dep, transit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depart %s, arrive %s (%d min)\n",
		net.FormatClock(dep), net.FormatClock(arr), arr-dep)
	// Output:
	// depart 08:10, arrive 09:10 (60 min)
}

// A profile query: all best connections of the whole period in one search —
// the paper's core operation. Both lines appear: a traveller present at
// hh:30 sharp is better off on the local than waiting for the next express.
func ExampleNetwork_Profile() {
	net := exampleNetwork()
	airport, _ := net.StationByName("Airport")
	center, _ := net.StationByName("Center")

	profile, _, err := net.Profile(airport, center, transit.Options{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	conns := profile.Connections()
	fmt.Printf("%d relevant connections; first three:\n", len(conns))
	for _, c := range conns[:3] {
		fmt.Printf("  dep %s arr %s\n", net.FormatClock(c.Departure), net.FormatClock(c.Arrival))
	}
	// Output:
	// 34 relevant connections; first three:
	//   dep 06:00 arr 06:24
	//   dep 06:30 arr 07:10
	//   dep 07:00 arr 07:24
}

// A dynamic update: delay one train and cancel another. ApplyUpdates
// returns a new network sharing all untouched structure with the old one,
// which keeps serving concurrent queries unchanged.
func ExampleNetwork_ApplyUpdates() {
	net := exampleNetwork()
	airport, _ := net.StationByName("Airport")
	center, _ := net.StationByName("Center")
	dep, _ := transit.ParseClock("07:55")

	before, _ := net.EarliestArrival(airport, center, dep, transit.Options{})
	updated, stats, err := net.ApplyUpdates([]transit.DelayOp{
		{Train: "X08", Delay: 20},    // 08:00 express leaves 08:20
		{Train: "X09", Cancel: true}, // 09:00 express never runs
	})
	if err != nil {
		log.Fatal(err)
	}
	after, _ := updated.EarliestArrival(airport, center, dep, transit.Options{})
	fmt.Printf("delayed %d train(s), cancelled %d\n", stats.TrainsDelayed, stats.TrainsCancelled)
	fmt.Printf("07:55 traveller: %s before, %s after\n", net.FormatClock(before), net.FormatClock(after))
	// Output:
	// delayed 1 train(s), cancelled 1
	// 07:55 traveller: 08:24 before, 08:44 after
}

// Persistence: write the query-ready network into the versioned snapshot
// container and boot a fresh Network from it — the tpserver -snapshot path.
func ExampleLoadSnapshot() {
	net := exampleNetwork()

	var buf bytes.Buffer
	if err := net.WriteSnapshot(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, state, err := transit.LoadSnapshot(&buf)
	if err != nil {
		log.Fatal(err)
	}
	airport, _ := loaded.StationByName("Airport")
	harbor, _ := loaded.StationByName("Harbor")
	dep, _ := transit.ParseClock("08:00")
	arr, _ := loaded.EarliestArrival(airport, harbor, dep, transit.Options{})
	fmt.Printf("epoch %d snapshot; Airport→Harbor at %s arrives %s\n",
		state.Epoch, loaded.FormatClock(dep), loaded.FormatClock(arr))
	// Output:
	// epoch 0 snapshot; Airport→Harbor at 08:00 arrives 09:27
}

// The unified request API: every query kind goes through one cancellable
// entry point, Network.Plan, which the /v1 HTTP surface of cmd/tpserver
// mirrors one-to-one (docs/API.md). Validation failures carry
// machine-readable codes.
func ExampleNetwork_Plan() {
	net := exampleNetwork()
	ctx := context.Background()
	airport, _ := net.StationByName("Airport")
	center, _ := net.StationByName("Center")
	harbor, _ := net.StationByName("Harbor")
	dep, _ := transit.ParseClock("08:00")

	// A scalar earliest-arrival request.
	res, err := net.Plan(ctx, transit.Request{
		Kind: transit.KindEarliestArrival, From: airport, To: harbor, Depart: dep,
	})
	if err != nil {
		log.Fatal(err)
	}
	arr, _ := res.Arrival()
	fmt.Printf("Airport→Harbor arrives %s\n", net.FormatClock(arr))

	// A batch matrix request: every sources×targets pair in one call.
	res, err = net.Plan(ctx, transit.Request{
		Kind:    transit.KindMatrix,
		Sources: []transit.StationID{airport, center},
		Targets: []transit.StationID{harbor},
		Depart:  dep,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, _ := res.Matrix()
	fmt.Printf("matrix minutes: Airport %d, Center %d\n", m[0][0]-dep, m[1][0]-dep)

	// Malformed requests fail with a typed, machine-readable code — the
	// same code the /v1 error envelope carries on the wire.
	_, err = net.Plan(ctx, transit.Request{Kind: "teleport"})
	fmt.Println("error code:", transit.ErrorCodeOf(err))
	// Output:
	// Airport→Harbor arrives 09:27
	// matrix minutes: Airport 87, Center 27
	// error code: unknown_kind
}

package transit

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"transit/internal/core"
)

// Kind selects what a Request asks for. The string values are the wire
// names of the /v1 HTTP API (docs/API.md).
type Kind string

const (
	// KindEarliestArrival asks for the earliest arrival at To when
	// departing From at Depart (a scalar answer; the paper's time-query).
	KindEarliestArrival Kind = "earliest-arrival"
	// KindJourney asks for a concrete itinerary From → To departing at
	// Depart, with train legs and transfers.
	KindJourney Kind = "journey"
	// KindProfile asks for all best connections From → To over the whole
	// period (the paper's station-to-station profile query, accelerated by
	// the distance table when the network is preprocessed).
	KindProfile Kind = "profile"
	// KindOneToAll asks for the best connections from From to every
	// station — the paper's one-to-all profile search — optionally
	// restricted to departures within Window.
	KindOneToAll Kind = "one-to-all"
	// KindPareto asks for the multi-criteria one-to-all search from From:
	// per station, the arrival/transfers Pareto trade-off up to
	// MaxTransfers.
	KindPareto Kind = "pareto"
	// KindMatrix asks for the earliest arrival from every Sources[i] to
	// every Targets[j] when departing at Depart — the batch one-to-many
	// query behind the /v1/matrix endpoint. Each row costs one
	// time-query; rows run concurrently up to Options.Threads.
	KindMatrix Kind = "matrix"
)

// Kinds lists the supported request kinds in documentation order.
func Kinds() []Kind {
	return []Kind{KindEarliestArrival, KindJourney, KindProfile, KindOneToAll, KindPareto, KindMatrix}
}

// Window restricts a one-to-all profile search to departures within
// [From, To] (Dean's interval search).
type Window struct {
	From Ticks
	To   Ticks
}

// Request is the unified query request answered by Network.Plan. Kind
// decides which fields are consulted:
//
//	Kind             uses
//	earliest-arrival From, To, Depart
//	journey          From, To, Depart
//	profile          From, To
//	one-to-all       From, Window (optional)
//	pareto           From, MaxTransfers (To is validated as the
//	                 evaluation target the wire layer renders toward)
//	matrix           Sources, Targets, Depart
//
// Fields a kind does not use are ignored, except the ones with no natural
// zero value — Window, MaxTransfers, Sources, Targets — which must be unset
// on kinds that do not support them (Plan rejects them with a typed
// *Error, so a misdirected request fails loudly instead of silently
// dropping a constraint).
type Request struct {
	Kind Kind

	// From and To are the endpoints of the single-pair kinds.
	From StationID
	To   StationID

	// Sources and Targets are the row and column stations of a matrix
	// request.
	Sources []StationID
	Targets []StationID

	// Depart is the absolute departure time of the time-dependent kinds.
	Depart Ticks

	// Window restricts a one-to-all search to a departure interval.
	Window *Window

	// MaxTransfers is the transfer budget of a pareto request (0–32).
	MaxTransfers int

	// Options carries the execution tuning (threads, partition strategy,
	// journey tracking) shared with the legacy entry points.
	Options Options

	// Reuse, when non-nil, is overwritten with the answer and returned by
	// Plan instead of a freshly allocated Result. Steady-state callers
	// (servers answering scalar queries) reuse one Result per worker to
	// keep the earliest-arrival path at zero allocations per query.
	Reuse *Result
}

// Result is the unified answer of Network.Plan: one type behind which the
// earlier Profile / AllProfiles / ParetoProfiles / Journey result types
// live on as accessors. Accessors that do not match the result's Kind
// return a *Error with CodeKindMismatch.
type Result struct {
	kind    Kind
	arrival Ticks
	journey *Journey
	profile *Profile
	all     *AllProfiles
	pareto  *ParetoProfiles
	matrix  [][]Ticks
	stats   QueryStats
}

// Kind reports which request produced this result.
func (r *Result) Kind() Kind { return r.kind }

// Stats returns the work counters of the query.
func (r *Result) Stats() QueryStats { return r.stats }

func (r *Result) kindErr(want Kind) error {
	return errf(CodeKindMismatch, "", "%s accessor on %s result", want, r.kind)
}

// Arrival returns the earliest arrival of an earliest-arrival result
// (Infinity when the target is unreachable).
func (r *Result) Arrival() (Ticks, error) {
	if r.kind != KindEarliestArrival {
		return Infinity, r.kindErr(KindEarliestArrival)
	}
	return r.arrival, nil
}

// Journey returns the itinerary of a journey result.
func (r *Result) Journey() (*Journey, error) {
	if r.kind != KindJourney {
		return nil, r.kindErr(KindJourney)
	}
	return r.journey, nil
}

// Profile returns the station-to-station profile of a profile result.
func (r *Result) Profile() (*Profile, error) {
	if r.kind != KindProfile {
		return nil, r.kindErr(KindProfile)
	}
	return r.profile, nil
}

// All returns the one-to-all profiles of a one-to-all result.
func (r *Result) All() (*AllProfiles, error) {
	if r.kind != KindOneToAll {
		return nil, r.kindErr(KindOneToAll)
	}
	return r.all, nil
}

// Pareto returns the multi-criteria profiles of a pareto result.
func (r *Result) Pareto() (*ParetoProfiles, error) {
	if r.kind != KindPareto {
		return nil, r.kindErr(KindPareto)
	}
	return r.pareto, nil
}

// Matrix returns the arrival matrix of a matrix result: row i column j is
// the earliest arrival at Targets[j] departing Sources[i] at the requested
// time, Infinity when unreachable.
func (r *Result) Matrix() ([][]Ticks, error) {
	if r.kind != KindMatrix {
		return nil, r.kindErr(KindMatrix)
	}
	return r.matrix, nil
}

// coreOpts translates the public options and attaches the cancellation
// channel the core settle loops poll.
func coreOpts(opt Options, done <-chan struct{}) core.Options {
	c := opt.core()
	c.Done = done
	return c
}

// planErr translates a core-layer error: a cancellation becomes the typed
// context error of the request (wrapping ctx.Err() so errors.Is keeps
// working); everything else passes through unchanged.
func planErr(ctx context.Context, err error) error {
	if errors.Is(err, core.ErrCancelled) {
		if ctx.Err() != nil {
			return ctxError(ctx)
		}
		return &Error{Code: CodeCancelled, Message: "query cancelled", err: err}
	}
	return err
}

// Plan answers a unified query Request. It is the single entry point every
// other query method of Network — and both the /v1 HTTP surface and the
// legacy endpoints of cmd/tpserver — delegates to.
//
// ctx cancellation and deadlines are honored cooperatively: the core
// settle loops poll ctx.Done() on a coarse stride, so an abandoned HTTP
// request stops burning CPU within a few thousand settles. A cancelled
// query returns a *Error with CodeCancelled or CodeDeadlineExceeded that
// wraps ctx.Err().
//
// Request validation failures return a *Error with a machine-readable
// code; see ErrorCode for the catalogue.
//
// The earliest-arrival path allocates nothing in the steady state when the
// caller passes a Reuse result (and the context's Done channel already
// exists, as it does for HTTP request contexts): the search runs on a
// pooled workspace and only scalars move into the Result.
func (n *Network) Plan(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, ctxError(ctx)
	}
	if err := n.validate(req); err != nil {
		return nil, err
	}
	done := ctx.Done()
	res := req.Reuse
	if res == nil {
		res = &Result{}
	} else {
		*res = Result{}
	}
	res.kind = req.Kind

	var err error
	switch req.Kind {
	case KindEarliestArrival:
		err = n.planEarliestArrival(req, done, res)
	case KindJourney:
		err = n.planJourney(req, done, res)
	case KindProfile:
		err = n.planProfile(req, done, res)
	case KindOneToAll:
		err = n.planOneToAll(req, done, res)
	case KindPareto:
		err = n.planPareto(req, done, res)
	case KindMatrix:
		err = n.planMatrix(req, done, res)
	}
	if err != nil {
		return nil, planErr(ctx, err)
	}
	return res, nil
}

// validate checks the request shape against its kind. It allocates only on
// failure, which keeps the scalar query path allocation-free.
func (n *Network) validate(req Request) error {
	switch req.Kind {
	case KindEarliestArrival, KindJourney, KindProfile:
		if err := n.checkStation(req.From); err != nil {
			return err
		}
		if err := n.checkStation(req.To); err != nil {
			return err
		}
	case KindOneToAll:
		if err := n.checkStation(req.From); err != nil {
			return err
		}
	case KindPareto:
		if err := n.checkStation(req.From); err != nil {
			return err
		}
		// To is not part of the search, but callers (the /v1 surface)
		// evaluate the frontier toward it; validate it here so every
		// station error comes from one place. The zero value is station 0,
		// which is always valid.
		if err := n.checkStation(req.To); err != nil {
			return err
		}
	case KindMatrix:
		if len(req.Sources) == 0 {
			return errf(CodeInvalidRequest, "sources", "matrix request needs at least one source")
		}
		if len(req.Targets) == 0 {
			return errf(CodeInvalidRequest, "targets", "matrix request needs at least one target")
		}
		for _, s := range req.Sources {
			if err := n.checkStation(s); err != nil {
				return err
			}
		}
		for _, t := range req.Targets {
			if err := n.checkStation(t); err != nil {
				return err
			}
		}
	default:
		return errf(CodeUnknownKind, "kind", "unknown request kind %q", string(req.Kind))
	}
	if req.Window != nil {
		if req.Kind != KindOneToAll {
			return errf(CodeBadWindow, "window", "departure window is only valid for %s requests", KindOneToAll)
		}
		if req.Window.From > req.Window.To {
			return errf(CodeBadWindow, "window", "empty departure window [%d, %d]", req.Window.From, req.Window.To)
		}
	}
	if req.MaxTransfers != 0 && req.Kind != KindPareto {
		return errf(CodeBadTransfers, "max_transfers", "transfer budget is only valid for %s requests", KindPareto)
	}
	if req.Kind == KindPareto && (req.MaxTransfers < 0 || req.MaxTransfers > 32) {
		return errf(CodeBadTransfers, "max_transfers", "maxTransfers %d out of range [0,32]", req.MaxTransfers)
	}
	if req.Kind != KindMatrix && (len(req.Sources) > 0 || len(req.Targets) > 0) {
		return errf(CodeInvalidRequest, "sources", "sources/targets are only valid for %s requests", KindMatrix)
	}
	if req.Depart < 0 && (req.Kind == KindEarliestArrival || req.Kind == KindJourney || req.Kind == KindMatrix) {
		return errf(CodeBadTime, "depart", "negative departure time %d", req.Depart)
	}
	return nil
}

// planEarliestArrival answers the scalar time-query on a pooled workspace;
// only scalars escape, so the steady state allocates nothing.
func (n *Network) planEarliestArrival(req Request, done <-chan struct{}, res *Result) error {
	ws := core.GetWorkspace()
	tq, err := ws.TimeQuery(n.g, req.From, req.Depart, coreOpts(req.Options, done))
	if err != nil {
		core.PutWorkspace(ws)
		return err
	}
	res.arrival = tq.StationArrival(req.To)
	res.stats = QueryStats{
		SettledConnections: tq.Run.Total.SettledConns,
		MaxThreadSettled:   tq.Run.MaxThreadSettled(),
		QueueOps:           tq.Run.Total.QueuePushes + tq.Run.Total.QueuePops,
		Elapsed:            tq.Run.Elapsed,
	}
	core.PutWorkspace(ws)
	return nil
}

// planProfile answers the station-to-station profile query, with the
// Section 4 prunings when the network is preprocessed.
func (n *Network) planProfile(req Request, done <-chan struct{}, res *Result) error {
	env := core.QueryEnv{Graph: n.g}
	if n.table != nil {
		env.StationGraph = n.sg
		env.Table = n.table
	}
	// The search runs on a pooled workspace: everything the returned
	// Profile needs (the reduced distance function and the walk time) is
	// extracted before the workspace goes back to the pool, so the O(n·k)
	// search arrays never re-allocate in the steady state.
	ws := core.GetWorkspace()
	sres, err := ws.StationToStation(env, req.From, req.To, core.QueryOptions{Options: coreOpts(req.Options, done)})
	if err != nil {
		core.PutWorkspace(ws)
		return err
	}
	fn, err := sres.Profile()
	if err != nil {
		core.PutWorkspace(ws)
		return err
	}
	res.stats = QueryStats{
		SettledConnections: sres.Run.Total.SettledConns,
		MaxThreadSettled:   sres.Run.MaxThreadSettled(),
		QueueOps:           sres.Run.Total.QueuePushes + sres.Run.Total.QueuePops,
		Elapsed:            sres.Run.Elapsed,
		Local:              sres.Local,
		TableHit:           sres.TableHit,
	}
	res.profile = &Profile{Source: req.From, Target: req.To, fn: fn, period: n.tt.Period, walkOnly: sres.WalkOnly}
	core.PutWorkspace(ws)
	return nil
}

// planOneToAll runs the one-to-all profile search, windowed when requested.
func (n *Network) planOneToAll(req Request, done <-chan struct{}, res *Result) error {
	from, to := Ticks(0), Infinity
	if req.Window != nil {
		from, to = req.Window.From, req.Window.To
	}
	pr, err := core.OneToAllWindow(n.g, req.From, from, to, coreOpts(req.Options, done))
	if err != nil {
		return err
	}
	res.all = &AllProfiles{n: n, res: pr}
	res.stats = res.all.Stats()
	return nil
}

// planJourney runs a one-to-all search with parent tracking and extracts
// the itinerary for the requested departure.
func (n *Network) planJourney(req Request, done <-chan struct{}, res *Result) error {
	opt := req.Options
	opt.TrackJourneys = true
	pr, err := core.OneToAllWindow(n.g, req.From, 0, Infinity, coreOpts(opt, done))
	if err != nil {
		return err
	}
	all := &AllProfiles{n: n, res: pr}
	j, err := all.Journey(req.To, req.Depart)
	if err != nil {
		// The overwhelmingly common failure is an unreachable target (or a
		// departure no itinerary realizes); classify it for the wire layer
		// while preserving the underlying message.
		return &Error{Code: CodeUnreachable, Message: strings.TrimPrefix(err.Error(), "transit: "), err: err}
	}
	res.journey = j
	res.stats = all.Stats()
	return nil
}

// planPareto runs the multi-criteria one-to-all search.
func (n *Network) planPareto(req Request, done <-chan struct{}, res *Result) error {
	pr, err := core.OneToAllPareto(n.g, req.From, req.MaxTransfers, coreOpts(req.Options, done))
	if err != nil {
		return err
	}
	res.pareto = &ParetoProfiles{n: n, res: pr}
	res.stats = res.pareto.Stats()
	return nil
}

// planMatrix answers the batch one-to-many query: one time-query per
// source row (the row's single Dijkstra already yields every target), rows
// fanned out over Options.Threads workers, each on a pooled workspace.
func (n *Network) planMatrix(req Request, done <-chan struct{}, res *Result) error {
	start := time.Now()
	rows := make([][]Ticks, len(req.Sources))
	rowOpts := coreOpts(req.Options, done)
	rowOpts.Threads = 1 // parallelism is across rows, not within one
	workers := req.Options.Threads
	if workers < 1 {
		workers = 1
	}
	if workers > len(req.Sources) {
		workers = len(req.Sources)
	}
	var (
		mu       sync.Mutex
		firstErr error
		total    QueryStats
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := core.GetWorkspace()
			defer core.PutWorkspace(ws)
			for i := range idx {
				tq, err := ws.TimeQuery(n.g, req.Sources[i], req.Depart, rowOpts)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				row := make([]Ticks, len(req.Targets))
				for j, t := range req.Targets {
					row[j] = tq.StationArrival(t)
				}
				rows[i] = row
				mu.Lock()
				total.SettledConnections += tq.Run.Total.SettledConns
				total.QueueOps += tq.Run.Total.QueuePushes + tq.Run.Total.QueuePops
				if tq.Run.Total.SettledConns > total.MaxThreadSettled {
					total.MaxThreadSettled = tq.Run.Total.SettledConns
				}
				mu.Unlock()
			}
		}()
	}
	for i := range rows {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	total.Elapsed = time.Since(start)
	res.matrix = rows
	res.stats = total
	return nil
}

// planResults pools Result shells for the legacy scalar wrappers, keeping
// EarliestArrival allocation-free without exposing pooling to callers.
var planResults = sync.Pool{New: func() any { return new(Result) }}

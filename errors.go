package transit

import (
	"context"
	"errors"
	"fmt"
)

// ErrorCode is a machine-readable classification of a query failure. The
// same codes travel over the wire in the /v1 HTTP error envelope (see
// docs/API.md), so a client can branch on them without parsing messages.
type ErrorCode string

const (
	// CodeInvalidRequest marks a Request whose fields do not fit its Kind
	// (e.g. matrix sources on an earliest-arrival query).
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeUnknownKind marks a Request.Kind outside the supported set.
	CodeUnknownKind ErrorCode = "unknown_kind"
	// CodeStationRange marks a station ID outside [0, NumStations).
	CodeStationRange ErrorCode = "station_out_of_range"
	// CodeUnknownStation marks a station name that resolves to nothing
	// (produced by the wire layer, which resolves names to IDs).
	CodeUnknownStation ErrorCode = "unknown_station"
	// CodeBadTime marks an unparseable or negative time value.
	CodeBadTime ErrorCode = "bad_time"
	// CodeBadWindow marks an invalid departure window, or a window on a
	// Kind that does not support one.
	CodeBadWindow ErrorCode = "bad_window"
	// CodeBadTransfers marks a transfer budget outside [0, 32], or a budget
	// on a Kind that does not support one.
	CodeBadTransfers ErrorCode = "bad_transfers"
	// CodeKindMismatch marks a Result accessor that does not belong to the
	// result's Kind (e.g. Journey() on a profile result).
	CodeKindMismatch ErrorCode = "kind_mismatch"
	// CodeUnreachable marks a journey request whose target cannot be
	// reached from the source at the requested departure.
	CodeUnreachable ErrorCode = "unreachable"
	// CodeCancelled marks a query abandoned because the caller's context
	// was cancelled (client disconnect).
	CodeCancelled ErrorCode = "cancelled"
	// CodeDeadlineExceeded marks a query abandoned because the caller's
	// context deadline passed.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeOverloaded marks a query shed by admission control before it ran:
	// the server is at its concurrent-search budget and the request did not
	// get a slot within the queue deadline. The work was rejected early and
	// cheaply — clients should back off for the Retry-After hint of the
	// HTTP response and then retry the identical request.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeUnknownNetwork marks a query addressed to a network name the
	// serving catalog does not carry (produced by the multi-tenant server,
	// which routes /v1/{network}/... by name).
	CodeUnknownNetwork ErrorCode = "unknown_network"
	// CodeReadOnly marks a write (a POST /delays batch) addressed to a
	// read-only replica. Delay batches belong on the updater; the HTTP
	// response carries its URL in a Location header.
	CodeReadOnly ErrorCode = "read_only"
	// CodeInternal marks everything else.
	CodeInternal ErrorCode = "internal"
)

// Error is the structured error type of the query API: a machine-readable
// Code, the offending Field (when one field is to blame), and a
// human-readable Message. It is what Network.Plan returns for request
// validation and cancellation failures, and what the /v1 endpoints
// serialize into their error envelope.
type Error struct {
	Code    ErrorCode
	Field   string
	Message string

	err error // wrapped cause, if any
}

// Error renders the message with the library's usual prefix.
func (e *Error) Error() string { return "transit: " + e.Message }

// Unwrap exposes the wrapped cause, so errors.Is(err, context.Canceled)
// and friends keep working through Plan's translation.
func (e *Error) Unwrap() error { return e.err }

func errf(code ErrorCode, field, format string, args ...any) *Error {
	return &Error{Code: code, Field: field, Message: fmt.Sprintf(format, args...)}
}

// NewError builds a typed *Error wrapping cause (which may be nil).
// errors.Is/As see through to the cause, so callers layering their own
// typed errors under a transit code — the server's admission layer wraps
// its overload rejection this way — lose nothing.
func NewError(code ErrorCode, message string, cause error) *Error {
	return &Error{Code: code, Message: message, err: cause}
}

// ErrorCodeOf classifies any error into an ErrorCode: a *transit.Error
// yields its own code, raw context errors map to CodeCancelled and
// CodeDeadlineExceeded, and everything else is CodeInternal.
func ErrorCodeOf(err error) ErrorCode {
	var te *Error
	if errors.As(err, &te) {
		return te.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return CodeCancelled
	}
	return CodeInternal
}

// ctxError translates a context failure into a typed *Error wrapping the
// context's own error, so both the code and errors.Is survive.
func ctxError(ctx context.Context) *Error {
	err := ctx.Err()
	code := CodeCancelled
	if errors.Is(err, context.DeadlineExceeded) {
		code = CodeDeadlineExceeded
	}
	return &Error{Code: code, Message: "query " + string(code), err: err}
}

package transit

// Tests of incremental distance-table repair (Repreprocess): the repaired
// table must be *entry-identical* to a from-scratch Preprocess of the
// patched network — the dirty-row analysis is a sound over-approximation,
// so keeping a clean row must never change any answer.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"transit/internal/dtable"
	"transit/internal/ttf"
)

// assertTablesEqual compares two distance tables entry by entry (reduced
// connection points of every ordered transfer pair).
func assertTablesEqual(t *testing.T, got, want *dtable.Table, ctx string) {
	t.Helper()
	gs, ws := got.Stations(), want.Stations()
	if len(gs) != len(ws) {
		t.Fatalf("%s: transfer sets differ: %d vs %d stations", ctx, len(gs), len(ws))
	}
	for i, s := range gs {
		if s != ws[i] {
			t.Fatalf("%s: transfer station %d differs: %d vs %d", ctx, i, s, ws[i])
		}
	}
	for _, from := range gs {
		for _, to := range gs {
			gf, err := got.Profile(from, to)
			if err != nil {
				t.Fatal(err)
			}
			wf, err := want.Profile(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if !pointsEqual(gf, wf) {
				t.Fatalf("%s: entry %d→%d differs:\n repaired: %v\n rebuilt:  %v",
					ctx, from, to, gf.Points(), wf.Points())
			}
		}
	}
}

func pointsEqual(a, b *ttf.Function) bool {
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// randomOps draws a small batch of delay/cancellation ops — mostly
// train-level (the realistic delay-feed shape), occasionally a windowed
// route-level op, including negative delays.
func randomOps(rng *rand.Rand, n *Network) []DelayOp {
	tt := n.Timetable()
	ops := make([]DelayOp, 0, 4)
	for i := 0; i < 1+rng.Intn(4); i++ {
		var op DelayOp
		if rng.Intn(5) == 0 {
			op.Routes = []int{rng.Intn(len(tt.Routes()))}
			op.WindowFrom = Ticks(rng.Intn(1200))
			op.WindowTo = op.WindowFrom + Ticks(30+rng.Intn(120))
		} else {
			op.Train = tt.Trains[rng.Intn(tt.NumTrains())].Name
		}
		switch rng.Intn(8) {
		case 0:
			op.Cancel = true
		case 1:
			op.Delay = -Ticks(1 + rng.Intn(15))
		default:
			op.Delay = Ticks(1 + rng.Intn(45))
		}
		ops = append(ops, op)
	}
	return ops
}

// TestRepairPropertyRandomBatches is the repair correctness property: apply
// random delay/cancellation batches in sequence and assert, after every
// batch, that repairing the original base table yields exactly the table a
// full rebuild produces. RepairMaxDirty 1 forces the incremental path even
// when a batch dirties many rows (fallbacks are tested separately).
func TestRepairPropertyRandomBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("repair property test rebuilds tables repeatedly")
	}
	cases := []struct {
		family string
		scale  float64
		frac   float64
		seed   int64
		rounds int
	}{
		{"oahu", 0.3, 0.15, 1, 5},
		{"losangeles", 0.06, 0.10, 2, 4},
		{"washington", 0.08, 0.12, 3, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s-%g", tc.family, tc.scale), func(t *testing.T) {
			t.Parallel()
			net, err := Generate(tc.family, tc.scale, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			sel := TransferSelection{Fraction: tc.frac}
			opt := Options{RepairMaxDirty: 1}
			base, _, err := net.Preprocess(sel, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !base.TableRepairable() {
				t.Fatal("freshly preprocessed table must be repairable")
			}
			rng := rand.New(rand.NewSource(tc.seed * 101))
			cur := base
			var pending []TouchedConn
			repairedTotal, windowedTotal, keptSome := 0, 0, false
			for round := 0; round < tc.rounds; round++ {
				next, st, err := cur.ApplyUpdates(randomOps(rng, cur))
				if err != nil {
					t.Fatal(err)
				}
				if next == cur {
					continue
				}
				pending = MergeTouched(pending, st.Touched)
				rep, rst, err := next.Repreprocess(base, pending, sel, opt)
				if err != nil {
					t.Fatal(err)
				}
				if rst.FullRebuild {
					t.Fatalf("round %d: unexpected fallback: %s", round, rst.Fallback)
				}
				if rep.TableRepairable() {
					t.Fatalf("round %d: repaired table must be derived", round)
				}
				full, _, err := next.Preprocess(sel, opt)
				if err != nil {
					t.Fatal(err)
				}
				assertTablesEqual(t, rep.table, full.table, fmt.Sprintf("round %d", round))
				t.Logf("round %d: %d/%d rows dirty (used %d, seed %d, arc %d), %d windowed, %d touched conns",
					round, rst.RowsRepaired, rst.Rows, rst.DirtyByUsed, rst.DirtyBySeed, rst.DirtyByArc, rst.RowsWindowed, len(pending))
				repairedTotal += rst.RowsRepaired
				windowedTotal += rst.RowsWindowed
				keptSome = keptSome || rst.RowsRepaired < rst.Rows
				cur = rep
			}
			if repairedTotal == 0 {
				t.Fatal("vacuous run: no batch dirtied any row")
			}
			// The incremental machinery must have bitten somewhere: either
			// the dirty analysis kept rows, or dirty rows were recomputed
			// over a bounded departure window instead of the full period.
			if !keptSome && windowedTotal == 0 {
				t.Error("vacuous run: every repair re-ran the full-period search on every row")
			}
		})
	}
}

// newlyCatchableNet builds the canonical improvement edge case: t1 brings
// you from A to B arriving 110 (ready to transfer at 112), t2 leaves B at
// 109 — just missed — so A→C is only served by the slow direct t3.
// Delaying t2 *creates* a transfer opportunity at a station t2 does not
// even depart from A's perspective, and the A row uses neither t2's route
// nor a changed seed: only the readiness-arc analysis can flag it.
func newlyCatchableNet(t *testing.T) (*Network, StationID, StationID) {
	t.Helper()
	tb := NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	c := tb.AddStation("C", 2)
	if err := tb.AddTrain("t1", []StationID{a, b}, 100, []Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddTrain("t2", []StationID{b, c}, 109, []Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddTrain("t3", []StationID{a, c}, 100, []Ticks{200}, 0); err != nil {
		t.Fatal(err)
	}
	net, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, a, c
}

// TestRepairNewlyCatchableConnection pins the edge case the dirty analysis
// must not miss: a delayed departure becoming catchable mid-journey.
func TestRepairNewlyCatchableConnection(t *testing.T) {
	net, a, c := newlyCatchableNet(t)
	sel := TransferSelection{Fraction: 1}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEA(t, base, a, c, 100); got != 300 {
		t.Fatalf("pre-delay A→C arrival = %d, want 300 (slow direct train)", got)
	}
	next, st, err := base.ApplyUpdates([]DelayOp{{Train: "t2", Delay: 5}})
	if err != nil {
		t.Fatal(err)
	}
	rep, rst, err := next.Repreprocess(base, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rst.FullRebuild {
		t.Fatalf("unexpected fallback: %s", rst.Fallback)
	}
	if rst.RowsRepaired == 0 {
		t.Fatal("newly-catchable connection dirtied no row")
	}
	full, _, err := next.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, rep.table, full.table, "newly-catchable")
	// The delayed t2 (dep 114 ≥ arrival 110 + transfer 2) opens A→t1→t2→C.
	if got := mustEA(t, rep, a, c, 100); got != 124 {
		t.Fatalf("post-delay A→C arrival = %d, want 124 (via newly catchable t2)", got)
	}
}

// TestRepairCancellationOfUsedTrain covers the degradation direction: the
// cancelled train carries the dominant journey, so the row must rebuild.
func TestRepairCancellationOfUsedTrain(t *testing.T) {
	net, a, c := newlyCatchableNet(t)
	sel := TransferSelection{Fraction: 1}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	next, st, err := base.ApplyUpdates([]DelayOp{{Train: "t3", Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	rep, rst, err := next.Repreprocess(base, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rst.FullRebuild {
		t.Fatalf("unexpected fallback: %s", rst.Fallback)
	}
	full, _, err := next.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, rep.table, full.table, "cancel-used")
	// Without t3, the best A→C departing 100 is t1 then *tomorrow's* t2
	// (today's 109 run is just missed): 109 + 1440 + 10 = 1559.
	if got := mustEA(t, rep, a, c, 100); got != 1559 {
		t.Fatalf("A→C after cancelling the direct train = %d, want 1559", got)
	}
}

func mustEA(t *testing.T, n *Network, from, to StationID, dep Ticks) Ticks {
	t.Helper()
	p, _, err := n.Profile(from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p.EarliestArrival(dep)
}

// TestRepreprocessFallbacks covers every path that must degrade to a full
// rebuild: no base, a derived base, and a dirty fraction above threshold.
func TestRepreprocessFallbacks(t *testing.T) {
	net, _, _ := newlyCatchableNet(t)
	sel := TransferSelection{Fraction: 1}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	next, st, err := base.ApplyUpdates([]DelayOp{{Train: "t2", Delay: 5}})
	if err != nil {
		t.Fatal(err)
	}

	// No base: full rebuild with the given selection.
	pre, ps, err := next.Repreprocess(nil, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.FullRebuild || ps.Fallback == "" || !pre.TableRepairable() {
		t.Fatalf("nil base: want provenance-carrying full rebuild, got %+v", ps)
	}

	// Derived base: a repaired table cannot seed another repair.
	rep, _, err := next.Repreprocess(base, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	next2, st2, err := rep.ApplyUpdates([]DelayOp{{Train: "t1", Delay: 3}})
	if err != nil {
		t.Fatal(err)
	}
	reb2, ps2, err := next2.Repreprocess(rep, st2.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ps2.FullRebuild || ps2.Fallback == "" {
		t.Fatalf("derived base: want fallback full rebuild, got %+v", ps2)
	}
	full2, _, err := next2.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, reb2.table, full2.table, "derived-base fallback rebuild")

	// Dirty fraction above threshold (negative = always rebuild). The
	// fallback reconstructs the transfer set from the base table, so its
	// result must match a from-scratch Preprocess exactly.
	reb3, ps3, err := next.Repreprocess(base, st.Touched, sel, Options{RepairMaxDirty: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !ps3.FullRebuild || ps3.Fallback == "" {
		t.Fatalf("threshold: want fallback full rebuild, got %+v", ps3)
	}
	full, _, err := next.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, reb3.table, full.table, "threshold fallback rebuild")
	assertTablesEqual(t, rep.table, full.table, "derived-serving")
}

func TestMergeTouched(t *testing.T) {
	a := []TouchedConn{
		{Conn: 1, Route: 0, From: 2, OldDep: 100, NewDep: 105},
		{Conn: 2, Route: 1, From: 3, OldDep: 200, NewDep: 210},
	}
	b := []TouchedConn{
		{Conn: 1, Route: 0, From: 2, OldDep: 105, NewDep: 100}, // back to original: net no-op
		{Conn: 2, Route: 1, From: 3, OldDep: 210, NewDep: 220, Cancelled: true},
		{Conn: 5, Route: 2, From: 4, OldDep: 50, NewDep: 60},
	}
	m := MergeTouched(a, b)
	if len(m) != 2 {
		t.Fatalf("merged = %+v, want conn 1 dropped", m)
	}
	if m[0].Conn != 2 || m[0].OldDep != 200 || !m[0].Cancelled {
		t.Fatalf("conn 2 merged wrong: %+v", m[0])
	}
	if m[1].Conn != 5 || m[1].OldDep != 50 || m[1].NewDep != 60 {
		t.Fatalf("conn 5 merged wrong: %+v", m[1])
	}
	// Cancellation is sticky across later merges.
	m2 := MergeTouched(m, []TouchedConn{{Conn: 2, Route: 1, From: 3, OldDep: 220, NewDep: 230}})
	if !m2[0].Cancelled {
		t.Fatal("cancellation must be sticky")
	}
}

// TestSnapshotProvenanceRoundTrip: a snapshot of a preprocessed network
// carries the provenance section, so a restored server can repair instead
// of rebuilding; a derived (repaired) table round-trips without it.
func TestSnapshotProvenanceRoundTrip(t *testing.T) {
	net, _, _ := newlyCatchableNet(t)
	sel := TransferSelection{Fraction: 1}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.TableRepairable() {
		t.Fatal("restored base table must be repairable")
	}
	// Repair from the *restored* base and compare against a rebuild.
	next, st, err := loaded.ApplyUpdates([]DelayOp{{Train: "t2", Delay: 5}})
	if err != nil {
		t.Fatal(err)
	}
	rep, rst, err := next.Repreprocess(loaded, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rst.FullRebuild {
		t.Fatalf("restored provenance: unexpected fallback %q", rst.Fallback)
	}
	full, _, err := next.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, rep.table, full.table, "restored-base")

	// Derived tables persist without provenance and are not repair bases.
	buf.Reset()
	if err := rep.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded2, _, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded2.Preprocessed() || loaded2.TableRepairable() {
		t.Fatal("restored derived table must serve but not act as repair base")
	}
}

// TestRepairWindowCoversDegradedFeederTransfers pins the regression found
// in review: arc refinement (a same-edge alternative dominating the moved
// train) must tighten only the improvement test, never the repair window's
// look-back. Train x (M→C at 490) is delayed +40 onto its follower y (at
// 530, same duration), so x's refined improvement arc is empty — but
// feeder departures that rode x at its OLD time 490 still got worse. The
// schedule is dense (20-min headways) so the dirty row is recomputed over
// a window; a window anchored at the refined bound 530 instead of the
// original 490 misses the degraded profile point at feeder departure 380.
func TestRepairWindowCoversDegradedFeederTransfers(t *testing.T) {
	tb := NewTimetableBuilder(0)
	s := tb.AddStation("S", 2)
	m := tb.AddStation("M", 2)
	c := tb.AddStation("C", 2)
	for k := 0; k < 72; k++ {
		dep := Ticks(k * 20)
		if err := tb.AddTrain(fmt.Sprintf("f%02d", k), []StationID{s, m}, dep, []Ticks{10}, 0); err != nil {
			t.Fatal(err)
		}
		g := dep + 15
		// Service gap before x: feeders from 380 on can only catch x at 490.
		if g >= 395 && g <= 515 {
			continue
		}
		if err := tb.AddTrain(fmt.Sprintf("g%02d", k), []StationID{m, c}, g, []Ticks{10}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.AddTrain("x", []StationID{m, c}, 490, []Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddTrain("y", []StationID{m, c}, 530, []Ticks{10}, 0); err != nil {
		t.Fatal(err)
	}
	net, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	sel := TransferSelection{Fraction: 1}
	opt := Options{RepairMaxDirty: 1}
	base, _, err := net.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEA(t, base, s, c, 380); got != 500 {
		t.Fatalf("pre-delay S→C departing 380 arrives %d, want 500 (via x)", got)
	}
	next, st, err := base.ApplyUpdates([]DelayOp{{Train: "x", Delay: 40}})
	if err != nil {
		t.Fatal(err)
	}
	rep, rst, err := next.Repreprocess(base, st.Touched, sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rst.FullRebuild {
		t.Fatalf("unexpected fallback: %s", rst.Fallback)
	}
	if rst.RowsWindowed == 0 {
		t.Fatal("scenario must exercise the windowed path (else the regression is masked)")
	}
	full, _, err := next.Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, rep.table, full.table, "degraded-feeder")
	// x now leaves with y at 530: the 380 feeder departure arrives 540.
	if got := mustEA(t, rep, s, c, 380); got != 540 {
		t.Fatalf("post-delay S→C departing 380 arrives %d, want 540", got)
	}
}

package transit

import (
	"context"
	"testing"
)

func TestCacheKeyCanonical(t *testing.T) {
	base := Request{Kind: KindEarliestArrival, From: 3, To: 7, Depart: 480}

	// Options and Reuse never change the answer, so they never change the
	// key.
	tuned := base
	tuned.Options = Options{Threads: 8, Partition: "k-means"}
	tuned.Reuse = &Result{}
	if base.CacheKey() != tuned.CacheKey() {
		t.Fatal("Options/Reuse leaked into the cache key")
	}

	// Any consulted field distinguishes.
	distinct := []Request{
		base,
		{Kind: KindEarliestArrival, From: 3, To: 7, Depart: 481},
		{Kind: KindEarliestArrival, From: 3, To: 8, Depart: 480},
		{Kind: KindEarliestArrival, From: 4, To: 7, Depart: 480},
		{Kind: KindJourney, From: 3, To: 7, Depart: 480},
		{Kind: KindProfile, From: 3, To: 7},
		{Kind: KindOneToAll, From: 3},
		{Kind: KindOneToAll, From: 3, Window: &Window{From: 0, To: 600}},
		{Kind: KindOneToAll, From: 3, Window: &Window{From: 0, To: 601}},
		{Kind: KindPareto, From: 3, MaxTransfers: 2},
		{Kind: KindPareto, From: 3, MaxTransfers: 3},
		{Kind: KindMatrix, Sources: []StationID{1, 2}, Targets: []StationID{3, 4}, Depart: 480},
		{Kind: KindMatrix, Sources: []StationID{1}, Targets: []StationID{2, 3, 4}, Depart: 480},
	}
	seen := make(map[string]int)
	for i, req := range distinct {
		k := req.CacheKey()
		if k == "" {
			t.Fatalf("request %d: empty key for valid kind %s", i, req.Kind)
		}
		if j, dup := seen[k]; dup {
			t.Fatalf("requests %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}

	// Unconsulted fields do not distinguish: a profile ignores Depart, a
	// pareto ignores To and Depart (they only steer rendering).
	p1 := Request{Kind: KindProfile, From: 3, To: 7}
	p2 := Request{Kind: KindProfile, From: 3, To: 7, Depart: 500}
	if p1.CacheKey() != p2.CacheKey() {
		t.Fatal("profile key depends on Depart")
	}
	q1 := Request{Kind: KindPareto, From: 3, MaxTransfers: 2}
	q2 := Request{Kind: KindPareto, From: 3, To: 9, Depart: 500, MaxTransfers: 2}
	if q1.CacheKey() != q2.CacheKey() {
		t.Fatal("pareto key depends on To/Depart")
	}

	// Unknown kinds must not be cacheable.
	if k := (Request{Kind: "bogus"}).CacheKey(); k != "" {
		t.Fatalf("unknown kind got key %q", k)
	}
}

func TestResultApproxBytes(t *testing.T) {
	n := testNetwork(t)
	kinds := []Request{
		{Kind: KindEarliestArrival, From: 0, To: 1, Depart: 480},
		{Kind: KindJourney, From: 0, To: 1, Depart: 480},
		{Kind: KindProfile, From: 0, To: 1},
		{Kind: KindOneToAll, From: 0},
		{Kind: KindPareto, From: 0, MaxTransfers: 2},
		{Kind: KindMatrix, Sources: []StationID{0, 1}, Targets: []StationID{2, 3}, Depart: 480},
	}
	sizes := make(map[Kind]int)
	for _, req := range kinds {
		res, err := n.Plan(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.Kind, err)
		}
		b := res.ApproxBytes()
		if b <= 0 {
			t.Fatalf("%s: ApproxBytes = %d, want positive", req.Kind, b)
		}
		sizes[req.Kind] = b
	}
	// The one-to-all kinds retain full label arrays and must dwarf the
	// scalar kinds — that difference is what makes byte-bounded eviction
	// meaningful.
	if sizes[KindOneToAll] <= 100*sizes[KindEarliestArrival] {
		t.Fatalf("one-to-all %dB not >> earliest-arrival %dB", sizes[KindOneToAll], sizes[KindEarliestArrival])
	}
	if sizes[KindPareto] <= sizes[KindEarliestArrival] {
		t.Fatalf("pareto %dB not > earliest-arrival %dB", sizes[KindPareto], sizes[KindEarliestArrival])
	}
	if sizes[KindJourney] <= sizes[KindEarliestArrival] {
		t.Fatalf("journey %dB (has legs) not > earliest-arrival %dB", sizes[KindJourney], sizes[KindEarliestArrival])
	}
}

package transit

import (
	"fmt"
	"strings"
	"testing"
)

// lineNetwork builds a deterministic three-station line with hourly trains
// A→B→C (07:00–11:00) plus a late-night train near the period boundary.
func lineNetwork(t testing.TB) *Network {
	t.Helper()
	tb := NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	c := tb.AddStation("C", 2)
	for h := 7; h <= 11; h++ {
		if err := tb.AddTrain(fmt.Sprintf("line%02d", h), []StationID{a, b, c},
			Ticks(h*60), []Ticks{20, 25}, 5); err != nil {
			t.Fatal(err)
		}
	}
	// 23:50 departure, arriving past midnight.
	if err := tb.AddTrain("night", []StationID{a, b}, 1430, []Ticks{30}, 0); err != nil {
		t.Fatal(err)
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestApplyUpdatesMatchesFullRebuild checks the incremental patch path
// against ApplyDelays (full rebuild + re-validation) on a real synthetic
// network: same delay, same answers, for time queries and whole profiles.
func TestApplyUpdatesMatchesFullRebuild(t *testing.T) {
	n := testNetwork(t)
	const route, delta = 3, 25
	full, shifted, err := n.ApplyDelays(delta, func(ci ConnectionInfo) bool { return ci.Route == route })
	if err != nil {
		t.Fatal(err)
	}
	inc, st, err := n.ApplyUpdates([]DelayOp{{Routes: []int{route}, Delay: delta}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ConnsRetimed != shifted {
		t.Fatalf("incremental retimed %d conns, full rebuild shifted %d", st.ConnsRetimed, shifted)
	}
	if inc == n {
		t.Fatal("update touched nothing")
	}
	for pair := 0; pair < 6; pair++ {
		src := StationID((pair * 13) % n.NumStations())
		dst := StationID((pair*29 + 7) % n.NumStations())
		if src == dst {
			continue
		}
		pf, _, err := full.Profile(src, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pi, _, err := inc.Profile(src, dst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cf, ci := pf.Connections(), pi.Connections()
		if len(cf) != len(ci) {
			t.Fatalf("%d→%d: %d vs %d profile connections", src, dst, len(cf), len(ci))
		}
		for i := range cf {
			if cf[i] != ci[i] {
				t.Fatalf("%d→%d conn %d: full %+v incremental %+v", src, dst, i, cf[i], ci[i])
			}
		}
		for dep := Ticks(0); dep < 1440; dep += 97 {
			af := pf.EarliestArrival(dep)
			ai := pi.EarliestArrival(dep)
			if af != ai {
				t.Fatalf("%d→%d at %d: full %d, incremental %d", src, dst, dep, af, ai)
			}
		}
	}
}

func TestApplyUpdatesNegativeDelta(t *testing.T) {
	n := lineNetwork(t)
	// Pull the 09:00 train 30 minutes earlier: a traveller at 08:25 now
	// catches it at 08:30 and reaches C at 09:15 instead of 09:45.
	upd, st, err := n.ApplyUpdates([]DelayOp{{Train: "line09", Delay: -30}})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainsDelayed != 1 || st.ConnsRetimed != 2 {
		t.Fatalf("stats %+v", st)
	}
	arr, err := upd.EarliestArrival(0, 2, 505, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 560 {
		t.Fatalf("arrival %d, want 560 (09:50-30min)", arr)
	}
	// The patched timetable still validates as a whole (negative deltas
	// re-validated): serialize and re-read it.
	if err := roundTrip(upd); err != nil {
		t.Fatalf("re-validation after negative delta: %v", err)
	}
	// A negative delta that would push a departure below 0 wraps into the
	// period instead of failing validation.
	wrap, _, err := n.ApplyUpdates([]DelayOp{{Train: "line07", Delay: -8 * 60}})
	if err != nil {
		t.Fatal(err)
	}
	deps, err := wrap.Departures(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		if d.Train == "line07" && d.Dep != 1380 { // 07:00 − 8h = 23:00
			t.Fatalf("wrapped departure %d, want 1380", d.Dep)
		}
	}
}

func TestApplyUpdatesPeriodBoundary(t *testing.T) {
	n := lineNetwork(t)
	// Delaying the 23:50 night train by 30 pushes its departure past
	// midnight: it wraps to 00:20 and arrives 00:50.
	upd, _, err := n.ApplyUpdates([]DelayOp{{Train: "night", Delay: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(upd); err != nil {
		t.Fatalf("boundary wrap broke validation: %v", err)
	}
	arr, err := upd.EarliestArrival(0, 1, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 50 {
		t.Fatalf("arrival %d, want 50 (00:20 + 30min ride)", arr)
	}
	// Delaying an 11:00 train so its *arrival* crosses the period boundary
	// keeps the absolute arrival monotone (arrivals may exceed π).
	upd2, _, err := n.ApplyUpdates([]DelayOp{{Train: "line11", Delay: 12*60 + 30}})
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range upd2.Connections() {
		if ci.Train == "line11" && ci.Arr < ci.Dep {
			t.Fatalf("arrival %d before departure %d after boundary push", ci.Arr, ci.Dep)
		}
	}
	if err := roundTrip(upd2); err != nil {
		t.Fatalf("arrival past period boundary broke validation: %v", err)
	}
}

func TestApplyUpdatesCancellation(t *testing.T) {
	n := lineNetwork(t)
	upd, st, err := n.ApplyUpdates([]DelayOp{{Train: "line08", Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainsCancelled != 1 || st.ConnsCancelled != 2 {
		t.Fatalf("stats %+v", st)
	}
	// The 07:30 traveller falls through to the 09:00 train.
	arr, err := upd.EarliestArrival(0, 2, 450, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 590 {
		t.Fatalf("arrival %d, want 590 (line09 at C)", arr)
	}
	// Cancelled connections disappear from Departures but keep dense IDs
	// and surface in Connections with the flag set.
	deps, err := upd.Departures(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		if d.Train == "line08" {
			t.Fatal("cancelled train still departing")
		}
	}
	cancelled := 0
	for _, ci := range upd.Connections() {
		if ci.Cancelled {
			cancelled++
		}
	}
	if cancelled != 2 {
		t.Fatalf("Connections reports %d cancelled, want 2", cancelled)
	}
	if upd.Timetable().NumConnections() != n.Timetable().NumConnections() {
		t.Fatal("cancellation renumbered connections")
	}
	// A later ApplyDelays (full rebuild) on the lineage must not resurrect
	// the cancelled train — negative deltas used to pull the Infinity
	// arrival back below the sentinel.
	rb, _, err := upd.ApplyDelays(-10, func(ci ConnectionInfo) bool { return ci.Train == "line08" || ci.Train == "line09" })
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range rb.Connections() {
		if ci.Train == "line08" && !ci.Cancelled {
			t.Fatalf("ApplyDelays resurrected a cancelled connection: %+v", ci)
		}
	}
	if deps, err := rb.Departures(0); err == nil {
		for _, d := range deps {
			if d.Train == "line08" {
				t.Fatal("cancelled train boardable again after ApplyDelays")
			}
		}
	} else {
		t.Fatal(err)
	}
	// Cancelling everything leaves stations unreachable but valid.
	all, _, err := upd.ApplyUpdates([]DelayOp{{Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	arr, err = all.EarliestArrival(0, 2, 450, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !arr.IsInf() {
		t.Fatalf("fully cancelled network still reachable: %d", arr)
	}
}

func TestApplyUpdatesWindowAndAccumulation(t *testing.T) {
	n := lineNetwork(t)
	// Window selects only the 08:00 and 09:00 trains; two ops accumulate.
	upd, st, err := n.ApplyUpdates([]DelayOp{
		{WindowFrom: 480, WindowTo: 540, Delay: 10},
		{WindowFrom: 480, WindowTo: 540, Delay: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainsDelayed != 2 {
		t.Fatalf("window matched %d trains, want 2", st.TrainsDelayed)
	}
	deps, err := upd.Departures(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		switch d.Train {
		case "line08":
			if d.Dep != 495 {
				t.Fatalf("line08 dep %d, want 495 (+15 accumulated)", d.Dep)
			}
		case "line07":
			if d.Dep != 420 {
				t.Fatalf("line07 dep %d, want unchanged 420", d.Dep)
			}
		}
	}
	// Empty-window validation.
	if _, _, err := n.ApplyUpdates([]DelayOp{{WindowFrom: 600, WindowTo: 500, Delay: 5}}); err == nil {
		t.Fatal("empty window accepted")
	}
	// A batch matching nothing hands back the receiver.
	same, st2, err := n.ApplyUpdates([]DelayOp{{Train: "ghost", Delay: 10}})
	if err != nil || same != n || st2.ConnsRetimed != 0 {
		t.Fatalf("no-match batch: %p vs %p, %+v, %v", same, n, st2, err)
	}
}

func TestApplyUpdatesDropsPreprocessing(t *testing.T) {
	n := testNetwork(t)
	pre, _, err := n.Preprocess(TransferSelection{Fraction: 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	upd, _, err := pre.ApplyUpdates([]DelayOp{{Routes: []int{1}, Delay: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Preprocessed() {
		t.Fatal("stale distance table survived the update")
	}
	if !pre.Preprocessed() {
		t.Fatal("receiver lost its table")
	}
	// The unpruned update still answers correctly: compare with a full
	// rebuild of the same delay.
	full, _, err := n.ApplyDelays(10, func(ci ConnectionInfo) bool { return ci.Route == 1 })
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range []Ticks{300, 480, 660, 1000} {
		af, err := full.EarliestArrival(2, 9, dep, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ai, err := upd.EarliestArrival(2, 9, dep, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if af != ai {
			t.Fatalf("at %d: full %d, incremental %d", dep, af, ai)
		}
	}
}

// roundTrip serializes and re-validates a network through the text format.
func roundTrip(n *Network) error {
	var sb strings.Builder
	if err := n.WriteTimetable(&sb); err != nil {
		return err
	}
	_, err := ReadNetwork(strings.NewReader(sb.String()))
	return err
}

package graph

// Structural invariants of the time-dependent graph, checked across all
// generator families: these are the properties the search algorithms rely
// on without re-validating at query time.

import (
	"testing"

	"transit/internal/gen"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

func TestGraphInvariantsAcrossFamilies(t *testing.T) {
	for _, fam := range gen.Families() {
		t.Run(string(fam), func(t *testing.T) {
			cfg, err := gen.FamilyConfig(fam, 0.06, 5)
			if err != nil {
				t.Fatal(err)
			}
			tt, err := gen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := Build(tt)
			pi := tt.Period.Len()

			for n := NodeID(0); int(n) < g.NumNodes(); n++ {
				edges := g.OutEdges(n)
				for e := range edges {
					edge := &edges[e]
					switch edge.Kind {
					case Board:
						// Only station nodes board; weight is T(S).
						if !g.IsStationNode(n) {
							t.Fatalf("board edge out of route node %d", n)
						}
						if edge.W != tt.Stations[g.Station(n)].Transfer {
							t.Fatalf("board weight %d != T(S)=%d", edge.W, tt.Stations[g.Station(n)].Transfer)
						}
						if g.IsStationNode(edge.Head) {
							t.Fatal("board edge leads to a station node")
						}
						if g.Station(edge.Head) != g.Station(n) {
							t.Fatal("board edge changes station")
						}
					case Alight:
						if g.IsStationNode(n) {
							t.Fatal("alight edge out of station node")
						}
						if edge.W != 0 {
							t.Fatalf("alight weight %d != 0", edge.W)
						}
						if edge.Head != g.StationNode(g.Station(n)) {
							t.Fatal("alight edge leads to foreign station")
						}
					case Ride:
						if g.IsStationNode(n) {
							t.Fatal("ride edge out of station node")
						}
						conns := g.RideConns(edge)
						// Sorted strictly by departure (duplicates collapsed).
						for i := 1; i < len(conns); i++ {
							if conns[i].Dep <= conns[i-1].Dep {
								t.Fatalf("ride conns not strictly sorted at node %d", n)
							}
						}
						// Dominance-free circularly.
						for i := range conns {
							ai := conns[i].Dep + conns[i].Dur
							for d := 1; d < len(conns); d++ {
								j := (i + d) % len(conns)
								lift := timeutil.Ticks(0)
								if i+d >= len(conns) {
									lift = pi
								}
								if conns[j].Dep+conns[j].Dur+lift <= ai {
									t.Fatalf("dominated ride conn survived at node %d: %d dominated by %d", n, i, j)
								}
							}
						}
						// Connection endpoints match the edge.
						for _, rc := range conns {
							c := tt.Connections[rc.Conn]
							if c.From != g.Station(n) || c.To != g.Station(edge.Head) {
								t.Fatalf("ride conn endpoints mismatch at node %d", n)
							}
							if c.Dep != rc.Dep || c.Duration() != rc.Dur {
								t.Fatalf("ride conn times mismatch at node %d", n)
							}
						}
					default:
						t.Fatalf("unknown edge kind %d", edge.Kind)
					}
				}
			}

			// Every connection's departure node has a ride edge toward the
			// arrival node's station (the connection itself may have been
			// dominance-reduced away, but the edge must exist).
			for _, c := range tt.Connections {
				dep := g.ConnDepartureNode(c.ID)
				found := false
				for _, e := range g.OutEdges(dep) {
					if e.Kind == Ride && g.Station(e.Head) == c.To {
						found = true
					}
				}
				if !found {
					t.Fatalf("connection %d has no ride edge from its departure node", c.ID)
				}
			}

			// Station nodes have exactly one board edge per route node at
			// that station.
			routeNodesAt := make(map[timetable.StationID]int)
			for n := NodeID(0); int(n) < g.NumNodes(); n++ {
				if !g.IsStationNode(n) {
					routeNodesAt[g.Station(n)]++
				}
			}
			for s := 0; s < tt.NumStations(); s++ {
				edges := g.OutEdges(g.StationNode(timetable.StationID(s)))
				if len(edges) != routeNodesAt[timetable.StationID(s)] {
					t.Fatalf("station %d: %d board edges for %d route nodes", s, len(edges), routeNodesAt[timetable.StationID(s)])
				}
			}
		})
	}
}

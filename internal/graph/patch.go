package graph

import (
	"fmt"

	"transit/internal/timetable"
)

// PatchTimes returns a new Graph reflecting a timetable produced by
// Timetable.Patch on this graph's timetable, without rebuilding the model:
// a delay or cancellation never changes a route's station sequence, so the
// node set, the CSR offsets, the board/alight/walk edges and every
// connection↔node mapping are shared with the receiver. Only the ride
// edges that carry a touched connection recompute their (sorted,
// dominance-free) departure lists; every other ride edge's departures are
// copied verbatim into the new graph's compacted connection store.
//
// tt must derive from the receiver's timetable via Patch (same stations,
// trains, routes and dense connection IDs); touched lists the connection
// IDs the patch retimed or cancelled.
func (g *Graph) PatchTimes(tt *timetable.Timetable, touched []timetable.ConnID) (*Graph, error) {
	if tt.NumStations() != g.numStations || tt.NumConnections() != len(g.connRideEdge) {
		return nil, fmt.Errorf("graph: patch timetable shape mismatch (%d stations/%d conns, graph has %d/%d)",
			tt.NumStations(), tt.NumConnections(), g.numStations, len(g.connRideEdge))
	}
	touchedEdge := make(map[int32]bool, len(touched))
	for _, id := range touched {
		if int(id) < 0 || int(id) >= len(g.connRideEdge) {
			return nil, fmt.Errorf("graph: patch touches unknown connection %d", id)
		}
		if e := g.connRideEdge[id]; e >= 0 {
			touchedEdge[e] = true
		}
	}
	ng := *g // shares firstOut, nodeStation, routeOffset, connDepNode, connArrNode, connRideEdge, rideAllConns
	ng.TT = tt
	ng.edges = append([]Edge(nil), g.edges...)
	ng.rideConns = make([]RideConn, 0, len(g.rideConns))
	var scratch []RideConn
	for e := range ng.edges {
		if ng.edges[e].Kind != Ride {
			continue
		}
		first := int32(len(ng.rideConns))
		if touchedEdge[int32(e)] {
			scratch = scratch[:0]
			for _, id := range g.rideAllConns[e] {
				c := &tt.Connections[id]
				if c.Arr.IsInf() {
					continue // cancelled
				}
				scratch = append(scratch, RideConn{Dep: c.Dep, Dur: c.Arr - c.Dep, Conn: id})
			}
			// reduceRideConns reorders scratch in place; the append below
			// copies the survivors out before the next reuse.
			ng.rideConns = append(ng.rideConns, reduceRideConns(tt.Period, scratch)...)
		} else {
			old := ng.edges[e]
			ng.rideConns = append(ng.rideConns, g.rideConns[old.First:old.First+old.Num]...)
		}
		ng.edges[e].First = first
		ng.edges[e].Num = int32(len(ng.rideConns)) - first
	}
	return &ng, nil
}

package graph

import (
	"testing"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// patchNetwork builds a line network with two routes and several trains per
// route, so ride edges carry multiple departures.
func patchNetwork(t *testing.T) *timetable.Timetable {
	t.Helper()
	b := timetable.NewBuilder(timeutil.NewPeriod(1440))
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 3)
	c := b.AddStation("C", 2)
	d := b.AddStation("D", 1)
	for h := timeutil.Ticks(6); h <= 10; h++ {
		b.AddTrainRun("r1", []timetable.StationID{a, bb, c}, h*60, []timeutil.Ticks{10, 15}, 1)
	}
	for h := timeutil.Ticks(7); h <= 9; h++ {
		b.AddTrainRun("r2", []timetable.StationID{bb, c, d}, h*60+20, []timeutil.Ticks{12, 8}, 1)
	}
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

// assertGraphsEquivalent compares the ride-edge contents and evaluation
// behavior of two graphs over the same timetable shape.
func assertGraphsEquivalent(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %d nodes/%d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for n := NodeID(0); int(n) < got.NumNodes(); n++ {
		ge, we := got.OutEdges(n), want.OutEdges(n)
		if len(ge) != len(we) {
			t.Fatalf("node %d: %d edges, want %d", n, len(ge), len(we))
		}
		for i := range ge {
			if ge[i].Head != we[i].Head || ge[i].Kind != we[i].Kind || ge[i].W != we[i].W {
				t.Fatalf("node %d edge %d: %+v vs %+v", n, i, ge[i], we[i])
			}
			if ge[i].Kind != Ride {
				continue
			}
			gc, wc := got.RideConns(&ge[i]), want.RideConns(&we[i])
			if len(gc) != len(wc) {
				t.Fatalf("node %d ride edge %d: %d conns, want %d (%v vs %v)", n, i, len(gc), len(wc), gc, wc)
			}
			for j := range gc {
				if gc[j] != wc[j] {
					t.Fatalf("node %d ride edge %d conn %d: %+v vs %+v", n, i, j, gc[j], wc[j])
				}
			}
			for at := timeutil.Ticks(0); at < 1600; at += 37 {
				ga, gid := got.EvalRide(&ge[i], at)
				wa, wid := want.EvalRide(&we[i], at)
				if ga != wa || gid != wid {
					t.Fatalf("EvalRide(node %d, edge %d, %d): (%d,%d) vs (%d,%d)", n, i, at, ga, gid, wa, wid)
				}
			}
		}
	}
}

func TestPatchTimesMatchesRebuild(t *testing.T) {
	tt := patchNetwork(t)
	g := Build(tt)
	// Delay the 08:00 r1 train (train 2, conns 4-5) by 45 so its hops
	// reorder against neighbours, and cancel the 08:20 r2 train (train 6,
	// conns 12-13).
	updates := []timetable.ConnUpdate{
		{ID: 4, Dep: tt.Connections[4].Dep + 45, Arr: tt.Connections[4].Arr + 45},
		{ID: 5, Dep: tt.Connections[5].Dep + 45, Arr: tt.Connections[5].Arr + 45},
		{ID: 12, Cancel: true},
		{ID: 13, Cancel: true},
	}
	ntt, err := tt.Patch(updates)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.PatchTimes(ntt, []timetable.ConnID{4, 5, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEquivalent(t, pg, Build(ntt))
	// The patch shares the structural arrays with the original.
	if &pg.firstOut[0] != &g.firstOut[0] || &pg.nodeStation[0] != &g.nodeStation[0] {
		t.Error("structural arrays not shared")
	}
	// The original graph still answers with the old times.
	old := Build(patchNetwork(t))
	assertGraphsEquivalent(t, g, old)
}

func TestPatchTimesChained(t *testing.T) {
	tt := patchNetwork(t)
	g := Build(tt)
	// Two successive patches (delay, then cancel the same train) must equal
	// a fresh build of the final timetable.
	tt1, err := tt.Patch([]timetable.ConnUpdate{
		{ID: 0, Dep: tt.Connections[0].Dep + 10, Arr: tt.Connections[0].Arr + 10},
		{ID: 1, Dep: tt.Connections[1].Dep + 10, Arr: tt.Connections[1].Arr + 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := g.PatchTimes(tt1, []timetable.ConnID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tt2, err := tt1.Patch([]timetable.ConnUpdate{{ID: 0, Cancel: true}, {ID: 1, Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g1.PatchTimes(tt2, []timetable.ConnID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEquivalent(t, g2, Build(tt2))
}

func TestPatchTimesShapeMismatch(t *testing.T) {
	tt := patchNetwork(t)
	g := Build(tt)
	other := Build(patchNetwork(t)) // same shape, different object — fine
	if _, err := g.PatchTimes(other.TT, nil); err != nil {
		t.Fatalf("same-shape timetable rejected: %v", err)
	}
	b := timetable.NewBuilder(timeutil.NewPeriod(1440))
	b.AddStation("X", 1)
	small, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PatchTimes(small, nil); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := g.PatchTimes(tt, []timetable.ConnID{999}); err == nil {
		t.Fatal("unknown touched connection accepted")
	}
}

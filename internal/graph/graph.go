// Package graph builds the realistic time-dependent model of Pyrga et al.
// [23] from a periodic timetable, as used by the paper (Section 2, Figure 1):
// one station node per station, one route node per (route, station on that
// route), constant-weight transfer edges between station and route nodes,
// and time-dependent route edges between consecutive route nodes of a route
// carrying the elementary connections of that route as connection points.
//
// Fixed model conventions (documented in DESIGN.md §5): the boarding edge
// station→route node has constant weight T(S); the alighting edge route
// node→station has weight 0. Sources are initialized directly at route
// nodes, so no transfer time is paid when boarding the very first train,
// and none is paid on final arrival at the target station node.
package graph

import (
	"fmt"
	"sort"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// NodeID indexes the nodes of the time-dependent graph. Station nodes come
// first ([0, NumStations)), then route nodes.
type NodeID int32

// NoNode is the invalid node sentinel.
const NoNode NodeID = -1

// EdgeKind distinguishes the three edge types of the realistic model.
type EdgeKind uint8

const (
	// Board is a station node → route node edge with constant weight T(S).
	Board EdgeKind = iota
	// Alight is a route node → station node edge with weight 0.
	Alight
	// Ride is a time-dependent route node → route node edge holding the
	// elementary connections between two consecutive stations of a route.
	Ride
	// Walk is a station node → station node footpath with constant walking
	// time, usable at any moment.
	Walk
)

func (k EdgeKind) String() string {
	switch k {
	case Board:
		return "board"
	case Alight:
		return "alight"
	case Ride:
		return "ride"
	case Walk:
		return "walk"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is an outgoing edge of the time-dependent graph. For Board/Alight
// edges W holds the constant weight; for Ride edges [First, First+Num)
// indexes the graph's RideConns.
type Edge struct {
	Head  NodeID
	Kind  EdgeKind
	W     timeutil.Ticks
	First int32
	Num   int32
}

// RideConn is one departure on a ride edge: at time point Dep a vehicle
// leaves, taking Dur ticks to the head route node; Conn is the underlying
// elementary connection (for journey extraction).
type RideConn struct {
	Dep  timeutil.Ticks
	Dur  timeutil.Ticks
	Conn timetable.ConnID
}

// Graph is the realistic time-dependent model of a timetable. It is
// immutable after Build and safe for concurrent readers; all query state
// lives in the algorithms, never in the graph.
type Graph struct {
	TT *timetable.Timetable

	firstOut  []int32 // CSR offsets, len = numNodes+1
	edges     []Edge
	rideConns []RideConn

	nodeStation []timetable.StationID // st(u) for every node
	routeOffset []NodeID              // first node of each route
	connDepNode []NodeID              // departing route node per connection
	connArrNode []NodeID              // arriving route node per connection

	// Incremental-update indexes (PatchTimes): the ride edge every
	// connection lives on, and per edge the full (pre-reduction) member
	// list needed to recompute the edge's departures after a retime.
	connRideEdge []int32              // per connection: index into edges (-1 for cancelled-at-build)
	rideAllConns [][]timetable.ConnID // per edge index: member connections of a Ride edge (nil otherwise)

	numStations int
}

// Build constructs the time-dependent graph. Connections on each ride edge
// are sorted by departure and dominated departures (a later vehicle on the
// same edge that arrives no later) are dropped; this never changes any
// travel-time function value and makes next-departure evaluation exact.
func Build(tt *timetable.Timetable) *Graph {
	g := &Graph{TT: tt, numStations: tt.NumStations()}
	routes := tt.Routes()

	numNodes := tt.NumStations()
	g.routeOffset = make([]NodeID, len(routes)+1)
	for i, r := range routes {
		g.routeOffset[i] = NodeID(numNodes)
		numNodes += len(r.Stations)
	}
	g.routeOffset[len(routes)] = NodeID(numNodes)

	g.nodeStation = make([]timetable.StationID, numNodes)
	for s := 0; s < tt.NumStations(); s++ {
		g.nodeStation[s] = timetable.StationID(s)
	}
	for i, r := range routes {
		for p, s := range r.Stations {
			g.nodeStation[g.routeOffset[i]+NodeID(p)] = s
		}
	}

	// Assign each connection to its (route, hop) ride edge. A train's hops
	// are its connections in ID order (see timetable.trainHops); hop h runs
	// from route.Stations[h] to route.Stations[h+1].
	type hopKey struct {
		route timetable.RouteID
		hop   int32
	}
	hopConns := make(map[hopKey][]RideConn)
	hopIDs := make(map[hopKey][]timetable.ConnID)
	hopIndex := make(map[timetable.TrainID]int32, tt.NumTrains())
	g.connDepNode = make([]NodeID, tt.NumConnections())
	g.connArrNode = make([]NodeID, tt.NumConnections())
	g.connRideEdge = make([]int32, tt.NumConnections())
	for i := range g.connRideEdge {
		g.connRideEdge[i] = -1
	}
	for _, c := range tt.Connections {
		r := tt.RouteOf(c.Train)
		h := hopIndex[c.Train]
		hopIndex[c.Train] = h + 1
		g.connDepNode[c.ID] = g.routeOffset[r] + NodeID(h)
		g.connArrNode[c.ID] = g.routeOffset[r] + NodeID(h) + 1
		if c.Arr.IsInf() {
			// Cancelled connection: keeps its hop slot (so later hops stay
			// aligned with the route's station sequence) but never appears
			// on a ride edge.
			continue
		}
		hopConns[hopKey{r, h}] = append(hopConns[hopKey{r, h}], RideConn{
			Dep: c.Dep, Dur: c.Duration(), Conn: c.ID,
		})
		hopIDs[hopKey{r, h}] = append(hopIDs[hopKey{r, h}], c.ID)
	}

	// Emit CSR. Station node s: one Board edge per route node at s.
	// Route node (r, p): Alight edge, plus Ride edge to (r, p+1) if p is not
	// the last position.
	routeNodesAt := make([][]NodeID, tt.NumStations())
	for i, r := range routes {
		for p, s := range r.Stations {
			routeNodesAt[s] = append(routeNodesAt[s], g.routeOffset[i]+NodeID(p))
		}
	}

	g.firstOut = make([]int32, numNodes+1)
	for n := NodeID(0); int(n) < numNodes; n++ {
		g.firstOut[n] = int32(len(g.edges))
		if int(n) < tt.NumStations() {
			st := tt.Stations[n]
			for _, rn := range routeNodesAt[n] {
				g.edges = append(g.edges, Edge{Head: rn, Kind: Board, W: st.Transfer})
			}
			for _, f := range tt.FootpathsFrom(timetable.StationID(n)) {
				g.edges = append(g.edges, Edge{Head: NodeID(f.To), Kind: Walk, W: f.Walk})
			}
			continue
		}
		// Route node: find its route and position.
		ri := sort.Search(len(routes), func(i int) bool { return g.routeOffset[i+1] > n }) // route containing n
		pos := int32(n - g.routeOffset[ri])
		s := routes[ri].Stations[pos]
		g.edges = append(g.edges, Edge{Head: NodeID(s), Kind: Alight, W: 0})
		if int(pos) < len(routes[ri].Stations)-1 {
			hk := hopKey{timetable.RouteID(ri), pos}
			conns := hopConns[hk]
			conns = reduceRideConns(tt.Period, conns)
			first := int32(len(g.rideConns))
			g.rideConns = append(g.rideConns, conns...)
			eIdx := int32(len(g.edges))
			ids := hopIDs[hk]
			for _, id := range ids {
				g.connRideEdge[id] = eIdx
			}
			for int32(len(g.rideAllConns)) < eIdx {
				g.rideAllConns = append(g.rideAllConns, nil)
			}
			g.rideAllConns = append(g.rideAllConns, ids)
			g.edges = append(g.edges, Edge{
				Head:  n + 1,
				Kind:  Ride,
				First: first,
				Num:   int32(len(conns)),
			})
		}
	}
	g.firstOut[numNodes] = int32(len(g.edges))
	for len(g.rideAllConns) < len(g.edges) {
		g.rideAllConns = append(g.rideAllConns, nil)
	}
	return g
}

// reduceRideConns sorts by departure, collapses duplicate departures to the
// fastest vehicle, and removes circularly dominated departures (cf.
// ttf.Function.Reduce; the same backward scan, retaining connection IDs).
func reduceRideConns(period timeutil.Period, conns []RideConn) []RideConn {
	if len(conns) <= 1 {
		return conns
	}
	sort.Slice(conns, func(i, j int) bool {
		if conns[i].Dep != conns[j].Dep {
			return conns[i].Dep < conns[j].Dep
		}
		return conns[i].Dur < conns[j].Dur
	})
	dedup := conns[:0]
	for _, c := range conns {
		if len(dedup) > 0 && dedup[len(dedup)-1].Dep == c.Dep {
			continue
		}
		dedup = append(dedup, c)
	}
	conns = dedup
	n := len(conns)
	pi := period.Len()
	keep := make([]bool, n)
	minArr := timeutil.Infinity
	for k := 2*n - 1; k >= 0; k-- {
		i := k % n
		lift := timeutil.Ticks(0)
		if k >= n {
			lift = pi
		}
		arr := conns[i].Dep + conns[i].Dur + lift
		if k < n && arr < minArr {
			keep[i] = true
		}
		if arr < minArr {
			minArr = arr
		}
	}
	out := conns[:0]
	for i, c := range conns {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}

// NumNodes returns the total node count (stations + route nodes).
func (g *Graph) NumNodes() int { return len(g.nodeStation) }

// NumRoutes returns the number of routes the graph was built over.
func (g *Graph) NumRoutes() int { return len(g.routeOffset) - 1 }

// RouteNodeSpan returns the first route node of route ri and the number of
// route nodes on it (one per station of the route's sequence). The nodes are
// contiguous: [first, first+n). The last node of the span has no outgoing
// Ride edge.
func (g *Graph) RouteNodeSpan(ri int) (first NodeID, n int) {
	return g.routeOffset[ri], int(g.routeOffset[ri+1] - g.routeOffset[ri])
}

// NumStations returns the number of station nodes.
func (g *Graph) NumStations() int { return g.numStations }

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// IsStationNode reports whether n is a station node.
func (g *Graph) IsStationNode(n NodeID) bool { return int(n) < g.numStations }

// StationNode returns the station node of a station.
func (g *Graph) StationNode(s timetable.StationID) NodeID { return NodeID(s) }

// Station returns st(u), the station a node belongs to.
func (g *Graph) Station(n NodeID) timetable.StationID { return g.nodeStation[n] }

// OutEdges returns the outgoing edges of n (shared slice, do not modify).
func (g *Graph) OutEdges(n NodeID) []Edge {
	return g.edges[g.firstOut[n]:g.firstOut[n+1]]
}

// RideConns returns the departures of a Ride edge, sorted by departure time
// point and dominance-free.
func (g *Graph) RideConns(e *Edge) []RideConn {
	return g.rideConns[e.First : e.First+e.Num]
}

// ConnDepartureNode returns the route node where connection c departs; this
// is where the profile search seeds queue items (r, i).
func (g *Graph) ConnDepartureNode(c timetable.ConnID) NodeID { return g.connDepNode[c] }

// RideEdgeConns returns the (sorted, dominance-free) departures of the Ride
// edge connection c lives on — c's same-hop alternatives, including c
// itself unless dominated — or nil when c was cancelled at build time.
// Shared slice; do not modify.
func (g *Graph) RideEdgeConns(c timetable.ConnID) []RideConn {
	e := g.connRideEdge[c]
	if e < 0 {
		return nil
	}
	return g.RideConns(&g.edges[e])
}

// ConnArrivalNode returns the route node where connection c arrives.
func (g *Graph) ConnArrivalNode(c timetable.ConnID) NodeID { return g.connArrNode[c] }

// EvalRide returns the arrival time at the head of a Ride edge when reaching
// its tail at the absolute time at, together with the connection boarded.
// The next departure (wrapping to the following period) is optimal because
// ride connections are stored dominance-free. Returns Infinity and -1 for
// edges with no departures.
func (g *Graph) EvalRide(e *Edge, at timeutil.Ticks) (timeutil.Ticks, timetable.ConnID) {
	conns := g.RideConns(e)
	if len(conns) == 0 {
		return timeutil.Infinity, -1
	}
	tau := g.TT.Period.Wrap(at)
	i := sort.Search(len(conns), func(i int) bool { return conns[i].Dep >= tau })
	var wait timeutil.Ticks
	var c RideConn
	if i == len(conns) {
		c = conns[0]
		wait = g.TT.Period.Len() - tau + c.Dep
	} else {
		c = conns[i]
		wait = c.Dep - tau
	}
	return at + wait + c.Dur, c.Conn
}

// EvalEdge returns the arrival time at the head of any edge when reaching
// its tail at the absolute time at; for Ride edges it also returns the
// boarded connection (otherwise -1).
func (g *Graph) EvalEdge(e *Edge, at timeutil.Ticks) (timeutil.Ticks, timetable.ConnID) {
	if e.Kind == Ride {
		return g.EvalRide(e, at)
	}
	return at + e.W, -1
}

// Stats summarizes the graph for logging.
type Stats struct {
	Nodes        int
	StationNodes int
	RouteNodes   int
	Edges        int
	RideEdges    int
	RideConns    int
}

// Stats returns summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Nodes:        g.NumNodes(),
		StationNodes: g.numStations,
		RouteNodes:   g.NumNodes() - g.numStations,
		Edges:        len(g.edges),
		RideConns:    len(g.rideConns),
	}
	for _, e := range g.edges {
		if e.Kind == Ride {
			st.RideEdges++
		}
	}
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("%d nodes (%d stations, %d route nodes), %d edges (%d ride), %d ride connections",
		s.Nodes, s.StationNodes, s.RouteNodes, s.Edges, s.RideEdges, s.RideConns)
}

package graph

import (
	"math/rand"
	"testing"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

var day = timeutil.NewPeriod(1440)

// lineNetwork: stations A-B-C, one route with two trains, plus a second
// route B-C with one train.
func lineNetwork(t *testing.T) *timetable.Timetable {
	t.Helper()
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 3)
	c := b.AddStation("C", 2)
	b.AddTrainRun("t1", []timetable.StationID{a, bb, c}, 480, []timeutil.Ticks{10, 15}, 1)
	b.AddTrainRun("t2", []timetable.StationID{a, bb, c}, 540, []timeutil.Ticks{10, 15}, 1)
	b.AddTrainRun("t3", []timetable.StationID{bb, c}, 505, []timeutil.Ticks{9}, 0)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestBuildStructure(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	// 3 station nodes + route1 has 3 nodes + route2 has 2 nodes = 8.
	if g.NumNodes() != 8 || g.NumStations() != 3 {
		t.Fatalf("nodes = %d (%d stations)", g.NumNodes(), g.NumStations())
	}
	st := g.Stats()
	if st.RouteNodes != 5 {
		t.Fatalf("route nodes = %d, want 5", st.RouteNodes)
	}
	// Ride edges: route1 has 2 hops, route2 has 1 hop.
	if st.RideEdges != 3 {
		t.Fatalf("ride edges = %d, want 3", st.RideEdges)
	}
	// Every node belongs to a station.
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		s := g.Station(n)
		if s < 0 || int(s) >= tt.NumStations() {
			t.Fatalf("node %d has invalid station %d", n, s)
		}
		if g.IsStationNode(n) && NodeID(s) != n {
			t.Fatalf("station node %d maps to station %d", n, s)
		}
	}
}

func TestEdgeKindsAndWeights(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	// Station B (id 1) hosts route nodes of both routes → 2 board edges
	// with weight T(B)=3.
	edges := g.OutEdges(g.StationNode(1))
	if len(edges) != 2 {
		t.Fatalf("station B board edges = %d, want 2", len(edges))
	}
	for _, e := range edges {
		if e.Kind != Board || e.W != 3 {
			t.Fatalf("bad board edge %+v", e)
		}
		if g.Station(e.Head) != 1 {
			t.Fatalf("board edge leads to route node of station %d", g.Station(e.Head))
		}
		// Each route node has an alight edge back with weight 0.
		back := g.OutEdges(e.Head)
		foundAlight := false
		for _, be := range back {
			if be.Kind == Alight {
				foundAlight = true
				if be.W != 0 || be.Head != g.StationNode(1) {
					t.Fatalf("bad alight edge %+v", be)
				}
			}
		}
		if !foundAlight {
			t.Fatal("route node missing alight edge")
		}
	}
}

func TestConnDepartureNodes(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	for _, c := range tt.Connections {
		dep := g.ConnDepartureNode(c.ID)
		arr := g.ConnArrivalNode(c.ID)
		if g.Station(dep) != c.From {
			t.Fatalf("conn %d departs from node of station %d, want %d", c.ID, g.Station(dep), c.From)
		}
		if g.Station(arr) != c.To {
			t.Fatalf("conn %d arrives at node of station %d, want %d", c.ID, g.Station(arr), c.To)
		}
		if g.IsStationNode(dep) || g.IsStationNode(arr) {
			t.Fatal("connection endpoints must be route nodes")
		}
		// The ride edge out of dep must contain the connection (unless it
		// was dominance-reduced away, which cannot happen here).
		found := false
		for _, e := range g.OutEdges(dep) {
			if e.Kind != Ride {
				continue
			}
			for _, rc := range g.RideConns(&e) {
				if rc.Conn == c.ID {
					found = true
					if rc.Dep != c.Dep || rc.Dur != c.Duration() {
						t.Fatalf("ride conn mismatch: %+v vs %+v", rc, c)
					}
				}
			}
		}
		if !found {
			t.Fatalf("connection %d not found on its ride edge", c.ID)
		}
	}
}

func TestEvalRide(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	// Route 1 hop A→B: departures 480 (t1) and 540 (t2), both 10 min.
	depNode := g.ConnDepartureNode(0)
	var ride *Edge
	for i := range g.OutEdges(depNode) {
		e := &g.OutEdges(depNode)[i]
		if e.Kind == Ride {
			ride = e
		}
	}
	if ride == nil {
		t.Fatal("no ride edge")
	}
	tests := []struct {
		at      timeutil.Ticks
		wantArr timeutil.Ticks
	}{
		{470, 490},   // wait 10 for 480 train
		{480, 490},   // immediate
		{481, 550},   // next train at 540
		{541, 1930},  // missed both → next day 480 train: 541 + (1440-541+480) + 10
		{1950, 1990}, // day 1, 07:30 → day 1 train at 540+1440
	}
	for _, tc := range tests {
		arr, conn := g.EvalRide(ride, tc.at)
		if arr != tc.wantArr {
			t.Errorf("EvalRide(at=%d) = %d, want %d", tc.at, arr, tc.wantArr)
		}
		if conn < 0 {
			t.Errorf("EvalRide(at=%d) returned no connection", tc.at)
		}
	}
}

func TestEvalEdgeConstant(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	e := g.OutEdges(g.StationNode(1))[0] // board edge, W=3
	arr, conn := g.EvalEdge(&e, 500)
	if arr != 503 || conn != -1 {
		t.Fatalf("EvalEdge board = (%d,%d)", arr, conn)
	}
}

func TestReduceRideConnsDominance(t *testing.T) {
	conns := []RideConn{
		{Dep: 480, Dur: 200, Conn: 0}, // arrives 680, dominated by next
		{Dep: 500, Dur: 30, Conn: 1},  // arrives 530
		{Dep: 500, Dur: 60, Conn: 2},  // duplicate departure, slower
		{Dep: 600, Dur: 50, Conn: 3},
	}
	out := reduceRideConns(day, conns)
	if len(out) != 2 || out[0].Conn != 1 || out[1].Conn != 3 {
		t.Fatalf("got %+v", out)
	}
}

func TestReduceRideConnsCircular(t *testing.T) {
	// 23:00 + 10h dominated by 06:00 + 1h (Δ(1380,360)+60 = 480 < 600).
	conns := []RideConn{
		{Dep: 360, Dur: 60, Conn: 0},
		{Dep: 1380, Dur: 600, Conn: 1},
	}
	out := reduceRideConns(day, conns)
	if len(out) != 1 || out[0].Conn != 0 {
		t.Fatalf("got %+v", out)
	}
}

// EvalRide must equal the brute-force minimum over all (unreduced)
// departures, on random ride edges.
func TestEvalRideMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		raw := make([]RideConn, n)
		for i := range raw {
			raw[i] = RideConn{
				Dep:  timeutil.Ticks(rng.Intn(1440)),
				Dur:  timeutil.Ticks(1 + rng.Intn(300)),
				Conn: timetable.ConnID(i),
			}
		}
		cp := make([]RideConn, n)
		copy(cp, raw)
		reduced := reduceRideConns(day, cp)
		g := &Graph{rideConns: reduced}
		g.TT = &timetable.Timetable{Period: day}
		e := Edge{Kind: Ride, First: 0, Num: int32(len(reduced))}
		for tau := timeutil.Ticks(0); tau < 1440; tau += 17 {
			best := timeutil.Infinity
			for _, c := range raw {
				arr := tau + day.Delta(tau, c.Dep) + c.Dur
				if arr < best {
					best = arr
				}
			}
			got, _ := g.EvalRide(&e, tau)
			if got != best {
				t.Fatalf("trial %d: EvalRide(%d)=%d, brute=%d\nraw %+v\nreduced %+v",
					trial, tau, got, best, raw, reduced)
			}
		}
	}
}

func TestEmptyRideEdge(t *testing.T) {
	g := &Graph{}
	g.TT = &timetable.Timetable{Period: day}
	e := Edge{Kind: Ride, First: 0, Num: 0}
	arr, conn := g.EvalRide(&e, 100)
	if !arr.IsInf() || conn != -1 {
		t.Fatal("empty ride edge must be unreachable")
	}
}

func TestStatsString(t *testing.T) {
	tt := lineNetwork(t)
	g := Build(tt)
	if g.Stats().String() == "" {
		t.Fatal("empty stats string")
	}
	if g.NumEdges() != len(g.edges) {
		t.Fatal("NumEdges mismatch")
	}
}

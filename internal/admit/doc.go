// Package admit keeps tpserver standing up under more load than it can
// serve. It contributes two cooperating pieces, both dependency-free:
//
// Gate is a weighted admission semaphore with a short FIFO
// queue-with-deadline. Search work beyond the configured concurrency
// budget waits briefly for a slot and is otherwise rejected early with a
// typed *Overload carrying a Retry-After hint — CPU is spent answering the
// queries that will finish, not thrashing between hundreds that won't.
//
// Cache is an epoch-keyed in-process result cache with singleflight
// coalescing. Keys combine the live delay epoch with the canonical request
// serialization (transit.Request.CacheKey), so correctness under live
// updates costs nothing: applying a delay batch bumps the epoch, old
// entries stop matching instantly and are swept on the next access.
// Identical concurrent requests share one underlying search. Memory is
// bounded by entry count and by approximate result bytes, LRU-evicted.
//
// The intended composition (what tpserver does) is cache outside, gate
// inside: Cache.Plan(ctx, network, epoch, req, do) where do acquires the Gate and
// then runs the search. Hits and coalesced waiters then cost no admission
// slot — under a spike of popular queries the cache absorbs most of the
// load and the gate bounds what remains.
package admit

package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(3, time.Millisecond)
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if got := g.Inflight(); got != 3 {
		t.Fatalf("Inflight = %d, want 3", got)
	}
	// Fourth must shed after the (tiny) queue deadline.
	if _, err := g.Acquire(context.Background(), 1); err == nil {
		t.Fatal("acquire beyond capacity succeeded")
	} else {
		var ov *Overload
		if !errors.As(err, &ov) {
			t.Fatalf("error is %T, want *Overload", err)
		}
		if ov.RetryAfter < time.Second {
			t.Fatalf("RetryAfter = %v, want >= 1s", ov.RetryAfter)
		}
	}
	if g.Shed() != 1 || g.Admitted() != 3 {
		t.Fatalf("Shed/Admitted = %d/%d, want 1/3", g.Shed(), g.Admitted())
	}
	for _, rel := range rels {
		rel()
	}
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight after release = %d, want 0", got)
	}
	// Released capacity admits again.
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel()
}

func TestGateReleaseIsIdempotent(t *testing.T) {
	g := NewGate(1, time.Millisecond)
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must not double-free the slot
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d, want 0", got)
	}
}

func TestGateQueueGrantsFIFO(t *testing.T) {
	g := NewGate(1, time.Second)
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger enqueue so the FIFO order is deterministic.
			time.Sleep(time.Duration(i+1) * 20 * time.Millisecond)
			r, err := g.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
	}
	close(start)
	// Let everyone enqueue, then release the slot: grants must ripple in
	// arrival order.
	time.Sleep(time.Duration(n+2) * 20 * time.Millisecond)
	rel()
	wg.Wait()
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("grant order = %v, want ascending", order)
		}
	}
}

func TestGateWeightClampAndHeavyRequests(t *testing.T) {
	g := NewGate(4, time.Millisecond)
	// Weight above capacity clamps to capacity rather than deadlocking.
	rel, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("heavy acquire: %v", err)
	}
	if got := g.Inflight(); got != 4 {
		t.Fatalf("Inflight = %d, want clamped 4", got)
	}
	if _, err := g.Acquire(context.Background(), 1); err == nil {
		t.Fatal("light acquire fit alongside a full-capacity holder")
	}
	rel()
	// Weight below one clamps to one.
	rel, err = g.Acquire(context.Background(), -7)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Inflight(); got != 1 {
		t.Fatalf("Inflight = %d, want 1", got)
	}
	rel()
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := NewGate(1, time.Minute) // deadline long enough to never fire here
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire returned %v, want context.Canceled", err)
	}
	// A caller walking away is not load shedding.
	if g.Shed() != 0 {
		t.Fatalf("Shed = %d, want 0", g.Shed())
	}
	waitFor(t, func() bool { return g.Queued() == 0 })
	rel()
	// The slot is still usable.
	rel, err = g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func TestGateQueueFullShedsImmediately(t *testing.T) {
	g := NewGate(1, time.Minute)
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Fill the queue (maxQueue = max(16, 4*1) = 16).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire(ctx, 1)
		}()
	}
	waitFor(t, func() bool { return g.Queued() == 16 })
	start := time.Now()
	if _, err := g.Acquire(context.Background(), 1); err == nil {
		t.Fatal("acquire with full queue succeeded")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("queue-full shed took %v, want immediate", d)
	}
	cancel()
	wg.Wait()
}

func TestGateCloseShedsQueueAndFutureAcquires(t *testing.T) {
	g := NewGate(1, time.Minute)
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background(), 1)
		done <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	g.Close()
	var ov *Overload
	if err := <-done; !errors.As(err, &ov) {
		t.Fatalf("queued acquire after Close returned %v, want *Overload", err)
	}
	if _, err := g.Acquire(context.Background(), 1); !errors.As(err, &ov) {
		t.Fatalf("acquire after Close returned %v, want *Overload", err)
	}
	rel() // releasing an in-flight admission after Close must not panic
}

func TestGateDrain(t *testing.T) {
	g := NewGate(2, time.Millisecond)
	rel1, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with work in flight returned %v, want deadline", err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		rel1()
		rel2()
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := g.Drain(ctx2); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
}

func TestGateNilIsOpen(t *testing.T) {
	var g *Gate
	rel, err := g.Acquire(context.Background(), 5)
	if err != nil {
		t.Fatalf("nil gate acquire: %v", err)
	}
	rel()
	g.Close()
	if err := g.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g.Inflight() != 0 || g.Queued() != 0 || g.Admitted() != 0 || g.Shed() != 0 {
		t.Fatal("nil gate metrics not zero")
	}
}

// TestGateStress hammers a small gate from many goroutines under -race:
// every admission must be released, inflight must never exceed capacity,
// and the books must balance at the end.
func TestGateStress(t *testing.T) {
	const capacity = 4
	g := NewGate(capacity, 2*time.Millisecond)
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rel, err := g.Acquire(context.Background(), int64(1+i%3))
				if err != nil {
					var ov *Overload
					if !errors.As(err, &ov) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(50 * time.Microsecond)
				inflight.Add(-1)
				rel()
			}
		}(i)
	}
	wg.Wait()
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight after stress = %d, want 0", got)
	}
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak concurrent admissions = %d, want <= %d", p, capacity)
	}
	if g.Admitted() == 0 {
		t.Fatal("no admissions at all")
	}
}

func TestGateAcquireWaitReportsQueueTime(t *testing.T) {
	g := NewGate(1, time.Second)
	rel, wait, err := g.AcquireWait(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if wait != 0 {
		t.Fatalf("fast-path wait = %v, want 0", wait)
	}
	done := make(chan time.Duration, 1)
	go func() {
		rel2, w, err := g.AcquireWait(context.Background(), 1)
		if err != nil {
			t.Error(err)
			done <- 0
			return
		}
		rel2()
		done <- w
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	time.Sleep(5 * time.Millisecond)
	rel()
	if w := <-done; w < 5*time.Millisecond {
		t.Fatalf("queued wait = %v, want >= 5ms", w)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterJitterBounds pins the shed back-off hint to its contract:
// every rejection suggests a retry in [retry, 2·retry) — at least the base
// hint, strictly under double it — and the hints are spread, not a fixed
// value that would synchronize the retry wave of every shed client.
func TestRetryAfterJitterBounds(t *testing.T) {
	g := NewGate(1, 300*time.Millisecond) // base hint rounds up to 1s
	base := g.retry
	if base != time.Second {
		t.Fatalf("base retry = %v, want 1s", base)
	}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		ov := g.overload()
		if ov.RetryAfter < base || ov.RetryAfter >= 2*base {
			t.Fatalf("RetryAfter = %v, want in [%v, %v)", ov.RetryAfter, base, 2*base)
		}
		seen[ov.RetryAfter] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 overloads produced %d distinct hints — no jitter", len(seen))
	}
}

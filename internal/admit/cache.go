package admit

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"transit"
)

// PlanFunc computes a result the cache could not serve — in tpserver it is
// the gate-guarded call into transit.Network.Plan.
type PlanFunc func(context.Context, transit.Request) (*transit.Result, error)

// Outcome reports how a Cache.Plan call was answered.
type Outcome uint8

const (
	// Bypass: the cache did not apply (nil cache or uncacheable request).
	Bypass Outcome = iota
	// Miss: this call ran the fill itself and populated the cache.
	Miss
	// Hit: served from a stored entry, no work ran.
	Hit
	// Coalesced: an identical fill was already in flight; this call waited
	// for it and shared its result.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

type ckey struct {
	network string
	epoch   uint64
	key     string
}

type entry struct {
	k    ckey
	val  *transit.Result
	size int64
}

// call is one in-flight fill; done is closed after val/err are final.
type call struct {
	done chan struct{}
	val  *transit.Result
	err  error
}

// Cache is an epoch-keyed in-process result cache with singleflight
// coalescing. Entries are keyed on (network name, live delay epoch,
// canonical Request serialization): when a network's live registry applies
// a delay batch or swaps a snapshot it bumps that network's epoch, and
// every cached answer for that network is invalidated for free — the new
// epoch's keys can never match, and stale entries are pruned on the first
// access that observes the new epoch. Epochs are tracked per network, so
// one tenant's delay feed never touches another tenant's entries (a
// single-network server just passes one constant name). Memory is bounded
// twice: by entry count and by the sum of approximate result bytes
// (transit.Result.ApproxBytes), evicting least-recently-used first.
//
// Concurrent identical requests coalesce: one fill runs, the rest wait and
// share its *Result. Cached results are shared read-only across goroutines
// — they are safe for that because Cache.Plan strips Request.Reuse before
// filling (the stored shell is fresh heap memory, never a caller-pooled
// shell, and Plan-detached results alias no pooled workspace arrays).
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu     sync.Mutex
	lru    list.List // of *entry, front = most recent
	items  map[ckey]*list.Element
	calls  map[ckey]*call
	bytes  int64
	epochs map[string]uint64 // per-network highest epoch observed; older entries are stale

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	waiting   atomic.Int64
}

// NewCache builds a cache bounded to maxEntries entries (must be > 0) and
// maxBytes approximate result bytes (<= 0: entry bound only).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		items:      make(map[ckey]*list.Element),
		calls:      make(map[ckey]*call),
		epochs:     make(map[string]uint64),
	}
}

// Plan answers req for the named network at the given epoch through the
// cache: a stored entry is returned as-is, an in-flight identical fill is
// joined, and otherwise this call fills by running do. Errors are never
// cached; a fill that failed because *its* caller was cancelled (not ours)
// is retried by the waiters whose contexts are still live, so one
// impatient client cannot poison the answer for the rest. A nil cache (or
// a request with no canonical key) bypasses straight to do.
//
// Request.Reuse interaction: the fill runs with Reuse stripped, so the
// cached shell is detached heap memory; when the caller passed a Reuse
// shell, the cached value is copied into it and the shell returned, same
// as Plan's own contract.
func (c *Cache) Plan(ctx context.Context, network string, epoch uint64, req transit.Request, do PlanFunc) (*transit.Result, Outcome, error) {
	if c == nil {
		res, err := do(ctx, req)
		return res, Bypass, err
	}
	key := req.CacheKey()
	if key == "" {
		res, err := do(ctx, req)
		return res, Bypass, err
	}
	reuse := req.Reuse
	req.Reuse = nil
	k := ckey{network: network, epoch: epoch, key: key}
	for {
		c.mu.Lock()
		c.pruneStaleLocked(network, epoch)
		if e, ok := c.items[k]; ok {
			c.lru.MoveToFront(e)
			val := e.Value.(*entry).val
			c.mu.Unlock()
			c.hits.Add(1)
			return deliver(val, reuse), Hit, nil
		}
		if ca, ok := c.calls[k]; ok {
			c.mu.Unlock()
			c.waiting.Add(1)
			select {
			case <-ca.done:
			case <-ctx.Done():
				c.waiting.Add(-1)
				return nil, Coalesced, ctx.Err()
			}
			c.waiting.Add(-1)
			if ca.err == nil {
				c.coalesced.Add(1)
				return deliver(ca.val, reuse), Coalesced, nil
			}
			if cancellation(ca.err) && ctx.Err() == nil {
				// The filler's client went away, not ours: try again (we
				// may become the new filler).
				continue
			}
			c.coalesced.Add(1)
			return nil, Coalesced, ca.err
		}
		ca := &call{done: make(chan struct{})}
		c.calls[k] = ca
		c.mu.Unlock()
		c.misses.Add(1)
		ca.val, ca.err = do(ctx, req)
		c.mu.Lock()
		delete(c.calls, k)
		if ca.err == nil {
			c.addLocked(k, ca.val)
		}
		c.mu.Unlock()
		close(ca.done)
		if ca.err != nil {
			return nil, Miss, ca.err
		}
		return deliver(ca.val, reuse), Miss, nil
	}
}

// cancellation reports whether err is a caller-abandonment failure (worth
// retrying for a waiter whose own context is live) rather than a real
// answer.
func cancellation(err error) bool {
	switch transit.ErrorCodeOf(err) {
	case transit.CodeCancelled, transit.CodeDeadlineExceeded:
		return true
	}
	return false
}

// deliver hands the shared cached value out, honoring a caller's Reuse
// shell: the value is copied into it (shallow — internals stay shared
// read-only) so steady-state callers keep their allocation profile.
func deliver(val, reuse *transit.Result) *transit.Result {
	if reuse != nil {
		*reuse = *val
		return reuse
	}
	return val
}

// pruneStaleLocked drops every entry of the network with an older epoch
// the first time a newer one is observed. Epochs are monotone per network
// (each network's live.Registry bumps them on every applied batch), so one
// linear sweep per bump reclaims all of that network's dead entries at
// once instead of letting them squat in the LRU. Entries of other networks
// are untouched — tenant isolation at the cache layer.
func (c *Cache) pruneStaleLocked(network string, epoch uint64) {
	if epoch <= c.epochs[network] {
		return
	}
	c.epochs[network] = epoch
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		if ent := e.Value.(*entry); ent.k.network == network && ent.k.epoch < epoch {
			c.removeLocked(e)
		}
		e = next
	}
}

// addLocked inserts a filled entry and evicts LRU until bounds hold.
// Fills keyed to an epoch older than the newest its network observed are
// already stale and are not stored.
func (c *Cache) addLocked(k ckey, val *transit.Result) {
	if k.epoch < c.epochs[k.network] {
		return
	}
	if _, ok := c.items[k]; ok {
		return // a concurrent fill of the same key won the race
	}
	ent := &entry{k: k, val: val, size: int64(val.ApproxBytes() + len(k.key) + len(k.network))}
	c.items[k] = c.lru.PushFront(ent)
	c.bytes += ent.size
	for c.lru.Len() > 0 &&
		(c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.removeLocked(c.lru.Back())
	}
}

func (c *Cache) removeLocked(e *list.Element) {
	ent := e.Value.(*entry)
	c.lru.Remove(e)
	delete(c.items, ent.k)
	c.bytes -= ent.size
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Entries   int
	Bytes     int64
	// Waiting is the number of goroutines currently blocked on an
	// in-flight fill (a gauge, mainly for tests and debugging).
	Waiting int64
}

// Stats reads the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   entries,
		Bytes:     bytes,
		Waiting:   c.waiting.Load(),
	}
}

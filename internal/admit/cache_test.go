package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"transit"
)

func profileReq(from, to transit.StationID) transit.Request {
	return transit.Request{Kind: transit.KindProfile, From: from, To: to}
}

// countingPlan returns a PlanFunc that counts invocations and returns a
// fresh Result shell per call.
func countingPlan(calls *int) PlanFunc {
	return func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		*calls++
		return &transit.Result{}, nil
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := NewCache(16, 0)
	calls := 0
	do := countingPlan(&calls)

	res1, out, err := c.Plan(context.Background(), "n", 1, profileReq(0, 1), do)
	if err != nil || out != Miss {
		t.Fatalf("first call: outcome %v err %v, want miss/nil", out, err)
	}
	res2, out, err := c.Plan(context.Background(), "n", 1, profileReq(0, 1), do)
	if err != nil || out != Hit {
		t.Fatalf("second call: outcome %v err %v, want hit/nil", out, err)
	}
	if res1 != res2 {
		t.Fatal("hit returned a different Result than the fill")
	}
	if calls != 1 {
		t.Fatalf("do ran %d times, want 1", calls)
	}
	// A different request misses.
	if _, out, _ := c.Plan(context.Background(), "n", 1, profileReq(0, 2), do); out != Miss {
		t.Fatalf("distinct request: outcome %v, want miss", out)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("Bytes = %d, want positive", st.Bytes)
	}
}

func TestCacheEpochBumpInvalidates(t *testing.T) {
	c := NewCache(16, 0)
	calls := 0
	do := countingPlan(&calls)
	req := profileReq(0, 1)

	c.Plan(context.Background(), "n", 1, req, do)
	c.Plan(context.Background(), "n", 1, req, do) // hit
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 before bump", calls)
	}
	// Epoch bump: the same request must recompute, and the stale entry is
	// swept on first contact with the new epoch.
	if _, out, _ := c.Plan(context.Background(), "n", 2, req, do); out != Miss {
		t.Fatalf("post-bump outcome %v, want miss", out)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 after bump", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("Entries = %d after prune, want 1 (stale swept)", st.Entries)
	}
	// An old-epoch request after the bump must not resurrect or store stale
	// data (epochs are monotone in production; a laggard reader computing
	// against an old snapshot simply doesn't cache).
	before := c.Stats().Entries
	if _, out, _ := c.Plan(context.Background(), "n", 1, profileReq(0, 9), do); out != Miss {
		t.Fatal("old-epoch request should miss")
	}
	if st := c.Stats(); st.Entries != before {
		t.Fatalf("old-epoch fill was stored: %d entries, want %d", st.Entries, before)
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	c := NewCache(16, 0)
	const followers = 7
	gate := make(chan struct{})
	fills := 0
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		fills++
		<-gate
		return &transit.Result{}, nil
	}
	req := profileReq(3, 4)

	results := make([]*transit.Result, followers+1)
	outs := make([]Outcome, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		results[0], outs[0], _ = c.Plan(context.Background(), "n", 1, req, do)
	}()
	// Wait until the leader is inside do (registered its call), then pile on.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.calls) == 1
	})
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], outs[i], _ = c.Plan(context.Background(), "n", 1, req, do)
		}(i)
	}
	waitFor(t, func() bool { return c.Stats().Waiting == followers })
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	nMiss, nCoal := 0, 0
	for i, out := range outs {
		switch out {
		case Miss:
			nMiss++
		case Coalesced:
			nCoal++
		default:
			t.Fatalf("caller %d outcome %v", i, out)
		}
		if results[i] != results[0] {
			t.Fatal("coalesced caller got a different Result")
		}
	}
	if nMiss != 1 || nCoal != followers {
		t.Fatalf("miss/coalesced = %d/%d, want 1/%d", nMiss, nCoal, followers)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != followers || st.Waiting != 0 {
		t.Fatalf("stats = %+v, want 1 miss / %d coalesced / 0 waiting", st, followers)
	}
}

func TestCacheEntryEviction(t *testing.T) {
	c := NewCache(3, 0)
	calls := 0
	do := countingPlan(&calls)
	for i := 0; i < 5; i++ {
		c.Plan(context.Background(), "n", 1, profileReq(0, transit.StationID(i)), do)
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Fatalf("Entries = %d, want capped at 3", st.Entries)
	}
	// Oldest (To=0, To=1) were evicted; newest three still hit.
	for i := 2; i < 5; i++ {
		if _, out, _ := c.Plan(context.Background(), "n", 1, profileReq(0, transit.StationID(i)), do); out != Hit {
			t.Fatalf("entry %d: outcome %v, want hit", i, out)
		}
	}
	if _, out, _ := c.Plan(context.Background(), "n", 1, profileReq(0, 0), do); out != Miss {
		t.Fatal("evicted entry still hit")
	}
	// Touching an entry protects it: hit To=2 then add two more — To=2
	// must survive, the untouched ones go.
	c.Plan(context.Background(), "n", 1, profileReq(0, 2), do)
	c.Plan(context.Background(), "n", 1, profileReq(0, 10), do)
	c.Plan(context.Background(), "n", 1, profileReq(0, 11), do)
	if _, out, _ := c.Plan(context.Background(), "n", 1, profileReq(0, 2), do); out != Hit {
		t.Fatal("recently used entry was evicted before older ones")
	}
}

func TestCacheByteBoundEviction(t *testing.T) {
	// Each zero-Result entry costs ApproxBytes (shell 160) + key length;
	// a 400-byte budget holds at most two such entries.
	c := NewCache(1024, 400)
	calls := 0
	do := countingPlan(&calls)
	for i := 0; i < 4; i++ {
		c.Plan(context.Background(), "n", 1, profileReq(0, transit.StationID(i)), do)
	}
	st := c.Stats()
	if st.Entries >= 4 {
		t.Fatalf("Entries = %d, want byte bound to evict below 4", st.Entries)
	}
	if st.Bytes > 400 {
		t.Fatalf("Bytes = %d, want <= 400", st.Bytes)
	}
}

func TestCacheReuseShellDelivery(t *testing.T) {
	c := NewCache(16, 0)
	var sawReuse bool
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		// The fill must never see the caller's shell: the cached value has
		// to be detached heap memory.
		if req.Reuse != nil {
			sawReuse = true
		}
		return &transit.Result{}, nil
	}
	shell := &transit.Result{}
	req := profileReq(5, 6)
	req.Reuse = shell
	res, out, err := c.Plan(context.Background(), "n", 1, req, do)
	if err != nil || out != Miss {
		t.Fatalf("outcome %v err %v", out, err)
	}
	if sawReuse {
		t.Fatal("fill ran with Reuse set")
	}
	if res != shell {
		t.Fatal("caller's Reuse shell was not honored")
	}
	// Corrupting the caller's shell must not corrupt the cached value.
	*shell = transit.Result{}
	res2, out, _ := c.Plan(context.Background(), "n", 1, profileReq(5, 6), do)
	if out != Hit {
		t.Fatalf("outcome %v, want hit", out)
	}
	if res2 == shell {
		t.Fatal("cache stored the caller's shell")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(16, 0)
	calls := 0
	boom := errors.New("boom")
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &transit.Result{}, nil
	}
	req := profileReq(0, 1)
	if _, _, err := c.Plan(context.Background(), "n", 1, req, do); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatal("error was cached")
	}
	if _, out, err := c.Plan(context.Background(), "n", 1, req, do); err != nil || out != Miss {
		t.Fatalf("retry after error: outcome %v err %v", out, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestCacheCancelledFillRetriedByLiveWaiter(t *testing.T) {
	c := NewCache(16, 0)
	gate := make(chan struct{})
	fills := 0
	var mu sync.Mutex
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		mu.Lock()
		n := fills
		fills++
		mu.Unlock()
		if n == 0 {
			<-gate
			// The leader's client hung up mid-search.
			return nil, transit.NewError(transit.CodeCancelled, "query cancelled", context.Canceled)
		}
		return &transit.Result{}, nil
	}
	req := profileReq(7, 8)

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Plan(context.Background(), "n", 1, req, do)
		leaderErr <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.calls) == 1
	})
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Plan(context.Background(), "n", 1, req, do)
		waiterDone <- err
	}()
	waitFor(t, func() bool { return c.Stats().Waiting == 1 })
	close(gate)

	if err := <-leaderErr; transit.ErrorCodeOf(err) != transit.CodeCancelled {
		t.Fatalf("leader err = %v, want cancelled", err)
	}
	// The waiter's own context was live, so it must have retried (becoming
	// the new filler) and gotten a real answer.
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want success after retry", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fills != 2 {
		t.Fatalf("fills = %d, want 2 (cancelled leader + retrying waiter)", fills)
	}
}

func TestCacheWaiterOwnContextCancelled(t *testing.T) {
	c := NewCache(16, 0)
	gate := make(chan struct{})
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		<-gate
		return &transit.Result{}, nil
	}
	req := profileReq(1, 2)
	go c.Plan(context.Background(), "n", 1, req, do)
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.calls) == 1
	})
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Plan(ctx, "n", 1, req, do)
		waiterDone <- err
	}()
	waitFor(t, func() bool { return c.Stats().Waiting == 1 })
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(gate)
}

func TestCacheBypass(t *testing.T) {
	calls := 0
	do := countingPlan(&calls)
	// Nil cache runs do directly.
	var nc *Cache
	if _, out, err := nc.Plan(context.Background(), "n", 1, profileReq(0, 1), do); err != nil || out != Bypass {
		t.Fatalf("nil cache: outcome %v err %v", out, err)
	}
	if nc.Stats() != (CacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
	// Unknown kind has no key and bypasses too.
	c := NewCache(16, 0)
	if _, out, err := c.Plan(context.Background(), "n", 1, transit.Request{Kind: "bogus"}, do); err != nil || out != Bypass {
		t.Fatalf("keyless request: outcome %v err %v", out, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("bypass touched cache state: %+v", st)
	}
}

// TestCacheStress mixes hits, misses, coalescing and epoch bumps across
// goroutines under -race.
func TestCacheStress(t *testing.T) {
	c := NewCache(32, 1<<20)
	do := func(ctx context.Context, req transit.Request) (*transit.Result, error) {
		time.Sleep(20 * time.Microsecond)
		if req.To%13 == 5 {
			return nil, fmt.Errorf("synthetic failure for %d", req.To)
		}
		return &transit.Result{}, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				epoch := uint64(1 + i/100) // mid-run epoch bump
				req := profileReq(transit.StationID(w%4), transit.StationID(i%40))
				res, _, err := c.Plan(context.Background(), "n", epoch, req, do)
				if err == nil && res == nil {
					t.Error("nil result without error")
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 32 {
		t.Fatalf("Entries = %d, want <= 32", st.Entries)
	}
	if st.Waiting != 0 {
		t.Fatalf("Waiting = %d after quiesce, want 0", st.Waiting)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stress produced no mix: %+v", st)
	}
}

// TestCacheNetworkIsolation is the multi-tenant contract: the same request
// on two networks gets two independent entries, and an epoch bump on one
// network neither invalidates nor sweeps the other's answers. Without this,
// a delay batch posted to one city would evict every city's cache.
func TestCacheNetworkIsolation(t *testing.T) {
	c := NewCache(16, 0)
	ctx := context.Background()
	callsA, callsB := 0, 0
	doA, doB := countingPlan(&callsA), countingPlan(&callsB)
	req := profileReq(0, 1)

	// Identical request, epoch and options — only the network differs.
	c.Plan(ctx, "a", 1, req, doA)
	c.Plan(ctx, "b", 1, req, doB)
	if callsA != 1 || callsB != 1 {
		t.Fatalf("two networks shared a fill: a=%d b=%d calls", callsA, callsB)
	}
	if _, out, _ := c.Plan(ctx, "a", 1, req, doA); out != Hit {
		t.Fatalf("network a re-ask: outcome %v, want hit", out)
	}
	if _, out, _ := c.Plan(ctx, "b", 1, req, doB); out != Hit {
		t.Fatalf("network b re-ask: outcome %v, want hit", out)
	}

	// A delay batch on a (epoch 1→2): a recomputes, b's entry is untouched.
	if _, out, _ := c.Plan(ctx, "a", 2, req, doA); out != Miss {
		t.Fatalf("network a post-bump: outcome %v, want miss", out)
	}
	if _, out, _ := c.Plan(ctx, "b", 1, req, doB); out != Hit {
		t.Fatalf("network b after a's bump: outcome %v, want hit (cross-tenant bleed)", out)
	}
	if callsB != 1 {
		t.Fatalf("network b recomputed after a's epoch bump: %d calls", callsB)
	}
	// a's stale entry was swept, a@2 and b@1 remain.
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("Entries = %d, want 2 (a@2 + b@1)", st.Entries)
	}

	// A late fill at a's superseded epoch is dropped; the same epoch value
	// is still perfectly valid for b (per-network high-water marks).
	c.Plan(ctx, "a", 1, profileReq(0, 2), doA)
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("stale-epoch fill for a was stored: %d entries", st.Entries)
	}
	if _, out, _ := c.Plan(ctx, "b", 1, profileReq(0, 2), doB); out != Miss {
		t.Fatalf("network b new request: outcome %v, want storable miss", out)
	}
	if _, out, _ := c.Plan(ctx, "b", 1, profileReq(0, 2), doB); out != Hit {
		t.Fatalf("network b epoch 1 entry not stored after a moved to 2")
	}
}

package admit

import (
	"container/list"
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Overload is the typed rejection of the admission gate: the server is at
// its concurrent-search budget and the request did not get a slot within
// the queue deadline (or the queue itself was full). It is cheap by
// construction — no search ran — and carries the back-off hint the HTTP
// layer turns into a Retry-After header.
type Overload struct {
	// RetryAfter is the suggested client back-off before retrying, always
	// at least one second.
	RetryAfter time.Duration
}

func (o *Overload) Error() string { return "admit: server overloaded" }

// Gate is a weighted admission semaphore with a short FIFO
// queue-with-deadline. Up to Capacity units of search work run
// concurrently; excess requests wait briefly for a slot and are shed with
// a typed *Overload when the deadline passes, the queue is full, or the
// gate is closed — so under a traffic spike latency of admitted work stays
// bounded and the rest fails fast instead of piling onto the scheduler.
//
// Waiters are granted strictly in FIFO order (no light-weight bypass), so
// heavy requests cannot starve behind a stream of cheap ones.
type Gate struct {
	capacity int64
	deadline time.Duration
	maxQueue int
	retry    time.Duration

	mu     sync.Mutex
	cur    int64
	queue  list.List // of *waiter, front = oldest
	closed bool

	admitted atomic.Uint64
	shed     atomic.Uint64
	queued   atomic.Int64
}

type waiter struct {
	weight int64
	ready  chan error // buffered 1: nil = admitted, *Overload = shed by Close
	elem   *list.Element
}

// NewGate builds a gate admitting capacity units of concurrent work, with
// queued waiters shed after queueDeadline. The queue holds at most
// 4×capacity waiters (at least 16): long queues only convert overload into
// latency, so beyond a short burst buffer shedding immediately is kinder.
func NewGate(capacity int64, queueDeadline time.Duration) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	maxQueue := int(4 * capacity)
	if maxQueue < 16 {
		maxQueue = 16
	}
	retry := queueDeadline.Round(time.Second)
	if retry < queueDeadline {
		retry += time.Second
	}
	if retry < time.Second {
		retry = time.Second
	}
	return &Gate{capacity: capacity, deadline: queueDeadline, maxQueue: maxQueue, retry: retry}
}

// overload builds the typed rejection with a jittered back-off in
// [retry, 2·retry): shed clients retrying after a fixed hint would all
// come back in the same instant and trip the gate again — spreading the
// hint spreads the retry wave.
func (g *Gate) overload() *Overload {
	return &Overload{RetryAfter: g.retry + rand.N(g.retry)}
}

// Acquire obtains weight units of admission (clamped to [1, Capacity]) and
// returns the release function to call when the work is done. On shed it
// returns a *Overload; when ctx is cancelled while queued it returns
// ctx.Err() (the caller went away — that is a cancellation, not load
// shedding, and is not counted as shed). A nil gate admits everything.
func (g *Gate) Acquire(ctx context.Context, weight int64) (func(), error) {
	release, _, err := g.AcquireWait(ctx, weight)
	return release, err
}

// AcquireWait is Acquire plus the time the request spent queued before the
// verdict — the observability layer's queue-wait stage. The duration is
// reported on every outcome, including sheds and cancellations (there it
// is how long the caller was held before being turned away). The fast path
// reports zero without consulting the clock.
func (g *Gate) AcquireWait(ctx context.Context, weight int64) (func(), time.Duration, error) {
	if g == nil {
		return func() {}, 0, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, 0, g.overload()
	}
	if g.queue.Len() == 0 && g.cur+weight <= g.capacity {
		g.cur += weight
		g.mu.Unlock()
		g.admitted.Add(1)
		return g.releaser(weight), 0, nil
	}
	if g.queue.Len() >= g.maxQueue {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, 0, g.overload()
	}
	w := &waiter{weight: weight, ready: make(chan error, 1)}
	w.elem = g.queue.PushBack(w)
	g.queued.Add(1)
	g.mu.Unlock()
	defer g.queued.Add(-1)
	enqueued := time.Now()

	timer := time.NewTimer(g.deadline)
	defer timer.Stop()
	select {
	case err := <-w.ready:
		release, err := g.granted(weight, err)
		return release, time.Since(enqueued), err
	case <-ctx.Done():
		if g.abandon(w) {
			return nil, time.Since(enqueued), ctx.Err()
		}
		// A grant raced the cancellation: take it, hand the slot straight
		// back, and report the cancellation.
		if err := <-w.ready; err != nil {
			g.shed.Add(1)
			return nil, time.Since(enqueued), err
		}
		g.releaser(weight)()
		return nil, time.Since(enqueued), ctx.Err()
	case <-timer.C:
		if g.abandon(w) {
			g.shed.Add(1)
			return nil, time.Since(enqueued), g.overload()
		}
		// A grant raced the deadline: the slot is ours, serve the request.
		release, err := g.granted(weight, <-w.ready)
		return release, time.Since(enqueued), err
	}
}

// granted finishes an Acquire whose waiter received a verdict.
func (g *Gate) granted(weight int64, err error) (func(), error) {
	if err != nil {
		g.shed.Add(1)
		return nil, err
	}
	g.admitted.Add(1)
	return g.releaser(weight), nil
}

// abandon removes a still-queued waiter, reporting false when a grant got
// there first (the verdict is then already in w.ready).
func (g *Gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.elem == nil {
		return false
	}
	g.queue.Remove(w.elem)
	w.elem = nil
	// Removing a heavy head may unblock lighter successors.
	g.grantLocked()
	return true
}

// grantLocked admits queued waiters in FIFO order while they fit.
func (g *Gate) grantLocked() {
	for g.queue.Len() > 0 {
		w := g.queue.Front().Value.(*waiter)
		if g.cur+w.weight > g.capacity {
			return
		}
		g.queue.Remove(w.elem)
		w.elem = nil
		g.cur += w.weight
		w.ready <- nil
	}
}

// releaser hands back weight units exactly once, no matter how often the
// returned function is called.
func (g *Gate) releaser(weight int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.cur -= weight
			g.grantLocked()
			g.mu.Unlock()
		})
	}
}

// Close sheds every queued waiter and makes all future Acquires fail
// immediately with *Overload. In-flight admissions keep their slots until
// released.
func (g *Gate) Close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for g.queue.Len() > 0 {
		w := g.queue.Front().Value.(*waiter)
		g.queue.Remove(w.elem)
		w.elem = nil
		w.ready <- g.overload()
	}
}

// Drain blocks until no work is admitted or queued, or ctx expires. It is
// the graceful-shutdown hook: after the listener stops accepting, Drain
// waits out the queue before the registry and process exit.
func (g *Gate) Drain(ctx context.Context) error {
	if g == nil {
		return nil
	}
	for {
		g.mu.Lock()
		idle := g.cur == 0 && g.queue.Len() == 0
		g.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Inflight returns the admitted weight currently running.
func (g *Gate) Inflight() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Queued returns the number of requests waiting for admission.
func (g *Gate) Queued() int64 {
	if g == nil {
		return 0
	}
	return g.queued.Load()
}

// Admitted returns the total number of granted admissions.
func (g *Gate) Admitted() uint64 {
	if g == nil {
		return 0
	}
	return g.admitted.Load()
}

// Shed returns the total number of requests rejected with *Overload.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

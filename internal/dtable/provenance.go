package dtable

import (
	"sort"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// ReachBuckets is the number of time buckets the period is divided into for
// the per-route reachability bitmaps of RowProvenance.
const ReachBuckets = 256

// reachWords is the uint64 words per route in RowProvenance.Reach.
const reachWords = ReachBuckets / 64

// RowProvenance is the compact per-row summary recorded during Build that
// lets Repair decide whether a delay batch can change the row at all. Three
// facts are kept, each covering one way a batch can alter the row's reduced
// profile functions:
//
//   - Used: a bitmap over trains, set for every train ridden by the
//     parent-chain journey of any settled label at any transfer target. If
//     a batch touches no used train, every recorded optimal journey of the
//     row survives with unchanged times, so the row cannot get *worse*.
//
//   - Reach: per route, a ReachBuckets-bucket bitmap (over the period) of
//     the settled arrival times at the route's ride-edge tail nodes — the
//     boarding-readiness times achievable from the row's source. A retimed
//     connection can make some journey *better* only if such a readiness
//     time falls inside its improvement arc (see TouchedConn.OldDep): ride
//     edges evaluate to the minimum arrival over their member connections,
//     and moving one member's departure improves that minimum only for
//     readiness values the move newly covers and no other member serves as
//     well. If no retimed connection's arc intersects the row's readiness
//     buckets for its route, the row cannot get *better*.
//
//   - Walk: the walk-reachable station set of the source (including the
//     source itself). The row's profile seeds are the outgoing connections
//     of exactly these stations, so touching one of their connections
//     changes the seed list and always dirties the row.
//
// The summaries describe the network the search ran against. Rows kept by a
// Repair were proven unchanged as *entries*, but journeys they did not use
// may have shifted, so their Reach bitmaps are stale for the patched
// network; repaired tables are therefore marked derived and cannot serve as
// the base of a further Repair (see Table.Derived).
type RowProvenance struct {
	// Used is a bitmap over train IDs: bit z set means a recorded optimal
	// journey of this row rides train z.
	Used []uint64
	// Reach holds reachWords words per route: the bucket bitmap of settled
	// boarding-readiness times at route r's ride-edge tail nodes occupies
	// Reach[r*reachWords : (r+1)*reachWords].
	Reach []uint64
	// Walk lists the walk-reachable seed stations of the row's source in
	// increasing ID order (always contains the source).
	Walk []timetable.StationID
}

// usedTrain reports whether bit z is set in the Used bitmap.
func (p *RowProvenance) usedTrain(z timetable.TrainID) bool {
	w := int(z) / 64
	return w < len(p.Used) && p.Used[w]&(1<<(uint(z)%64)) != 0
}

// walksTo reports whether s is in the row's (sorted) walk-seed set.
func (p *RowProvenance) walksTo(s timetable.StationID) bool {
	i := sort.Search(len(p.Walk), func(i int) bool { return p.Walk[i] >= s })
	return i < len(p.Walk) && p.Walk[i] == s
}

// TouchedConn describes one connection changed by a dynamic-update batch,
// relative to the network a repair base table was built for: the departure
// it had then (OldDep) and the departure it has now (NewDep), or Cancelled.
// Batches spanning several epochs compose by keeping the first OldDep and
// the last NewDep per connection (transit.MergeTouched).
//
// The forward circular arc (OldDep, NewDep] is the connection's
// *improvement arc*: the only boarding-readiness window in which the
// retiming can make any journey faster (see RowProvenance). Callers may
// tighten the arc before a Repair by setting Refined and ArcFrom to the
// latest alternative departure on the same ride edge that dominates the
// moved connection (core.RefineTouched); an empty arc (ArcFrom == NewDep)
// means the change can only slow journeys down, which the Used test
// covers. The tightening applies to the improvement test ONLY: the repair
// windows (which must also cover journeys that rode the connection at its
// old time and got slower) always anchor at the original OldDep.
type TouchedConn struct {
	Conn      timetable.ConnID
	Train     timetable.TrainID
	Route     timetable.RouteID
	From      timetable.StationID
	OldDep    timeutil.Ticks
	NewDep    timeutil.Ticks
	Cancelled bool
	// ArcFrom is the tightened exclusive lower bound of the improvement
	// arc, meaningful only when Refined is set; the arc is then
	// (ArcFrom, NewDep] instead of (OldDep, NewDep].
	ArcFrom timeutil.Ticks
	Refined bool
}

// arcFrom returns the improvement arc's exclusive lower bound.
func (tc *TouchedConn) arcFrom() timeutil.Ticks {
	if tc.Refined {
		return tc.ArcFrom
	}
	return tc.OldDep
}

// bucketOf maps a time point of the period to its ReachBuckets bucket.
func bucketOf(period timeutil.Period, t timeutil.Ticks) int {
	b := int(period.Wrap(t)) * ReachBuckets / int(period.Len())
	if b >= ReachBuckets { // defensive: Wrap keeps t < period
		b = ReachBuckets - 1
	}
	return b
}

// arcMask fills mask (reachWords words) with the buckets of the forward
// circular arc (oldDep, newDep], rounded outward to bucket boundaries (both
// endpoint buckets included, so quantization only over-approximates). An
// empty arc (oldDep == newDep) clears the mask and returns false.
func arcMask(period timeutil.Period, oldDep, newDep timeutil.Ticks, mask *[reachWords]uint64) bool {
	*mask = [reachWords]uint64{}
	od, nd := period.Wrap(oldDep), period.Wrap(newDep)
	if od == nd {
		return false
	}
	b0, b1 := bucketOf(period, od), bucketOf(period, nd)
	setRange := func(lo, hi int) { // inclusive bucket range
		for b := lo; b <= hi; b++ {
			mask[b/64] |= 1 << (uint(b) % 64)
		}
	}
	if b0 <= b1 {
		setRange(b0, b1)
	} else {
		setRange(b0, ReachBuckets-1)
		setRange(0, b1)
	}
	return true
}

// touchProbe is the precomputed per-connection dirty test of one batch.
type touchProbe struct {
	train  timetable.TrainID
	route  timetable.RouteID
	from   timetable.StationID
	arc    [reachWords]uint64 // zero except for retimed (non-cancelled) conns
	hasArc bool
}

// dirtyCauses breaks a dirty set down by the first rule that fired per row
// — which provenance fact would have to be tightened to shrink the repair.
type dirtyCauses struct {
	used int // a touched train is ridden by a recorded optimal journey
	seed int // a touched connection departs a walk-seed station of the row
	arc  int // a retimed connection's improvement arc hits reachable readiness times
}

// dirtyRows returns the indexes of the rows a batch can change, or
// ErrRepairFallback-wrapped errors when the table cannot answer that
// (missing provenance, derived table, foreign train/route IDs).
func (t *Table) dirtyRows(touched []TouchedConn) ([]int, dirtyCauses, error) {
	var causes dirtyCauses
	if t.derived {
		return nil, causes, errDerived
	}
	if t.numRoutes <= 0 || t.numTrains <= 0 || len(t.prov) != len(t.stations) {
		return nil, causes, errNoProvenance
	}
	probes := make([]touchProbe, 0, len(touched))
	for _, tc := range touched {
		if int(tc.Route) < 0 || int(tc.Route) >= t.numRoutes ||
			int(tc.Train) < 0 || int(tc.Train) >= t.numTrains {
			return nil, causes, errForeignID
		}
		p := touchProbe{train: tc.Train, route: tc.Route, from: tc.From}
		if !tc.Cancelled {
			p.hasArc = arcMask(t.period, tc.arcFrom(), tc.NewDep, &p.arc)
		}
		probes = append(probes, p)
	}
	var dirty []int
	for i, prov := range t.prov {
		if prov == nil {
			dirty = append(dirty, i)
			continue
		}
		cause := 0
		for pi := range probes {
			p := &probes[pi]
			if prov.usedTrain(p.train) {
				cause = 1
				break
			}
			if prov.walksTo(p.from) {
				cause = 2
				break
			}
			if p.hasArc {
				reach := prov.Reach[int(p.route)*reachWords : (int(p.route)+1)*reachWords]
				for w := 0; w < reachWords; w++ {
					if reach[w]&p.arc[w] != 0 {
						cause = 3
						break
					}
				}
				if cause != 0 {
					break
				}
			}
		}
		switch cause {
		case 1:
			causes.used++
		case 2:
			causes.seed++
		case 3:
			causes.arc++
		default:
			continue
		}
		dirty = append(dirty, i)
	}
	return dirty, causes, nil
}

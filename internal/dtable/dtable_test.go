package dtable_test

import (
	"bytes"
	"testing"

	"transit/internal/core"
	"transit/internal/dtable"
	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

func fixture(t *testing.T) (*graph.Graph, *dtable.Table, []timetable.StationID) {
	t.Helper()
	cfg, err := gen.FamilyConfig(gen.Germany, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	sg := stationgraph.Build(tt)
	marked := sg.SelectByContraction(8)
	pre, err := core.BuildDistanceTable(g, marked, core.Options{}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	return g, pre.Table, pre.Table.Stations()
}

func TestTableMatchesTimeQueries(t *testing.T) {
	g, table, ts := fixture(t)
	if len(ts) != 8 {
		t.Fatalf("transfer stations = %d, want 8", len(ts))
	}
	// D(A, B, τ) must equal a time-query from A at τ, for all pairs and
	// sampled times (both share the "no transfer at endpoints" convention).
	for _, a := range ts {
		for tau := timeutil.Ticks(0); tau < 1440; tau += 360 {
			tq, err := core.TimeQuery(g, a, tau, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range ts {
				if a == b {
					continue
				}
				if got, want := table.D(a, b, tau), tq.StationArrival(b); got != want {
					t.Fatalf("D(%d,%d,%d) = %d, time-query says %d", a, b, tau, got, want)
				}
			}
		}
	}
}

func TestTableBasics(t *testing.T) {
	_, table, ts := fixture(t)
	if table.NumTransfer() != len(ts) {
		t.Fatal("NumTransfer mismatch")
	}
	for _, s := range ts {
		if !table.IsTransfer(s) {
			t.Fatalf("station %d not marked transfer", s)
		}
	}
	// D on identical stations is the identity.
	if table.D(ts[0], ts[0], 777) != 777 {
		t.Fatal("D(s,s,τ) must be τ")
	}
	// Infinity propagates.
	if !table.D(ts[0], ts[1], timeutil.Infinity).IsInf() {
		t.Fatal("D at infinite time must be infinite")
	}
	// Profiles are reduced and evaluable.
	f, err := table.Profile(ts[0], ts[1])
	if err != nil {
		t.Fatal(err)
	}
	if !f.Reduced() {
		t.Fatal("stored profile not reduced")
	}
	if _, err := table.Profile(ts[0], timetable.StationID(9999)); err == nil {
		t.Fatal("Profile on non-transfer station accepted")
	}
	if table.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive for a non-empty table")
	}
}

func TestTablePanicsOnNonTransfer(t *testing.T) {
	g, table, ts := fixture(t)
	var nonTransfer timetable.StationID = -1
	for s := 0; s < g.TT.NumStations(); s++ {
		if !table.IsTransfer(timetable.StationID(s)) {
			nonTransfer = timetable.StationID(s)
			break
		}
	}
	if nonTransfer < 0 {
		t.Skip("all stations are transfer stations")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("D on non-transfer station must panic")
		}
	}()
	table.D(ts[0], nonTransfer, 100)
}

// stubSearcher satisfies dtable.RowSearcher for tests that never search.
type stubSearcher struct{}

func (stubSearcher) Search(timetable.StationID) (dtable.StationProfiler, error) {
	panic("stub searcher used")
}
func (stubSearcher) Close() {}

func stubFactory() (dtable.RowSearcher, error) { return stubSearcher{}, nil }

func TestBuildValidation(t *testing.T) {
	if _, err := dtable.Build(timeutil.NewPeriod(1440), 5, 0, 0, []bool{true}, 1, stubFactory); err == nil {
		t.Fatal("mismatched isTransfer length accepted")
	}
	if _, err := dtable.Build(timeutil.NewPeriod(1440), 1, 0, 0, []bool{true}, 1, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestBuildEmptySelection(t *testing.T) {
	table, err := dtable.Build(timeutil.NewPeriod(1440), 3, 0, 0, []bool{false, false, false}, 1, stubFactory)
	if err != nil {
		t.Fatal(err)
	}
	if table.NumTransfer() != 0 || table.SizeBytes() != 0 {
		t.Fatal("empty selection must give an empty table")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g, table, ts := fixture(t)
	var buf bytes.Buffer
	if err := dtable.Write(&buf, table, g.TT.NumStations()); err != nil {
		t.Fatal(err)
	}
	back, err := dtable.Read(bytes.NewReader(buf.Bytes()), g.TT.NumStations())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTransfer() != table.NumTransfer() {
		t.Fatal("transfer count changed")
	}
	for _, a := range ts {
		for _, b := range ts {
			for tau := timeutil.Ticks(0); tau < 1440; tau += 240 {
				if got, want := back.D(a, b, tau), table.D(a, b, tau); got != want {
					t.Fatalf("D(%d,%d,%d) = %d after round trip, want %d", a, b, tau, got, want)
				}
			}
		}
	}
	if back.SizeBytes() != table.SizeBytes() {
		t.Fatalf("size changed: %d vs %d", back.SizeBytes(), table.SizeBytes())
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	g, table, _ := fixture(t)
	var buf bytes.Buffer
	if err := dtable.Write(&buf, table, g.TT.NumStations()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), good[8:]...),
		"truncated":   good[:len(good)/2],
		"short magic": good[:4],
	}
	for name, data := range cases {
		if _, err := dtable.Read(bytes.NewReader(data), g.TT.NumStations()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Station-count mismatch.
	if _, err := dtable.Read(bytes.NewReader(good), g.TT.NumStations()+1); err == nil {
		t.Error("station mismatch accepted")
	}
}

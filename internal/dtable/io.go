package dtable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// Distance-table section body (little endian), the SecDistanceTable payload
// of the snapshot container (docs/SNAPSHOT_FORMAT.md):
//
//	period  int32
//	numStations int32            (of the network the table was built for)
//	numTransfer int32
//	stations    [numTransfer]int32
//	for each ordered pair (i, j), row-major:
//	  numPoints int32
//	  points    [numPoints]{dep int32, w int32}
//
// The standalone file format written by Write (SavePreprocessing) is the
// same body prefixed with the magic "TDTABLE1".

var magic = [8]byte{'T', 'D', 'T', 'A', 'B', 'L', 'E', '1'}

// WriteSection serializes the table body without magic framing — the form
// the snapshot container embeds (and checksums) as its distance-table
// section. numStations must be the station count of the network the table
// belongs to; ReadSection validates it on load.
func WriteSection(w io.Writer, t *Table, numStations int) error {
	put := func(v int32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := put(int32(t.period.Len())); err != nil {
		return err
	}
	if err := put(int32(numStations)); err != nil {
		return err
	}
	if err := put(int32(len(t.stations))); err != nil {
		return err
	}
	for _, s := range t.stations {
		if err := put(int32(s)); err != nil {
			return err
		}
	}
	for _, row := range t.prof {
		for _, f := range row {
			pts := f.Points()
			if err := put(int32(len(pts))); err != nil {
				return err
			}
			for _, p := range pts {
				if err := put(int32(p.Dep)); err != nil {
					return err
				}
				if err := put(int32(p.W)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Write serializes the table as a standalone file: the magic "TDTABLE1"
// followed by the section body. This is the SavePreprocessing format.
func Write(w io.Writer, t *Table, numStations int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := WriteSection(bw, t, numStations); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSection parses a table section body, validating it against the
// expected station count of the network it will be attached to.
func ReadSection(r io.Reader, wantStations int) (*Table, error) {
	get := func() (int32, error) {
		var v int32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	pi, err := get()
	if err != nil {
		return nil, err
	}
	if pi <= 0 {
		return nil, fmt.Errorf("dtable: non-positive period %d", pi)
	}
	period := timeutil.NewPeriod(timeutil.Ticks(pi))
	numStations, err := get()
	if err != nil {
		return nil, err
	}
	if int(numStations) != wantStations {
		return nil, fmt.Errorf("dtable: table built for %d stations, network has %d", numStations, wantStations)
	}
	numTransfer, err := get()
	if err != nil {
		return nil, err
	}
	if numTransfer < 0 || numTransfer > numStations {
		return nil, fmt.Errorf("dtable: invalid transfer count %d", numTransfer)
	}
	t := &Table{period: period, index: make([]int32, numStations)}
	for i := range t.index {
		t.index[i] = -1
	}
	t.stations = make([]timetable.StationID, numTransfer)
	for i := range t.stations {
		v, err := get()
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= numStations {
			return nil, fmt.Errorf("dtable: transfer station %d out of range", v)
		}
		if t.index[v] >= 0 {
			return nil, fmt.Errorf("dtable: duplicate transfer station %d", v)
		}
		t.stations[i] = timetable.StationID(v)
		t.index[v] = int32(i)
	}
	t.prof = make([][]*ttf.Function, numTransfer)
	for i := range t.prof {
		row := make([]*ttf.Function, numTransfer)
		for j := range row {
			n, err := get()
			if err != nil {
				return nil, err
			}
			if n < 0 || n > 1<<24 {
				return nil, fmt.Errorf("dtable: implausible point count %d", n)
			}
			pts := make([]ttf.Point, n)
			for p := range pts {
				dep, err := get()
				if err != nil {
					return nil, err
				}
				w, err := get()
				if err != nil {
					return nil, err
				}
				pts[p] = ttf.Point{Dep: timeutil.Ticks(dep), W: timeutil.Ticks(w)}
			}
			f, err := ttf.New(period, pts)
			if err != nil {
				return nil, fmt.Errorf("dtable: profile (%d,%d): %w", i, j, err)
			}
			f.Reduce() // stored reduced; re-reducing is a cheap no-op pass
			row[j] = f
		}
		t.prof[i] = row
	}
	return t, nil
}

// Read parses a standalone table file (magic + section body), validating it
// against the expected station count. This is the LoadPreprocessing format.
func Read(r io.Reader, wantStations int) (*Table, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dtable: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dtable: bad magic %q", m)
	}
	return ReadSection(br, wantStations)
}

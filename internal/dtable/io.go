package dtable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// ErrProvenanceIncompatible marks a structurally valid provenance section
// written with incompatible parameters (e.g. a different ReachBuckets);
// readers skip it — the table still serves, only repair falls back.
var ErrProvenanceIncompatible = errors.New("dtable: provenance incompatible with this build")

// Distance-table section body (little endian), the SecDistanceTable payload
// of the snapshot container (docs/SNAPSHOT_FORMAT.md):
//
//	period  int32
//	numStations int32            (of the network the table was built for)
//	numTransfer int32
//	stations    [numTransfer]int32
//	for each ordered pair (i, j), row-major:
//	  numPoints int32
//	  points    [numPoints]{dep int32, w int32}
//
// The standalone file format written by Write (SavePreprocessing) is the
// same body prefixed with the magic "TDTABLE1".

var magic = [8]byte{'T', 'D', 'T', 'A', 'B', 'L', 'E', '1'}

// WriteSection serializes the table body without magic framing — the form
// the snapshot container embeds (and checksums) as its distance-table
// section. numStations must be the station count of the network the table
// belongs to; ReadSection validates it on load.
func WriteSection(w io.Writer, t *Table, numStations int) error {
	put := func(v int32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := put(int32(t.period.Len())); err != nil {
		return err
	}
	if err := put(int32(numStations)); err != nil {
		return err
	}
	if err := put(int32(len(t.stations))); err != nil {
		return err
	}
	for _, s := range t.stations {
		if err := put(int32(s)); err != nil {
			return err
		}
	}
	for _, row := range t.prof {
		for _, f := range row {
			pts := f.Points()
			if err := put(int32(len(pts))); err != nil {
				return err
			}
			for _, p := range pts {
				if err := put(int32(p.Dep)); err != nil {
					return err
				}
				if err := put(int32(p.W)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Write serializes the table as a standalone file: the magic "TDTABLE1"
// followed by the section body. This is the SavePreprocessing format.
func Write(w io.Writer, t *Table, numStations int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := WriteSection(bw, t, numStations); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSection parses a table section body, validating it against the
// expected station count of the network it will be attached to.
func ReadSection(r io.Reader, wantStations int) (*Table, error) {
	get := func() (int32, error) {
		var v int32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	pi, err := get()
	if err != nil {
		return nil, err
	}
	if pi <= 0 {
		return nil, fmt.Errorf("dtable: non-positive period %d", pi)
	}
	period := timeutil.NewPeriod(timeutil.Ticks(pi))
	numStations, err := get()
	if err != nil {
		return nil, err
	}
	if int(numStations) != wantStations {
		return nil, fmt.Errorf("dtable: table built for %d stations, network has %d", numStations, wantStations)
	}
	numTransfer, err := get()
	if err != nil {
		return nil, err
	}
	if numTransfer < 0 || numTransfer > numStations {
		return nil, fmt.Errorf("dtable: invalid transfer count %d", numTransfer)
	}
	t := &Table{period: period, index: make([]int32, numStations)}
	for i := range t.index {
		t.index[i] = -1
	}
	t.stations = make([]timetable.StationID, numTransfer)
	for i := range t.stations {
		v, err := get()
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= numStations {
			return nil, fmt.Errorf("dtable: transfer station %d out of range", v)
		}
		if t.index[v] >= 0 {
			return nil, fmt.Errorf("dtable: duplicate transfer station %d", v)
		}
		t.stations[i] = timetable.StationID(v)
		t.index[v] = int32(i)
	}
	t.prof = make([][]*ttf.Function, numTransfer)
	for i := range t.prof {
		row := make([]*ttf.Function, numTransfer)
		for j := range row {
			n, err := get()
			if err != nil {
				return nil, err
			}
			if n < 0 || n > 1<<24 {
				return nil, fmt.Errorf("dtable: implausible point count %d", n)
			}
			pts := make([]ttf.Point, n)
			for p := range pts {
				dep, err := get()
				if err != nil {
					return nil, err
				}
				w, err := get()
				if err != nil {
					return nil, err
				}
				pts[p] = ttf.Point{Dep: timeutil.Ticks(dep), W: timeutil.Ticks(w)}
			}
			f, err := ttf.New(period, pts)
			if err != nil {
				return nil, fmt.Errorf("dtable: profile (%d,%d): %w", i, j, err)
			}
			f.Reduce() // stored reduced; re-reducing is a cheap no-op pass
			row[j] = f
		}
		t.prof[i] = row
	}
	return t, nil
}

// Provenance section body (little endian), the SecTableProvenance payload
// of the snapshot container — optional, only written for repair-base tables
// (provenance present, not derived):
//
//	numTransfer int32            (must match the table section)
//	numTrains   int32            (of the network the table was built for)
//	numRoutes   int32            (of the network the table was built for)
//	buckets     int32            (ReachBuckets of the writing build)
//	for each row:
//	  walkLen int32
//	  walk    [walkLen]int32
//	  used    [ceil(numTrains/64)]uint64
//	  reach   [numRoutes * ReachBuckets/64]uint64

// WriteProvenanceSection serializes the table's repair provenance. The
// table must be a repair base (HasProvenance and not Derived).
func WriteProvenanceSection(w io.Writer, t *Table) error {
	if !t.HasProvenance() {
		return fmt.Errorf("dtable: table has no serializable provenance")
	}
	put := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := put(int32(len(t.stations))); err != nil {
		return err
	}
	if err := put(int32(t.numTrains)); err != nil {
		return err
	}
	if err := put(int32(t.numRoutes)); err != nil {
		return err
	}
	if err := put(int32(ReachBuckets)); err != nil {
		return err
	}
	for _, p := range t.prov {
		if err := put(int32(len(p.Walk))); err != nil {
			return err
		}
		for _, s := range p.Walk {
			if err := put(int32(s)); err != nil {
				return err
			}
		}
		if err := put(p.Used); err != nil {
			return err
		}
		if err := put(p.Reach); err != nil {
			return err
		}
	}
	return nil
}

// ReadProvenanceSection parses a provenance section and attaches it to a
// table read from the same snapshot, validating shape against the table and
// the network's station and route counts. A bucket-count mismatch (written
// by a build with a different ReachBuckets) rejects the section; callers
// treat that like an absent section and fall back to full rebuilds.
func ReadProvenanceSection(r io.Reader, t *Table, numStations, numTrains, numRoutes int) error {
	get := func() (int32, error) {
		var v int32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	nt, err := get()
	if err != nil {
		return err
	}
	if int(nt) != len(t.stations) {
		return fmt.Errorf("dtable: provenance for %d rows, table has %d", nt, len(t.stations))
	}
	nz, err := get()
	if err != nil {
		return err
	}
	if int(nz) != numTrains {
		return fmt.Errorf("dtable: provenance built for %d trains, network has %d", nz, numTrains)
	}
	nr, err := get()
	if err != nil {
		return err
	}
	if int(nr) != numRoutes {
		return fmt.Errorf("dtable: provenance built for %d routes, network has %d", nr, numRoutes)
	}
	buckets, err := get()
	if err != nil {
		return err
	}
	if buckets != ReachBuckets {
		return fmt.Errorf("%w: provenance uses %d reach buckets, this build uses %d",
			ErrProvenanceIncompatible, buckets, ReachBuckets)
	}
	usedWords := (numTrains + 63) / 64
	prov := make([]*RowProvenance, len(t.stations))
	for i := range prov {
		wl, err := get()
		if err != nil {
			return err
		}
		if wl < 0 || int(wl) > numStations {
			return fmt.Errorf("dtable: provenance row %d has implausible walk length %d", i, wl)
		}
		p := &RowProvenance{
			Used:  make([]uint64, usedWords),
			Reach: make([]uint64, numRoutes*reachWords),
			Walk:  make([]timetable.StationID, wl),
		}
		for j := range p.Walk {
			v, err := get()
			if err != nil {
				return err
			}
			if v < 0 || int(v) >= numStations {
				return fmt.Errorf("dtable: provenance row %d walks to unknown station %d", i, v)
			}
			if j > 0 && timetable.StationID(v) <= p.Walk[j-1] {
				// walksTo binary-searches this list; unsorted data would
				// silently miss seed hits and corrupt the dirty test.
				return fmt.Errorf("dtable: provenance row %d walk list not strictly ascending", i)
			}
			p.Walk[j] = timetable.StationID(v)
		}
		if err := binary.Read(r, binary.LittleEndian, p.Used); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, p.Reach); err != nil {
			return err
		}
		prov[i] = p
	}
	t.prov = prov
	t.numTrains = numTrains
	t.numRoutes = numRoutes
	return nil
}

// Read parses a standalone table file (magic + section body), validating it
// against the expected station count. This is the LoadPreprocessing format.
func Read(r io.Reader, wantStations int) (*Table, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dtable: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dtable: bad magic %q", m)
	}
	return ReadSection(br, wantStations)
}

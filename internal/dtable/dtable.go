// Package dtable implements the distance table D of Section 4: for a set of
// transfer stations S_trans, the full profile distance D(S, T, ·) between
// every ordered pair, precomputed by running the parallel one-to-all
// profile search from each transfer station. D(S, T, τ) is the arrival time
// at T when departing S at τ, without any transfer times at S and T.
package dtable

import (
	"fmt"
	"sync"

	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// profileSearcher abstracts the one-to-all algorithm so dtable does not
// import core (which imports dtable for query pruning). The core package
// provides the implementation at call sites via BuildFunc.
type profileSearcher func(source timetable.StationID) (StationProfiler, error)

// StationProfiler is the slice of core.ProfileResult that dtable needs.
type StationProfiler interface {
	StationProfile(t timetable.StationID) (*ttf.Function, error)
}

// Table is the precomputed distance table over the transfer stations.
// Immutable after Build; safe for concurrent readers.
type Table struct {
	period timeutil.Period
	// index maps a station to its dense transfer index, or -1.
	index []int32
	// stations lists the transfer stations in increasing ID order.
	stations []timetable.StationID
	// prof[i][j] is the reduced profile from stations[i] to stations[j].
	prof [][]*ttf.Function
}

// Build precomputes the table for the marked transfer stations by invoking
// search (a one-to-all profile search) from each of them, workers of
// different source stations running concurrently up to parallelism.
func Build(period timeutil.Period, numStations int, isTransfer []bool, parallelism int, search profileSearcher) (*Table, error) {
	if len(isTransfer) != numStations {
		return nil, fmt.Errorf("dtable: isTransfer has %d entries for %d stations", len(isTransfer), numStations)
	}
	t := &Table{period: period, index: make([]int32, numStations)}
	for s := 0; s < numStations; s++ {
		t.index[s] = -1
		if isTransfer[s] {
			t.index[s] = int32(len(t.stations))
			t.stations = append(t.stations, timetable.StationID(s))
		}
	}
	n := len(t.stations)
	t.prof = make([][]*ttf.Function, n)
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := search(t.stations[i])
			if err != nil {
				errs[i] = err
				return
			}
			row := make([]*ttf.Function, n)
			for j := 0; j < n; j++ {
				f, err := res.StationProfile(t.stations[j])
				if err != nil {
					errs[i] = err
					return
				}
				row[j] = f
			}
			t.prof[i] = row
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NumTransfer returns |S_trans|.
func (t *Table) NumTransfer() int { return len(t.stations) }

// Stations returns the transfer stations in increasing ID order (shared
// slice; do not modify).
func (t *Table) Stations() []timetable.StationID { return t.stations }

// IsTransfer reports whether s is a transfer station. Unknown station IDs
// are simply not transfer stations.
func (t *Table) IsTransfer(s timetable.StationID) bool {
	return int(s) >= 0 && int(s) < len(t.index) && t.index[s] >= 0
}

// Profile returns the reduced profile function from one transfer station to
// another; both must be transfer stations.
func (t *Table) Profile(from, to timetable.StationID) (*ttf.Function, error) {
	if !t.IsTransfer(from) || !t.IsTransfer(to) {
		return nil, fmt.Errorf("dtable: %d→%d not a transfer-station pair", from, to)
	}
	return t.prof[t.index[from]][t.index[to]], nil
}

// D returns the arrival time at `to` when departing `from` at the absolute
// time at: the paper's D(S, T, τ). From == to answers `at` (you are already
// there). Both stations must be transfer stations; this is a hot inner-loop
// call, so violations panic rather than allocate errors.
func (t *Table) D(from, to timetable.StationID, at timeutil.Ticks) timeutil.Ticks {
	if at.IsInf() {
		return timeutil.Infinity
	}
	fi, ti := t.index[from], t.index[to]
	if fi < 0 || ti < 0 {
		panic(fmt.Sprintf("dtable: D(%d,%d) on non-transfer station", from, to))
	}
	if fi == ti {
		return at
	}
	return t.prof[fi][ti].EvalArrival(at)
}

// SizeBytes estimates the memory footprint of the stored profiles: eight
// bytes per connection point (the figure the paper reports in MiB).
func (t *Table) SizeBytes() int64 {
	var pts int64
	for _, row := range t.prof {
		for _, f := range row {
			if f != nil {
				pts += int64(f.NumPoints())
			}
		}
	}
	return pts * 8
}

// Package dtable implements the distance table D of Section 4: for a set of
// transfer stations S_trans, the full profile distance D(S, T, ·) between
// every ordered pair, precomputed by running the parallel one-to-all
// profile search from each transfer station. D(S, T, τ) is the arrival time
// at T when departing S at τ, without any transfer times at S and T.
//
// Beyond the paper, the package supports *incremental repair* (Repair): a
// table built with per-row provenance (RowProvenance) can absorb a dynamic
// delay/cancellation batch by recomputing only the rows the batch can
// possibly change, instead of re-running the one-to-all search from every
// transfer station. See docs/PREPROCESSING.md for the full model.
package dtable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// StationProfiler is the slice of a one-to-all profile result that dtable
// needs to fill one row. The core package provides the implementation.
type StationProfiler interface {
	StationProfile(t timetable.StationID) (*ttf.Function, error)
}

// RowProvenancer is optionally implemented by a StationProfiler whose
// search recorded enough state (parent links) to summarize the row's
// provenance. Build records provenance exactly when the searcher's results
// implement it.
type RowProvenancer interface {
	RowProvenance(targets []timetable.StationID) (*RowProvenance, error)
}

// RowSearcher runs one-to-all profile searches for one worker goroutine.
// Search results may borrow the searcher's memory: they are consumed (row
// profiles and provenance extracted) before the next Search call, and Close
// releases the searcher's resources (e.g. returns a pooled workspace).
type RowSearcher interface {
	Search(source timetable.StationID) (StationProfiler, error)
	Close()
}

// WindowSearcher is optionally implemented by searchers that support the
// interval profile search (departures restricted to [from, to]): Repair
// uses it to recompute a dirty row over only the departure window a batch
// can affect, at a fraction of the full-period cost.
type WindowSearcher interface {
	SearchWindow(source timetable.StationID, from, to timeutil.Ticks) (StationProfiler, error)
}

// SearchFactory creates one RowSearcher per worker; dtable does not import
// core (which imports dtable for query pruning), so the core package
// provides factories at call sites.
type SearchFactory func() (RowSearcher, error)

// Table is the precomputed distance table over the transfer stations.
// Immutable after Build/Repair; safe for concurrent readers.
type Table struct {
	period timeutil.Period
	// index maps a station to its dense transfer index, or -1.
	index []int32
	// stations lists the transfer stations in increasing ID order.
	stations []timetable.StationID
	// prof[i][j] is the reduced profile from stations[i] to stations[j].
	prof [][]*ttf.Function

	// numTrains/numRoutes are the train and route counts of the network the
	// table was built for (0 when the table carries no provenance).
	numTrains int
	numRoutes int
	// prov[i] is the repair provenance of row i; nil entries (or a nil
	// slice) force full rebuilds.
	prov []*RowProvenance
	// derived marks a table produced by Repair: its kept rows' Reach
	// bitmaps describe the pre-patch network, so it cannot be the base of a
	// further Repair (see RowProvenance).
	derived bool
}

// ErrRepairFallback is the class of errors Repair returns when the base
// table cannot support an incremental repair (no provenance, derived table,
// foreign routes, or a dirty fraction above the threshold). Callers match
// with errors.Is and fall back to a full Build.
var ErrRepairFallback = errors.New("dtable: repair not applicable")

var (
	errDerived      = fmt.Errorf("%w: base table is itself repaired (stale provenance)", ErrRepairFallback)
	errNoProvenance = fmt.Errorf("%w: base table carries no provenance", ErrRepairFallback)
	errForeignID    = fmt.Errorf("%w: batch references a train or route the table was not built for", ErrRepairFallback)
)

// runRows runs the searcher pool over the given row indexes, applying fn to
// each. Work is distributed over a chunked index channel so a slow row (a
// hub station with a huge conn(S)) does not serialize the tail; each worker
// owns one RowSearcher for its whole lifetime, so search workspaces are
// reused across rows instead of allocated per row.
func runRows(rows []int, parallelism int, factory SearchFactory, fn func(i int, s RowSearcher) error) error {
	if len(rows) == 0 {
		return nil
	}
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(rows) {
		parallelism = len(rows)
	}
	chunk := len(rows) / (parallelism * 8)
	if chunk < 1 {
		chunk = 1
	}
	chunks := make(chan []int)
	go func() {
		for lo := 0; lo < len(rows); lo += chunk {
			hi := lo + chunk
			if hi > len(rows) {
				hi = len(rows)
			}
			chunks <- rows[lo:hi]
		}
		close(chunks)
	}()
	errs := make([]error, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := factory()
			if err != nil {
				errs[w] = err
				// Drain so the feeding goroutine never blocks forever.
				for range chunks {
				}
				return
			}
			defer s.Close()
			for ch := range chunks {
				for _, i := range ch {
					if err := fn(i, s); err != nil {
						errs[w] = err
						for range chunks {
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// buildRow fills row i from one search.
func (t *Table) buildRow(i int, s RowSearcher) error {
	res, err := s.Search(t.stations[i])
	if err != nil {
		return err
	}
	n := len(t.stations)
	row := make([]*ttf.Function, n)
	for j := 0; j < n; j++ {
		f, err := res.StationProfile(t.stations[j])
		if err != nil {
			return err
		}
		row[j] = f
	}
	t.prof[i] = row
	if t.prov != nil {
		if rp, ok := res.(RowProvenancer); ok {
			p, err := rp.RowProvenance(t.stations)
			if err != nil {
				return err
			}
			t.prov[i] = p
		}
	}
	return nil
}

// Build precomputes the table for the marked transfer stations by running a
// one-to-all profile search from each of them, with up to parallelism
// worker goroutines pulling rows from a shared chunked queue. When the
// factory's searchers support provenance extraction (RowProvenancer) and
// numRoutes > 0, the table records per-row repair provenance and can later
// absorb delay batches through Repair.
func Build(period timeutil.Period, numStations, numTrains, numRoutes int, isTransfer []bool, parallelism int, factory SearchFactory) (*Table, error) {
	if len(isTransfer) != numStations {
		return nil, fmt.Errorf("dtable: isTransfer has %d entries for %d stations", len(isTransfer), numStations)
	}
	if factory == nil {
		return nil, fmt.Errorf("dtable: nil search factory")
	}
	t := &Table{period: period, index: make([]int32, numStations), numTrains: numTrains, numRoutes: numRoutes}
	for s := 0; s < numStations; s++ {
		t.index[s] = -1
		if isTransfer[s] {
			t.index[s] = int32(len(t.stations))
			t.stations = append(t.stations, timetable.StationID(s))
		}
	}
	n := len(t.stations)
	t.prof = make([][]*ttf.Function, n)
	if numTrains > 0 && numRoutes > 0 {
		t.prov = make([]*RowProvenance, n)
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	if err := runRows(rows, parallelism, factory, t.buildRow); err != nil {
		return nil, err
	}
	if t.prov != nil {
		// Provenance is all-or-nothing: a searcher that cannot extract it
		// leaves nil entries, and a partially covered table must not answer
		// dirty-row questions.
		for _, p := range t.prov {
			if p == nil {
				t.prov = nil
				t.numTrains, t.numRoutes = 0, 0
				break
			}
		}
	}
	return t, nil
}

// RepairStats reports the work of one Repair call.
type RepairStats struct {
	// Rows is the row count of the table, RowsRepaired how many of them the
	// batch dirtied (and Repair recomputed).
	Rows         int
	RowsRepaired int
	// DirtyByUsed/DirtyBySeed/DirtyByArc break RowsRepaired down by the
	// first dirty rule that fired (used train / touched seed station /
	// improvement-arc hit).
	DirtyByUsed int
	DirtyBySeed int
	DirtyByArc  int
	// RowsWindowed counts the repaired rows recomputed with the interval
	// profile search over the batch's departure windows (the rest re-ran
	// the full-period search).
	RowsWindowed int
	Elapsed      time.Duration
}

// maxWindowFrac is the fraction of the period above which a windowed row
// recompute stops paying off and Repair re-runs the full-period search.
const maxWindowFrac = 0.7

// rowMaxSpan bounds, over every entry of a row and every departure time τ,
// the time a departure waits plus travels: for τ in the gap before point p,
// the value is at most (gap + p.W). The bound caps how far *before* a
// touched departure d a journey can start and still reach d, i.e. the
// look-back of the repair window. Rows with sparse entries (a single point
// wraps a whole period) return bounds that exceed the window cap, falling
// back to the full-period search.
func rowMaxSpan(period timeutil.Period, prof []*ttf.Function) timeutil.Ticks {
	var span timeutil.Ticks
	pi := period.Len()
	for _, f := range prof {
		pts := f.Points()
		for j, p := range pts {
			var gap timeutil.Ticks
			if j == 0 {
				gap = p.Dep + pi - pts[len(pts)-1].Dep // wait across the period wrap
			} else {
				gap = p.Dep - pts[j-1].Dep
			}
			if s := gap + p.W; s > span {
				span = s
			}
		}
	}
	return span
}

// winInterval is one linear piece of the (possibly midnight-wrapping)
// repair window, both endpoints inclusive and within [0, π).
type winInterval struct{ lo, hi timeutil.Ticks }

// windowIntervals splits the circular window [lo, hi] (lo possibly
// negative, meaning it wraps below midnight) into at most two linear
// intervals. The caller guarantees hi − lo < π, so the pieces never
// overlap.
func windowIntervals(period timeutil.Period, lo, hi timeutil.Ticks) []winInterval {
	if lo >= 0 {
		return []winInterval{{lo, hi}}
	}
	return []winInterval{{0, hi}, {lo + period.Len(), period.Len() - 1}}
}

// maxWindowIntervals caps how many disjoint window pieces a single row
// repair searches; batches touching more separate disruptions than this
// re-run the full-period search.
const maxWindowIntervals = 8

// repairWindow computes the departure windows a row must recompute for a
// batch whose touched departures are deps (sorted ascending, within
// [0, π)): the circular union over deps d of [d − span, d], clustered so
// that one disruption (a delayed train, a windowed route delay) yields one
// interval. Returns ok=false when the union exceeds maxWin ticks or
// fragments into more than maxWindowIntervals pieces — then a full-period
// recompute is the better deal.
func repairWindow(period timeutil.Period, deps []timeutil.Ticks, span, maxWin timeutil.Ticks) ([]winInterval, bool) {
	if len(deps) == 0 {
		return nil, false
	}
	type cluster struct{ lo, hi timeutil.Ticks }
	var cls []cluster
	start, last := deps[0], deps[0]
	for _, d := range deps[1:] {
		if d-last <= span {
			last = d
			continue
		}
		cls = append(cls, cluster{start - span, last})
		start, last = d, d
	}
	cls = append(cls, cluster{start - span, last})
	// Circular merge: the first cluster's look-back may wrap past midnight
	// into (or beyond) the last cluster.
	if len(cls) >= 2 && cls[0].lo < 0 && cls[0].lo+period.Len() <= cls[len(cls)-1].hi {
		cls[0].lo = cls[len(cls)-1].lo - period.Len()
		cls = cls[:len(cls)-1]
	}
	var total timeutil.Ticks
	for _, c := range cls {
		total += c.hi - c.lo
	}
	if total > maxWin {
		return nil, false
	}
	var ivs []winInterval
	for _, c := range cls {
		ivs = append(ivs, windowIntervals(period, c.lo, c.hi)...)
	}
	if len(ivs) > maxWindowIntervals {
		return nil, false
	}
	return ivs, true
}

// spliceProfile replaces the window intervals of an entry with the points
// of the per-interval window-search profiles: old points outside every
// interval survive, the new points cover the window, and the circular
// reduction restores the canonical minimal point set (identical to what a
// full rebuild produces, since both are the unique reduced representation
// of the same profile function).
func spliceProfile(period timeutil.Period, oldF *ttf.Function, winFs []*ttf.Function, ivs []winInterval) (*ttf.Function, error) {
	oldPts := oldF.Points()
	n := len(oldPts)
	for _, wf := range winFs {
		n += wf.NumPoints()
	}
	pts := make([]ttf.Point, 0, n)
	for _, p := range oldPts {
		inWin := false
		for _, iv := range ivs {
			if p.Dep >= iv.lo && p.Dep <= iv.hi {
				inWin = true
				break
			}
		}
		if !inWin {
			pts = append(pts, p)
		}
	}
	for _, wf := range winFs {
		pts = append(pts, wf.Points()...)
	}
	f, err := ttf.New(period, pts)
	if err != nil {
		return nil, err
	}
	f.Reduce()
	return f, nil
}

// Repair returns a new table equivalent to rebuilding old's transfer set
// from scratch against the patched network the factory searches, but
// recomputing only the rows the touched-connection batch can change. The
// dirty test is sound (see RowProvenance): kept rows are proven
// entry-identical to what a full rebuild would produce.
//
// touched must describe every connection whose times differ between the
// network old was built for and the factory's network (first OldDep, last
// NewDep per connection; transit.MergeTouched composes multi-epoch
// batches). maxDirtyFrac caps the repair's *estimated cost* as a fraction
// of a full rebuild — each dirty row counts its window width over the
// period (1.0 when it needs the full-period search) — e.g. 0.3: above it,
// or when old cannot answer dirty-row questions at all, Repair returns an
// ErrRepairFallback-wrapped error and the caller runs a full Build, which
// is then both the cheaper and the provenance-refreshing choice.
//
// The repaired table serves queries exactly like a built one but is marked
// derived: kept rows' Reach provenance describes the pre-patch network, so
// a further Repair must start from the last fully built base (callers keep
// that base and accumulate touches against it).
func Repair(old *Table, touched []TouchedConn, maxDirtyFrac float64, parallelism int, factory SearchFactory) (*Table, *RepairStats, error) {
	start := time.Now()
	if factory == nil {
		return nil, nil, fmt.Errorf("dtable: nil search factory")
	}
	dirty, causes, err := old.dirtyRows(touched)
	if err != nil {
		return nil, nil, err
	}
	n := len(old.stations)
	st := &RepairStats{
		Rows: n, RowsRepaired: len(dirty),
		DirtyByUsed: causes.used, DirtyBySeed: causes.seed, DirtyByArc: causes.arc,
	}

	// Departure windows of the batch: a touched occurrence (old or new
	// departure) can only change profile values for departures τ with the
	// occurrence inside [τ, τ + w_old(τ)], so per row the recompute may be
	// restricted to the clustered union of [d − rowMaxSpan, d] over touched
	// departures d, searched with the interval profile search and spliced
	// into the old entries. Rows whose windows would cover most of the
	// period, fragment too much, or whose seeds extend over footpaths
	// (effective departures then live outside plain [0, π) time) re-run the
	// full-period search instead.
	depSet := make(map[timeutil.Ticks]struct{}, 2*len(touched))
	for _, tc := range touched {
		depSet[tc.OldDep] = struct{}{}
		if !tc.Cancelled {
			depSet[tc.NewDep] = struct{}{}
		}
	}
	deps := make([]timeutil.Ticks, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
	maxWin := timeutil.Ticks(maxWindowFrac * float64(old.period.Len()))
	winOf := make(map[int][]winInterval, len(dirty))
	var cost float64 // estimated repair cost, in full-period row searches
	for _, i := range dirty {
		if len(old.prov[i].Walk) != 1 {
			cost++
			continue
		}
		ivs, ok := repairWindow(old.period, deps, rowMaxSpan(old.period, old.prof[i]), maxWin)
		if !ok {
			cost++
			continue
		}
		winOf[i] = ivs
		var width timeutil.Ticks
		for _, iv := range ivs {
			width += iv.hi - iv.lo
		}
		cost += float64(width) / float64(old.period.Len())
	}
	if n > 0 && cost > maxDirtyFrac*float64(n) {
		return nil, nil, fmt.Errorf("%w: %d of %d rows dirty, estimated repair cost %.1f of %d row rebuilds (threshold %.0f%%)",
			ErrRepairFallback, len(dirty), n, cost, n, maxDirtyFrac*100)
	}
	nt := &Table{
		period:    old.period,
		index:     old.index,
		stations:  old.stations,
		prof:      make([][]*ttf.Function, n),
		numTrains: old.numTrains,
		numRoutes: old.numRoutes,
		prov:      make([]*RowProvenance, n),
		derived:   true,
	}
	copy(nt.prof, old.prof) // kept rows share the (immutable) profile slices
	copy(nt.prov, old.prov)
	// Repaired rows get nil provenance: the table is derived either way, so
	// repair searches skip the parent tracking and provenance sweeps.
	for _, i := range dirty {
		nt.prov[i] = nil
	}

	windowed := 0
	var wmu sync.Mutex
	err = runRows(dirty, parallelism, factory, func(i int, s RowSearcher) error {
		ws, ok := s.(WindowSearcher)
		ivs := winOf[i]
		if !ok || ivs == nil {
			return nt.buildRow(i, s)
		}
		winFs := make([][]*ttf.Function, len(ivs))
		for v, iv := range ivs {
			res, err := ws.SearchWindow(nt.stations[i], iv.lo, iv.hi)
			if err != nil {
				return err
			}
			winFs[v] = make([]*ttf.Function, n)
			for j := 0; j < n; j++ {
				if winFs[v][j], err = res.StationProfile(nt.stations[j]); err != nil {
					return err
				}
			}
		}
		row := make([]*ttf.Function, n)
		fs := make([]*ttf.Function, len(ivs))
		for j := 0; j < n; j++ {
			for v := range winFs {
				fs[v] = winFs[v][j]
			}
			var err error
			if row[j], err = spliceProfile(nt.period, old.prof[i][j], fs, ivs); err != nil {
				return err
			}
		}
		nt.prof[i] = row
		wmu.Lock()
		windowed++
		wmu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	st.RowsWindowed = windowed
	st.Elapsed = time.Since(start)
	return nt, st, nil
}

// NumTransfer returns |S_trans|.
func (t *Table) NumTransfer() int { return len(t.stations) }

// Stations returns the transfer stations in increasing ID order (shared
// slice; do not modify).
func (t *Table) Stations() []timetable.StationID { return t.stations }

// HasProvenance reports whether every row carries valid repair provenance
// — true only for repair-base tables. Derived tables retain the kept rows'
// provenance internally but report false: repaired rows have none and the
// kept rows' Reach bitmaps describe the pre-patch schedule.
func (t *Table) HasProvenance() bool { return t.prov != nil && !t.derived }

// Derived reports whether this table was produced by Repair (and therefore
// cannot be the base of a further Repair).
func (t *Table) Derived() bool { return t.derived }

// NumRoutes returns the route count the provenance was recorded for (0
// without provenance).
func (t *Table) NumRoutes() int { return t.numRoutes }

// NumTrains returns the train count the provenance was recorded for (0
// without provenance).
func (t *Table) NumTrains() int { return t.numTrains }

// IsTransfer reports whether s is a transfer station. Unknown station IDs
// are simply not transfer stations.
func (t *Table) IsTransfer(s timetable.StationID) bool {
	return int(s) >= 0 && int(s) < len(t.index) && t.index[s] >= 0
}

// Profile returns the reduced profile function from one transfer station to
// another; both must be transfer stations.
func (t *Table) Profile(from, to timetable.StationID) (*ttf.Function, error) {
	if !t.IsTransfer(from) || !t.IsTransfer(to) {
		return nil, fmt.Errorf("dtable: %d→%d not a transfer-station pair", from, to)
	}
	return t.prof[t.index[from]][t.index[to]], nil
}

// D returns the arrival time at `to` when departing `from` at the absolute
// time at: the paper's D(S, T, τ). From == to answers `at` (you are already
// there). Both stations must be transfer stations; this is a hot inner-loop
// call, so violations panic rather than allocate errors.
func (t *Table) D(from, to timetable.StationID, at timeutil.Ticks) timeutil.Ticks {
	if at.IsInf() {
		return timeutil.Infinity
	}
	fi, ti := t.index[from], t.index[to]
	if fi < 0 || ti < 0 {
		panic(fmt.Sprintf("dtable: D(%d,%d) on non-transfer station", from, to))
	}
	if fi == ti {
		return at
	}
	return t.prof[fi][ti].EvalArrival(at)
}

// ProvenanceBytes estimates the memory footprint of the per-row repair
// provenance (zero for tables without it) — reported separately from
// SizeBytes so the paper's table-size figure stays comparable.
func (t *Table) ProvenanceBytes() int64 {
	var b int64
	for _, p := range t.prov {
		if p == nil {
			continue
		}
		b += int64(len(p.Used))*8 + int64(len(p.Reach))*8 + int64(len(p.Walk))*4
	}
	return b
}

// SizeBytes estimates the memory footprint of the stored profiles: eight
// bytes per connection point (the figure the paper reports in MiB).
// Repair provenance is accounted separately by ProvenanceBytes.
func (t *Table) SizeBytes() int64 {
	var pts int64
	for _, row := range t.prof {
		for _, f := range row {
			if f != nil {
				pts += int64(f.NumPoints())
			}
		}
	}
	return pts * 8
}

package dtable

// White-box tests of the repair-window and improvement-arc helpers (the
// package-external tests cover Build/Repair end to end through core).

import (
	"testing"

	"transit/internal/timeutil"
	"transit/internal/ttf"
)

func buckets(mask [reachWords]uint64) []int {
	var out []int
	for b := 0; b < ReachBuckets; b++ {
		if mask[b/64]&(1<<(uint(b)%64)) != 0 {
			out = append(out, b)
		}
	}
	return out
}

func TestArcMask(t *testing.T) {
	period := timeutil.NewPeriod(1440)
	var m [reachWords]uint64

	if arcMask(period, 100, 100, &m) {
		t.Fatal("empty arc must clear the mask")
	}
	// Forward arc within one period: both endpoint buckets included.
	if !arcMask(period, 100, 112, &m) {
		t.Fatal("non-empty arc reported empty")
	}
	b0, b1 := bucketOf(period, 100), bucketOf(period, 112)
	got := buckets(m)
	if len(got) != b1-b0+1 || got[0] != b0 || got[len(got)-1] != b1 {
		t.Fatalf("arc buckets = %v, want contiguous [%d..%d]", got, b0, b1)
	}
	// Wrapping arc (e.g. a delay crossing midnight): crosses bucket 0.
	if !arcMask(period, 1435, 5, &m) {
		t.Fatal("wrapping arc reported empty")
	}
	got = buckets(m)
	if len(got) != 2 || got[0] != 0 || got[1] != ReachBuckets-1 {
		t.Fatalf("wrapping arc buckets = %v, want [0 %d]", got, ReachBuckets-1)
	}
}

func TestRepairWindowClusters(t *testing.T) {
	period := timeutil.NewPeriod(1440)
	// Two disruptions far apart cluster into two windows with look-back.
	ivs, ok := repairWindow(period, []timeutil.Ticks{500, 510, 900}, 100, 1000)
	if !ok || len(ivs) != 2 {
		t.Fatalf("ivs = %v ok=%v, want two clusters", ivs, ok)
	}
	if ivs[0] != (winInterval{400, 510}) || ivs[1] != (winInterval{800, 900}) {
		t.Fatalf("ivs = %v", ivs)
	}
	// A cluster whose look-back crosses midnight splits into two pieces.
	ivs, ok = repairWindow(period, []timeutil.Ticks{30}, 100, 1000)
	if !ok || len(ivs) != 2 || ivs[0] != (winInterval{0, 30}) || ivs[1] != (winInterval{1370, 1439}) {
		t.Fatalf("wrapped ivs = %v ok=%v", ivs, ok)
	}
	// ... and merges circularly with a late cluster it overlaps.
	ivs, ok = repairWindow(period, []timeutil.Ticks{30, 1400}, 100, 1000)
	if !ok || len(ivs) != 2 || ivs[0] != (winInterval{0, 30}) || ivs[1] != (winInterval{1300, 1439}) {
		t.Fatalf("circularly merged ivs = %v ok=%v", ivs, ok)
	}
	// Exceeding the width budget falls back.
	if _, ok := repairWindow(period, []timeutil.Ticks{100, 500, 900, 1300}, 200, 700); ok {
		t.Fatal("over-budget window accepted")
	}
	if _, ok := repairWindow(period, nil, 100, 1000); ok {
		t.Fatal("empty dep set accepted")
	}
}

func TestRowMaxSpan(t *testing.T) {
	period := timeutil.NewPeriod(1440)
	f := ttf.MustNew(period, []ttf.Point{{Dep: 100, W: 30}, {Dep: 700, W: 50}})
	// Gap before 700 is 600, plus W 50; wrap gap before 100 is 840, plus 30.
	if got := rowMaxSpan(period, []*ttf.Function{f}); got != 870 {
		t.Fatalf("rowMaxSpan = %d, want 870", got)
	}
	empty := ttf.MustNew(period, nil)
	if got := rowMaxSpan(period, []*ttf.Function{empty}); got != 0 {
		t.Fatalf("rowMaxSpan(empty) = %d, want 0", got)
	}
}

func TestSpliceProfile(t *testing.T) {
	period := timeutil.NewPeriod(1440)
	oldF := ttf.MustNew(period, []ttf.Point{{Dep: 100, W: 30}, {Dep: 500, W: 40}, {Dep: 900, W: 30}})
	oldF.Reduce()
	// Window [450, 600]: the 500 point is replaced by a faster 510 one.
	winF := ttf.MustNew(period, []ttf.Point{{Dep: 510, W: 20}})
	got, err := spliceProfile(period, oldF, []*ttf.Function{winF}, []winInterval{{450, 600}})
	if err != nil {
		t.Fatal(err)
	}
	want := ttf.MustNew(period, []ttf.Point{{Dep: 100, W: 30}, {Dep: 510, W: 20}, {Dep: 900, W: 30}})
	want.Reduce()
	gp, wp := got.Points(), want.Points()
	if len(gp) != len(wp) {
		t.Fatalf("spliced = %v, want %v", gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("spliced = %v, want %v", gp, wp)
		}
	}
}

package ttf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"transit/internal/timeutil"
)

var day = timeutil.NewPeriod(1440)

func TestNewSortsAndDeduplicates(t *testing.T) {
	f := MustNew(day, []Point{{600, 30}, {480, 10}, {480, 25}, {600, 20}})
	pts := f.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0] != (Point{480, 10}) || pts[1] != (Point{600, 20}) {
		t.Fatalf("got %v", pts)
	}
}

func TestNewRejectsNegativeDuration(t *testing.T) {
	if _, err := New(day, []Point{{480, -5}}); err == nil {
		t.Fatal("want error for negative duration")
	}
}

func TestNewWrapsDepartures(t *testing.T) {
	f := MustNew(day, []Point{{1500, 10}}) // 1500 ≡ 60
	if f.Points()[0].Dep != 60 {
		t.Fatalf("departure not wrapped: %v", f.Points()[0])
	}
}

func TestNewDropsInfinitePoints(t *testing.T) {
	f := MustNew(day, []Point{{480, timeutil.Infinity}, {500, 10}})
	if f.NumPoints() != 1 {
		t.Fatalf("infinite point not dropped: %v", f.Points())
	}
}

func TestEvalExactSimple(t *testing.T) {
	// Three trains as in Figure 2 of the paper.
	f := MustNew(day, []Point{{480, 60}, {540, 50}, {720, 40}})
	tests := []struct{ tau, want timeutil.Ticks }{
		{480, 60},                    // board train 1 immediately
		{400, 140},                   // wait 80 for train 1
		{500, 90},                    // wait 40 for train 2
		{540, 50},                    // board train 2
		{600, 160},                   // wait 120 for train 3
		{720, 40},                    // board train 3
		{721, 1440 - 721 + 480 + 60}, // missed the last; next day's train 1
	}
	for _, tc := range tests {
		if got := f.EvalExact(tc.tau); got != tc.want {
			t.Errorf("EvalExact(%d) = %d, want %d", tc.tau, got, tc.want)
		}
	}
}

func TestEvalExactPicksFasterLaterTrain(t *testing.T) {
	// A slow early train is beaten by a later fast one even before reduction.
	f := MustNew(day, []Point{{480, 200}, {500, 30}})
	if got := f.EvalExact(480); got != 50 {
		t.Errorf("EvalExact(480) = %d, want 50 (wait 20 + ride 30)", got)
	}
}

func TestReduceDeletesDominated(t *testing.T) {
	// (480,200) arrives 680; (500,30) arrives 530 → dominates the first.
	f := MustNew(day, []Point{{480, 200}, {500, 30}, {600, 60}})
	deleted := f.Reduce()
	if deleted != 1 {
		t.Fatalf("deleted %d, want 1", deleted)
	}
	pts := f.Points()
	if len(pts) != 2 || pts[0] != (Point{500, 30}) || pts[1] != (Point{600, 60}) {
		t.Fatalf("got %v", pts)
	}
}

func TestReduceTieDeletes(t *testing.T) {
	// Equal arrival: the earlier departure is dominated (later dep, same arr).
	f := MustNew(day, []Point{{480, 120}, {540, 60}}) // both arrive 600
	if deleted := f.Reduce(); deleted != 1 {
		t.Fatalf("deleted %d, want 1 (tie must delete the earlier departure)", deleted)
	}
	if f.Points()[0] != (Point{540, 60}) {
		t.Fatalf("kept wrong point: %v", f.Points())
	}
}

func TestReduceCircularWrap(t *testing.T) {
	// A hopeless 23:00 train taking 10h is dominated by next morning's
	// 06:00 express taking 1h: Δ(1380,360)+60 = 420+60 = 480 < 600.
	f := MustNew(day, []Point{{360, 60}, {1380, 600}})
	if deleted := f.Reduce(); deleted != 1 {
		t.Fatalf("deleted %d, want 1 (circular domination)", deleted)
	}
	if f.Points()[0] != (Point{360, 60}) {
		t.Fatalf("kept wrong point: %v", f.Points())
	}
}

func TestReduceKeepsUsefulNightTrain(t *testing.T) {
	// The night train is slow but still better than waiting for the morning
	// express: 1380+240=1620 arrival; waiting until 360 next day arrives
	// 1800+60. Both must survive.
	f := MustNew(day, []Point{{360, 60}, {1380, 240}})
	if deleted := f.Reduce(); deleted != 0 {
		t.Fatalf("deleted %d, want 0", deleted)
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	f := MustNew(day, nil)
	if f.Reduce() != 0 || !f.Reduced() {
		t.Fatal("empty reduce broken")
	}
	g := MustNew(day, []Point{{100, 10}})
	if g.Reduce() != 0 || g.NumPoints() != 1 {
		t.Fatal("single-point reduce broken")
	}
}

// Reduction must never change the function value anywhere.
func TestReducePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Dep: timeutil.Ticks(rng.Intn(1440)),
				W:   timeutil.Ticks(rng.Intn(600)),
			}
		}
		f := MustNew(day, pts)
		g := f.clone()
		g.Reduce()
		for tau := timeutil.Ticks(0); tau < 1440; tau += 7 {
			if f.EvalExact(tau) != g.EvalExact(tau) {
				t.Fatalf("trial %d: reduction changed value at %d: %d vs %d\nbefore %v\nafter %v",
					trial, tau, f.EvalExact(tau), g.EvalExact(tau), f, g)
			}
		}
	}
}

// Reduction is idempotent and yields a dominance-free set.
func TestReduceIdempotentAndDominanceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(900))}
		}
		f := MustNew(day, pts)
		f.Reduce()
		if !f.IsDominanceFree() {
			t.Fatalf("trial %d: reduced function not dominance-free: %v", trial, f)
		}
		before := len(f.Points())
		if again := f.Reduce(); again != 0 || len(f.Points()) != before {
			t.Fatalf("trial %d: reduce not idempotent (deleted %d more)", trial, again)
		}
	}
}

// Fast Eval on reduced functions agrees with the exhaustive scan.
func TestEvalMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(15)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(700))}
		}
		f := MustNew(day, pts)
		f.Reduce()
		for tau := timeutil.Ticks(0); tau < 1440; tau += 11 {
			if f.Eval(tau) != f.EvalExact(tau) {
				t.Fatalf("trial %d: Eval(%d)=%d, exact=%d on %v", trial, tau, f.Eval(tau), f.EvalExact(tau), f)
			}
		}
	}
}

// Every connection-point function satisfies the value-level FIFO property:
// f(τ1) ≤ Δ(τ1,τ2) + f(τ2), i.e. departing later never lets you arrive
// earlier when the waiting time is accounted for.
func TestValueFIFOProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(500))}
		}
		f := MustNew(day, pts)
		for t1 := timeutil.Ticks(0); t1 < 1440; t1 += 37 {
			for t2 := t1; t2 < 1440; t2 += 53 {
				if f.EvalExact(t1) > day.Delta(t1, t2)+f.EvalExact(t2) {
					t.Fatalf("FIFO violated at (%d,%d) on %v", t1, t2, f)
				}
			}
		}
	}
}

func TestEvalArrival(t *testing.T) {
	f := MustNew(day, []Point{{480, 60}})
	f.Reduce()
	if got := f.EvalArrival(400); got != 540 {
		t.Errorf("EvalArrival(400) = %d, want 540", got)
	}
	// Absolute times past the period: departing day 1 at 07:00 (1860).
	if got := f.EvalArrival(1860); got != 1980 {
		t.Errorf("EvalArrival(1860) = %d, want 1980 (day 1, 09:00)", got)
	}
	empty := MustNew(day, nil)
	if !empty.EvalArrival(100).IsInf() {
		t.Error("EvalArrival on empty function must be infinite")
	}
}

func TestNextDeparture(t *testing.T) {
	f := MustNew(day, []Point{{480, 60}, {720, 40}})
	f.Reduce()
	p, wait := f.NextDeparture(500)
	if p.Dep != 720 || wait != 220 {
		t.Errorf("NextDeparture(500) = %v wait %d", p, wait)
	}
	p, wait = f.NextDeparture(1000)
	if p.Dep != 480 || wait != 920 {
		t.Errorf("NextDeparture(1000) = %v wait %d (wrap)", p, wait)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NextDeparture on unreduced function must panic")
			}
		}()
		g := MustNew(day, []Point{{1, 1}})
		g.NextDeparture(0)
	}()
}

func TestFromArrivals(t *testing.T) {
	deps := []timeutil.Ticks{480, 500, 520}
	arrs := []timeutil.Ticks{700, 590, timeutil.Infinity}
	f, err := FromArrivals(day, deps, arrs)
	if err != nil {
		t.Fatal(err)
	}
	// (480,220) arrives 700, dominated by (500,90) arriving 590; 520 pruned.
	if f.NumPoints() != 1 || f.Points()[0] != (Point{500, 90}) {
		t.Fatalf("got %v", f.Points())
	}
	if _, err := FromArrivals(day, deps, arrs[:2]); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := FromArrivals(day, []timeutil.Ticks{500}, []timeutil.Ticks{400}); err == nil {
		t.Error("arrival before departure must error")
	}
}

func TestMerge(t *testing.T) {
	f := MustNew(day, []Point{{480, 60}})
	g := MustNew(day, []Point{{480, 30}, {600, 20}})
	m := Merge(f, g)
	for tau := timeutil.Ticks(0); tau < 1440; tau += 13 {
		want := timeutil.Min(f.EvalExact(tau), g.EvalExact(tau))
		if got := m.EvalExact(tau); got != want {
			t.Fatalf("Merge value at %d: got %d want %d", tau, got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	f := MustNew(day, []Point{{480, 200}, {500, 30}})
	g := MustNew(day, []Point{{500, 30}})
	if !Equal(f, g) {
		t.Error("functions equal after reduction must compare Equal")
	}
	h := MustNew(day, []Point{{500, 31}})
	if Equal(f, h) {
		t.Error("different functions compare Equal")
	}
	other := MustNew(timeutil.NewPeriod(100), []Point{{50, 30}})
	if Equal(f, other) {
		t.Error("different periods compare Equal")
	}
}

func TestMinMax(t *testing.T) {
	f := MustNew(day, []Point{{480, 60}, {500, 30}, {700, 90}})
	min, max := f.MinMax()
	if min != 30 || max != 90 {
		t.Errorf("MinMax = %d,%d want 30,90", min, max)
	}
	e := MustNew(day, nil)
	min, max = e.MinMax()
	if !min.IsInf() || !max.IsInf() {
		t.Error("empty MinMax must be infinite")
	}
}

func TestStringSmoke(t *testing.T) {
	if MustNew(day, nil).String() != "ttf{∞}" {
		t.Error("empty String")
	}
	if s := MustNew(day, []Point{{1, 2}}).String(); s != "ttf{(1,2)}" {
		t.Errorf("String = %q", s)
	}
}

// quick.Check: merging a function with itself is identity (after reduction).
func TestMergeSelfIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(300))}
		}
		g := MustNew(day, pts)
		return Equal(Merge(g, g), g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Merge is commutative and associative (as pointwise minimum must be).
func TestMergeAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	mk := func() *Function {
		n := 1 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(400))}
		}
		return MustNew(day, pts)
	}
	for trial := 0; trial < 50; trial++ {
		f, g, h := mk(), mk(), mk()
		if !Equal(Merge(f, g), Merge(g, f)) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		if !Equal(Merge(Merge(f, g), h), Merge(f, Merge(g, h))) {
			t.Fatalf("trial %d: merge not associative", trial)
		}
	}
}

// Function values are always within [minW, π + maxW]: at worst you wait a
// full period for the best connection.
func TestEvalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Dep: timeutil.Ticks(rng.Intn(1440)), W: timeutil.Ticks(rng.Intn(500))}
		}
		f := MustNew(day, pts)
		f.Reduce()
		mn, mx := f.MinMax()
		for tau := timeutil.Ticks(0); tau < 1440; tau += 61 {
			v := f.Eval(tau)
			if v < mn || v >= 1440+mx {
				t.Fatalf("trial %d: Eval(%d)=%d outside [%d, %d)", trial, tau, v, mn, 1440+mx)
			}
		}
	}
}

// Periodicity: f(τ) == f(τ + k·π) for absolute times.
func TestEvalPeriodicity(t *testing.T) {
	f := MustNew(day, []Point{{480, 60}, {900, 45}})
	f.Reduce()
	for tau := timeutil.Ticks(0); tau < 1440; tau += 77 {
		if f.Eval(tau) != f.Eval(tau+1440) || f.Eval(tau) != f.Eval(tau+4320) {
			t.Fatalf("Eval not periodic at %d", tau)
		}
	}
}

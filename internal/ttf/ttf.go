// Package ttf implements the special class of piecewise-linear travel-time
// functions that arise in public transportation networks (Section 2 of the
// paper). A function f: Π → N0 is represented by a set of connection points
// P(f) ⊂ Π × N0; its value is
//
//	f(τ) = Δ(τ, τ_f) + w_f   for the (τ_f, w_f) ∈ P(f) minimizing Δ(τ, τ_f)+w_f,
//
// i.e. the travel time at τ is the wait for a good connection departing at
// τ_f plus the duration w_f of the itinerary starting with it.
//
// The package provides construction from (departure, duration) pairs, exact
// and fast evaluation, and the paper's connection reduction: the backward
// dominance scan that deletes points which are dominated by a point with a
// later departure and an earlier arrival. A reduced point set is exactly one
// whose induced staircase of arrival times fulfills the FIFO property.
package ttf

import (
	"fmt"
	"sort"

	"transit/internal/timeutil"
)

// Point is a connection point (τ, w): departing at time point τ ∈ Π, the
// itinerary takes w ticks.
type Point struct {
	Dep timeutil.Ticks // departure time point, in [0, π)
	W   timeutil.Ticks // duration (may exceed π for overnight itineraries)
}

// Arr returns the absolute arrival time τ + w of the point.
func (p Point) Arr() timeutil.Ticks { return p.Dep + p.W }

// Function is a periodic piecewise-linear travel-time function given by its
// connection points, sorted by increasing departure time point. A Function
// with no points is everywhere infinite (unreachable).
//
// The zero value is not usable; construct with New or FromArrivals.
type Function struct {
	period  timeutil.Period
	points  []Point
	reduced bool
}

// New builds a Function over the given period from arbitrary connection
// points. Points are copied, validated (departures wrapped into Π, durations
// non-negative), sorted by departure, and duplicates of the same departure
// keep only the minimum duration. The result is not necessarily reduced;
// call Reduce for the canonical form.
func New(period timeutil.Period, pts []Point) (*Function, error) {
	cp := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.W < 0 {
			return nil, fmt.Errorf("ttf: negative duration %d at departure %d", p.W, p.Dep)
		}
		if p.W.IsInf() {
			continue // unreachable points carry no information
		}
		cp = append(cp, Point{Dep: period.Wrap(p.Dep), W: p.W})
	}
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Dep != cp[j].Dep {
			return cp[i].Dep < cp[j].Dep
		}
		return cp[i].W < cp[j].W
	})
	// Collapse duplicate departures, keeping the fastest.
	out := cp[:0]
	for _, p := range cp {
		if len(out) > 0 && out[len(out)-1].Dep == p.Dep {
			continue // sorted by W within equal Dep, first is fastest
		}
		out = append(out, p)
	}
	return &Function{period: period, points: out}, nil
}

// MustNew is New panicking on error; for tests and literals.
func MustNew(period timeutil.Period, pts []Point) *Function {
	f, err := New(period, pts)
	if err != nil {
		panic(err)
	}
	return f
}

// FromArrivals builds the profile function of a station from the per-
// connection labels of a profile search: deps[i] is the departure time point
// τ_dep(c_i) at the source and arrs[i] the absolute arrival time arr(v, i)
// (timeutil.Infinity when connection i was pruned or does not reach v). The
// result is reduced.
func FromArrivals(period timeutil.Period, deps, arrs []timeutil.Ticks) (*Function, error) {
	if len(deps) != len(arrs) {
		return nil, fmt.Errorf("ttf: %d departures but %d arrivals", len(deps), len(arrs))
	}
	pts := make([]Point, 0, len(deps))
	for i, d := range deps {
		a := arrs[i]
		if a.IsInf() {
			continue
		}
		w := a - d
		if w < 0 {
			return nil, fmt.Errorf("ttf: connection %d arrives at %d before departing at %d", i, a, d)
		}
		pts = append(pts, Point{Dep: d, W: w})
	}
	f, err := New(period, pts)
	if err != nil {
		return nil, err
	}
	f.Reduce()
	return f, nil
}

// Period returns the period the function is defined over.
func (f *Function) Period() timeutil.Period { return f.period }

// Points returns the connection points (shared slice; callers must not
// modify it).
func (f *Function) Points() []Point { return f.points }

// NumPoints returns |P(f)|.
func (f *Function) NumPoints() int { return len(f.points) }

// Empty reports whether the function is everywhere infinite.
func (f *Function) Empty() bool { return len(f.points) == 0 }

// Reduced reports whether the point set is known to be dominance-free.
func (f *Function) Reduced() bool { return f.reduced }

// Reduce deletes all dominated connection points: a point is dominated if
// waiting for some circularly later departure yields an arrival that is no
// later. This is the paper's connection reduction, extended circularly so
// that the first connections of the next period can dominate the last
// connections of the current one. Reduction never changes the function
// value. It returns the number of points deleted.
func (f *Function) Reduce() int {
	n := len(f.points)
	if n <= 1 {
		f.reduced = true
		return 0
	}
	pi := f.period.Len()
	keep := make([]bool, n)
	// Backward scan over the points followed by their next-period copies.
	// minArr tracks the minimum lifted absolute arrival among all points
	// scanned so far (i.e. all circularly later departures within one
	// period). A point is deleted when its arrival is not strictly earlier.
	minArr := timeutil.Infinity
	for k := 2*n - 1; k >= 0; k-- {
		i := k % n
		lift := timeutil.Ticks(0)
		if k >= n {
			lift = pi
		}
		arr := f.points[i].Arr() + lift
		if k < n {
			if arr < minArr {
				keep[i] = true
			}
		}
		if arr < minArr {
			minArr = arr
		}
	}
	out := f.points[:0]
	for i, p := range f.points {
		if keep[i] {
			out = append(out, p)
		}
	}
	deleted := n - len(out)
	f.points = out
	f.reduced = true
	return deleted
}

// EvalExact returns f(τ) by scanning all connection points. It works on
// unreduced functions and is the reference implementation used in tests.
func (f *Function) EvalExact(tau timeutil.Ticks) timeutil.Ticks {
	if len(f.points) == 0 {
		return timeutil.Infinity
	}
	tau = f.period.Wrap(tau)
	best := timeutil.Infinity
	for _, p := range f.points {
		if v := f.period.Delta(tau, p.Dep) + p.W; v < best {
			best = v
		}
	}
	return best
}

// Eval returns the travel time f(τ) when departing at time τ (arbitrary
// absolute times are wrapped into Π). On reduced functions this is a binary
// search for the next departure; on unreduced functions it falls back to the
// exact scan.
func (f *Function) Eval(tau timeutil.Ticks) timeutil.Ticks {
	if len(f.points) == 0 {
		return timeutil.Infinity
	}
	if !f.reduced {
		return f.EvalExact(tau)
	}
	tau = f.period.Wrap(tau)
	// First point with Dep >= tau, wrapping to points[0] on overflow.
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].Dep >= tau })
	if i == len(f.points) {
		p := f.points[0]
		return f.period.Len() - tau + p.Dep + p.W
	}
	p := f.points[i]
	return p.Dep - tau + p.W
}

// EvalArrival returns the absolute arrival time when departing at the
// absolute time at: at + f(at).
func (f *Function) EvalArrival(at timeutil.Ticks) timeutil.Ticks {
	w := f.Eval(at)
	if w.IsInf() {
		return timeutil.Infinity
	}
	return at + w
}

// NextDeparture returns the connection point the function would use when
// departing at τ, i.e. the point with the smallest wait, together with the
// absolute wait. It requires a reduced function and panics otherwise, since
// on unreduced functions the next departure need not be optimal.
func (f *Function) NextDeparture(tau timeutil.Ticks) (Point, timeutil.Ticks) {
	if !f.reduced {
		panic("ttf: NextDeparture on unreduced function")
	}
	if len(f.points) == 0 {
		return Point{}, timeutil.Infinity
	}
	tau = f.period.Wrap(tau)
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].Dep >= tau })
	if i == len(f.points) {
		return f.points[0], f.period.Len() - tau + f.points[0].Dep
	}
	return f.points[i], f.points[i].Dep - tau
}

// IsDominanceFree reports whether no point is dominated by a circularly
// later one, i.e. whether the induced arrival staircase fulfills the FIFO
// property of the paper. Reduced functions are always dominance-free.
func (f *Function) IsDominanceFree() bool {
	n := len(f.points)
	if n <= 1 {
		return true
	}
	pi := f.period.Len()
	for i := 0; i < n; i++ {
		ai := f.points[i].Arr()
		for d := 1; d < n; d++ {
			lift := timeutil.Ticks(0)
			if i+d >= n {
				lift = pi
			}
			if f.points[(i+d)%n].Arr()+lift <= ai {
				return false
			}
		}
	}
	return true
}

// MinMax returns the minimum and maximum duration over all connection
// points, or (Infinity, Infinity) for the empty function. The minimum is a
// global lower bound on f; the maximum plus a full period wait upper-bounds
// f.
func (f *Function) MinMax() (min, max timeutil.Ticks) {
	if len(f.points) == 0 {
		return timeutil.Infinity, timeutil.Infinity
	}
	min, max = f.points[0].W, f.points[0].W
	for _, p := range f.points[1:] {
		if p.W < min {
			min = p.W
		}
		if p.W > max {
			max = p.W
		}
	}
	return min, max
}

// Merge returns the pointwise minimum of f and g as a new reduced function.
// Both must share the same period.
func Merge(f, g *Function) *Function {
	if f.period.Len() != g.period.Len() {
		panic("ttf: merging functions with different periods")
	}
	pts := make([]Point, 0, len(f.points)+len(g.points))
	pts = append(pts, f.points...)
	pts = append(pts, g.points...)
	m := MustNew(f.period, pts)
	m.Reduce()
	return m
}

// Equal reports whether f and g take the same value at every time point of
// their (shared) period. It compares reduced forms, which are canonical.
func Equal(f, g *Function) bool {
	if f.period.Len() != g.period.Len() {
		return false
	}
	fr, gr := f.clone(), g.clone()
	fr.Reduce()
	gr.Reduce()
	if len(fr.points) != len(gr.points) {
		return false
	}
	for i := range fr.points {
		if fr.points[i] != gr.points[i] {
			return false
		}
	}
	return true
}

func (f *Function) clone() *Function {
	pts := make([]Point, len(f.points))
	copy(pts, f.points)
	return &Function{period: f.period, points: pts, reduced: f.reduced}
}

// String renders the function compactly for debugging.
func (f *Function) String() string {
	if len(f.points) == 0 {
		return "ttf{∞}"
	}
	s := "ttf{"
	for i, p := range f.points {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("(%d,%d)", p.Dep, p.W)
	}
	return s + "}"
}

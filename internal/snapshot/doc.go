// Package snapshot implements the versioned, checksummed binary container
// that persists a complete query-ready network — timetable, station graph
// and (optionally) the distance table — so a serving process boots by
// loading one file instead of re-running generation, graph construction and
// preprocessing.
//
// # Container layout
//
// A snapshot is a magic header, a format version, a section table and the
// concatenated section payloads; every payload is CRC-32C checksummed
// independently, so corruption is detected per section with a descriptive
// error. Sections are flat, length-prefixed and little-endian, which keeps a
// future mmap fast-path possible without a format break. The full byte-level
// specification, the section IDs and the versioning/compatibility rules live
// in docs/SNAPSHOT_FORMAT.md.
//
// # Sections
//
//   - SecTimetable (required): the binary v1 timetable — stations, trains,
//     connections (including cancelled ones, which keep their dense ID slot
//     with an infinite arrival), footpaths.
//   - SecStationGraph: the condensed station graph as a forward CSR; the
//     reverse adjacency and degrees are derived on load. Absent sections are
//     rebuilt from the timetable.
//   - SecDistanceTable: the transfer-station distance table of a
//     preprocessed network. Optional — a snapshot of an unpreprocessed (or
//     freshly patched) network simply has no table section.
//   - SecLiveState: the live-serving provenance — the epoch of the
//     internal/live registry the snapshot was persisted from and its
//     creation time — so a restarted server resumes with delays intact.
//   - SecTableProvenance: the distance table's per-row repair provenance
//     (internal/dtable.RowProvenance), written only for repair-base tables,
//     so a restored server can absorb delay batches with an incremental
//     table repair instead of a full re-preprocessing run
//     (docs/PREPROCESSING.md).
//
// Readers skip unknown section IDs (forward compatibility within a major
// format version) and reject unknown format versions outright.
//
// The public entry points are transit.Network.WriteSnapshot and
// transit.LoadSnapshot; internal/live.Registry persists its current epoch
// through the same container.
//
// A persisted registry additionally keeps a journal sidecar next to the
// snapshot file (<path>.wal, internal/wal): an append-only CRC-framed log
// of the delay batches applied since the last checkpoint, fsynced before
// each batch is acked and truncated after each successful checkpoint. The
// sidecar is deliberately not a snapshot section — it must be appendable
// and fsyncable per batch, while the container is written whole. Format
// and recovery contract: docs/RELIABILITY.md.
package snapshot

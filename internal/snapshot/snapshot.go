package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"transit/internal/dtable"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
)

// Magic identifies a snapshot file. The trailing "\r\n" catches text-mode
// line-ending translation, PNG-style.
var Magic = [8]byte{'T', 'P', 'S', 'N', 'A', 'P', '\r', '\n'}

// Version is the container format version this build writes and the only
// one it reads. Additive changes (new section IDs) do not bump it; layout
// changes of the header or of an existing section do.
const Version uint32 = 1

// Section IDs. See docs/SNAPSHOT_FORMAT.md for each payload's layout.
const (
	SecTimetable       uint32 = 1
	SecStationGraph    uint32 = 2
	SecDistanceTable   uint32 = 3
	SecLiveState       uint32 = 4
	SecTableProvenance uint32 = 5
)

// maxSections bounds the section table of a well-formed snapshot; it is far
// above anything this package writes and exists only to fail fast on
// corrupted or hostile headers.
const maxSections = 256

// maxSectionBytes bounds a single section payload (1 GiB).
const maxSectionBytes = 1 << 30

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Data is the decoded content of a snapshot: everything needed to
// reconstruct a query-ready network without re-running preprocessing.
type Data struct {
	// TT is the validated timetable (required).
	TT *timetable.Timetable
	// SG is the condensed station graph; Read rebuilds it from TT when the
	// section is absent, so it is never nil on a successful load.
	SG *stationgraph.Graph
	// Table is the distance table, nil when the snapshot carries none.
	Table *dtable.Table
	// Epoch and Created are the live-serving provenance (SecLiveState):
	// epoch 0 is a freshly built network, higher epochs count applied
	// dynamic-update batches.
	Epoch   uint64
	Created time.Time
	// Patched marks a network whose schedule was changed by dynamic
	// updates; it is set for every epoch > 0, and additionally covers
	// patched networks snapshotted without live provenance, so the loader
	// can keep refusing stale preprocessing for them.
	Patched bool
}

// Live-state flag bits.
const flagPatched uint64 = 1 << 0

func sectionName(id uint32) string {
	switch id {
	case SecTimetable:
		return "timetable"
	case SecStationGraph:
		return "station-graph"
	case SecDistanceTable:
		return "distance-table"
	case SecLiveState:
		return "live-state"
	case SecTableProvenance:
		return "table-provenance"
	default:
		return fmt.Sprintf("unknown(%d)", id)
	}
}

// Write serializes d as a snapshot container: header, section table, then
// the section payloads in table order. Sections are buffered to compute
// lengths and checksums up front, so w receives one sequential stream.
func Write(w io.Writer, d *Data) error {
	if d.TT == nil {
		return fmt.Errorf("snapshot: no timetable to write")
	}
	type section struct {
		id      uint32
		payload []byte
	}
	var secs []section
	add := func(id uint32, enc func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			return fmt.Errorf("snapshot: encoding %s section: %w", sectionName(id), err)
		}
		if buf.Len() > maxSectionBytes {
			return fmt.Errorf("snapshot: %s section exceeds %d bytes", sectionName(id), maxSectionBytes)
		}
		secs = append(secs, section{id: id, payload: buf.Bytes()})
		return nil
	}
	if err := add(SecTimetable, func(w io.Writer) error {
		return timetable.WriteBinary(w, d.TT)
	}); err != nil {
		return err
	}
	if d.SG != nil {
		if err := add(SecStationGraph, func(w io.Writer) error {
			return stationgraph.WriteSection(w, d.SG)
		}); err != nil {
			return err
		}
	}
	if d.Table != nil {
		if err := add(SecDistanceTable, func(w io.Writer) error {
			return dtable.WriteSection(w, d.Table, d.TT.NumStations())
		}); err != nil {
			return err
		}
		if d.Table.HasProvenance() {
			if err := add(SecTableProvenance, func(w io.Writer) error {
				return dtable.WriteProvenanceSection(w, d.Table)
			}); err != nil {
				return err
			}
		}
	}
	created := d.Created
	if created.IsZero() {
		created = time.Now()
	}
	if err := add(SecLiveState, func(w io.Writer) error {
		if err := binary.Write(w, binary.LittleEndian, d.Epoch); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, created.UnixNano()); err != nil {
			return err
		}
		var flags uint64
		if d.Patched || d.Epoch > 0 {
			flags |= flagPatched
		}
		return binary.Write(w, binary.LittleEndian, flags)
	}); err != nil {
		return err
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, Version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(secs))); err != nil {
		return err
	}
	for _, s := range secs {
		if err := binary.Write(bw, binary.LittleEndian, s.id); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.Checksum(s.payload, crcTable)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(s.payload))); err != nil {
			return err
		}
	}
	for _, s := range secs {
		if _, err := bw.Write(s.payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses and validates a snapshot container. Every known section's CRC
// is verified before its payload is decoded; unknown section IDs are
// skipped for forward compatibility. The timetable section is required.
func Read(r io.Reader) (*Data, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if m != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a snapshot file?)", m)
	}
	var version, nSections uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", version, Version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nSections); err != nil {
		return nil, fmt.Errorf("snapshot: reading section count: %w", err)
	}
	if nSections == 0 || nSections > maxSections {
		return nil, fmt.Errorf("snapshot: implausible section count %d", nSections)
	}
	type entry struct {
		id     uint32
		crc    uint32
		length uint64
	}
	entries := make([]entry, nSections)
	seen := make(map[uint32]bool, nSections)
	for i := range entries {
		e := &entries[i]
		if err := binary.Read(br, binary.LittleEndian, &e.id); err != nil {
			return nil, fmt.Errorf("snapshot: reading section table: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &e.crc); err != nil {
			return nil, fmt.Errorf("snapshot: reading section table: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &e.length); err != nil {
			return nil, fmt.Errorf("snapshot: reading section table: %w", err)
		}
		if e.length > maxSectionBytes {
			return nil, fmt.Errorf("snapshot: %s section claims %d bytes (max %d)", sectionName(e.id), e.length, maxSectionBytes)
		}
		if seen[e.id] {
			return nil, fmt.Errorf("snapshot: duplicate %s section", sectionName(e.id))
		}
		seen[e.id] = true
	}
	payloads := make(map[uint32][]byte, nSections)
	for _, e := range entries {
		p := make([]byte, e.length)
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, fmt.Errorf("snapshot: %s section truncated (want %d bytes): %w", sectionName(e.id), e.length, err)
		}
		if got := crc32.Checksum(p, crcTable); got != e.crc {
			return nil, fmt.Errorf("snapshot: %s section CRC mismatch (stored %08x, computed %08x): file corrupted", sectionName(e.id), e.crc, got)
		}
		payloads[e.id] = p
	}

	d := &Data{}
	ttBytes, ok := payloads[SecTimetable]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing required timetable section")
	}
	tt, err := timetable.ReadBinary(bytes.NewReader(ttBytes))
	if err != nil {
		return nil, fmt.Errorf("snapshot: timetable section: %w", err)
	}
	d.TT = tt
	if p, ok := payloads[SecStationGraph]; ok {
		sg, err := stationgraph.ReadSection(bytes.NewReader(p))
		if err != nil {
			return nil, fmt.Errorf("snapshot: station-graph section: %w", err)
		}
		if sg.NumStations() != tt.NumStations() {
			return nil, fmt.Errorf("snapshot: station graph has %d stations, timetable has %d", sg.NumStations(), tt.NumStations())
		}
		d.SG = sg
	} else {
		d.SG = stationgraph.Build(tt)
	}
	if p, ok := payloads[SecDistanceTable]; ok {
		t, err := dtable.ReadSection(bytes.NewReader(p), tt.NumStations())
		if err != nil {
			return nil, fmt.Errorf("snapshot: distance-table section: %w", err)
		}
		if pp, ok := payloads[SecTableProvenance]; ok {
			err := dtable.ReadProvenanceSection(bytes.NewReader(pp), t, tt.NumStations(), tt.NumTrains(), len(tt.Routes()))
			switch {
			case errors.Is(err, dtable.ErrProvenanceIncompatible):
				// Written by a build with different provenance parameters:
				// the table still serves, repairs fall back to full rebuilds.
			case err != nil:
				return nil, fmt.Errorf("snapshot: table-provenance section: %w", err)
			}
		}
		d.Table = t
	}
	if p, ok := payloads[SecLiveState]; ok {
		lr := bytes.NewReader(p)
		var nano int64
		if err := binary.Read(lr, binary.LittleEndian, &d.Epoch); err != nil {
			return nil, fmt.Errorf("snapshot: live-state section: %w", err)
		}
		if err := binary.Read(lr, binary.LittleEndian, &nano); err != nil {
			return nil, fmt.Errorf("snapshot: live-state section: %w", err)
		}
		d.Created = time.Unix(0, nano)
		// Flags were appended within version 1; a 16-byte payload simply
		// has none set.
		var flags uint64
		if err := binary.Read(lr, binary.LittleEndian, &flags); err == nil {
			d.Patched = flags&flagPatched != 0
		}
		d.Patched = d.Patched || d.Epoch > 0
	}
	return d, nil
}

package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
	"time"

	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// testTimetable builds a small deterministic three-station timetable with a
// footpath.
func testTimetable(t testing.TB) *timetable.Timetable {
	t.Helper()
	b := timetable.NewBuilder(timeutil.NewPeriod(timeutil.DayMinutes))
	a := b.AddStationAt("A", 2, 0, 0)
	c := b.AddStationAt("B", 3, 1, 0)
	d := b.AddStationAt("C", 2, 2, 0)
	for h := 6; h < 22; h++ {
		b.AddTrainRun("r1", []timetable.StationID{a, c, d}, timeutil.Ticks(h*60), []timeutil.Ticks{20, 25}, 2)
		b.AddTrainRun("r2", []timetable.StationID{d, a}, timeutil.Ticks(h*60+30), []timeutil.Ticks{50}, 0)
	}
	b.AddFootpath(a, c, 12)
	b.AddFootpath(c, a, 12)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func testData(t testing.TB) *Data {
	t.Helper()
	tt := testTimetable(t)
	return &Data{
		TT:      tt,
		SG:      stationgraph.Build(tt),
		Epoch:   7,
		Created: time.Unix(0, 1234567890).UTC(),
	}
}

func encode(t testing.TB, d *Data) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	d := testData(t)
	raw := encode(t, d)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.TT.Stats() != d.TT.Stats() {
		t.Errorf("timetable stats: got %v, want %v", got.TT.Stats(), d.TT.Stats())
	}
	if got.Epoch != d.Epoch {
		t.Errorf("epoch: got %d, want %d", got.Epoch, d.Epoch)
	}
	if !got.Created.Equal(d.Created) {
		t.Errorf("created: got %v, want %v", got.Created, d.Created)
	}
	if got.Table != nil {
		t.Errorf("table: got non-nil for a snapshot without one")
	}
	if got.SG.NumStations() != d.SG.NumStations() {
		t.Fatalf("station graph size: got %d, want %d", got.SG.NumStations(), d.SG.NumStations())
	}
	for s := 0; s < got.SG.NumStations(); s++ {
		id := timetable.StationID(s)
		if got.SG.Degree(id) != d.SG.Degree(id) {
			t.Errorf("station %d degree: got %d, want %d", s, got.SG.Degree(id), d.SG.Degree(id))
		}
		gout, wout := got.SG.Out(id), d.SG.Out(id)
		if len(gout) != len(wout) {
			t.Fatalf("station %d out-arcs: got %d, want %d", s, len(gout), len(wout))
		}
		for i := range gout {
			if gout[i] != wout[i] {
				t.Errorf("station %d arc %d: got %+v, want %+v", s, i, gout[i], wout[i])
			}
		}
		gin, win := got.SG.In(id), d.SG.In(id)
		if len(gin) != len(win) {
			t.Fatalf("station %d in-arcs: got %d, want %d", s, len(gin), len(win))
		}
		for i := range gin {
			if gin[i] != win[i] {
				t.Errorf("station %d in-arc %d: got %+v, want %+v", s, i, gin[i], win[i])
			}
		}
	}
}

// TestWriteDeterministic: identical inputs serialize to identical bytes, the
// property that makes snapshot files diffable and cacheable.
func TestWriteDeterministic(t *testing.T) {
	d := testData(t)
	if !bytes.Equal(encode(t, d), encode(t, d)) {
		t.Fatal("two Write calls produced different bytes")
	}
}

func TestReadBadMagic(t *testing.T) {
	raw := encode(t, testData(t))
	raw[0] = 'X'
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: got %v, want a bad-magic error", err)
	}
	// A completely unrelated stream is rejected the same way.
	_, err = Read(strings.NewReader("GIF89a...definitely not a snapshot"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign stream: got %v, want a bad-magic error", err)
	}
}

func TestReadWrongVersion(t *testing.T) {
	raw := encode(t, testData(t))
	binary.LittleEndian.PutUint32(raw[8:], Version+1)
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("wrong version: got %v, want an unsupported-version error", err)
	}
}

func TestReadTruncated(t *testing.T) {
	raw := encode(t, testData(t))
	// Truncations at every structurally interesting boundary: mid-magic,
	// mid-header, mid-table, mid-payload, one byte short.
	for _, n := range []int{0, 4, 8, 10, 14, 16, 30, 60, len(raw) / 2, len(raw) - 1} {
		if n >= len(raw) {
			continue
		}
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes: no error", n)
		}
	}
}

func TestReadFlippedCRCByte(t *testing.T) {
	raw := encode(t, testData(t))
	// Flip one byte in several payload positions and require a CRC error
	// naming the damage.
	for _, off := range []int{len(raw) - 1, len(raw) / 2, len(raw) / 3} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		_, err := Read(bytes.NewReader(bad))
		if err == nil {
			t.Errorf("flipped byte at %d: no error", off)
			continue
		}
		if !strings.Contains(err.Error(), "CRC mismatch") && !strings.Contains(err.Error(), "truncated") {
			t.Errorf("flipped byte at %d: %v, want CRC mismatch", off, err)
		}
	}
}

func TestReadCorruptSectionTable(t *testing.T) {
	raw := encode(t, testData(t))
	// The first section-table entry starts at byte 16; its length field (8
	// bytes at entry offset 8) claims an absurd size.
	bad := bytes.Clone(raw)
	binary.LittleEndian.PutUint64(bad[16+8:], 1<<40)
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("hostile length: got %v, want a max-size error", err)
	}
	// Zero sections.
	bad = bytes.Clone(raw)
	binary.LittleEndian.PutUint32(bad[12:], 0)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("zero sections accepted")
	}
	// Duplicate section IDs: rewrite entry 2's ID to entry 1's.
	bad = bytes.Clone(raw)
	binary.LittleEndian.PutUint32(bad[16+16:], binary.LittleEndian.Uint32(bad[16:]))
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate section: got %v, want a duplicate-section error", err)
	}
}

func TestReadMissingTimetable(t *testing.T) {
	// Hand-roll a snapshot with only a live-state section.
	var buf bytes.Buffer
	buf.Write(Magic[:])
	binary.Write(&buf, binary.LittleEndian, Version)
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	payload := make([]byte, 16)
	binary.Write(&buf, binary.LittleEndian, SecLiveState)
	binary.Write(&buf, binary.LittleEndian, crcOf(payload))
	binary.Write(&buf, binary.LittleEndian, uint64(len(payload)))
	buf.Write(payload)
	_, err := Read(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "missing required timetable") {
		t.Fatalf("missing timetable: got %v", err)
	}
}

// TestReadSkipsUnknownSections: a newer writer may add section IDs this
// build does not know; they must be skipped, not rejected.
func TestReadSkipsUnknownSections(t *testing.T) {
	d := testData(t)
	var tt bytes.Buffer
	if err := timetable.WriteBinary(&tt, d.TT); err != nil {
		t.Fatal(err)
	}
	future := []byte("payload from the future")
	var buf bytes.Buffer
	buf.Write(Magic[:])
	binary.Write(&buf, binary.LittleEndian, Version)
	binary.Write(&buf, binary.LittleEndian, uint32(2))
	binary.Write(&buf, binary.LittleEndian, uint32(999))
	binary.Write(&buf, binary.LittleEndian, crcOf(future))
	binary.Write(&buf, binary.LittleEndian, uint64(len(future)))
	binary.Write(&buf, binary.LittleEndian, SecTimetable)
	binary.Write(&buf, binary.LittleEndian, crcOf(tt.Bytes()))
	binary.Write(&buf, binary.LittleEndian, uint64(tt.Len()))
	buf.Write(future)
	buf.Write(tt.Bytes())
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.TT.Stats() != d.TT.Stats() {
		t.Errorf("timetable stats: got %v, want %v", got.TT.Stats(), d.TT.Stats())
	}
	if got.SG == nil {
		t.Error("station graph not rebuilt for a snapshot without its section")
	}
}

func crcOf(p []byte) uint32 {
	return crc32.Checksum(p, crcTable)
}

// randomTimetable builds a small random-but-valid timetable from a seed;
// shared by the fuzz targets.
func randomTimetable(seed int64) (*timetable.Timetable, error) {
	rng := rand.New(rand.NewSource(seed))
	period := timeutil.NewPeriod(timeutil.Ticks(60 + rng.Intn(1440)))
	b := timetable.NewBuilder(period)
	nStations := 2 + rng.Intn(7)
	ids := make([]timetable.StationID, nStations)
	for i := range ids {
		ids[i] = b.AddStationAt(string(rune('A'+i)), timeutil.Ticks(rng.Intn(5)), rng.Float64(), rng.Float64())
	}
	nTrains := 1 + rng.Intn(6)
	for z := 0; z < nTrains; z++ {
		length := 2 + rng.Intn(nStations)
		stops := make([]timetable.StationID, 0, length)
		prev := -1
		for len(stops) < length {
			s := rng.Intn(nStations)
			if s == prev {
				continue // no self-loop hops
			}
			stops = append(stops, ids[s])
			prev = s
		}
		hops := make([]timeutil.Ticks, len(stops)-1)
		for i := range hops {
			hops[i] = timeutil.Ticks(1 + rng.Intn(120))
		}
		b.AddTrainRun("z", stops, timeutil.Ticks(rng.Intn(int(period.Len()))), hops, timeutil.Ticks(rng.Intn(4)))
	}
	if rng.Intn(2) == 0 && nStations >= 2 {
		b.AddFootpath(ids[0], ids[1], timeutil.Ticks(1+rng.Intn(20)))
	}
	return b.Build()
}

// FuzzRoundTrip writes random small timetables through the container and
// requires a byte-identical re-serialization after reading back.
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 2, 42, 12345, -7} {
		f.Add(seed, uint64(3))
	}
	f.Fuzz(func(t *testing.T, seed int64, epoch uint64) {
		tt, err := randomTimetable(seed)
		if err != nil {
			t.Skip() // the random walk hit a validation edge; not a container bug
		}
		d := &Data{TT: tt, SG: stationgraph.Build(tt), Epoch: epoch, Created: time.Unix(0, 99).UTC()}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read back own output: %v", err)
		}
		if got.TT.Stats() != tt.Stats() {
			t.Fatalf("stats changed: got %v, want %v", got.TT.Stats(), tt.Stats())
		}
		if got.Epoch != epoch {
			t.Fatalf("epoch changed: got %d, want %d", got.Epoch, epoch)
		}
		var again bytes.Buffer
		if err := Write(&again, got); err != nil {
			t.Fatalf("re-write: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("round trip is not byte-identical")
		}
	})
}

// FuzzRead feeds arbitrary bytes to the reader: it must return an error or
// a valid Data, never panic.
func FuzzRead(f *testing.F) {
	valid := encode(f, testData(f))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:20])
	f.Add([]byte("TPSNAP\r\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Read(bytes.NewReader(data))
	})
}

// Package backoff is the repo's one capped-exponential-backoff-with-jitter
// helper, shared by the persistence retry loop (internal/live) and the
// replication follower's stream reconnects (internal/replica). Keeping the
// arithmetic in one unit-tested place means every retry loop in the system
// has the same provable bounds: delays never exceed Max, never fall below
// (1−Jitter)·step, and double deterministically when Jitter is zero.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Policy describes a retry schedule: Base doubling per attempt up to Max,
// with each delay jittered down by up to Jitter (a fraction in [0, 1]) to
// de-synchronize fleets of retriers — a restarted updater must not be hit
// by every replica's reconnect in the same instant.
type Policy struct {
	// Base is the first delay. Zero defaults to one second.
	Base time.Duration
	// Max caps the delay. Zero (or a value below Base) caps at Base.
	Max time.Duration
	// Jitter is the fraction of each delay randomized away: the returned
	// delay is uniform in [(1−Jitter)·d, d]. Zero means deterministic.
	Jitter float64
}

// withDefaults normalizes the zero values.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = time.Second
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// step is the undithered delay of attempt n (0-based): min(Base·2ⁿ, Max),
// overflow-safe.
func (p Policy) step(n int) time.Duration {
	d := p.Base
	for i := 0; i < n; i++ {
		d *= 2
		if d >= p.Max || d <= 0 { // cap, or shift overflowed
			return p.Max
		}
	}
	return min(d, p.Max)
}

// Backoff steps through a Policy. Not safe for concurrent use; every retry
// loop owns one.
type Backoff struct {
	p Policy
	n int
}

// New returns a Backoff at attempt zero.
func New(p Policy) *Backoff {
	return &Backoff{p: p.withDefaults()}
}

// Next returns the delay to wait before the next attempt and advances the
// schedule. With Jitter J the result is uniform in [(1−J)·step, step];
// with J = 0 it is exactly the capped-exponential step.
func (b *Backoff) Next() time.Duration {
	d := b.p.step(b.n)
	b.n++
	if b.p.Jitter > 0 {
		cut := time.Duration(b.p.Jitter * rand.Float64() * float64(d))
		d -= cut
	}
	return d
}

// Reset rewinds the schedule to the first attempt — call after a success,
// so the next failure starts over at Base.
func (b *Backoff) Reset() { b.n = 0 }

// Attempts reports how many delays Next has handed out since the last
// Reset.
func (b *Backoff) Attempts() int { return b.n }

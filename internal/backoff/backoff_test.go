package backoff

import (
	"testing"
	"time"
)

// Without jitter the schedule is the exact capped exponential: Base, 2·Base,
// 4·Base, …, Max, Max, …
func TestDeterministicSchedule(t *testing.T) {
	b := New(Policy{Base: 100 * time.Millisecond, Max: time.Second})
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w)
		}
	}
	if b.Attempts() != len(want) {
		t.Fatalf("Attempts() = %d, want %d", b.Attempts(), len(want))
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after Reset: got %v, want Base", got)
	}
}

// With jitter J every delay must stay within [(1−J)·step, step], and the
// step itself must never exceed Max.
func TestJitterBounds(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	b := New(p)
	for i := 0; i < 200; i++ {
		step := p.step(i)
		if step > p.Max {
			t.Fatalf("attempt %d: step %v exceeds Max %v", i, step, p.Max)
		}
		d := b.Next()
		lo := time.Duration((1 - p.Jitter) * float64(step))
		if d < lo || d > step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, lo, step)
		}
	}
}

// Zero values normalize to something sane rather than a busy-loop.
func TestZeroPolicyDefaults(t *testing.T) {
	b := New(Policy{})
	for i := 0; i < 5; i++ {
		if got := b.Next(); got != time.Second {
			t.Fatalf("attempt %d: got %v, want 1s default", i, got)
		}
	}
}

// Max below Base caps at Base; out-of-range Jitter is clamped.
func TestNormalization(t *testing.T) {
	b := New(Policy{Base: time.Minute, Max: time.Second})
	if got := b.Next(); got != time.Minute {
		t.Fatalf("Max<Base: got %v, want Base", got)
	}
	b = New(Policy{Base: time.Second, Max: time.Second, Jitter: 7})
	for i := 0; i < 50; i++ {
		if d := b.Next(); d < 0 || d > time.Second {
			t.Fatalf("clamped jitter: delay %v outside [0, 1s]", d)
		}
	}
}

// Deep attempt counts must not overflow into negative delays.
func TestOverflowSafety(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Hour}.withDefaults()
	for i := 0; i < 128; i++ {
		if d := p.step(i); d <= 0 || d > time.Hour {
			t.Fatalf("attempt %d: step %v out of range", i, d)
		}
	}
}

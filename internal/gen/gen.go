// Package gen generates deterministic synthetic public transportation
// networks with the structural characteristics of the paper's five inputs
// (DESIGN.md §2): dense city bus grids with pronounced rush hours and a
// night break (Oahu, Los Angeles, Washington D.C.) and sparse railway
// topologies with few departures per station (Germany, Europe).
//
// The paper's GTFS and HaCon datasets are not redistributable or available
// offline; the generator reproduces the properties the algorithms are
// sensitive to — connections-per-station density, route structure, and the
// daily departure-time distribution — at configurable scale. All generation
// is deterministic in the seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Kind distinguishes the two structural families.
type Kind int

const (
	// Bus generates a jittered grid with meandering high-frequency routes.
	Bus Kind = iota
	// Rail generates a geometric city network with long, infrequent lines.
	Rail
)

// Config parameterizes one synthetic network.
type Config struct {
	Name   string
	Kind   Kind
	Seed   int64
	Period timeutil.Ticks

	// Stations is the approximate number of stations (grid rounding may
	// adjust it slightly for Bus networks).
	Stations int
	// Routes is the number of directed routes to generate (each line of a
	// real network contributes two: one per direction).
	Routes int
	// RouteLen is the number of stations per route (mean; ±30% jitter).
	RouteLen int
	// TripsPerDay is the mean number of trips per route and day, spread
	// over the day by the Kind's frequency profile.
	TripsPerDay int
	// TransferMin/TransferMax bound per-station transfer times.
	TransferMin, TransferMax timeutil.Ticks
	// HopMin/HopMax bound per-hop travel times.
	HopMin, HopMax timeutil.Ticks
	// Dwell is the stop time at intermediate stations.
	Dwell timeutil.Ticks
}

// Family names the five network analogues of the paper's inputs.
type Family string

// The five families; see DESIGN.md §4 for the mapping to the paper's inputs.
const (
	Oahu       Family = "oahu"
	LosAngeles Family = "losangeles"
	Washington Family = "washington"
	Germany    Family = "germany"
	Europe     Family = "europe"
)

// Families returns all families in the paper's table order.
func Families() []Family {
	return []Family{Oahu, LosAngeles, Washington, Germany, Europe}
}

// FamilyConfig returns the default configuration of a family, scaled by
// scale (1.0 = the defaults in DESIGN.md §4; the paper's full-size networks
// correspond to roughly scale 10–17). Seed 0 picks the family default.
func FamilyConfig(f Family, scale float64, seed int64) (Config, error) {
	if scale <= 0 {
		return Config{}, fmt.Errorf("gen: non-positive scale %g", scale)
	}
	var cfg Config
	switch f {
	case Oahu:
		cfg = Config{
			Name: string(f), Kind: Bus, Stations: 400, Routes: 110, RouteLen: 13,
			TripsPerDay: 40, TransferMin: 1, TransferMax: 2, HopMin: 1, HopMax: 4, Dwell: 0,
		}
	case LosAngeles:
		cfg = Config{
			Name: string(f), Kind: Bus, Stations: 900, Routes: 230, RouteLen: 14,
			TripsPerDay: 36, TransferMin: 1, TransferMax: 3, HopMin: 1, HopMax: 4, Dwell: 0,
		}
	case Washington:
		cfg = Config{
			Name: string(f), Kind: Bus, Stations: 650, Routes: 160, RouteLen: 13,
			TripsPerDay: 36, TransferMin: 1, TransferMax: 3, HopMin: 1, HopMax: 4, Dwell: 0,
		}
	case Germany:
		cfg = Config{
			Name: string(f), Kind: Rail, Stations: 500, Routes: 140, RouteLen: 9,
			TripsPerDay: 24, TransferMin: 3, TransferMax: 6, HopMin: 8, HopMax: 45, Dwell: 1,
		}
	case Europe:
		cfg = Config{
			Name: string(f), Kind: Rail, Stations: 1500, Routes: 340, RouteLen: 9,
			TripsPerDay: 24, TransferMin: 3, TransferMax: 7, HopMin: 10, HopMax: 60, Dwell: 2,
		}
	default:
		return Config{}, fmt.Errorf("gen: unknown family %q", f)
	}
	cfg.Period = timeutil.DayMinutes
	cfg.Seed = seed
	if seed == 0 {
		cfg.Seed = int64(len(f))*7919 + 1
	}
	cfg.Stations = int(math.Round(float64(cfg.Stations) * scale))
	cfg.Routes = int(math.Round(float64(cfg.Routes) * scale))
	if cfg.Stations < 4 {
		cfg.Stations = 4
	}
	if cfg.Routes < 2 {
		cfg.Routes = 2
	}
	return cfg, nil
}

// hourlyWeights is a daily departure-frequency profile summing to 1.
type hourlyWeights [24]float64

func busProfile() hourlyWeights {
	w := hourlyWeights{
		0.8, 0.3, 0.15, 0.15, 0.4, 1.5, // 00–05: night break
		4, 7.5, 7.5, 5.5, 4.5, 4.5, // 06–11: morning rush
		4.5, 4.5, 5, 6, 7.5, 7.5, // 12–17: evening rush
		5.5, 4, 3, 2.2, 1.6, 1.2, // 18–23
	}
	return w.normalize()
}

func railProfile() hourlyWeights {
	w := hourlyWeights{
		0.4, 0.2, 0.2, 0.3, 0.8, 2, // sparse night trains
		3.5, 4.5, 4.5, 4, 4, 4,
		4, 4, 4, 4, 4.5, 4.5,
		4, 3.5, 2.5, 2, 1.2, 0.8,
	}
	return w.normalize()
}

func (w hourlyWeights) normalize() hourlyWeights {
	var sum float64
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generate builds the synthetic timetable for the configuration.
func Generate(cfg Config) (*timetable.Timetable, error) {
	if cfg.Stations < 4 || cfg.Routes < 1 || cfg.RouteLen < 2 || cfg.TripsPerDay < 1 {
		return nil, fmt.Errorf("gen: degenerate config %+v", cfg)
	}
	if cfg.Period <= 0 {
		cfg.Period = timeutil.DayMinutes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := timetable.NewBuilder(timeutil.NewPeriod(cfg.Period))

	var paths []pathSpec
	switch cfg.Kind {
	case Bus:
		paths = genBusTopology(cfg, rng, b)
	case Rail:
		paths = genRailTopology(cfg, rng, b)
	default:
		return nil, fmt.Errorf("gen: unknown kind %d", cfg.Kind)
	}

	profile := busProfile()
	if cfg.Kind == Rail {
		profile = railProfile()
	}

	// Per route: a fixed per-hop running time (so all trips share the
	// station sequence and similar speed), trips laid out by the profile.
	for ri, spec := range paths {
		path := spec.path
		hops := make([]timeutil.Ticks, len(path)-1)
		for h := range hops {
			hops[h] = cfg.HopMin + timeutil.Ticks(rng.Intn(int(cfg.HopMax-cfg.HopMin)+1))
		}
		trips := tripTimes(cfg, spec.tripFactor, profile, rng)
		for ti, dep := range trips {
			name := fmt.Sprintf("%s-r%d-t%d", cfg.Name, ri, ti)
			b.AddTrainRun(name, path, dep, hops, cfg.Dwell)
		}
	}
	return b.Build()
}

// pathSpec is a route's station sequence plus its relative trip frequency
// (1.0 = the configured TripsPerDay mean).
type pathSpec struct {
	path       []timetable.StationID
	tripFactor float64
}

// tripTimes spreads the route's trips over the day following the hourly
// profile, with small jitter, returning departure minutes. Trips are placed
// at quantiles of the cumulative profile, so even routes with very few
// daily trips (regional rail lines) get sensible departure times instead of
// losing them to per-hour rounding.
func tripTimes(cfg Config, factor float64, profile hourlyWeights, rng *rand.Rand) []timeutil.Ticks {
	total := int(math.Round(float64(cfg.TripsPerDay) * factor))
	if total < 1 {
		total = 1
	}
	// ±25% per-route variation keeps routes from being clones.
	total += rng.Intn(total/2+1) - total/4
	if total < 1 {
		total = 1
	}
	// Cumulative distribution over the 24 hours.
	var cum [25]float64
	for h := 0; h < 24; h++ {
		cum[h+1] = cum[h] + profile[h]
	}
	times := make([]timeutil.Ticks, 0, total)
	for j := 0; j < total; j++ {
		q := (float64(j) + 0.5) / float64(total) * cum[24]
		// Find the hour containing quantile q and interpolate within it.
		h := 0
		for h < 23 && cum[h+1] < q {
			h++
		}
		frac := 0.5
		if profile[h] > 0 {
			frac = (q - cum[h]) / profile[h]
		}
		m := int(float64(h*60) + frac*60)
		m += rng.Intn(9) - 4
		if m < 0 {
			m += int(cfg.Period)
		}
		t := timeutil.Ticks(m)
		if t >= cfg.Period {
			t -= cfg.Period
		}
		times = append(times, t)
	}
	return times
}

// genBusTopology builds a city bus network: a grid of intersection hubs
// whose connecting corridors are subdivided by intermediate stops served
// only by the lines running through that corridor — the degree structure of
// real bus networks (many degree-2 chain stops, few high-degree hubs),
// which is what makes transfer-station selection and local/via separation
// behave as in the paper. Coverage lines run along every row and column
// corridor (both directions, chunked to the route length); the remaining
// route budget is spent on meandering cross-town lines that share the same
// corridor stops.
func genBusTopology(cfg Config, rng *rand.Rand, b *timetable.Builder) []pathSpec {
	const sub = 3 // intermediate stops per corridor segment
	// stations ≈ w*h*(1+2*sub) ⇒ pick the intersection grid accordingly.
	cells := float64(cfg.Stations) / float64(1+2*sub)
	w := int(math.Round(math.Sqrt(cells * 1.4)))
	if w < 2 {
		w = 2
	}
	h := int(math.Round(cells / float64(w)))
	if h < 2 {
		h = 2
	}
	grid := make([][]timetable.StationID, h)
	for y := 0; y < h; y++ {
		grid[y] = make([]timetable.StationID, w)
		for x := 0; x < w; x++ {
			tr := cfg.TransferMin + timeutil.Ticks(rng.Intn(int(cfg.TransferMax-cfg.TransferMin)+1))
			grid[y][x] = b.AddStationAt(fmt.Sprintf("%s-x%d-%d", cfg.Name, x, y),
				tr, float64(x), float64(y))
		}
	}
	// Corridor stops between adjacent intersections, keyed by the lower
	// cell in reading order; hor[y][x] lies between (x,y) and (x+1,y).
	hor := make([][][]timetable.StationID, h)
	ver := make([][][]timetable.StationID, h)
	for y := 0; y < h; y++ {
		hor[y] = make([][]timetable.StationID, w)
		ver[y] = make([][]timetable.StationID, w)
		for x := 0; x < w; x++ {
			if x+1 < w {
				stops := make([]timetable.StationID, sub)
				for i := range stops {
					stops[i] = b.AddStationAt(fmt.Sprintf("%s-h%d-%d.%d", cfg.Name, x, y, i),
						cfg.TransferMin, float64(x)+float64(i+1)/float64(sub+1), float64(y))
				}
				hor[y][x] = stops
			}
			if y+1 < h {
				stops := make([]timetable.StationID, sub)
				for i := range stops {
					stops[i] = b.AddStationAt(fmt.Sprintf("%s-v%d-%d.%d", cfg.Name, x, y, i),
						cfg.TransferMin, float64(x), float64(y)+float64(i+1)/float64(sub+1))
				}
				ver[y][x] = stops
			}
		}
	}
	// expand turns an intersection sequence into the full stop sequence
	// through the corridors.
	expand := func(cells [][2]int) []timetable.StationID {
		var out []timetable.StationID
		for i, c := range cells {
			if i > 0 {
				p := cells[i-1]
				var stops []timetable.StationID
				var reversed bool
				switch {
				case p[1] == c[1] && p[0]+1 == c[0]:
					stops = hor[p[1]][p[0]]
				case p[1] == c[1] && p[0]-1 == c[0]:
					stops, reversed = hor[c[1]][c[0]], true
				case p[0] == c[0] && p[1]+1 == c[1]:
					stops = ver[p[1]][p[0]]
				case p[0] == c[0] && p[1]-1 == c[1]:
					stops, reversed = ver[c[1]][c[0]], true
				default:
					panic("gen: non-adjacent cells in corridor expansion")
				}
				if reversed {
					for j := len(stops) - 1; j >= 0; j-- {
						out = append(out, stops[j])
					}
				} else {
					out = append(out, stops...)
				}
			}
			out = append(out, grid[c[1]][c[0]])
		}
		return out
	}
	var paths []pathSpec
	addBoth := func(path []timetable.StationID, factor float64) {
		if len(path) < 2 {
			return
		}
		rev := make([]timetable.StationID, len(path))
		for i, s := range path {
			rev[len(path)-1-i] = s
		}
		paths = append(paths, pathSpec{path, factor}, pathSpec{rev, factor})
	}
	// Row and column lines cover every corridor.
	segLen := cfg.RouteLen * (sub + 1) // route length in expanded stops
	for y := 0; y < h; y++ {
		cells := make([][2]int, w)
		for x := 0; x < w; x++ {
			cells[x] = [2]int{x, y}
		}
		for _, seg := range chunkPath(expand(cells), segLen) {
			addBoth(seg, 1.0)
		}
	}
	for x := 0; x < w; x++ {
		cells := make([][2]int, h)
		for y := 0; y < h; y++ {
			cells[y] = [2]int{x, y}
		}
		for _, seg := range chunkPath(expand(cells), segLen) {
			addBoth(seg, 1.0)
		}
	}
	// Meandering cross-town lines.
	for len(paths) < cfg.Routes {
		length := jitterLen(cfg.RouteLen, rng)
		cells := walkCells(w, h, length, rng)
		if len(cells) < 2 {
			continue
		}
		addBoth(expand(cells), 1.0)
	}
	return paths
}

// walkCells walks a mostly-straight lattice path over the intersection
// grid with occasional turns.
func walkCells(w, h, length int, rng *rand.Rand) [][2]int {
	x, y := rng.Intn(w), rng.Intn(h)
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	d := rng.Intn(4)
	cells := [][2]int{{x, y}}
	seen := map[[2]int]bool{{x, y}: true}
	for len(cells) < length {
		if rng.Intn(5) == 0 {
			d = rng.Intn(4)
		}
		nx, ny := x+dirs[d][0], y+dirs[d][1]
		tries := 0
		for (nx < 0 || nx >= w || ny < 0 || ny >= h || seen[[2]int{nx, ny}]) && tries < 6 {
			d = rng.Intn(4)
			nx, ny = x+dirs[d][0], y+dirs[d][1]
			tries++
		}
		if nx < 0 || nx >= w || ny < 0 || ny >= h || seen[[2]int{nx, ny}] {
			break
		}
		x, y = nx, ny
		seen[[2]int{x, y}] = true
		cells = append(cells, [2]int{x, y})
	}
	return cells
}

// chunkPath splits a path into segments of at most routeLen stations that
// overlap by one station, so riders can transfer between consecutive
// segments of the same line.
func chunkPath(path []timetable.StationID, routeLen int) [][]timetable.StationID {
	if routeLen < 2 {
		routeLen = 2
	}
	var segs [][]timetable.StationID
	for lo := 0; lo < len(path)-1; lo += routeLen - 1 {
		hi := lo + routeLen
		if hi > len(path) {
			hi = len(path)
		}
		segs = append(segs, path[lo:hi])
		if hi == len(path) {
			break
		}
	}
	return segs
}

// genRailTopology scatters cities in the plane and guarantees strong
// connectivity with regional lines chunked from a walk of the Euclidean
// minimum spanning tree (each segment also runs reversed); the remaining
// route budget is spent on long express lines through the kNN city graph.
// Regional lines run a third of the express frequency, mirroring real rail
// timetables.
func genRailTopology(cfg Config, rng *rand.Rand, b *timetable.Builder) []pathSpec {
	n := cfg.Stations
	xs := make([]float64, n)
	ys := make([]float64, n)
	ids := make([]timetable.StationID, n)
	side := math.Sqrt(float64(n)) * 10
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64()*side, rng.Float64()*side
		tr := cfg.TransferMin + timeutil.Ticks(rng.Intn(int(cfg.TransferMax-cfg.TransferMin)+1))
		ids[i] = b.AddStationAt(fmt.Sprintf("%s-c%d", cfg.Name, i), tr, xs[i], ys[i])
	}
	dist2 := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return dx*dx + dy*dy
	}
	// Prim MST over the complete Euclidean graph.
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestTo := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		bestTo[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = dist2(0, j)
		bestTo[j] = 0
	}
	treeAdj := make([][]int, n)
	for added := 1; added < n; added++ {
		u, bd := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < bd {
				u, bd = j, best[j]
			}
		}
		inTree[u] = true
		treeAdj[u] = append(treeAdj[u], bestTo[u])
		treeAdj[bestTo[u]] = append(treeAdj[bestTo[u]], u)
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := dist2(u, j); d < best[j] {
					best[j] = d
					bestTo[j] = u
				}
			}
		}
	}
	// DFS walk of the tree (each edge traversed twice) → regional lines.
	walk := make([]timetable.StationID, 0, 2*n)
	visited := make([]bool, n)
	var dfs func(int)
	dfs = func(u int) {
		visited[u] = true
		walk = append(walk, ids[u])
		for _, v := range treeAdj[u] {
			if !visited[v] {
				dfs(v)
				walk = append(walk, ids[u])
			}
		}
	}
	dfs(0)
	var paths []pathSpec
	var regional int
	addBoth := func(path []timetable.StationID, factor float64) {
		if len(path) < 2 {
			return
		}
		rev := make([]timetable.StationID, len(path))
		for i, s := range path {
			rev[len(path)-1-i] = s
		}
		paths = append(paths, pathSpec{path, factor}, pathSpec{rev, factor})
	}
	const regionalFactor = 1.0 / 4
	for _, seg := range chunkPath(walk, cfg.RouteLen) {
		addBoth(seg, regionalFactor)
	}
	regional = len(paths)

	// kNN adjacency (k=3) plus tree edges for express-line walks.
	const k = 3
	adj := make([][]int, n)
	copy(adj, treeAdj)
	for i := range adj {
		adj[i] = append([]int(nil), treeAdj[i]...)
	}
	for i := 0; i < n; i++ {
		type cand struct {
			j int
			d float64
		}
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if i != j {
				cands = append(cands, cand{j, dist2(i, j)})
			}
		}
		for a := 0; a < k && a < len(cands); a++ {
			min := a
			for b := a + 1; b < len(cands); b++ {
				if cands[b].d < cands[min].d {
					min = b
				}
			}
			cands[a], cands[min] = cands[min], cands[a]
			adj[i] = append(adj[i], cands[a].j)
			adj[cands[a].j] = append(adj[cands[a].j], i)
		}
	}
	for i := range adj {
		m := map[int]bool{}
		var out []int
		for _, j := range adj[i] {
			if !m[j] {
				m[j] = true
				out = append(out, j)
			}
		}
		adj[i] = out
	}
	for len(paths)-regional < cfg.Routes {
		length := jitterLen(cfg.RouteLen, rng)
		start := rng.Intn(n)
		path := []timetable.StationID{ids[start]}
		cur, prev := start, -1
		for len(path) < length {
			next := -1
			cands := adj[cur]
			if len(cands) == 0 {
				break
			}
			for tries := 0; tries < 4; tries++ {
				c := cands[rng.Intn(len(cands))]
				if c != prev && !contains(path, ids[c]) {
					next = c
					break
				}
			}
			if next < 0 {
				break
			}
			prev, cur = cur, next
			path = append(path, ids[cur])
		}
		addBoth(path, 1.0)
	}
	return paths
}

func jitterLen(mean int, rng *rand.Rand) int {
	lo := mean - mean*3/10
	hi := mean + mean*3/10
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func contains(path []timetable.StationID, s timetable.StationID) bool {
	for _, p := range path {
		if p == s {
			return true
		}
	}
	return false
}

package gen

import (
	"math"
	"testing"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

func TestFamilyConfigKnown(t *testing.T) {
	for _, f := range Families() {
		cfg, err := FamilyConfig(f, 1.0, 0)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if cfg.Name != string(f) || cfg.Stations < 4 || cfg.Routes < 2 {
			t.Fatalf("%s: bad config %+v", f, cfg)
		}
	}
	if _, err := FamilyConfig("atlantis", 1, 0); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := FamilyConfig(Oahu, 0, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := FamilyConfig(Oahu, -1, 0); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestFamilyConfigScaling(t *testing.T) {
	small, _ := FamilyConfig(Oahu, 0.25, 0)
	big, _ := FamilyConfig(Oahu, 2.0, 0)
	if small.Stations >= big.Stations || small.Routes >= big.Routes {
		t.Fatalf("scaling broken: %+v vs %+v", small, big)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, _ := FamilyConfig(Oahu, 0.1, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumConnections() != b.NumConnections() || a.NumStations() != b.NumStations() {
		t.Fatal("generation is not deterministic in sizes")
	}
	for i := range a.Connections {
		if a.Connections[i] != b.Connections[i] {
			t.Fatalf("connection %d differs between runs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfgA, _ := FamilyConfig(Oahu, 0.1, 1)
	cfgB, _ := FamilyConfig(Oahu, 0.1, 2)
	a, _ := Generate(cfgA)
	b, _ := Generate(cfgB)
	if a.NumConnections() == b.NumConnections() {
		// Sizes could coincide; compare content.
		same := true
		for i := range a.Connections {
			if a.Connections[i] != b.Connections[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical networks")
		}
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	bad := []Config{
		{Stations: 2, Routes: 5, RouteLen: 5, TripsPerDay: 10},
		{Stations: 100, Routes: 0, RouteLen: 5, TripsPerDay: 10},
		{Stations: 100, Routes: 5, RouteLen: 1, TripsPerDay: 10},
		{Stations: 100, Routes: 5, RouteLen: 5, TripsPerDay: 0},
		{Stations: 100, Routes: 5, RouteLen: 5, TripsPerDay: 10, Kind: Kind(99), HopMin: 1, HopMax: 2, TransferMin: 1, TransferMax: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: degenerate config accepted", i)
		}
	}
}

// Bus families must be markedly denser (connections per station) than rail
// families — the property the paper's scalability discussion hinges on.
func TestDensityContrast(t *testing.T) {
	busCfg, _ := FamilyConfig(Oahu, 0.15, 0)
	railCfg, _ := FamilyConfig(Germany, 0.15, 0)
	bus, err := Generate(busCfg)
	if err != nil {
		t.Fatal(err)
	}
	rail, err := Generate(railCfg)
	if err != nil {
		t.Fatal(err)
	}
	bd, rd := bus.ConnectionsPerStation(), rail.ConnectionsPerStation()
	// At full scale the contrast is ≈6×; tiny test networks compress it.
	if bd < 2.5*rd {
		t.Fatalf("bus density %.1f not ≫ rail density %.1f", bd, rd)
	}
}

// The departure histogram must show rush hours for bus networks: the 07:00
// and 17:00 hours must each carry clearly more departures than 03:00.
func TestRushHourProfile(t *testing.T) {
	cfg, _ := FamilyConfig(Washington, 0.15, 0)
	tt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hist [24]int
	for _, c := range tt.Connections {
		hist[int(c.Dep)/60]++
	}
	if hist[7] < 5*hist[3] || hist[17] < 5*hist[3] {
		t.Fatalf("no rush-hour shape: %v", hist)
	}
}

func TestGeneratedNetworkIsValid(t *testing.T) {
	// Build() already validates; additionally check structural sanity for
	// all families at small scale.
	for _, f := range Families() {
		cfg, _ := FamilyConfig(f, 0.08, 0)
		tt, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tt.NumConnections() == 0 || tt.NumStations() == 0 {
			t.Fatalf("%s: empty network", f)
		}
		if len(tt.Routes()) < 2 {
			t.Fatalf("%s: only %d routes", f, len(tt.Routes()))
		}
		// Some station must have several outgoing connections, sorted.
		maxOut := 0
		for s := 0; s < tt.NumStations(); s++ {
			out := tt.Outgoing(timetable.StationID(s))
			if len(out) > maxOut {
				maxOut = len(out)
			}
			prev := timeutil.Ticks(-1)
			for _, id := range out {
				if d := tt.Connections[id].Dep; d < prev {
					t.Fatalf("%s: conn(S) unsorted at station %d", f, s)
				} else {
					prev = d
				}
			}
		}
		if maxOut < 4 {
			t.Fatalf("%s: max outgoing connections %d, too sparse to exercise the algorithm", f, maxOut)
		}
	}
}

// Default-scale family sizes should be within a factor ~2 of the DESIGN.md
// targets so the bench harness workloads stay meaningful.
func TestDefaultScaleSizes(t *testing.T) {
	targets := map[Family]struct{ stations, conns int }{
		Oahu:    {400, 140000},
		Germany: {500, 45000},
	}
	for f, want := range targets {
		cfg, _ := FamilyConfig(f, 1.0, 0)
		tt, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		gotS, gotC := tt.NumStations(), tt.NumConnections()
		if math.Abs(float64(gotS)-float64(want.stations)) > 0.5*float64(want.stations) {
			t.Errorf("%s: %d stations, target %d", f, gotS, want.stations)
		}
		if float64(gotC) < 0.4*float64(want.conns) || float64(gotC) > 2.5*float64(want.conns) {
			t.Errorf("%s: %d connections, target %d", f, gotC, want.conns)
		}
		t.Logf("%s: %v", f, tt.Stats())
	}
}

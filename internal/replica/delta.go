package replica

import (
	"encoding/binary"
	"fmt"

	"transit"
	"transit/internal/wal"
)

// wireVersion is the replication stream format version, carried in the
// hello frame. A follower refuses a version it does not speak rather than
// misparsing deltas.
const wireVersion = 1

// Frame type bytes — the first byte of every stream frame payload.
const (
	frameHello byte = 0 // [version u8][updater's current epoch u64]
	frameDelta byte = 1 // wal entry (epoch + ops) ++ touched block
)

// Delta is one epoch advance: the op batch that produced it plus the
// touched-connection set the updater computed applying it. The touched set
// doubles as a divergence detector — a follower applying the same ops to
// the same predecessor must compute the identical set, so a mismatch means
// its state has drifted and a full resync is due.
type Delta struct {
	Epoch   uint64
	Ops     []transit.DelayOp
	Touched []transit.TouchedConn
}

// encodeHello builds the hello frame payload announcing the updater's
// current epoch, sent once at the head of every stream connection.
func encodeHello(epoch uint64) []byte {
	buf := make([]byte, 0, 2+8)
	buf = append(buf, frameHello, wireVersion)
	return binary.LittleEndian.AppendUint64(buf, epoch)
}

// decodeHello parses a hello frame payload (type byte already verified).
func decodeHello(p []byte) (epoch uint64, err error) {
	if len(p) != 10 {
		return 0, fmt.Errorf("replica: hello frame is %d bytes, want 10", len(p))
	}
	if p[1] != wireVersion {
		return 0, fmt.Errorf("replica: stream speaks wire version %d, this build speaks %d", p[1], wireVersion)
	}
	return binary.LittleEndian.Uint64(p[2:10]), nil
}

// encodeDelta builds a delta frame payload: the type byte, the batch in the
// journal's entry encoding (the replica's stream reader and the journal's
// crash-recovery scan share the codec), then the touched block:
//
//	u32 ntouched | ntouched × (u32 conn | u32 train | u32 route | u32 from |
//	                           i32 oldDep | i32 newDep | u8 cancelled)
func encodeDelta(d Delta) []byte {
	entry := wal.EncodeEntry(wal.Entry{Epoch: d.Epoch, Ops: d.Ops})
	buf := make([]byte, 0, 1+len(entry)+4+25*len(d.Touched))
	buf = append(buf, frameDelta)
	buf = append(buf, entry...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Touched)))
	for _, t := range d.Touched {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.Conn)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.Train)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.Route)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.From)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.OldDep)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(t.NewDep)))
		var c byte
		if t.Cancelled {
			c = 1
		}
		buf = append(buf, c)
	}
	return buf
}

// decodeDelta parses a delta frame payload (type byte already verified).
func decodeDelta(p []byte) (Delta, error) {
	e, rest, err := wal.DecodeEntryPrefix(p[1:])
	if err != nil {
		return Delta{}, fmt.Errorf("replica: delta frame: %w", err)
	}
	d := Delta{Epoch: e.Epoch, Ops: e.Ops}
	if len(rest) < 4 {
		return Delta{}, fmt.Errorf("replica: delta frame: touched block truncated")
	}
	n := int(binary.LittleEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	if n > len(rest)/25 || len(rest) != 25*n {
		return Delta{}, fmt.Errorf("replica: delta frame: touched block is %d bytes for %d entries", len(rest), n)
	}
	if n > 0 {
		d.Touched = make([]transit.TouchedConn, n)
		for i := range d.Touched {
			b := rest[25*i:]
			d.Touched[i] = transit.TouchedConn{
				Conn:      int(int32(binary.LittleEndian.Uint32(b[0:4]))),
				Train:     int(int32(binary.LittleEndian.Uint32(b[4:8]))),
				Route:     int(int32(binary.LittleEndian.Uint32(b[8:12]))),
				From:      transit.StationID(int32(binary.LittleEndian.Uint32(b[12:16]))),
				OldDep:    transit.Ticks(int32(binary.LittleEndian.Uint32(b[16:20]))),
				NewDep:    transit.Ticks(int32(binary.LittleEndian.Uint32(b[20:24]))),
				Cancelled: b[24] != 0,
			}
		}
	}
	return d, nil
}

// Package replica is the replication subsystem behind tpserver's
// updater/replica split: one node ingests delays and does the expensive
// table maintenance, any number of stateless replicas serve queries from
// its stream of epoch deltas.
//
// The paper's economics make the split natural: preprocessing (distance
// tables) is hours of work, delay repair is near patch cost, and queries
// are read-only against an immutable snapshot. So the write side is a
// single Publisher that, after every applied batch, retains and fans out
// one Delta — the batch's ops in the journal's WAL entry encoding plus the
// touched-connection set the apply computed. The read side is a Follower
// that applies each delta through the registry's ordinary Apply path
// (journal, incremental table repair, atomic snapshot swap): a replica is
// just an updater whose only delay feed is the stream.
//
// # Wire format
//
// The stream (GET /v1/replication/stream?from=<epoch>) is an unbounded
// HTTP response of frames in the internal/wal frame format — u32 length,
// u32 CRC-32C, payload — so a dropped connection mid-frame is detected the
// same way a crash mid-append is: the torn frame fails its checksum and
// the reader reconnects. The first payload byte is the frame type: hello
// (the updater's current epoch, letting the replica compute its lag before
// the first delta) or delta (WAL entry ++ touched block).
//
// # Epoch contract
//
// Epochs advance by exactly 1 per applied batch on the updater, and the
// Follower refuses gaps, so a replica's epoch E means: byte-identical
// state to the updater at its epoch E. The touched set in every delta is
// the proof obligation — ApplyUpdates is deterministic, so the follower
// recomputes the identical set or knows its state has drifted and resyncs
// from the full snapshot.
//
// # Catch-up ladder
//
// A reconnecting replica resumes from the retention ring (cheap, the
// common case), falls back to the full snapshot when it has been away
// longer than the ring remembers (410 Gone), and keeps retrying with
// jittered capped backoff when the updater itself is behind (416) or
// unreachable. See docs/REPLICATION.md for the operational picture.
package replica

package replica

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"transit"
	"transit/internal/wal"
)

// subBuffer is each subscriber's delta channel depth. A subscriber that
// falls this many deltas behind the publisher is disconnected (its channel
// closed) rather than back-pressuring Apply; it reconnects and replays the
// gap from the retention ring.
const subBuffer = 64

// DefaultRetain is the default delta retention: how many epochs back a
// reconnecting follower can resume from the ring before being sent to the
// full snapshot (410 Gone).
const DefaultRetain = 1024

// Publisher is the updater side of replication: it retains the last N
// epoch deltas in a ring and fans each new one out to the connected stream
// subscribers. Publish is called from live.Registry's OnApply hook — under
// the apply lock, strictly increasing epochs — including during journal
// replay at boot, which seeds the ring with the journal's tail so replicas
// restarted alongside the updater can resume without a snapshot fetch.
type Publisher struct {
	// Snapshot, when set, serves GET /v1/replication/snapshot: it writes
	// the current full snapshot image and returns its epoch. Wired to
	// live.Registry.Persist.
	Snapshot func(w io.Writer) (uint64, error)
	// Logf, when set, receives subscriber lifecycle events.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ring   []Delta // oldest first; len ≤ retain
	retain int
	cur    uint64 // last published epoch (boot epoch before any Publish)
	closed bool
	subs   map[chan Delta]struct{}

	deltasSent      atomic.Uint64
	snapshotsServed atomic.Uint64
}

// NewPublisher returns a publisher whose stream starts after epoch — the
// registry's epoch at boot, before any journal replay. retain ≤ 0 selects
// DefaultRetain.
func NewPublisher(epoch uint64, retain int) *Publisher {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Publisher{
		retain: retain,
		cur:    epoch,
		subs:   make(map[chan Delta]struct{}),
	}
}

// Publish retains one epoch delta and fans it out. Epochs must arrive
// strictly increasing (the apply lock guarantees it); a publish after Close
// is dropped.
func (p *Publisher) Publish(epoch uint64, ops []transit.DelayOp, touched []transit.TouchedConn) {
	d := Delta{Epoch: epoch, Ops: ops, Touched: touched}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.cur = epoch
	p.ring = append(p.ring, d)
	if len(p.ring) > p.retain {
		p.ring = p.ring[len(p.ring)-p.retain:]
	}
	for ch := range p.subs {
		select {
		case ch <- d:
		default:
			// Subscriber fell subBuffer deltas behind: cut it loose rather
			// than block the apply path. It reconnects and replays the gap
			// from the ring (or the snapshot, if it stays away too long).
			delete(p.subs, ch)
			close(ch)
			p.logf("replica: dropping subscriber %d deltas behind", subBuffer)
		}
	}
}

// Epoch returns the last published epoch.
func (p *Publisher) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Floor returns the oldest epoch a stream can resume from: the oldest
// retained delta's epoch, or just past the current epoch when nothing is
// retained yet.
func (p *Publisher) Floor() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.floorLocked()
}

func (p *Publisher) floorLocked() uint64 {
	if len(p.ring) == 0 {
		return p.cur + 1
	}
	return p.ring[0].Epoch
}

// Subscribers returns the number of connected stream subscribers. Nil-safe:
// a server without replication reports 0.
func (p *Publisher) Subscribers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// DeltasSent returns the total deltas written to stream subscribers
// (backlog replays included). Nil-safe.
func (p *Publisher) DeltasSent() uint64 {
	if p == nil {
		return 0
	}
	return p.deltasSent.Load()
}

// SnapshotsServed returns the total full-snapshot downloads served.
// Nil-safe.
func (p *Publisher) SnapshotsServed() uint64 {
	if p == nil {
		return 0
	}
	return p.snapshotsServed.Load()
}

// Close disconnects every subscriber and rejects future ones. Publishes
// after Close are dropped. Call before http.Server.Shutdown — the streams
// are long-lived requests Shutdown would otherwise wait out.
func (p *Publisher) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for ch := range p.subs {
		delete(p.subs, ch)
		close(ch)
	}
}

// subscribe registers a new subscriber wanting deltas from epoch `from` on,
// returning its live channel plus the retained backlog in [from, cur]. The
// single lock section makes the hand-off exact: the backlog ends where the
// channel begins, no delta lost or duplicated. ok=false means from is below
// the retention floor (caller answers 410) or the publisher is closed.
func (p *Publisher) subscribe(from uint64) (ch chan Delta, backlog []Delta, cur uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || from < p.floorLocked() {
		return nil, nil, p.cur, false
	}
	for _, d := range p.ring {
		if d.Epoch >= from {
			backlog = append(backlog, d)
		}
	}
	ch = make(chan Delta, subBuffer)
	p.subs[ch] = struct{}{}
	return ch, backlog, p.cur, true
}

// unsubscribe removes ch if the publisher still owns it (Publish or Close
// may already have cut it loose — then the map no longer holds it and the
// channel is already closed).
func (p *Publisher) unsubscribe(ch chan Delta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, mine := p.subs[ch]; mine {
		delete(p.subs, ch)
		close(ch)
	}
}

// ServeStream handles GET /v1/replication/stream?from=<epoch>: an unbounded
// response of CRC-framed deltas — one hello frame announcing the current
// epoch, the retained backlog from <epoch> on, then every future delta as
// it is published, each frame flushed immediately. Ends only when the
// client goes away, the subscriber falls too far behind, or the publisher
// closes. A from below the retention floor gets 410 Gone (fetch the full
// snapshot instead); a from beyond the current epoch + 1 gets 416 (the
// client knows a future this updater never published).
func (p *Publisher) ServeStream(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "replication: bad or missing from=<epoch>", http.StatusBadRequest)
		return
	}
	if cur := p.Epoch(); from > cur+1 {
		http.Error(w, "replication: requested epoch beyond updater's "+strconv.FormatUint(cur, 10),
			http.StatusRequestedRangeNotSatisfiable)
		return
	}
	ch, backlog, cur, ok := p.subscribe(from)
	if !ok {
		http.Error(w, "replication: epoch beyond delta retention, fetch /v1/replication/snapshot",
			http.StatusGone)
		return
	}
	defer p.unsubscribe(ch)

	// The stream outlives any server write timeout by design; clear the
	// deadline for this response only. (No-op error for plain recorders.)
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	send := func(payload []byte) bool {
		if _, err := w.Write(wal.AppendFrame(nil, payload)); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !send(encodeHello(cur)) {
		return
	}
	for _, d := range backlog {
		if !send(encodeDelta(d)) {
			return
		}
		p.deltasSent.Add(1)
	}
	for {
		select {
		case d, open := <-ch:
			if !open {
				return // dropped as a laggard, or publisher closed
			}
			if !send(encodeDelta(d)) {
				return
			}
			p.deltasSent.Add(1)
		case <-r.Context().Done():
			return
		}
	}
}

// ServeSnapshot handles GET /v1/replication/snapshot: the current full
// snapshot image, for cold boots and followers beyond delta retention.
func (p *Publisher) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if p.Snapshot == nil {
		http.Error(w, "replication: snapshot serving not configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	if _, err := p.Snapshot(w); err != nil {
		// Headers are gone; all we can do is cut the response so the
		// client's LoadSnapshot fails its checksum instead of installing a
		// torn image.
		p.logf("replica: snapshot download failed mid-stream: %v", err)
		return
	}
	p.snapshotsServed.Add(1)
}

func (p *Publisher) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

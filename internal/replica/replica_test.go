package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"transit"
	"transit/internal/backoff"
	"transit/internal/live"
)

// hourlyNetwork: trains leave A hourly 06:00–22:00, reaching B after 30
// minutes; a second line B→C every hour on the half hour.
func hourlyNetwork(t testing.TB) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	c := tb.AddStation("C", 2)
	for h := 6; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("ab%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
		if err := tb.AddTrain(fmt.Sprintf("bc%02d", h), []transit.StationID{b, c},
			transit.Ticks(h*60+40), []transit.Ticks{25}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func arrival(t testing.TB, n *transit.Network, from, to transit.StationID, at transit.Ticks) transit.Ticks {
	t.Helper()
	arr, err := n.EarliestArrival(from, to, at, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d := Delta{
		Epoch: 42,
		Ops: []transit.DelayOp{
			{Train: "ab08", Routes: []int{1, 3}, WindowFrom: 100, WindowTo: 900, Delay: 20},
			{Train: "bc10", Cancel: true},
		},
		Touched: []transit.TouchedConn{
			{Conn: 7, Train: 2, Route: 1, From: 0, OldDep: 480, NewDep: 500},
			{Conn: 9, Train: 5, Route: 3, From: 1, OldDep: 640, NewDep: 640, Cancelled: true},
		},
	}
	got, err := decodeDelta(encodeDelta(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
	}

	// Empty ops and touched survive too.
	got, err = decodeDelta(encodeDelta(Delta{Epoch: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || len(got.Ops) != 0 || len(got.Touched) != 0 {
		t.Fatalf("empty delta round trip: %+v", got)
	}

	epoch, err := decodeHello(encodeHello(99))
	if err != nil || epoch != 99 {
		t.Fatalf("hello round trip: epoch %d err %v", epoch, err)
	}
}

func TestDeltaCodecRejectsDamage(t *testing.T) {
	raw := encodeDelta(Delta{Epoch: 3, Touched: []transit.TouchedConn{{Conn: 1}}})
	if _, err := decodeDelta(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated touched block decoded")
	}
	if _, err := decodeDelta(append(raw, 0)); err == nil {
		t.Fatal("oversized touched block decoded")
	}
	if _, err := decodeHello([]byte{frameHello, 99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("future wire version accepted")
	}
}

func TestPublisherRetentionAndFloor(t *testing.T) {
	p := NewPublisher(0, 3)
	if got := p.Floor(); got != 1 {
		t.Fatalf("empty floor %d, want 1", got)
	}
	for e := uint64(1); e <= 5; e++ {
		p.Publish(e, []transit.DelayOp{{Train: "x", Delay: 1}}, nil)
	}
	if got := p.Epoch(); got != 5 {
		t.Fatalf("epoch %d, want 5", got)
	}
	if got := p.Floor(); got != 3 {
		t.Fatalf("floor %d after retention, want 3", got)
	}
}

func pubServer(t testing.TB, p *Publisher) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/stream", p.ServeStream)
	mux.HandleFunc("GET /v1/replication/snapshot", p.ServeSnapshot)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestServeStreamStatusLadder(t *testing.T) {
	p := NewPublisher(10, 4)
	for e := uint64(11); e <= 14; e++ {
		p.Publish(e, nil, nil)
	}
	defer p.Close()
	srv := pubServer(t, p)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"from=bogus", http.StatusBadRequest},
		{"", http.StatusBadRequest},
		{"from=10", http.StatusGone},                         // below floor 11
		{"from=16", http.StatusRequestedRangeNotSatisfiable}, // beyond cur+1
	} {
		resp, err := http.Get(srv.URL + "/v1/replication/stream?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("?%s: got %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
}

// waitEpoch polls until the registry reaches epoch or the deadline passes.
func waitEpoch(t testing.TB, r *live.Registry, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if r.Snapshot().Epoch >= epoch {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("registry stuck at epoch %d, want %d", r.Snapshot().Epoch, epoch)
}

// updaterFixture builds an updater registry publishing through pub and an
// HTTP server exposing the replication endpoints.
func updaterFixture(t testing.TB, retain int) (*live.Registry, *Publisher, *httptest.Server) {
	t.Helper()
	pub := NewPublisher(0, retain)
	t.Cleanup(pub.Close)
	reg := live.NewRegistry(hourlyNetwork(t), live.Config{OnApply: pub.Publish})
	t.Cleanup(reg.Close)
	pub.Snapshot = reg.Persist
	pub.Logf = t.Logf
	return reg, pub, pubServer(t, pub)
}

func startFollower(t testing.TB, reg *live.Registry, baseURL string) *Follower {
	t.Helper()
	f := NewFollower(FollowerConfig{
		Registry: reg,
		BaseURL:  baseURL,
		Backoff:  backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5},
		Logf:     t.Logf,
	})
	f.Start()
	t.Cleanup(f.Stop)
	return f
}

func TestFollowerTracksUpdater(t *testing.T) {
	upd, _, srv := updaterFixture(t, 0)
	rep := live.NewRegistry(hourlyNetwork(t), live.Config{})
	defer rep.Close()
	f := startFollower(t, rep, srv.URL)

	if _, known := f.Lag(); known {
		// Might legitimately connect before we check; only assert the
		// value once known.
		if lag, _ := f.Lag(); lag != 0 {
			t.Fatalf("lag %d before any delta", lag)
		}
	}

	// Deltas applied before and after the follower connects both arrive.
	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab08", Delay: 20}}); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, rep, 1)
	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab09", Cancel: true}}); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, rep, 2)

	us, rs := upd.Snapshot(), rep.Snapshot()
	if us.Epoch != rs.Epoch {
		t.Fatalf("epochs diverged: updater %d, replica %d", us.Epoch, rs.Epoch)
	}
	for _, at := range []transit.Ticks{400, 480, 520, 560} {
		if u, r := arrival(t, us.Net, 0, 2, at), arrival(t, rs.Net, 0, 2, at); u != r {
			t.Fatalf("at %d: updater arrival %d, replica %d", at, u, r)
		}
	}
	if lag, known := f.Lag(); !known || lag != 0 {
		t.Fatalf("lag (%d, %v) after catch-up, want (0, true)", lag, known)
	}
	if f.SnapshotFetches() != 0 {
		t.Fatalf("%d snapshot fetches for in-retention follow", f.SnapshotFetches())
	}
	if f.DeltasApplied() != 2 {
		t.Fatalf("deltas applied %d, want 2", f.DeltasApplied())
	}
}

func TestFollowerSnapshotFallback(t *testing.T) {
	upd, pub, srv := updaterFixture(t, 2) // tiny retention window
	// Outrun retention before the follower ever connects: epochs 1–5
	// retained ⇒ floor 4, follower at 0 asks from=1 ⇒ 410.
	for i := 0; i < 5; i++ {
		train := fmt.Sprintf("ab%02d", 8+i)
		if _, _, err := upd.Apply([]transit.DelayOp{{Train: train, Delay: transit.Ticks(5 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	rep := live.NewRegistry(hourlyNetwork(t), live.Config{})
	defer rep.Close()
	f := startFollower(t, rep, srv.URL)
	waitEpoch(t, rep, 5)

	if f.SnapshotFetches() != 1 {
		t.Fatalf("snapshot fetches %d, want 1", f.SnapshotFetches())
	}
	if got := pub.SnapshotsServed(); got != 1 {
		t.Fatalf("snapshots served %d, want 1", got)
	}
	// After the resync the stream takes over again: a fresh delta arrives
	// without another snapshot fetch.
	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab20", Delay: 7}}); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, rep, 6)
	if f.SnapshotFetches() != 1 {
		t.Fatalf("snapshot fetches %d after resumed stream, want still 1", f.SnapshotFetches())
	}
	us, rs := upd.Snapshot(), rep.Snapshot()
	for _, at := range []transit.Ticks{480, 540, 1200} {
		if u, r := arrival(t, us.Net, 0, 1, at), arrival(t, rs.Net, 0, 1, at); u != r {
			t.Fatalf("at %d: updater arrival %d, replica %d", at, u, r)
		}
	}
}

func TestFollowerReconnectsAfterPublisherDrop(t *testing.T) {
	// The handler indirects through an atomic pointer so the test can
	// retire one publisher (closing its streams, as a restarting updater
	// does) and stand up a successor behind the same URL.
	var cur atomic.Pointer[Publisher]
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/stream", func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeStream(w, r)
	})
	mux.HandleFunc("GET /v1/replication/snapshot", func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeSnapshot(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	pub := NewPublisher(0, 0)
	upd := live.NewRegistry(hourlyNetwork(t), live.Config{
		OnApply: func(e uint64, ops []transit.DelayOp, touched []transit.TouchedConn) {
			cur.Load().Publish(e, ops, touched)
		},
	})
	defer upd.Close()
	pub.Snapshot = upd.Persist
	cur.Store(pub)

	rep := live.NewRegistry(hourlyNetwork(t), live.Config{})
	defer rep.Close()
	f := startFollower(t, rep, srv.URL)

	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab08", Delay: 3}}); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, rep, 1)

	// Cut every subscriber loose; the follower must come back for the next
	// delta on its own, against the successor publisher.
	next := NewPublisher(upd.Snapshot().Epoch, 0)
	next.Snapshot = upd.Persist
	cur.Store(next)
	pub.Close()
	defer next.Close()

	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab09", Delay: 4}}); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, rep, 2)
	if f.Reconnects() == 0 {
		t.Fatal("follower reached epoch 2 without counting a reconnect")
	}
}

func TestFetchSnapshotColdBoot(t *testing.T) {
	upd, _, srv := updaterFixture(t, 0)
	if _, _, err := upd.Apply([]transit.DelayOp{{Train: "ab08", Delay: 20}}); err != nil {
		t.Fatal(err)
	}
	net, st, err := FetchSnapshot(context.Background(), nil, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("cold-boot snapshot epoch %d, want 1", st.Epoch)
	}
	if got, want := arrival(t, net, 0, 1, 480), arrival(t, upd.Snapshot().Net, 0, 1, 480); got != want {
		t.Fatalf("cold-boot arrival %d, want %d", got, want)
	}
}

func TestPublisherSeededByJournalReplay(t *testing.T) {
	// OnApply fires during journal replay too, so a publisher created
	// before RecoverJournal holds the journal's tail in its ring. Covered
	// indirectly here by checking OnApply ordering under Apply.
	var epochs []uint64
	reg := live.NewRegistry(hourlyNetwork(t), live.Config{
		OnApply: func(e uint64, _ []transit.DelayOp, _ []transit.TouchedConn) { epochs = append(epochs, e) },
	})
	defer reg.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := reg.Apply([]transit.DelayOp{{Train: fmt.Sprintf("ab%02d", 8+i), Delay: 5}}); err != nil {
			t.Fatal(err)
		}
	}
	// A no-op batch must not publish.
	if _, _, err := reg.Apply([]transit.DelayOp{{Train: "no-such", Delay: 5}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []uint64{1, 2, 3}) {
		t.Fatalf("OnApply epochs %v, want [1 2 3]", epochs)
	}
}

package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"transit"
	"transit/internal/backoff"
	"transit/internal/live"
	"transit/internal/wal"
)

// DefaultBackoff is the follower's reconnect schedule: fast first retry,
// capped well below operator-reaction time, jittered so a fleet of
// replicas does not stampede a restarted updater.
var DefaultBackoff = backoff.Policy{Base: 500 * time.Millisecond, Max: 30 * time.Second, Jitter: 0.5}

// errResync reports a stream outcome that demands a full snapshot
// fetch: retention outrun (410), or local state diverged from the
// updater's touched-set.
var errResync = errors.New("replica: full resync required")

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Registry is the local registry deltas are applied into. Required.
	Registry *live.Registry
	// BaseURL is the updater's base URL, e.g. "http://updater:8080".
	// Required; trailing slash tolerated.
	BaseURL string
	// Client performs the stream and snapshot requests. Nil means a
	// default client with no overall timeout — the stream is long-lived.
	Client *http.Client
	// Backoff is the reconnect schedule; zero means DefaultBackoff.
	Backoff backoff.Policy
	// Logf, when set, receives connection lifecycle and divergence events.
	Logf func(format string, args ...any)
}

// Follower is the replica side of replication: a background loop that
// subscribes to the updater's delta stream from the local epoch, applies
// each delta through the registry's ordinary Apply path (journal, table
// repair, atomic swap — a replica IS an updater whose only feed client is
// the stream), verifies the updater's touched-set against its own, and
// falls back to a full snapshot install when it cannot catch up by deltas.
type Follower struct {
	cfg    FollowerConfig
	cancel context.CancelFunc
	done   chan struct{}

	// remote is the highest epoch the updater is known to have published
	// (hello frames and delta epochs); set once helloSeen.
	remoteMu  sync.Mutex
	remote    uint64
	helloSeen bool

	deltasApplied   atomic.Uint64
	reconnects      atomic.Uint64
	snapshotFetches atomic.Uint64
	divergences     atomic.Uint64
}

// NewFollower returns an unstarted follower.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Backoff == (backoff.Policy{}) {
		cfg.Backoff = DefaultBackoff
	}
	for len(cfg.BaseURL) > 0 && cfg.BaseURL[len(cfg.BaseURL)-1] == '/' {
		cfg.BaseURL = cfg.BaseURL[:len(cfg.BaseURL)-1]
	}
	return &Follower{cfg: cfg, done: make(chan struct{})}
}

// Start launches the follow loop. Call once.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go f.run(ctx)
}

// Stop aborts the in-flight stream request and waits for the loop to exit.
// Nil-safe and idempotent.
func (f *Follower) Stop() {
	if f == nil || f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
}

// Lag returns how many epochs the local registry trails the updater, and
// whether that is known yet (false until the first hello frame arrives —
// a replica that has never reached its updater must not claim to be
// caught up). Nil-safe: a non-follower reports (0, true).
func (f *Follower) Lag() (uint64, bool) {
	if f == nil {
		return 0, true
	}
	f.remoteMu.Lock()
	remote, seen := f.remote, f.helloSeen
	f.remoteMu.Unlock()
	if !seen {
		return 0, false
	}
	local := f.cfg.Registry.Snapshot().Epoch
	if local >= remote {
		return 0, true
	}
	return remote - local, true
}

// DeltasApplied returns the total stream deltas applied locally. Nil-safe.
func (f *Follower) DeltasApplied() uint64 {
	if f == nil {
		return 0
	}
	return f.deltasApplied.Load()
}

// Reconnects returns how many times the stream had to be re-established
// after a break (the first connection is free). Nil-safe.
func (f *Follower) Reconnects() uint64 {
	if f == nil {
		return 0
	}
	return f.reconnects.Load()
}

// SnapshotFetches returns the full snapshot downloads performed (resyncs
// after outrunning retention or diverging). Nil-safe.
func (f *Follower) SnapshotFetches() uint64 {
	if f == nil {
		return 0
	}
	return f.snapshotFetches.Load()
}

// Divergences returns how many deltas carried a touched-set different from
// the one computed locally — each one forced a full resync. Nil-safe.
func (f *Follower) Divergences() uint64 {
	if f == nil {
		return 0
	}
	return f.divergences.Load()
}

// noteRemote records evidence that the updater has published through epoch.
func (f *Follower) noteRemote(epoch uint64) {
	f.remoteMu.Lock()
	if epoch > f.remote {
		f.remote = epoch
	}
	f.helloSeen = true
	f.remoteMu.Unlock()
}

// run is the follow loop: stream until it breaks, reconnect with jittered
// capped backoff, resync from the full snapshot when the stream says so.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	retry := backoff.New(f.cfg.Backoff)
	first := true
	for {
		if ctx.Err() != nil {
			return
		}
		if !first {
			f.reconnects.Add(1)
		}
		first = false
		err := f.streamOnce(ctx)
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, errResync):
			if ierr := f.resync(ctx); ierr != nil {
				f.logf("replica: snapshot resync failed: %v", ierr)
			} else {
				retry.Reset()
				continue // resynced — reconnect immediately
			}
		case err != nil:
			f.logf("replica: stream to %s broke: %v", f.cfg.BaseURL, err)
		}
		select {
		case <-time.After(retry.Next()):
		case <-ctx.Done():
			return
		}
	}
}

// streamOnce opens one stream connection from the local epoch and applies
// deltas until it ends. A nil return means the stream closed cleanly
// (updater shutting down); errResync means deltas cannot get us there.
func (f *Follower) streamOnce(ctx context.Context) error {
	local := f.cfg.Registry.Snapshot().Epoch
	url := fmt.Sprintf("%s/v1/replication/stream?from=%d", f.cfg.BaseURL, local+1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Beyond the updater's delta retention: only the snapshot can
		// catch us up.
		f.logf("replica: epoch %d beyond updater retention, falling back to snapshot", local)
		return errResync
	case http.StatusRequestedRangeNotSatisfiable:
		// We know a future the updater never published — it restarted
		// having lost acked epochs. A snapshot cannot help (Install
		// refuses to rewind); keep retrying until the updater catches up
		// past us.
		return fmt.Errorf("replica: local epoch %d is ahead of updater", local)
	default:
		return fmt.Errorf("replica: stream request: %s", resp.Status)
	}

	for {
		payload, err := wal.ReadFrame(resp.Body)
		if err == io.EOF {
			return nil // clean close: updater shut down
		}
		if err != nil {
			return err
		}
		if len(payload) == 0 {
			return fmt.Errorf("replica: empty frame")
		}
		switch payload[0] {
		case frameHello:
			epoch, err := decodeHello(payload)
			if err != nil {
				return err
			}
			f.noteRemote(epoch)
		case frameDelta:
			d, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			if err := f.apply(d); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replica: unknown frame type %d", payload[0])
		}
	}
}

// apply applies one stream delta through the registry and cross-checks the
// result against the updater's.
func (f *Follower) apply(d Delta) error {
	local := f.cfg.Registry.Snapshot().Epoch
	if d.Epoch <= local {
		f.noteRemote(d.Epoch)
		return nil // duplicate from an overlapping backlog replay
	}
	if d.Epoch != local+1 {
		return fmt.Errorf("replica: stream jumped from epoch %d to %d", local, d.Epoch)
	}
	snap, st, err := f.cfg.Registry.Apply(d.Ops)
	if err != nil {
		return fmt.Errorf("replica: applying epoch %d: %w", d.Epoch, err)
	}
	if snap.Epoch != d.Epoch || !slices.Equal(st.Touched, d.Touched) {
		// The same ops on the same predecessor must touch the same
		// connections (ApplyUpdates is deterministic) — this state has
		// drifted from the updater's. Rebuild from the source of truth.
		f.divergences.Add(1)
		f.logf("replica: epoch %d diverged from updater (touched %d conns locally, %d upstream) — resyncing",
			d.Epoch, len(st.Touched), len(d.Touched))
		return errResync
	}
	f.deltasApplied.Add(1)
	f.noteRemote(d.Epoch)
	return nil
}

// resync downloads the updater's full snapshot and installs it wholesale.
func (f *Follower) resync(ctx context.Context) error {
	net, st, err := FetchSnapshot(ctx, f.cfg.Client, f.cfg.BaseURL)
	if err != nil {
		return err
	}
	f.snapshotFetches.Add(1)
	if err := f.cfg.Registry.Install(net, *st); err != nil {
		return err
	}
	f.noteRemote(st.Epoch)
	f.logf("replica: installed full snapshot at epoch %d", st.Epoch)
	return nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// FetchSnapshot downloads and decodes the updater's current full snapshot
// — the replica's cold-boot path, also used for mid-life resyncs.
func FetchSnapshot(ctx context.Context, client *http.Client, baseURL string) (*transit.Network, *transit.SnapshotState, error) {
	if client == nil {
		client = &http.Client{}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/replication/snapshot", nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("replica: snapshot download: %s", resp.Status)
	}
	net, st, err := transit.LoadSnapshot(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: snapshot download: %w", err)
	}
	return net, st, nil
}

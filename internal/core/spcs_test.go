package core

import (
	"testing"

	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

var day = timeutil.NewPeriod(1440)

// diamond builds a network where the fastest route to D depends on the
// departure time: A→B→D is fast in the morning, A→C→D in the evening.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 2)
	c := b.AddStation("C", 2)
	d := b.AddStation("D", 2)
	// Morning: via B, 30 min total.
	b.AddTrainRun("m1", []timetable.StationID{a, bb, d}, 480, []timeutil.Ticks{15, 15}, 0)
	b.AddTrainRun("m2", []timetable.StationID{a, bb, d}, 510, []timeutil.Ticks{15, 15}, 0)
	// Evening: via C, 20 min total.
	b.AddTrainRun("e1", []timetable.StationID{a, c, d}, 1000, []timeutil.Ticks{10, 10}, 0)
	b.AddTrainRun("e2", []timetable.StationID{a, c, d}, 1030, []timeutil.Ticks{10, 10}, 0)
	// A slow all-day line A→D directly, 90 min, hourly 6:00–22:00.
	for h := 6; h <= 22; h++ {
		b.AddTrainRun("slow", []timetable.StationID{a, d}, timeutil.Ticks(h*60), []timeutil.Ticks{90}, 0)
	}
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return graph.Build(tt)
}

func TestOneToAllDiamond(t *testing.T) {
	g := diamond(t)
	res, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 4+17 {
		t.Fatalf("conn(A) = %d, want 21", res.K())
	}
	prof, err := res.StationProfile(3) // D
	if err != nil {
		t.Fatal(err)
	}
	// Morning train at 480 arrives 510; evening at 1000 arrives 1020.
	if got := prof.EvalArrival(480); got != 510 {
		t.Errorf("depart 480 arrives %d, want 510", got)
	}
	if got := prof.EvalArrival(1000); got != 1020 {
		t.Errorf("depart 1000 arrives %d, want 1020", got)
	}
	// At 530 the next useful options are the slow 540 train (arr 630)
	// — the 510 morning train already left.
	if got := prof.EvalArrival(530); got != 630 {
		t.Errorf("depart 530 arrives %d, want 630", got)
	}
	// Unreached station: the profile to A itself contains the trivial
	// zero-wait arrival; just check sanity of the source profile.
	if got := res.EarliestArrival(0, 700); got != 700 {
		t.Errorf("self arrival = %d, want 700 (already there)", got)
	}
}

func TestSelfPruningReducesWork(t *testing.T) {
	g := diamond(t)
	with, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := OneToAll(g, 0, Options{DisableSelfPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Run.Total.SettledConns >= without.Run.Total.SettledConns {
		t.Fatalf("self-pruning did not reduce settled connections: %d vs %d",
			with.Run.Total.SettledConns, without.Run.Total.SettledConns)
	}
	// Both must produce identical profiles.
	for s := timetable.StationID(0); int(s) < g.TT.NumStations(); s++ {
		pw, err1 := with.StationProfile(s)
		po, err2 := without.StationProfile(s)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for tau := timeutil.Ticks(0); tau < 1440; tau += 31 {
			if pw.EvalArrival(tau) != po.EvalArrival(tau) {
				t.Fatalf("station %d: profiles differ at %d", s, tau)
			}
		}
	}
}

// The cornerstone equivalence: for every departure time, evaluating the
// profile must give exactly the time-query answer.
func TestProfileMatchesTimeQuery(t *testing.T) {
	for _, fam := range []gen.Family{gen.Oahu, gen.Germany} {
		cfg, err := gen.FamilyConfig(fam, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Build(tt)
		sources := []timetable.StationID{0, timetable.StationID(tt.NumStations() / 2)}
		for _, src := range sources {
			res, err := OneToAll(g, src, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 177 {
				tq, err := TimeQuery(g, src, tau, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for s := 0; s < tt.NumStations(); s += 7 {
					st := timetable.StationID(s)
					want := tq.StationArrival(st)
					got := res.EarliestArrival(st, tau)
					if got != want {
						t.Fatalf("%s: src %d → %d at τ=%d: profile says %d, time-query says %d",
							fam, src, st, tau, got, want)
					}
				}
			}
		}
	}
}

// Label-correcting and connection-setting must agree on every station
// profile, while CS settles far fewer connections.
func TestLCAgreesWithCS(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Oahu, 0.04, 5)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	src := timetable.StationID(1)
	cs, err := OneToAll(g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := LabelCorrecting(g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tt.NumStations(); s += 3 {
		st := timetable.StationID(s)
		pc, err1 := cs.StationProfile(st)
		pl, err2 := lc.StationProfile(st)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for tau := timeutil.Ticks(0); tau < 1440; tau += 97 {
			if pc.EvalArrival(tau) != pl.EvalArrival(tau) {
				t.Fatalf("station %d at τ=%d: CS %d vs LC %d", s, tau,
					pc.EvalArrival(tau), pl.EvalArrival(tau))
			}
		}
	}
	if cs.Run.Total.SettledConns >= lc.Run.Total.SettledConns {
		t.Errorf("CS settled %d ≥ LC settled %d; the paper's Table 1 gap is missing",
			cs.Run.Total.SettledConns, lc.Run.Total.SettledConns)
	}
	t.Logf("CS settled %d, LC settled %d (ratio %.1f)",
		cs.Run.Total.SettledConns, lc.Run.Total.SettledConns,
		float64(lc.Run.Total.SettledConns)/float64(cs.Run.Total.SettledConns))
}

// Parallel execution must produce exactly the same profiles as sequential
// for every partition strategy and thread count.
func TestParallelEquivalence(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Washington, 0.04, 9)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	src := timetable.StationID(2)
	seq, err := OneToAll(g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 4, 8} {
		for _, strat := range []PartitionStrategy{EqualConnections, EqualTimeSlots, KMeans} {
			par, err := OneToAll(g, src, Options{Threads: p, Partition: strat})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Run.PerThread) < 1 {
				t.Fatalf("p=%d %v: no per-thread counters", p, strat)
			}
			for s := 0; s < tt.NumStations(); s += 5 {
				st := timetable.StationID(s)
				ps, err1 := seq.StationProfile(st)
				pp, err2 := par.StationProfile(st)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				for tau := timeutil.Ticks(0); tau < 1440; tau += 113 {
					if ps.EvalArrival(tau) != pp.EvalArrival(tau) {
						t.Fatalf("p=%d %v station %d τ=%d: %d vs %d", p, strat, s, tau,
							ps.EvalArrival(tau), pp.EvalArrival(tau))
					}
				}
			}
		}
	}
}

// Across-thread self-pruning is lost, so total settled work may grow with
// p — but only moderately (the paper reports ≈10–20% up to 8 cores).
func TestParallelWorkGrowth(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Oahu, 0.08, 3)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	seq, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OneToAll(g, 0, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	growth := float64(par.Run.Total.SettledConns) / float64(seq.Run.Total.SettledConns)
	if growth < 1.0 {
		t.Fatalf("parallel settled fewer connections than sequential: growth %.2f", growth)
	}
	if growth > 2.0 {
		t.Fatalf("work grew %.2f× on 8 threads; expected moderate growth", growth)
	}
	t.Logf("work growth at p=8: %.3f; ideal speed-up %.2f", growth, par.IdealSpeedupOver(seq))
}

func TestOneToAllErrors(t *testing.T) {
	g := diamond(t)
	if _, err := OneToAll(g, -1, Options{}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := OneToAll(g, 99, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := OneToAll(g, 0, Options{HeapArity: 3}); err == nil {
		t.Error("bad heap arity accepted")
	}
	if _, err := OneToAll(g, 0, Options{Partition: PartitionStrategy(9)}); err == nil {
		t.Error("bad partition strategy accepted")
	}
	if _, err := TimeQuery(g, 0, -5, Options{}); err == nil {
		t.Error("negative departure accepted")
	}
	if _, err := TimeQuery(g, 77, 0, Options{}); err == nil {
		t.Error("bad source accepted by TimeQuery")
	}
	if _, err := LabelCorrecting(g, 44, Options{}); err == nil {
		t.Error("bad source accepted by LabelCorrecting")
	}
	if _, err := LabelCorrecting(g, 0, Options{TrackParents: true}); err == nil {
		t.Error("LC parent tracking accepted")
	}
}

func TestHeapArityEquivalence(t *testing.T) {
	g := diamond(t)
	bin, err := OneToAll(g, 0, Options{HeapArity: 2})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := OneToAll(g, 0, Options{HeapArity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := timetable.StationID(0); int(s) < 4; s++ {
		for tau := timeutil.Ticks(0); tau < 1440; tau += 61 {
			if bin.EarliestArrival(s, tau) != quad.EarliestArrival(s, tau) {
				t.Fatalf("heap arity changed results at station %d τ=%d", s, tau)
			}
		}
	}
}

func TestJourneyExtraction(t *testing.T) {
	g := diamond(t)
	res, err := OneToAll(g, 0, Options{TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find the connection index of the 480 morning departure.
	idx := -1
	for i, d := range res.Deps {
		if d == 480 && g.TT.Connections[res.Conns[i]].To == 1 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("morning departure not found in conn(A)")
	}
	rides, err := res.JourneyConnections(3, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rides) != 2 {
		t.Fatalf("journey has %d rides, want 2 (A→B, B→D): %v", len(rides), rides)
	}
	c0, c1 := g.TT.Connections[rides[0]], g.TT.Connections[rides[1]]
	if c0.From != 0 || c0.To != 1 || c1.From != 1 || c1.To != 3 {
		t.Fatalf("journey path wrong: %+v %+v", c0, c1)
	}
	if c0.Dep != 480 || c1.Arr != 510 {
		t.Fatalf("journey times wrong: dep %d arr %d", c0.Dep, c1.Arr)
	}
	// Errors.
	if _, err := res.JourneyConnections(3, 9999); err == nil {
		t.Error("out-of-range connection accepted")
	}
	noparents, _ := OneToAll(g, 0, Options{})
	if _, err := noparents.JourneyConnections(3, idx); err == nil {
		t.Error("journey without parent tracking accepted")
	}
}

// Interval search (Dean [5]): the window-restricted profile must equal the
// full profile on window departures, contain no points outside the window,
// and do less work.
func TestOneToAllWindow(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Oahu, 0.05, 19)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	full, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	from, to := timeutil.Ticks(420), timeutil.Ticks(600) // 07:00–10:00
	win, err := OneToAllWindow(g, 0, from, to, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if win.Run.Total.SettledConns >= full.Run.Total.SettledConns {
		t.Fatalf("window search did not save work: %d vs %d",
			win.Run.Total.SettledConns, full.Run.Total.SettledConns)
	}
	for _, d := range win.Deps {
		if d < from || d > to {
			t.Fatalf("seed departure %d outside window", d)
		}
	}
	for s := 1; s < tt.NumStations(); s += 4 {
		st := timetable.StationID(s)
		fw, err1 := win.StationProfile(st)
		ff, err2 := full.StationProfile(st)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		// Every window profile point must match the full profile value.
		for _, pt := range fw.Points() {
			if got, want := fw.EvalArrival(pt.Dep), ff.EvalArrival(pt.Dep); got < want {
				t.Fatalf("window better than full at station %d dep %d: %d vs %d", s, pt.Dep, got, want)
			}
		}
		// Departing inside the window, both agree wherever the full
		// optimum also departs inside the window.
		for tau := from; tau <= to; tau += 37 {
			wa, fa := fw.EvalArrival(tau), ff.EvalArrival(tau)
			if wa < fa {
				t.Fatalf("window profile beats full profile at %d", tau)
			}
		}
	}
	if _, err := OneToAllWindow(g, 0, 600, 420, Options{}); err == nil {
		t.Fatal("inverted window accepted")
	}
}

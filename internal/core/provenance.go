package core

import (
	"fmt"

	"transit/internal/dtable"
	"transit/internal/graph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// rowProvenance summarizes a one-to-all result into the per-row repair
// provenance of internal/dtable (see dtable.RowProvenance for the model and
// docs/PREPROCESSING.md for why each part is sound):
//
//   - Used: trains ridden by the recorded parent-chain journey of every
//     settled label at every target station. The sweep marks visited
//     (node, i) pairs with a workspace stamp array, so shared chain
//     suffixes are walked once and the total work is O(settled labels).
//
//   - Reach: per route, the bucketed settled arrival times at the route's
//     ride-edge tail nodes (the last node of a route has no Ride edge and
//     is skipped).
//
//   - Walk: the sorted key set of the search's walk-distance map.
//
// The result must still be live on this workspace (no later query run).
func (ws *Workspace) rowProvenance(r *ProfileResult, targets []timetable.StationID) (*dtable.RowProvenance, error) {
	if !r.hasParents {
		return nil, fmt.Errorf("core: row provenance requires Options.TrackParents")
	}
	g, tt := r.g, r.g.TT
	numRoutes := g.NumRoutes()
	numTrains := tt.NumTrains()
	const reachWords = dtable.ReachBuckets / 64
	k := len(r.Conns)
	prov := &dtable.RowProvenance{
		Used:  make([]uint64, (numTrains+63)/64),
		Reach: make([]uint64, numRoutes*reachWords),
	}

	prov.Walk = make([]timetable.StationID, 0, len(r.walk))
	for s := range r.walk {
		prov.Walk = append(prov.Walk, s)
	}
	sortStations(prov.Walk)

	period := tt.Period
	piLen := int(period.Len())
	for ri := 0; ri < numRoutes; ri++ {
		first, n := g.RouteNodeSpan(ri)
		reach := prov.Reach[ri*reachWords : (ri+1)*reachWords]
		for p := 0; p+1 < n; p++ { // skip the last node: no Ride edge out
			base := r.label(first+graph.NodeID(p), 0)
			for i := 0; i < k; i++ {
				if r.arrGen[base+i] == r.gen {
					b := int(period.Wrap(r.arr[base+i])) * dtable.ReachBuckets / piLen
					reach[b/64] |= 1 << (uint(b) % 64)
				}
			}
		}
	}

	ws.provGen = growU32(ws.provGen, len(r.arrGen))
	visited := ws.provGen
	for _, t := range targets {
		v0 := g.StationNode(t)
		for i := 0; i < k; i++ {
			if r.arrGen[r.label(v0, i)] != r.gen {
				continue
			}
			for v := v0; ; {
				li := r.label(v, i)
				if visited[li] == r.gen {
					break
				}
				visited[li] = r.gen
				p, c := r.parentAt(li)
				if p == graph.NoNode {
					break
				}
				if c >= 0 {
					z := tt.Connections[c].Train
					prov.Used[int(z)/64] |= 1 << (uint(z) % 64)
				}
				v = p
			}
		}
	}
	return prov, nil
}

// sortStations sorts a small station slice in place (insertion sort: walk
// sets are tiny).
func sortStations(s []timetable.StationID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// rowSearcher adapts a pooled workspace to dtable's per-worker searcher:
// each Build/Repair worker owns one, so the O(n·k) search arrays are reused
// across all rows the worker processes, and Close returns the workspace to
// the package pool.
type rowSearcher struct {
	ws         *Workspace
	g          *graph.Graph
	opts       Options
	provenance bool
}

// provRowResult is the search result when provenance extraction is on; it
// implements dtable.RowProvenancer.
type provRowResult struct {
	s   *rowSearcher
	res *ProfileResult
}

func (r provRowResult) StationProfile(t timetable.StationID) (*ttf.Function, error) {
	return r.res.StationProfile(t)
}

func (r provRowResult) RowProvenance(targets []timetable.StationID) (*dtable.RowProvenance, error) {
	return r.s.ws.rowProvenance(r.res, targets)
}

func (s *rowSearcher) Search(source timetable.StationID) (dtable.StationProfiler, error) {
	res, err := s.ws.OneToAll(s.g, source, s.opts)
	if err != nil {
		return nil, err
	}
	if s.provenance {
		return provRowResult{s: s, res: res}, nil
	}
	return res, nil
}

// SearchWindow runs the interval profile search (departures in [from, to])
// for dtable's windowed row repair. Repair results never carry provenance
// (repaired tables are derived), so the plain result is returned.
func (s *rowSearcher) SearchWindow(source timetable.StationID, from, to timeutil.Ticks) (dtable.StationProfiler, error) {
	return s.ws.OneToAllWindow(s.g, source, from, to, s.opts)
}

func (s *rowSearcher) Close() { PutWorkspace(s.ws) }

// searchFactory returns the dtable worker factory over pooled workspaces.
// With provenance on, searches track parent links (needed for the Used
// sweep) and results implement dtable.RowProvenancer.
func searchFactory(g *graph.Graph, opts Options, provenance bool) dtable.SearchFactory {
	if provenance {
		opts.TrackParents = true
	}
	return func() (dtable.RowSearcher, error) {
		return &rowSearcher{ws: GetWorkspace(), g: g, opts: opts, provenance: provenance}, nil
	}
}

// Package core implements the paper's algorithms: the time-query
// (time-dependent Dijkstra), the label-correcting profile-search baseline,
// the self-pruning connection-setting (SPCS) one-to-all profile search of
// Section 3, its parallelization, and the station-to-station query of
// Section 4 with stopping criterion, distance-table pruning and target
// pruning.
//
// # Workspaces and generation-stamped labels
//
// The paper reports per-query times in the low milliseconds because its
// C++ implementation keeps every search data structure alive between
// queries, once per thread. This package reproduces that discipline with
// the Workspace type: a bundle owning the label arrays (arr, settled,
// maxconn, parents), the pruning state (µ, γ, ancestor flags), the seed
// scratch (conn(S) and walk distances) and the priority queues of
// internal/pq, with one workerSpace per search thread.
//
// Resetting a workspace between queries is O(1), not O(numNodes·k): each
// resettable slot carries a uint32 generation stamp, and a query begins by
// incrementing the workspace generation. A label is "Infinity", a node
// "unsettled", maxconn "-1" and a queue position "absent" unless its stamp
// equals the current generation, so the previous query's data simply
// becomes invisible instead of being swept. Stamps wrap around once every
// 2^32 queries, at which point (and only then) one real sweep runs.
//
// # Lifecycle
//
// A Workspace serves one query at a time and is not safe for concurrent
// use. There are two ways to run a query:
//
//   - Workspace methods (Workspace.OneToAll, Workspace.StationToStation,
//     Workspace.TimeQuery, CSASchedule.QueryWS): zero steady-state
//     allocations; the result borrows workspace memory and is valid only
//     until the next query on the same workspace. Check workspaces out of
//     the package pool with GetWorkspace/PutWorkspace — this is what a
//     server does per request goroutine — or keep one per worker.
//
//   - Package-level functions (OneToAll, StationToStation, TimeQuery,
//     LabelCorrecting, CSASchedule.Query): self-contained results. Big
//     results (profile searches) bind a private workspace that lives and
//     dies with the result; small results (station-to-station) run on a
//     pooled workspace and are detached by a copy of their O(k) vectors.
//
// The stopping criterion's cross-thread state (stopState) packs a
// connection index and an arrival into one atomic word; the arrival half
// relies on timeutil.Ticks being 32-bit, which is asserted at compile time
// in query.go.
package core

package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"transit/internal/dtable"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// QueryEnv bundles the static data a station-to-station query runs against.
// Graph is mandatory; StationGraph and Table enable the Section 4 prunings
// when present (both must be set together).
type QueryEnv struct {
	Graph        *graph.Graph
	StationGraph *stationgraph.Graph
	Table        *dtable.Table
}

// QueryOptions extends Options with the Section 4 switches (all prunings
// are on whenever their prerequisites are available; the Disable* fields
// exist for ablations).
type QueryOptions struct {
	Options
	// DisableStoppingCriterion turns off Theorem 2 pruning.
	DisableStoppingCriterion bool
	// DisableTablePruning turns off Theorem 3 pruning even when a distance
	// table is present.
	DisableTablePruning bool
	// DisableTargetPruning turns off Theorem 4 pruning even when the
	// target is a transfer station.
	DisableTargetPruning bool
}

// StationQueryResult is the profile of an S–T station-to-station query:
// arr(T, i) for every outgoing connection i of S.
type StationQueryResult struct {
	Source timetable.StationID
	Target timetable.StationID
	// Conns and Deps describe conn(S) as in ProfileResult.
	Conns []timetable.ConnID
	Deps  []timeutil.Ticks
	// ArrT[i] is the arrival time at T when starting with connection i
	// (Infinity when pruned as useless or unreachable).
	ArrT []timeutil.Ticks
	// WalkOnly is the pure walking time from S to T over footpaths
	// (Infinity when not walkable).
	WalkOnly timeutil.Ticks
	// Local reports whether S ∈ local(T) (distance-table pruning skipped).
	Local bool
	// TableHit reports that both endpoints were transfer stations and the
	// result was read directly from the distance table without a search.
	TableHit bool
	Run      stats.Run

	period timeutil.Period
}

// Profile reduces ArrT into dist(S, T, ·).
func (r *StationQueryResult) Profile() (*ttf.Function, error) {
	return ttf.FromArrivals(r.period, r.Deps, r.ArrT)
}

// EarliestArrival evaluates the query profile for a departure at the
// absolute time at, walking all the way when that is faster.
func (r *StationQueryResult) EarliestArrival(at timeutil.Ticks) timeutil.Ticks {
	if r.Source == r.Target {
		return at
	}
	best := timeutil.Infinity
	if !r.WalkOnly.IsInf() {
		best = at + r.WalkOnly
	}
	f, err := r.Profile()
	if err != nil {
		return best
	}
	if a := f.EvalArrival(at); a < best {
		best = a
	}
	return best
}

// stopState is the shared stopping-criterion state (Theorem 2), packed for
// a single atomic word: upper 32 bits hold Tm+1 (0 = none yet), lower 32
// the arrival time arr(T, Tm) at which it was settled. Cross-thread use
// additionally compares keys against that arrival, which is what makes the
// sequential argument ("q was settled after q′") carry over to independent
// per-thread queues.
type stopState struct {
	v atomic.Uint64
}

func (s *stopState) observeTargetSettle(i int, arr timeutil.Ticks) {
	for {
		cur := s.v.Load()
		curIdx := int64(cur>>32) - 1
		if int64(i) <= curIdx {
			return
		}
		next := uint64(uint32(i+1))<<32 | uint64(uint32(arr))
		if s.v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// shouldPrune reports whether entry (·, i) popped with the given key is
// dominated per Theorem 2.
func (s *stopState) shouldPrune(i int, key timeutil.Ticks) bool {
	cur := s.v.Load()
	curIdx := int64(cur>>32) - 1
	if curIdx < 0 || int64(i) > curIdx {
		return false
	}
	arr := timeutil.Ticks(int32(uint32(cur)))
	return key >= arr
}

// StationToStation answers an S–T profile query with the accelerations of
// Section 4: the stopping criterion, and — when env carries a station graph
// and distance table — pruning via the distance table for global queries
// plus target pruning when T is a transfer station.
func StationToStation(env QueryEnv, source, target timetable.StationID, opts QueryOptions) (*StationQueryResult, error) {
	g := env.Graph
	if g == nil {
		return nil, fmt.Errorf("core: QueryEnv.Graph is nil")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ns := g.TT.NumStations()
	if int(source) < 0 || int(source) >= ns || int(target) < 0 || int(target) >= ns {
		return nil, fmt.Errorf("core: invalid station pair (%d, %d)", source, target)
	}
	if (env.Table == nil) != (env.StationGraph == nil) {
		return nil, fmt.Errorf("core: StationGraph and Table must be provided together")
	}
	start := time.Now()

	walk := walkDistances(g.TT, source)
	connIDs, deps := extendedConns(g.TT, source, walk)
	res := &StationQueryResult{
		Source:   source,
		Target:   target,
		Conns:    connIDs,
		Deps:     deps,
		WalkOnly: distOrInf(walk, target),
		period:   g.TT.Period,
	}
	k := len(res.Conns)
	res.ArrT = make([]timeutil.Ticks, k)
	for i := range res.ArrT {
		res.ArrT[i] = timeutil.Infinity
	}

	useTable := env.Table != nil && !opts.DisableTablePruning
	var vias *stationgraph.Vias
	if env.Table != nil {
		// Both endpoints transfer stations: the table already holds all
		// best connections from S to T (Section 4, Special Cases).
		if env.Table.IsTransfer(source) && env.Table.IsTransfer(target) && !opts.DisableTablePruning {
			for i := range res.ArrT {
				res.ArrT[i] = env.Table.D(source, target, res.Deps[i])
			}
			res.TableHit = true
			res.Run.Elapsed = time.Since(start)
			res.Run.PerThread = []stats.Counters{{}}
			return res, nil
		}
		// Determine via(T) on the fly; the DFS also classifies the query.
		isTransfer := make([]bool, ns)
		for _, s := range env.Table.Stations() {
			isTransfer[s] = true
		}
		vias = env.StationGraph.ComputeVias(target, isTransfer)
		res.Local = vias.IsLocalSource(source)
	}

	q := &s2sQuery{
		g:          g,
		res:        res,
		opts:       opts,
		target:     target,
		targetNode: g.StationNode(target),
	}
	if useTable && !res.Local && len(vias.Via) > 0 {
		q.table = env.Table
		q.vias = vias.Via
		q.targetIsTransfer = env.Table.IsTransfer(target) && !opts.DisableTargetPruning
	}

	p := opts.threads()
	bounds := partition(res.Deps, g.TT.Period, p, opts.Partition)
	nw := len(bounds) - 1
	workers := make([]*s2sWorker, nw)
	for t := 0; t < nw; t++ {
		workers[t] = newS2SWorker(q, bounds[t], bounds[t+1])
	}
	if nw == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *s2sWorker) {
				defer wg.Done()
				w.run()
			}(w)
		}
		wg.Wait()
	}
	res.Run.PerThread = make([]stats.Counters, nw)
	for t, w := range workers {
		res.Run.PerThread[t] = w.counters
		res.Run.Total.Add(w.counters)
	}
	res.Run.Elapsed = time.Since(start)
	return res, nil
}

// s2sQuery is the per-query shared state of all workers.
type s2sQuery struct {
	g          *graph.Graph
	res        *StationQueryResult
	opts       QueryOptions
	target     timetable.StationID
	targetNode graph.NodeID

	// stop is the shared stopping-criterion state.
	stop stopState

	// Distance-table pruning state (nil/false when inactive).
	table            *dtable.Table
	vias             []timetable.StationID
	targetIsTransfer bool
}

// s2sWorker runs the pruned connection-setting search on the connection
// range [lo, hi). All per-connection pruning state (µ bounds, γ bounds,
// done flags, ancestor counters) is local to the worker, since connections
// are partitioned across workers.
type s2sWorker struct {
	q        *s2sQuery
	lo, hi   int
	counters stats.Counters

	arr     []timeutil.Ticks // labels, nodes × kLocal
	settled []bool
	maxconn []int32

	// µ[iLocal*len(vias)+j]: upper bound µ_{i,j} on the useful arrival at
	// via station j (Theorem 3).
	mu []timeutil.Ticks
	// Target pruning (Theorem 4) state.
	gamma      []timeutil.Ticks // γ_i lower bounds
	connDone   []bool           // search for i stopped
	anc        []bool           // label has a transfer-station ancestor
	noAncCount []int            // queued entries of i without transfer ancestor
}

func newS2SWorker(q *s2sQuery, lo, hi int) *s2sWorker {
	w := &s2sWorker{q: q, lo: lo, hi: hi}
	kLocal := hi - lo
	n := q.g.NumNodes()
	w.arr = make([]timeutil.Ticks, n*kLocal)
	for i := range w.arr {
		w.arr[i] = timeutil.Infinity
	}
	w.settled = make([]bool, n*kLocal)
	w.maxconn = make([]int32, n)
	for i := range w.maxconn {
		w.maxconn[i] = -1
	}
	if q.table != nil {
		w.mu = make([]timeutil.Ticks, kLocal*len(q.vias))
		for i := range w.mu {
			w.mu[i] = timeutil.Infinity
		}
		if q.targetIsTransfer {
			w.gamma = make([]timeutil.Ticks, kLocal)
			for i := range w.gamma {
				w.gamma[i] = timeutil.Infinity
			}
			w.connDone = make([]bool, kLocal)
			w.anc = make([]bool, n*kLocal)
			w.noAncCount = make([]int, kLocal)
		}
	}
	return w
}

func (w *s2sWorker) run() {
	q := w.q
	g := q.g
	res := q.res
	kLocal := w.hi - w.lo
	if kLocal == 0 {
		return
	}
	heap := q.opts.newHeap(g.NumNodes() * kLocal)
	transferTime := func(s timetable.StationID) timeutil.Ticks { return g.TT.Stations[s].Transfer }

	push := func(v graph.NodeID, iLocal int, key timeutil.Ticks, childAnc bool) {
		it := int32(int(v)*kLocal + iLocal)
		if w.settled[it] {
			return
		}
		wasIn := heap.Contains(it)
		if !heap.Push(it, key) {
			return
		}
		w.counters.QueuePushes++
		if w.anc != nil {
			if !wasIn {
				if !childAnc {
					w.noAncCount[iLocal]++
				}
				w.anc[it] = childAnc
			} else if w.anc[it] != childAnc {
				if childAnc {
					w.noAncCount[iLocal]--
				} else {
					w.noAncCount[iLocal]++
				}
				w.anc[it] = childAnc
			}
		}
	}

	for i := w.lo; i < w.hi; i++ {
		id := res.Conns[i]
		r := g.ConnDepartureNode(id)
		push(r, i-w.lo, g.TT.Connections[id].Dep, false)
	}

	for !heap.Empty() {
		it, key := heap.PopMin()
		w.counters.QueuePops++
		v := graph.NodeID(int(it) / kLocal)
		iLocal := int(it) % kLocal
		i := w.lo + iLocal
		w.settled[it] = true
		hasAnc := false
		if w.anc != nil {
			hasAnc = w.anc[it]
			if !hasAnc {
				w.noAncCount[iLocal]--
			}
		}

		// Target pruning already finished this connection.
		if w.connDone != nil && w.connDone[iLocal] {
			w.counters.PrunedConns++
			continue
		}
		// Stopping criterion (Theorem 2).
		if !q.opts.DisableStoppingCriterion && q.stop.shouldPrune(i, key) {
			w.counters.PrunedConns++
			continue
		}
		// Self-pruning (Theorem 1).
		if !q.opts.DisableSelfPruning && int32(i) <= w.maxconn[v] {
			w.counters.PrunedConns++
			continue
		}
		if int32(i) > w.maxconn[v] {
			w.maxconn[v] = int32(i)
		}
		w.arr[it] = key
		w.counters.SettledConns++

		st := g.Station(v)

		// Target reached for this connection.
		if v == q.targetNode {
			res.ArrT[i] = key
			if !q.opts.DisableStoppingCriterion {
				q.stop.observeTargetSettle(i, key)
			}
			// Leaving the target and coming back cannot arrive earlier
			// (FIFO), and other stations are irrelevant to this query.
			continue
		}

		if q.table != nil && q.table.IsTransfer(st) {
			arrWithTransfer := key + transferTime(st)
			// Target pruning (Theorem 4).
			if w.gamma != nil {
				if d := q.table.D(st, q.target, key); d < w.gamma[iLocal] {
					w.gamma[iLocal] = d
				}
				if w.noAncCount[iLocal] == 0 {
					// γ_i is a feasible lower bound only once every queued
					// entry of i has a transfer-station ancestor: then the
					// optimal path's frontier passed a settled transfer
					// station, which has already contributed to γ_i.
					if d := q.table.D(st, q.target, arrWithTransfer); d == w.gamma[iLocal] {
						res.ArrT[i] = d
						if !q.opts.DisableStoppingCriterion {
							q.stop.observeTargetSettle(i, d)
						}
						w.connDone[iLocal] = true
						continue
					}
				}
			}
			// Distance-table pruning (Theorem 3): refresh µ_{i,j}, then
			// prune v if it provably cannot improve any via station.
			prune := true
			base := iLocal * len(q.vias)
			for j, vj := range q.vias {
				mu := q.table.D(st, vj, arrWithTransfer) + transferTime(vj)
				if mu < w.mu[base+j] {
					w.mu[base+j] = mu
				}
				if q.table.D(st, vj, key) <= w.mu[base+j] {
					prune = false
				}
			}
			if prune {
				w.counters.PrunedConns++
				w.counters.SettledConns-- // settled but not expanded
				continue
			}
		}

		childAnc := hasAnc || (q.table != nil && q.table.IsTransfer(st))
		edges := g.OutEdges(v)
		for e := range edges {
			arrTent, _ := g.EvalEdge(&edges[e], key)
			w.counters.Relaxed++
			if arrTent.IsInf() {
				continue
			}
			push(edges[e].Head, iLocal, arrTent, childAnc)
		}
	}
}

package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"transit/internal/dtable"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// QueryEnv bundles the static data a station-to-station query runs against.
// Graph is mandatory; StationGraph and Table enable the Section 4 prunings
// when present (both must be set together).
type QueryEnv struct {
	Graph        *graph.Graph
	StationGraph *stationgraph.Graph
	Table        *dtable.Table
}

// QueryOptions extends Options with the Section 4 switches (all prunings
// are on whenever their prerequisites are available; the Disable* fields
// exist for ablations).
type QueryOptions struct {
	Options
	// DisableStoppingCriterion turns off Theorem 2 pruning.
	DisableStoppingCriterion bool
	// DisableTablePruning turns off Theorem 3 pruning even when a distance
	// table is present.
	DisableTablePruning bool
	// DisableTargetPruning turns off Theorem 4 pruning even when the
	// target is a transfer station.
	DisableTargetPruning bool
}

// StationQueryResult is the profile of an S–T station-to-station query:
// arr(T, i) for every outgoing connection i of S.
//
// Results returned by Workspace.StationToStation borrow workspace memory
// (Conns, Deps, ArrT, Run.PerThread) and are valid until the next query on
// that workspace; StationToStation returns a detached copy.
type StationQueryResult struct {
	Source timetable.StationID
	Target timetable.StationID
	// Conns and Deps describe conn(S) as in ProfileResult.
	Conns []timetable.ConnID
	Deps  []timeutil.Ticks
	// ArrT[i] is the arrival time at T when starting with connection i
	// (Infinity when pruned as useless or unreachable).
	ArrT []timeutil.Ticks
	// WalkOnly is the pure walking time from S to T over footpaths
	// (Infinity when not walkable).
	WalkOnly timeutil.Ticks
	// Local reports whether S ∈ local(T) (distance-table pruning skipped).
	Local bool
	// TableHit reports that both endpoints were transfer stations and the
	// result was read directly from the distance table without a search.
	TableHit bool
	Run      stats.Run

	period timeutil.Period
}

// Profile reduces ArrT into dist(S, T, ·).
func (r *StationQueryResult) Profile() (*ttf.Function, error) {
	return ttf.FromArrivals(r.period, r.Deps, r.ArrT)
}

// EarliestArrival evaluates the query profile for a departure at the
// absolute time at, walking all the way when that is faster.
func (r *StationQueryResult) EarliestArrival(at timeutil.Ticks) timeutil.Ticks {
	if r.Source == r.Target {
		return at
	}
	best := timeutil.Infinity
	if !r.WalkOnly.IsInf() {
		best = at + r.WalkOnly
	}
	f, err := r.Profile()
	if err != nil {
		return best
	}
	if a := f.EvalArrival(at); a < best {
		best = a
	}
	return best
}

// detach deep-copies the result out of workspace memory so it survives the
// workspace's return to the pool.
func (r *StationQueryResult) detach() *StationQueryResult {
	out := *r
	out.Conns = append([]timetable.ConnID(nil), r.Conns...)
	out.Deps = append([]timeutil.Ticks(nil), r.Deps...)
	out.ArrT = append([]timeutil.Ticks(nil), r.ArrT...)
	out.Run.PerThread = append([]stats.Counters(nil), r.Run.PerThread...)
	return &out
}

// stopState is the shared stopping-criterion state (Theorem 2), packed for
// a single atomic word: upper 32 bits hold Tm+1 (0 = none yet), lower 32
// the arrival time arr(T, Tm) at which it was settled. Cross-thread use
// additionally compares keys against that arrival, which is what makes the
// sequential argument ("q was settled after q′") carry over to independent
// per-thread queues.
//
// Packing invariant: an arrival fits the lower half exactly because
// timeutil.Ticks is a 32-bit type (compile-time asserted below) and settled
// target arrivals are finite, hence in [0, Infinity] ⊂ [0, 2^31). Should
// Ticks ever widen, the compile-time assertion fails rather than letting
// arrivals silently truncate and corrupt Theorem 2 pruning near the 32-bit
// boundary; observeTargetSettle additionally saturates defensively.
var _ [1]struct{} = [4 - unsafe.Sizeof(timeutil.Ticks(0)) + 1]struct{}{}

type stopState struct {
	v atomic.Uint64
}

// reset clears the state for a new query.
func (s *stopState) reset() { s.v.Store(0) }

func (s *stopState) observeTargetSettle(i int, arr timeutil.Ticks) {
	// Saturate out-of-range arrivals (nothing meaningful ever exceeds
	// Infinity; negative arrivals cannot occur) so the packed word always
	// round-trips exactly.
	if arr > timeutil.Infinity {
		arr = timeutil.Infinity
	}
	if arr < 0 {
		arr = 0
	}
	for {
		cur := s.v.Load()
		curIdx := int64(cur>>32) - 1
		if int64(i) <= curIdx {
			return
		}
		next := uint64(uint32(i+1))<<32 | uint64(uint32(arr))
		if s.v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// shouldPrune reports whether entry (·, i) popped with the given key is
// dominated per Theorem 2.
func (s *stopState) shouldPrune(i int, key timeutil.Ticks) bool {
	cur := s.v.Load()
	curIdx := int64(cur>>32) - 1
	if curIdx < 0 || int64(i) > curIdx {
		return false
	}
	arr := timeutil.Ticks(int32(uint32(cur)))
	return key >= arr
}

// StationToStation answers an S–T profile query with the accelerations of
// Section 4: the stopping criterion, and — when env carries a station graph
// and distance table — pruning via the distance table for global queries
// plus target pruning when T is a transfer station.
//
// It runs on a pooled workspace and returns a detached (caller-owned)
// result. Steady-state callers that can consume the result immediately
// should use Workspace.StationToStation to also skip the copy.
func StationToStation(env QueryEnv, source, target timetable.StationID, opts QueryOptions) (*StationQueryResult, error) {
	ws := GetWorkspace()
	res, err := ws.StationToStation(env, source, target, opts)
	if err != nil {
		PutWorkspace(ws)
		return nil, err
	}
	out := res.detach()
	PutWorkspace(ws)
	return out, nil
}

// StationToStation is the workspace-reusing form of the package-level
// StationToStation: the steady state allocates nothing. The result borrows
// workspace memory and is valid until the next query on this workspace.
func (ws *Workspace) StationToStation(env QueryEnv, source, target timetable.StationID, opts QueryOptions) (*StationQueryResult, error) {
	g := env.Graph
	if g == nil {
		return nil, fmt.Errorf("core: QueryEnv.Graph is nil")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ns := g.TT.NumStations()
	if int(source) < 0 || int(source) >= ns || int(target) < 0 || int(target) >= ns {
		return nil, fmt.Errorf("core: invalid station pair (%d, %d)", source, target)
	}
	if (env.Table == nil) != (env.StationGraph == nil) {
		return nil, fmt.Errorf("core: StationGraph and Table must be provided together")
	}
	if cancelled(opts.Done) {
		return nil, ErrCancelled
	}
	start := time.Now()
	gen := ws.begin()

	walk := ws.walkDistances(g.TT, source)
	connIDs, deps := ws.extendedConns(g.TT, source, walk)
	res := &ws.sres
	*res = StationQueryResult{
		Source:   source,
		Target:   target,
		Conns:    connIDs,
		Deps:     deps,
		WalkOnly: distOrInf(walk, target),
		period:   g.TT.Period,
		ArrT:     growTicks(ws.sres.ArrT, len(connIDs)),
	}
	for i := range res.ArrT {
		res.ArrT[i] = timeutil.Infinity
	}

	useTable := env.Table != nil && !opts.DisableTablePruning
	var vias *stationgraph.Vias
	if env.Table != nil {
		// Both endpoints transfer stations: the table already holds all
		// best connections from S to T (Section 4, Special Cases).
		if env.Table.IsTransfer(source) && env.Table.IsTransfer(target) && !opts.DisableTablePruning {
			for i := range res.ArrT {
				res.ArrT[i] = env.Table.D(source, target, res.Deps[i])
			}
			res.TableHit = true
			res.Run.Elapsed = time.Since(start)
			res.Run.PerThread = ws.counters(1)
			opts.Effort.Observe(&res.Run)
			return res, nil
		}
		// Determine via(T) on the fly; the DFS also classifies the query.
		// The transfer marks are cached on the workspace keyed by table
		// identity and the DFS runs on the workspace's reusable Vias
		// scratch, so steady-state traffic against one table allocates
		// nothing here.
		vias = env.StationGraph.ComputeViasInto(&ws.vias, target, ws.transferMarks(env.Table, ns))
		res.Local = vias.IsLocalSource(source)
	}

	// Field-wise reset (the struct embeds an atomic and must not be copied).
	q := &ws.s2q
	q.g = g
	q.res = res
	q.opts = opts
	q.target = target
	q.targetNode = g.StationNode(target)
	q.table = nil
	q.vias = nil
	q.targetIsTransfer = false
	q.stop.reset()
	if useTable && !res.Local && len(vias.Via) > 0 {
		q.table = env.Table
		q.vias = vias.Via
		q.targetIsTransfer = env.Table.IsTransfer(target) && !opts.DisableTargetPruning
	}

	p := opts.threads()
	ws.bounds = partitionInto(ws.bounds, res.Deps, g.TT.Period, p, opts.Partition)
	bounds := ws.bounds
	nw := len(bounds) - 1
	if cap(ws.s2sBuf) < nw {
		ws.s2sBuf = make([]s2sWorker, nw)
	}
	workers := ws.s2sBuf[:nw]
	for t := 0; t < nw; t++ {
		workers[t].init(q, bounds[t], bounds[t+1], ws.worker(t), gen)
	}
	if nw == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for t := range workers {
			wg.Add(1)
			go func(w *s2sWorker) {
				defer wg.Done()
				w.run()
			}(&workers[t])
		}
		wg.Wait()
	}
	for t := range workers {
		if workers[t].cancelled {
			return nil, ErrCancelled
		}
	}
	res.Run.PerThread = ws.counters(nw)
	for t := range workers {
		res.Run.PerThread[t] = workers[t].counters
		res.Run.Total.Add(workers[t].counters)
	}
	res.Run.Elapsed = time.Since(start)
	opts.Effort.Observe(&res.Run)
	return res, nil
}

// s2sQuery is the per-query shared state of all workers.
type s2sQuery struct {
	g          *graph.Graph
	res        *StationQueryResult
	opts       QueryOptions
	target     timetable.StationID
	targetNode graph.NodeID

	// stop is the shared stopping-criterion state.
	stop stopState

	// Distance-table pruning state (nil/false when inactive).
	table            *dtable.Table
	vias             []timetable.StationID
	targetIsTransfer bool
}

// s2sWorker runs the pruned connection-setting search on the connection
// range [lo, hi). All per-connection pruning state (µ bounds, γ bounds,
// done flags, ancestor counters) is local to the worker, since connections
// are partitioned across workers. The worker's label memory lives in its
// workerSpace: settled and maxconn are generation-stamped (O(1) reset),
// while the O(k)-sized pruning arrays are refilled eagerly.
type s2sWorker struct {
	q        *s2sQuery
	lo, hi   int
	ws       *workerSpace
	gen      uint32
	counters stats.Counters
	// cancelled is set when the worker abandoned its range because
	// Options.Done closed; StationToStation turns it into ErrCancelled.
	cancelled bool

	settledGen []uint32
	maxconn    []int32
	maxconnGen []uint32

	// µ[iLocal*len(vias)+j]: upper bound µ_{i,j} on the useful arrival at
	// via station j (Theorem 3).
	mu []timeutil.Ticks
	// Target pruning (Theorem 4) state.
	gamma      []timeutil.Ticks // γ_i lower bounds
	connDone   []bool           // search for i stopped
	anc        []bool           // label has a transfer-station ancestor
	noAncCount []int            // queued entries of i without transfer ancestor
}

// init prepares a worker for one query, reusing the workerSpace arrays.
func (w *s2sWorker) init(q *s2sQuery, lo, hi int, wsw *workerSpace, gen uint32) {
	*w = s2sWorker{q: q, lo: lo, hi: hi, ws: wsw, gen: gen}
	kLocal := hi - lo
	n := q.g.NumNodes()
	wsw.settledGen = growU32(wsw.settledGen, n*kLocal)
	w.settledGen = wsw.settledGen
	wsw.maxconn = growI32(wsw.maxconn, n)
	w.maxconn = wsw.maxconn
	wsw.maxconnGen = growU32(wsw.maxconnGen, n)
	w.maxconnGen = wsw.maxconnGen
	if q.table != nil {
		wsw.mu = growTicks(wsw.mu, kLocal*len(q.vias))
		w.mu = wsw.mu
		for i := range w.mu {
			w.mu[i] = timeutil.Infinity
		}
		if q.targetIsTransfer {
			wsw.gamma = growTicks(wsw.gamma, kLocal)
			w.gamma = wsw.gamma
			for i := range w.gamma {
				w.gamma[i] = timeutil.Infinity
			}
			wsw.connDone = growBool(wsw.connDone, kLocal)
			w.connDone = wsw.connDone
			clear(w.connDone)
			// anc needs no clearing: every slot is written by push before
			// any read of the same query (see push).
			wsw.anc = growBool(wsw.anc, n*kLocal)
			w.anc = wsw.anc
			wsw.noAncCount = growInt(wsw.noAncCount, kLocal)
			w.noAncCount = wsw.noAncCount
			clear(w.noAncCount)
		}
	}
}

func (w *s2sWorker) run() {
	q := w.q
	g := q.g
	res := q.res
	kLocal := w.hi - w.lo
	if kLocal == 0 {
		return
	}
	gen := w.gen
	heap := w.ws.heap(q.opts.Options, g.NumNodes()*kLocal)
	transferTime := func(s timetable.StationID) timeutil.Ticks { return g.TT.Stations[s].Transfer }

	push := func(v graph.NodeID, iLocal int, key timeutil.Ticks, childAnc bool) {
		it := int32(int(v)*kLocal + iLocal)
		if w.settledGen[it] == gen {
			return
		}
		wasIn := heap.Contains(it)
		if !heap.Push(it, key) {
			return
		}
		w.counters.QueuePushes++
		if w.anc != nil {
			if !wasIn {
				if !childAnc {
					w.noAncCount[iLocal]++
				}
				w.anc[it] = childAnc
			} else if w.anc[it] != childAnc {
				if childAnc {
					w.noAncCount[iLocal]--
				} else {
					w.noAncCount[iLocal]++
				}
				w.anc[it] = childAnc
			}
		}
	}

	for i := w.lo; i < w.hi; i++ {
		id := res.Conns[i]
		r := g.ConnDepartureNode(id)
		push(r, i-w.lo, g.TT.Connections[id].Dep, false)
	}

	done := q.opts.Done
	for !heap.Empty() {
		it, key := heap.PopMin()
		w.counters.QueuePops++
		if done != nil && w.counters.QueuePops&cancelMask == 0 {
			w.counters.CancelPolls++
			if cancelled(done) {
				w.cancelled = true
				return
			}
		}
		v := graph.NodeID(int(it) / kLocal)
		iLocal := int(it) % kLocal
		i := w.lo + iLocal
		w.settledGen[it] = gen
		hasAnc := false
		if w.anc != nil {
			hasAnc = w.anc[it]
			if !hasAnc {
				w.noAncCount[iLocal]--
			}
		}

		// Target pruning already finished this connection.
		if w.connDone != nil && w.connDone[iLocal] {
			w.counters.PrunedConns++
			continue
		}
		// Stopping criterion (Theorem 2).
		if !q.opts.DisableStoppingCriterion && q.stop.shouldPrune(i, key) {
			w.counters.PrunedConns++
			continue
		}
		// Self-pruning (Theorem 1).
		mc := int32(-1)
		if w.maxconnGen[v] == gen {
			mc = w.maxconn[v]
		}
		if !q.opts.DisableSelfPruning && int32(i) <= mc {
			w.counters.PrunedConns++
			continue
		}
		if int32(i) > mc {
			w.maxconn[v] = int32(i)
			w.maxconnGen[v] = gen
		}
		w.counters.SettledConns++

		st := g.Station(v)

		// Target reached for this connection.
		if v == q.targetNode {
			res.ArrT[i] = key
			if !q.opts.DisableStoppingCriterion {
				q.stop.observeTargetSettle(i, key)
			}
			// Leaving the target and coming back cannot arrive earlier
			// (FIFO), and other stations are irrelevant to this query.
			continue
		}

		if q.table != nil && q.table.IsTransfer(st) {
			arrWithTransfer := key + transferTime(st)
			// Target pruning (Theorem 4).
			if w.gamma != nil {
				if d := q.table.D(st, q.target, key); d < w.gamma[iLocal] {
					w.gamma[iLocal] = d
				}
				if w.noAncCount[iLocal] == 0 {
					// γ_i is a feasible lower bound only once every queued
					// entry of i has a transfer-station ancestor: then the
					// optimal path's frontier passed a settled transfer
					// station, which has already contributed to γ_i.
					if d := q.table.D(st, q.target, arrWithTransfer); d == w.gamma[iLocal] {
						res.ArrT[i] = d
						if !q.opts.DisableStoppingCriterion {
							q.stop.observeTargetSettle(i, d)
						}
						w.connDone[iLocal] = true
						continue
					}
				}
			}
			// Distance-table pruning (Theorem 3): refresh µ_{i,j}, then
			// prune v if it provably cannot improve any via station.
			prune := true
			base := iLocal * len(q.vias)
			for j, vj := range q.vias {
				mu := q.table.D(st, vj, arrWithTransfer) + transferTime(vj)
				if mu < w.mu[base+j] {
					w.mu[base+j] = mu
				}
				if q.table.D(st, vj, key) <= w.mu[base+j] {
					prune = false
				}
			}
			if prune {
				w.counters.PrunedConns++
				w.counters.SettledConns-- // settled but not expanded
				continue
			}
		}

		childAnc := hasAnc || (q.table != nil && q.table.IsTransfer(st))
		edges := g.OutEdges(v)
		for e := range edges {
			arrTent, _ := g.EvalEdge(&edges[e], key)
			w.counters.Relaxed++
			if arrTent.IsInf() {
				continue
			}
			push(edges[e].Head, iLocal, arrTent, childAnc)
		}
	}
}

package core

import (
	"fmt"
	"sort"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// ConnectionScan answers earliest-arrival time-queries by scanning
// elementary connections in departure order — the Connection Scan Algorithm
// (Dibbelt et al., 2013), included as an algorithmically independent
// reference: it shares no code with the graph-based searches (no graph, no
// priority queue), which makes it a strong cross-validation oracle for
// TimeQuery and the profile searches, and a modern baseline for the
// benchmark harness.
//
// Semantics match TimeQuery: departing src at time dep, the first boarding
// is free, every train change at station S costs T(S), staying aboard a
// train costs nothing. The periodic timetable is unrolled over a bounded
// horizon of trip start days; overnight trains keep their identity across
// midnight because each connection carries its lifted within-trip time.
type ConnectionScanResult struct {
	Source timetable.StationID
	Depart timeutil.Ticks
	Run    stats.Run

	arr    []timeutil.Ticks
	arrGen []uint32
	gen    uint32
}

// StationArrival returns the earliest arrival at a station within the
// scanned horizon (Infinity when unreachable in it).
func (r *ConnectionScanResult) StationArrival(s timetable.StationID) timeutil.Ticks {
	if r.arrGen[s] != r.gen {
		return timeutil.Infinity
	}
	return r.arr[s]
}

// CSASchedule caches the lifted, departure-sorted connection order for
// repeated scans. Safe for concurrent Query calls (each call runs on its
// own workspace); for steady-state traffic pass a reused workspace to
// QueryWS instead.
type CSASchedule struct {
	tt *timetable.Timetable
	// tripTime[c] is the connection's absolute departure within its trip's
	// local timeline: hop 0 departs at its time point in [0, π); later hops
	// lift past midnight as needed, so tripTime is monotone along a trip.
	tripTime []timeutil.Ticks
	// order lists connection IDs sorted by tripTime.
	order []timetable.ConnID
}

// NewConnectionScan prepares the schedule.
func NewConnectionScan(tt *timetable.Timetable) *CSASchedule {
	c := &CSASchedule{tt: tt, tripTime: make([]timeutil.Ticks, len(tt.Connections))}
	// Walk each train's hops in ID order (temporal by construction).
	lastAbs := make(map[timetable.TrainID]timeutil.Ticks)
	started := make(map[timetable.TrainID]bool)
	for _, conn := range tt.Connections {
		var depAbs timeutil.Ticks
		if !started[conn.Train] {
			started[conn.Train] = true
			depAbs = conn.Dep
		} else {
			prev := lastAbs[conn.Train]
			depAbs = prev + tt.Period.Delta(prev, conn.Dep)
		}
		c.tripTime[conn.ID] = depAbs
		dur := conn.Duration()
		if conn.Arr.IsInf() {
			// Cancelled connection (timetable.Patch): keep the trip's local
			// timeline finite so later hops of the train do not overflow.
			dur = 0
		}
		lastAbs[conn.Train] = depAbs + dur
	}
	c.order = make([]timetable.ConnID, len(tt.Connections))
	for i := range c.order {
		c.order[i] = timetable.ConnID(i)
	}
	sort.Slice(c.order, func(i, j int) bool {
		a, b := c.tripTime[c.order[i]], c.tripTime[c.order[j]]
		if a != b {
			return a < b
		}
		return c.order[i] < c.order[j]
	})
	return c
}

// Query runs one earliest-arrival scan covering trips that start within
// `days` periods around the departure time (2 is enough for any journey
// that crosses midnight once). The result owns a private workspace and
// stays valid indefinitely.
func (c *CSASchedule) Query(source timetable.StationID, dep timeutil.Ticks, days int) (*ConnectionScanResult, error) {
	return c.QueryWS(NewWorkspace(), source, dep, days)
}

// QueryWS is the workspace-reusing form of Query: the steady state
// allocates nothing. The result borrows workspace memory and is valid
// until the next query on the workspace.
func (c *CSASchedule) QueryWS(ws *Workspace, source timetable.StationID, dep timeutil.Ticks, days int) (*ConnectionScanResult, error) {
	tt := c.tt
	if int(source) < 0 || int(source) >= tt.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if dep < 0 {
		return nil, fmt.Errorf("core: negative departure time %d", dep)
	}
	if days < 1 {
		days = 1
	}
	start := time.Now()
	gen := ws.begin()
	ns := tt.NumStations()
	ws.nodeArr = growTicks(ws.nodeArr, ns)
	ws.nodeArrGen = growU32(ws.nodeArrGen, ns)
	res := &ws.cres
	*res = ConnectionScanResult{
		Source: source, Depart: dep,
		arr: ws.nodeArr, arrGen: ws.nodeArrGen, gen: gen,
	}
	// arrAt/setArr gate the station labels through the generation stamps,
	// so no O(numStations) Infinity fill runs per query.
	arrAt := func(s timetable.StationID) timeutil.Ticks {
		if res.arrGen[s] != gen {
			return timeutil.Infinity
		}
		return res.arr[s]
	}
	setArr := func(s timetable.StationID, v timeutil.Ticks) {
		res.arr[s] = v
		res.arrGen[s] = gen
	}
	setArr(source, dep)
	var cnt stats.Counters

	// relaxWalks propagates an improved arrival over footpaths,
	// transitively (strict improvement guards against zero-length cycles).
	walkQueue := ws.walkQueue[:0]
	relaxWalks := func(from timetable.StationID) {
		walkQueue = append(walkQueue[:0], from)
		for len(walkQueue) > 0 {
			s := walkQueue[len(walkQueue)-1]
			walkQueue = walkQueue[:len(walkQueue)-1]
			for _, f := range tt.FootpathsFrom(s) {
				if na := arrAt(s) + f.Walk; na < arrAt(f.To) {
					setArr(f.To, na)
					walkQueue = append(walkQueue, f.To)
				}
			}
		}
	}
	relaxWalks(source)

	pi := tt.Period.Len()
	// Trips starting the period before the departure may still be boardable
	// (overnight runs). The timetable is periodic — there is no first
	// service day — so the horizon may legitimately start at a negative
	// period index; events before dep are skipped during the scan.
	firstDay := dep/pi - 1
	nDays := days + 1
	// aboard is per trip instance: train z starting on horizon day d; a
	// trip is aboard iff its stamp matches this query's generation.
	ws.aboardGen = growU32(ws.aboardGen, tt.NumTrains()*nDays)
	aboardGen := ws.aboardGen

	// Merged scan over the nDays shifted copies of the sorted event list.
	ws.dayIdx = growInt(ws.dayIdx, nDays)
	idx := ws.dayIdx
	clear(idx)
	for {
		// Pick the day whose next event departs earliest.
		best, bestT := -1, timeutil.Infinity
		for d := 0; d < nDays; d++ {
			if idx[d] >= len(c.order) {
				continue
			}
			t := c.tripTime[c.order[idx[d]]] + (firstDay+timeutil.Ticks(d))*pi
			if t < bestT {
				best, bestT = d, t
			}
		}
		if best < 0 {
			break
		}
		id := c.order[idx[best]]
		idx[best]++
		conn := tt.Connections[id]
		if conn.Arr.IsInf() {
			continue // cancelled: never boardable
		}
		depAbs := bestT
		if depAbs < dep {
			continue
		}
		cnt.SettledConns++
		arrAbs := depAbs + conn.Duration()
		slot := int(conn.Train)*nDays + best
		reachable := aboardGen[slot] == gen
		if !reachable {
			at := arrAt(conn.From)
			if !at.IsInf() {
				need := at + tt.Stations[conn.From].Transfer
				if conn.From == source && at == dep {
					need = at // initial boarding is transfer-free
				}
				reachable = need <= depAbs
			}
		}
		if reachable {
			aboardGen[slot] = gen
			if arrAbs < arrAt(conn.To) {
				setArr(conn.To, arrAbs)
				relaxWalks(conn.To)
			}
		}
	}
	ws.walkQueue = walkQueue
	ws.pt1[0] = cnt
	res.Run.PerThread = ws.pt1[:1]
	res.Run.Total = cnt
	res.Run.Elapsed = time.Since(start)
	return res, nil
}

// ConnectionScanQuery is the one-shot convenience: schedule construction
// plus a two-period scan.
func ConnectionScanQuery(g *graph.Graph, source timetable.StationID, dep timeutil.Ticks) (*ConnectionScanResult, error) {
	return NewConnectionScan(g.TT).Query(source, dep, 2)
}

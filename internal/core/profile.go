package core

import (
	"fmt"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// ProfileResult holds the outcome of a one-to-all profile search from a
// source station: for every node v and every seed connection index i, the
// arrival time arr(v, i) (Infinity when connection i does not usefully
// reach v). Station profiles dist(S, T, ·) are derived on demand by
// connection reduction.
//
// Without footpaths the seed list is exactly the paper's conn(S). With
// footpaths it is the extended list (see extendedConns): connections of
// walk-reachable stations with *effective* departures from the source, so
// itineraries that begin on foot are represented too. Journeys consisting
// of walking only are handled separately (WalkOnly / EarliestArrival).
type ProfileResult struct {
	Source timetable.StationID
	// Conns lists the seed connections, ordered non-decreasingly by
	// effective departure; index i in all labels refers to this ordering.
	Conns []timetable.ConnID
	// Deps caches the effective departure times from the source (equal to
	// τ_dep(c_i) when c_i departs the source itself; earlier by the walking
	// time when it departs a footpath neighbour; may be negative, wrapping
	// periodically).
	Deps []timeutil.Ticks
	// Run carries the work counters and timing of the search.
	Run stats.Run

	g    *graph.Graph
	arr  []timeutil.Ticks // numNodes × k, row-major by node
	walk map[timetable.StationID]timeutil.Ticks

	// Parent links, present only when Options.TrackParents was set.
	parentNode []graph.NodeID
	parentConn []timetable.ConnID
}

func newProfileResult(g *graph.Graph, source timetable.StationID, opts Options) *ProfileResult {
	return newProfileResultWindow(g, source, opts, 0, timeutil.Infinity)
}

// newProfileResultWindow restricts the seed list to effective departures in
// [from, to] — the interval profile search of Dean [5] referenced in the
// paper's related work ("all quickest connections in a given time
// interval"). The full-period search passes [0, ∞).
func newProfileResultWindow(g *graph.Graph, source timetable.StationID, opts Options, from, to timeutil.Ticks) *ProfileResult {
	tt := g.TT
	walk := walkDistances(tt, source)
	connIDs, deps := extendedConns(tt, source, walk)
	if from > 0 || !to.IsInf() {
		fc := connIDs[:0]
		fd := deps[:0]
		for i, d := range deps {
			if d >= from && d <= to {
				fc = append(fc, connIDs[i])
				fd = append(fd, d)
			}
		}
		connIDs, deps = fc, fd
	}
	k := len(connIDs)
	r := &ProfileResult{
		Source: source,
		Conns:  connIDs,
		Deps:   deps,
		g:      g,
		walk:   walk,
		arr:    make([]timeutil.Ticks, g.NumNodes()*k),
	}
	for i := range r.arr {
		r.arr[i] = timeutil.Infinity
	}
	if opts.TrackParents {
		r.parentNode = make([]graph.NodeID, len(r.arr))
		r.parentConn = make([]timetable.ConnID, len(r.arr))
		for i := range r.parentNode {
			r.parentNode[i] = graph.NoNode
			r.parentConn[i] = -1
		}
	}
	return r
}

// K returns |conn(S)|, the number of outgoing connections of the source.
func (r *ProfileResult) K() int { return len(r.Conns) }

// label returns the flat index of (v, i).
func (r *ProfileResult) label(v graph.NodeID, i int) int { return int(v)*len(r.Conns) + i }

// Arrival returns arr(v, i) for a node.
func (r *ProfileResult) Arrival(v graph.NodeID, i int) timeutil.Ticks {
	return r.arr[r.label(v, i)]
}

// StationArrival returns arr(T, i) at the station node of T.
func (r *ProfileResult) StationArrival(t timetable.StationID, i int) timeutil.Ticks {
	return r.arr[r.label(r.g.StationNode(t), i)]
}

// StationArrivals returns the full label vector arr(T, ·) of a station
// (shared slice; do not modify).
func (r *ProfileResult) StationArrivals(t timetable.StationID) []timeutil.Ticks {
	v := r.g.StationNode(t)
	return r.arr[r.label(v, 0) : r.label(v, 0)+len(r.Conns)]
}

// StationProfile reduces the label vector of T into the distance function
// dist(S, T, ·) (Section 3.1, "Connection Reduction").
func (r *ProfileResult) StationProfile(t timetable.StationID) (*ttf.Function, error) {
	return ttf.FromArrivals(r.g.TT.Period, r.Deps, r.StationArrivals(t))
}

// WalkOnly returns the pure walking time from the source to t over
// footpaths (0 for the source itself, Infinity when not walkable).
func (r *ProfileResult) WalkOnly(t timetable.StationID) timeutil.Ticks {
	return distOrInf(r.walk, t)
}

// EarliestArrival evaluates the profile at T for a departure at the
// absolute time at: the earliest arrival over all connection points, or on
// foot alone when that is faster. It is what a time-query from the same
// source would return. The source station itself is answered trivially
// with at (you are already there); its stored profile only describes
// itineraries that board a train and return.
func (r *ProfileResult) EarliestArrival(t timetable.StationID, at timeutil.Ticks) timeutil.Ticks {
	if t == r.Source {
		return at
	}
	best := timeutil.Infinity
	if w := r.WalkOnly(t); !w.IsInf() {
		best = at + w
	}
	f, err := r.StationProfile(t)
	if err != nil {
		return best
	}
	if a := f.EvalArrival(at); a < best {
		best = a
	}
	return best
}

// IdealSpeedupOver estimates the machine-independent parallel speed-up of
// this run over a sequential baseline run (see stats.Run.IdealSpeedup).
func (r *ProfileResult) IdealSpeedupOver(seq *ProfileResult) float64 {
	return r.Run.IdealSpeedup(&seq.Run)
}

// HasParents reports whether parent links were recorded.
func (r *ProfileResult) HasParents() bool { return r.parentNode != nil }

// JourneyConnections reconstructs the elementary connections ridden by the
// itinerary of connection index i to station t, in travel order. It returns
// an error when parents were not tracked or (t, i) is unreachable.
func (r *ProfileResult) JourneyConnections(t timetable.StationID, i int) ([]timetable.ConnID, error) {
	if !r.HasParents() {
		return nil, fmt.Errorf("core: journey extraction requires Options.TrackParents")
	}
	if i < 0 || i >= len(r.Conns) {
		return nil, fmt.Errorf("core: connection index %d out of range [0,%d)", i, len(r.Conns))
	}
	v := r.g.StationNode(t)
	if r.arr[r.label(v, i)].IsInf() {
		return nil, fmt.Errorf("core: station %d unreachable via connection %d", t, i)
	}
	var rides []timetable.ConnID
	for steps := 0; ; steps++ {
		if steps > r.g.NumNodes()+1 {
			return nil, fmt.Errorf("core: parent chain cycle at node %d", v)
		}
		li := r.label(v, i)
		p := r.parentNode[li]
		if p == graph.NoNode {
			break // reached the seed route node
		}
		if c := r.parentConn[li]; c >= 0 {
			rides = append(rides, c)
		}
		v = p
	}
	// Reverse into travel order.
	for a, b := 0, len(rides)-1; a < b; a, b = a+1, b-1 {
		rides[a], rides[b] = rides[b], rides[a]
	}
	return rides, nil
}

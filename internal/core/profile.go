package core

import (
	"fmt"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// ProfileResult holds the outcome of a one-to-all profile search from a
// source station: for every node v and every seed connection index i, the
// arrival time arr(v, i) (Infinity when connection i does not usefully
// reach v). Station profiles dist(S, T, ·) are derived on demand by
// connection reduction.
//
// The label store is generation-stamped workspace memory: a slot holds a
// meaningful arrival only when its stamp matches the generation the search
// ran under, and every other slot reads as Infinity. Results produced by a
// Workspace query method are therefore valid only until the next query on
// that workspace; package-level OneToAll binds a private workspace to the
// result, which stays valid for as long as the caller keeps it.
//
// Without footpaths the seed list is exactly the paper's conn(S). With
// footpaths it is the extended list (see extendedConns): connections of
// walk-reachable stations with *effective* departures from the source, so
// itineraries that begin on foot are represented too. Journeys consisting
// of walking only are handled separately (WalkOnly / EarliestArrival).
type ProfileResult struct {
	Source timetable.StationID
	// Conns lists the seed connections, ordered non-decreasingly by
	// effective departure; index i in all labels refers to this ordering.
	Conns []timetable.ConnID
	// Deps caches the effective departure times from the source (equal to
	// τ_dep(c_i) when c_i departs the source itself; earlier by the walking
	// time when it departs a footpath neighbour; may be negative, wrapping
	// periodically).
	Deps []timeutil.Ticks
	// Run carries the work counters and timing of the search.
	Run stats.Run

	g    *graph.Graph
	walk map[timetable.StationID]timeutil.Ticks

	// Generation-stamped labels: arr[li] is meaningful iff arrGen[li] == gen.
	arr    []timeutil.Ticks // numNodes × k, row-major by node
	arrGen []uint32
	gen    uint32

	// Parent links, present only when Options.TrackParents was set; stamped
	// like the labels.
	hasParents bool
	parentNode []graph.NodeID
	parentConn []timetable.ConnID
	parentGen  []uint32
}

// newProfileResult dimensions the workspace for a full-period profile
// search and returns its (workspace-owned) result shell.
func (ws *Workspace) newProfileResult(g *graph.Graph, source timetable.StationID, opts Options) *ProfileResult {
	return ws.newProfileResultWindow(g, source, opts, 0, timeutil.Infinity)
}

// newProfileResultWindow restricts the seed list to effective departures in
// [from, to] — the interval profile search of Dean [5] referenced in the
// paper's related work ("all quickest connections in a given time
// interval"). The full-period search passes [0, ∞).
func (ws *Workspace) newProfileResultWindow(g *graph.Graph, source timetable.StationID, opts Options, from, to timeutil.Ticks) *ProfileResult {
	gen := ws.begin()
	tt := g.TT
	walk := ws.walkDistances(tt, source)
	connIDs, deps := ws.extendedConns(tt, source, walk)
	if from > 0 || !to.IsInf() {
		// Filter into workspace memory. connIDs may alias the timetable's
		// own outgoing-connection slice, which must never be compacted in
		// place.
		ws.conns = append(ws.conns[:0], connIDs...)
		fc := ws.conns[:0]
		fd := deps[:0] // deps is always workspace memory
		for i, d := range deps {
			if d >= from && d <= to {
				fc = append(fc, ws.conns[i])
				fd = append(fd, d)
			}
		}
		connIDs, deps = fc, fd
	}
	k := len(connIDs)
	ws.ensureLabels(g.NumNodes()*k, opts.TrackParents)
	r := &ws.pres
	*r = ProfileResult{
		Source: source,
		Conns:  connIDs,
		Deps:   deps,
		g:      g,
		walk:   walk,
		arr:    ws.arr,
		arrGen: ws.arrGen,
		gen:    gen,
	}
	if opts.TrackParents {
		r.hasParents = true
		r.parentNode = ws.parentNode
		r.parentConn = ws.parentConn
		r.parentGen = ws.parentGen
	}
	return r
}

// K returns |conn(S)|, the number of outgoing connections of the source.
func (r *ProfileResult) K() int { return len(r.Conns) }

// MemBytes approximates the heap memory the result keeps alive: the label
// (and, when tracked, parent) arrays dominate at numNodes × k entries of 4
// bytes each.
func (r *ProfileResult) MemBytes() int {
	n := 4*(len(r.Conns)+len(r.Deps)) + 4*len(r.arr) + 4*len(r.arrGen) + 24*len(r.walk)
	if r.hasParents {
		n += 4*len(r.parentNode) + 4*len(r.parentConn) + 4*len(r.parentGen)
	}
	return n
}

// label returns the flat index of (v, i).
func (r *ProfileResult) label(v graph.NodeID, i int) int { return int(v)*len(r.Conns) + i }

// arrAt reads a label through its generation stamp: unset slots are
// Infinity without ever having been written.
func (r *ProfileResult) arrAt(li int) timeutil.Ticks {
	if r.arrGen[li] != r.gen {
		return timeutil.Infinity
	}
	return r.arr[li]
}

// setArr writes a label and stamps it live for this generation.
func (r *ProfileResult) setArr(li int, v timeutil.Ticks) {
	r.arr[li] = v
	r.arrGen[li] = r.gen
}

// setParent records a parent link for journey extraction.
func (r *ProfileResult) setParent(li int, node graph.NodeID, conn timetable.ConnID) {
	r.parentNode[li] = node
	r.parentConn[li] = conn
	r.parentGen[li] = r.gen
}

// parentAt reads a parent link; unset slots read as (NoNode, -1).
func (r *ProfileResult) parentAt(li int) (graph.NodeID, timetable.ConnID) {
	if r.parentGen[li] != r.gen {
		return graph.NoNode, -1
	}
	return r.parentNode[li], r.parentConn[li]
}

// Arrival returns arr(v, i) for a node.
func (r *ProfileResult) Arrival(v graph.NodeID, i int) timeutil.Ticks {
	return r.arrAt(r.label(v, i))
}

// StationArrival returns arr(T, i) at the station node of T.
func (r *ProfileResult) StationArrival(t timetable.StationID, i int) timeutil.Ticks {
	return r.arrAt(r.label(r.g.StationNode(t), i))
}

// StationArrivals returns the full label vector arr(T, ·) of a station as
// a freshly allocated slice, materialized through the generation stamps.
// Allocating here keeps concurrent readers of one result safe (the
// pre-workspace implementation returned a read-only view, and e.g. a
// shared AllProfiles may serve many goroutines); the zero-allocation hot
// path is the station-to-station query, which never calls this.
func (r *ProfileResult) StationArrivals(t timetable.StationID) []timeutil.Ticks {
	v := r.g.StationNode(t)
	k := len(r.Conns)
	row := make([]timeutil.Ticks, k)
	base := r.label(v, 0)
	for i := 0; i < k; i++ {
		row[i] = r.arrAt(base + i)
	}
	return row
}

// StationProfile reduces the label vector of T into the distance function
// dist(S, T, ·) (Section 3.1, "Connection Reduction").
func (r *ProfileResult) StationProfile(t timetable.StationID) (*ttf.Function, error) {
	return ttf.FromArrivals(r.g.TT.Period, r.Deps, r.StationArrivals(t))
}

// WalkOnly returns the pure walking time from the source to t over
// footpaths (0 for the source itself, Infinity when not walkable).
func (r *ProfileResult) WalkOnly(t timetable.StationID) timeutil.Ticks {
	return distOrInf(r.walk, t)
}

// EarliestArrival evaluates the profile at T for a departure at the
// absolute time at: the earliest arrival over all connection points, or on
// foot alone when that is faster. It is what a time-query from the same
// source would return. The source station itself is answered trivially
// with at (you are already there); its stored profile only describes
// itineraries that board a train and return.
func (r *ProfileResult) EarliestArrival(t timetable.StationID, at timeutil.Ticks) timeutil.Ticks {
	if t == r.Source {
		return at
	}
	best := timeutil.Infinity
	if w := r.WalkOnly(t); !w.IsInf() {
		best = at + w
	}
	f, err := r.StationProfile(t)
	if err != nil {
		return best
	}
	if a := f.EvalArrival(at); a < best {
		best = a
	}
	return best
}

// IdealSpeedupOver estimates the machine-independent parallel speed-up of
// this run over a sequential baseline run (see stats.Run.IdealSpeedup).
func (r *ProfileResult) IdealSpeedupOver(seq *ProfileResult) float64 {
	return r.Run.IdealSpeedup(&seq.Run)
}

// HasParents reports whether parent links were recorded.
func (r *ProfileResult) HasParents() bool { return r.hasParents }

// JourneyConnections reconstructs the elementary connections ridden by the
// itinerary of connection index i to station t, in travel order. It returns
// an error when parents were not tracked or (t, i) is unreachable.
func (r *ProfileResult) JourneyConnections(t timetable.StationID, i int) ([]timetable.ConnID, error) {
	if !r.HasParents() {
		return nil, fmt.Errorf("core: journey extraction requires Options.TrackParents")
	}
	if i < 0 || i >= len(r.Conns) {
		return nil, fmt.Errorf("core: connection index %d out of range [0,%d)", i, len(r.Conns))
	}
	v := r.g.StationNode(t)
	if r.arrAt(r.label(v, i)).IsInf() {
		return nil, fmt.Errorf("core: station %d unreachable via connection %d", t, i)
	}
	var rides []timetable.ConnID
	for steps := 0; ; steps++ {
		if steps > r.g.NumNodes()+1 {
			return nil, fmt.Errorf("core: parent chain cycle at node %d", v)
		}
		p, c := r.parentAt(r.label(v, i))
		if p == graph.NoNode {
			break // reached the seed route node
		}
		if c >= 0 {
			rides = append(rides, c)
		}
		v = p
	}
	// Reverse into travel order.
	for a, b := 0, len(rides)-1; a < b; a, b = a+1, b-1 {
		rides[a], rides[b] = rides[b], rides[a]
	}
	return rides, nil
}

package core

import (
	"math/rand"
	"testing"

	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

func TestCSAMatchesTimeQueryDiamond(t *testing.T) {
	g := diamond(t)
	sched := NewConnectionScan(g.TT)
	for tau := timeutil.Ticks(0); tau < 1440; tau += 59 {
		tq, err := TimeQuery(g, 0, tau, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := sched.Query(0, tau, 2)
		if err != nil {
			t.Fatal(err)
		}
		for s := timetable.StationID(0); s < 4; s++ {
			want := tq.StationArrival(s)
			got := cs.StationArrival(s)
			if got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("τ=%d station %d: CSA %d vs time-query %d", tau, s, got, want)
			}
		}
	}
}

// The families exercise dense and sparse schedules; CSA shares no code with
// the graph machinery, so agreement here validates both sides.
func TestCSAMatchesTimeQueryFamilies(t *testing.T) {
	for _, fam := range []gen.Family{gen.Oahu, gen.Germany} {
		cfg, err := gen.FamilyConfig(fam, 0.05, 77)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Build(tt)
		sched := NewConnectionScan(tt)
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 6; trial++ {
			src := timetable.StationID(rng.Intn(tt.NumStations()))
			tau := timeutil.Ticks(rng.Intn(1440))
			tq, err := TimeQuery(g, src, tau, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cs, err := sched.Query(src, tau, 3)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < tt.NumStations(); s++ {
				want := tq.StationArrival(timetable.StationID(s))
				got := cs.StationArrival(timetable.StationID(s))
				if got != want && !(got.IsInf() && want.IsInf()) {
					t.Fatalf("%s: src %d τ=%d station %d: CSA %d vs time-query %d",
						fam, src, tau, s, got, want)
				}
			}
		}
	}
}

// Overnight continuation: a train crossing midnight must stay boardable
// without a transfer on its post-midnight hops.
func TestCSAOvernightTrain(t *testing.T) {
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 5)
	m := b.AddStation("M", 5)
	c := b.AddStation("C", 5)
	// Departs 23:50, M at 00:10 (+1 dwell), arrives C 00:31. The transfer
	// time 5 would make the 00:11 continuation uncatchable if the train
	// identity were lost at midnight.
	b.AddTrainRun("night", []timetable.StationID{a, m, c}, 1430, []timeutil.Ticks{20, 20}, 1)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched := NewConnectionScan(tt)
	res, err := sched.Query(a, 1400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(c); got != 1471 { // 00:31 next day
		t.Fatalf("overnight arrival at C = %d, want 1471", got)
	}
	// Cross-check against the graph machinery.
	g := graph.Build(tt)
	tq, err := TimeQuery(g, a, 1400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tq.StationArrival(c) != res.StationArrival(c) {
		t.Fatalf("CSA %d vs time-query %d", res.StationArrival(c), tq.StationArrival(c))
	}
}

// Boarding a yesterday-started trip after midnight must work: the rider
// departs at 00:05 and catches the 00:11 hop of the overnight train.
func TestCSABoardsYesterdaysTrip(t *testing.T) {
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 1)
	m := b.AddStation("M", 1)
	c := b.AddStation("C", 1)
	b.AddTrainRun("night", []timetable.StationID{a, m, c}, 1430, []timeutil.Ticks{20, 20}, 1)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched := NewConnectionScan(tt)
	// Day 1, 00:05 = 1445 absolute. The night train that started day 0 at
	// 23:50 passes M at 00:11 day 1 (= 1451).
	res, err := sched.Query(m, 1445, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(c); got != 1471 {
		t.Fatalf("arrival at C = %d, want 1471 (caught yesterday's trip)", got)
	}
}

func TestCSAErrorsAndEdgeCases(t *testing.T) {
	g := diamond(t)
	sched := NewConnectionScan(g.TT)
	if _, err := sched.Query(-1, 0, 2); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := sched.Query(0, -1, 2); err == nil {
		t.Error("negative departure accepted")
	}
	// days < 1 coerced.
	res, err := sched.Query(0, 480, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StationArrival(0) != 480 {
		t.Error("source arrival wrong")
	}
	// Convenience wrapper.
	res2, err := ConnectionScanQuery(g, 0, 480)
	if err != nil {
		t.Fatal(err)
	}
	if res2.StationArrival(3) != 510 {
		t.Errorf("wrapper arrival = %d, want 510", res2.StationArrival(3))
	}
}

// Random chaotic networks: CSA with a generous horizon agrees with the
// graph-based time-query everywhere.
func TestCSARandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 30; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		sched := NewConnectionScan(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))
		tau := timeutil.Ticks(rng.Intn(1440))
		tq, err := TimeQuery(g, src, tau, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := sched.Query(src, tau, 6)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s++ {
			want := tq.StationArrival(timetable.StationID(s))
			got := cs.StationArrival(timetable.StationID(s))
			if got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("trial %d: src %d τ=%d station %d: CSA %d vs time-query %d",
					trial, src, tau, s, got, want)
			}
		}
	}
}

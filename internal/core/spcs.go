package core

import (
	"fmt"
	"sync"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// spcsWorker runs the self-pruning connection-setting search for the
// contiguous global connection range [lo, hi) of conn(S) (Section 3.1). It
// borrows its priority queue and settled/maxconn labels from a per-thread
// workerSpace; the arrival (and parent) arrays of the shared ProfileResult
// are written only at global indexes in [lo, hi), so concurrent workers
// never touch the same label.
type spcsWorker struct {
	g    *graph.Graph
	res  *ProfileResult
	opts Options
	lo   int
	hi   int
	ws   *workerSpace
	gen  uint32

	counters stats.Counters
	// cancelled is set when the worker abandoned its range because
	// Options.Done closed; the orchestrator turns it into ErrCancelled.
	cancelled bool
}

// run executes the worker. Queue items encode (node, local connection
// index) as node*(hi-lo) + (i-lo); keys are absolute arrival times.
func (w *spcsWorker) run() {
	g, res := w.g, w.res
	kLocal := w.hi - w.lo
	if kLocal == 0 {
		return
	}
	numNodes := g.NumNodes()
	gen := w.gen
	heap := w.ws.heap(w.opts, numNodes*kLocal)
	// settled and maxconn are generation-stamped: a slot is unsettled (and
	// maxconn(v) = -1, unvisited) unless its stamp equals this query's
	// generation, so no O(n·k) clearing sweep runs between queries.
	settledGen := growU32(w.ws.settledGen, numNodes*kLocal)
	w.ws.settledGen = settledGen
	maxconn := growI32(w.ws.maxconn, numNodes)
	w.ws.maxconn = maxconn
	maxconnGen := growU32(w.ws.maxconnGen, numNodes)
	w.ws.maxconnGen = maxconnGen

	item := func(v graph.NodeID, iLocal int) int32 { return int32(int(v)*kLocal + iLocal) }

	// Initialization: seed (r, i) with key τ_dep(c_i) at the route node r
	// where connection c_i departs. Keys are the *real* departure time
	// points (arrival times at the departure platform); res.Deps holds the
	// effective departures from the source, which differ for walk-seeded
	// connections.
	for i := w.lo; i < w.hi; i++ {
		id := res.Conns[i]
		r := g.ConnDepartureNode(id)
		if heap.Push(item(r, i-w.lo), g.TT.Connections[id].Dep) {
			w.counters.QueuePushes++
		}
	}

	done := w.opts.Done
	for !heap.Empty() {
		it, key := heap.PopMin()
		w.counters.QueuePops++
		if done != nil && w.counters.QueuePops&cancelMask == 0 {
			w.counters.CancelPolls++
			if cancelled(done) {
				w.cancelled = true
				return
			}
		}
		v := graph.NodeID(int(it) / kLocal)
		iLocal := int(it) % kLocal
		i := w.lo + iLocal
		settledGen[it] = gen

		// Self-pruning: v was settled earlier by a later connection j > i
		// with arr(v, j) ≤ arr(v, i); connection i does not pay off here.
		mc := int32(-1)
		if maxconnGen[v] == gen {
			mc = maxconn[v]
		}
		if !w.opts.DisableSelfPruning && int32(i) <= mc {
			w.counters.PrunedConns++
			continue // arr stays Infinity: connection i does not 'reach' v
		}
		if int32(i) > mc {
			maxconn[v] = int32(i)
			maxconnGen[v] = gen
		}
		res.setArr(res.label(v, i), key)
		w.counters.SettledConns++

		w.relax(heap, settledGen, v, i, iLocal, key, kLocal)
	}
}

// relax expands all outgoing edges of (v, i) at arrival time key.
func (w *spcsWorker) relax(heap heapLike, settledGen []uint32, v graph.NodeID, i, iLocal int, key timeutil.Ticks, kLocal int) {
	g, res := w.g, w.res
	edges := g.OutEdges(v)
	for e := range edges {
		edge := &edges[e]
		arrTent, ride := g.EvalEdge(edge, key)
		w.counters.Relaxed++
		if arrTent.IsInf() {
			continue
		}
		head := edge.Head
		hi := int(head)*kLocal + iLocal
		if settledGen[hi] == w.gen {
			continue // connection-setting: (head, i) already final
		}
		if heap.Push(int32(hi), arrTent) {
			w.counters.QueuePushes++
			if res.hasParents {
				res.setParent(res.label(head, i), v, ride)
			}
		}
	}
}

// heapLike is the queue interface shared by the plain and pruning workers.
type heapLike interface {
	Push(item int32, key timeutil.Ticks) bool
	PopMin() (int32, timeutil.Ticks)
	Empty() bool
}

// OneToAll runs the (possibly parallel) self-pruning connection-setting
// profile search from the source station and returns all labels arr(·, ·)
// (Section 3). With opts.Threads > 1, conn(S) is partitioned by
// opts.Partition and the workers run concurrently; labels are merged by
// construction since workers write disjoint connection columns, and the
// per-station connection reduction of ProfileResult restores the FIFO
// property that is not guaranteed across threads.
//
// The result owns a private workspace and stays valid indefinitely; for
// steady-state query traffic, use Workspace.OneToAll with a pooled
// workspace instead and consume the result before the next query.
func OneToAll(g *graph.Graph, source timetable.StationID, opts Options) (*ProfileResult, error) {
	return NewWorkspace().OneToAllWindow(g, source, 0, timeutil.Infinity, opts)
}

// OneToAllWindow runs the profile search restricted to itineraries leaving
// the source (effectively) within [from, to] — Dean's interval search [5],
// referenced in the paper's related work. The resulting profiles cover
// exactly the departures in the window; with [0, ∞) it is OneToAll.
func OneToAllWindow(g *graph.Graph, source timetable.StationID, from, to timeutil.Ticks, opts Options) (*ProfileResult, error) {
	return NewWorkspace().OneToAllWindow(g, source, from, to, opts)
}

// OneToAll is the workspace-reusing form of the package-level OneToAll.
// The result borrows workspace memory and is valid until the next query on
// this workspace.
func (ws *Workspace) OneToAll(g *graph.Graph, source timetable.StationID, opts Options) (*ProfileResult, error) {
	return ws.OneToAllWindow(g, source, 0, timeutil.Infinity, opts)
}

// OneToAllWindow is the workspace-reusing form of the package-level
// OneToAllWindow.
func (ws *Workspace) OneToAllWindow(g *graph.Graph, source timetable.StationID, from, to timeutil.Ticks, opts Options) (*ProfileResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if from > to {
		return nil, fmt.Errorf("core: empty departure window [%d, %d]", from, to)
	}
	if cancelled(opts.Done) {
		return nil, ErrCancelled
	}
	start := time.Now()
	res := ws.newProfileResultWindow(g, source, opts, from, to)
	p := opts.threads()
	ws.bounds = partitionInto(ws.bounds, res.Deps, g.TT.Period, p, opts.Partition)
	bounds := ws.bounds
	nw := len(bounds) - 1

	if cap(ws.spcsBuf) < nw {
		ws.spcsBuf = make([]spcsWorker, nw)
	}
	workers := ws.spcsBuf[:nw]
	for t := 0; t < nw; t++ {
		workers[t] = spcsWorker{
			g: g, res: res, opts: opts,
			lo: bounds[t], hi: bounds[t+1],
			ws: ws.worker(t), gen: res.gen,
		}
	}
	if nw == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for t := range workers {
			wg.Add(1)
			go func(w *spcsWorker) {
				defer wg.Done()
				w.run()
			}(&workers[t])
		}
		wg.Wait()
	}

	for t := range workers {
		if workers[t].cancelled {
			return nil, ErrCancelled
		}
	}
	res.Run.PerThread = ws.counters(nw)
	for t := range workers {
		res.Run.PerThread[t] = workers[t].counters
		res.Run.Total.Add(workers[t].counters)
	}
	res.Run.Elapsed = time.Since(start)
	opts.Effort.Observe(&res.Run)
	return res, nil
}

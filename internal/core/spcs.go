package core

import (
	"fmt"
	"sync"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// spcsWorker runs the self-pruning connection-setting search for the
// contiguous global connection range [lo, hi) of conn(S) (Section 3.1). It
// owns its priority queue and maxconn labels; the arrival (and parent)
// arrays of the shared ProfileResult are written only at global indexes in
// [lo, hi), so concurrent workers never touch the same label.
type spcsWorker struct {
	g    *graph.Graph
	res  *ProfileResult
	opts Options
	lo   int
	hi   int

	counters stats.Counters
}

// run executes the worker. Queue items encode (node, local connection
// index) as node*(hi-lo) + (i-lo); keys are absolute arrival times.
func (w *spcsWorker) run() {
	g, res := w.g, w.res
	kLocal := w.hi - w.lo
	if kLocal == 0 {
		return
	}
	numNodes := g.NumNodes()
	heap := w.opts.newHeap(numNodes * kLocal)
	settled := make([]bool, numNodes*kLocal)
	// maxconn(v): highest global connection index settled at v so far; -1
	// when unvisited. Self-pruning compares global indexes, which within
	// one worker coincide with departure-time order.
	maxconn := make([]int32, numNodes)
	for i := range maxconn {
		maxconn[i] = -1
	}

	item := func(v graph.NodeID, iLocal int) int32 { return int32(int(v)*kLocal + iLocal) }

	// Initialization: seed (r, i) with key τ_dep(c_i) at the route node r
	// where connection c_i departs. Keys are the *real* departure time
	// points (arrival times at the departure platform); res.Deps holds the
	// effective departures from the source, which differ for walk-seeded
	// connections.
	for i := w.lo; i < w.hi; i++ {
		id := res.Conns[i]
		r := g.ConnDepartureNode(id)
		if heap.Push(item(r, i-w.lo), g.TT.Connections[id].Dep) {
			w.counters.QueuePushes++
		}
	}

	for !heap.Empty() {
		it, key := heap.PopMin()
		w.counters.QueuePops++
		v := graph.NodeID(int(it) / kLocal)
		iLocal := int(it) % kLocal
		i := w.lo + iLocal
		settled[it] = true

		// Self-pruning: v was settled earlier by a later connection j > i
		// with arr(v, j) ≤ arr(v, i); connection i does not pay off here.
		if !w.opts.DisableSelfPruning && int32(i) <= maxconn[v] {
			w.counters.PrunedConns++
			continue // arr stays Infinity: connection i does not 'reach' v
		}
		if int32(i) > maxconn[v] {
			maxconn[v] = int32(i)
		}
		li := res.label(v, i)
		res.arr[li] = key
		w.counters.SettledConns++

		w.relax(heap, settled, v, i, iLocal, key, kLocal)
	}
}

// relax expands all outgoing edges of (v, i) at arrival time key.
func (w *spcsWorker) relax(heap heapLike, settled []bool, v graph.NodeID, i, iLocal int, key timeutil.Ticks, kLocal int) {
	g, res := w.g, w.res
	edges := g.OutEdges(v)
	for e := range edges {
		edge := &edges[e]
		arrTent, ride := g.EvalEdge(edge, key)
		w.counters.Relaxed++
		if arrTent.IsInf() {
			continue
		}
		head := edge.Head
		hi := int(head)*kLocal + iLocal
		if settled[hi] {
			continue // connection-setting: (head, i) already final
		}
		if heap.Push(int32(hi), arrTent) {
			w.counters.QueuePushes++
			if res.parentNode != nil {
				pl := res.label(head, i)
				res.parentNode[pl] = v
				res.parentConn[pl] = ride
			}
		}
	}
}

// heapLike is the queue interface shared by the plain and pruning workers.
type heapLike interface {
	Push(item int32, key timeutil.Ticks) bool
	PopMin() (int32, timeutil.Ticks)
	Empty() bool
}

// OneToAll runs the (possibly parallel) self-pruning connection-setting
// profile search from the source station and returns all labels arr(·, ·)
// (Section 3). With opts.Threads > 1, conn(S) is partitioned by
// opts.Partition and the workers run concurrently; labels are merged by
// construction since workers write disjoint connection columns, and the
// per-station connection reduction of ProfileResult restores the FIFO
// property that is not guaranteed across threads.
func OneToAll(g *graph.Graph, source timetable.StationID, opts Options) (*ProfileResult, error) {
	return OneToAllWindow(g, source, 0, timeutil.Infinity, opts)
}

// OneToAllWindow runs the profile search restricted to itineraries leaving
// the source (effectively) within [from, to] — Dean's interval search [5],
// referenced in the paper's related work. The resulting profiles cover
// exactly the departures in the window; with [0, ∞) it is OneToAll.
func OneToAllWindow(g *graph.Graph, source timetable.StationID, from, to timeutil.Ticks, opts Options) (*ProfileResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if from > to {
		return nil, fmt.Errorf("core: empty departure window [%d, %d]", from, to)
	}
	start := time.Now()
	res := newProfileResultWindow(g, source, opts, from, to)
	p := opts.threads()
	bounds := partition(res.Deps, g.TT.Period, p, opts.Partition)
	nw := len(bounds) - 1

	workers := make([]*spcsWorker, nw)
	for t := 0; t < nw; t++ {
		workers[t] = &spcsWorker{g: g, res: res, opts: opts, lo: bounds[t], hi: bounds[t+1]}
	}
	if nw == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *spcsWorker) {
				defer wg.Done()
				w.run()
			}(w)
		}
		wg.Wait()
	}

	res.Run.PerThread = make([]stats.Counters, nw)
	for t, w := range workers {
		res.Run.PerThread[t] = w.counters
		res.Run.Total.Add(w.counters)
	}
	res.Run.Elapsed = time.Since(start)
	return res, nil
}

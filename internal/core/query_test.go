package core

import (
	"math/rand"
	"testing"

	"transit/internal/dtable"
	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// queryFixture bundles a generated network with its station graph and a
// contraction-selected distance table.
type queryFixture struct {
	g     *graph.Graph
	sg    *stationgraph.Graph
	table *dtable.Table
	env   QueryEnv
}

func buildFixture(t *testing.T, fam gen.Family, scale float64, seed int64, transferFrac float64) *queryFixture {
	t.Helper()
	cfg, err := gen.FamilyConfig(fam, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	sg := stationgraph.Build(tt)
	keep := int(float64(tt.NumStations()) * transferFrac)
	if keep < 2 {
		keep = 2
	}
	marked := sg.SelectByContraction(keep)
	pre, err := BuildDistanceTable(g, marked, Options{}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return &queryFixture{
		g:     g,
		sg:    sg,
		table: pre.Table,
		env:   QueryEnv{Graph: g, StationGraph: sg, Table: pre.Table},
	}
}

// checkAgainstOneToAll verifies that the s2s profile equals the one-to-all
// station profile at every sampled departure time.
func checkAgainstOneToAll(t *testing.T, fx *queryFixture, src, dst timetable.StationID, opts QueryOptions, label string) *StationQueryResult {
	t.Helper()
	res, err := StationToStation(fx.env, src, dst, opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	ref, err := OneToAll(fx.g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.StationProfile(dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Profile()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for tau := timeutil.Ticks(0); tau < 1440; tau += 53 {
		if got.EvalArrival(tau) != want.EvalArrival(tau) {
			t.Fatalf("%s: %d→%d profile differs at τ=%d: got %d want %d (local=%v tableHit=%v)",
				label, src, dst, tau, got.EvalArrival(tau), want.EvalArrival(tau), res.Local, res.TableHit)
		}
	}
	return res
}

func TestStationToStationAgreesEverywhere(t *testing.T) {
	fx := buildFixture(t, gen.Oahu, 0.05, 17, 0.10)
	ns := fx.g.TT.NumStations()
	rng := rand.New(rand.NewSource(99))
	variants := []struct {
		name string
		opts QueryOptions
	}{
		{"all-prunings", QueryOptions{}},
		{"no-stop", QueryOptions{DisableStoppingCriterion: true}},
		{"no-table", QueryOptions{DisableTablePruning: true}},
		{"no-target-pruning", QueryOptions{DisableTargetPruning: true}},
		{"parallel-4", QueryOptions{Options: Options{Threads: 4}}},
		{"parallel-4-no-stop", QueryOptions{Options: Options{Threads: 4}, DisableStoppingCriterion: true}},
	}
	for trial := 0; trial < 6; trial++ {
		src := timetable.StationID(rng.Intn(ns))
		dst := timetable.StationID(rng.Intn(ns))
		if src == dst {
			continue
		}
		for _, v := range variants {
			checkAgainstOneToAll(t, fx, src, dst, v.opts, v.name)
		}
	}
}

func TestStationToStationTransferEndpoints(t *testing.T) {
	fx := buildFixture(t, gen.Washington, 0.04, 23, 0.15)
	transfers := fx.table.Stations()
	if len(transfers) < 2 {
		t.Fatal("fixture has too few transfer stations")
	}
	// Both endpoints transfer stations → TableHit path.
	res := checkAgainstOneToAll(t, fx, transfers[0], transfers[len(transfers)-1], QueryOptions{}, "table-hit")
	if !res.TableHit {
		t.Error("expected TableHit for transfer→transfer query")
	}
	if res.Run.Total.SettledConns != 0 {
		t.Error("TableHit must not run a search")
	}
	// Target is a transfer station, source is not → target pruning path.
	var src timetable.StationID = -1
	for s := 0; s < fx.g.TT.NumStations(); s++ {
		if !fx.table.IsTransfer(timetable.StationID(s)) {
			src = timetable.StationID(s)
			break
		}
	}
	if src < 0 {
		t.Skip("all stations are transfer stations")
	}
	res = checkAgainstOneToAll(t, fx, src, transfers[0], QueryOptions{}, "target-transfer")
	if res.TableHit {
		t.Error("unexpected TableHit")
	}
}

func TestStationToStationLocalQuery(t *testing.T) {
	fx := buildFixture(t, gen.Germany, 0.06, 31, 0.08)
	// Find a local pair: a non-transfer target with a non-empty local set.
	isTransfer := make([]bool, fx.g.TT.NumStations())
	for _, s := range fx.table.Stations() {
		isTransfer[s] = true
	}
	for dst := 0; dst < fx.g.TT.NumStations(); dst++ {
		if isTransfer[dst] {
			continue
		}
		v := fx.sg.ComputeVias(timetable.StationID(dst), isTransfer)
		if len(v.Local) == 0 {
			continue
		}
		src := v.Local[0]
		res := checkAgainstOneToAll(t, fx, src, timetable.StationID(dst), QueryOptions{}, "local")
		if !res.Local {
			t.Fatalf("query %d→%d should be local", src, dst)
		}
		return
	}
	t.Skip("no local pair found in fixture")
}

// The stopping criterion must reduce work relative to a full one-to-all.
func TestStoppingCriterionReducesWork(t *testing.T) {
	fx := buildFixture(t, gen.Oahu, 0.06, 7, 0.05)
	ns := fx.g.TT.NumStations()
	env := QueryEnv{Graph: fx.g} // no table: isolate the stopping criterion
	rng := rand.New(rand.NewSource(5))
	var with, without int64
	for trial := 0; trial < 5; trial++ {
		src := timetable.StationID(rng.Intn(ns))
		dst := timetable.StationID(rng.Intn(ns))
		if src == dst {
			continue
		}
		a, err := StationToStation(env, src, dst, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := StationToStation(env, src, dst, QueryOptions{DisableStoppingCriterion: true})
		if err != nil {
			t.Fatal(err)
		}
		with += a.Run.Total.SettledConns
		without += b.Run.Total.SettledConns
	}
	if with >= without {
		t.Fatalf("stopping criterion did not reduce settled connections: %d vs %d", with, without)
	}
	t.Logf("stopping criterion: %d settled vs %d without (%.0f%%)", with, without, 100*float64(with)/float64(without))
}

// Distance-table pruning must further reduce work on global queries. Rail
// topologies at moderate scale have genuinely separated regions, so via
// stations actually separate sources from targets.
func TestTablePruningReducesWork(t *testing.T) {
	fx := buildFixture(t, gen.Germany, 0.30, 13, 0.08)
	ns := fx.g.TT.NumStations()
	rng := rand.New(rand.NewSource(6))
	var with, without int64
	trials := 0
	for trials < 8 {
		src := timetable.StationID(rng.Intn(ns))
		dst := timetable.StationID(rng.Intn(ns))
		if src == dst {
			continue
		}
		a, err := StationToStation(fx.env, src, dst, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Local || a.TableHit {
			continue // only global searched queries are informative
		}
		b, err := StationToStation(fx.env, src, dst, QueryOptions{DisableTablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		with += a.Run.Total.SettledConns
		without += b.Run.Total.SettledConns
		trials++
	}
	if with >= without {
		t.Fatalf("table pruning did not reduce settled connections: %d vs %d", with, without)
	}
	t.Logf("table pruning: %d settled vs %d without (%.0f%%)", with, without, 100*float64(with)/float64(without))
}

func TestStationToStationErrors(t *testing.T) {
	fx := buildFixture(t, gen.Oahu, 0.04, 3, 0.1)
	if _, err := StationToStation(QueryEnv{}, 0, 1, QueryOptions{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := StationToStation(QueryEnv{Graph: fx.g, Table: fx.table}, 0, 1, QueryOptions{}); err == nil {
		t.Error("table without station graph accepted")
	}
	if _, err := StationToStation(fx.env, -1, 1, QueryOptions{}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := StationToStation(fx.env, 0, 99999, QueryOptions{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := StationToStation(fx.env, 0, 1, QueryOptions{Options: Options{HeapArity: 5}}); err == nil {
		t.Error("bad heap arity accepted")
	}
}

func TestEarliestArrivalSelf(t *testing.T) {
	fx := buildFixture(t, gen.Oahu, 0.04, 3, 0.1)
	res, err := StationToStation(fx.env, 2, 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EarliestArrival(500); got != 500 {
		t.Fatalf("self query EarliestArrival = %d, want 500", got)
	}
}

package core

// Chaos cross-validation: random, adversarial timetables (not the
// well-behaved generator families) exercise edge cases — overnight trains,
// duplicate departures, stations with a single connection, zero transfer
// times — and every algorithm must agree with every other on the answers.

import (
	"fmt"
	"math/rand"
	"testing"

	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// randomTimetable builds a chaotic but valid timetable.
func randomTimetable(t *testing.T, rng *rand.Rand) *timetable.Timetable {
	t.Helper()
	nStations := 4 + rng.Intn(12)
	b := timetable.NewBuilder(day)
	ids := make([]timetable.StationID, nStations)
	for i := range ids {
		ids[i] = b.AddStation(fmt.Sprintf("s%d", i), timeutil.Ticks(rng.Intn(6)))
	}
	nTrains := 5 + rng.Intn(40)
	for z := 0; z < nTrains; z++ {
		length := 2 + rng.Intn(5)
		if length > nStations {
			length = nStations
		}
		perm := rng.Perm(nStations)[:length]
		path := make([]timetable.StationID, length)
		for i, p := range perm {
			path[i] = ids[p]
		}
		hops := make([]timeutil.Ticks, length-1)
		for h := range hops {
			hops[h] = timeutil.Ticks(1 + rng.Intn(200))
		}
		// Departures anywhere in the period, including close to midnight so
		// runs wrap.
		b.AddTrainRun(fmt.Sprintf("z%d", z), path, timeutil.Ticks(rng.Intn(1440)), hops, timeutil.Ticks(rng.Intn(4)))
	}
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestRandomNetworksCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))

		spcs, err := OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := 1 + rng.Intn(7)
		strat := PartitionStrategy(rng.Intn(3))
		par, err := OneToAll(g, src, Options{Threads: p, Partition: strat})
		if err != nil {
			t.Fatal(err)
		}
		lc, err := LabelCorrecting(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pareto, err := OneToAllPareto(g, src, 8, Options{})
		if err != nil {
			t.Fatal(err)
		}

		for s := 0; s < tt.NumStations(); s++ {
			st := timetable.StationID(s)
			if st == src {
				continue
			}
			parProf, err := par.StationProfile(st)
			if err != nil {
				t.Fatal(err)
			}
			lcProf, err := lc.StationProfile(st)
			if err != nil {
				t.Fatal(err)
			}
			paretoProf, err := pareto.StationProfile(st, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []timeutil.Ticks{0, timeutil.Ticks(rng.Intn(1440)), 719, 1439} {
				want := spcs.EarliestArrival(st, tau)
				// Reference: independent time-query.
				tq, err := TimeQuery(g, src, tau, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if got := tq.StationArrival(st); got != want {
					t.Fatalf("trial %d: time-query %d vs profile %d (src %d, dst %d, τ=%d)",
						trial, got, want, src, s, tau)
				}
				if got := parProf.EvalArrival(tau); got != want && !(got.IsInf() && want.IsInf()) {
					t.Fatalf("trial %d: parallel(p=%d,%v) %d vs %d (src %d, dst %d, τ=%d)",
						trial, p, strat, got, want, src, s, tau)
				}
				if got := lcProf.EvalArrival(tau); got != want && !(got.IsInf() && want.IsInf()) {
					t.Fatalf("trial %d: LC %d vs %d (src %d, dst %d, τ=%d)", trial, got, want, src, s, tau)
				}
				if got := paretoProf.EvalArrival(tau); got != want && !(got.IsInf() && want.IsInf()) {
					t.Fatalf("trial %d: pareto %d vs %d (src %d, dst %d, τ=%d)", trial, got, want, src, s, tau)
				}
			}
		}
	}
}

// Station-to-station with all prunings must agree with one-to-all on
// random chaotic networks, including after preprocessing with random
// transfer-station selections.
func TestRandomNetworksStationToStation(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		sg := stationgraph.Build(tt)
		// Random transfer-station selection (possibly empty or full).
		marked := make([]bool, tt.NumStations())
		for i := range marked {
			marked[i] = rng.Intn(3) == 0
		}
		pre, err := BuildDistanceTable(g, marked, Options{}, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		env := QueryEnv{Graph: g, StationGraph: sg, Table: pre.Table}

		src := timetable.StationID(rng.Intn(tt.NumStations()))
		ref, err := OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s++ {
			dst := timetable.StationID(s)
			if dst == src {
				continue
			}
			res, err := StationToStation(env, src, dst, QueryOptions{
				Options: Options{Threads: 1 + rng.Intn(4)},
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Profile()
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.StationProfile(dst)
			if err != nil {
				t.Fatal(err)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 111 {
				g1, w1 := got.EvalArrival(tau), want.EvalArrival(tau)
				if g1 != w1 && !(g1.IsInf() && w1.IsInf()) {
					t.Fatalf("trial %d: s2s %d vs one-to-all %d (src %d, dst %d, τ=%d, local=%v hit=%v)",
						trial, g1, w1, src, s, tau, res.Local, res.TableHit)
				}
			}
		}
	}
}

// Heap arity never changes any answer on chaotic networks.
func TestRandomNetworksHeapArity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))
		a, err := OneToAll(g, src, Options{HeapArity: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := OneToAll(g, src, Options{HeapArity: 4})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s++ {
			st := timetable.StationID(s)
			for tau := timeutil.Ticks(100); tau < 1440; tau += 217 {
				if a.EarliestArrival(st, tau) != b.EarliestArrival(st, tau) {
					t.Fatalf("trial %d: heap arity changed answer at station %d", trial, s)
				}
			}
		}
	}
}

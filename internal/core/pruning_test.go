package core

// Focused activation tests for the Section 4 prunings: beyond the
// agreement tests (answers never change), these verify each mechanism
// actually fires and saves work in the situation it was designed for.

import (
	"testing"

	"transit/internal/dtable"
	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// railEnv builds a rail fixture with a contraction-selected table.
func railEnv(t *testing.T, scale float64, keepFrac float64) (QueryEnv, *graph.Graph, *dtable.Table) {
	t.Helper()
	cfg, err := gen.FamilyConfig(gen.Germany, scale, 41)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	sg := stationgraph.Build(tt)
	keep := int(float64(tt.NumStations()) * keepFrac)
	if keep < 2 {
		keep = 2
	}
	marked := sg.SelectByContraction(keep)
	pre, err := BuildDistanceTable(g, marked, Options{}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return QueryEnv{Graph: g, StationGraph: sg, Table: pre.Table}, g, pre.Table
}

// Target pruning (Theorem 4) must reduce work on queries whose target is a
// transfer station, with unchanged answers.
func TestTargetPruningActivates(t *testing.T) {
	env, g, table := railEnv(t, 0.25, 0.15)
	transfers := table.Stations()
	var withSum, withoutSum int64
	checked := 0
	for _, target := range transfers {
		for src := 0; src < g.TT.NumStations() && checked < 12; src += 17 {
			s := timetable.StationID(src)
			if s == target || table.IsTransfer(s) {
				continue // transfer→transfer answers from the table directly
			}
			with, err := StationToStation(env, s, target, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			without, err := StationToStation(env, s, target, QueryOptions{DisableTargetPruning: true})
			if err != nil {
				t.Fatal(err)
			}
			pw, err1 := with.Profile()
			po, err2 := without.Profile()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 97 {
				a, b := pw.EvalArrival(tau), po.EvalArrival(tau)
				if a != b && !(a.IsInf() && b.IsInf()) {
					t.Fatalf("target pruning changed answer %d→%d at τ=%d: %d vs %d", s, target, tau, a, b)
				}
			}
			withSum += with.Run.Total.SettledConns
			withoutSum += without.Run.Total.SettledConns
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no suitable source/target pairs")
	}
	if withSum > withoutSum {
		t.Errorf("target pruning increased work: %d vs %d over %d queries", withSum, withoutSum, checked)
	}
	t.Logf("target pruning: %d vs %d settled over %d queries (%.0f%%)",
		withSum, withoutSum, checked, 100*float64(withSum)/float64(withoutSum))
}

// The distance table must satisfy the triangle inequality through any
// intermediate transfer station *when the change at B pays the transfer
// time T(B)*: D(A,C,τ) ≤ D(B,C, D(A,B,τ) + T(B)). (Without T(B) the
// composition describes an impossible zero-time change and may legally
// beat the direct profile — D excludes transfer times at its endpoints by
// definition, cf. Section 4.)
func TestDistanceTableTriangleInequality(t *testing.T) {
	_, g, table := railEnv(t, 0.15, 0.2)
	ts := table.Stations()
	if len(ts) < 3 {
		t.Skip("too few transfer stations")
	}
	for ai := 0; ai < len(ts); ai += 2 {
		for bi := 0; bi < len(ts); bi += 3 {
			for ci := 0; ci < len(ts); ci += 2 {
				a, b, c := ts[ai], ts[bi], ts[ci]
				if a == b || b == c || a == c {
					continue
				}
				tb := g.TT.Stations[b].Transfer
				for tau := timeutil.Ticks(300); tau < 1440; tau += 420 {
					direct := table.D(a, c, tau)
					viaB := table.D(a, b, tau)
					if !viaB.IsInf() {
						viaB = table.D(b, c, viaB+tb)
					}
					if viaB < direct {
						t.Fatalf("triangle violated: D(%d,%d,%d)=%d but via %d (with T=%d) gives %d",
							a, c, tau, direct, b, tb, viaB)
					}
				}
			}
		}
	}
}

// The stopping criterion's packed atomic state must behave correctly at
// the boundaries.
func TestStopStatePacking(t *testing.T) {
	var s stopState
	if s.shouldPrune(0, 0) {
		t.Fatal("empty state pruned")
	}
	s.observeTargetSettle(5, 700)
	if !s.shouldPrune(5, 700) || !s.shouldPrune(3, 800) {
		t.Fatal("dominated entries not pruned")
	}
	if s.shouldPrune(5, 699) {
		t.Fatal("earlier-arriving entry pruned")
	}
	if s.shouldPrune(6, 900) {
		t.Fatal("higher connection index pruned")
	}
	// Lower index never overwrites.
	s.observeTargetSettle(2, 100)
	if s.shouldPrune(4, 650) {
		t.Fatal("state regressed to lower index")
	}
	// Higher index replaces.
	s.observeTargetSettle(9, 1200)
	if !s.shouldPrune(8, 1300) {
		t.Fatal("updated state not applied")
	}
	// Large arrival values (near Infinity) survive the 32-bit packing.
	var s2 stopState
	s2.observeTargetSettle(1, timeutil.Infinity-1)
	if !s2.shouldPrune(0, timeutil.Infinity) {
		t.Fatal("large arrival broken by packing")
	}
	if s2.shouldPrune(0, 100) {
		t.Fatal("small key pruned against large arrival")
	}
}

// Local queries must skip table pruning entirely but still finish with
// correct answers (covered) and the stopping criterion active.
func TestLocalQueryUsesStoppingOnly(t *testing.T) {
	env, g, table := railEnv(t, 0.2, 0.1)
	isTransfer := make([]bool, g.TT.NumStations())
	for _, s := range table.Stations() {
		isTransfer[s] = true
	}
	sg := env.StationGraph
	for dst := 0; dst < g.TT.NumStations(); dst++ {
		if isTransfer[dst] {
			continue
		}
		v := sg.ComputeVias(timetable.StationID(dst), isTransfer)
		if len(v.Local) == 0 {
			continue
		}
		src := v.Local[0]
		res, err := StationToStation(env, src, timetable.StationID(dst), QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Local {
			t.Fatalf("%d→%d should be local", src, dst)
		}
		noStop, err := StationToStation(env, src, timetable.StationID(dst), QueryOptions{DisableStoppingCriterion: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Run.Total.SettledConns > noStop.Run.Total.SettledConns {
			t.Fatalf("stopping criterion inactive on local query: %d vs %d",
				res.Run.Total.SettledConns, noStop.Run.Total.SettledConns)
		}
		return
	}
	t.Skip("no local pair found")
}

package core

import (
	"testing"

	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// paretoNetwork: A→D has a slow direct line (0 transfers, 60 min) and a
// fast two-leg path via B (1 transfer, 25 min + change + 10 min).
func paretoNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 3)
	d := b.AddStation("D", 2)
	// Direct slow line, hourly.
	for h := 6; h <= 20; h++ {
		b.AddTrainRun("slow", []timetable.StationID{a, d}, timeutil.Ticks(h*60), []timeutil.Ticks{60}, 0)
	}
	// Fast leg A→B, every 30 min.
	for h := 6; h <= 20; h++ {
		b.AddTrainRun("leg1", []timetable.StationID{a, bb}, timeutil.Ticks(h*60), []timeutil.Ticks{25}, 0)
		b.AddTrainRun("leg1", []timetable.StationID{a, bb}, timeutil.Ticks(h*60+30), []timeutil.Ticks{25}, 0)
	}
	// Fast leg B→D, every 30 min at :58/:28 (connects after 25 min ride + 3 transfer).
	for h := 6; h <= 20; h++ {
		b.AddTrainRun("leg2", []timetable.StationID{bb, d}, timeutil.Ticks(h*60+28), []timeutil.Ticks{10}, 0)
		b.AddTrainRun("leg2", []timetable.StationID{bb, d}, timeutil.Ticks(h*60+58), []timeutil.Ticks{10}, 0)
	}
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return graph.Build(tt)
}

func TestParetoFrontierHandcrafted(t *testing.T) {
	g := paretoNetwork(t)
	res, err := OneToAllPareto(g, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Departing 08:00 (480): 0 transfers → direct slow arrives 540.
	// 1 transfer → leg1 480+25=505, transfer 3 → catch 508... next leg2 at
	// 508 → dep 508 arrives 518.
	set, err := res.ParetoSet(2, 480) // station D
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("Pareto set = %+v, want 2 choices", set)
	}
	if set[0].Transfers != 0 || set[0].Arrival != 540 {
		t.Errorf("0-transfer choice = %+v, want arrival 540", set[0])
	}
	if set[1].Transfers != 1 || set[1].Arrival != 518 {
		t.Errorf("1-transfer choice = %+v, want arrival 518", set[1])
	}
}

// With a generous transfer budget, the Pareto arrival must equal the
// unconstrained SPCS profile everywhere.
func TestParetoMatchesUnconstrained(t *testing.T) {
	for _, fam := range []gen.Family{gen.Oahu, gen.Germany} {
		cfg, err := gen.FamilyConfig(fam, 0.05, 13)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Build(tt)
		src := timetable.StationID(1)
		plain, err := OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pareto, err := OneToAllPareto(g, src, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s += 4 {
			st := timetable.StationID(s)
			if st == src {
				continue
			}
			pf, err := pareto.StationProfile(st, 10)
			if err != nil {
				t.Fatal(err)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 173 {
				want := plain.EarliestArrival(st, tau)
				got := pf.EvalArrival(tau)
				if got != want {
					t.Fatalf("%s: station %d τ=%d: pareto %d vs plain %d", fam, s, tau, got, want)
				}
			}
		}
	}
}

// Arrivals must be monotone non-increasing in the transfer budget, and the
// Pareto frontier strictly improving.
func TestParetoMonotonicity(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Washington, 0.05, 29)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	res, err := OneToAllPareto(g, 0, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < tt.NumStations(); s += 3 {
		st := timetable.StationID(s)
		for i := 0; i < len(res.Conns); i += 17 {
			prev := timeutil.Infinity
			for u := 0; u <= 6; u++ {
				a := res.Arrival(st, i, u)
				if a > prev {
					t.Fatalf("arrival increased with budget at station %d conn %d u=%d: %d > %d", s, i, u, a, prev)
				}
				prev = a
			}
		}
		set, err := res.ParetoSet(st, 480)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(set); j++ {
			if set[j].Arrival >= set[j-1].Arrival || set[j].Transfers <= set[j-1].Transfers {
				t.Fatalf("frontier not strictly improving at station %d: %+v", s, set)
			}
		}
	}
}

// Parallel Pareto search must equal sequential.
func TestParetoParallelEquivalence(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Germany, 0.06, 4)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	seq, err := OneToAllPareto(g, 2, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OneToAllPareto(g, 2, 4, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < tt.NumStations(); s += 5 {
		st := timetable.StationID(s)
		for u := 0; u <= 4; u += 2 {
			fs, err1 := seq.StationProfile(st, u)
			fp, err2 := par.StationProfile(st, u)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 201 {
				if fs.EvalArrival(tau) != fp.EvalArrival(tau) {
					t.Fatalf("parallel differs at station %d u=%d τ=%d", s, u, tau)
				}
			}
		}
	}
}

// Self-pruning must not change Pareto answers, only work.
func TestParetoSelfPruningCorrect(t *testing.T) {
	cfg, err := gen.FamilyConfig(gen.Oahu, 0.04, 8)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	with, err := OneToAllPareto(g, 0, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := OneToAllPareto(g, 0, 4, Options{DisableSelfPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Run.Total.SettledConns >= without.Run.Total.SettledConns {
		t.Errorf("layered self-pruning saved no work: %d vs %d",
			with.Run.Total.SettledConns, without.Run.Total.SettledConns)
	}
	for s := 1; s < tt.NumStations(); s += 2 {
		st := timetable.StationID(s)
		for u := 0; u <= 4; u++ {
			a, err1 := with.StationProfile(st, u)
			b, err2 := without.StationProfile(st, u)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 157 {
				if a.EvalArrival(tau) != b.EvalArrival(tau) {
					t.Fatalf("self-pruning changed Pareto answer at station %d u=%d τ=%d", s, u, tau)
				}
			}
		}
	}
}

func TestParetoErrors(t *testing.T) {
	g := paretoNetwork(t)
	if _, err := OneToAllPareto(g, -1, 3, Options{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := OneToAllPareto(g, 0, -1, Options{}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := OneToAllPareto(g, 0, 99, Options{}); err == nil {
		t.Error("huge budget accepted")
	}
	if _, err := OneToAllPareto(g, 0, 3, Options{TrackParents: true}); err == nil {
		t.Error("parent tracking accepted")
	}
	if _, err := OneToAllPareto(g, 0, 3, Options{HeapArity: 7}); err == nil {
		t.Error("bad heap accepted")
	}
}

// Zero transfer budget answers single-seat rides only.
func TestParetoZeroBudget(t *testing.T) {
	g := paretoNetwork(t)
	res, err := OneToAllPareto(g, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// D reachable directly (slow line) — 08:00 → 09:00.
	if a := res.Arrival(2, connAt(t, res, 480, 2), 0); a != 540 {
		t.Errorf("0-transfer arrival = %d, want 540", a)
	}
	set, err := res.ParetoSet(2, 480)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0].Transfers != 0 {
		t.Fatalf("zero-budget Pareto set: %+v", set)
	}
}

// connAt finds the connection index departing at dep toward the given
// station.
func connAt(t *testing.T, res *ParetoResult, dep timeutil.Ticks, to timetable.StationID) int {
	t.Helper()
	for i, id := range res.Conns {
		c := res.g.TT.Connections[id]
		if c.Dep == dep && c.To == to {
			return i
		}
	}
	t.Fatalf("no connection departing %d toward %d", dep, to)
	return -1
}

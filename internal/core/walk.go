package core

import (
	"cmp"
	"slices"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// walkDistances computes the shortest walking time from the source to every
// footpath-reachable station (transitive closure over footpaths), including
// the source itself at 0. Footpath graphs are tiny, so a simple scan-based
// Dijkstra suffices. The returned map is workspace memory, reused by the
// next query on the same workspace.
func (ws *Workspace) walkDistances(tt *timetable.Timetable, source timetable.StationID) map[timetable.StationID]timeutil.Ticks {
	dist := ws.walk
	clear(dist)
	dist[source] = 0
	if len(tt.Footpaths) == 0 {
		return dist
	}
	settled := ws.wseen
	clear(settled)
	for {
		var u timetable.StationID = -1
		best := timeutil.Infinity
		for s, d := range dist {
			if !settled[s] && d < best {
				u, best = s, d
			}
		}
		if u < 0 {
			return dist
		}
		settled[u] = true
		for _, f := range tt.FootpathsFrom(u) {
			if nd := best + f.Walk; nd < distOrInf(dist, f.To) {
				dist[f.To] = nd
			}
		}
	}
}

func distOrInf(m map[timetable.StationID]timeutil.Ticks, s timetable.StationID) timeutil.Ticks {
	if d, ok := m[s]; ok {
		return d
	}
	return timeutil.Infinity
}

// extendedConns builds the profile search's seed list for a source with
// footpaths: every outgoing connection of every walk-reachable station
// (including the source itself), with *effective departures* — the latest
// time one must leave the source on foot to catch the connection. Without
// footpaths this degenerates to the paper's conn(S).
//
// Effective departures may be negative (leaving "yesterday" to catch an
// early connection after a walk); the periodic profile machinery wraps
// them. The list is sorted by effective departure, preserving the ordering
// assumption (j > i ⇒ dep_j ≥ dep_i) that self-pruning and the stopping
// criterion rely on.
//
// Boarding at a walked-to station W pays the transfer buffer T(W), matching
// the graph model where footpaths arrive at station nodes and boarding
// costs T; only departures from the source itself are buffer-free (the
// paper's convention of seeding route nodes directly).
//
// The returned slices are workspace memory — except in the footpath-free
// case, where the connection list is the timetable's own (immutable)
// outgoing slice and only the departures are workspace-owned.
func (ws *Workspace) extendedConns(tt *timetable.Timetable, source timetable.StationID, walk map[timetable.StationID]timeutil.Ticks) ([]timetable.ConnID, []timeutil.Ticks) {
	if len(walk) == 1 {
		// No footpaths from the source: exactly the paper's conn(S).
		ids := tt.Outgoing(source)
		ws.deps = growTicks(ws.deps, len(ids))
		for i, id := range ids {
			ws.deps[i] = tt.Connections[id].Dep
		}
		return ids, ws.deps
	}
	seeds := ws.seeds[:0]
	for s, w := range walk {
		lead := w
		if s != source {
			lead += tt.Stations[s].Transfer
		}
		for _, id := range tt.Outgoing(s) {
			seeds = append(seeds, connSeed{id: id, dep: tt.Connections[id].Dep - lead})
		}
	}
	slices.SortFunc(seeds, func(a, b connSeed) int {
		if c := cmp.Compare(a.dep, b.dep); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	ws.seeds = seeds
	ws.conns = ws.conns[:0]
	ws.deps = ws.deps[:0]
	for _, s := range seeds {
		ws.conns = append(ws.conns, s.id)
		ws.deps = append(ws.deps, s.dep)
	}
	return ws.conns, ws.deps
}

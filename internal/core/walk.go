package core

import (
	"sort"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// walkDistances computes the shortest walking time from the source to every
// footpath-reachable station (transitive closure over footpaths), including
// the source itself at 0. Footpath graphs are tiny, so a simple scan-based
// Dijkstra suffices.
func walkDistances(tt *timetable.Timetable, source timetable.StationID) map[timetable.StationID]timeutil.Ticks {
	dist := map[timetable.StationID]timeutil.Ticks{source: 0}
	if len(tt.Footpaths) == 0 {
		return dist
	}
	settled := map[timetable.StationID]bool{}
	for {
		var u timetable.StationID = -1
		best := timeutil.Infinity
		for s, d := range dist {
			if !settled[s] && d < best {
				u, best = s, d
			}
		}
		if u < 0 {
			return dist
		}
		settled[u] = true
		for _, f := range tt.FootpathsFrom(u) {
			if nd := best + f.Walk; nd < distOrInf(dist, f.To) {
				dist[f.To] = nd
			}
		}
	}
}

func distOrInf(m map[timetable.StationID]timeutil.Ticks, s timetable.StationID) timeutil.Ticks {
	if d, ok := m[s]; ok {
		return d
	}
	return timeutil.Infinity
}

// extendedConns builds the profile search's seed list for a source with
// footpaths: every outgoing connection of every walk-reachable station
// (including the source itself), with *effective departures* — the latest
// time one must leave the source on foot to catch the connection. Without
// footpaths this degenerates to the paper's conn(S).
//
// Effective departures may be negative (leaving "yesterday" to catch an
// early connection after a walk); the periodic profile machinery wraps
// them. The list is sorted by effective departure, preserving the ordering
// assumption (j > i ⇒ dep_j ≥ dep_i) that self-pruning and the stopping
// criterion rely on.
//
// Boarding at a walked-to station W pays the transfer buffer T(W), matching
// the graph model where footpaths arrive at station nodes and boarding
// costs T; only departures from the source itself are buffer-free (the
// paper's convention of seeding route nodes directly).
func extendedConns(tt *timetable.Timetable, source timetable.StationID, walk map[timetable.StationID]timeutil.Ticks) ([]timetable.ConnID, []timeutil.Ticks) {
	if len(walk) == 1 {
		// No footpaths from the source: exactly the paper's conn(S).
		ids := tt.Outgoing(source)
		deps := make([]timeutil.Ticks, len(ids))
		for i, id := range ids {
			deps[i] = tt.Connections[id].Dep
		}
		return ids, deps
	}
	type seed struct {
		id  timetable.ConnID
		dep timeutil.Ticks
	}
	var seeds []seed
	for s, w := range walk {
		lead := w
		if s != source {
			lead += tt.Stations[s].Transfer
		}
		for _, id := range tt.Outgoing(s) {
			seeds = append(seeds, seed{id: id, dep: tt.Connections[id].Dep - lead})
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].dep != seeds[j].dep {
			return seeds[i].dep < seeds[j].dep
		}
		return seeds[i].id < seeds[j].id
	})
	ids := make([]timetable.ConnID, len(seeds))
	deps := make([]timeutil.Ticks, len(seeds))
	for i, s := range seeds {
		ids[i] = s.id
		deps[i] = s.dep
	}
	return ids, deps
}

package core

// Footpath integration: walking links must be honored consistently by
// every algorithm — time-query, SPCS (sequential and parallel), CSA,
// Pareto — and survive the station-to-station prunings.

import (
	"math/rand"
	"testing"

	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// footpathNetwork: two parallel lines A→B and C→D, linked only by a
// footpath B→C (5 min walk). Reaching D from A requires the walk.
func footpathNetwork(t *testing.T) *graph.Graph {
	t.Helper()
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 2)
	c := b.AddStation("C", 2)
	d := b.AddStation("D", 2)
	for h := 6; h <= 20; h++ {
		b.AddTrainRun("l1", []timetable.StationID{a, bb}, timeutil.Ticks(h*60), []timeutil.Ticks{15}, 0)
		b.AddTrainRun("l2", []timetable.StationID{c, d}, timeutil.Ticks(h*60+30), []timeutil.Ticks{15}, 0)
	}
	b.AddFootpath(bb, c, 5)
	b.AddFootpath(c, bb, 5)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return graph.Build(tt)
}

func TestFootpathTimeQuery(t *testing.T) {
	g := footpathNetwork(t)
	// Depart A 08:00 → B 08:15 → walk to C 08:20 → board 08:30 (+T(C)=2
	// still catchable: 08:20+2=08:22 ≤ 08:30) → D 08:45.
	res, err := TimeQuery(g, 0, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(3); got != 525 {
		t.Fatalf("arrival at D = %d, want 525", got)
	}
	if got := res.StationArrival(2); got != 500 {
		t.Fatalf("arrival at C = %d, want 500 (on foot)", got)
	}
}

func TestFootpathAllAlgorithmsAgree(t *testing.T) {
	g := footpathNetwork(t)
	sched := NewConnectionScan(g.TT)
	prof, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OneToAll(g, 0, Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	pareto, err := OneToAllPareto(g, 0, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for tau := timeutil.Ticks(0); tau < 1440; tau += 93 {
		tq, err := TimeQuery(g, 0, tau, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := sched.Query(0, tau, 3)
		if err != nil {
			t.Fatal(err)
		}
		for s := timetable.StationID(1); s < 4; s++ {
			want := tq.StationArrival(s)
			if got := prof.EarliestArrival(s, tau); got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("SPCS τ=%d station %d: %d vs %d", tau, s, got, want)
			}
			if got := par.EarliestArrival(s, tau); got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("parallel τ=%d station %d: %d vs %d", tau, s, got, want)
			}
			if got := cs.StationArrival(s); got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("CSA τ=%d station %d: %d vs %d", tau, s, got, want)
			}
			pf, err := pareto.StationProfile(s, 6)
			if err != nil {
				t.Fatal(err)
			}
			if got := pf.EvalArrival(tau); got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("pareto τ=%d station %d: %d vs %d", tau, s, got, want)
			}
		}
	}
}

// Walking does not count as a transfer: A→B, walk, C→D is one transfer
// (boarding the second train), not two.
func TestFootpathParetoTransferCount(t *testing.T) {
	g := footpathNetwork(t)
	res, err := OneToAllPareto(g, 0, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := res.ParetoSet(3, 480)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("D unreachable")
	}
	if set[0].Transfers != 1 {
		t.Fatalf("first choice uses %d transfers, want 1 (walk is free)", set[0].Transfers)
	}
}

// Station-to-station with prunings and footpaths agrees with one-to-all on
// random networks that include random footpaths.
func TestFootpathStationToStation(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 15; trial++ {
		tt := randomTimetableWithFootpaths(t, rng)
		g := graph.Build(tt)
		sg := stationgraph.Build(tt)
		marked := make([]bool, tt.NumStations())
		for i := range marked {
			marked[i] = rng.Intn(4) == 0
		}
		pre, err := BuildDistanceTable(g, marked, Options{}, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		env := QueryEnv{Graph: g, StationGraph: sg, Table: pre.Table}
		src := timetable.StationID(rng.Intn(tt.NumStations()))
		ref, err := OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s += 2 {
			dst := timetable.StationID(s)
			if dst == src {
				continue
			}
			res, err := StationToStation(env, src, dst, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Profile()
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.StationProfile(dst)
			if err != nil {
				t.Fatal(err)
			}
			for tau := timeutil.Ticks(0); tau < 1440; tau += 177 {
				a, b := got.EvalArrival(tau), want.EvalArrival(tau)
				if a != b && !(a.IsInf() && b.IsInf()) {
					t.Fatalf("trial %d: %d→%d τ=%d: s2s %d vs %d", trial, src, s, tau, a, b)
				}
			}
		}
	}
}

// randomTimetableWithFootpaths rebuilds a chaotic timetable with random
// walking links added.
func randomTimetableWithFootpaths(t *testing.T, rng *rand.Rand) *timetable.Timetable {
	t.Helper()
	base := randomTimetable(t, rng)
	nFoot := rng.Intn(6)
	foot := make([]timetable.Footpath, 0, nFoot)
	for i := 0; i < nFoot; i++ {
		from := timetable.StationID(rng.Intn(base.NumStations()))
		to := timetable.StationID(rng.Intn(base.NumStations()))
		if from == to {
			continue
		}
		foot = append(foot, timetable.Footpath{From: from, To: to, Walk: timeutil.Ticks(rng.Intn(20))})
	}
	tt, err := timetable.NewWithFootpaths(base.Period, base.Stations, base.Trains, base.Connections, foot)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

// Initial walks: when walking from the source to a neighbour station first
// is the best start, the profile searches must find it — this exercises the
// extended seeding (effective departures) rather than plain conn(S).
func TestFootpathInitialWalk(t *testing.T) {
	b := timetable.NewBuilder(day)
	s := b.AddStation("S", 2) // source: bad service
	w := b.AddStation("W", 2) // walkable neighbour: good service
	d := b.AddStation("D", 2) // destination
	// From S directly: one slow midday train.
	b.AddTrainRun("slowdirect", []timetable.StationID{s, d}, 720, []timeutil.Ticks{120}, 0)
	// From W: fast frequent trains.
	for h := 6; h <= 20; h++ {
		b.AddTrainRun("fast", []timetable.StationID{w, d}, timeutil.Ticks(h*60), []timeutil.Ticks{20}, 0)
	}
	b.AddFootpath(s, w, 7)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)

	// Departing S at 07:50: walk to W (arrive 07:57), board 08:00, arrive
	// 08:20. The direct train would arrive 14:00.
	prof, err := OneToAll(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.EarliestArrival(d, 470); got != 500 {
		t.Fatalf("profile arrival = %d, want 500 (walk first)", got)
	}
	// Full agreement with the time-query and CSA at every departure.
	sched := NewConnectionScan(tt)
	for tau := timeutil.Ticks(0); tau < 1440; tau += 41 {
		tq, err := TimeQuery(g, s, tau, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := sched.Query(s, tau, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, dst := range []timetable.StationID{w, d} {
			want := tq.StationArrival(dst)
			if got := prof.EarliestArrival(dst, tau); got != want {
				t.Fatalf("SPCS τ=%d dst %d: %d vs time-query %d", tau, dst, got, want)
			}
			if got := cs.StationArrival(dst); got != want && !(got.IsInf() && want.IsInf()) {
				t.Fatalf("CSA τ=%d dst %d: %d vs time-query %d", tau, dst, got, want)
			}
		}
	}
	// Station-to-station (no table) agrees too, including the walk-only
	// answer to W.
	env := QueryEnv{Graph: g}
	res, err := StationToStation(env, s, w, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EarliestArrival(470); got != 477 {
		t.Fatalf("s2s to W = %d, want 477 (pure walk)", got)
	}
	resD, err := StationToStation(env, s, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resD.EarliestArrival(470); got != 500 {
		t.Fatalf("s2s to D = %d, want 500", got)
	}
	// Pareto includes the walk-first itinerary (1 boarding = 0 transfers).
	pareto, err := OneToAllPareto(g, s, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := pareto.ParetoSet(d, 470)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 || set[len(set)-1].Arrival != 500 {
		t.Fatalf("pareto missing walk-first itinerary: %+v", set)
	}
}

// Random footpath networks: every algorithm agrees with the time-query,
// now including initial walks from the source.
func TestFootpathRandomCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 25; trial++ {
		tt := randomTimetableWithFootpaths(t, rng)
		g := graph.Build(tt)
		sched := NewConnectionScan(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))
		prof, err := OneToAll(g, src, Options{Threads: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tau := range []timeutil.Ticks{0, timeutil.Ticks(rng.Intn(1440)), 1439} {
			tq, err := TimeQuery(g, src, tau, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cs, err := sched.Query(src, tau, 6)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < tt.NumStations(); s++ {
				dst := timetable.StationID(s)
				want := tq.StationArrival(dst)
				got := prof.EarliestArrival(dst, tau)
				if got != want && !(got.IsInf() && want.IsInf()) {
					t.Fatalf("trial %d: SPCS src %d dst %d τ=%d: %d vs %d", trial, src, s, tau, got, want)
				}
				gotCS := cs.StationArrival(dst)
				if gotCS != want && !(gotCS.IsInf() && want.IsInf()) {
					t.Fatalf("trial %d: CSA src %d dst %d τ=%d: %d vs %d", trial, src, s, tau, gotCS, want)
				}
			}
		}
	}
}

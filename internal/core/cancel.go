package core

import "errors"

// ErrCancelled is returned by the search entry points when Options.Done was
// closed before the search completed. Callers that drive searches from a
// context.Context (transit.Network.Plan) translate it back into the
// context's own error.
var ErrCancelled = errors.New("core: search cancelled")

// cancelStride is how many queue pops a settle loop runs between two polls
// of Options.Done. The stride keeps the steady-state overhead of
// cancellation support to a single nil check per pop (measurably within
// noise on the zero-allocation station-to-station benchmark) while still
// bounding the latency of an abort to a few thousand settles — microseconds
// on any realistic network. Must be a power of two: the loops test
// pops&cancelMask == 0.
const (
	cancelStride = 4096
	cancelMask   = cancelStride - 1
)

// cancelled reports whether done is closed, without blocking. done may be
// nil (never cancelled).
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

package core

import (
	"fmt"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// LabelCorrecting runs the classic profile-search baseline of Section 2:
// travel-time *functions* instead of scalars are propagated through the
// network, so the label-setting property is lost and nodes re-enter the
// queue whenever any point of their function improves. The result is
// label-compatible with OneToAll (same arr(v, i) semantics), but the work
// differs greatly — this is the LC row of Table 1.
//
// Counting follows the paper: the settled-connections figure is the sum of
// the sizes of the connection labels taken from the priority queue, i.e.
// every pop contributes the number of finite points of the popped node's
// function, all of which are relaxed.
func LabelCorrecting(g *graph.Graph, source timetable.StationID, opts Options) (*ProfileResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if opts.TrackParents {
		return nil, fmt.Errorf("core: LabelCorrecting does not support parent tracking")
	}
	start := time.Now()
	ws := NewWorkspace() // private: the result keeps the label memory alive
	res := ws.newProfileResult(g, source, opts)
	k := res.K()
	numNodes := g.NumNodes()
	var c stats.Counters

	heap := ws.worker(0).heap(opts, numNodes)

	// Seed the departure route nodes: arr(r, i) = τ_dep(c_i).
	for i, id := range res.Conns {
		r := g.ConnDepartureNode(id)
		li := res.label(r, i)
		if res.Deps[i] < res.arrAt(li) {
			res.setArr(li, res.Deps[i])
		}
	}
	seeded := make(map[graph.NodeID]bool)
	for _, id := range res.Conns {
		r := g.ConnDepartureNode(id)
		if !seeded[r] {
			seeded[r] = true
			base := res.label(r, 0)
			m := timeutil.Infinity
			for i := 0; i < k; i++ {
				if a := res.arrAt(base + i); a < m {
					m = a
				}
			}
			if heap.Push(int32(r), m) {
				c.QueuePushes++
			}
		}
	}

	for !heap.Empty() {
		it, _ := heap.PopMin()
		c.QueuePops++
		v := graph.NodeID(it)
		base := res.label(v, 0)
		// The popped label carries all its finite points; each is relaxed.
		edges := g.OutEdges(v)
		for i := 0; i < k; i++ {
			av := res.arrAt(base + i)
			if av.IsInf() {
				continue
			}
			c.SettledConns++ // size of the connection label taken from Q
			for e := range edges {
				arrTent, _ := g.EvalEdge(&edges[e], av)
				c.Relaxed++
				if arrTent.IsInf() {
					continue
				}
				head := edges[e].Head
				hl := res.label(head, i)
				if arrTent < res.arrAt(hl) {
					res.setArr(hl, arrTent)
					if heap.Push(int32(head), arrTent) {
						c.QueuePushes++
					}
				}
			}
		}
	}
	res.Run.PerThread = []stats.Counters{c}
	res.Run.Total = c
	res.Run.Elapsed = time.Since(start)
	return res, nil
}

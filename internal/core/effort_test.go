package core

import (
	"testing"

	"transit/internal/timetable"
)

// TestEffortCounters: a query with Options.Effort set reports its work, the
// counters accumulate across queries (one block can aggregate a batch), and
// a nil Effort stays legal everywhere.
func TestEffortCounters(t *testing.T) {
	g := workspaceNet(t)
	env := QueryEnv{Graph: g}
	ws := NewWorkspace()

	var e Effort
	opts := QueryOptions{Options: Options{Effort: &e}}
	if _, err := ws.StationToStation(env, 0, 5, opts); err != nil {
		t.Fatal(err)
	}
	if e.Rounds.Load() != 1 {
		t.Fatalf("rounds = %d, want 1", e.Rounds.Load())
	}
	if e.ConnsScanned.Load() == 0 || e.LabelsSettled.Load() == 0 {
		t.Fatalf("search left no trace: scanned %d settled %d",
			e.ConnsScanned.Load(), e.LabelsSettled.Load())
	}
	scanned := e.ConnsScanned.Load()

	// Counters accumulate: a second query adds to the same block.
	if _, err := ws.StationToStation(env, 3, 11, opts); err != nil {
		t.Fatal(err)
	}
	if e.Rounds.Load() != 2 {
		t.Fatalf("rounds after second query = %d, want 2", e.Rounds.Load())
	}
	if e.ConnsScanned.Load() <= scanned {
		t.Fatalf("conns scanned did not grow: %d -> %d", scanned, e.ConnsScanned.Load())
	}

	// The snapshot mirrors the counters; Reset zeroes them.
	snap := e.Snapshot()
	if snap.Rounds != 2 || snap.ConnsScanned != e.ConnsScanned.Load() {
		t.Fatalf("snapshot %+v does not match counters", snap)
	}
	e.Reset()
	if e.Rounds.Load() != 0 || e.ConnsScanned.Load() != 0 {
		t.Fatal("Reset left counters behind")
	}

	// Time queries feed the same block.
	if _, err := ws.TimeQuery(g, 0, 480, Options{Effort: &e}); err != nil {
		t.Fatal(err)
	}
	if e.Rounds.Load() != 1 || e.LabelsSettled.Load() == 0 {
		t.Fatalf("time query effort: rounds %d settled %d", e.Rounds.Load(), e.LabelsSettled.Load())
	}

	// nil Effort: both the option and direct Observe/Snapshot calls.
	if _, err := ws.StationToStation(env, 0, 5, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	var nilE *Effort
	nilE.Observe(nil)
	if s := nilE.Snapshot(); s.Rounds != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestStationQueryEffortAllocs pins the observability cost: attaching an
// Effort block must not add a single allocation to the steady-state query
// path (the counters are plain atomics bumped from existing loops).
func TestStationQueryEffortAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := workspaceNet(t)
	env := QueryEnv{Graph: g}
	ws := NewWorkspace()
	ns := g.TT.NumStations()
	var e Effort
	opts := QueryOptions{Options: Options{Effort: &e}}
	pair := func(i int) (timetable.StationID, timetable.StationID) {
		src := timetable.StationID((i * 31) % ns)
		dst := timetable.StationID((i*17 + 5) % ns)
		if src == dst {
			dst = timetable.StationID((int(dst) + 1) % ns)
		}
		return src, dst
	}
	for i := 0; i < 8; i++ {
		src, dst := pair(i)
		if _, err := ws.StationToStation(env, src, dst, opts); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		src, dst := pair(i)
		i++
		if _, err := ws.StationToStation(env, src, dst, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("effort-tracked station query allocates %.1f objects/op, want ≤ 2", allocs)
	}
}

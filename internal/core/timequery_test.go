package core

import (
	"testing"

	"transit/internal/graph"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

func TestTimeQueryBasics(t *testing.T) {
	g := diamond(t)
	// Depart A at 07:00: morning train at 08:00 via B arrives 08:30.
	res, err := TimeQuery(g, 0, 420, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(3); got != 510 {
		t.Errorf("arrival at D = %d, want 510", got)
	}
	// The source is reached at departure time.
	if got := res.StationArrival(0); got != 420 {
		t.Errorf("arrival at source = %d, want 420", got)
	}
	if res.Source != 0 || res.Depart != 420 {
		t.Error("metadata wrong")
	}
	if res.Run.Total.SettledConns == 0 || res.Run.Total.QueuePops == 0 {
		t.Error("no work recorded")
	}
}

func TestTimeQueryNoSourceTransferPenalty(t *testing.T) {
	// The first boarding must not pay the transfer time T(S): the diamond's
	// A has T=2, and the 08:00 train must be catchable when departing at
	// exactly 08:00.
	g := diamond(t)
	res, err := TimeQuery(g, 0, 480, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(1); got != 495 {
		t.Errorf("arrival at B = %d, want 495 (board the 480 train)", got)
	}
}

func TestTimeQueryAbsoluteTimesBeyondPeriod(t *testing.T) {
	g := diamond(t)
	// Departing on day 1 at 08:00 (1920) gives day-1 arrivals.
	res, err := TimeQuery(g, 0, 1920, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StationArrival(3); got != 1950 {
		t.Errorf("day-1 arrival at D = %d, want 1950", got)
	}
}

func TestTimeQueryUnreachable(t *testing.T) {
	// One-way line: from the last station nothing is reachable.
	b := timetable.NewBuilder(day)
	a := b.AddStation("A", 1)
	c := b.AddStation("B", 1)
	b.AddTrainRun("t", []timetable.StationID{a, c}, 480, []timeutil.Ticks{10}, 0)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(tt)
	res, err := TimeQuery(g, 1, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StationArrival(0).IsInf() {
		t.Error("unreachable station has finite arrival")
	}
	if got := res.StationArrival(1); got != 100 {
		t.Errorf("source arrival = %d, want 100", got)
	}
}

// Waiting never hurts: the time-query arrival is monotone non-decreasing in
// the departure time (FIFO property of the whole network).
func TestTimeQueryFIFO(t *testing.T) {
	g := diamond(t)
	prev := make(map[timetable.StationID]timeutil.Ticks)
	for tau := timeutil.Ticks(0); tau < 1440; tau += 60 {
		res, err := TimeQuery(g, 0, tau, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for s := timetable.StationID(1); s < 4; s++ {
			arr := res.StationArrival(s)
			if p, ok := prev[s]; ok && arr < p {
				t.Fatalf("FIFO violated at station %d: departing %d arrives %d, departing earlier arrived %d",
					s, tau, arr, p)
			}
			prev[s] = arr
		}
	}
}

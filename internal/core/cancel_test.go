package core

import (
	"errors"
	"testing"
	"time"

	"transit/internal/timetable"
)

// closedDone returns an already-closed cancellation channel: the
// deterministic way to exercise the abort paths, since a search observes it
// at its entry check before settling anything.
func closedDone() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCancelClosedDone verifies that every search entry point honours an
// already-closed Options.Done with ErrCancelled, for one and for several
// threads.
func TestCancelClosedDone(t *testing.T) {
	g := workspaceNet(t)
	src := timetable.StationID(0)
	for _, threads := range []int{1, 4} {
		opts := Options{Threads: threads, Done: closedDone()}

		if _, err := OneToAll(g, src, opts); !errors.Is(err, ErrCancelled) {
			t.Errorf("threads=%d: OneToAll err = %v, want ErrCancelled", threads, err)
		}
		if _, err := OneToAllWindow(g, src, 0, 600, opts); !errors.Is(err, ErrCancelled) {
			t.Errorf("threads=%d: OneToAllWindow err = %v, want ErrCancelled", threads, err)
		}
		if _, err := OneToAllPareto(g, src, 3, opts); !errors.Is(err, ErrCancelled) {
			t.Errorf("threads=%d: OneToAllPareto err = %v, want ErrCancelled", threads, err)
		}
		if _, err := TimeQuery(g, src, 480, opts); !errors.Is(err, ErrCancelled) {
			t.Errorf("threads=%d: TimeQuery err = %v, want ErrCancelled", threads, err)
		}
		env := QueryEnv{Graph: g}
		if _, err := StationToStation(env, src, 5, QueryOptions{Options: opts}); !errors.Is(err, ErrCancelled) {
			t.Errorf("threads=%d: StationToStation err = %v, want ErrCancelled", threads, err)
		}
	}
}

// TestCancelMidFlight closes Done while a sequence of profile searches is
// running and accepts either outcome per search — completed before the
// close, or ErrCancelled after it — but requires that at least one search
// observed the cancellation, and that every error is ErrCancelled.
func TestCancelMidFlight(t *testing.T) {
	g := workspaceNet(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(done)
	}()
	ws := NewWorkspace()
	sawCancel := false
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; !sawCancel && time.Now().Before(deadline); i++ {
		src := timetable.StationID(i % g.TT.NumStations())
		_, err := ws.OneToAll(g, src, Options{Done: done})
		switch {
		case err == nil:
		case errors.Is(err, ErrCancelled):
			sawCancel = true
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawCancel {
		t.Fatal("no search observed the cancellation within the deadline")
	}
	// The workspace stays usable after an abort: the next query bumps the
	// generation and must answer exactly like a fresh search.
	reused, err := ws.OneToAll(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := OneToAll(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.TT.NumStations(); s++ {
		st := timetable.StationID(s)
		for i := 0; i < fresh.K(); i++ {
			if got, want := reused.StationArrival(st, i), fresh.StationArrival(st, i); got != want {
				t.Fatalf("post-cancel reuse: arr(%d,%d) = %d, fresh search says %d", s, i, got, want)
			}
		}
	}
}

// TestCancelNilDoneUnaffected pins the default: a nil Done channel never
// cancels and produces identical results to the pre-cancellation code path.
func TestCancelNilDoneUnaffected(t *testing.T) {
	g := workspaceNet(t)
	if _, err := OneToAll(g, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	open := make(chan struct{})
	defer close(open)
	withOpen, err := OneToAll(g, 0, Options{Done: open})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := OneToAll(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.TT.NumStations(); s++ {
		st := timetable.StationID(s)
		for i := 0; i < plain.K(); i++ {
			if got, want := withOpen.StationArrival(st, i), plain.StationArrival(st, i); got != want {
				t.Fatalf("open-done run diverged: arr(%d,%d) = %d vs %d", s, i, got, want)
			}
		}
	}
}

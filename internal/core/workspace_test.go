package core

import (
	"math/rand"
	"sync"
	"testing"

	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// workspaceNet generates a small benchmark-family network for workspace
// tests.
func workspaceNet(t testing.TB) *graph.Graph {
	t.Helper()
	cfg, err := gen.FamilyConfig("oahu", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return graph.Build(tt)
}

// Reusing one workspace across many different queries must give exactly the
// answers of fresh searches: a single stale stamp surviving a generation
// bump would show up here as a wrong label.
func TestWorkspaceReuseMatchesFreshSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ws := NewWorkspace()
	for trial := 0; trial < 30; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))

		reused, err := ws.OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := OneToAll(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if reused.K() != fresh.K() {
			t.Fatalf("trial %d: k mismatch %d vs %d", trial, reused.K(), fresh.K())
		}
		for s := 0; s < tt.NumStations(); s++ {
			st := timetable.StationID(s)
			for i := 0; i < fresh.K(); i++ {
				if got, want := reused.StationArrival(st, i), fresh.StationArrival(st, i); got != want {
					t.Fatalf("trial %d: arr(%d,%d) = %d, fresh search says %d", trial, s, i, got, want)
				}
			}
		}

		dst := timetable.StationID(rng.Intn(tt.NumStations()))
		if dst == src {
			continue
		}
		env := QueryEnv{Graph: g}
		got, err := ws.StationToStation(env, src, dst, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := StationToStation(env, src, dst, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.ArrT {
			if got.ArrT[i] != want.ArrT[i] {
				t.Fatalf("trial %d: ArrT[%d] = %d, fresh query says %d", trial, i, got.ArrT[i], want.ArrT[i])
			}
		}
	}
}

// Journey extraction must also survive workspace reuse (parent links are
// generation-stamped too).
func TestWorkspaceReuseParents(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	ws := NewWorkspace()
	for trial := 0; trial < 10; trial++ {
		tt := randomTimetable(t, rng)
		g := graph.Build(tt)
		src := timetable.StationID(rng.Intn(tt.NumStations()))
		res, err := ws.OneToAll(g, src, Options{TrackParents: true})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tt.NumStations(); s++ {
			st := timetable.StationID(s)
			for i := 0; i < res.K(); i++ {
				if res.StationArrival(st, i).IsInf() {
					continue
				}
				rides, err := res.JourneyConnections(st, i)
				if err != nil {
					t.Fatalf("trial %d: journey (%d,%d): %v", trial, s, i, err)
				}
				for _, c := range rides {
					if int(c) < 0 || int(c) >= len(tt.Connections) {
						t.Fatalf("trial %d: bogus ride %d", trial, c)
					}
				}
			}
		}
	}
}

// Steady-state station-to-station queries through a reused workspace must
// not allocate: everything lives in the workspace after warm-up. This is
// the allocation-regression guard for the whole workspace subsystem.
func TestStationQuerySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := workspaceNet(t)
	env := QueryEnv{Graph: g}
	ws := NewWorkspace()
	ns := g.TT.NumStations()
	pair := func(i int) (timetable.StationID, timetable.StationID) {
		src := timetable.StationID((i * 31) % ns)
		dst := timetable.StationID((i*17 + 5) % ns)
		if src == dst {
			dst = timetable.StationID((int(dst) + 1) % ns)
		}
		return src, dst
	}
	// Warm up: grow every workspace array to its steady-state size.
	for i := 0; i < 8; i++ {
		src, dst := pair(i)
		if _, err := ws.StationToStation(env, src, dst, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		src, dst := pair(i)
		i++
		if _, err := ws.StationToStation(env, src, dst, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// A small constant tolerates incidental runtime allocations; the
	// pre-workspace implementation allocated tens of objects (hundreds of
	// KiB) per query here.
	if allocs > 2 {
		t.Fatalf("steady-state station query allocates %.1f objects/op, want ≤ 2", allocs)
	}

	// The time-query path must be allocation-free too.
	i = 0
	allocs = testing.AllocsPerRun(64, func() {
		src, dst := pair(i)
		i++
		res, err := ws.TimeQuery(g, src, 480, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_ = res.StationArrival(dst)
	})
	if allocs > 2 {
		t.Fatalf("steady-state time query allocates %.1f objects/op, want ≤ 2", allocs)
	}
}

// TestStationQueryTablePathAllocs pins the distance-table query path to
// the same steady-state budget: the via-station DFS (ComputeViasInto runs
// on the workspace's reusable marks), the transfer-mark cache and the
// µ/γ pruning arrays must all reuse workspace memory.
func TestStationQueryTablePathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g := workspaceNet(t)
	sg := stationgraph.Build(g.TT)
	marked := sg.SelectByDegree(2)
	pre, err := BuildDistanceTable(g, marked, Options{}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	env := QueryEnv{Graph: g, StationGraph: sg, Table: pre.Table}
	ws := NewWorkspace()
	ns := g.TT.NumStations()
	pair := func(i int) (timetable.StationID, timetable.StationID) {
		src := timetable.StationID((i * 31) % ns)
		dst := timetable.StationID((i*17 + 5) % ns)
		if src == dst {
			dst = timetable.StationID((int(dst) + 1) % ns)
		}
		return src, dst
	}
	for i := 0; i < 8; i++ {
		src, dst := pair(i)
		if _, err := ws.StationToStation(env, src, dst, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		src, dst := pair(i)
		i++
		if _, err := ws.StationToStation(env, src, dst, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// Before ComputeVias moved onto the workspace this path allocated a
	// fresh Vias (two maps, stack, result slices) per query.
	if allocs > 2 {
		t.Fatalf("table-path station query allocates %.1f objects/op, want ≤ 2", allocs)
	}
}

// Concurrent workspace checkout: many goroutines hammer the pool with
// mixed queries and verify answers against a precomputed reference. Run
// with -race this doubles as the data-race test for the pool and the
// stamped arrays.
func TestWorkspacePoolConcurrent(t *testing.T) {
	g := workspaceNet(t)
	env := QueryEnv{Graph: g}
	ns := g.TT.NumStations()

	type key struct{ src, dst timetable.StationID }
	ref := map[key][]timeutil.Ticks{}
	var pairs []key
	for i := 0; i < 12; i++ {
		src := timetable.StationID((i * 13) % ns)
		dst := timetable.StationID((i*29 + 3) % ns)
		if src == dst {
			continue
		}
		res, err := StationToStation(env, src, dst, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		k := key{src, dst}
		ref[k] = res.ArrT
		pairs = append(pairs, k)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				k := pairs[(w*7+rep)%len(pairs)]
				ws := GetWorkspace()
				res, err := ws.StationToStation(env, k.src, k.dst, QueryOptions{})
				if err != nil {
					t.Error(err)
					PutWorkspace(ws)
					return
				}
				for i, want := range ref[k] {
					if res.ArrT[i] != want {
						t.Errorf("worker %d: ArrT[%d] = %d, want %d (src %d dst %d)",
							w, i, res.ArrT[i], want, k.src, k.dst)
						break
					}
				}
				PutWorkspace(ws)
			}
		}(w)
	}
	wg.Wait()
}

// The stopping criterion's packed word must round-trip arrivals at the
// extremes of the Ticks range (satellite: stopState packing invariant).
func TestStopStatePackingBoundaries(t *testing.T) {
	var s stopState
	cases := []timeutil.Ticks{0, 1, timeutil.Infinity - 1, timeutil.Infinity}
	for i, arr := range cases {
		s.reset()
		s.observeTargetSettle(i, arr)
		if arr < timeutil.Infinity {
			if !s.shouldPrune(i, arr) {
				t.Errorf("arr=%d: key equal to settled arrival must prune", arr)
			}
		}
		if arr > 0 && s.shouldPrune(i, arr-1) {
			t.Errorf("arr=%d: strictly earlier key must not prune", arr)
		}
	}
	// Values beyond Infinity saturate rather than truncate.
	s.reset()
	s.observeTargetSettle(0, timeutil.Infinity+12345)
	if s.shouldPrune(0, timeutil.Infinity-1) {
		t.Error("saturated arrival must not prune finite keys below Infinity")
	}
	if !s.shouldPrune(0, timeutil.Infinity) {
		t.Error("saturated arrival must prune keys at Infinity")
	}
}

package core

import (
	"math/rand"
	"sort"
	"testing"

	"transit/internal/timeutil"
)

func checkBoundaries(t *testing.T, b []int, k int) {
	t.Helper()
	if b[0] != 0 || b[len(b)-1] != k {
		t.Fatalf("boundaries must span [0,%d]: %v", k, b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("boundaries not monotone: %v", b)
		}
	}
}

func sortedDeps(rng *rand.Rand, k int, skew bool) []timeutil.Ticks {
	deps := make([]timeutil.Ticks, k)
	for i := range deps {
		if skew {
			// Rush-hour-like: mass between 07:00–09:00 and 16:00–18:00.
			if rng.Intn(2) == 0 {
				deps[i] = timeutil.Ticks(420 + rng.Intn(120))
			} else {
				deps[i] = timeutil.Ticks(960 + rng.Intn(120))
			}
		} else {
			deps[i] = timeutil.Ticks(rng.Intn(1440))
		}
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	return deps
}

func TestEqualConnsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	deps := sortedDeps(rng, 103, true)
	b := partition(deps, day, 4, EqualConnections)
	checkBoundaries(t, b, 103)
	sizes := chunkSizes(b)
	for _, s := range sizes {
		if s < 25 || s > 26 {
			t.Fatalf("equal-conns sizes unbalanced: %v", sizes)
		}
	}
}

func TestTimeSlotsRespectSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	deps := sortedDeps(rng, 200, false)
	p := 4
	b := partition(deps, day, p, EqualTimeSlots)
	checkBoundaries(t, b, 200)
	for t2 := 0; t2 < p; t2++ {
		lo, hi := timeutil.Ticks(t2*1440/p), timeutil.Ticks((t2+1)*1440/p)
		for i := b[t2]; i < b[t2+1]; i++ {
			if deps[i] < lo || deps[i] >= hi {
				t.Fatalf("dep %d in slot %d [%d,%d)", deps[i], t2, lo, hi)
			}
		}
	}
}

// On rush-hour-skewed inputs equal time slots must be visibly less balanced
// than equal connections — the paper's motivation for the latter.
func TestTimeSlotsUnbalancedUnderSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	deps := sortedDeps(rng, 400, true)
	slots := chunkSizes(partition(deps, day, 4, EqualTimeSlots))
	conns := chunkSizes(partition(deps, day, 4, EqualConnections))
	spread := func(s []int) int {
		mn, mx := s[0], s[0]
		for _, v := range s {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mx - mn
	}
	if spread(slots) <= spread(conns) {
		t.Fatalf("time slots (%v) not less balanced than equal conns (%v)", slots, conns)
	}
}

func TestKMeansValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(150)
		p := 1 + rng.Intn(8)
		deps := sortedDeps(rng, k, trial%2 == 0)
		b := partition(deps, day, p, KMeans)
		checkBoundaries(t, b, k)
		if len(b)-1 > p {
			t.Fatalf("k-means produced %d chunks, asked for %d", len(b)-1, p)
		}
	}
}

func TestKMeansFindsClusters(t *testing.T) {
	// Two tight clusters; k-means with p=2 should split exactly between.
	deps := []timeutil.Ticks{100, 101, 102, 103, 900, 901, 902}
	b := partition(deps, day, 2, KMeans)
	checkBoundaries(t, b, 7)
	if b[1] != 4 {
		t.Fatalf("k-means split at %d, want 4: %v", b[1], b)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	// Empty conn(S).
	for _, strat := range []PartitionStrategy{EqualConnections, EqualTimeSlots, KMeans} {
		b := partition(nil, day, 4, strat)
		checkBoundaries(t, b, 0)
	}
	// p = 1.
	deps := []timeutil.Ticks{5, 10, 15}
	b := partition(deps, day, 1, EqualConnections)
	if len(b) != 2 || b[1] != 3 {
		t.Fatalf("p=1 wrong: %v", b)
	}
	// p < 1 coerced to 1.
	b = partition(deps, day, 0, EqualConnections)
	checkBoundaries(t, b, 3)
	// More threads than connections.
	b = partition(deps, day, 10, EqualConnections)
	checkBoundaries(t, b, 3)
}

func TestPartitionStrategyString(t *testing.T) {
	if EqualConnections.String() != "equal-connections" ||
		EqualTimeSlots.String() != "equal-time-slots" ||
		KMeans.String() != "k-means" {
		t.Fatal("strategy names changed")
	}
	if PartitionStrategy(42).String() == "" {
		t.Fatal("unknown strategy must still render")
	}
}

package core

import (
	"fmt"
	"sync"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
	"transit/internal/ttf"
)

// OneToAllPareto implements the paper's stated future work (Section 6):
// multi-criteria profile search minimizing arrival time *and* the number of
// transfers. The paper names the challenge — "keep up the connection-
// setting property and find efficient criteria for self-pruning" — and this
// implementation answers it with *layered* connection-setting:
//
// Labels are arr(v, i, u): the earliest arrival at node v starting with
// outgoing connection i having used exactly u transfers so far (u grows by
// one per Board edge after the first). Keys remain arrival times, and u
// only increases along edges, so the (v, i, u) product space keeps the
// label-setting property — each triple settles at most once.
//
// Self-pruning generalizes per layer prefix: connection j may prune
// connection i at (v, u) iff j > i and j was settled at v in some layer
// u' ≤ u (then arr(v,j,u') ≤ arr(v,i,u) by settle order, and (j, u')
// dominates (i, u) in both criteria). The worker maintains
// maxconn(v, u) = max settled connection index over layers ≤ u, updated in
// O(maxTransfers) per settle — cheap because transfer budgets are small.
//
// The result is, per station and connection, a Pareto vector of arrivals
// by transfer budget; ParetoSet evaluates the Pareto frontier (arrival vs.
// transfers) for any departure time.
func OneToAllPareto(g *graph.Graph, source timetable.StationID, maxTransfers int, opts Options) (*ParetoResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if maxTransfers < 0 || maxTransfers > 32 {
		return nil, fmt.Errorf("core: maxTransfers %d out of range [0,32]", maxTransfers)
	}
	if opts.TrackParents {
		return nil, fmt.Errorf("core: Pareto search does not support parent tracking")
	}
	if cancelled(opts.Done) {
		return nil, ErrCancelled
	}
	start := time.Now()

	tt := g.TT
	// A private workspace builds the seed list; the result keeps its memory
	// (walk map and seed slices) alive, so no pooling here.
	ws := NewWorkspace()
	walk := ws.walkDistances(tt, source)
	connIDs, deps := ws.extendedConns(tt, source, walk)
	res := &ParetoResult{
		Source:       source,
		MaxTransfers: maxTransfers,
		Conns:        connIDs,
		Deps:         deps,
		walk:         walk,
		g:            g,
	}
	k := len(res.Conns)
	layers := maxTransfers + 1
	res.arr = make([]timeutil.Ticks, g.NumNodes()*k*layers)
	for i := range res.arr {
		res.arr[i] = timeutil.Infinity
	}

	p := opts.threads()
	bounds := partition(res.Deps, tt.Period, p, opts.Partition)
	nw := len(bounds) - 1
	workers := make([]*paretoWorker, nw)
	for t := 0; t < nw; t++ {
		workers[t] = &paretoWorker{q: res, opts: opts, lo: bounds[t], hi: bounds[t+1]}
	}
	if nw == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *paretoWorker) {
				defer wg.Done()
				w.run()
			}(w)
		}
		wg.Wait()
	}
	for _, w := range workers {
		if w.cancelled {
			return nil, ErrCancelled
		}
	}
	res.Run.PerThread = make([]stats.Counters, nw)
	for t, w := range workers {
		res.Run.PerThread[t] = w.counters
		res.Run.Total.Add(w.counters)
	}
	res.Run.Elapsed = time.Since(start)
	opts.Effort.Observe(&res.Run)
	return res, nil
}

// ParetoResult holds the layered labels of a multi-criteria one-to-all
// profile search.
type ParetoResult struct {
	Source       timetable.StationID
	MaxTransfers int
	Conns        []timetable.ConnID
	Deps         []timeutil.Ticks
	Run          stats.Run

	g    *graph.Graph
	arr  []timeutil.Ticks // node-major, then connection, then layer
	walk map[timetable.StationID]timeutil.Ticks
}

func (r *ParetoResult) layers() int { return r.MaxTransfers + 1 }

// MemBytes approximates the heap memory the result keeps alive: the
// layered label array dominates at numNodes × k × (maxTransfers+1) entries
// of 4 bytes each.
func (r *ParetoResult) MemBytes() int {
	return 4*(len(r.Conns)+len(r.Deps)+len(r.arr)) + 24*len(r.walk)
}

func (r *ParetoResult) label(v graph.NodeID, i, u int) int {
	return (int(v)*len(r.Conns)+i)*r.layers() + u
}

// Arrival returns the earliest arrival at station t starting with
// connection i using at most u transfers (Infinity if impossible).
func (r *ParetoResult) Arrival(t timetable.StationID, i, u int) timeutil.Ticks {
	v := graph.NodeID(t)
	best := timeutil.Infinity
	if u > r.MaxTransfers {
		u = r.MaxTransfers
	}
	for l := 0; l <= u; l++ {
		if a := r.arr[r.label(v, i, l)]; a < best {
			best = a
		}
	}
	return best
}

// StationProfile reduces the labels of station t under a transfer budget
// into the distance function dist_{≤u}(S, t, ·).
func (r *ParetoResult) StationProfile(t timetable.StationID, u int) (*ttf.Function, error) {
	arrs := make([]timeutil.Ticks, len(r.Conns))
	for i := range arrs {
		arrs[i] = r.Arrival(t, i, u)
	}
	return ttf.FromArrivals(r.g.TT.Period, r.Deps, arrs)
}

// ParetoChoice is one point of the arrival/transfers Pareto frontier.
type ParetoChoice struct {
	Transfers int
	Arrival   timeutil.Ticks
}

// ParetoSet returns the Pareto frontier of (transfers, arrival) for
// departing toward station t at the absolute time dep: increasing transfer
// budgets with strictly decreasing arrival times. Walking all the way
// counts as zero transfers. An empty result means t is unreachable within
// MaxTransfers.
func (r *ParetoResult) ParetoSet(t timetable.StationID, dep timeutil.Ticks) ([]ParetoChoice, error) {
	var out []ParetoChoice
	prev := timeutil.Infinity
	if w := distOrInf(r.walk, t); !w.IsInf() && t != r.Source {
		prev = dep + w
		out = append(out, ParetoChoice{Transfers: 0, Arrival: prev})
	}
	for u := 0; u <= r.MaxTransfers; u++ {
		f, err := r.StationProfile(t, u)
		if err != nil {
			return nil, err
		}
		a := f.EvalArrival(dep)
		if a < prev {
			out = append(out, ParetoChoice{Transfers: u, Arrival: a})
			prev = a
		}
	}
	return out, nil
}

// paretoWorker runs the layered connection-setting search for a contiguous
// connection range.
type paretoWorker struct {
	q        *ParetoResult
	opts     Options
	lo, hi   int
	counters stats.Counters
	// cancelled is set when the worker abandoned its range because
	// Options.Done closed; OneToAllPareto turns it into ErrCancelled.
	cancelled bool
}

func (w *paretoWorker) run() {
	res := w.q
	g := res.g
	kLocal := w.hi - w.lo
	if kLocal == 0 {
		return
	}
	layers := res.layers()
	numNodes := g.NumNodes()
	stride := kLocal * layers
	heap := w.opts.newHeap(numNodes * stride)
	settled := make([]bool, numNodes*stride)
	// maxconn(v, u): highest global connection index settled at v in any
	// layer ≤ u; -1 when none.
	maxconn := make([]int32, numNodes*layers)
	for i := range maxconn {
		maxconn[i] = -1
	}

	item := func(v graph.NodeID, iLocal, u int) int32 {
		return int32(int(v)*stride + iLocal*layers + u)
	}

	for i := w.lo; i < w.hi; i++ {
		id := res.Conns[i]
		r := g.ConnDepartureNode(id)
		if heap.Push(item(r, i-w.lo, 0), g.TT.Connections[id].Dep) {
			w.counters.QueuePushes++
		}
	}

	done := w.opts.Done
	for !heap.Empty() {
		it, key := heap.PopMin()
		w.counters.QueuePops++
		if done != nil && w.counters.QueuePops&cancelMask == 0 {
			w.counters.CancelPolls++
			if cancelled(done) {
				w.cancelled = true
				return
			}
		}
		v := graph.NodeID(int(it) / stride)
		rem := int(it) % stride
		iLocal, u := rem/layers, rem%layers
		i := w.lo + iLocal
		settled[it] = true

		if !w.opts.DisableSelfPruning && int32(i) <= maxconn[int(v)*layers+u] {
			w.counters.PrunedConns++
			continue
		}
		// Raise maxconn for this and all higher layers.
		for l := u; l < layers; l++ {
			mi := int(v)*layers + l
			if int32(i) > maxconn[mi] {
				maxconn[mi] = int32(i)
			} else {
				break // higher layers already cover index i
			}
		}
		res.arr[res.label(v, i, u)] = key
		w.counters.SettledConns++

		edges := g.OutEdges(v)
		for e := range edges {
			edge := &edges[e]
			nu := u
			if edge.Kind == graph.Board {
				nu = u + 1
				if nu >= layers {
					continue // transfer budget exhausted
				}
			}
			arrTent, _ := g.EvalEdge(edge, key)
			w.counters.Relaxed++
			if arrTent.IsInf() {
				continue
			}
			hi := item(edge.Head, iLocal, nu)
			if settled[hi] {
				continue
			}
			if heap.Push(hi, arrTent) {
				w.counters.QueuePushes++
			}
		}
	}
}

// WalkOnly returns the pure walking time from the source to t over
// footpaths (Infinity when not walkable).
func (r *ParetoResult) WalkOnly(t timetable.StationID) timeutil.Ticks {
	return distOrInf(r.walk, t)
}

package core

import (
	"fmt"

	"transit/internal/pq"
	"transit/internal/stats"
)

// Effort aliases stats.Effort so callers attaching a per-query counter
// block only need the core package.
type Effort = stats.Effort

// PartitionStrategy selects how conn(S) is split across threads
// (Section 3.2, "Choice of the Partition").
type PartitionStrategy int

const (
	// EqualConnections splits conn(S) into p contiguous subsets of equal
	// cardinality — the paper's recommended compromise and the default.
	EqualConnections PartitionStrategy = iota
	// EqualTimeSlots splits the period Π into p intervals of equal length;
	// unbalanced under rush hours, included for the ablation.
	EqualTimeSlots
	// KMeans clusters departure times with 1-D k-means (Lloyd), the
	// "more sophisticated" method the paper found insignificant.
	KMeans
)

func (s PartitionStrategy) String() string {
	switch s {
	case EqualConnections:
		return "equal-connections"
	case EqualTimeSlots:
		return "equal-time-slots"
	case KMeans:
		return "k-means"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// Options configures profile searches. The zero value means: one thread,
// equal-connections partitioning, self-pruning on, binary heap, no parent
// tracking.
type Options struct {
	// Threads is the number of worker goroutines p; values < 1 mean 1.
	Threads int
	// Partition picks the conn(S) partitioning strategy for Threads > 1.
	Partition PartitionStrategy
	// DisableSelfPruning turns the self-pruning rule off (ablation only;
	// the algorithm degenerates to independent per-connection searches).
	DisableSelfPruning bool
	// TrackParents records parent links for journey extraction, at the
	// cost of one node+connection pair per label.
	TrackParents bool
	// HeapArity selects the d-ary heap (2 or 4); 0 means 2, the paper's
	// binary heap.
	HeapArity int
	// Done, when non-nil, makes the search cooperatively cancellable: the
	// settle loops poll the channel once every cancelStride queue pops (a
	// coarse stride, so the steady-state cost is one nil check per pop) and
	// abandon the search with ErrCancelled once it is closed. Callers
	// normally set this to ctx.Done() of the request driving the query.
	Done <-chan struct{}
	// Effort, when non-nil, receives the search's work counters: each
	// orchestrator folds its finished Run into the block with one batch of
	// atomic adds. Nil costs nothing — the settle loops never see it.
	Effort *Effort
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

func (o Options) newHeap(maxItems int) *pq.Heap {
	if o.HeapArity == 4 {
		return pq.New4(maxItems)
	}
	return pq.New(maxItems)
}

func (o Options) validate() error {
	if o.HeapArity != 0 && o.HeapArity != 2 && o.HeapArity != 4 {
		return fmt.Errorf("core: unsupported heap arity %d (want 2 or 4)", o.HeapArity)
	}
	switch o.Partition {
	case EqualConnections, EqualTimeSlots, KMeans:
	default:
		return fmt.Errorf("core: unknown partition strategy %d", int(o.Partition))
	}
	return nil
}

package core

import (
	"sync"
	"sync/atomic"

	"transit/internal/dtable"
	"transit/internal/graph"
	"transit/internal/pq"
	"transit/internal/stationgraph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Workspace owns every array, map and priority queue a query needs, so the
// steady state allocates nothing: the paper's C++ implementation keeps its
// search data structures alive across queries per thread, and Workspace is
// the Go equivalent. A search checks the workspace out, bumps its
// generation, and runs; label, settled and parent slots are valid only when
// their stamp equals the current generation, so "reset to Infinity /
// unsettled" is a single counter increment instead of an O(numNodes·k)
// sweep.
//
// A Workspace is NOT safe for concurrent use: one query at a time. Use the
// package pool (GetWorkspace / PutWorkspace) or one workspace per worker
// goroutine for concurrency. Results returned by the workspace query
// methods (OneToAll, StationToStation, TimeQuery, …) borrow workspace
// memory and are valid only until the next query on the same workspace —
// copy out what must survive, or use the package-level functions, which
// return self-contained results.
type Workspace struct {
	gen uint32

	// Shared profile label store arr(v, i), numNodes × k row-major, plus
	// parent links for journey extraction. Written by all SPCS workers (at
	// disjoint indexes), read through the result types.
	arr        []timeutil.Ticks
	arrGen     []uint32
	parentNode []graph.NodeID
	parentConn []timetable.ConnID
	parentGen  []uint32

	// Seed scratch for conn(S) construction (walk.go).
	conns []timetable.ConnID
	deps  []timeutil.Ticks
	seeds []connSeed
	walk  map[timetable.StationID]timeutil.Ticks
	wseen map[timetable.StationID]bool

	// Node- or station-indexed scratch shared by the time-query and the CSA
	// baseline (their queries never overlap within one workspace).
	nodeArr    []timeutil.Ticks
	nodeArrGen []uint32
	nodeSetGen []uint32 // settled stamps for the time-query

	// CSA scratch.
	aboardGen []uint32
	dayIdx    []int
	walkQueue []timetable.StationID

	// Distance-table pruning scratch: isTransfer is rebuilt only when the
	// query runs against a different table than the previous one. vias is
	// the reusable via-station DFS state (marks + result slices), so the
	// distance-table query path computes via(T) without allocating.
	isTransfer []bool
	lastTable  *dtable.Table
	vias       stationgraph.Vias

	// Partition boundary buffer.
	bounds []int

	// Provenance-extraction scratch: visited stamps for the parent-chain
	// sweep (internal/dtable repair provenance), sized like the label store.
	provGen []uint32

	// Per-thread search scratch, one entry per worker.
	workers   []*workerSpace
	spcsBuf   []spcsWorker
	s2sBuf    []s2sWorker
	perThread []stats.Counters
	s2q       s2sQuery

	// Reusable result shells (returned by the workspace query methods).
	pres ProfileResult
	sres StationQueryResult
	tres TimeQueryResult
	cres ConnectionScanResult
	pt1  [1]stats.Counters
}

// connSeed pairs a seed connection with its effective departure (walk.go).
type connSeed struct {
	id  timetable.ConnID
	dep timeutil.Ticks
}

// workerSpace is the per-thread portion of a workspace: the priority queue
// and the label arrays a single search worker owns exclusively.
type workerSpace struct {
	heap2, heap4 *pq.Heap

	settledGen []uint32 // numNodes × kLocal
	maxconn    []int32  // numNodes; valid when maxconnGen matches
	maxconnGen []uint32

	// Station-to-station pruning state. anc needs no stamps: every entry is
	// written on its first push of a query before it can be read (see
	// s2sWorker.push). The k-sized arrays are refilled eagerly — they are
	// O(k·|via|), not O(n·k), so a sweep is cheap.
	anc        []bool // numNodes × kLocal
	mu         []timeutil.Ticks
	gamma      []timeutil.Ticks
	connDone   []bool
	noAncCount []int
}

// NewWorkspace returns an empty workspace; arrays grow on first use and are
// then reused forever.
func NewWorkspace() *Workspace {
	return &Workspace{
		gen:   0,
		walk:  make(map[timetable.StationID]timeutil.Ticks),
		wseen: make(map[timetable.StationID]bool),
	}
}

var (
	wsPool     = sync.Pool{New: func() any { return NewWorkspace() }}
	wsPoolGets atomic.Uint64
	wsPoolPuts atomic.Uint64
)

// GetWorkspace checks a workspace out of the package pool. Pair with
// PutWorkspace once every result borrowed from it is dead.
func GetWorkspace() *Workspace {
	wsPoolGets.Add(1)
	return wsPool.Get().(*Workspace)
}

// PutWorkspace returns a workspace to the package pool. The caller must not
// touch the workspace — or any result obtained from it — afterwards.
func PutWorkspace(ws *Workspace) {
	wsPoolPuts.Add(1)
	wsPool.Put(ws)
}

// PoolStats reports cumulative workspace-pool checkouts and returns. A
// widening gets−puts gap means callers are leaking workspaces (every leak
// is a future allocation the pool cannot serve).
func PoolStats() (gets, puts uint64) { return wsPoolGets.Load(), wsPoolPuts.Load() }

// begin starts a new query generation. On the (once per 2^32 queries)
// stamp wrap-around every stamp array is wiped, so a stale slot can never
// collide with a live generation.
func (ws *Workspace) begin() uint32 {
	ws.gen++
	if ws.gen == 0 {
		wipe(ws.arrGen)
		wipe(ws.parentGen)
		wipe(ws.nodeArrGen)
		wipe(ws.nodeSetGen)
		wipe(ws.aboardGen)
		wipe(ws.provGen)
		for _, w := range ws.workers {
			wipe(w.settledGen)
			wipe(w.maxconnGen)
		}
		ws.gen = 1
	}
	return ws.gen
}

// wipe zeroes the full capacity of a stamp slice.
func wipe(s []uint32) { clear(s[:cap(s)]) }

// growTicks returns s with length n, reusing the backing array when it is
// large enough. Contents are unspecified — callers gate reads with stamps
// or overwrite eagerly.
func growTicks(s []timeutil.Ticks, n int) []timeutil.Ticks {
	if cap(s) < n {
		return make([]timeutil.Ticks, n)
	}
	return s[:n]
}

// growU32 returns a stamp slice of length n. Newly exposed entries are
// either zero (fresh array) or stamps of past generations; both read as
// "unset" because generations only grow between wipes.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// ensureLabels dimensions the shared label store for n labels.
func (ws *Workspace) ensureLabels(n int, parents bool) {
	ws.arr = growTicks(ws.arr, n)
	ws.arrGen = growU32(ws.arrGen, n)
	if parents {
		if cap(ws.parentNode) < n {
			ws.parentNode = make([]graph.NodeID, n)
			ws.parentConn = make([]timetable.ConnID, n)
		} else {
			ws.parentNode = ws.parentNode[:n]
			ws.parentConn = ws.parentConn[:n]
		}
		ws.parentGen = growU32(ws.parentGen, n)
	}
}

// worker returns the t-th per-thread scratch space, creating it on demand.
func (ws *Workspace) worker(t int) *workerSpace {
	for len(ws.workers) <= t {
		ws.workers = append(ws.workers, &workerSpace{})
	}
	return ws.workers[t]
}

// counters returns a zeroed per-thread counter slice of length nw.
func (ws *Workspace) counters(nw int) []stats.Counters {
	if cap(ws.perThread) < nw {
		ws.perThread = make([]stats.Counters, nw)
	}
	ws.perThread = ws.perThread[:nw]
	clear(ws.perThread)
	return ws.perThread
}

// transferMarks returns the isTransfer array for a distance table, rebuilt
// only when the table changed since the last query on this workspace.
func (ws *Workspace) transferMarks(table *dtable.Table, ns int) []bool {
	if ws.lastTable == table && len(ws.isTransfer) == ns {
		return ws.isTransfer
	}
	ws.isTransfer = growBool(ws.isTransfer, ns)
	clear(ws.isTransfer)
	for _, s := range table.Stations() {
		ws.isTransfer[s] = true
	}
	ws.lastTable = table
	return ws.isTransfer
}

// heap returns the worker's queue for the requested arity, reset for
// maxItems items. The pos index reuse inside pq.Heap.Reset is what makes
// this O(1) instead of O(maxItems).
func (w *workerSpace) heap(opts Options, maxItems int) *pq.Heap {
	if opts.HeapArity == 4 {
		if w.heap4 == nil {
			w.heap4 = pq.New4(maxItems)
		} else {
			w.heap4.Reset(maxItems)
		}
		return w.heap4
	}
	if w.heap2 == nil {
		w.heap2 = pq.New(maxItems)
	} else {
		w.heap2.Reset(maxItems)
	}
	return w.heap2
}

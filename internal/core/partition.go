package core

import (
	"transit/internal/timeutil"
)

// partition splits the index range [0, k) of conn(S) — already sorted by
// departure time — into at most p contiguous chunks, returning p+1 boundary
// indexes b with chunk t = [b[t], b[t+1]). Chunks may be empty (e.g. a
// time slot containing no departures).
func partition(deps []timeutil.Ticks, period timeutil.Period, p int, strategy PartitionStrategy) []int {
	return partitionInto(nil, deps, period, p, strategy)
}

// partitionInto is partition with a reusable boundary buffer, so the hot
// query paths avoid the per-query boundary allocation.
func partitionInto(buf []int, deps []timeutil.Ticks, period timeutil.Period, p int, strategy PartitionStrategy) []int {
	k := len(deps)
	if p < 1 {
		p = 1
	}
	switch strategy {
	case EqualTimeSlots:
		return partitionTimeSlots(buf, deps, period, p)
	case KMeans:
		return partitionKMeans(buf, deps, p)
	default:
		return partitionEqualConns(buf, k, p)
	}
}

// boundsBuf returns a boundary slice of length p+1 backed by buf when it is
// large enough.
func boundsBuf(buf []int, p int) []int {
	if cap(buf) < p+1 {
		return make([]int, p+1)
	}
	return buf[:p+1]
}

// partitionEqualConns makes p chunks whose sizes differ by at most one —
// the paper's "equal number of connections" method.
func partitionEqualConns(buf []int, k, p int) []int {
	b := boundsBuf(buf, p)
	for t := 0; t <= p; t++ {
		b[t] = t * k / p
	}
	return b
}

// partitionTimeSlots cuts Π into p equal intervals and assigns each
// connection to the slot containing its departure — the paper's "equal
// time-slots" method, unbalanced under rush hours.
func partitionTimeSlots(buf []int, deps []timeutil.Ticks, period timeutil.Period, p int) []int {
	k := len(deps)
	b := boundsBuf(buf, p)
	pi := int(period.Len())
	idx := 0
	for t := 0; t < p; t++ {
		b[t] = idx
		hi := timeutil.Ticks((t + 1) * pi / p)
		for idx < k && deps[idx] < hi {
			idx++
		}
	}
	b[p] = k
	return b
}

// partitionKMeans runs 1-D Lloyd iterations on the sorted departure times.
// Clusters of sorted scalars are contiguous ranges, so the result is again
// a boundary vector. Initialization is equal-size chunks; a few iterations
// suffice at these sizes.
func partitionKMeans(buf []int, deps []timeutil.Ticks, p int) []int {
	k := len(deps)
	if k == 0 || p == 1 {
		return partitionEqualConns(buf, k, p)
	}
	if p > k {
		p = k
	}
	b := partitionEqualConns(buf, k, p)
	for iter := 0; iter < 32; iter++ {
		// Centroids of current chunks.
		cent := make([]float64, p)
		for t := 0; t < p; t++ {
			lo, hi := b[t], b[t+1]
			if lo == hi {
				// Empty cluster: reseed at the overall middle of its
				// neighbours to keep the boundary vector monotone.
				cent[t] = float64(deps[min(lo, k-1)])
				continue
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += float64(deps[i])
			}
			cent[t] = sum / float64(hi-lo)
		}
		// Reassign: each sorted value goes to the nearest centroid;
		// boundaries are where the nearest centroid switches.
		nb := make([]int, p+1)
		nb[p] = k
		idx := 0
		for t := 0; t < p; t++ {
			nb[t] = idx
			if t == p-1 {
				break
			}
			mid := (cent[t] + cent[t+1]) / 2
			for idx < k && float64(deps[idx]) <= mid {
				idx++
			}
		}
		changed := false
		for t := range nb {
			if nb[t] != b[t] {
				changed = true
				break
			}
		}
		b = nb
		if !changed {
			break
		}
	}
	return b
}

// chunkSizes is a debugging/bench helper reporting the size of each chunk.
func chunkSizes(b []int) []int {
	out := make([]int, len(b)-1)
	for t := 0; t < len(out); t++ {
		out[t] = b[t+1] - b[t]
	}
	return out
}

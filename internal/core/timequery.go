package core

import (
	"fmt"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// TimeQueryResult holds dist(S, ·, τ) for one departure time: the earliest
// absolute arrival time at every node.
type TimeQueryResult struct {
	Source timetable.StationID
	Depart timeutil.Ticks
	Run    stats.Run

	g   *graph.Graph
	arr []timeutil.Ticks
}

// Arrival returns the earliest arrival at a node.
func (r *TimeQueryResult) Arrival(v graph.NodeID) timeutil.Ticks { return r.arr[v] }

// StationArrival returns the earliest arrival at a station.
func (r *TimeQueryResult) StationArrival(s timetable.StationID) timeutil.Ticks {
	return r.arr[r.g.StationNode(s)]
}

// TimeQuery computes dist(S, ·, τ) with the time-dependent Dijkstra variant
// of Section 2 ("time-query"): nodes are visited in non-decreasing arrival
// time from the source; the label-setting property guarantees each node is
// settled at most once.
//
// Initialization matches the profile search convention: the station node of
// S and every route node at S are seeded at τ, so no transfer time is paid
// for boarding the first train.
func TimeQuery(g *graph.Graph, source timetable.StationID, depart timeutil.Ticks, opts Options) (*TimeQueryResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if depart < 0 {
		return nil, fmt.Errorf("core: negative departure time %d", depart)
	}
	start := time.Now()
	res := &TimeQueryResult{Source: source, Depart: depart, g: g}
	res.arr = make([]timeutil.Ticks, g.NumNodes())
	for i := range res.arr {
		res.arr[i] = timeutil.Infinity
	}
	var c stats.Counters
	heap := opts.newHeap(g.NumNodes())
	settled := make([]bool, g.NumNodes())

	push := func(v graph.NodeID, key timeutil.Ticks) {
		if !settled[v] && heap.Push(int32(v), key) {
			c.QueuePushes++
		}
	}
	sn := g.StationNode(source)
	push(sn, depart)
	for _, e := range g.OutEdges(sn) {
		// Seed route nodes of S without the boarding transfer time.
		if e.Kind == graph.Board {
			push(e.Head, depart)
		}
	}

	for !heap.Empty() {
		it, key := heap.PopMin()
		c.QueuePops++
		v := graph.NodeID(it)
		settled[v] = true
		res.arr[v] = key
		c.SettledConns++
		edges := g.OutEdges(v)
		for e := range edges {
			arrTent, _ := g.EvalEdge(&edges[e], key)
			c.Relaxed++
			if !arrTent.IsInf() {
				push(edges[e].Head, arrTent)
			}
		}
	}
	res.Run.PerThread = []stats.Counters{c}
	res.Run.Total = c
	res.Run.Elapsed = time.Since(start)
	return res, nil
}

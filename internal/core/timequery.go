package core

import (
	"fmt"
	"time"

	"transit/internal/graph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// TimeQueryResult holds dist(S, ·, τ) for one departure time: the earliest
// absolute arrival time at every node. The arrival store is
// generation-stamped workspace memory; results from Workspace.TimeQuery
// are valid until the next query on the same workspace, while the
// package-level TimeQuery binds a private workspace to the result.
type TimeQueryResult struct {
	Source timetable.StationID
	Depart timeutil.Ticks
	Run    stats.Run

	g      *graph.Graph
	arr    []timeutil.Ticks
	arrGen []uint32
	gen    uint32
}

// Arrival returns the earliest arrival at a node.
func (r *TimeQueryResult) Arrival(v graph.NodeID) timeutil.Ticks {
	if r.arrGen[v] != r.gen {
		return timeutil.Infinity
	}
	return r.arr[v]
}

// StationArrival returns the earliest arrival at a station.
func (r *TimeQueryResult) StationArrival(s timetable.StationID) timeutil.Ticks {
	return r.Arrival(r.g.StationNode(s))
}

// TimeQuery computes dist(S, ·, τ) with the time-dependent Dijkstra variant
// of Section 2 ("time-query"): nodes are visited in non-decreasing arrival
// time from the source; the label-setting property guarantees each node is
// settled at most once.
//
// Initialization matches the profile search convention: the station node of
// S and every route node at S are seeded at τ, so no transfer time is paid
// for boarding the first train.
func TimeQuery(g *graph.Graph, source timetable.StationID, depart timeutil.Ticks, opts Options) (*TimeQueryResult, error) {
	return NewWorkspace().TimeQuery(g, source, depart, opts)
}

// TimeQuery is the workspace-reusing form of the package-level TimeQuery:
// the steady state allocates nothing. The result borrows workspace memory
// and is valid until the next query on this workspace.
func (ws *Workspace) TimeQuery(g *graph.Graph, source timetable.StationID, depart timeutil.Ticks, opts Options) (*TimeQueryResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if int(source) < 0 || int(source) >= g.TT.NumStations() {
		return nil, fmt.Errorf("core: source station %d out of range", source)
	}
	if depart < 0 {
		return nil, fmt.Errorf("core: negative departure time %d", depart)
	}
	if cancelled(opts.Done) {
		return nil, ErrCancelled
	}
	start := time.Now()
	gen := ws.begin()
	n := g.NumNodes()
	ws.nodeArr = growTicks(ws.nodeArr, n)
	ws.nodeArrGen = growU32(ws.nodeArrGen, n)
	ws.nodeSetGen = growU32(ws.nodeSetGen, n)
	res := &ws.tres
	*res = TimeQueryResult{
		Source: source, Depart: depart, g: g,
		arr: ws.nodeArr, arrGen: ws.nodeArrGen, gen: gen,
	}
	settledGen := ws.nodeSetGen
	var c stats.Counters
	heap := ws.worker(0).heap(opts, n)

	push := func(v graph.NodeID, key timeutil.Ticks) {
		if settledGen[v] != gen && heap.Push(int32(v), key) {
			c.QueuePushes++
		}
	}
	sn := g.StationNode(source)
	push(sn, depart)
	for _, e := range g.OutEdges(sn) {
		// Seed route nodes of S without the boarding transfer time.
		if e.Kind == graph.Board {
			push(e.Head, depart)
		}
	}

	done := opts.Done
	for !heap.Empty() {
		it, key := heap.PopMin()
		c.QueuePops++
		if done != nil && c.QueuePops&cancelMask == 0 {
			c.CancelPolls++
			if cancelled(done) {
				return nil, ErrCancelled
			}
		}
		v := graph.NodeID(it)
		settledGen[v] = gen
		res.arr[v] = key
		res.arrGen[v] = gen
		c.SettledConns++
		edges := g.OutEdges(v)
		for e := range edges {
			arrTent, _ := g.EvalEdge(&edges[e], key)
			c.Relaxed++
			if !arrTent.IsInf() {
				push(edges[e].Head, arrTent)
			}
		}
	}
	ws.pt1[0] = c
	res.Run.PerThread = ws.pt1[:1]
	res.Run.Total = c
	res.Run.Elapsed = time.Since(start)
	opts.Effort.Observe(&res.Run)
	return res, nil
}

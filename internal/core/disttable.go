package core

import (
	"time"

	"transit/internal/dtable"
	"transit/internal/graph"
	"transit/internal/timetable"
)

// PreprocessResult reports distance-table preprocessing cost, matching the
// Prepro columns of Table 2.
type PreprocessResult struct {
	Table *dtable.Table
	// Elapsed is the total preprocessing wall time.
	Elapsed time.Duration
	// SizeBytes is the table's memory footprint estimate.
	SizeBytes int64
}

// BuildDistanceTable precomputes the distance table for the marked transfer
// stations by running the (possibly parallel) one-to-all profile search
// from each of them, exactly as in Section 5.2 ("the distance tables are
// computed by running our parallel one-to-all algorithm from every transfer
// station"). sourceParallelism bounds how many source stations are
// processed concurrently (1 reproduces the paper's setup, where
// parallelism lives inside each one-to-all run).
func BuildDistanceTable(g *graph.Graph, isTransfer []bool, opts Options, sourceParallelism int) (*PreprocessResult, error) {
	start := time.Now()
	t, err := dtable.Build(g.TT.Period, g.TT.NumStations(), isTransfer, sourceParallelism,
		func(s timetable.StationID) (dtable.StationProfiler, error) {
			return OneToAll(g, s, opts)
		})
	if err != nil {
		return nil, err
	}
	return &PreprocessResult{
		Table:     t,
		Elapsed:   time.Since(start),
		SizeBytes: t.SizeBytes(),
	}, nil
}

package core

import (
	"time"

	"transit/internal/dtable"
	"transit/internal/graph"
)

// PreprocessResult reports distance-table preprocessing cost, matching the
// Prepro columns of Table 2, plus the incremental-repair outcome when the
// table came from RepairDistanceTable.
type PreprocessResult struct {
	Table *dtable.Table
	// Elapsed is the total preprocessing wall time.
	Elapsed time.Duration
	// SizeBytes estimates the stored profiles' footprint (the paper's
	// table-size figure); ProvenanceBytes the repair provenance kept next
	// to them.
	SizeBytes       int64
	ProvenanceBytes int64
	// Rows is the transfer-station (row) count; RowsRepaired how many rows
	// an incremental repair recomputed (equal to Rows after a full build).
	Rows         int
	RowsRepaired int
	// DirtyByUsed/DirtyBySeed/DirtyByArc break a repair's recomputed rows
	// down by the dirty rule that fired (see dtable.RepairStats);
	// RowsWindowed counts repaired rows served by the interval search over
	// the batch's departure window instead of a full-period run.
	DirtyByUsed  int
	DirtyBySeed  int
	DirtyByArc   int
	RowsWindowed int
	// FullRebuild is set when every row was recomputed — a Build, or a
	// repair that fell back; Fallback then names the reason.
	FullRebuild bool
	Fallback    string
}

// BuildDistanceTable precomputes the distance table for the marked transfer
// stations by running the (possibly parallel) one-to-all profile search
// from each of them, exactly as in Section 5.2 ("the distance tables are
// computed by running our parallel one-to-all algorithm from every transfer
// station"). sourceParallelism bounds how many source stations are
// processed concurrently (1 reproduces the paper's setup, where
// parallelism lives inside each one-to-all run); the workers pull rows from
// a shared chunked queue and each reuses one pooled search workspace.
// With provenance set, the searches additionally record the per-row repair
// provenance that RepairDistanceTable needs (parent tracking plus a sweep
// per row — slightly slower and bigger, but the table can then absorb
// delay batches incrementally).
func BuildDistanceTable(g *graph.Graph, isTransfer []bool, opts Options, sourceParallelism int, provenance bool) (*PreprocessResult, error) {
	start := time.Now()
	numTrains, numRoutes := 0, 0
	if provenance {
		numTrains, numRoutes = g.TT.NumTrains(), g.NumRoutes()
	}
	t, err := dtable.Build(g.TT.Period, g.TT.NumStations(), numTrains, numRoutes, isTransfer, sourceParallelism,
		searchFactory(g, opts, provenance))
	if err != nil {
		return nil, err
	}
	return &PreprocessResult{
		Table:           t,
		Elapsed:         time.Since(start),
		SizeBytes:       t.SizeBytes(),
		ProvenanceBytes: t.ProvenanceBytes(),
		Rows:            t.NumTransfer(),
		RowsRepaired:    t.NumTransfer(),
		FullRebuild:     true,
	}, nil
}

// RefineTouched tightens the improvement arcs of a touched-connection batch
// against the *base* network's graph (the schedule the repair base table
// was built for) and returns the refined copy. A retimed connection c can
// create a faster journey only for boarding readiness r in (OldDep, NewDep]
// — but if another departure w on the same ride edge has (lifted)
// dep_w + dur_w ≤ NewDep + dur_c, then for every r ≤ dep_w the old network
// already boards w and arrives no later than the moved c ever will, so no
// improvement is possible there. Ride-edge evaluation is the minimum over
// members and each member's change is confined to its own arc, so raising
// OldDep to the latest such dominating departure is sound even when several
// members of one edge are touched in the same batch. On high-frequency
// routes this typically shrinks the arc from the delay length to under the
// headway — often to empty — which is what keeps the dirty-row fraction
// (and so the repair cost) low.
//
// Only ArcFrom/Refined are set; OldDep is left untouched because the
// repair's departure windows must still cover journeys that rode the
// connection at its old time (the degradation direction), for which the
// domination argument does not apply.
func RefineTouched(gBase *graph.Graph, touched []dtable.TouchedConn) []dtable.TouchedConn {
	pi := gBase.TT.Period.Len()
	out := make([]dtable.TouchedConn, len(touched))
	for i, tc := range touched {
		out[i] = tc
		if tc.Cancelled || tc.OldDep == tc.NewDep {
			continue
		}
		members := gBase.RideEdgeConns(tc.Conn)
		if len(members) == 0 {
			continue
		}
		d := tc.OldDep
		dln := tc.NewDep // lifted arc end in (d, d+π]
		if dln <= d {
			dln += pi
		}
		durC := gBase.TT.Connections[tc.Conn].Duration()
		low := d
		for _, w := range members {
			if w.Conn == tc.Conn {
				continue
			}
			dw := w.Dep // lifted into (d, d+π]
			if dw <= d {
				dw += pi
			}
			if dw+w.Dur > dln+durC {
				continue // w arrives later than the moved c: no domination
			}
			if dw >= dln {
				low = dln // a post-arc departure beats c for the whole arc
				break
			}
			if dw > low {
				low = dw
			}
		}
		out[i].ArcFrom = gBase.TT.Period.Wrap(low)
		out[i].Refined = true
	}
	return out
}

// RepairDistanceTable incrementally re-preprocesses after a dynamic update:
// given the base table (built with provenance against the pre-update
// network) and the touched-connection batch separating that network from g,
// it recomputes only the rows the batch can change. When the repair is not
// applicable — base without provenance, already-derived base, or an
// estimated repair cost above maxDirtyFrac of a full rebuild — it returns
// an error matching dtable.ErrRepairFallback; callers run a full build
// with their *configured* transfer selection (transit.Repreprocess does),
// so a fallback is also the moment a changed selection takes effect.
func RepairDistanceTable(g *graph.Graph, base *dtable.Table, touched []dtable.TouchedConn, opts Options, sourceParallelism int, maxDirtyFrac float64) (*PreprocessResult, error) {
	start := time.Now()
	t, st, err := dtable.Repair(base, touched, maxDirtyFrac, sourceParallelism,
		searchFactory(g, opts, false))
	if err != nil {
		return nil, err
	}
	return &PreprocessResult{
		Table:           t,
		Elapsed:         time.Since(start),
		SizeBytes:       t.SizeBytes(),
		ProvenanceBytes: t.ProvenanceBytes(),
		Rows:            st.Rows,
		RowsRepaired:    st.RowsRepaired,
		DirtyByUsed:     st.DirtyByUsed,
		DirtyBySeed:     st.DirtyBySeed,
		DirtyByArc:      st.DirtyByArc,
		RowsWindowed:    st.RowsWindowed,
	}, nil
}

package wal

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"transit"
	"transit/internal/faultfs"
)

func sampleOps(i int) []transit.DelayOp {
	return []transit.DelayOp{
		{Train: "h08", Delay: transit.Ticks(5 * (i + 1))},
		{Routes: []int{0, i}, WindowFrom: 480, WindowTo: 600, Cancel: i%2 == 0},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	m := faultfs.NewMem()
	j, entries, err := Open(m, "net.wal")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d entries", len(entries))
	}
	want := make([]Entry, 0, 3)
	for i := 0; i < 3; i++ {
		e := Entry{Epoch: uint64(i + 1), Ops: sampleOps(i)}
		if err := j.Append(e.Epoch, e.Ops); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, e)
	}
	if j.LastEpoch() != 3 {
		t.Fatalf("LastEpoch = %d, want 3", j.LastEpoch())
	}
	j.Close()

	_, got, err := Open(m, "net.wal")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed entries = %+v, want %+v", got, want)
	}
}

func TestAppendRejectsStaleEpoch(t *testing.T) {
	m := faultfs.NewMem()
	j, _, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(5, sampleOps(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(5, sampleOps(1)); err == nil {
		t.Fatal("repeated epoch accepted")
	}
	if err := j.Append(4, sampleOps(1)); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	if err := j.Append(6, sampleOps(1)); err != nil {
		t.Fatalf("next epoch rejected: %v", err)
	}
}

func TestTruncateThrough(t *testing.T) {
	m := faultfs.NewMem()
	j, _, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := j.Append(e, sampleOps(int(e))); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint behind the journal keeps every entry: dropping a prefix
	// would break replay contiguity.
	if err := j.TruncateThrough(2); err != nil {
		t.Fatal(err)
	}
	if _, got, _ := Open(m, "copy-check"); len(got) != 0 {
		t.Fatal("scratch journal not empty") // sanity on test plumbing
	}
	if j.Size() <= 8 {
		t.Fatal("partial checkpoint truncated the journal")
	}
	// A checkpoint at (or past) the tip empties it.
	if err := j.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	if j.Size() != 8 {
		t.Fatalf("Size = %d after full truncate, want header only", j.Size())
	}
	// The high-water mark survives truncation.
	if err := j.Append(3, sampleOps(0)); err == nil {
		t.Fatal("epoch 3 accepted again after truncation")
	}
	if err := j.Append(4, sampleOps(0)); err != nil {
		t.Fatalf("Append after truncate: %v", err)
	}
	j.Close()
	_, got, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("entries after truncate+append = %+v, want just epoch 4", got)
	}
}

func TestTornTailRepairedOnOpen(t *testing.T) {
	m := faultfs.NewMem()
	j, _, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, sampleOps(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, sampleOps(1)); err != nil {
		t.Fatal(err)
	}
	intact := j.Size()
	j.Close()

	// Simulate a crash mid-append: garbage bytes after the intact frames.
	f, err := m.OpenFile("net.wal", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Seek(0, 2)
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Sync()
	f.Close()

	j2, entries, err := Open(m, "net.wal")
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(entries) != 2 || entries[1].Epoch != 2 {
		t.Fatalf("entries = %+v, want the two intact batches", entries)
	}
	if j2.Size() != intact {
		t.Fatalf("Size = %d, want %d (tail cut)", j2.Size(), intact)
	}
	// Appending continues cleanly after repair.
	if err := j2.Append(3, sampleOps(2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if _, entries, _ = Open(m, "net.wal"); len(entries) != 3 {
		t.Fatalf("after repair+append: %d entries, want 3", len(entries))
	}
}

func TestCorruptFrameCutsReplay(t *testing.T) {
	m := faultfs.NewMem()
	j, _, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(1, sampleOps(0))
	j.Append(2, sampleOps(1))
	j.Close()

	// Flip a byte inside the second frame's payload.
	data, _ := faultfs.ReadFile(m, "net.wal")
	data[len(data)-2] ^= 0xff
	faultfs.WriteFile(m, "net.wal", data, 0o644)

	_, entries, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Epoch != 1 {
		t.Fatalf("entries = %+v, want only the intact first batch", entries)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	m := faultfs.NewMem()
	faultfs.WriteFile(m, "net.wal", []byte("not a journal at all"), 0o644)
	if _, _, err := Open(m, "net.wal"); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("err = %v, want ErrNotJournal", err)
	}
}

func TestAppendFaultThenRetry(t *testing.T) {
	// Every injected failure mode of a single append must leave the
	// journal retryable and the on-disk state recoverable.
	m := faultfs.NewMem()
	j, _, err := Open(m, "net.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, sampleOps(0)); err != nil {
		t.Fatal(err)
	}
	// One append = write + sync (+ best-effort repair ops on failure).
	for step := 1; step <= 2; step++ {
		m.SetPlan(faultfs.Plan{FailStep: step})
		if err := j.Append(2, sampleOps(1)); err == nil {
			t.Fatalf("step %d: injected failure not surfaced", step)
		}
		m.SetPlan(faultfs.Plan{})
		if err := j.Append(2, sampleOps(1)); err != nil {
			t.Fatalf("step %d: retry failed: %v", step, err)
		}
		// Reset for the next iteration: reopen fresh state.
		if step == 1 {
			j.Close()
			var entries []Entry
			j, entries, err = Open(m, "net.wal")
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 2 {
				t.Fatalf("step %d: %d entries after retry, want 2", step, len(entries))
			}
			if err := j.TruncateThrough(2); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(3, nil); err != nil { // placeholder so epochs advance
				t.Fatal(err)
			}
			// Rebuild baseline: start over with epochs 1,2 expectations met.
			j.Close()
			m = faultfs.NewMem()
			j, _, err = Open(m, "net.wal")
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append(1, sampleOps(0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()
}

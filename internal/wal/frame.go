// The frame and entry codec, shared between the on-disk journal and the
// replication stream (internal/replica): both carry DelayOp batches in the
// same length-prefixed, CRC-32C-checked frames, so a replica's stream
// reader and the journal's crash-recovery scan are the same code path.
package wal

import (
	"encoding/binary"
	"errors"
	"io"

	"transit"
)

// ErrTorn reports a frame cut short, failing its checksum, or carrying an
// absurd length prefix — what a crash mid-append (or a dropped connection
// mid-stream) leaves behind. Readers stop at the first torn frame; every
// frame before it is intact by construction.
var ErrTorn = errors.New("wal: torn frame")

// AppendFrame appends payload to dst as one frame:
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32Sum(payload))
	return append(dst, payload...)
}

// ReadFrame reads one frame from r and returns its verified payload. A
// clean end — EOF before the first byte of the frame — returns io.EOF; a
// frame cut short, oversized, or failing its CRC returns ErrTorn.
func ReadFrame(r io.Reader) ([]byte, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTorn
	}
	length := binary.LittleEndian.Uint32(pre[0:4])
	want := binary.LittleEndian.Uint32(pre[4:8])
	if length == 0 || length > maxFrame {
		return nil, ErrTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrTorn
	}
	if crc32Sum(payload) != want {
		return nil, ErrTorn
	}
	return payload, nil
}

// EncodeEntry serializes one journaled batch:
//
//	u64 epoch | u32 nops | nops × op
//	op: u16 len(Train) | Train | u32 len(Routes) | Routes as i32s
//	    i32 WindowFrom | i32 WindowTo | i32 Delay | u8 Cancel
func EncodeEntry(e Entry) []byte {
	n := 8 + 4
	for _, op := range e.Ops {
		n += 2 + len(op.Train) + 4 + 4*len(op.Routes) + 4 + 4 + 4 + 1
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, e.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Ops)))
	for _, op := range e.Ops {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(op.Train)))
		buf = append(buf, op.Train...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Routes)))
		for _, r := range op.Routes {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(r)))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(op.WindowFrom)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(op.WindowTo)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(op.Delay)))
		var c byte
		if op.Cancel {
			c = 1
		}
		buf = append(buf, c)
	}
	return buf
}

var errTruncated = errors.New("wal: truncated entry")

// DecodeEntry decodes an EncodeEntry payload, requiring full consumption.
func DecodeEntry(p []byte) (Entry, error) {
	e, rest, err := DecodeEntryPrefix(p)
	if err == nil && len(rest) != 0 {
		return e, errTruncated
	}
	return e, err
}

// DecodeEntryPrefix decodes one entry from the front of p and returns the
// unconsumed tail — the replication stream appends its touched-set block
// after the entry inside one frame.
func DecodeEntryPrefix(p []byte) (Entry, []byte, error) {
	var e Entry
	if len(p) < 12 {
		return e, nil, errTruncated
	}
	e.Epoch = binary.LittleEndian.Uint64(p[0:8])
	nops := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	if nops > maxFrame/16 {
		return e, nil, errTruncated
	}
	e.Ops = make([]transit.DelayOp, 0, nops)
	for i := uint32(0); i < nops; i++ {
		var op transit.DelayOp
		if len(p) < 2 {
			return e, nil, errTruncated
		}
		tl := int(binary.LittleEndian.Uint16(p[0:2]))
		p = p[2:]
		if len(p) < tl {
			return e, nil, errTruncated
		}
		op.Train = string(p[:tl])
		p = p[tl:]
		if len(p) < 4 {
			return e, nil, errTruncated
		}
		nr := int(binary.LittleEndian.Uint32(p[0:4]))
		p = p[4:]
		if nr > len(p)/4 {
			return e, nil, errTruncated
		}
		if nr > 0 {
			op.Routes = make([]int, nr)
			for k := 0; k < nr; k++ {
				op.Routes[k] = int(int32(binary.LittleEndian.Uint32(p[4*k : 4*k+4])))
			}
			p = p[4*nr:]
		}
		if len(p) < 13 {
			return e, nil, errTruncated
		}
		op.WindowFrom = transit.Ticks(int32(binary.LittleEndian.Uint32(p[0:4])))
		op.WindowTo = transit.Ticks(int32(binary.LittleEndian.Uint32(p[4:8])))
		op.Delay = transit.Ticks(int32(binary.LittleEndian.Uint32(p[8:12])))
		op.Cancel = p[12] != 0
		p = p[13:]
		e.Ops = append(e.Ops, op)
	}
	return e, p, nil
}

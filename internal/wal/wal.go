// Package wal is the write-ahead journal for delay ingestion: an
// append-only, CRC-framed log of DelayOp batches keyed by the epoch each
// batch produced. live.Registry appends and fsyncs a batch *before*
// publishing the new snapshot and acking the epoch, so a crash between
// two persist checkpoints loses nothing — on boot the entries beyond the
// persisted epoch are replayed on top of the persisted (or base) network.
// After each successful persist checkpoint the journal is truncated back
// to its header.
//
// On-disk layout (all integers little-endian):
//
//	header   magic "TPWAL\r\n" + version byte 0x01       (8 bytes)
//	frame    u32 payload length | u32 CRC-32C of payload | payload
//	payload  u64 epoch | u32 nops | nops × op
//	op       u16 len(Train) | Train bytes
//	         u32 len(Routes) | Routes as i32s
//	         i32 WindowFrom | i32 WindowTo | i32 Delay | u8 Cancel
//
// A torn tail — a frame cut short or failing its CRC, as a crash mid-
// append leaves behind — is detected on Open and truncated away; every
// frame before it is intact by construction (each append is fsynced
// before the batch is acked). See docs/RELIABILITY.md for the recovery
// contract.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"transit"
	"transit/internal/faultfs"
)

// magic identifies a journal file: name, CRLF to catch text-mode
// corruption, and a format version byte.
var magic = [8]byte{'T', 'P', 'W', 'A', 'L', '\r', '\n', 0x01}

// maxFrame caps a single frame's payload so a corrupt length prefix
// cannot drive a giant allocation.
const maxFrame = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crc32Sum is the frame checksum: CRC-32C over the payload.
func crc32Sum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// ErrNotJournal reports a file that exists but does not start with the
// journal magic — likely not ours, so Open refuses to touch it.
var ErrNotJournal = errors.New("wal: not a journal file")

// Entry is one journaled batch: the delay ops and the epoch applying
// them produced.
type Entry struct {
	Epoch uint64
	Ops   []transit.DelayOp
}

// Journal is an open write-ahead journal. Append and TruncateThrough are
// safe for concurrent use with each other; Close must not race them.
type Journal struct {
	mu   sync.Mutex
	f    faultfs.File
	size int64 // current file length (all frames intact)
	last uint64
}

// Open opens (creating if absent) the journal at path through fsys and
// scans it, returning the journal positioned for appending plus every
// intact entry in append order. A torn tail is truncated away; entries
// before it are returned. The caller replays entries with Epoch beyond
// its persisted checkpoint and then continues appending.
func Open(fsys faultfs.FS, path string) (*Journal, []Entry, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	j, entries, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return j, entries, nil
}

// scan validates the header (writing a fresh one into an empty file) and
// reads frames until EOF or the first damaged frame, truncating the file
// at the damage.
func scan(f faultfs.File) (*Journal, []Entry, error) {
	var hdr [8]byte
	n, err := io.ReadFull(f, hdr[:])
	switch {
	case err == io.EOF && n == 0,
		err == io.ErrUnexpectedEOF && string(hdr[:n]) == string(magic[:n]):
		// Fresh file — or a torn header, a crash mid-creation having
		// committed only a prefix of the magic. (Re)stamp and sync the
		// header before accepting appends.
		if err := f.Truncate(0); err != nil {
			return nil, nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, nil, err
		}
		if _, err := f.Write(magic[:]); err != nil {
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, nil, err
		}
		return &Journal{f: f, size: int64(len(magic))}, nil, nil
	case err == io.ErrUnexpectedEOF, err == nil && hdr != magic:
		return nil, nil, ErrNotJournal
	case err != nil:
		return nil, nil, err
	}

	j := &Journal{f: f, size: int64(len(magic))}
	var entries []Entry
	for {
		payload, err := ReadFrame(f)
		if err != nil {
			break // EOF, or a torn frame: end of intact frames
		}
		e, err := DecodeEntry(payload)
		if err != nil {
			break
		}
		entries = append(entries, e)
		j.last = e.Epoch
		j.size += int64(8 + len(payload))
	}
	// Drop whatever follows the last intact frame and position for append.
	if err := f.Truncate(j.size); err != nil {
		return nil, nil, err
	}
	if _, err := f.Seek(j.size, io.SeekStart); err != nil {
		return nil, nil, err
	}
	return j, entries, nil
}

// Append journals ops as the batch that produced epoch and fsyncs before
// returning; on nil return the batch is durable. Epochs must be handed in
// strictly increasing. On error the journal file may hold a torn frame —
// the next Open repairs it, and the in-memory state is untouched so the
// caller may retry.
func (j *Journal) Append(epoch uint64, ops []transit.DelayOp) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if epoch <= j.last {
		return fmt.Errorf("wal: epoch %d not beyond journaled %d", epoch, j.last)
	}
	frame := AppendFrame(nil, EncodeEntry(Entry{Epoch: epoch, Ops: ops}))
	if _, err := j.f.Write(frame); err != nil {
		j.repair()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.repair()
		return err
	}
	j.size += int64(len(frame))
	j.last = epoch
	return nil
}

// repair cuts a torn frame left by a failed Append so a retry does not
// interleave with its remains. Best-effort: if it fails too, the next
// Open's scan performs the same truncation.
func (j *Journal) repair() {
	if j.f.Truncate(j.size) == nil {
		j.f.Seek(j.size, io.SeekStart)
	}
}

// TruncateThrough drops every journaled batch once epoch (the freshly
// persisted checkpoint) covers them all. Entries are only ever dropped
// wholesale — a journal either starts just past some checkpoint or is
// empty — so the replay sequence stays contiguous. The journaled
// high-water mark survives in memory: later Appends must still exceed it.
func (j *Journal) TruncateThrough(epoch uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.size == int64(len(magic)) || j.last > epoch {
		return nil
	}
	if err := j.f.Truncate(int64(len(magic))); err != nil {
		return err
	}
	if _, err := j.f.Seek(int64(len(magic)), io.SeekStart); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = int64(len(magic))
	return nil
}

// LastEpoch returns the highest epoch ever journaled through this handle
// (including entries since truncated away).
func (j *Journal) LastEpoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.last
}

// Size returns the current journal length in bytes (header included).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close closes the journal file. Appends already acked are durable; no
// flush is needed here.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

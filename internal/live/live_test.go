package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"transit"
)

// hourlyNetwork: trains leave A hourly 06:00–22:00, reaching B after 30
// minutes; a second line B→C every hour on the half hour.
func hourlyNetwork(t testing.TB) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	c := tb.AddStation("C", 2)
	for h := 6; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("ab%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
		if err := tb.AddTrain(fmt.Sprintf("bc%02d", h), []transit.StationID{b, c},
			transit.Ticks(h*60+40), []transit.Ticks{25}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func arrival(t testing.TB, n *transit.Network, from, to transit.StationID, at transit.Ticks) transit.Ticks {
	t.Helper()
	arr, err := n.EarliestArrival(from, to, at, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestApplyBumpsEpochAndSwaps(t *testing.T) {
	r := NewRegistry(hourlyNetwork(t), Config{})
	before := r.Snapshot()
	if before.Epoch != 0 {
		t.Fatalf("initial epoch %d", before.Epoch)
	}
	if got := arrival(t, before.Net, 0, 1, 480); got != 510 {
		t.Fatalf("baseline arrival %d, want 510", got)
	}
	snap, st, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || st.TrainsDelayed != 1 || st.ConnsRetimed != 1 {
		t.Fatalf("snap epoch %d stats %+v", snap.Epoch, st)
	}
	if got := arrival(t, snap.Net, 0, 1, 480); got != 530 {
		t.Fatalf("post-delay arrival %d, want 530", got)
	}
	// The handed-out pre-update snapshot still answers with the old times.
	if got := arrival(t, before.Net, 0, 1, 480); got != 510 {
		t.Fatalf("old snapshot changed: %d", got)
	}
	if r.Snapshot() != snap {
		t.Fatal("registry not serving the new snapshot")
	}
}

func TestNoOpBatchKeepsSnapshot(t *testing.T) {
	r := NewRegistry(hourlyNetwork(t), Config{})
	before := r.Snapshot()
	snap, st, err := r.Apply([]transit.DelayOp{{Train: "no-such-train", Delay: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if snap != before || snap.Epoch != 0 || st.ConnsRetimed != 0 {
		t.Fatalf("no-op batch swapped: epoch %d stats %+v", snap.Epoch, st)
	}
}

func TestApplyErrorLeavesRegistryIntact(t *testing.T) {
	r := NewRegistry(hourlyNetwork(t), Config{})
	before := r.Snapshot()
	if _, _, err := r.Apply([]transit.DelayOp{{Routes: []int{99}, Delay: 5}}); err == nil {
		t.Fatal("bad route accepted")
	}
	if r.Snapshot() != before {
		t.Fatal("failed apply changed the snapshot")
	}
}

func TestSyncReprocess(t *testing.T) {
	n, _, err := hourlyNetwork(t).Preprocess(transit.TransferSelection{Fraction: 0.5}, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(n, Config{Policy: ReprocessSync, Selection: transit.TransferSelection{Fraction: 0.5}})
	snap, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Preprocessed() {
		t.Fatal("sync policy served an unpruned snapshot")
	}
	if got := arrival(t, snap.Net, 0, 1, 480); got != 525 {
		t.Fatalf("post-delay arrival %d, want 525", got)
	}
	if m := r.Metrics(); m.ReprocessedTotal != 1 || m.Epoch != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestAsyncReprocess(t *testing.T) {
	n, _, err := hourlyNetwork(t).Preprocess(transit.TransferSelection{Fraction: 0.5}, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(n, Config{Policy: ReprocessAsync, Selection: transit.TransferSelection{Fraction: 0.5}})
	snap, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 15}})
	if err != nil {
		t.Fatal(err)
	}
	// The swap is immediate (unpruned serves first); the table follows.
	if got := arrival(t, snap.Net, 0, 1, 480); got != 525 {
		t.Fatalf("post-delay arrival %d, want 525", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !r.Snapshot().Preprocessed() {
		if time.Now().After(deadline) {
			t.Fatal("async re-preprocess never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cur := r.Snapshot()
	if cur.Epoch != 1 {
		t.Fatalf("preprocessed swap changed the epoch: %d", cur.Epoch)
	}
	if got := arrival(t, cur.Net, 0, 1, 480); got != 525 {
		t.Fatalf("preprocessed snapshot answers differently: %d", got)
	}
	r.Close()
}

// TestAsyncReprocessCoalesces feeds updates faster than rebuilds can land:
// at most one rebuild goroutine may be alive, rolling forward to the newest
// epoch, and the registry must converge to a preprocessed final snapshot.
func TestAsyncReprocessCoalesces(t *testing.T) {
	n, _, err := hourlyNetwork(t).Preprocess(transit.TransferSelection{Fraction: 0.5}, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(n, Config{Policy: ReprocessAsync, Selection: transit.TransferSelection{Fraction: 0.5}})
	const batches = 12
	for i := 0; i < batches; i++ {
		if _, _, err := r.Apply([]transit.DelayOp{{Train: fmt.Sprintf("ab%02d", 6+i), Delay: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := r.Snapshot()
		if cur.Epoch == batches && cur.Preprocessed() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: epoch %d preprocessed %v", cur.Epoch, cur.Preprocessed())
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Close() // must not hang on piled-up rebuilds
	if m := r.Metrics(); m.ReprocessedTotal == 0 || m.ReprocessedTotal > batches {
		t.Fatalf("reprocessed %d times for %d updates, want coalescing in [1,%d]", m.ReprocessedTotal, batches, batches)
	}
}

func TestClosedRegistryRejectsUpdates(t *testing.T) {
	r := NewRegistry(hourlyNetwork(t), Config{})
	r.Close()
	if _, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 5}}); err == nil {
		t.Fatal("closed registry accepted an update")
	}
	if r.Snapshot() == nil {
		t.Fatal("snapshots must stay valid after Close")
	}
}

// TestConcurrentReadersAndWriter exercises the atomic-swap consistency
// contract under -race: readers hammer EarliestArrival on whatever snapshot
// is current while a writer applies delay batches and cancellations.
func TestConcurrentReadersAndWriter(t *testing.T) {
	r := NewRegistry(hourlyNetwork(t), Config{})
	const (
		readers = 8
		queries = 200
		batches = 30
	)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				snap := r.Snapshot()
				at := transit.Ticks(360 + (seed*queries+q)%720)
				arr, err := snap.Net.EarliestArrival(0, 2, at, transit.Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if !arr.IsInf() && arr < at {
					t.Errorf("arrival %d before departure %d", arr, at)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			op := transit.DelayOp{Train: fmt.Sprintf("ab%02d", 6+i%17), Delay: 1}
			if i%7 == 3 {
				op = transit.DelayOp{Train: fmt.Sprintf("bc%02d", 6+i%17), Cancel: true}
			}
			if _, _, err := r.Apply([]transit.DelayOp{op}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if epoch := r.Snapshot().Epoch; epoch != batches {
		t.Fatalf("final epoch %d, want %d", epoch, batches)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"off": ServeUnpruned, "async": ReprocessAsync, "sync": ReprocessSync} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Policy(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestSyncRepair: with a repairable base table, the sync policy repairs
// incrementally on every batch (accumulating touches against the base) and
// never falls back to a full rebuild.
func TestSyncRepair(t *testing.T) {
	sel := transit.TransferSelection{Fraction: 1}
	opt := transit.Options{RepairMaxDirty: 1}
	n, _, err := hourlyNetwork(t).Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !n.TableRepairable() {
		t.Fatal("fresh preprocessing must be a repair base")
	}
	r := NewRegistry(n, Config{Policy: ReprocessSync, Selection: sel, Options: opt})
	snap, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Preprocessed() {
		t.Fatal("sync repair served an unpruned snapshot")
	}
	if got := arrival(t, snap.Net, 0, 1, 480); got != 525 {
		t.Fatalf("post-delay arrival %d, want 525", got)
	}
	snap, _, err = r.Apply([]transit.DelayOp{{Train: "ab09", Delay: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := arrival(t, snap.Net, 0, 1, 540); got != 575 {
		t.Fatalf("second-delay arrival %d, want 575", got)
	}
	m := r.Metrics()
	if m.RepairsTotal != 2 || m.FullRebuildsTotal != 0 || m.ReprocessedTotal != 2 {
		t.Fatalf("want 2 repairs, 0 rebuilds: %+v", m)
	}
	if m.RowsRepairedTotal == 0 || m.LastReprocess <= 0 {
		t.Fatalf("repair metrics empty: %+v", m)
	}
}

// TestAsyncRepair: the async policy repairs in the background from the
// boot-time base; the repaired table lands under the same epoch.
func TestAsyncRepair(t *testing.T) {
	sel := transit.TransferSelection{Fraction: 1}
	opt := transit.Options{RepairMaxDirty: 1}
	n, _, err := hourlyNetwork(t).Preprocess(sel, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(n, Config{Policy: ReprocessAsync, Selection: sel, Options: opt})
	if _, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 15}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !r.Snapshot().Preprocessed() {
		if time.Now().After(deadline) {
			t.Fatal("async repair never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cur := r.Snapshot()
	if cur.Epoch != 1 {
		t.Fatalf("repaired swap changed the epoch: %d", cur.Epoch)
	}
	if got := arrival(t, cur.Net, 0, 1, 480); got != 525 {
		t.Fatalf("repaired snapshot answers differently: %d", got)
	}
	r.Close()
	m := r.Metrics()
	if m.RepairsTotal != 1 || m.FullRebuildsTotal != 0 {
		t.Fatalf("want exactly one async repair: %+v", m)
	}
}

// TestRepairEstablishesBase: booting without preprocessing, the first sync
// re-preprocess is a full rebuild (no base) that establishes the repair
// base; the second batch then repairs from it.
func TestRepairEstablishesBase(t *testing.T) {
	sel := transit.TransferSelection{Fraction: 0.5}
	opt := transit.Options{RepairMaxDirty: 1}
	r := NewRegistry(hourlyNetwork(t), Config{Policy: ReprocessSync, Selection: sel, Options: opt})
	if _, _, err := r.Apply([]transit.DelayOp{{Train: "ab08", Delay: 15}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Apply([]transit.DelayOp{{Train: "ab09", Delay: 5}}); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.FullRebuildsTotal != 1 || m.RepairsTotal != 1 {
		t.Fatalf("want rebuild-then-repair: %+v", m)
	}
}

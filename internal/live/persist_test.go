package live

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"transit"
)

// persistNetwork is a deterministic two-station network: trains "h" leave A
// hourly 06:00–22:00 and reach B 30 minutes later.
func persistNetwork(t testing.TB) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	for h := 6; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("h%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func arrivalAt0800(t *testing.T, n *transit.Network) transit.Ticks {
	t.Helper()
	arr, err := n.EarliestArrival(0, 1, 8*60, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestPersistResume is the restart story end to end: apply delays, persist,
// load into a fresh registry, and resume at the same epoch with the same
// answers.
func TestPersistResume(t *testing.T) {
	reg := NewRegistry(persistNetwork(t), Config{Policy: ServeUnpruned})
	defer reg.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := reg.Apply([]transit.DelayOp{{Train: "h08", Delay: 5}}); err != nil {
			t.Fatal(err)
		}
	}
	// 15 minutes of accumulated delay: the 08:00 train arrives 08:45.
	if arr := arrivalAt0800(t, reg.Snapshot().Net); arr != 8*60+45 {
		t.Fatalf("pre-persist arrival %d, want %d", arr, 8*60+45)
	}

	var buf bytes.Buffer
	epoch, err := reg.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("persisted epoch %d, want 3", epoch)
	}

	n2, st, err := transit.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistryAt(n2, *st, Config{Policy: ServeUnpruned})
	defer reg2.Close()
	snap := reg2.Snapshot()
	if snap.Epoch != 3 {
		t.Fatalf("resumed epoch %d, want 3", snap.Epoch)
	}
	if arr := arrivalAt0800(t, snap.Net); arr != 8*60+45 {
		t.Fatalf("resumed arrival %d, want %d: delays lost", arr, 8*60+45)
	}
	// The epoch sequence continues, it does not restart.
	next, _, err := reg2.Apply([]transit.DelayOp{{Train: "h09", Delay: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 4 {
		t.Fatalf("post-resume epoch %d, want 4", next.Epoch)
	}
}

func TestPersistFileSkipsUnchangedEpochs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	reg := NewRegistry(persistNetwork(t), Config{Policy: ServeUnpruned})
	defer reg.Close()

	if _, wrote, err := reg.PersistFile(path); err != nil || !wrote {
		t.Fatalf("first persist: wrote=%v err=%v", wrote, err)
	}
	if _, wrote, err := reg.PersistFile(path); err != nil || wrote {
		t.Fatalf("unchanged persist: wrote=%v err=%v, want skip", wrote, err)
	}
	if _, _, err := reg.Apply([]transit.DelayOp{{Train: "h08", Delay: 5}}); err != nil {
		t.Fatal(err)
	}
	epoch, wrote, err := reg.PersistFile(path)
	if err != nil || !wrote || epoch != 1 {
		t.Fatalf("post-update persist: epoch=%d wrote=%v err=%v", epoch, wrote, err)
	}
	if m := reg.Metrics(); m.PersistsTotal != 2 || m.PersistErrors != 0 {
		t.Fatalf("metrics %+v, want 2 persists, 0 errors", m)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, st, err := transit.LoadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("file epoch %d, want 1", st.Epoch)
	}
}

func TestPersistFileReportsErrors(t *testing.T) {
	reg := NewRegistry(persistNetwork(t), Config{Policy: ServeUnpruned})
	defer reg.Close()
	if _, _, err := reg.PersistFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.snap")); err == nil {
		t.Fatal("unwritable path accepted")
	}
	if m := reg.Metrics(); m.PersistErrors != 1 {
		t.Fatalf("PersistErrors = %d, want 1", m.PersistErrors)
	}
}

// TestStartPersistFinalCheckpoint: Close performs one last persist so the
// final epoch survives even when no ticker fired.
func TestStartPersistFinalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	reg := NewRegistry(persistNetwork(t), Config{Policy: ServeUnpruned})
	reg.StartPersist(path, time.Hour) // ticker never fires during the test
	if _, _, err := reg.Apply([]transit.DelayOp{{Train: "h08", Cancel: true}}); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no final checkpoint written: %v", err)
	}
	defer f.Close()
	n, st, err := transit.LoadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("checkpoint epoch %d, want 1", st.Epoch)
	}
	// The cancelled 08:00 train stays cancelled: 08:00 travellers ride the
	// 09:00 departure.
	if arr := arrivalAt0800(t, n); arr != 9*60+30 {
		t.Fatalf("arrival %d, want %d (cancellation lost)", arr, 9*60+30)
	}
	// After Close, a second StartPersist is a no-op and must not panic.
	reg.StartPersist(path, time.Hour)
}

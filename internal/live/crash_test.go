package live

import (
	"errors"
	"io/fs"
	"os"
	"testing"

	"transit"
	"transit/internal/faultfs"
)

// crashBatches are the delay batches of the crash scenario — each with a
// distinct effect so every epoch has a distinguishable query fingerprint.
var crashBatches = [][]transit.DelayOp{
	{{Train: "h08", Delay: 5}},
	{{Train: "h09", Delay: 7}},
	{{Train: "h10", Cancel: true}},
	{{Train: "h11", Delay: 3}},
}

// fingerprint is the full behavioural signature of the two-station test
// network: the earliest arrival at B for a departure from A at every hour.
func fingerprint(t testing.TB, n *transit.Network) [17]transit.Ticks {
	t.Helper()
	var fp [17]transit.Ticks
	for h := 6; h <= 22; h++ {
		arr, err := n.EarliestArrival(0, 1, transit.Ticks(h*60), transit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fp[h-6] = arr
	}
	return fp
}

// referenceNet applies the first n crash batches to a fresh network — the
// ground truth a recovered registry at epoch n must match exactly.
func referenceNet(t testing.TB, n int) *transit.Network {
	t.Helper()
	net := persistNetwork(t)
	for _, b := range crashBatches[:n] {
		next, _, err := net.ApplyUpdates(b)
		if err != nil {
			t.Fatal(err)
		}
		net = next
	}
	return net
}

// bootCrashReg is the boot path of the crash scenario: clean orphaned
// temps, load the persist file if present (it must never be corrupt —
// rename is atomic), seed the registry, recover the journal. A nil return
// means boot I/O failed (only possible while a crash plan is live).
func bootCrashReg(t testing.TB, m *faultfs.Mem) *Registry {
	t.Helper()
	const snapPath, walPath = "state.snap", "state.wal"
	if _, err := CleanupTemps(m, snapPath); err != nil {
		return nil
	}
	var reg *Registry
	cfg := Config{Policy: ServeUnpruned, FS: m}
	f, err := m.OpenFile(snapPath, os.O_RDONLY, 0)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		reg = NewRegistry(persistNetwork(t), cfg)
	case err != nil:
		return nil
	default:
		net, st, lerr := transit.LoadSnapshot(f)
		f.Close()
		if lerr != nil {
			t.Fatalf("persisted snapshot is corrupt: %v", lerr)
		}
		reg = NewRegistryAt(net, *st, cfg)
	}
	if _, err := reg.RecoverJournal(walPath); err != nil {
		// Journal unusable: a real server refuses to start rather than
		// serve without durability. Only reachable under a crash plan.
		return nil
	}
	return reg
}

// runCrashScenario drives one full apply→journal→persist→truncate cycle:
// boot, apply the batches with a checkpoint in the middle and one at the
// end, close. It reports the highest epoch acked to the (simulated) feed
// client; errors are tolerated mid-stream — exactly like the real server,
// which keeps serving when durability I/O fails — but a failed boot acks
// nothing.
func runCrashScenario(t testing.TB, m *faultfs.Mem) (acked uint64) {
	const snapPath = "state.snap"
	reg := bootCrashReg(t, m)
	if reg == nil {
		return 0
	}
	for i, b := range crashBatches {
		if snap, _, err := reg.Apply(b); err == nil {
			acked = snap.Epoch
		}
		if i == 1 {
			reg.PersistFile(snapPath) // mid-stream checkpoint + journal truncate
		}
	}
	reg.PersistFile(snapPath) // final checkpoint
	reg.Close()
	return acked
}

// TestCrashAtEveryIOStep is the crash-safety property test: the scenario
// is run once fault-free to count its I/O steps, then once per step k with
// a simulated crash at step k. After every crash the rebooted registry
// must recover an epoch ≥ the last acked batch (at-least-once: a journaled
// batch whose ack was lost may replay) with query answers byte-identical
// to applying exactly that many batches to a fresh network — and ingestion
// must continue cleanly to the end of the feed.
func TestCrashAtEveryIOStep(t *testing.T) {
	clean := faultfs.NewMem()
	if acked := runCrashScenario(t, clean); acked != uint64(len(crashBatches)) {
		t.Fatalf("fault-free run acked epoch %d, want %d", acked, len(crashBatches))
	}
	steps := clean.Steps()
	if steps < 10 {
		t.Fatalf("scenario has only %d I/O steps — harness not exercising the cycle", steps)
	}

	for k := 1; k <= steps; k++ {
		m := faultfs.NewMem()
		m.SetPlan(faultfs.Plan{FailStep: k, Crash: true})
		acked := runCrashScenario(t, m)
		if !m.Crashed() {
			t.Fatalf("step %d: crash plan never fired", k)
		}
		m.Reboot()

		reg := bootCrashReg(t, m)
		if reg == nil {
			t.Fatalf("step %d: clean reboot failed", k)
		}
		got := reg.Snapshot()
		if got.Epoch < acked {
			t.Errorf("step %d: recovered epoch %d < last acked %d — acked batch lost", k, got.Epoch, acked)
		}
		if got.Epoch > uint64(len(crashBatches)) {
			t.Errorf("step %d: recovered epoch %d beyond the %d batches ever sent", k, got.Epoch, len(crashBatches))
		}
		if want := fingerprint(t, referenceNet(t, int(got.Epoch))); fingerprint(t, got.Net) != want {
			t.Errorf("step %d: recovered network at epoch %d does not match %d applied batches", k, got.Epoch, got.Epoch)
		}
		// The feed resumes: applying the not-yet-recovered tail lands the
		// registry exactly at the fault-free end state.
		for _, b := range crashBatches[got.Epoch:] {
			if _, _, err := reg.Apply(b); err != nil {
				t.Fatalf("step %d: post-recovery apply: %v", k, err)
			}
		}
		final := reg.Snapshot()
		if final.Epoch != uint64(len(crashBatches)) {
			t.Errorf("step %d: post-recovery epoch %d, want %d", k, final.Epoch, len(crashBatches))
		}
		if want := fingerprint(t, referenceNet(t, len(crashBatches))); fingerprint(t, final.Net) != want {
			t.Errorf("step %d: post-recovery answers diverge from the fault-free run", k)
		}
		reg.Close()
	}
}

// TestJournalFailureKeepsServing pins the degraded mode: when the journal
// cannot make a batch durable, Apply rejects the batch with ErrJournal,
// the epoch does not advance, queries keep working — and ingestion resumes
// once the fault clears.
func TestJournalFailureKeepsServing(t *testing.T) {
	m := faultfs.NewMem()
	reg := bootCrashReg(t, m)
	if reg == nil {
		t.Fatal("boot failed")
	}
	defer reg.Close()
	if _, _, err := reg.Apply(crashBatches[0]); err != nil {
		t.Fatal(err)
	}
	m.SetPlan(faultfs.Plan{FailStep: 1, Err: errors.New("disk full")})
	_, _, err := reg.Apply(crashBatches[1])
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("err = %v, want ErrJournal", err)
	}
	snap := reg.Snapshot()
	if snap.Epoch != 1 {
		t.Fatalf("epoch advanced to %d despite journal failure", snap.Epoch)
	}
	if fingerprint(t, snap.Net) != fingerprint(t, referenceNet(t, 1)) {
		t.Fatal("serving state changed despite rejected batch")
	}
	m.SetPlan(faultfs.Plan{})
	next, _, err := reg.Apply(crashBatches[1]) // client retry succeeds
	if err != nil || next.Epoch != 2 {
		t.Fatalf("retry after fault cleared: epoch %d, err %v", next.Epoch, err)
	}
	mtr := reg.Metrics()
	if mtr.WalAppendErrors != 1 || mtr.WalAppends != 2 {
		t.Fatalf("wal counters = %d appends / %d errors, want 2 / 1", mtr.WalAppends, mtr.WalAppendErrors)
	}
}

// TestBootCleansOrphanTemp is the regression test for the orphaned
// *.snap.tmp* left by a crash between the temp write and the rename: the
// boot path must remove it (real disk).
func TestBootCleansOrphanTemp(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.live.snap"
	orphan := path + ".tmp4242_1"
	if err := os.WriteFile(orphan, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := CleanupTemps(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != orphan {
		t.Fatalf("removed %v, want [%s]", removed, orphan)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphan still on disk: %v", err)
	}
	// And it must not touch the persist file itself or unrelated names.
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if removed, _ := CleanupTemps(nil, path); len(removed) != 0 {
		t.Fatalf("second cleanup removed %v, want nothing", removed)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("persist file removed by cleanup: %v", err)
	}
}

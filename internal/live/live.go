package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"transit"
	"transit/internal/faultfs"
	"transit/internal/wal"
)

// ErrClosed is returned by Apply after Close: the registry no longer
// accepts updates (the serving process is draining). Feed clients should
// retry against the replacement instance.
var ErrClosed = errors.New("live: registry closed")

// ErrReprocess wraps distance-table rebuild failures surfaced by Apply
// under ReprocessSync — a server-side condition, not a malformed batch.
var ErrReprocess = errors.New("live: re-preprocess failed")

// ErrJournal wraps write-ahead journal append failures surfaced by Apply:
// the batch could not be made durable, so it was NOT applied and the epoch
// did not advance. The registry keeps serving the previous snapshot and
// the feed client should retry — a server-side durability condition, not a
// malformed batch.
var ErrJournal = errors.New("live: journal append failed")

// Policy selects what happens to distance-table preprocessing after an
// update invalidates it. See the package documentation for the trade-offs.
type Policy int

const (
	// ServeUnpruned drops preprocessing on update and keeps serving with
	// the stopping criterion alone.
	ServeUnpruned Policy = iota
	// ReprocessAsync swaps the patched snapshot in immediately and rebuilds
	// the distance table in the background; a preprocessed network replaces
	// the snapshot (same epoch) when ready.
	ReprocessAsync
	// ReprocessSync rebuilds the distance table before the swap: Apply
	// blocks for the preprocessing time, served snapshots are always pruned.
	ReprocessSync
)

func (p Policy) String() string {
	switch p {
	case ServeUnpruned:
		return "off"
	case ReprocessAsync:
		return "async"
	case ReprocessSync:
		return "sync"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses the flag spellings "off", "async", "sync".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off":
		return ServeUnpruned, nil
	case "async":
		return ReprocessAsync, nil
	case "sync":
		return ReprocessSync, nil
	default:
		return 0, fmt.Errorf("live: unknown re-preprocess policy %q (want off, async or sync)", s)
	}
}

// Config tunes a Registry.
type Config struct {
	// Policy selects the preprocessing-invalidation strategy.
	Policy Policy
	// Selection is the transfer-station selection used when Policy rebuilds
	// distance tables (required for ReprocessAsync/ReprocessSync).
	Selection transit.TransferSelection
	// Options tunes the preprocessing runs (thread count).
	Options transit.Options
	// Logf, when set, receives re-preprocessing progress and failures.
	Logf func(format string, args ...any)
	// FS is the filesystem behind persistence and the journal; nil means
	// the real disk. Tests inject faultfs.Mem to simulate crashes.
	FS faultfs.FS
	// RepairTimeout bounds one async table repair: past it the straggling
	// run is abandoned and a full rebuild from scratch is started instead,
	// so a pathological repair cannot wedge the background loop. Zero
	// disables the watchdog.
	RepairTimeout time.Duration
	// OnApply, when set, observes every epoch-advancing batch right after
	// its snapshot swap: the new epoch, the ops that produced it, and the
	// touched connections. Called under the registry's apply lock — epochs
	// arrive strictly increasing and never concurrently — including during
	// journal replay at boot, so an observer (the replication publisher)
	// sees the journal's tail too. Must not call back into the registry.
	OnApply func(epoch uint64, ops []transit.DelayOp, touched []transit.TouchedConn)
}

// fs returns the configured filesystem, defaulting to the real disk.
func (c *Config) fs() faultfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return faultfs.Disk
}

// Snapshot is one immutable, query-ready version of the network. Epoch 0 is
// the initially loaded network; every applied update bumps the epoch.
type Snapshot struct {
	Net     *transit.Network
	Epoch   uint64
	Created time.Time
}

// Preprocessed reports whether this snapshot carries a distance table.
func (s *Snapshot) Preprocessed() bool { return s.Net.Preprocessed() }

// Registry holds the current snapshot behind an atomic pointer and applies
// delay batches without ever blocking readers. See the package
// documentation for the consistency model.
type Registry struct {
	cfg Config
	cur atomic.Pointer[Snapshot]

	mu          sync.Mutex // serializes Apply and the async re-preprocess swap
	wg          sync.WaitGroup
	closed      bool
	rebuilding  bool          // an async re-preprocess goroutine is alive (under mu)
	persistStop chan struct{} // closes the StartPersist loop (set under mu)

	// Incremental-repair state (under mu): base is the last network whose
	// distance table was fully built with fresh provenance — the only valid
	// starting point of a table repair — and pending accumulates the
	// touched connections of every update applied since, composed with
	// transit.MergeTouched. A repair recomputes base-dirty rows and leaves
	// base and pending in place (the repaired table cannot seed further
	// repairs); a full rebuild — forced when the pending set dirties too
	// much of the table — resets both.
	base    *transit.Network
	pending []transit.TouchedConn

	// journal, when attached, receives every epoch-advancing batch before
	// the snapshot swap acks it. Set once at boot (RecoverJournal); closed
	// by Close after the final persist checkpoint.
	journal atomic.Pointer[wal.Journal]

	updates          atomic.Uint64
	connsRetimed     atomic.Uint64
	connsCancelled   atomic.Uint64
	lastUpdateMicros atomic.Int64
	reprocessed      atomic.Uint64
	reprocessErrors  atomic.Uint64
	repairs          atomic.Uint64
	rowsRepaired     atomic.Uint64
	fullRebuilds     atomic.Uint64
	lastReproMicros  atomic.Int64
	repairMicros     atomic.Int64 // cumulative time spent in repairs/rebuilds
	lastApplyMicros  atomic.Int64 // Unix µs of the last epoch-advancing Apply
	persists         atomic.Uint64
	persistErrors    atomic.Uint64
	persistedKey     atomic.Int64 // persistKey of the last PersistFile write; 0 = none
	walAppends       atomic.Uint64
	walAppendErrors  atomic.Uint64
	walReplayed      atomic.Uint64
	repairTimeouts   atomic.Uint64
}

// NewRegistry wraps an already-loaded (and possibly preprocessed) network
// as the epoch-0 snapshot.
func NewRegistry(net *transit.Network, cfg Config) *Registry {
	r := &Registry{cfg: cfg}
	r.cur.Store(&Snapshot{Net: net, Created: time.Now()})
	r.initBase(net)
	return r
}

// initBase seeds the repair base when the starting network's table can back
// incremental repairs (built by this process, or restored from a snapshot
// carrying the provenance section).
func (r *Registry) initBase(net *transit.Network) {
	if net.TableRepairable() {
		r.base = net
	}
}

// Snapshot returns the current snapshot: a single atomic load, wait-free,
// safe from any goroutine. Callers must load once per request and use that
// snapshot's network throughout, so the request sees one consistent view.
func (r *Registry) Snapshot() *Snapshot { return r.cur.Load() }

// Apply patches the current snapshot with a delay batch and swaps the
// successor in. Writers are serialized; readers are never blocked. A batch
// matching no train leaves the current snapshot (and its epoch) in place.
func (r *Registry) Apply(ops []transit.DelayOp) (*Snapshot, *transit.UpdateStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, ErrClosed
	}
	start := time.Now()
	cur := r.cur.Load()
	next, st, err := cur.Net.ApplyUpdates(ops)
	if err != nil {
		return nil, nil, err
	}
	if next == cur.Net {
		return cur, st, nil // no-op batch: nothing changed, epoch stays
	}
	// Under ReprocessSync the rebuild runs before the batch is journaled:
	// a failed rebuild must not leave an orphaned journal entry that would
	// poison replay at the next boot. The repair state (base/pending) is
	// committed only after the journal accepts the batch.
	var syncPre *transit.Network
	var syncPS *transit.PreprocessStats
	var syncPending []transit.TouchedConn
	if r.cfg.Policy == ReprocessSync {
		syncPending = transit.MergeTouched(r.pending, st.Touched)
		syncPre, syncPS, err = next.Repreprocess(r.base, syncPending, r.cfg.Selection, r.cfg.Options)
		if err != nil {
			r.reprocessErrors.Add(1)
			return nil, nil, fmt.Errorf("%w: %v", ErrReprocess, err)
		}
	}
	// Journal before the swap: once Append returns the batch is fsynced,
	// so acking the new epoch to the client is safe — a crash after this
	// point replays the batch from the journal.
	if j := r.journal.Load(); j != nil {
		if jerr := j.Append(cur.Epoch+1, ops); jerr != nil {
			r.walAppendErrors.Add(1)
			r.logf("live: journal append for epoch %d failed: %v", cur.Epoch+1, jerr)
			return nil, nil, fmt.Errorf("%w: %v", ErrJournal, jerr)
		}
		r.walAppends.Add(1)
	}
	if r.cfg.Policy == ReprocessSync {
		r.pending = syncPending
		r.noteRepreprocess(syncPS)
		if syncPS.FullRebuild {
			r.base, r.pending = syncPre, nil
		}
		r.logf("live: epoch %d re-preprocessed synchronously (%s in %v)",
			cur.Epoch+1, repairDesc(syncPS), syncPS.Elapsed)
		next = syncPre
	}
	snap := &Snapshot{Net: next, Epoch: cur.Epoch + 1, Created: time.Now()}
	r.cur.Store(snap)
	r.lastApplyMicros.Store(snap.Created.UnixMicro())
	r.updates.Add(1)
	r.connsRetimed.Add(uint64(st.ConnsRetimed))
	r.connsCancelled.Add(uint64(st.ConnsCancelled))
	r.lastUpdateMicros.Store(time.Since(start).Microseconds())
	if r.cfg.OnApply != nil {
		r.cfg.OnApply(snap.Epoch, ops, st.Touched)
	}
	if r.cfg.Policy == ReprocessAsync {
		r.pending = transit.MergeTouched(r.pending, st.Touched)
		if !r.rebuilding {
			// At most one rebuild goroutine is alive; it rolls forward to the
			// newest epoch by itself, so a delay feed faster than the
			// re-preprocessing time coalesces instead of piling up rebuilds.
			r.rebuilding = true
			r.wg.Add(1)
			go r.reprocess(snap)
		}
	}
	return snap, st, nil
}

// noteRepreprocess updates the re-preprocessing counters for one successful
// repair or rebuild.
func (r *Registry) noteRepreprocess(ps *transit.PreprocessStats) {
	r.reprocessed.Add(1)
	r.lastReproMicros.Store(ps.Elapsed.Microseconds())
	r.repairMicros.Add(ps.Elapsed.Microseconds())
	if ps.FullRebuild {
		r.fullRebuilds.Add(1)
	} else {
		r.repairs.Add(1)
		r.rowsRepaired.Add(uint64(ps.RowsRepaired))
	}
}

// repairDesc renders a re-preprocessing outcome for the log.
func repairDesc(ps *transit.PreprocessStats) string {
	if !ps.FullRebuild {
		return fmt.Sprintf("repaired %d/%d rows", ps.RowsRepaired, ps.Rows)
	}
	if ps.Fallback != "" {
		return fmt.Sprintf("full rebuild of %d rows: %s", ps.Rows, ps.Fallback)
	}
	return fmt.Sprintf("full rebuild of %d rows", ps.Rows)
}

// reprocess restores snap's distance table in the background — repairing
// the last fully built base table when the accumulated touched set dirties
// few enough rows, rebuilding from scratch otherwise — and, if snap is
// still current, swaps in the preprocessed network under the same epoch.
// When newer updates landed during the work, the stale result is discarded
// and the loop continues with the now-current snapshot, so intermediate
// epochs are skipped rather than each spawning a rebuild.
func (r *Registry) reprocess(snap *Snapshot) {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		base, pending := r.base, r.pending
		r.mu.Unlock()
		pre, ps, err := r.repreprocessGuarded(snap.Net, base, pending)
		r.mu.Lock()
		cur := r.cur.Load()
		if err != nil {
			r.reprocessErrors.Add(1)
			r.logf("live: async re-preprocess of epoch %d failed: %v", snap.Epoch, err)
		} else if cur.Epoch == snap.Epoch {
			// Any Apply since the attempt started would have bumped the
			// epoch, so base and pending are exactly what the result
			// consumed: a full rebuild becomes the new repair base.
			r.noteRepreprocess(ps)
			if ps.FullRebuild {
				r.base, r.pending = pre, nil
			}
			r.cur.Store(&Snapshot{Net: pre, Epoch: snap.Epoch, Created: snap.Created})
			r.logf("live: epoch %d re-preprocessed (%s in %v)",
				snap.Epoch, repairDesc(ps), ps.Elapsed)
			cur = r.cur.Load()
		}
		if r.closed || cur.Epoch == snap.Epoch {
			// Done: either this result landed (or failed) for the epoch
			// still being served, or the registry is draining.
			r.rebuilding = false
			r.mu.Unlock()
			return
		}
		// Superseded while re-preprocessing: roll forward to the current
		// epoch (the next attempt reads the grown pending set).
		snap = cur
		r.mu.Unlock()
	}
}

// repreprocessGuarded runs one table repair under the RepairTimeout
// watchdog: when the run overstays its budget its eventual result is
// abandoned (the straggling goroutine drops its answer into a buffered
// channel nobody reads) and a full rebuild from scratch — whose cost is
// predictable — is started in its place.
func (r *Registry) repreprocessGuarded(net, base *transit.Network, pending []transit.TouchedConn) (*transit.Network, *transit.PreprocessStats, error) {
	if r.cfg.RepairTimeout <= 0 || base == nil {
		return net.Repreprocess(base, pending, r.cfg.Selection, r.cfg.Options)
	}
	type result struct {
		pre *transit.Network
		ps  *transit.PreprocessStats
		err error
	}
	ch := make(chan result, 1)
	go func() {
		pre, ps, err := net.Repreprocess(base, pending, r.cfg.Selection, r.cfg.Options)
		ch <- result{pre, ps, err}
	}()
	timer := time.NewTimer(r.cfg.RepairTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.pre, res.ps, res.err
	case <-timer.C:
		r.repairTimeouts.Add(1)
		r.logf("live: table repair exceeded %v, abandoning it for a full rebuild", r.cfg.RepairTimeout)
		pre, ps, err := net.Repreprocess(nil, nil, r.cfg.Selection, r.cfg.Options)
		if err == nil {
			ps.Fallback = "repair watchdog timeout"
		}
		return pre, ps, err
	}
}

// Install replaces the current snapshot wholesale with a network restored
// from a full snapshot image — a replica resyncing after falling beyond the
// updater's delta retention. The installed epoch must not move backwards:
// readers already saw the current one. The incremental-repair state is
// reset (the new network's own table, if repairable, seeds it), and the
// OnApply hook is NOT fired — observers stream deltas, and a wholesale
// swap is not a delta.
func (r *Registry) Install(net *transit.Network, st transit.SnapshotState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	cur := r.cur.Load()
	if st.Epoch < cur.Epoch {
		return fmt.Errorf("live: install would rewind epoch %d to %d", cur.Epoch, st.Epoch)
	}
	created := st.Created
	if created.IsZero() {
		created = time.Now()
	}
	r.cur.Store(&Snapshot{Net: net, Epoch: st.Epoch, Created: created})
	r.lastApplyMicros.Store(created.UnixMicro())
	r.base, r.pending = nil, nil
	r.initBase(net)
	return nil
}

// Close stops accepting updates, stops the persistence loop (after one
// final checkpoint), waits for in-flight background re-preprocessing to
// finish, and closes the journal. Snapshots already handed out stay valid.
func (r *Registry) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		if r.persistStop != nil {
			close(r.persistStop)
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
	// After wg.Wait the final persist checkpoint (which truncates the
	// journal) has run, and closed=true keeps any further Apply away from
	// the journal — safe to close it now. Idempotence: swap it out first.
	if j := r.journal.Swap(nil); j != nil {
		j.Close()
	}
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Metrics is a point-in-time view of the registry counters, exposed by
// tpserver's GET /metrics.
type Metrics struct {
	Epoch            uint64
	Preprocessed     bool
	UpdatesTotal     uint64
	ConnsRetimed     uint64
	ConnsCancelled   uint64
	LastUpdate       time.Duration
	ReprocessedTotal uint64
	ReprocessErrors  uint64
	// Incremental distance-table repair: how many re-preprocessing runs
	// were repairs vs. full rebuilds (RepairsTotal + FullRebuildsTotal =
	// ReprocessedTotal), the total rows the repairs recomputed, and the
	// duration of the last run of either kind.
	RepairsTotal      uint64
	RowsRepairedTotal uint64
	FullRebuildsTotal uint64
	LastReprocess     time.Duration
	// RepairDuration is the cumulative wall-clock time spent in all repairs
	// and rebuilds — divided by ReprocessedTotal it is the mean repair cost,
	// and its rate is the fraction of real time the delay feed keeps the
	// preprocessor busy.
	RepairDuration time.Duration
	// LastApply is the wall-clock time of the last epoch-advancing delay
	// batch (zero until the first one); now()−LastApply is the delay feed's
	// ingestion lag.
	LastApply     time.Time
	PersistsTotal uint64
	PersistErrors uint64
	// Write-ahead journal counters: batches appended (and fsynced) before
	// their ack, appends that failed (the batch was rejected, not lost),
	// batches replayed from the journal at boot, and the journal's current
	// on-disk size (0 when no journal is attached).
	WalAppends      uint64
	WalAppendErrors uint64
	WalReplayed     uint64
	WalBytes        int64
	// RepairTimeouts counts async repairs abandoned by the watchdog in
	// favour of a full rebuild.
	RepairTimeouts uint64
}

// Metrics reads the counters (wait-free).
func (r *Registry) Metrics() Metrics {
	snap := r.Snapshot()
	return Metrics{
		Epoch:             snap.Epoch,
		Preprocessed:      snap.Preprocessed(),
		UpdatesTotal:      r.updates.Load(),
		ConnsRetimed:      r.connsRetimed.Load(),
		ConnsCancelled:    r.connsCancelled.Load(),
		LastUpdate:        time.Duration(r.lastUpdateMicros.Load()) * time.Microsecond,
		ReprocessedTotal:  r.reprocessed.Load(),
		ReprocessErrors:   r.reprocessErrors.Load(),
		RepairsTotal:      r.repairs.Load(),
		RowsRepairedTotal: r.rowsRepaired.Load(),
		FullRebuildsTotal: r.fullRebuilds.Load(),
		LastReprocess:     time.Duration(r.lastReproMicros.Load()) * time.Microsecond,
		RepairDuration:    time.Duration(r.repairMicros.Load()) * time.Microsecond,
		LastApply:         lastApply(r.lastApplyMicros.Load()),
		PersistsTotal:     r.persists.Load(),
		PersistErrors:     r.persistErrors.Load(),
		WalAppends:        r.walAppends.Load(),
		WalAppendErrors:   r.walAppendErrors.Load(),
		WalReplayed:       r.walReplayed.Load(),
		WalBytes:          r.journalBytes(),
		RepairTimeouts:    r.repairTimeouts.Load(),
	}
}

func (r *Registry) journalBytes() int64 {
	if j := r.journal.Load(); j != nil {
		return j.Size()
	}
	return 0
}

func lastApply(micros int64) time.Time {
	if micros == 0 {
		return time.Time{}
	}
	return time.UnixMicro(micros)
}

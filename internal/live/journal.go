package live

import (
	"fmt"

	"transit/internal/faultfs"
	"transit/internal/wal"
)

// RecoverJournal opens (creating if absent) the write-ahead journal at
// path, replays every journaled batch beyond the registry's current epoch,
// and attaches the journal so subsequent Applys append to it before acking.
// Call once at boot, after NewRegistry/NewRegistryAt and before serving
// traffic; the returned count is the number of batches replayed.
//
// Recovery is at-least-once: a batch that was journaled but whose ack was
// lost in the crash replays too, so the recovered epoch is ≥ the last
// epoch any client saw acked — never behind it. Entries at or below the
// registry's epoch (a checkpoint that outran a journal truncation) are
// skipped; an entry that skips past the next epoch means the persisted
// snapshot and the journal do not belong together, and is an error.
func (r *Registry) RecoverJournal(path string) (int, error) {
	j, entries, err := wal.Open(r.cfg.fs(), path)
	if err != nil {
		return 0, err
	}
	replayed := 0
	for _, e := range entries {
		cur := r.Snapshot()
		if e.Epoch <= cur.Epoch {
			continue
		}
		if e.Epoch != cur.Epoch+1 {
			j.Close()
			return replayed, fmt.Errorf("live: journal %s jumps from epoch %d to %d — snapshot and journal mismatch", path, cur.Epoch, e.Epoch)
		}
		snap, _, aerr := r.Apply(e.Ops)
		if aerr != nil {
			j.Close()
			return replayed, fmt.Errorf("live: replaying journal epoch %d: %w", e.Epoch, aerr)
		}
		if snap.Epoch != e.Epoch {
			// ApplyUpdates is deterministic, so a journaled batch that
			// advanced the epoch once must advance it again from the same
			// state — hitting this means the snapshot is not that state.
			j.Close()
			return replayed, fmt.Errorf("live: journal epoch %d no-opped on replay (snapshot stayed at %d) — snapshot and journal mismatch", e.Epoch, snap.Epoch)
		}
		replayed++
		r.walReplayed.Add(1)
	}
	if replayed > 0 {
		r.logf("live: replayed %d journaled batch(es), resuming at epoch %d", replayed, r.Snapshot().Epoch)
	}
	r.journal.Store(j)
	return replayed, nil
}

// CleanupTemps removes orphaned temporary files a crash mid-PersistFile
// left next to path (written but never renamed into place). Call at boot
// before loading the persist file; fsys nil means the real disk. Returns
// the paths removed.
func CleanupTemps(fsys faultfs.FS, path string) ([]string, error) {
	if fsys == nil {
		fsys = faultfs.Disk
	}
	names, err := fsys.Glob(path + ".tmp*")
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range names {
		if err := fsys.Remove(name); err != nil {
			return removed, err
		}
		removed = append(removed, name)
	}
	return removed, nil
}

package live

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"transit"
	"transit/internal/backoff"
	"transit/internal/faultfs"
)

// NewRegistryAt wraps a network restored from a persisted snapshot
// (transit.LoadSnapshot), resuming at its recorded epoch instead of 0, so a
// restarted server continues the epoch sequence its feed clients observed.
func NewRegistryAt(net *transit.Network, st transit.SnapshotState, cfg Config) *Registry {
	r := &Registry{cfg: cfg}
	created := st.Created
	if created.IsZero() {
		created = time.Now()
	}
	r.cur.Store(&Snapshot{Net: net, Epoch: st.Epoch, Created: created})
	r.initBase(net)
	return r
}

// Persist writes the current snapshot — network, distance table if present,
// epoch, creation time — in the snapshot container format. Loading the
// stream with transit.LoadSnapshot and seeding a registry with NewRegistryAt
// resumes serving at this exact version, delays intact.
//
// Persist reads the snapshot pointer once; an Apply racing it is either
// fully included or fully absent, never half-applied.
func (r *Registry) Persist(w io.Writer) (uint64, error) {
	snap := r.Snapshot()
	err := snap.Net.WriteSnapshotState(w, transit.SnapshotState{Epoch: snap.Epoch, Created: snap.Created})
	return snap.Epoch, err
}

// persistKey packs the identity of a persisted version: the epoch plus
// whether the network carried a distance table at the time (an async
// re-preprocess re-publishes the same epoch with a table, which is worth
// persisting again). Keys are ≥ 1 so the zero value of persistedKey means
// "nothing persisted yet".
func persistKey(s *Snapshot) int64 {
	k := int64(s.Epoch)<<1 + 1
	if s.Preprocessed() {
		k |= 1 << 62
	}
	return k
}

// PersistFile atomically persists the current snapshot to path: write to a
// temporary file in the same directory, fsync, then rename — so the final
// name only ever holds a complete, durable image. It returns the persisted
// epoch and whether a write happened: a version already persisted by a
// previous successful PersistFile is skipped. After a successful write the
// attached journal (if any) is truncated through the persisted epoch — the
// checkpoint now covers those batches.
func (r *Registry) PersistFile(path string) (uint64, bool, error) {
	snap := r.Snapshot()
	key := persistKey(snap)
	if r.persistedKey.Load() == key {
		return snap.Epoch, false, nil
	}
	fsys := r.cfg.fs()
	tmp, err := faultfs.CreateTemp(fsys, filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		r.persistErrors.Add(1)
		return snap.Epoch, false, fmt.Errorf("live: persisting epoch %d: %w", snap.Epoch, err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	err = snap.Net.WriteSnapshotState(tmp, transit.SnapshotState{Epoch: snap.Epoch, Created: snap.Created})
	if err == nil {
		// Make the image durable before it can carry the final name: a
		// rename is metadata-only, and a crash right after it must not
		// expose a half-written file under path.
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp.Name(), path)
	}
	if err != nil {
		r.persistErrors.Add(1)
		return snap.Epoch, false, fmt.Errorf("live: persisting epoch %d: %w", snap.Epoch, err)
	}
	r.persistedKey.Store(key)
	r.persists.Add(1)
	if j := r.journal.Load(); j != nil {
		// Failure to truncate is benign: the journal keeps batches the
		// checkpoint already covers, and the next boot (or checkpoint)
		// skips or drops them.
		if terr := j.TruncateThrough(snap.Epoch); terr != nil {
			r.logf("live: journal truncate after epoch-%d checkpoint failed: %v", snap.Epoch, terr)
		}
	}
	return snap.Epoch, true, nil
}

// StartPersist launches the background persistence loop: every interval the
// current snapshot is written to path (atomically, skipping unchanged
// versions), and Close performs one final persist before returning, so the
// last applied epoch always survives a graceful shutdown. A failed
// checkpoint is retried with capped exponential backoff (1s, 2s, … up to
// min(interval, 1m)) instead of waiting out the full interval — serving
// continues meanwhile, still durable through the journal. At most one loop
// runs per registry; extra calls are no-ops.
func (r *Registry) StartPersist(path string, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	r.mu.Lock()
	if r.closed || r.persistStop != nil {
		r.mu.Unlock()
		return
	}
	r.persistStop = make(chan struct{})
	stop := r.persistStop
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		// Retry schedule after a failed checkpoint: 1s doubling up to a
		// minute, never beyond the regular interval. No jitter — one loop
		// per process, nothing to de-synchronize.
		retry := backoff.New(backoff.Policy{Base: time.Second, Max: min(interval, time.Minute)})
		var pending time.Duration // next retry delay; 0 = on the regular cadence
		for {
			wait := interval
			if pending > 0 && pending < interval {
				wait = pending
			}
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
				if r.persistTick(path) {
					retry.Reset()
					pending = 0
				} else {
					pending = retry.Next()
					r.logf("live: retrying persist in %v", pending)
				}
			case <-stop:
				timer.Stop()
				r.persistTick(path) // final checkpoint: restarts resume at the last epoch
				return
			}
		}
	}()
}

// persistTick runs one checkpoint attempt, reporting success.
func (r *Registry) persistTick(path string) bool {
	epoch, wrote, err := r.PersistFile(path)
	if err != nil {
		r.logf("live: persist failed: %v", err)
		return false
	}
	if wrote {
		r.logf("live: persisted epoch %d to %s", epoch, path)
	}
	return true
}

package live

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"transit"
)

// NewRegistryAt wraps a network restored from a persisted snapshot
// (transit.LoadSnapshot), resuming at its recorded epoch instead of 0, so a
// restarted server continues the epoch sequence its feed clients observed.
func NewRegistryAt(net *transit.Network, st transit.SnapshotState, cfg Config) *Registry {
	r := &Registry{cfg: cfg}
	created := st.Created
	if created.IsZero() {
		created = time.Now()
	}
	r.cur.Store(&Snapshot{Net: net, Epoch: st.Epoch, Created: created})
	r.initBase(net)
	return r
}

// Persist writes the current snapshot — network, distance table if present,
// epoch, creation time — in the snapshot container format. Loading the
// stream with transit.LoadSnapshot and seeding a registry with NewRegistryAt
// resumes serving at this exact version, delays intact.
//
// Persist reads the snapshot pointer once; an Apply racing it is either
// fully included or fully absent, never half-applied.
func (r *Registry) Persist(w io.Writer) (uint64, error) {
	snap := r.Snapshot()
	err := snap.Net.WriteSnapshotState(w, transit.SnapshotState{Epoch: snap.Epoch, Created: snap.Created})
	return snap.Epoch, err
}

// persistKey packs the identity of a persisted version: the epoch plus
// whether the network carried a distance table at the time (an async
// re-preprocess re-publishes the same epoch with a table, which is worth
// persisting again). Keys are ≥ 1 so the zero value of persistedKey means
// "nothing persisted yet".
func persistKey(s *Snapshot) int64 {
	k := int64(s.Epoch)<<1 + 1
	if s.Preprocessed() {
		k |= 1 << 62
	}
	return k
}

// PersistFile atomically persists the current snapshot to path (write to a
// temporary file in the same directory, then rename). It returns the
// persisted epoch and whether a write happened: a version already persisted
// by a previous successful PersistFile is skipped.
func (r *Registry) PersistFile(path string) (uint64, bool, error) {
	snap := r.Snapshot()
	key := persistKey(snap)
	if r.persistedKey.Load() == key {
		return snap.Epoch, false, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		r.persistErrors.Add(1)
		return snap.Epoch, false, fmt.Errorf("live: persisting epoch %d: %w", snap.Epoch, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = snap.Net.WriteSnapshotState(tmp, transit.SnapshotState{Epoch: snap.Epoch, Created: snap.Created})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		r.persistErrors.Add(1)
		return snap.Epoch, false, fmt.Errorf("live: persisting epoch %d: %w", snap.Epoch, err)
	}
	r.persistedKey.Store(key)
	r.persists.Add(1)
	return snap.Epoch, true, nil
}

// StartPersist launches the background persistence loop: every interval the
// current snapshot is written to path (atomically, skipping unchanged
// versions), and Close performs one final persist before returning, so the
// last applied epoch always survives a graceful shutdown. At most one loop
// runs per registry; extra calls are no-ops.
func (r *Registry) StartPersist(path string, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	r.mu.Lock()
	if r.closed || r.persistStop != nil {
		r.mu.Unlock()
		return
	}
	r.persistStop = make(chan struct{})
	stop := r.persistStop
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.persistTick(path)
			case <-stop:
				r.persistTick(path) // final checkpoint: restarts resume at the last epoch
				return
			}
		}
	}()
}

func (r *Registry) persistTick(path string) {
	epoch, wrote, err := r.PersistFile(path)
	if err != nil {
		r.logf("live: persist failed: %v", err)
		return
	}
	if wrote {
		r.logf("live: persisted epoch %d to %s", epoch, path)
	}
}

// Package live is the dynamic-update subsystem: it turns the immutable
// query library into a continuously updatable service, realizing the fully
// dynamic scenario the paper's conclusion singles out — because the profile
// search needs no preprocessing, delay messages can take effect immediately
// (Delling, Katz, Pajor; IPDPS 2010, Section 6).
//
// # Snapshot lifecycle
//
// A Registry owns a chain of immutable snapshots. Each Snapshot wraps one
// query-ready *transit.Network plus an epoch counter; the current snapshot
// sits behind an atomic pointer:
//
//	readers:  Snapshot() ───────────▶ atomic load, never blocks
//	writer:   Apply(ops) ─ mutex ──▶ patch → new Network → atomic store
//
// Apply builds the successor network with Network.ApplyUpdates — the
// incremental copy-on-write patch path through internal/timetable and
// internal/graph — so an update touching k connections re-sorts only the
// affected stations' connection lists and recomputes only the ride edges
// that carry a touched connection. The old snapshot is not modified in any
// way: queries that loaded it before the swap finish on a consistent view,
// and the garbage collector reclaims it once the last such query returns.
//
// # Consistency model
//
//   - Writers are serialized by a mutex; updates are applied in arrival
//     order and each bumps the epoch by one.
//   - Readers are wait-free. A reader sees exactly one snapshot: whatever
//     the atomic pointer held when it called Snapshot(). Requests must load
//     the snapshot once and use that network for the whole request — never
//     call Snapshot() twice within one computation.
//   - There is no read-your-writes guarantee across clients: a query racing
//     an Apply may see the pre- or post-update network, but never a mix.
//
// # Preprocessing invalidation
//
// A distance table stores travel times, which a delay changes, so Apply
// always drops the table from the successor network. What happens next is
// the Config.Policy choice:
//
//   - ServeUnpruned: keep serving without a table (stopping criterion
//     only). Correct, no extra work; queries are slower until the operator
//     re-preprocesses.
//   - ReprocessAsync (default for served deployments): swap the unpruned
//     snapshot in immediately, restore the table in the background, and
//     re-swap a preprocessed network under the same epoch when it is
//     ready. If a newer update lands first, the stale result is discarded
//     (epoch check under the writer mutex).
//   - ReprocessSync: restore the table before the swap. Updates block for
//     the re-preprocessing time but every served snapshot is always pruned.
//
// Restoring the table is incremental whenever possible: the registry
// keeps the last fully built network as the *repair base* and accumulates
// the touched connections of every applied batch against it
// (transit.MergeTouched); re-preprocessing then calls
// transit.Repreprocess, which recomputes only the table rows the
// accumulated updates can affect — typically over a bounded departure
// window via the interval search — and falls back to a full rebuild
// (which resets the base and the pending set) when the dirty fraction
// crosses Options.RepairMaxDirty or no usable base exists. See
// docs/PREPROCESSING.md for the provenance model and the soundness
// argument, and Metrics for the repair/rebuild counters tpserver exports.
//
// The station graph, unlike the table, survives updates: delays never
// change connectivity and cancellations only shrink it, and a conservative
// (superset) station graph keeps the via-station computation correct.
//
// # Persistence
//
// A Registry can checkpoint its current snapshot to disk in the versioned
// container of internal/snapshot (byte layout and compatibility rules in
// docs/SNAPSHOT_FORMAT.md): Persist streams the current network plus its
// epoch, PersistFile writes atomically (temp file + rename, unchanged
// versions skipped), and StartPersist runs a periodic checkpoint loop with
// a final write on Close. A restarted server loads the checkpoint with
// transit.LoadSnapshot and resumes the epoch sequence via NewRegistryAt,
// so applied delays survive process restarts — see tpserver's -snapshot
// and -persist flags for the wiring.
package live

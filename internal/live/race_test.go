package live

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"transit"
)

// TestCloseRacesStartPersist hammers Registry.Close against StartPersist's
// final checkpoint and a concurrent delay feed: whatever the interleaving,
// Close must return with the loop stopped, the journal closed, and the
// persist file holding a loadable snapshot (run under -race).
func TestCloseRacesStartPersist(t *testing.T) {
	for i := 0; i < 8; i++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.snap")
		reg := NewRegistry(persistNetwork(t), Config{Policy: ServeUnpruned})
		if _, err := reg.RecoverJournal(filepath.Join(dir, "state.wal")); err != nil {
			t.Fatal(err)
		}
		reg.StartPersist(path, time.Millisecond)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, _, err := reg.Apply([]transit.DelayOp{{Train: "h08", Delay: 1}}); err != nil {
					return // ErrClosed once Close wins the race
				}
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 100 * time.Microsecond)
			reg.Close()
		}()
		wg.Wait()
		reg.Close() // idempotent

		// The final checkpoint always runs: the file must load cleanly.
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("iter %d: no checkpoint: %v", i, err)
		}
		if _, _, err := transit.LoadSnapshot(f); err != nil {
			t.Fatalf("iter %d: checkpoint corrupt: %v", i, err)
		}
		f.Close()
	}
}

package timetable

import (
	"bytes"
	"strings"
	"testing"

	"transit/internal/timeutil"
)

var day = timeutil.NewPeriod(1440)

// tinyNetwork builds a 4-station line A-B-C-D with two routes:
// route 1: A→B→C (two trains), route 2: B→C→D (one train).
func tinyNetwork(t *testing.T) *Timetable {
	t.Helper()
	b := NewBuilder(day)
	a := b.AddStation("A", 2)
	bb := b.AddStation("B", 3)
	c := b.AddStation("C", 2)
	d := b.AddStation("D", 1)
	b.AddTrainRun("r1-t1", []StationID{a, bb, c}, 480, []timeutil.Ticks{10, 15}, 1)
	b.AddTrainRun("r1-t2", []StationID{a, bb, c}, 540, []timeutil.Ticks{10, 15}, 1)
	b.AddTrainRun("r2-t1", []StationID{bb, c, d}, 500, []timeutil.Ticks{12, 8}, 1)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestBuildTiny(t *testing.T) {
	tt := tinyNetwork(t)
	if tt.NumStations() != 4 || tt.NumTrains() != 3 || tt.NumConnections() != 6 {
		t.Fatalf("sizes wrong: %v", tt.Stats())
	}
	if got := len(tt.Routes()); got != 2 {
		t.Fatalf("routes = %d, want 2", got)
	}
	// Trains 0 and 1 share a route; train 2 has its own.
	if tt.RouteOf(0) != tt.RouteOf(1) || tt.RouteOf(0) == tt.RouteOf(2) {
		t.Fatalf("route partition wrong: %d %d %d", tt.RouteOf(0), tt.RouteOf(1), tt.RouteOf(2))
	}
	r := tt.Routes()[tt.RouteOf(0)]
	if len(r.Stations) != 3 || r.Stations[0] != 0 || r.Stations[1] != 1 || r.Stations[2] != 2 {
		t.Fatalf("route stations wrong: %v", r.Stations)
	}
	if len(r.Trains) != 2 {
		t.Fatalf("route trains wrong: %v", r.Trains)
	}
}

func TestOutgoingOrdered(t *testing.T) {
	tt := tinyNetwork(t)
	// Station B has outgoing: r1-t1 at 491, r2-t1 at 500, r1-t2 at 551.
	out := tt.Outgoing(1)
	if len(out) != 3 {
		t.Fatalf("conn(B) size = %d, want 3", len(out))
	}
	prev := timeutil.Ticks(-1)
	for _, id := range out {
		dep := tt.Connections[id].Dep
		if dep < prev {
			t.Fatalf("conn(B) not sorted by departure: %v", out)
		}
		prev = dep
	}
	if tt.Connections[out[0]].Dep != 491 || tt.Connections[out[1]].Dep != 500 || tt.Connections[out[2]].Dep != 551 {
		t.Fatalf("unexpected departures: %d %d %d",
			tt.Connections[out[0]].Dep, tt.Connections[out[1]].Dep, tt.Connections[out[2]].Dep)
	}
}

func TestIncomingOrdered(t *testing.T) {
	tt := tinyNetwork(t)
	in := tt.Incoming(2) // C receives from both routes
	if len(in) != 3 {
		t.Fatalf("incoming(C) size = %d, want 3", len(in))
	}
	prev := timeutil.Ticks(-1)
	for _, id := range in {
		if a := tt.Connections[id].Arr; a < prev {
			t.Fatalf("incoming(C) not sorted by arrival")
		} else {
			prev = a
		}
	}
}

func TestAddTrainRunOvernight(t *testing.T) {
	b := NewBuilder(day)
	a := b.AddStation("A", 2)
	c := b.AddStation("B", 2)
	d := b.AddStation("C", 2)
	// Departs 23:50, 20 min hop → arrives 00:10 next day; departs 00:11.
	b.AddTrainRun("night", []StationID{a, c, d}, 1430, []timeutil.Ticks{20, 20}, 1)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c0 := tt.Connections[0]
	if c0.Dep != 1430 || c0.Arr != 1450 {
		t.Fatalf("overnight hop 0 wrong: %+v", c0)
	}
	c1 := tt.Connections[1]
	if c1.Dep != 11 || c1.Arr != 31 { // wrapped into next period
		t.Fatalf("overnight hop 1 wrong: %+v", c1)
	}
}

func TestValidationErrors(t *testing.T) {
	st := []Station{{ID: 0, Name: "A", Transfer: 2}, {ID: 1, Name: "B", Transfer: 2}}
	zs := []Train{{ID: 0, Name: "z"}}
	mk := func(c Connection) error {
		c.ID = 0
		_, err := New(day, st, zs, []Connection{c})
		return err
	}
	cases := []struct {
		name string
		conn Connection
	}{
		{"unknown train", Connection{Train: 5, From: 0, To: 1, Dep: 10, Arr: 20}},
		{"unknown from", Connection{Train: 0, From: 9, To: 1, Dep: 10, Arr: 20}},
		{"unknown to", Connection{Train: 0, From: 0, To: 9, Dep: 10, Arr: 20}},
		{"self loop", Connection{Train: 0, From: 0, To: 0, Dep: 10, Arr: 20}},
		{"departure outside period", Connection{Train: 0, From: 0, To: 1, Dep: 1440, Arr: 1500}},
		{"negative departure", Connection{Train: 0, From: 0, To: 1, Dep: -1, Arr: 20}},
		{"arrival before departure", Connection{Train: 0, From: 0, To: 1, Dep: 100, Arr: 50}},
	}
	for _, tc := range cases {
		if err := mk(tc.conn); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	// Negative transfer time.
	badSt := []Station{{ID: 0, Name: "A", Transfer: -1}}
	if _, err := New(day, badSt, nil, nil); err == nil {
		t.Error("negative transfer time accepted")
	}
	// Non-dense station IDs.
	looseSt := []Station{{ID: 3, Name: "A", Transfer: 0}}
	if _, err := New(day, looseSt, nil, nil); err == nil {
		t.Error("non-dense station IDs accepted")
	}
	// Train path discontinuity.
	st3 := []Station{{ID: 0, Name: "A"}, {ID: 1, Name: "B"}, {ID: 2, Name: "C"}}
	disc := []Connection{
		{ID: 0, Train: 0, From: 0, To: 1, Dep: 10, Arr: 20},
		{ID: 1, Train: 0, From: 2, To: 0, Dep: 30, Arr: 40}, // starts at C, not B
	}
	if _, err := New(day, st3, zs, disc); err == nil {
		t.Error("discontinuous train path accepted")
	}
}

func TestDuration(t *testing.T) {
	c := Connection{Dep: 1430, Arr: 1450}
	if c.Duration() != 20 {
		t.Fatalf("Duration = %d, want 20", c.Duration())
	}
}

func TestStatsString(t *testing.T) {
	tt := tinyNetwork(t)
	s := tt.Stats()
	if s.Routes != 2 || s.Connections != 6 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "4 stations") {
		t.Fatalf("Stats.String = %q", s.String())
	}
	if tt.ConnectionsPerStation() != 1.5 {
		t.Fatalf("conns/station = %f", tt.ConnectionsPerStation())
	}
}

func TestEmptyTimetable(t *testing.T) {
	tt, err := New(day, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tt.ConnectionsPerStation() != 0 {
		t.Fatal("empty density must be 0")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tt := tinyNetwork(t)
	var sb strings.Builder
	if err := Write(&sb, tt); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStations() != tt.NumStations() || back.NumTrains() != tt.NumTrains() ||
		back.NumConnections() != tt.NumConnections() || back.Period.Len() != tt.Period.Len() {
		t.Fatalf("round trip sizes differ: %v vs %v", back.Stats(), tt.Stats())
	}
	for i := range tt.Connections {
		if back.Connections[i] != tt.Connections[i] {
			t.Fatalf("connection %d differs: %+v vs %+v", i, back.Connections[i], tt.Connections[i])
		}
	}
	for i := range tt.Stations {
		if back.Stations[i] != tt.Stations[i] {
			t.Fatalf("station %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		"transit-timetable v1\nperiod -5\n",
		"transit-timetable v1\nperiod 1440\nstations x\n",
		"transit-timetable v1\nperiod 1440\nstations 1\nA\t0\t0\t0\ntrains 0\nconnections 1\n0\t0\t0\t10\n",                     // 4 fields
		"transit-timetable v1\nperiod 1440\nstations 2\nA\t0\t0\t0\nB\t0\t0\t0\ntrains 1\nz\nconnections 1\n0\t0\t1\t100\t50\n", // arr<dep
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	b := NewBuilder(day)
	b.AddStation("has\ttab", 0)
	b.AddStation("", 0)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, tt); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Stations[0].Name != "has tab" || back.Stations[1].Name != "-" {
		t.Fatalf("sanitization wrong: %q %q", back.Stations[0].Name, back.Stations[1].Name)
	}
}

func TestAddTrainRunPanicsOnBadLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b := NewBuilder(day)
	a := b.AddStation("A", 0)
	c := b.AddStation("B", 0)
	b.AddTrainRun("bad", []StationID{a, c}, 0, []timeutil.Ticks{1, 2}, 0)
}

func TestBinaryRoundTrip(t *testing.T) {
	tt := tinyNetwork(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumStations() != tt.NumStations() || back.NumTrains() != tt.NumTrains() ||
		back.NumConnections() != tt.NumConnections() || back.Period.Len() != tt.Period.Len() {
		t.Fatalf("sizes differ: %v vs %v", back.Stats(), tt.Stats())
	}
	for i := range tt.Stations {
		if back.Stations[i] != tt.Stations[i] {
			t.Fatalf("station %d differs", i)
		}
	}
	for i := range tt.Connections {
		if back.Connections[i] != tt.Connections[i] {
			t.Fatalf("connection %d differs", i)
		}
	}
}

func TestReadAutoDetectsBothFormats(t *testing.T) {
	tt := tinyNetwork(t)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, tt); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, tt); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"binary": bin.Bytes(), "text": txt.Bytes()} {
		back, err := ReadAuto(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumConnections() != tt.NumConnections() {
			t.Fatalf("%s: wrong size", name)
		}
	}
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadAuto(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	tt := tinyNetwork(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tt); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"bad magic": append([]byte("XXXXXXXX"), good[8:]...),
		"truncated": good[:len(good)-7],
		"short":     good[:3],
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBuilderHelpers(t *testing.T) {
	b := NewBuilder(day)
	a := b.AddStationAt("A", 3, 1.5, 2.5)
	c := b.AddStation("B", 1)
	b.SetTransfer(a, 7)
	b.AddFootpath(a, c, 4)
	if b.NumStations() != 2 {
		t.Fatal("NumStations wrong")
	}
	b.AddTrainRun("t", []StationID{a, c}, 100, []timeutil.Ticks{5}, 0)
	if b.NumConnections() != 1 {
		t.Fatal("NumConnections wrong")
	}
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tt.Stations[a].X != 1.5 || tt.Stations[a].Y != 2.5 {
		t.Fatal("coordinates lost")
	}
	if tt.Stations[a].Transfer != 7 {
		t.Fatal("SetTransfer lost")
	}
	fp := tt.FootpathsFrom(a)
	if len(fp) != 1 || fp[0].To != c || fp[0].Walk != 4 {
		t.Fatalf("footpaths: %+v", fp)
	}
	if len(tt.FootpathsFrom(c)) != 0 {
		t.Fatal("reverse footpath invented")
	}
}

func TestFootpathValidation(t *testing.T) {
	st := []Station{{ID: 0, Name: "A"}, {ID: 1, Name: "B"}}
	cases := []Footpath{
		{From: 0, To: 9, Walk: 5},  // unknown station
		{From: 0, To: 0, Walk: 5},  // self loop
		{From: 0, To: 1, Walk: -1}, // negative walk
	}
	for i, f := range cases {
		if _, err := NewWithFootpaths(day, st, nil, nil, []Footpath{f}); err == nil {
			t.Errorf("case %d: invalid footpath accepted", i)
		}
	}
	// Valid zero-length walk is allowed.
	if _, err := NewWithFootpaths(day, st, nil, nil, []Footpath{{From: 0, To: 1, Walk: 0}}); err != nil {
		t.Errorf("zero walk rejected: %v", err)
	}
}

func TestTextFootpathRoundTripAndErrors(t *testing.T) {
	b := NewBuilder(day)
	a := b.AddStation("A", 1)
	c := b.AddStation("B", 1)
	b.AddTrainRun("t", []StationID{a, c}, 100, []timeutil.Ticks{5}, 0)
	b.AddFootpath(a, c, 3)
	b.AddFootpath(c, a, 3)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, tt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "footpaths 2") {
		t.Fatalf("footpath section missing:\n%s", sb.String())
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Footpaths) != 2 || back.Footpaths[0] != tt.Footpaths[0] {
		t.Fatalf("footpaths lost: %+v", back.Footpaths)
	}
	// Corrupt footpath sections.
	base := sb.String()
	bad := []string{
		strings.Replace(base, "footpaths 2", "footpaths x", 1),
		strings.Replace(base, "footpaths 2", "walkways 2", 1),
		strings.Replace(base, "0\t1\t3", "0\t1", 1),
		strings.Replace(base, "0\t1\t3", "0\tz\t3", 1),
		base[:len(base)-4], // truncated list
	}
	for i, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("corrupt case %d accepted", i)
		}
	}
}

func TestBinaryFootpathRoundTrip(t *testing.T) {
	b := NewBuilder(day)
	a := b.AddStation("A", 1)
	c := b.AddStation("B", 1)
	b.AddTrainRun("t", []StationID{a, c}, 100, []timeutil.Ticks{5}, 0)
	b.AddFootpath(a, c, 3)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Footpaths) != 1 || back.Footpaths[0] != tt.Footpaths[0] {
		t.Fatalf("footpaths lost: %+v", back.Footpaths)
	}
	// Binary with footpath count but truncated entries must fail.
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated footpath section accepted")
	}
}

func TestBinaryLongNameTruncation(t *testing.T) {
	b := NewBuilder(day)
	long := strings.Repeat("x", 70000)
	b.AddStation(long, 1)
	b.AddStation("B", 1)
	b.AddTrainRun("t", []StationID{0, 1}, 100, []timeutil.Ticks{5}, 0)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stations[0].Name) != 65535 {
		t.Fatalf("name not truncated to uint16 range: %d", len(back.Stations[0].Name))
	}
}

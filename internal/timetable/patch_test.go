package timetable

import (
	"testing"

	"transit/internal/timeutil"
)

// sliceShared reports whether two ConnID rows share their backing array.
func sliceShared(a, b []ConnID) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

func TestPatchRetimeResortsAffectedRows(t *testing.T) {
	tt := tinyNetwork(t)
	// Delay train r1-t2 (ID 1, conns 2 and 3: A@540→B@550, B@551→C@566) by
	// enough that its B departure moves before r2-t1's (500).
	c2, c3 := tt.Connections[2], tt.Connections[3]
	delta := timeutil.Ticks(-60)
	nt, err := tt.Patch([]ConnUpdate{
		{ID: 2, Dep: c2.Dep + delta, Arr: c2.Arr + delta},
		{ID: 3, Dep: c3.Dep + delta, Arr: c3.Arr + delta},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Old snapshot untouched.
	if tt.Connections[2].Dep != 540 {
		t.Fatalf("receiver mutated: conn 2 dep %d", tt.Connections[2].Dep)
	}
	if nt.Connections[2].Dep != 480 || nt.Connections[3].Dep != 491 {
		t.Fatalf("patched times wrong: %+v %+v", nt.Connections[2], nt.Connections[3])
	}
	// B's outgoing re-sorted: r1-t2's hop (ID 3, now 491) ties r1-t1's (ID 1,
	// 491) and precedes r2-t1 (ID 4, 500).
	out := nt.Outgoing(1)
	prev := timeutil.Ticks(-1)
	for _, id := range out {
		if d := nt.Connections[id].Dep; d < prev {
			t.Fatalf("conn(B) unsorted after patch: %v", out)
		} else {
			prev = d
		}
	}
	// Station D was not touched: its rows are shared with the old snapshot.
	if !sliceShared(tt.Incoming(3), nt.Incoming(3)) {
		t.Error("untouched incoming row not shared")
	}
	// Stations, trains, routes, train indexes shared.
	if &tt.Stations[0] != &nt.Stations[0] || &tt.routes[0] != &nt.routes[0] {
		t.Error("immutable structure not shared")
	}
	if !sliceShared(tt.TrainConnections(1), nt.TrainConnections(1)) {
		t.Error("train index not shared")
	}
}

func TestPatchCancelFiltersIndexes(t *testing.T) {
	tt := tinyNetwork(t)
	// Cancel train r2-t1 (conns 4 and 5).
	nt, err := tt.Patch([]ConnUpdate{{ID: 4, Cancel: true}, {ID: 5, Cancel: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !nt.Cancelled(4) || !nt.Cancelled(5) {
		t.Fatal("connections not marked cancelled")
	}
	if tt.Cancelled(4) {
		t.Fatal("receiver mutated by cancel")
	}
	// IDs stay dense; the cancelled conns vanish from the indexes.
	if nt.NumConnections() != tt.NumConnections() {
		t.Fatal("cancel must not renumber connections")
	}
	for _, id := range nt.Outgoing(1) {
		if id == 4 {
			t.Fatal("cancelled conn still in outgoing")
		}
	}
	for _, id := range nt.Incoming(3) {
		if id == 5 {
			t.Fatal("cancelled conn still in incoming")
		}
	}
	// A retime of a cancelled connection is ignored.
	nt2, err := nt.Patch([]ConnUpdate{{ID: 4, Dep: 100, Arr: 110}})
	if err != nil {
		t.Fatal(err)
	}
	if !nt2.Cancelled(4) {
		t.Fatal("cancellation must be permanent")
	}
}

func TestPatchValidation(t *testing.T) {
	tt := tinyNetwork(t)
	cases := []ConnUpdate{
		{ID: 99, Dep: 100, Arr: 110},  // unknown connection
		{ID: 0, Dep: 1500, Arr: 1510}, // departure outside Π
		{ID: 0, Dep: 100, Arr: 90},    // arrival before departure
		{ID: -1, Cancel: true},        // negative ID
	}
	for i, u := range cases {
		if _, err := tt.Patch([]ConnUpdate{u}); err == nil {
			t.Errorf("case %d: invalid update %+v accepted", i, u)
		}
	}
	// Empty batch returns the receiver.
	nt, err := tt.Patch(nil)
	if err != nil || nt != tt {
		t.Fatalf("empty patch: got %p want %p (err %v)", nt, tt, err)
	}
}

func TestPatchMatchesRebuild(t *testing.T) {
	tt := tinyNetwork(t)
	// Shift train r1-t1 (conns 0, 1) +25 and cancel r2-t1 (conns 4, 5), then
	// compare the patched indexes with a from-scratch rebuild of the same
	// connection array.
	updates := []ConnUpdate{
		{ID: 0, Dep: tt.Connections[0].Dep + 25, Arr: tt.Connections[0].Arr + 25},
		{ID: 1, Dep: tt.Connections[1].Dep + 25, Arr: tt.Connections[1].Arr + 25},
		{ID: 4, Cancel: true},
		{ID: 5, Cancel: true},
	}
	nt, err := tt.Patch(updates)
	if err != nil {
		t.Fatal(err)
	}
	conns := append([]Connection(nil), nt.Connections...)
	stations := append([]Station(nil), tt.Stations...)
	trains := append([]Train(nil), tt.Trains...)
	ref, err := New(tt.Period, stations, trains, conns)
	if err != nil {
		t.Fatal(err)
	}
	for s := StationID(0); int(s) < tt.NumStations(); s++ {
		if got, want := nt.Outgoing(s), ref.Outgoing(s); !equalIDs(got, want) {
			t.Errorf("station %d outgoing: patch %v, rebuild %v", s, got, want)
		}
		if got, want := nt.Incoming(s), ref.Incoming(s); !equalIDs(got, want) {
			t.Errorf("station %d incoming: patch %v, rebuild %v", s, got, want)
		}
	}
}

func equalIDs(a, b []ConnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTrainIndexes(t *testing.T) {
	tt := tinyNetwork(t)
	if got := tt.TrainConnections(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("TrainConnections(0) = %v", got)
	}
	if got := tt.TrainsByName("r2-t1"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("TrainsByName(r2-t1) = %v", got)
	}
	if got := tt.TrainsByName("nope"); got != nil {
		t.Fatalf("TrainsByName(nope) = %v", got)
	}
}

package timetable

import (
	"fmt"
	"sort"

	"transit/internal/timeutil"
)

// ConnUpdate retimes or cancels one elementary connection. It is the unit
// of the incremental update path that backs the fully dynamic scenario of
// the paper's conclusion: a delay feed is translated into a batch of
// ConnUpdates and applied with Patch instead of rebuilding the timetable.
type ConnUpdate struct {
	ID ConnID
	// Dep, Arr are the new times (ignored when Cancel is set): Dep must be
	// a time point of Π, Arr an absolute arrival no earlier than Dep.
	Dep, Arr timeutil.Ticks
	// Cancel removes the connection from service. The connection keeps its
	// dense ID slot with an infinite arrival; cancellation is permanent for
	// the lifetime of the snapshot lineage (a later retime of a cancelled
	// connection is ignored).
	Cancel bool
}

// Patch returns a new Timetable with the updates applied, leaving the
// receiver untouched (in-flight readers of the old snapshot stay valid).
// Everything the updates do not touch is shared between the two snapshots:
// stations, trains, footpaths, the route partition and the index rows of
// unaffected stations. Only the flat connection array is re-copied and the
// outgoing/incoming rows of stations incident to an updated connection are
// re-filtered and re-sorted, so a batch touching k connections costs
// O(|C| memcpy + k log k + Σ|conn(S)| log |conn(S)| over affected S) —
// no re-validation, route derivation or full index rebuild.
//
// Callers are responsible for keeping each train's schedule internally
// consistent (shift or cancel whole trains); per-update validation only
// checks that departures are time points of Π and arrivals are no earlier
// than departures. An empty batch returns the receiver itself.
func (tt *Timetable) Patch(updates []ConnUpdate) (*Timetable, error) {
	if len(updates) == 0 {
		return tt, nil
	}
	for _, u := range updates {
		if int(u.ID) < 0 || int(u.ID) >= len(tt.Connections) {
			return nil, fmt.Errorf("timetable: patch references unknown connection %d", u.ID)
		}
		if u.Cancel {
			continue
		}
		if !tt.Period.Valid(u.Dep) {
			return nil, fmt.Errorf("timetable: patch moves connection %d to departure %d outside Π=[0,%d)",
				u.ID, u.Dep, tt.Period.Len())
		}
		if u.Arr < u.Dep {
			return nil, fmt.Errorf("timetable: patch gives connection %d arrival %d before departure %d",
				u.ID, u.Arr, u.Dep)
		}
	}
	nt := *tt // shares Stations, Trains, Footpaths, routes, trainRoute, footpathsOut, trainConns, trainsByName
	nt.Connections = append([]Connection(nil), tt.Connections...)
	touched := make(map[StationID]struct{}, 2*len(updates))
	for _, u := range updates {
		c := &nt.Connections[u.ID]
		if c.Arr.IsInf() {
			continue // already cancelled: immutable
		}
		if u.Cancel {
			c.Arr = timeutil.Infinity
		} else {
			c.Dep, c.Arr = u.Dep, u.Arr
		}
		touched[c.From] = struct{}{}
		touched[c.To] = struct{}{}
	}
	// Copy-on-write of the index headers; only touched stations get fresh
	// rows, every other row is shared with the old snapshot.
	nt.outgoing = append([][]ConnID(nil), tt.outgoing...)
	nt.incoming = append([][]ConnID(nil), tt.incoming...)
	for s := range touched {
		nt.outgoing[s] = patchIndexRow(tt.outgoing[s], nt.Connections, false)
		nt.incoming[s] = patchIndexRow(tt.incoming[s], nt.Connections, true)
	}
	return &nt, nil
}

// patchIndexRow rebuilds one station's index row against updated connection
// times: newly cancelled connections are dropped and the survivors re-sorted
// by departure (byArr=false) or arrival (byArr=true), ties on ID.
func patchIndexRow(old []ConnID, conns []Connection, byArr bool) []ConnID {
	row := make([]ConnID, 0, len(old))
	for _, id := range old {
		if conns[id].Arr.IsInf() {
			continue
		}
		row = append(row, id)
	}
	sort.Slice(row, func(i, j int) bool {
		a, b := conns[row[i]], conns[row[j]]
		ka, kb := a.Dep, b.Dep
		if byArr {
			ka, kb = a.Arr, b.Arr
		}
		if ka != kb {
			return ka < kb
		}
		return row[i] < row[j]
	})
	return row
}

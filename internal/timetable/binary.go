package timetable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"transit/internal/timeutil"
)

// Binary timetable format v1 (little endian) — a faster alternative to the
// text format for large networks, and, unchanged, the timetable section
// payload of the snapshot container (docs/SNAPSHOT_FORMAT.md):
//
//	magic    [8]byte "TTBLBIN1"
//	period   int32
//	nStations, nTrains, nConnections int32
//	stations: {nameLen uint16, name []byte, transfer int32, x, y float64}
//	trains:   {nameLen uint16, name []byte}
//	connections: {train, from, to, dep, arr int32}

var binMagic = [8]byte{'T', 'T', 'B', 'L', 'B', 'I', 'N', '1'}

// WriteBinary serializes the timetable in the binary v1 format.
func WriteBinary(w io.Writer, tt *Timetable) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	put := func(v int32) error { return binary.Write(bw, binary.LittleEndian, v) }
	putStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			s = s[:math.MaxUint16]
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := put(int32(tt.Period.Len())); err != nil {
		return err
	}
	for _, n := range []int{len(tt.Stations), len(tt.Trains), len(tt.Connections)} {
		if err := put(int32(n)); err != nil {
			return err
		}
	}
	for _, s := range tt.Stations {
		if err := putStr(s.Name); err != nil {
			return err
		}
		if err := put(int32(s.Transfer)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.X); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.Y); err != nil {
			return err
		}
	}
	for _, z := range tt.Trains {
		if err := putStr(z.Name); err != nil {
			return err
		}
	}
	for _, c := range tt.Connections {
		for _, v := range [5]int32{int32(c.Train), int32(c.From), int32(c.To), int32(c.Dep), int32(c.Arr)} {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	if err := put(int32(len(tt.Footpaths))); err != nil {
		return err
	}
	for _, f := range tt.Footpaths {
		for _, v := range [3]int32{int32(f.From), int32(f.To), int32(f.Walk)} {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses and validates a binary v1 timetable.
func ReadBinary(r io.Reader) (*Timetable, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("timetable: reading magic: %w", err)
	}
	if m != binMagic {
		return nil, fmt.Errorf("timetable: bad binary magic %q", m)
	}
	return readBinaryBody(br)
}

func readBinaryBody(br *bufio.Reader) (*Timetable, error) {
	get := func() (int32, error) {
		var v int32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	getStr := func() (string, error) {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	pi, err := get()
	if err != nil {
		return nil, err
	}
	if pi <= 0 {
		return nil, fmt.Errorf("timetable: non-positive period %d", pi)
	}
	var counts [3]int32
	for i := range counts {
		if counts[i], err = get(); err != nil {
			return nil, err
		}
		if counts[i] < 0 || counts[i] > 1<<28 {
			return nil, fmt.Errorf("timetable: implausible count %d", counts[i])
		}
	}
	stations := make([]Station, counts[0])
	for i := range stations {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		tr, err := get()
		if err != nil {
			return nil, err
		}
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, err
		}
		stations[i] = Station{ID: StationID(i), Name: name, Transfer: timeutil.Ticks(tr), X: x, Y: y}
	}
	trains := make([]Train, counts[1])
	for i := range trains {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		trains[i] = Train{ID: TrainID(i), Name: name}
	}
	conns := make([]Connection, counts[2])
	for i := range conns {
		var v [5]int32
		for j := range v {
			if v[j], err = get(); err != nil {
				return nil, err
			}
		}
		conns[i] = Connection{
			ID:    ConnID(i),
			Train: TrainID(v[0]),
			From:  StationID(v[1]),
			To:    StationID(v[2]),
			Dep:   timeutil.Ticks(v[3]),
			Arr:   timeutil.Ticks(v[4]),
		}
	}
	// Footpath section; absent in files written before footpaths existed.
	var footpaths []Footpath
	if nFoot, err := get(); err == nil {
		if nFoot < 0 || nFoot > 1<<28 {
			return nil, fmt.Errorf("timetable: implausible footpath count %d", nFoot)
		}
		footpaths = make([]Footpath, nFoot)
		for i := range footpaths {
			var v [3]int32
			for j := range v {
				if v[j], err = get(); err != nil {
					return nil, err
				}
			}
			footpaths[i] = Footpath{From: StationID(v[0]), To: StationID(v[1]), Walk: timeutil.Ticks(v[2])}
		}
	}
	return NewWithFootpaths(timeutil.NewPeriod(timeutil.Ticks(pi)), stations, trains, conns, footpaths)
}

// ReadAuto detects the format (binary or text) by its leading magic and
// parses accordingly.
func ReadAuto(r io.Reader) (*Timetable, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("timetable: reading header: %w", err)
	}
	if [8]byte(head) == binMagic {
		if _, err := br.Discard(8); err != nil {
			return nil, err
		}
		return readBinaryBody(br)
	}
	return Read(br)
}

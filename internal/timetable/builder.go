package timetable

import (
	"transit/internal/timeutil"
)

// Builder assembles a Timetable incrementally. It is the construction path
// used by the synthetic generators, the GTFS reader, and tests; Build
// validates and freezes the result.
type Builder struct {
	period    timeutil.Period
	stations  []Station
	trains    []Train
	conns     []Connection
	footpaths []Footpath
}

// NewBuilder returns an empty builder over the given period.
func NewBuilder(period timeutil.Period) *Builder {
	return &Builder{period: period}
}

// AddStation appends a station and returns its ID.
func (b *Builder) AddStation(name string, transfer timeutil.Ticks) StationID {
	id := StationID(len(b.stations))
	b.stations = append(b.stations, Station{ID: id, Name: name, Transfer: transfer})
	return id
}

// AddStationAt appends a station with layout coordinates.
func (b *Builder) AddStationAt(name string, transfer timeutil.Ticks, x, y float64) StationID {
	id := b.AddStation(name, transfer)
	b.stations[id].X, b.stations[id].Y = x, y
	return id
}

// SetTransfer overrides the transfer time of an existing station.
func (b *Builder) SetTransfer(s StationID, transfer timeutil.Ticks) {
	b.stations[s].Transfer = transfer
}

// AddTrain appends a train with no connections yet and returns its ID.
func (b *Builder) AddTrain(name string) TrainID {
	id := TrainID(len(b.trains))
	b.trains = append(b.trains, Train{ID: id, Name: name})
	return id
}

// AddConnection appends an elementary connection for the given train.
func (b *Builder) AddConnection(z TrainID, from, to StationID, dep, arr timeutil.Ticks) ConnID {
	id := ConnID(len(b.conns))
	b.conns = append(b.conns, Connection{ID: id, Train: z, From: from, To: to, Dep: dep, Arr: arr})
	return id
}

// AddTrainRun is a convenience that creates a train passing through the
// given stations, departing the first at dep, with hop travel times run[i]
// between stations[i] and stations[i+1] and a constant dwell time at
// intermediate stops. len(run) must be len(stations)-1. It returns the train
// ID. Departure time points are wrapped into Π, so runs may extend past
// midnight.
func (b *Builder) AddTrainRun(name string, stations []StationID, dep timeutil.Ticks, run []timeutil.Ticks, dwell timeutil.Ticks) TrainID {
	if len(run) != len(stations)-1 {
		panic("timetable: AddTrainRun needs len(run) == len(stations)-1")
	}
	z := b.AddTrain(name)
	t := dep
	for i := 0; i < len(run); i++ {
		depPoint := b.period.Wrap(t)
		arrAbs := depPoint + run[i]
		b.AddConnection(z, stations[i], stations[i+1], depPoint, arrAbs)
		t = arrAbs + dwell
	}
	return z
}

// AddFootpath appends a directed walking link between two stations.
func (b *Builder) AddFootpath(from, to StationID, walk timeutil.Ticks) {
	b.footpaths = append(b.footpaths, Footpath{From: from, To: to, Walk: walk})
}

// NumStations returns the number of stations added so far.
func (b *Builder) NumStations() int { return len(b.stations) }

// NumConnections returns the number of connections added so far.
func (b *Builder) NumConnections() int { return len(b.conns) }

// Build validates and returns the immutable timetable. The builder must not
// be used afterwards.
func (b *Builder) Build() (*Timetable, error) {
	return NewWithFootpaths(b.period, b.stations, b.trains, b.conns, b.footpaths)
}

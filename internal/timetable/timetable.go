// Package timetable implements the periodic timetable (C, S, Z, Π, T) from
// the paper's preliminaries: stations S with minimum transfer times T,
// trains Z, elementary connections C over a periodic set of time points Π.
// It derives the route partition (trains grouped by identical station
// sequences, the basis of the realistic time-dependent model) and the
// per-station outgoing connection sets conn(S) that drive the
// connection-setting algorithm.
package timetable

import (
	"fmt"
	"sort"

	"transit/internal/timeutil"
)

// StationID identifies a station; IDs are dense indices into Timetable.Stations.
type StationID int32

// TrainID identifies a train; IDs are dense indices into Timetable.Trains.
type TrainID int32

// RouteID identifies a route (an equivalence class of trains running through
// the same station sequence); dense indices into Timetable.Routes().
type RouteID int32

// ConnID identifies an elementary connection; dense indices into
// Timetable.Connections.
type ConnID int32

// NoStation is the invalid station sentinel.
const NoStation StationID = -1

// Station is a stop of the network together with its minimum transfer time
// T(S) required to change between trains.
type Station struct {
	ID       StationID
	Name     string
	Transfer timeutil.Ticks
	// X, Y are layout coordinates in arbitrary units; used by generators
	// and for human-readable output, never by the algorithms.
	X, Y float64
}

// Train is a vehicle of the timetable. Its elementary connections are the
// Connection entries carrying its TrainID, in temporal order.
type Train struct {
	ID   TrainID
	Name string
}

// Footpath is a walking link between two distinct stations, usable at any
// time: arriving at From at time t, one reaches To at t + Walk. Footpaths
// are directed; add both directions for a symmetric link.
type Footpath struct {
	From StationID
	To   StationID
	Walk timeutil.Ticks
}

// Connection is an elementary connection c = (Z, S_dep, S_arr, τ_dep, τ_arr):
// train Z goes from From to To, departing at the time point Dep ∈ Π and
// arriving at the absolute time Arr ≥ Dep (which may exceed the period for
// overnight hops).
type Connection struct {
	ID    ConnID
	Train TrainID
	From  StationID
	To    StationID
	Dep   timeutil.Ticks
	Arr   timeutil.Ticks
}

// Duration returns the travel time Δ(τ_dep, τ_arr) of the connection.
func (c Connection) Duration() timeutil.Ticks { return c.Arr - c.Dep }

// Route is an equivalence class of trains that run through the same sequence
// of stations.
type Route struct {
	ID       RouteID
	Stations []StationID // the common station sequence
	Trains   []TrainID   // trains of this route
}

// Timetable is a validated periodic timetable with derived route partition
// and outgoing-connection indexes. Construct with New; the struct is
// immutable afterwards and safe for concurrent readers.
type Timetable struct {
	Period      timeutil.Period
	Stations    []Station
	Trains      []Train
	Connections []Connection
	Footpaths   []Footpath

	routes       []Route
	trainRoute   []RouteID
	outgoing     [][]ConnID // conn(S) per station, non-decreasing by Dep
	incoming     [][]ConnID // reverse: connections arriving at S
	footpathsOut [][]Footpath
	trainConns   [][]ConnID           // per train: its connections in ID (temporal) order
	trainsByName map[string][]TrainID // exact-name train lookup for dynamic updates
}

// New validates the raw timetable data, derives routes and connection
// indexes, and returns the immutable Timetable. The input slices are
// retained (not copied); callers must not modify them afterwards.
//
// Validation enforces: dense IDs matching slice positions, non-negative
// transfer times, departures within Π, arrivals no earlier than departures,
// per-train temporal consistency (a train departs a station no earlier than
// it arrived there), and per-train path consistency (each hop starts where
// the previous ended).
func New(period timeutil.Period, stations []Station, trains []Train, conns []Connection) (*Timetable, error) {
	return NewWithFootpaths(period, stations, trains, conns, nil)
}

// NewWithFootpaths builds a timetable that additionally carries walking
// links between stations.
func NewWithFootpaths(period timeutil.Period, stations []Station, trains []Train, conns []Connection, footpaths []Footpath) (*Timetable, error) {
	tt := &Timetable{
		Period:      period,
		Stations:    stations,
		Trains:      trains,
		Connections: conns,
		Footpaths:   footpaths,
	}
	if err := tt.validate(); err != nil {
		return nil, err
	}
	tt.deriveRoutes()
	tt.buildConnIndexes()
	return tt, nil
}

func (tt *Timetable) validate() error {
	for i, s := range tt.Stations {
		if int(s.ID) != i {
			return fmt.Errorf("timetable: station %d has ID %d, want dense IDs", i, s.ID)
		}
		if s.Transfer < 0 {
			return fmt.Errorf("timetable: station %q has negative transfer time %d", s.Name, s.Transfer)
		}
	}
	for i, z := range tt.Trains {
		if int(z.ID) != i {
			return fmt.Errorf("timetable: train %d has ID %d, want dense IDs", i, z.ID)
		}
	}
	nS, nZ := StationID(len(tt.Stations)), TrainID(len(tt.Trains))
	for i, c := range tt.Connections {
		if int(c.ID) != i {
			return fmt.Errorf("timetable: connection %d has ID %d, want dense IDs", i, c.ID)
		}
		if c.Train < 0 || c.Train >= nZ {
			return fmt.Errorf("timetable: connection %d references unknown train %d", i, c.Train)
		}
		if c.From < 0 || c.From >= nS || c.To < 0 || c.To >= nS {
			return fmt.Errorf("timetable: connection %d references unknown station (%d→%d)", i, c.From, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("timetable: connection %d is a self-loop at station %d", i, c.From)
		}
		if !tt.Period.Valid(c.Dep) {
			return fmt.Errorf("timetable: connection %d departs at %d outside Π=[0,%d)", i, c.Dep, tt.Period.Len())
		}
		if c.Arr < c.Dep {
			return fmt.Errorf("timetable: connection %d arrives at %d before departing at %d", i, c.Arr, c.Dep)
		}
	}
	nS2 := StationID(len(tt.Stations))
	for i, f := range tt.Footpaths {
		if f.From < 0 || f.From >= nS2 || f.To < 0 || f.To >= nS2 {
			return fmt.Errorf("timetable: footpath %d references unknown station (%d→%d)", i, f.From, f.To)
		}
		if f.From == f.To {
			return fmt.Errorf("timetable: footpath %d is a self-loop at station %d", i, f.From)
		}
		if f.Walk < 0 {
			return fmt.Errorf("timetable: footpath %d has negative walking time %d", i, f.Walk)
		}
	}
	// Per-train consistency.
	for z, hops := range tt.trainHops() {
		for h := 1; h < len(hops); h++ {
			prev, cur := tt.Connections[hops[h-1]], tt.Connections[hops[h]]
			if cur.From != prev.To {
				return fmt.Errorf("timetable: train %d jumps from station %d to %d between connections %d and %d",
					z, prev.To, cur.From, prev.ID, cur.ID)
			}
			// The train must not depart before it arrived; absolute times of
			// later hops are the lifted departure time points.
			depAbs := prev.Arr + tt.Period.Delta(prev.Arr, cur.Dep)
			_ = depAbs // lifting always succeeds; nothing further to check here
		}
	}
	return nil
}

// trainHops returns, per train, its connection IDs sorted temporally.
func (tt *Timetable) trainHops() map[TrainID][]ConnID {
	hops := make(map[TrainID][]ConnID, len(tt.Trains))
	for _, c := range tt.Connections {
		hops[c.Train] = append(hops[c.Train], c.ID)
	}
	// Hops are kept in connection-ID order: data sources (builders, GTFS
	// trips) list a train's hops temporally, and departure time points are
	// useless as a sort key for overnight trains whose wrapped departures
	// jump back to small values.
	for z, ids := range hops {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		hops[z] = ids
	}
	return hops
}

// deriveRoutes partitions the trains into routes: two trains are equivalent
// if they run through the same sequence of stations.
func (tt *Timetable) deriveRoutes() {
	hops := tt.trainHops()
	type key string
	seq := func(ids []ConnID) key {
		// Station sequence encoded compactly; 4 bytes per station.
		b := make([]byte, 0, 4*(len(ids)+1))
		put := func(s StationID) {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		if len(ids) > 0 {
			put(tt.Connections[ids[0]].From)
			for _, id := range ids {
				put(tt.Connections[id].To)
			}
		}
		return key(b)
	}
	index := make(map[key]RouteID)
	tt.trainRoute = make([]RouteID, len(tt.Trains))
	// Deterministic route numbering: iterate trains in ID order.
	for z := range tt.Trains {
		ids := hops[TrainID(z)]
		k := seq(ids)
		r, ok := index[k]
		if !ok {
			r = RouteID(len(tt.routes))
			index[k] = r
			stations := make([]StationID, 0, len(ids)+1)
			if len(ids) > 0 {
				stations = append(stations, tt.Connections[ids[0]].From)
				for _, id := range ids {
					stations = append(stations, tt.Connections[id].To)
				}
			}
			tt.routes = append(tt.routes, Route{ID: r, Stations: stations})
		}
		tt.trainRoute[z] = r
		tt.routes[r].Trains = append(tt.routes[r].Trains, TrainID(z))
	}
}

func (tt *Timetable) buildConnIndexes() {
	tt.outgoing = make([][]ConnID, len(tt.Stations))
	tt.incoming = make([][]ConnID, len(tt.Stations))
	tt.trainConns = make([][]ConnID, len(tt.Trains))
	for _, c := range tt.Connections {
		tt.trainConns[c.Train] = append(tt.trainConns[c.Train], c.ID)
		if c.Arr.IsInf() {
			// Cancelled connection (see Patch): keeps its dense ID slot but
			// is excluded from every query index, so searches never board it.
			continue
		}
		tt.outgoing[c.From] = append(tt.outgoing[c.From], c.ID)
		tt.incoming[c.To] = append(tt.incoming[c.To], c.ID)
	}
	tt.trainsByName = make(map[string][]TrainID, len(tt.Trains))
	for _, z := range tt.Trains {
		tt.trainsByName[z.Name] = append(tt.trainsByName[z.Name], z.ID)
	}
	for s := range tt.outgoing {
		ids := tt.outgoing[s]
		sort.Slice(ids, func(i, j int) bool {
			a, b := tt.Connections[ids[i]], tt.Connections[ids[j]]
			if a.Dep != b.Dep {
				return a.Dep < b.Dep
			}
			return a.ID < b.ID
		})
	}
	for s := range tt.incoming {
		ids := tt.incoming[s]
		sort.Slice(ids, func(i, j int) bool {
			a, b := tt.Connections[ids[i]], tt.Connections[ids[j]]
			if a.Arr != b.Arr {
				return a.Arr < b.Arr
			}
			return a.ID < b.ID
		})
	}
	tt.footpathsOut = make([][]Footpath, len(tt.Stations))
	for _, f := range tt.Footpaths {
		tt.footpathsOut[f.From] = append(tt.footpathsOut[f.From], f)
	}
}

// FootpathsFrom returns the walking links departing from s (shared slice).
func (tt *Timetable) FootpathsFrom(s StationID) []Footpath {
	if tt.footpathsOut == nil {
		return nil
	}
	return tt.footpathsOut[s]
}

// Routes returns the route partition.
func (tt *Timetable) Routes() []Route { return tt.routes }

// RouteOf returns the route the train belongs to.
func (tt *Timetable) RouteOf(z TrainID) RouteID { return tt.trainRoute[z] }

// Outgoing returns conn(S): all elementary connections departing from S,
// ordered non-decreasingly by departure time point. The slice is shared and
// must not be modified.
func (tt *Timetable) Outgoing(s StationID) []ConnID { return tt.outgoing[s] }

// Incoming returns the connections arriving at S ordered by arrival time.
func (tt *Timetable) Incoming(s StationID) []ConnID { return tt.incoming[s] }

// TrainConnections returns the connections of train z in temporal (ID)
// order, including cancelled ones. The slice is shared and must not be
// modified.
func (tt *Timetable) TrainConnections(z TrainID) []ConnID { return tt.trainConns[z] }

// TrainsByName returns the trains carrying the exact name (names need not
// be unique). The slice is shared and must not be modified.
func (tt *Timetable) TrainsByName(name string) []TrainID { return tt.trainsByName[name] }

// Cancelled reports whether a connection was cancelled by a dynamic update
// (see Patch). Cancelled connections keep their dense ID slot and carry an
// infinite arrival, but are excluded from the outgoing/incoming indexes.
func (tt *Timetable) Cancelled(id ConnID) bool { return tt.Connections[id].Arr.IsInf() }

// NumStations, NumTrains, NumConnections report the timetable sizes.
func (tt *Timetable) NumStations() int    { return len(tt.Stations) }
func (tt *Timetable) NumTrains() int      { return len(tt.Trains) }
func (tt *Timetable) NumConnections() int { return len(tt.Connections) }

// ConnectionsPerStation returns the density measure the paper uses to
// distinguish local bus networks from railway networks.
func (tt *Timetable) ConnectionsPerStation() float64 {
	if len(tt.Stations) == 0 {
		return 0
	}
	return float64(len(tt.Connections)) / float64(len(tt.Stations))
}

// Stats summarizes the timetable for logging and the benchmark harness.
type Stats struct {
	Stations        int
	Trains          int
	Routes          int
	Connections     int
	ConnsPerStation float64
}

// Stats returns summary statistics.
func (tt *Timetable) Stats() Stats {
	return Stats{
		Stations:        tt.NumStations(),
		Trains:          tt.NumTrains(),
		Routes:          len(tt.routes),
		Connections:     tt.NumConnections(),
		ConnsPerStation: tt.ConnectionsPerStation(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d stations, %d trains, %d routes, %d connections (%.1f conns/station)",
		s.Stations, s.Trains, s.Routes, s.Connections, s.ConnsPerStation)
}

package timetable

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"transit/internal/timeutil"
)

// The on-disk format is a line-oriented TSV dump, self-describing enough for
// external tooling and diffable in code review:
//
//	transit-timetable v1
//	period <π>
//	stations <n>
//	<name>\t<transfer>\t<x>\t<y>        (n lines, ID = line index)
//	trains <n>
//	<name>                               (n lines)
//	connections <n>
//	<train>\t<from>\t<to>\t<dep>\t<arr>  (n lines)

const formatHeader = "transit-timetable v1"

// Write serializes the timetable to w in the v1 text format.
func Write(w io.Writer, tt *Timetable) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "period %d\n", tt.Period.Len())
	fmt.Fprintf(bw, "stations %d\n", len(tt.Stations))
	for _, s := range tt.Stations {
		fmt.Fprintf(bw, "%s\t%d\t%g\t%g\n", sanitizeName(s.Name), s.Transfer, s.X, s.Y)
	}
	fmt.Fprintf(bw, "trains %d\n", len(tt.Trains))
	for _, z := range tt.Trains {
		fmt.Fprintf(bw, "%s\n", sanitizeName(z.Name))
	}
	fmt.Fprintf(bw, "connections %d\n", len(tt.Connections))
	for _, c := range tt.Connections {
		fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\n", c.Train, c.From, c.To, c.Dep, c.Arr)
	}
	if len(tt.Footpaths) > 0 {
		fmt.Fprintf(bw, "footpaths %d\n", len(tt.Footpaths))
		for _, f := range tt.Footpaths {
			fmt.Fprintf(bw, "%d\t%d\t%d\n", f.From, f.To, f.Walk)
		}
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if strings.ContainsAny(s, "\t\n") {
		s = strings.NewReplacer("\t", " ", "\n", " ").Replace(s)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Read parses a timetable in the v1 text format and validates it.
func Read(r io.Reader) (*Timetable, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("timetable: unexpected end of input after line %d", line)
		}
		line++
		return sc.Text(), nil
	}
	hdr, err := next()
	if err != nil {
		return nil, err
	}
	if hdr != formatHeader {
		return nil, fmt.Errorf("timetable: bad header %q", hdr)
	}
	readCount := func(keyword string) (int, error) {
		l, err := next()
		if err != nil {
			return 0, err
		}
		fields := strings.Fields(l)
		if len(fields) != 2 || fields[0] != keyword {
			return 0, fmt.Errorf("timetable: line %d: want %q count, got %q", line, keyword, l)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("timetable: line %d: bad count %q", line, fields[1])
		}
		return n, nil
	}
	pi, err := readCount("period")
	if err != nil {
		return nil, err
	}
	if pi <= 0 {
		return nil, fmt.Errorf("timetable: non-positive period %d", pi)
	}
	period := timeutil.NewPeriod(timeutil.Ticks(pi))

	nStations, err := readCount("stations")
	if err != nil {
		return nil, err
	}
	stations := make([]Station, nStations)
	for i := 0; i < nStations; i++ {
		l, err := next()
		if err != nil {
			return nil, err
		}
		parts := strings.Split(l, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("timetable: line %d: want 4 station fields, got %d", line, len(parts))
		}
		tr, err1 := strconv.Atoi(parts[1])
		x, err2 := strconv.ParseFloat(parts[2], 64)
		y, err3 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("timetable: line %d: bad station fields", line)
		}
		stations[i] = Station{ID: StationID(i), Name: parts[0], Transfer: timeutil.Ticks(tr), X: x, Y: y}
	}

	nTrains, err := readCount("trains")
	if err != nil {
		return nil, err
	}
	trains := make([]Train, nTrains)
	for i := 0; i < nTrains; i++ {
		l, err := next()
		if err != nil {
			return nil, err
		}
		trains[i] = Train{ID: TrainID(i), Name: l}
	}

	nConns, err := readCount("connections")
	if err != nil {
		return nil, err
	}
	conns := make([]Connection, nConns)
	for i := 0; i < nConns; i++ {
		l, err := next()
		if err != nil {
			return nil, err
		}
		parts := strings.Split(l, "\t")
		if len(parts) != 5 {
			return nil, fmt.Errorf("timetable: line %d: want 5 connection fields, got %d", line, len(parts))
		}
		var v [5]int
		for j, p := range parts {
			v[j], err = strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("timetable: line %d: bad connection field %q", line, p)
			}
		}
		conns[i] = Connection{
			ID:    ConnID(i),
			Train: TrainID(v[0]),
			From:  StationID(v[1]),
			To:    StationID(v[2]),
			Dep:   timeutil.Ticks(v[3]),
			Arr:   timeutil.Ticks(v[4]),
		}
	}
	// Optional footpaths section (older files end here).
	var footpaths []Footpath
	if sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 || fields[0] != "footpaths" {
			return nil, fmt.Errorf("timetable: line %d: want footpaths count, got %q", line, sc.Text())
		}
		nFoot, err := strconv.Atoi(fields[1])
		if err != nil || nFoot < 0 {
			return nil, fmt.Errorf("timetable: line %d: bad footpath count", line)
		}
		footpaths = make([]Footpath, nFoot)
		for i := 0; i < nFoot; i++ {
			l, err := next()
			if err != nil {
				return nil, err
			}
			parts := strings.Split(l, "\t")
			if len(parts) != 3 {
				return nil, fmt.Errorf("timetable: line %d: want 3 footpath fields", line)
			}
			var v [3]int
			for j, p := range parts {
				v[j], err = strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("timetable: line %d: bad footpath field %q", line, p)
				}
			}
			footpaths[i] = Footpath{From: StationID(v[0]), To: StationID(v[1]), Walk: timeutil.Ticks(v[2])}
		}
	}
	return NewWithFootpaths(period, stations, trains, conns, footpaths)
}

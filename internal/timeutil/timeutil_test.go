package timeutil

import (
	"testing"
	"testing/quick"
)

func TestNewPeriodPanics(t *testing.T) {
	for _, pi := range []Ticks{0, -1, -1440} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPeriod(%d) did not panic", pi)
				}
			}()
			NewPeriod(pi)
		}()
	}
}

func TestWrap(t *testing.T) {
	p := NewPeriod(1440)
	tests := []struct{ in, want Ticks }{
		{0, 0},
		{1439, 1439},
		{1440, 0},
		{1441, 1},
		{2880, 0},
		{3000, 120},
		{-1, 1439},
		{-1440, 0},
	}
	for _, tc := range tests {
		if got := p.Wrap(tc.in); got != tc.want {
			t.Errorf("Wrap(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDelta(t *testing.T) {
	p := NewPeriod(1440)
	tests := []struct{ t1, t2, want Ticks }{
		{0, 0, 0},
		{100, 200, 100},
		{200, 100, 1340},
		{1439, 0, 1},
		{0, 1439, 1439},
		{720, 720, 0},
		// wrapped inputs: absolute arrival times
		{1500, 100, 40}, // 1500 wraps to 60
		{100, 1500, 1400},
	}
	for _, tc := range tests {
		if got := p.Delta(tc.t1, tc.t2); got != tc.want {
			t.Errorf("Delta(%d,%d) = %d, want %d", tc.t1, tc.t2, got, tc.want)
		}
	}
}

func TestDeltaAsymmetry(t *testing.T) {
	p := NewPeriod(1440)
	if p.Delta(100, 200) == p.Delta(200, 100) {
		t.Fatal("Delta must not be symmetric for distinct time points")
	}
}

// Property: Δ(τ1,τ2) + Δ(τ2,τ1) == π for τ1 ≠ τ2 (mod π), and both are in [0, π).
func TestDeltaProperties(t *testing.T) {
	p := NewPeriod(1440)
	f := func(a, b uint16) bool {
		t1 := Ticks(a) % 1440
		t2 := Ticks(b) % 1440
		d12 := p.Delta(t1, t2)
		d21 := p.Delta(t2, t1)
		if d12 < 0 || d12 >= 1440 || d21 < 0 || d21 >= 1440 {
			return false
		}
		if t1 == t2 {
			return d12 == 0 && d21 == 0
		}
		return d12+d21 == 1440
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Δ is the unique value in [0, π) with (τ1 + Δ) ≡ τ2 (mod π).
func TestDeltaCongruence(t *testing.T) {
	p := NewPeriod(97) // prime period to shake out divisibility bugs
	f := func(a, b uint16) bool {
		t1 := Ticks(a % 97)
		t2 := Ticks(b % 97)
		d := p.Delta(t1, t2)
		return d >= 0 && d < 97 && p.Wrap(t1+d) == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextOccurrence(t *testing.T) {
	p := NewPeriod(1440)
	tests := []struct{ tau, at, want Ticks }{
		{480, 0, 480},     // 08:00 seen from midnight
		{480, 480, 480},   // exactly at departure
		{480, 481, 1920},  // just missed: tomorrow 08:00
		{480, 1500, 1920}, // next day, before 08:00 point (1500 ≡ 60)
		{0, 1, 1440},      // midnight departure seen from 00:01
		{100, 2980, 2980}, // 2980 ≡ 100: depart immediately
	}
	for _, tc := range tests {
		if got := p.NextOccurrence(tc.tau, tc.at); got != tc.want {
			t.Errorf("NextOccurrence(%d,%d) = %d, want %d", tc.tau, tc.at, got, tc.want)
		}
	}
}

// Property: NextOccurrence(τ, at) ≥ at, < at+π, and wraps to τ.
func TestNextOccurrenceProperties(t *testing.T) {
	p := NewPeriod(1440)
	f := func(a uint16, b uint32) bool {
		tau := Ticks(a) % 1440
		at := Ticks(b % 100000)
		n := p.NextOccurrence(tau, at)
		return n >= at && n < at+1440 && p.Wrap(n) == tau
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatClock(t *testing.T) {
	p := NewPeriod(1440)
	tests := []struct {
		in   Ticks
		want string
	}{
		{0, "00:00"},
		{495, "08:15"},
		{1439, "23:59"},
		{1440, "1:00:00"},
		{1530, "1:01:30"},
		{Infinity, "inf"},
	}
	for _, tc := range tests {
		if got := p.FormatClock(tc.in); got != tc.want {
			t.Errorf("FormatClock(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
	q := NewPeriod(100)
	if got := q.FormatClock(55); got != "55" {
		t.Errorf("non-day period FormatClock = %q, want \"55\"", got)
	}
}

func TestParseClock(t *testing.T) {
	good := []struct {
		in   string
		want Ticks
	}{
		{"00:00", 0},
		{"08:15", 495},
		{"23:59", 1439},
		{"25:10", 1510}, // GTFS-style past-midnight
		{"1:01:30", 1530},
		{" 08:15 ", 495},
	}
	for _, tc := range good {
		got, err := ParseClock(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClock(%q) = %d,%v want %d", tc.in, got, err, tc.want)
		}
	}
	bad := []string{"", "8", "8:", ":15", "08:60", "-1:00", "a:b", "1:24:00", "1:00:60", "1:2:3:4"}
	for _, s := range bad {
		if _, err := ParseClock(s); err == nil {
			t.Errorf("ParseClock(%q) succeeded, want error", s)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	p := NewPeriod(1440)
	f := func(x uint16) bool {
		t0 := Ticks(x % 4320) // up to 3 days
		s := p.FormatClock(t0)
		back, err := ParseClock(s)
		return err == nil && back == t0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Min/Max broken")
	}
	if !Infinity.IsInf() || Ticks(5).IsInf() {
		t.Fatal("IsInf broken")
	}
}

// Package timeutil implements the periodic time arithmetic used by periodic
// timetables: a finite set of discrete time points Π = {0, …, π−1} together
// with the asymmetric length function Δ. Durations and arrival times may
// exceed the period π (a train arriving after midnight), so all values are
// carried as plain integer Ticks; only departure time points are confined
// to Π.
package timeutil

import (
	"fmt"
	"strconv"
	"strings"
)

// Ticks is a point in time or a duration, measured in timetable ticks
// (minutes by default, but the unit is opaque to the algorithms).
// Time points of a periodic timetable lie in [0, π); durations and absolute
// arrival times are unrestricted non-negative values.
type Ticks int32

// Infinity is the sentinel for "unreachable". It is large enough that adding
// any realistic duration to it does not overflow int32.
const Infinity Ticks = 1 << 30

// IsInf reports whether t is the unreachable sentinel (or beyond).
func (t Ticks) IsInf() bool { return t >= Infinity }

// Period represents the periodicity π of a timetable and provides the
// periodic arithmetic from the paper's preliminaries.
type Period struct {
	pi Ticks
}

// NewPeriod returns a Period of length pi ticks. It panics if pi <= 0:
// a periodic timetable with a non-positive period is meaningless and always
// indicates a programming error, not bad input data.
func NewPeriod(pi Ticks) Period {
	if pi <= 0 {
		panic(fmt.Sprintf("timeutil: non-positive period %d", pi))
	}
	return Period{pi: pi}
}

// DayMinutes is the conventional period of one day in minute ticks.
const DayMinutes Ticks = 1440

// Len returns π.
func (p Period) Len() Ticks { return p.pi }

// Valid reports whether τ is a valid time point of Π = {0, …, π−1}.
func (p Period) Valid(tau Ticks) bool { return tau >= 0 && tau < p.pi }

// Wrap reduces an arbitrary non-negative tick value to its time point in Π.
func (p Period) Wrap(t Ticks) Ticks {
	if t >= 0 && t < p.pi {
		return t
	}
	w := t % p.pi
	if w < 0 {
		w += p.pi
	}
	return w
}

// Delta is the length Δ(τ1, τ2) between two time points: τ2−τ1 if τ2 ≥ τ1
// and π+τ2−τ1 otherwise. Δ is not symmetric. Arguments outside Π are wrapped
// first, so Delta can be called with absolute arrival times.
func (p Period) Delta(tau1, tau2 Ticks) Ticks {
	tau1 = p.Wrap(tau1)
	tau2 = p.Wrap(tau2)
	if tau2 >= tau1 {
		return tau2 - tau1
	}
	return p.pi + tau2 - tau1
}

// NextOccurrence returns the smallest absolute time t ≥ at whose time point
// equals tau. It is how a periodic departure time point is lifted to an
// absolute departure time no earlier than "at".
func (p Period) NextOccurrence(tau, at Ticks) Ticks {
	return at + p.Delta(at, tau)
}

// FormatClock renders a tick value as D:HH:MM for minute-based periods of
// 1440, e.g. 495 → "08:15" and 1530 → "1:01:30" (day 1, 01:30). For other
// periods it falls back to the plain integer.
func (p Period) FormatClock(t Ticks) string {
	if p.pi != DayMinutes || t < 0 {
		return strconv.Itoa(int(t))
	}
	if t.IsInf() {
		return "inf"
	}
	day := t / DayMinutes
	rem := t % DayMinutes
	h, m := rem/60, rem%60
	if day > 0 {
		return fmt.Sprintf("%d:%02d:%02d", day, h, m)
	}
	return fmt.Sprintf("%02d:%02d", h, m)
}

// ParseClock parses "HH:MM" or "D:HH:MM" into ticks for minute-based
// periods. Hours up to 47 are accepted in the two-field form to support the
// GTFS convention of times past midnight ("25:10").
func ParseClock(s string) (Ticks, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	switch len(parts) {
	case 2:
		h, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || h < 0 || m < 0 || m > 59 {
			return 0, fmt.Errorf("timeutil: invalid clock value %q", s)
		}
		return Ticks(h*60 + m), nil
	case 3:
		d, err1 := strconv.Atoi(parts[0])
		h, err2 := strconv.Atoi(parts[1])
		m, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || d < 0 || h < 0 || h > 23 || m < 0 || m > 59 {
			return 0, fmt.Errorf("timeutil: invalid clock value %q", s)
		}
		return Ticks(d*1440 + h*60 + m), nil
	default:
		return 0, fmt.Errorf("timeutil: invalid clock value %q", s)
	}
}

// Min returns the smaller of two tick values.
func Min(a, b Ticks) Ticks {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two tick values.
func Max(a, b Ticks) Ticks {
	if a > b {
		return a
	}
	return b
}

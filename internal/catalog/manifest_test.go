package catalog

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"oahu":                            true,
		"los-angeles":                     true,
		"rail_2024":                       true,
		"0sector":                         true,
		"a":                               true,
		"":                                false,
		"-lead":                           false, // separators may not lead
		"_lead":                           false,
		"UpperCase":                       false,
		"dot.dot":                         false,
		"sla/sh":                          false,
		"spa ce":                          false,
		"ünïcode":                         false,
		strings.Repeat("x", maxNameLen):   true,
		strings.Repeat("x", maxNameLen+1): false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseManifest(t *testing.T) {
	valid := []struct {
		name, in    string
		wantDefault string
	}{
		{"basic", `{"networks":[{"name":"a","snapshot":"a.snap"}]}`, "a"},
		{"explicit default", `{"default":"b","networks":[{"name":"a","snapshot":"a.snap"},{"name":"b","snapshot":"b.snap"}]}`, "b"},
		{"empty default is first entry", `{"networks":[{"name":"x","snapshot":"x.snap"},{"name":"y","snapshot":"y.snap"}]}`, "x"},
		{"subdirectory snapshot", `{"networks":[{"name":"a","snapshot":"snaps/a.snap"}]}`, "a"},
	}
	for _, tc := range valid {
		m, err := ParseManifest([]byte(tc.in))
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if m.Default != tc.wantDefault {
			t.Errorf("%s: default %q, want %q", tc.name, m.Default, tc.wantDefault)
		}
	}

	invalid := []struct{ name, in string }{
		{"not json", `garbage`},
		{"empty input", ``},
		{"wrong top-level type", `[1,2,3]`},
		{"unknown field", `{"nets":[{"name":"a","snapshot":"a.snap"}]}`},
		{"trailing data", `{"networks":[{"name":"a","snapshot":"a.snap"}]} extra`},
		{"second object", `{"networks":[{"name":"a","snapshot":"a.snap"}]}{}`},
		{"no networks", `{}`},
		{"empty networks", `{"networks":[]}`},
		{"empty name", `{"networks":[{"name":"","snapshot":"a.snap"}]}`},
		{"hostile name", `{"networks":[{"name":"../etc","snapshot":"a.snap"}]}`},
		{"uppercase name", `{"networks":[{"name":"Oahu","snapshot":"a.snap"}]}`},
		{"duplicate name", `{"networks":[{"name":"a","snapshot":"a.snap"},{"name":"a","snapshot":"b.snap"}]}`},
		{"missing snapshot", `{"networks":[{"name":"a"}]}`},
		{"absolute snapshot", `{"networks":[{"name":"a","snapshot":"/etc/passwd"}]}`},
		{"traversal snapshot", `{"networks":[{"name":"a","snapshot":"../../other.snap"}]}`},
		{"dot-dot inside", `{"networks":[{"name":"a","snapshot":"x/../../y.snap"}]}`},
		{"default names no entry", `{"default":"z","networks":[{"name":"a","snapshot":"a.snap"}]}`},
	}
	for _, tc := range invalid {
		m, err := ParseManifest([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, m)
			continue
		}
		if !errors.Is(err, ErrManifest) {
			t.Errorf("%s: error %v does not wrap ErrManifest", tc.name, err)
		}
	}
}

func TestWriteReadManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Default: "b",
		Networks: []Entry{
			{Name: "a", Snapshot: "a.snap"},
			{Name: "b", Snapshot: "b.snap"},
		},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Default != "b" || len(got.Networks) != 2 || got.Networks[0] != m.Networks[0] || got.Networks[1] != m.Networks[1] {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}

	// WriteManifest re-validates: a builder bug fails before touching disk.
	bad := &Manifest{Networks: []Entry{{Name: "../up", Snapshot: "x.snap"}}}
	if err := WriteManifest(t.TempDir(), bad); !errors.Is(err, ErrManifest) {
		t.Fatalf("invalid manifest written: err %v", err)
	}

	if _, err := ReadManifest(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("ReadManifest on a missing directory succeeded")
	}
}

// FuzzManifest asserts the parser's contract on arbitrary input: it never
// panics, every rejection wraps ErrManifest, and every accepted manifest
// satisfies the invariants the catalog relies on (valid unique names, local
// snapshot paths, a default naming an entry).
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"networks":[{"name":"a","snapshot":"a.snap"}]}`))
	f.Add([]byte(`{"default":"b","networks":[{"name":"a","snapshot":"a.snap"},{"name":"b","snapshot":"b.snap"}]}`))
	f.Add([]byte(`{"networks":[{"name":"../evil","snapshot":"/etc/passwd"}]}`))
	f.Add([]byte(`{"networks":[{"name":"a","snapshot":"../../out.snap"}]}`))
	f.Add([]byte(`{"networks":[]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrManifest) {
				t.Fatalf("rejection %v does not wrap ErrManifest", err)
			}
			return
		}
		if len(m.Networks) == 0 {
			t.Fatal("accepted manifest with no networks")
		}
		seen := make(map[string]bool)
		for _, e := range m.Networks {
			if !ValidName(e.Name) {
				t.Fatalf("accepted invalid name %q", e.Name)
			}
			if seen[e.Name] {
				t.Fatalf("accepted duplicate name %q", e.Name)
			}
			seen[e.Name] = true
			if e.Snapshot == "" || !filepath.IsLocal(e.Snapshot) {
				t.Fatalf("accepted non-local snapshot path %q", e.Snapshot)
			}
		}
		if !seen[m.Default] {
			t.Fatalf("default %q names no entry", m.Default)
		}
	})
}

package catalog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"transit"
	"transit/internal/live"
)

// buildNet is a deterministic two-station network: trains leave A hourly
// from startHour and reach B 30 minutes later. Different startHour values
// give tenants distinguishable answers.
func buildNet(t testing.TB, startHour int) *transit.Network {
	t.Helper()
	tb := transit.NewTimetableBuilder(0)
	a := tb.AddStation("A", 2)
	b := tb.AddStation("B", 2)
	for h := startHour; h <= 22; h++ {
		if err := tb.AddTrain(fmt.Sprintf("h%02d", h), []transit.StationID{a, b},
			transit.Ticks(h*60), []transit.Ticks{30}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func writeSnap(t testing.TB, path string, n *transit.Network) int64 {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// catalogDir builds a two-tenant catalog directory ("a", "b") and returns
// it with a memory budget that admits exactly one of the two tenants.
func catalogDir(t testing.TB) (dir string, oneTenantBudget int64) {
	t.Helper()
	dir = t.TempDir()
	sa := writeSnap(t, filepath.Join(dir, "a.snap"), buildNet(t, 6))
	sb := writeSnap(t, filepath.Join(dir, "b.snap"), buildNet(t, 7))
	if err := WriteManifest(dir, &Manifest{Networks: []Entry{
		{Name: "a", Snapshot: "a.snap"},
		{Name: "b", Snapshot: "b.snap"},
	}}); err != nil {
		t.Fatal(err)
	}
	big, small := sa, sb
	if sb > sa {
		big, small = sb, sa
	}
	// Headroom of half the smaller snapshot: one resident tenant always
	// fits (persist files drift a few bytes from the base snapshot), two
	// never do.
	return dir, big + small/2
}

func mustAcquire(t *testing.T, c *Catalog, name string) *Handle {
	t.Helper()
	h, err := c.Acquire(context.Background(), name)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", name, err)
	}
	return h
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), Config{}); err == nil {
		t.Error("Open without a manifest succeeded")
	}

	dir := t.TempDir()
	if err := WriteManifest(dir, &Manifest{Networks: []Entry{{Name: "a", Snapshot: "a.snap"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Config{}); err == nil {
		t.Error("Open with a missing snapshot file succeeded")
	}

	writeSnap(t, filepath.Join(dir, "a.snap"), buildNet(t, 6))
	if _, err := Open(dir, Config{Default: "nope"}); err == nil {
		t.Error("Open with an unknown default override succeeded")
	}
	c, err := Open(dir, Config{Default: "a"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	if c.DefaultName() != "a" {
		t.Errorf("default %q, want a", c.DefaultName())
	}
}

func TestAcquireUnknownNetwork(t *testing.T) {
	dir, _ := catalogDir(t)
	c, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Acquire(context.Background(), "nope")
	var te *transit.Error
	if !errors.As(err, &te) || te.Code != transit.CodeUnknownNetwork {
		t.Fatalf("Acquire(nope) err = %v, want CodeUnknownNetwork", err)
	}
}

func TestLazyLoadPinEvict(t *testing.T) {
	dir, budget := catalogDir(t)
	c, err := Open(dir, Config{MemBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if m := c.Metrics(); m.Networks != 2 || m.Resident != 0 || m.Loads != 0 {
		t.Fatalf("fresh catalog metrics %+v", m)
	}

	// First Acquire materializes; the second shares the residency.
	h1 := mustAcquire(t, c, "a")
	h2 := mustAcquire(t, c, "a")
	if h1.Registry() != h2.Registry() {
		t.Fatal("two pins of the same tenant got different registries")
	}
	if h1.Name() != "a" {
		t.Fatalf("handle name %q", h1.Name())
	}
	if m, _ := c.NetworkMetrics("a"); !m.Resident || m.Pinned != 2 || m.Loads != 1 {
		t.Fatalf("pinned tenant metrics %+v", m)
	}
	h1.Release()
	h2.Release()
	if m := c.Metrics(); m.Loads != 1 || m.Evictions != 0 {
		t.Fatalf("after release: %+v", m)
	}

	// Loading the second tenant exceeds the budget and evicts the idle first.
	hb := mustAcquire(t, c, "b")
	hb.Release()
	if c.Resident("a") != nil {
		t.Fatal("tenant a still resident after b displaced it")
	}
	if c.Resident("b") == nil {
		t.Fatal("tenant b not resident")
	}
	if m := c.Metrics(); m.Evictions != 1 || m.Resident != 1 {
		t.Fatalf("after displacement: %+v", m)
	}

	// The evicted tenant reloads transparently.
	ha := mustAcquire(t, c, "a")
	defer ha.Release()
	if m, _ := c.NetworkMetrics("a"); m.Loads != 2 || m.Evictions != 1 {
		t.Fatalf("reloaded tenant metrics %+v", m)
	}
}

func TestPinnedTenantNotEvicted(t *testing.T) {
	dir, budget := catalogDir(t)
	c, err := Open(dir, Config{MemBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ha := mustAcquire(t, c, "a")
	hb := mustAcquire(t, c, "b")
	// Both pinned: the budget is overshot rather than either being evicted.
	if c.Resident("a") == nil || c.Resident("b") == nil {
		t.Fatal("pinned tenant evicted during overshoot")
	}
	if m := c.Metrics(); m.ResidentBytes <= budget {
		t.Fatalf("expected overshoot while pinned, resident %d budget %d", m.ResidentBytes, budget)
	}
	// Releasing b makes it the only evictable tenant; the deferred eviction
	// fires on the release and must take b, not the still-pinned a.
	hb.Release()
	if c.Resident("a") == nil {
		t.Fatal("pinned tenant a was evicted")
	}
	if c.Resident("b") != nil {
		t.Fatal("tenant b survived its release while over budget")
	}
	// a alone fits the budget, so its release evicts nothing.
	ha.Release()
	if c.Resident("a") == nil {
		t.Fatal("tenant a evicted although under budget")
	}
}

func TestEvictionPersistsEpoch(t *testing.T) {
	dir, budget := catalogDir(t)
	c, err := Open(dir, Config{MemBytes: budget, PersistDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ha := mustAcquire(t, c, "a")
	if _, _, err := ha.Registry().Apply([]transit.DelayOp{{Train: "h08", Delay: 10}}); err != nil {
		t.Fatal(err)
	}
	if e := ha.Registry().Snapshot().Epoch; e != 1 {
		t.Fatalf("epoch after delay %d, want 1", e)
	}
	ha.Release()

	// Displace a; the eviction flushes its final checkpoint.
	hb := mustAcquire(t, c, "b")
	hb.Release()
	if c.Resident("a") != nil {
		t.Fatal("tenant a still resident")
	}
	// The frozen metrics keep the cold tenant's epoch visible.
	if m, _ := c.NetworkMetrics("a"); m.Resident || m.Live.Epoch != 1 {
		t.Fatalf("cold tenant metrics %+v", m)
	}

	// Reload resumes at the persisted epoch, not the base snapshot's 0.
	ha = mustAcquire(t, c, "a")
	defer ha.Release()
	if e := ha.Registry().Snapshot().Epoch; e != 1 {
		t.Fatalf("reloaded epoch %d, want 1", e)
	}
}

func TestLoadErrorRecovery(t *testing.T) {
	dir, _ := catalogDir(t)
	if err := os.WriteFile(filepath.Join(dir, "b.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Acquire(context.Background(), "b"); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
	if m := c.Metrics(); m.LoadErrors != 1 {
		t.Fatalf("load errors %d, want 1", m.LoadErrors)
	}
	// A repaired file serves on the next attempt — the failure left no
	// stuck loading state behind.
	writeSnap(t, filepath.Join(dir, "b.snap"), buildNet(t, 7))
	h := mustAcquire(t, c, "b")
	h.Release()
}

func TestCloseCatalog(t *testing.T) {
	dir, _ := catalogDir(t)
	c, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := mustAcquire(t, c, "a")
	c.Close()
	c.Close() // idempotent
	if _, err := c.Acquire(context.Background(), "a"); err == nil {
		t.Fatal("Acquire after Close succeeded")
	}
	// The in-flight handle's release is a no-op, not a crash.
	h.Release()
}

func TestStaticCatalog(t *testing.T) {
	reg := live.NewRegistry(buildNet(t, 6), live.Config{Policy: live.ServeUnpruned})
	defer reg.Close()
	c := NewStatic("default", reg)
	defer c.Close()

	if got := c.Names(); len(got) != 1 || got[0] != "default" {
		t.Fatalf("names %v", got)
	}
	if c.DefaultName() != "default" {
		t.Fatalf("default %q", c.DefaultName())
	}
	h := mustAcquire(t, c, "default")
	if h.Registry() != reg {
		t.Fatal("static tenant serves a different registry")
	}
	h.Release()
	if c.Resident("default") != reg {
		t.Fatal("static tenant evicted")
	}
	if m := c.Metrics(); m.Networks != 1 || m.Resident != 1 || m.Loads != 0 {
		t.Fatalf("static metrics %+v", m)
	}
}

// TestConcurrentAcquireEvictChurn is the isolation race test: a budget that
// admits one tenant, many goroutines querying both — every acquire of one
// tenant evicts and later reloads the other, while queries are in flight on
// pinned handles. Run under -race in CI; the assertions here are that no
// acquire fails, no query observes a closed registry, and per-tenant delay
// state survives the churn.
func TestConcurrentAcquireEvictChurn(t *testing.T) {
	dir, budget := catalogDir(t)
	c, err := Open(dir, Config{MemBytes: budget, PersistDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed tenant a with one delay batch so reloads must carry epoch 1.
	ha := mustAcquire(t, c, "a")
	if _, _, err := ha.Registry().Apply([]transit.DelayOp{{Train: "h09", Delay: 5}}); err != nil {
		t.Fatal(err)
	}
	ha.Release()

	const (
		workers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			names := [2]string{"a", "b"}
			for i := 0; i < rounds; i++ {
				name := names[(w+i)%2]
				h, err := c.Acquire(context.Background(), name)
				if err != nil {
					errc <- fmt.Errorf("worker %d acquire %s: %w", w, name, err)
					return
				}
				snap := h.Registry().Snapshot()
				req := transit.Request{
					Kind:   transit.KindEarliestArrival,
					From:   0,
					To:     1,
					Depart: transit.Ticks(8 * 60),
				}
				if _, err := snap.Net.Plan(context.Background(), req); err != nil {
					errc <- fmt.Errorf("worker %d plan on %s: %w", w, name, err)
					h.Release()
					return
				}
				if name == "a" && snap.Epoch != 1 {
					errc <- fmt.Errorf("worker %d: tenant a at epoch %d, want 1", w, snap.Epoch)
					h.Release()
					return
				}
				if name == "b" && snap.Epoch != 0 {
					errc <- fmt.Errorf("worker %d: tenant b at epoch %d, want 0", w, snap.Epoch)
					h.Release()
					return
				}
				h.Release()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if m := c.Metrics(); m.Evictions == 0 {
		t.Error("churn produced no evictions — budget did not force contention")
	} else {
		t.Logf("churn: %d loads, %d evictions, load time %v", m.Loads, m.Evictions, m.LoadDuration)
	}
}

package catalog

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"transit"
	"transit/internal/faultfs"
	"transit/internal/live"
)

// Per-tenant delay feeds of the crash scenario, each batch with a distinct
// effect so every epoch has a distinguishable fingerprint.
var (
	aFeed = [][]transit.DelayOp{
		{{Train: "h08", Delay: 5}},
		{{Train: "h09", Cancel: true}},
		{{Train: "h10", Delay: 11}},
	}
	bFeed = [][]transit.DelayOp{
		{{Train: "h12", Delay: 9}},
	}
)

// catFingerprint probes hourly arrivals A→B — the behavioural signature of
// the buildNet test networks.
func catFingerprint(t testing.TB, n *transit.Network) [17]transit.Ticks {
	t.Helper()
	var fp [17]transit.Ticks
	for h := 6; h <= 22; h++ {
		arr, err := n.EarliestArrival(0, 1, transit.Ticks(h*60), transit.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fp[h-6] = arr
	}
	return fp
}

// catReference applies the first n batches of feed to a fresh startHour
// network — the ground truth a recovered tenant at epoch n must match.
func catReference(t testing.TB, startHour int, feed [][]transit.DelayOp, n uint64) *transit.Network {
	t.Helper()
	net := buildNet(t, startHour)
	for _, b := range feed[:n] {
		next, _, err := net.ApplyUpdates(b)
		if err != nil {
			t.Fatal(err)
		}
		net = next
	}
	return net
}

// memCatalog builds a two-tenant catalog directory inside a fresh Mem FS
// and returns it with the one-tenant memory budget. Setup I/O happens
// before any fault plan is armed, so it never counts as a crash point.
func memCatalog(t testing.TB) (*faultfs.Mem, int64) {
	t.Helper()
	m := faultfs.NewMem()
	var sizes [2]int64
	for i, tn := range []struct {
		name      string
		startHour int
	}{{"a", 6}, {"b", 7}} {
		var buf bytes.Buffer
		if err := buildNet(t, tn.startHour).WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := faultfs.WriteFile(m, "cat/"+tn.name+".snap", buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		sizes[i] = int64(buf.Len())
	}
	manifest := `{"networks":[{"name":"a","snapshot":"a.snap"},{"name":"b","snapshot":"b.snap"}]}`
	if err := faultfs.WriteFile(m, "cat/catalog.json", []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	big, small := sizes[0], sizes[1]
	if small > big {
		big, small = small, big
	}
	return m, big + small/2
}

func memCatConfig(m *faultfs.Mem, budget int64) Config {
	return Config{
		MemBytes:        budget,
		Live:            live.Config{Policy: live.ServeUnpruned, FS: m},
		PersistDir:      "persist",
		PersistInterval: time.Hour, // checkpoints only at eviction/Close: deterministic I/O
		Journal:         true,
	}
}

// runCatCrashScenario drives the two-tenant lifecycle under test: load a,
// ingest; load b (evicting a: flush + journal truncate); reload a (from
// its persist file); close (final checkpoints). It reports the highest
// epoch acked per tenant. Mid-stream I/O errors are tolerated like the
// real server tolerates them; a failed boot or load acks nothing further.
func runCatCrashScenario(t testing.TB, m *faultfs.Mem, budget int64) (ackedA, ackedB uint64) {
	ctx := context.Background()
	c, err := Open("cat", memCatConfig(m, budget))
	if err != nil {
		return 0, 0
	}
	defer c.Close()
	apply := func(h *Handle, b []transit.DelayOp, acked *uint64) {
		if snap, _, err := h.Registry().Apply(b); err == nil {
			*acked = snap.Epoch
		}
	}
	hA, err := c.Acquire(ctx, "a")
	if err != nil {
		return 0, 0
	}
	apply(hA, aFeed[0], &ackedA)
	apply(hA, aFeed[1], &ackedA)
	hA.Release()

	hB, err := c.Acquire(ctx, "b") // evicts a: final checkpoint + truncate
	if err != nil {
		return ackedA, 0
	}
	apply(hB, bFeed[0], &ackedB)
	hB.Release()

	hA2, err := c.Acquire(ctx, "a") // reload from persist file, evicts b
	if err != nil {
		return ackedA, ackedB
	}
	apply(hA2, aFeed[2], &ackedA)
	hA2.Release()
	return ackedA, ackedB
}

// verifyCatRecovery reboots the Mem, reopens the catalog cleanly and
// checks both tenants: epoch at least the last acked batch, never beyond
// the feed, and answers byte-identical to applying exactly that many
// batches to a fresh network.
func verifyCatRecovery(t *testing.T, step int, m *faultfs.Mem, budget int64, ackedA, ackedB uint64) {
	t.Helper()
	m.Reboot()
	c, err := Open("cat", memCatConfig(m, budget))
	if err != nil {
		t.Fatalf("step %d: clean reopen failed: %v", step, err)
	}
	defer c.Close()
	for _, tn := range []struct {
		name      string
		startHour int
		feed      [][]transit.DelayOp
		acked     uint64
	}{{"a", 6, aFeed, ackedA}, {"b", 7, bFeed, ackedB}} {
		h, err := c.Acquire(context.Background(), tn.name)
		if err != nil {
			t.Fatalf("step %d: acquire %s after reboot: %v", step, tn.name, err)
		}
		snap := h.Registry().Snapshot()
		if snap.Epoch < tn.acked {
			t.Errorf("step %d: tenant %s recovered epoch %d < acked %d", step, tn.name, snap.Epoch, tn.acked)
		}
		if snap.Epoch > uint64(len(tn.feed)) {
			t.Errorf("step %d: tenant %s recovered epoch %d beyond feed of %d", step, tn.name, snap.Epoch, len(tn.feed))
		} else if want := catFingerprint(t, catReference(t, tn.startHour, tn.feed, snap.Epoch)); catFingerprint(t, snap.Net) != want {
			t.Errorf("step %d: tenant %s at epoch %d does not match %d applied batches", step, tn.name, snap.Epoch, snap.Epoch)
		}
		h.Release()
	}
}

// TestCatalogCrashAtEveryIOStep extends the crash-safety property to the
// multi-tenant lifecycle: for a crash injected at every I/O step of a
// load→ingest→evict→reload→close cycle over two journaled tenants, a
// reopened catalog recovers each tenant at no less than its last acked
// epoch with byte-identical query answers.
func TestCatalogCrashAtEveryIOStep(t *testing.T) {
	clean, budget := memCatalog(t)
	clean.SetPlan(faultfs.Plan{}) // reset the step counter past the setup I/O
	a, b := runCatCrashScenario(t, clean, budget)
	if a != uint64(len(aFeed)) || b != uint64(len(bFeed)) {
		t.Fatalf("fault-free run acked a=%d b=%d, want %d/%d", a, b, len(aFeed), len(bFeed))
	}
	steps := clean.Steps()
	if steps < 20 {
		t.Fatalf("scenario has only %d I/O steps — harness not exercising the cycle", steps)
	}
	for k := 1; k <= steps; k++ {
		m, budget := memCatalog(t)
		m.SetPlan(faultfs.Plan{FailStep: k, Crash: true})
		ackedA, ackedB := runCatCrashScenario(t, m, budget)
		if !m.Crashed() {
			t.Fatalf("step %d: crash plan never fired", k)
		}
		verifyCatRecovery(t, k, m, budget, ackedA, ackedB)
	}
}

// TestEvictionRacesJournalAppend churns one tenant's delay feed against
// acquires of the other tenant that force evictions (journal truncate +
// close), under -race: appends only ever run on a pinned registry, so no
// interleaving may corrupt state — afterwards a reopened catalog must
// recover exactly the acked epochs.
func TestEvictionRacesJournalAppend(t *testing.T) {
	dir, budget := catalogDir(t)
	cfg := Config{
		MemBytes:        budget,
		Live:            live.Config{Policy: live.ServeUnpruned},
		PersistDir:      t.TempDir(),
		PersistInterval: time.Hour,
		Journal:         true,
	}
	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ackedA, ackedB uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			h, err := c.Acquire(ctx, "a")
			if err != nil {
				t.Errorf("acquire a: %v", err)
				return
			}
			if snap, _, err := h.Registry().Apply([]transit.DelayOp{{Train: "h08", Delay: 1}}); err != nil {
				t.Errorf("apply a: %v", err)
			} else if snap.Epoch <= ackedA {
				t.Errorf("epoch regressed: %d after %d", snap.Epoch, ackedA)
			} else {
				ackedA = snap.Epoch
			}
			h.Release()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			h, err := c.Acquire(ctx, "b")
			if err != nil {
				t.Errorf("acquire b: %v", err)
				return
			}
			if snap, _, err := h.Registry().Apply([]transit.DelayOp{{Train: fmt.Sprintf("h%02d", 7+i%16), Delay: 1}}); err != nil {
				t.Errorf("apply b: %v", err)
			} else {
				ackedB = snap.Epoch
			}
			h.Release()
		}
	}()
	wg.Wait()
	c.Close()

	c2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, tn := range []struct {
		name  string
		acked uint64
	}{{"a", ackedA}, {"b", ackedB}} {
		h := mustAcquire(t, c2, tn.name)
		if got := h.Registry().Snapshot().Epoch; got < tn.acked {
			t.Errorf("tenant %s recovered epoch %d < acked %d", tn.name, got, tn.acked)
		}
		h.Release()
	}
}

package catalog

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"transit"
	"transit/internal/faultfs"
	"transit/internal/live"
)

// Config tunes a Catalog.
type Config struct {
	// MemBytes is the resident-set budget: the catalog evicts
	// least-recently-used unpinned tenants once the summed snapshot file
	// sizes of the resident ones exceed it. Zero means unlimited (nothing
	// is ever evicted).
	MemBytes int64
	// Live is the template live.Config each tenant's registry is built
	// from. Tenants whose snapshot carries no distance table are demoted to
	// live.ServeUnpruned regardless of the template policy (there is no
	// table to repair). Logf is wrapped with a per-tenant prefix.
	Live live.Config
	// PersistDir, when non-empty, gives every tenant a persist file
	// <PersistDir>/<name>.live.snap: delay epochs survive eviction and
	// process restarts. The directory must exist.
	PersistDir string
	// PersistInterval is the per-tenant background checkpoint cadence
	// (live.StartPersist default when zero).
	PersistInterval time.Duration
	// Journal, with PersistDir set, gives every tenant a write-ahead
	// journal <PersistDir>/<name>.wal: delay batches are fsynced before
	// they are acked and replayed on load, so eviction/reload cycles and
	// crashes both recover every acked epoch (not just the last
	// checkpoint).
	Journal bool
	// Default overrides the manifest's default network.
	Default string
	// Logf, when set, receives load/evict lifecycle messages.
	Logf func(format string, args ...any)
}

// tenant is one named network and its lifecycle state. All fields except
// name/snapPath/persistPath/static are guarded by Catalog.mu; reg is read
// via a Handle only while refs pins it.
type tenant struct {
	name        string
	snapPath    string // absolute path of the manifest snapshot
	persistPath string // "" when persistence is off
	walPath     string // "" when journaling is off
	static      bool   // injected via NewStatic: always resident, never evicted

	reg  *live.Registry
	refs int           // in-flight handles pinning reg
	size int64         // bytes charged against MemBytes while resident
	elem *list.Element // position in Catalog.lru while resident

	// loading is non-nil while a goroutine is materializing reg; waiters
	// block on it and retry. closing is non-nil while an evicted registry
	// is flushing its final persist checkpoint; a reload must wait for it,
	// or the fresh registry would read a stale epoch and later clobber the
	// newer file.
	loading chan struct{}
	closing chan struct{}

	loadsN   uint64
	evictsN  uint64
	lastLive live.Metrics // metrics frozen at the last eviction
}

// Catalog is a registry of named networks, each backed by its own
// live.Registry with independent delay epochs, persistence and repair
// state. Tenants load lazily on first Acquire, stay pinned while handles
// are out, and are evicted least-recently-used when the resident bytes
// exceed the budget. See the package documentation for the lifecycle.
type Catalog struct {
	dir   string
	cfg   Config
	def   string
	names []string // manifest order, stable

	mu            chan struct{} // 1-buffered mutex; chan so evict waits stay simple
	closed        bool
	tenants       map[string]*tenant
	lru           *list.List // front = most recently used; elements hold *tenant
	residentBytes int64

	loads      uint64
	evictions  uint64
	loadErrors uint64
	loadMicros int64
}

func newCatalog(dir string, cfg Config) *Catalog {
	c := &Catalog{
		dir:     dir,
		cfg:     cfg,
		mu:      make(chan struct{}, 1),
		tenants: make(map[string]*tenant),
		lru:     list.New(),
	}
	return c
}

func (c *Catalog) lock()   { c.mu <- struct{}{} }
func (c *Catalog) unlock() { <-c.mu }

// fs returns the filesystem tenant files are read and persisted through:
// the live template's FS, defaulting to the real disk.
func (c *Catalog) fs() faultfs.FS {
	if c.cfg.Live.FS != nil {
		return c.cfg.Live.FS
	}
	return faultfs.Disk
}

// Open reads dir/catalog.json and returns a catalog serving its networks.
// No snapshot is loaded yet; each tenant materializes on first Acquire.
// Snapshot files must exist at Open time so a typo fails fast, not on the
// first query.
func Open(dir string, cfg Config) (*Catalog, error) {
	fsys := cfg.Live.FS
	if fsys == nil {
		fsys = faultfs.Disk
	}
	m, err := ReadManifestFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if cfg.Default != "" {
		found := false
		for _, e := range m.Networks {
			if e.Name == cfg.Default {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("catalog: default network %q not in manifest", cfg.Default)
		}
		m.Default = cfg.Default
	}
	c := newCatalog(dir, cfg)
	c.def = m.Default
	for _, e := range m.Networks {
		snapPath := filepath.Join(dir, e.Snapshot)
		if _, err := fsys.Stat(snapPath); err != nil {
			return nil, fmt.Errorf("catalog: network %s: %w", e.Name, err)
		}
		t := &tenant{name: e.Name, snapPath: snapPath}
		if cfg.PersistDir != "" {
			t.persistPath = filepath.Join(cfg.PersistDir, e.Name+".live.snap")
			if cfg.Journal {
				t.walPath = filepath.Join(cfg.PersistDir, e.Name+".wal")
			}
		}
		c.tenants[e.Name] = t
		c.names = append(c.names, e.Name)
	}
	return c, nil
}

// NewStatic wraps one pre-built registry as a single-network catalog: the
// tenant is permanently resident, exempt from any budget, and never
// evicted. This is how the single-network tpserver flags keep working — a
// one-entry catalog with the legacy lifecycle.
func NewStatic(name string, reg *live.Registry) *Catalog {
	c := newCatalog("", Config{})
	c.def = name
	c.names = []string{name}
	t := &tenant{name: name, static: true, reg: reg}
	t.elem = c.lru.PushFront(t)
	c.tenants[name] = t
	return c
}

// Handle pins one resident tenant. The registry (and every snapshot taken
// from it) stays valid until Release; queries must hold the handle for
// their full duration.
type Handle struct {
	c *Catalog
	t *tenant
	r *live.Registry
}

// Registry returns the pinned tenant's live registry.
func (h *Handle) Registry() *live.Registry { return h.r }

// Name returns the tenant's network name.
func (h *Handle) Name() string { return h.t.name }

// Release drops the pin. After the last release a tenant becomes evictable;
// if the resident set is over budget (a load during the pin overshot), the
// release triggers the deferred eviction.
func (h *Handle) Release() {
	c, t := h.c, h.t
	c.lock()
	t.refs--
	var victims []victim
	if t.refs == 0 && !c.closed {
		victims = c.evictLocked(nil)
	}
	c.unlock()
	c.closeVictims(victims)
}

// Acquire returns a pinned handle for the named network, materializing it
// from its snapshot (or its newer persist file) if it is not resident. An
// unknown name yields a typed *transit.Error with CodeUnknownNetwork. ctx
// bounds the wait on a concurrent load or eviction flush, not the load
// itself (a load underway completes for whoever triggered it).
func (c *Catalog) Acquire(ctx context.Context, name string) (*Handle, error) {
	for {
		c.lock()
		if c.closed {
			c.unlock()
			return nil, transit.NewError(transit.CodeInternal, "catalog closed", nil)
		}
		t, ok := c.tenants[name]
		if !ok {
			c.unlock()
			return nil, &transit.Error{
				Code:    transit.CodeUnknownNetwork,
				Field:   "network",
				Message: fmt.Sprintf("unknown network %q", name),
			}
		}
		if t.reg != nil {
			t.refs++
			c.lru.MoveToFront(t.elem)
			reg := t.reg
			c.unlock()
			return &Handle{c: c, t: t, r: reg}, nil
		}
		if wait := waitChan(t); wait != nil {
			// Someone else is loading this tenant, or its evicted registry
			// is still flushing its final checkpoint. Wait and re-examine.
			c.unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				return nil, transit.NewError(transit.CodeCancelled,
					"waiting for network "+name, ctx.Err())
			}
			continue
		}
		t.loading = make(chan struct{})
		c.unlock()

		reg, size, err := c.load(t)

		c.lock()
		close(t.loading)
		t.loading = nil
		if err != nil {
			c.loadErrors++
			c.unlock()
			c.logf("catalog: loading %s: %v", name, err)
			return nil, transit.NewError(transit.CodeInternal,
				"loading network "+name, err)
		}
		t.reg = reg
		t.size = size
		t.elem = c.lru.PushFront(t)
		t.refs++
		t.loadsN++
		c.loads++
		c.residentBytes += size
		victims := c.evictLocked(t)
		c.unlock()
		c.closeVictims(victims)
		return &Handle{c: c, t: t, r: reg}, nil
	}
}

// waitChan returns the channel an Acquire must wait on before it can use
// or load t, or nil when t is idle. Caller holds mu.
func waitChan(t *tenant) chan struct{} {
	if t.loading != nil {
		return t.loading
	}
	return t.closing
}

// load materializes one tenant from disk, outside the catalog lock. The
// persist file, when present, wins over the manifest snapshot: it carries
// the delay epoch the tenant had reached before its last eviction or the
// previous process exit.
func (c *Catalog) load(t *tenant) (*live.Registry, int64, error) {
	start := time.Now()
	fsys := c.fs()
	path := t.snapPath
	if t.persistPath != "" {
		// A crash mid-checkpoint leaves an orphaned temp file next to the
		// persist file; drop it before (re)loading.
		if removed, err := live.CleanupTemps(fsys, t.persistPath); err == nil {
			for _, name := range removed {
				c.logf("catalog: %s: removed orphaned temp %s", t.name, filepath.Base(name))
			}
		}
		if _, err := fsys.Stat(t.persistPath); err == nil {
			path = t.persistPath
		}
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := fsys.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	n, st, err := transit.LoadSnapshot(f)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	lcfg := c.cfg.Live
	if !n.Preprocessed() {
		lcfg.Policy = live.ServeUnpruned
	}
	if base := c.cfg.Live.Logf; base != nil {
		name := t.name
		lcfg.Logf = func(format string, args ...any) {
			base("["+name+"] "+format, args...)
		}
	}
	reg := live.NewRegistryAt(n, *st, lcfg)
	if t.walPath != "" {
		// Replay acked-but-unpersisted batches and attach the journal
		// before any traffic; a tenant whose journal cannot be opened is
		// unusable, not silently non-durable.
		replayed, err := reg.RecoverJournal(t.walPath)
		if err != nil {
			return nil, 0, fmt.Errorf("recovering journal: %w", err)
		}
		if replayed > 0 {
			c.logf("catalog: %s: replayed %d journaled batch(es) to epoch %d",
				t.name, replayed, reg.Snapshot().Epoch)
		}
	}
	if t.persistPath != "" {
		reg.StartPersist(t.persistPath, c.cfg.PersistInterval)
	}
	elapsed := time.Since(start)
	c.lock()
	c.loadMicros += elapsed.Microseconds()
	c.unlock()
	c.logf("catalog: loaded %s from %s (epoch %d, %d bytes, %v)",
		t.name, filepath.Base(path), st.Epoch, fi.Size(), elapsed.Round(time.Millisecond))
	return reg, fi.Size(), nil
}

// victim pairs a tenant detached by evictLocked with the registry it was
// serving, which the detacher must close outside the lock.
type victim struct {
	t   *tenant
	reg *live.Registry
}

// evictLocked walks the LRU tail while the resident set exceeds the budget
// and detaches evictable tenants (unpinned, non-static, not keep): reg is
// cleared and the closing gate raised under the lock, so a concurrent
// Acquire either saw the registry while it was still pinned-able or waits
// for the flush. The detached registries are returned for the caller to
// close OUTSIDE the lock — live.Close blocks on the final persist
// checkpoint and any in-flight async re-preprocess. Caller holds mu.
func (c *Catalog) evictLocked(keep *tenant) []victim {
	if c.cfg.MemBytes <= 0 {
		return nil
	}
	var victims []victim
	e := c.lru.Back()
	for c.residentBytes > c.cfg.MemBytes && e != nil {
		t := e.Value.(*tenant)
		prev := e.Prev()
		if t != keep && !t.static && t.refs == 0 && t.reg != nil {
			t.lastLive = t.reg.Metrics()
			t.closing = make(chan struct{})
			t.evictsN++
			c.evictions++
			c.residentBytes -= t.size
			c.lru.Remove(e)
			victims = append(victims, victim{t: t, reg: t.reg})
			t.reg = nil
			t.elem = nil
			t.size = 0
		}
		e = prev
	}
	return victims
}

// closeVictims finishes an eviction outside the lock: each detached
// registry persists its final checkpoint and drains, then the tenant's
// closing gate opens so reloads may proceed.
func (c *Catalog) closeVictims(victims []victim) {
	for _, v := range victims {
		v.reg.Close()
		c.lock()
		v.t.lastLive = v.reg.Metrics() // include the final persist in the frozen view
		close(v.t.closing)
		v.t.closing = nil
		c.unlock()
		c.logf("catalog: evicted %s (epoch %d)", v.t.name, v.t.lastLive.Epoch)
	}
}

// Close shuts every resident registry down (final persist checkpoints
// included) and fails all future Acquires. In-flight handles stay valid;
// their releases become no-ops.
func (c *Catalog) Close() {
	c.lock()
	if c.closed {
		c.unlock()
		return
	}
	c.closed = true
	var regs []*live.Registry
	for _, name := range c.names {
		// Manifest order, not map order: shutdown I/O (final checkpoints,
		// journal closes) happens in a deterministic sequence.
		if t := c.tenants[name]; t.reg != nil {
			regs = append(regs, t.reg)
		}
	}
	c.unlock()
	for _, r := range regs {
		r.Close()
	}
}

// Names returns the network names in manifest order.
func (c *Catalog) Names() []string { return c.names }

// DefaultName returns the network serving the un-prefixed legacy routes.
func (c *Catalog) DefaultName() string { return c.def }

// Resident returns the named tenant's registry if it is currently loaded,
// without pinning it — a peek for metrics and tests. The registry may be
// evicted at any moment after the call returns; production query paths
// must use Acquire.
func (c *Catalog) Resident(name string) *live.Registry {
	c.lock()
	defer c.unlock()
	if t := c.tenants[name]; t != nil {
		return t.reg
	}
	return nil
}

// Metrics is a point-in-time view of the catalog-wide counters.
type Metrics struct {
	Networks      int
	Resident      int
	ResidentBytes int64
	MemBytes      int64
	Loads         uint64
	Evictions     uint64
	LoadErrors    uint64
	LoadDuration  time.Duration
}

// Metrics reads the catalog-wide counters.
func (c *Catalog) Metrics() Metrics {
	c.lock()
	defer c.unlock()
	m := Metrics{
		Networks:      len(c.tenants),
		ResidentBytes: c.residentBytes,
		MemBytes:      c.cfg.MemBytes,
		Loads:         c.loads,
		Evictions:     c.evictions,
		LoadErrors:    c.loadErrors,
		LoadDuration:  time.Duration(c.loadMicros) * time.Microsecond,
	}
	for _, t := range c.tenants {
		if t.reg != nil {
			m.Resident++
		}
	}
	return m
}

// NetworkMetrics is the per-tenant view exposed as network="…" labelled
// /metrics series and by GET /v1/networks.
type NetworkMetrics struct {
	Name      string
	Resident  bool
	Pinned    int
	SizeBytes int64
	Loads     uint64
	Evictions uint64
	// Live is the tenant's registry metrics: the live values while
	// resident, or the view frozen at the last eviction (so the epoch a
	// tenant reached remains visible while it is cold).
	Live live.Metrics
}

// NetworkMetrics reads one tenant's counters; ok is false for an unknown
// name. Never triggers a load.
func (c *Catalog) NetworkMetrics(name string) (NetworkMetrics, bool) {
	c.lock()
	defer c.unlock()
	t, ok := c.tenants[name]
	if !ok {
		return NetworkMetrics{}, false
	}
	m := NetworkMetrics{
		Name:      name,
		Resident:  t.reg != nil,
		Pinned:    t.refs,
		SizeBytes: t.size,
		Loads:     t.loadsN,
		Evictions: t.evictsN,
		Live:      t.lastLive,
	}
	if t.reg != nil {
		m.Live = t.reg.Metrics()
	}
	return m, true
}

// LiveMetrics is shorthand for NetworkMetrics(name).Live.
func (c *Catalog) LiveMetrics(name string) live.Metrics {
	m, _ := c.NetworkMetrics(name)
	return m.Live
}

func (c *Catalog) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

package catalog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"transit/internal/faultfs"
)

// ManifestFile is the manifest's file name inside a catalog directory.
const ManifestFile = "catalog.json"

// maxNameLen bounds a network name. Names travel in URLs, metric labels
// and persist-file names, so they are kept short and boring.
const maxNameLen = 64

// ErrManifest wraps every manifest validation failure, so callers (and the
// fuzzer) can classify any rejection with one errors.Is test.
var ErrManifest = errors.New("catalog: invalid manifest")

// Entry names one network of the catalog and the snapshot file serving it.
// Snapshot is a path relative to the catalog directory; absolute paths and
// paths escaping the directory (traversal) are rejected.
type Entry struct {
	Name     string `json:"name"`
	Snapshot string `json:"snapshot"`
}

// Manifest is the parsed catalog.json: the set of served networks, plus
// the default network answering the un-prefixed legacy routes. An empty
// Default resolves to the first entry.
type Manifest struct {
	Default  string  `json:"default,omitempty"`
	Networks []Entry `json:"networks"`
}

// ValidName reports whether name is a legal network name: 1–64 characters
// of lowercase letters, digits, '-' or '_', starting with a letter or
// digit. The grammar is deliberately narrow — names appear in URL paths,
// Prometheus label values and file names without escaping.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > maxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

func manifestErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrManifest, fmt.Sprintf(format, args...))
}

// ParseManifest decodes and validates a manifest. Every failure — malformed
// JSON, unknown fields, hostile network names, path traversal, duplicate
// entries, a default naming no entry — returns an error wrapping
// ErrManifest; no input panics.
func ParseManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, manifestErrf("%v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, manifestErrf("trailing data after the manifest object")
	}
	if len(m.Networks) == 0 {
		return nil, manifestErrf("no networks declared")
	}
	seen := make(map[string]bool, len(m.Networks))
	for i, e := range m.Networks {
		if !ValidName(e.Name) {
			return nil, manifestErrf("entry %d: invalid network name %q (want 1–%d of [a-z0-9_-], starting with a letter or digit)",
				i, e.Name, maxNameLen)
		}
		if seen[e.Name] {
			return nil, manifestErrf("entry %d: duplicate network %q", i, e.Name)
		}
		seen[e.Name] = true
		if e.Snapshot == "" {
			return nil, manifestErrf("entry %d (%s): missing snapshot path", i, e.Name)
		}
		if !filepath.IsLocal(e.Snapshot) {
			return nil, manifestErrf("entry %d (%s): snapshot path %q escapes the catalog directory",
				i, e.Name, e.Snapshot)
		}
	}
	if m.Default == "" {
		m.Default = m.Networks[0].Name
	} else if !seen[m.Default] {
		return nil, manifestErrf("default %q names no entry", m.Default)
	}
	return &m, nil
}

// ReadManifest loads and parses dir/catalog.json.
func ReadManifest(dir string) (*Manifest, error) {
	return ReadManifestFS(faultfs.Disk, dir)
}

// ReadManifestFS is ReadManifest through an injectable filesystem — the
// seam the crash-safety tests load catalogs through.
func ReadManifestFS(fsys faultfs.FS, dir string) (*Manifest, error) {
	data, err := faultfs.ReadFile(fsys, filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return ParseManifest(data)
}

// WriteManifest renders m as indented JSON into dir/catalog.json, after
// re-validating it through the parser (a builder bug becomes a build-time
// error, not a serving-time one).
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := ParseManifest(data); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644)
}

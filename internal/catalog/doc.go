// Package catalog turns a directory of network snapshots into a
// multi-tenant registry: many cities, one binary.
//
// A catalog directory holds a manifest (catalog.json) naming each network
// and its snapshot file. Every tenant owns its own live.Registry —
// independent delay epochs, persist files and distance-table repair state —
// so nothing one city's delay feed does is observable from another city's
// queries.
//
// # Lifecycle
//
// Tenants are cold at Open and materialize lazily: the first Acquire loads
// the snapshot (~tens of milliseconds for a CRC-checked mmap-free read),
// wraps it in a registry, and starts its persistence loop. Acquire returns
// a Handle that pins the tenant with an in-flight refcount; the registry
// cannot be evicted while any handle is out, so a query holds its handle
// (and therefore its snapshot) for its full duration.
//
// When Config.MemBytes is set, the catalog evicts least-recently-used
// unpinned tenants once the summed snapshot sizes of the resident set
// exceed the budget. Eviction closes the tenant's registry, which flushes
// one final persist checkpoint; a concurrent Acquire of the same tenant
// waits for that flush before reloading, so the reload always observes the
// newest epoch. The persist file, when present, wins over the manifest
// snapshot at load time — delay epochs survive eviction and restarts.
//
// # Consistency
//
// The catalog lock covers only bookkeeping (tenant table, LRU list,
// counters); snapshot loading and registry closing happen outside it, with
// per-tenant loading/closing gates serializing waiters. Queries against
// tenant A never block on tenant B's load or eviction.
package catalog

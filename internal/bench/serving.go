package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"transit/internal/obs"
)

// ServingConfig drives an open-loop load run against a live tpserver: the
// generator fires requests at the offered rate regardless of how fast the
// server answers (each request on its own goroutine), which is what makes
// overload visible — a closed loop would politely slow down with the
// server and never push it past saturation.
//
// Station popularity is zipf-distributed (a few hub stations dominate,
// like real journey planners) and departures are drawn from a small set,
// so a result cache has realistic skew to work with.
type ServingConfig struct {
	BaseURL  string        // e.g. http://127.0.0.1:8080
	Rate     float64       // offered requests per second
	Duration time.Duration // how long to offer load
	// Mix maps query kind ("arrival", "journey", "profile") to its weight.
	// Empty means 6:3:1 arrival:journey:profile.
	Mix map[string]float64
	// Stations is the station-ID space to draw from; 0 fetches the count
	// from GET /v1/stations.
	Stations int
	ZipfS    float64 // zipf skew s > 1 (0 = default 1.4)
	ZipfV    float64 // zipf offset v >= 1 (0 = default 1)
	Seed     int64
	Timeout  time.Duration // per-request client timeout (0 = 5s)
}

// ServingReport is the machine-readable outcome of a load run
// (BENCH_serving.json). Latency percentiles cover answered requests (2xx
// and 404 — both ran a search); shed 429s are counted separately, which is
// the point: shedding keeps them out of the latency distribution.
type ServingReport struct {
	Target     string  `json:"target"`
	DurationS  float64 `json:"duration_s"`
	OfferedRPS float64 `json:"offered_rps"`

	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	NotFound int `json:"not_found"`
	Shed     int `json:"shed"` // HTTP 429
	Failed   int `json:"failed"`

	// RetryAfterOn429 reports whether every observed 429 carried the
	// Retry-After back-off header.
	RetryAfterOn429 bool `json:"retry_after_on_429"`

	ThroughputRPS float64 `json:"throughput_rps"` // answered (ok+not_found) per second
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	ShedRate      float64 `json:"shed_rate"`

	// Server-side deltas scraped from /metrics across the run.
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheCoalesced  uint64  `json:"cache_coalesced"`
	CacheHitRate    float64 `json:"cache_hit_rate"` // (hits+coalesced) / lookups
	ServerShedTotal uint64  `json:"server_shed_total"`

	// Stage percentiles from the server's own histograms, as before/after
	// deltas over the run (so a long-lived server's history does not bleed
	// in). QueueWait covers admitted searches only — it is where latency
	// goes first when the offered rate crosses capacity, and it stays flat
	// when shedding works. Settled is labels settled per search, the
	// paper's measure of search effort.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP90Ms float64 `json:"queue_wait_p90_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	SearchP50Ms    float64 `json:"search_p50_ms"`
	SearchP99Ms    float64 `json:"search_p99_ms"`
	SettledP50     float64 `json:"settled_p50"`
	SettledP99     float64 `json:"settled_p99"`
}

// WriteJSON writes the report, indented, to path.
func (r *ServingReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Print renders the human-readable summary.
func (r *ServingReport) Print(w io.Writer) {
	fmt.Fprintf(w, "target       %s\n", r.Target)
	fmt.Fprintf(w, "offered      %.0f req/s for %.1fs (%d sent)\n", r.OfferedRPS, r.DurationS, r.Sent)
	fmt.Fprintf(w, "answered     %d ok, %d not-found  (%.0f req/s)\n", r.OK, r.NotFound, r.ThroughputRPS)
	fmt.Fprintf(w, "shed         %d (%.1f%%), retry-after on 429: %v\n", r.Shed, 100*r.ShedRate, r.RetryAfterOn429)
	fmt.Fprintf(w, "failed       %d\n", r.Failed)
	fmt.Fprintf(w, "latency      p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n", r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	fmt.Fprintf(w, "cache        %d hits, %d misses, %d coalesced (hit rate %.1f%%)\n",
		r.CacheHits, r.CacheMisses, r.CacheCoalesced, 100*r.CacheHitRate)
	fmt.Fprintf(w, "server shed  %d total\n", r.ServerShedTotal)
	fmt.Fprintf(w, "queue wait   p50 %.2fms  p90 %.2fms  p99 %.2fms (admitted searches)\n",
		r.QueueWaitP50Ms, r.QueueWaitP90Ms, r.QueueWaitP99Ms)
	fmt.Fprintf(w, "search       p50 %.2fms  p99 %.2fms,  settled p50 %.0f  p99 %.0f labels\n",
		r.SearchP50Ms, r.SearchP99Ms, r.SettledP50, r.SettledP99)
}

// ParseMix parses a "kind=weight,kind=weight" flag value.
func ParseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix element %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch kv[0] {
		case "arrival", "journey", "profile":
		default:
			return nil, fmt.Errorf("unknown mix kind %q", kv[0])
		}
		mix[kv[0]] = w
	}
	return mix, nil
}

// servingDeparts is the departure-time pool of the workload; a small set
// keeps the request key space realistic for caching (commuters cluster on
// the same few times).
var servingDeparts = []string{"07:30", "08:00", "12:15", "17:45"}

// RunServing offers cfg.Rate requests/s against cfg.BaseURL for
// cfg.Duration and reports what came back.
func RunServing(cfg ServingConfig) (*ServingReport, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("bench: rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("bench: duration must be positive")
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}

	stations := cfg.Stations
	if stations == 0 {
		var err error
		stations, err = countStations(client, base)
		if err != nil {
			return nil, err
		}
	}
	if stations < 2 {
		return nil, fmt.Errorf("bench: need at least 2 stations, have %d", stations)
	}

	mix := cfg.Mix
	if len(mix) == 0 {
		mix = map[string]float64{"arrival": 6, "journey": 3, "profile": 1}
	}
	kinds, weights := make([]string, 0, len(mix)), make([]float64, 0, len(mix))
	total := 0.0
	for _, k := range []string{"arrival", "journey", "profile"} { // stable order
		if w := mix[k]; w > 0 {
			kinds = append(kinds, k)
			weights = append(weights, w)
			total += w
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("bench: empty query mix")
	}

	zs, zv := cfg.ZipfS, cfg.ZipfV
	if zs <= 1 {
		zs = 1.4
	}
	if zv < 1 {
		zv = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, zs, zv, uint64(stations-1))

	before, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds, answered requests only
		rep       = ServingReport{
			Target:          base,
			OfferedRPS:      cfg.Rate,
			RetryAfterOn429: true,
		}
		wg sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	n := int(cfg.Duration.Seconds() * cfg.Rate)
	start := time.Now()
	for i := 0; i < n; i++ {
		// Open loop: fire at the scheduled instant whether or not earlier
		// requests have come back.
		if next := start.Add(time.Duration(i) * interval); time.Until(next) > 0 {
			time.Sleep(time.Until(next))
		}
		// Draw the request on the dispatch goroutine (rng is not
		// goroutine-safe).
		from := int(zipf.Uint64())
		to := int(zipf.Uint64())
		if to == from {
			to = (to + 1) % stations
		}
		kind := kinds[0]
		if len(kinds) > 1 {
			x := rng.Float64() * total
			for j, w := range weights {
				if x < w {
					kind = kinds[j]
					break
				}
				x -= w
			}
		}
		depart := servingDeparts[rng.Intn(len(servingDeparts))]
		url := queryURL(base, kind, from, to, depart)

		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Get(url)
			ms := float64(time.Since(t0).Microseconds()) / 1000
			mu.Lock()
			defer mu.Unlock()
			rep.Sent++
			if err != nil {
				rep.Failed++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				rep.OK++
				latencies = append(latencies, ms)
			case resp.StatusCode == http.StatusNotFound:
				rep.NotFound++
				latencies = append(latencies, ms)
			case resp.StatusCode == http.StatusTooManyRequests:
				rep.Shed++
				if resp.Header.Get("Retry-After") == "" {
					rep.RetryAfterOn429 = false
				}
			default:
				rep.Failed++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, err
	}

	rep.DurationS = elapsed.Seconds()
	answered := rep.OK + rep.NotFound
	rep.ThroughputRPS = float64(answered) / elapsed.Seconds()
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
	}
	sort.Float64s(latencies)
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P90Ms = percentile(latencies, 0.90)
	rep.P99Ms = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		rep.MaxMs = latencies[len(latencies)-1]
	}
	rep.CacheHits = delta(before, after, "tpserver_cache_hits_total")
	rep.CacheMisses = delta(before, after, "tpserver_cache_misses_total")
	rep.CacheCoalesced = delta(before, after, "tpserver_cache_coalesced_total")
	if v, ok := after.Value("tpserver_shed_total"); ok {
		rep.ServerShedTotal = uint64(v)
	}
	if lookups := rep.CacheHits + rep.CacheMisses + rep.CacheCoalesced; lookups > 0 {
		rep.CacheHitRate = float64(rep.CacheHits+rep.CacheCoalesced) / float64(lookups)
	}
	rep.QueueWaitP50Ms = histQuantile(before, after, "tpserver_queue_wait_seconds", 0.50) * 1000
	rep.QueueWaitP90Ms = histQuantile(before, after, "tpserver_queue_wait_seconds", 0.90) * 1000
	rep.QueueWaitP99Ms = histQuantile(before, after, "tpserver_queue_wait_seconds", 0.99) * 1000
	rep.SearchP50Ms = histQuantile(before, after, "tpserver_search_seconds", 0.50) * 1000
	rep.SearchP99Ms = histQuantile(before, after, "tpserver_search_seconds", 0.99) * 1000
	rep.SettledP50 = histQuantile(before, after, "tpserver_search_settled_labels", 0.50)
	rep.SettledP99 = histQuantile(before, after, "tpserver_search_settled_labels", 0.99)
	return &rep, nil
}

func queryURL(base, kind string, from, to int, depart string) string {
	switch kind {
	case "profile":
		return fmt.Sprintf("%s/v1/profile?from=%d&to=%d", base, from, to)
	case "journey":
		return fmt.Sprintf("%s/v1/journey?from=%d&to=%d&depart=%s", base, from, to, depart)
	default:
		return fmt.Sprintf("%s/v1/arrival?from=%d&to=%d&depart=%s", base, from, to, depart)
	}
}

// percentile reads the p-quantile from an ascending sample (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func countStations(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/v1/stations")
	if err != nil {
		return 0, fmt.Errorf("bench: fetching station count: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Stations []json.RawMessage `json:"stations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, fmt.Errorf("bench: decoding /v1/stations: %w", err)
	}
	return len(body.Stations), nil
}

// scrapeMetrics reads GET /metrics through the strict exposition parser, so
// a malformed /metrics page fails the load run loudly instead of silently
// reporting zero deltas.
func scrapeMetrics(client *http.Client, base string) (*obs.Exposition, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("bench: scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	exp, err := obs.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("bench: malformed /metrics exposition: %w", err)
	}
	return exp, nil
}

func delta(before, after *obs.Exposition, name string) uint64 {
	b, _ := before.Value(name)
	a, _ := after.Value(name)
	if a < b {
		return 0 // server restarted mid-run
	}
	return uint64(a - b)
}

// histQuantile reads quantile q of the named server histogram over the run:
// the before snapshot is subtracted so only observations made during the
// load window count. Zero when the family is absent or saw no traffic.
func histQuantile(before, after *obs.Exposition, name string, q float64) float64 {
	fa, ok := after.Families[name]
	if !ok {
		return 0
	}
	sa, ok := fa.HistogramSnapshot(nil)
	if !ok {
		return 0
	}
	if fb, ok := before.Families[name]; ok {
		if sb, ok := fb.HistogramSnapshot(nil); ok {
			sa = sa.Sub(sb)
		}
	}
	return sa.Quantile(q)
}

package bench

import (
	"strings"
	"testing"
)

func tinyNet(t *testing.T) *Network {
	t.Helper()
	net, err := Load("oahu", 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLoadFamilies(t *testing.T) {
	if len(Families()) != 5 {
		t.Fatalf("families: %v", Families())
	}
	if _, err := Load("unknown", 1, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	net := tinyNet(t)
	if net.TT == nil || net.G == nil || net.SG == nil {
		t.Fatal("incomplete bundle")
	}
}

func TestTable1Structure(t *testing.T) {
	net := tinyNet(t)
	rows, err := Table1(net, []int{1, 2}, 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (p=1, p=2, LC)", len(rows))
	}
	if rows[0].Algo != "CS" || rows[0].P != 1 || rows[1].P != 2 || rows[2].Algo != "LC" {
		t.Fatalf("row layout wrong: %+v", rows)
	}
	if rows[0].SpeedUp != 1 || rows[0].IdealSpeedUp != 1 {
		t.Fatal("baseline speed-ups must be 1")
	}
	if rows[0].MeanSettled <= 0 || rows[2].MeanSettled <= rows[0].MeanSettled {
		t.Fatalf("LC must settle more than CS: %+v", rows)
	}
	if rows[1].IdealSpeedUp <= 1 {
		t.Fatalf("p=2 ideal speed-up %.2f, want > 1", rows[1].IdealSpeedUp)
	}
	// Deterministic workload: same seed, same settled counts.
	again, err := Table1(net, []int{1, 2}, 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].MeanSettled != again[i].MeanSettled {
			t.Fatalf("row %d not deterministic: %.0f vs %.0f", i, rows[i].MeanSettled, again[i].MeanSettled)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	net := tinyNet(t)
	sels := []Selection{
		{Label: "0.0%"},
		{Label: "10.0%", Fraction: 0.10},
		{Label: "deg > 2", MinDegree: 2},
	}
	rows, err := Table2(net, sels, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Transfer != 0 || rows[0].PreproTime != 0 || rows[0].SpeedUp != 1 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	if rows[1].Transfer <= 0 || rows[1].PreproTime <= 0 {
		t.Fatalf("table row lacks preprocessing cost: %+v", rows[1])
	}
	if rows[0].TableUpdatesPerSec != 0 {
		t.Fatalf("no-table row reports table-update throughput: %+v", rows[0])
	}
	if rows[1].TableUpdatesPerSec <= 0 {
		t.Fatalf("table row lacks upd/s(table): %+v", rows[1])
	}
	if rows[1].UpdatesPerSec < rows[1].TableUpdatesPerSec {
		t.Fatalf("table repair cannot be faster than the patch alone: %+v", rows[1])
	}
	for _, r := range rows {
		if r.MeanSettled < 0 || r.MeanTimeMS < 0 {
			t.Fatalf("negative metrics: %+v", r)
		}
	}
}

func TestPaperSelections(t *testing.T) {
	sels := PaperSelections(false)
	if len(sels) != 7 || sels[0].Label != "0.0%" || sels[len(sels)-1].MinDegree != 2 {
		t.Fatalf("selections: %+v", sels)
	}
	full := PaperSelections(true)
	if len(full) != 8 || full[6].Label != "30.0%" {
		t.Fatalf("full selections: %+v", full)
	}
}

func TestAblations(t *testing.T) {
	net := tinyNet(t)
	t.Run("partition", func(t *testing.T) {
		rows, err := AblationPartition(net, 4, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r.Imbalance < 1 {
				t.Fatalf("imbalance below 1: %+v", r)
			}
		}
	})
	t.Run("self-pruning", func(t *testing.T) {
		rows, err := AblationSelfPruning(net, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 || rows[0].MeanSettled >= rows[1].MeanSettled {
			t.Fatalf("self-pruning rows wrong: %+v", rows)
		}
	})
	t.Run("heap", func(t *testing.T) {
		rows, err := AblationHeap(net, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d", len(rows))
		}
	})
	t.Run("stopping", func(t *testing.T) {
		rows, err := AblationStopping(net, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 || rows[0].MeanSettled > rows[1].MeanSettled {
			t.Fatalf("stopping rows wrong: %+v", rows)
		}
	})
}

func TestPrinters(t *testing.T) {
	net := tinyNet(t)
	t1, err := Table1(net, []int{1}, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintTable1(&sb, t1)
	if !strings.Contains(sb.String(), "settled conns") || !strings.Contains(sb.String(), "LC") {
		t.Fatalf("Table1 output: %q", sb.String())
	}
	t2, err := Table2(net, []Selection{{Label: "0.0%"}, {Label: "10.0%", Fraction: 0.1}}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	PrintTable2(&sb, t2)
	if !strings.Contains(sb.String(), "prepro") {
		t.Fatalf("Table2 output: %q", sb.String())
	}
	ab, err := AblationHeap(net, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	PrintAblation(&sb, "heap", ab)
	if !strings.Contains(sb.String(), "heap") {
		t.Fatalf("ablation output: %q", sb.String())
	}
}

func TestAblationPareto(t *testing.T) {
	net := tinyNet(t)
	rows, err := AblationPareto(net, []int{2, 4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A tight budget can prune more than layering adds, so the only stable
	// shape is monotonicity in the budget.
	if rows[1].MeanSettled <= 0 {
		t.Fatalf("pareto settled nothing: %+v", rows)
	}
	if rows[2].MeanSettled < rows[1].MeanSettled {
		t.Fatalf("larger budget should not settle fewer labels: %+v", rows)
	}
}

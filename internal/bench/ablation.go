package bench

import (
	"fmt"
	"io"

	"transit/internal/core"
	"transit/internal/stats"
)

// AblationRow is one configuration of an ablation experiment.
type AblationRow struct {
	Family      string
	Config      string
	MeanSettled float64
	MeanTimeMS  float64
	// Imbalance is max/min chunk work across threads (partition ablation
	// only; 0 elsewhere). Closer to 1 is better.
	Imbalance float64
}

// AblationPartition compares the three partition strategies of Section 3.2
// at the given thread count: per-thread work balance and query performance.
func AblationPartition(net *Network, threads, numQueries int, seed int64) ([]AblationRow, error) {
	sources := randomSources(net, numQueries, seed)
	var rows []AblationRow
	for _, strat := range []core.PartitionStrategy{core.EqualConnections, core.EqualTimeSlots, core.KMeans} {
		agg := &stats.Aggregate{}
		var maxW, minW float64
		for _, src := range sources {
			res, err := core.OneToAll(net.G, src, core.Options{Threads: threads, Partition: strat})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
			lo, hi := int64(1<<62), int64(0)
			for _, t := range res.Run.PerThread {
				if t.SettledConns < lo {
					lo = t.SettledConns
				}
				if t.SettledConns > hi {
					hi = t.SettledConns
				}
			}
			maxW += float64(hi)
			minW += float64(lo)
		}
		imb := 0.0
		if minW > 0 {
			imb = maxW / minW
		}
		rows = append(rows, AblationRow{
			Family:      net.Family,
			Config:      strat.String(),
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
			Imbalance:   imb,
		})
	}
	return rows, nil
}

// AblationSelfPruning quantifies Theorem 1: settled connections with and
// without self-pruning, sequentially.
func AblationSelfPruning(net *Network, numQueries int, seed int64) ([]AblationRow, error) {
	sources := randomSources(net, numQueries, seed)
	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		label := "self-pruning on"
		if disable {
			label = "self-pruning off"
		}
		agg := &stats.Aggregate{}
		for _, src := range sources {
			res, err := core.OneToAll(net.G, src, core.Options{DisableSelfPruning: disable})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		rows = append(rows, AblationRow{
			Family:      net.Family,
			Config:      label,
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// AblationHeap compares the binary heap (the paper's choice) against a
// 4-ary heap on the one-to-all workload.
func AblationHeap(net *Network, numQueries int, seed int64) ([]AblationRow, error) {
	sources := randomSources(net, numQueries, seed)
	var rows []AblationRow
	for _, arity := range []int{2, 4} {
		agg := &stats.Aggregate{}
		for _, src := range sources {
			res, err := core.OneToAll(net.G, src, core.Options{HeapArity: arity})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		rows = append(rows, AblationRow{
			Family:      net.Family,
			Config:      fmt.Sprintf("%d-ary heap", arity),
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// AblationStopping quantifies Theorem 2 on station-to-station queries
// without a distance table.
func AblationStopping(net *Network, numQueries int, seed int64) ([]AblationRow, error) {
	pairs := randomPairs(net, numQueries, seed)
	env := core.QueryEnv{Graph: net.G}
	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		label := "stopping criterion on"
		if disable {
			label = "stopping criterion off"
		}
		agg := &stats.Aggregate{}
		for _, pr := range pairs {
			res, err := core.StationToStation(env, pr[0], pr[1],
				core.QueryOptions{DisableStoppingCriterion: disable})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		rows = append(rows, AblationRow{
			Family:      net.Family,
			Config:      label,
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n%-12s %-24s %14s %10s %10s\n", title,
		"network", "config", "settled conns", "time [ms]", "imbalance")
	for _, r := range rows {
		imb := "—"
		if r.Imbalance > 0 {
			imb = fmt.Sprintf("%.2f", r.Imbalance)
		}
		fmt.Fprintf(w, "%-12s %-24s %14.0f %10.1f %10s\n",
			r.Family, r.Config, r.MeanSettled, r.MeanTimeMS, imb)
	}
}

// AblationPareto measures the cost of the multi-criteria extension as the
// transfer budget grows, relative to the single-criterion search.
func AblationPareto(net *Network, budgets []int, numQueries int, seed int64) ([]AblationRow, error) {
	sources := randomSources(net, numQueries, seed)
	base := &stats.Aggregate{}
	for _, src := range sources {
		res, err := core.OneToAll(net.G, src, core.Options{})
		if err != nil {
			return nil, err
		}
		base.Observe(&res.Run)
	}
	rows := []AblationRow{{
		Family:      net.Family,
		Config:      "single-criterion",
		MeanSettled: base.MeanSettled(),
		MeanTimeMS:  float64(base.MeanElapsed().Microseconds()) / 1000,
	}}
	for _, u := range budgets {
		agg := &stats.Aggregate{}
		for _, src := range sources {
			res, err := core.OneToAllPareto(net.G, src, u, core.Options{})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		rows = append(rows, AblationRow{
			Family:      net.Family,
			Config:      fmt.Sprintf("pareto ≤%d transfers", u),
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
		})
	}
	return rows, nil
}

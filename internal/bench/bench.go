// Package bench implements the experiment harness that regenerates the
// paper's evaluation (Section 5): Table 1 (one-to-all profile queries,
// connection-setting vs. label-correcting, 1–8 cores) and Table 2
// (station-to-station queries pruned by distance tables of varying size),
// plus the ablations DESIGN.md calls out. The harness is shared by
// cmd/tpbench, the testing.B benchmarks, and the shape-assertion tests in
// experiments_test.go.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"transit/internal/core"
	"transit/internal/dtable"
	"transit/internal/gen"
	"transit/internal/graph"
	"transit/internal/stationgraph"
	"transit/internal/stats"
	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Network bundles everything the experiments need about one input.
type Network struct {
	Family string
	TT     *timetable.Timetable
	G      *graph.Graph
	SG     *stationgraph.Graph
}

// Load generates and prepares one synthetic network family.
func Load(family string, scale float64, seed int64) (*Network, error) {
	cfg, err := gen.FamilyConfig(gen.Family(family), scale, seed)
	if err != nil {
		return nil, err
	}
	tt, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Network{
		Family: family,
		TT:     tt,
		G:      graph.Build(tt),
		SG:     stationgraph.Build(tt),
	}, nil
}

// Families returns the family names in the paper's table order.
func Families() []string {
	fams := gen.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = string(f)
	}
	return out
}

// randomSources draws n random source stations, reproducibly.
func randomSources(net *Network, n int, seed int64) []timetable.StationID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]timetable.StationID, n)
	for i := range out {
		out[i] = timetable.StationID(rng.Intn(net.TT.NumStations()))
	}
	return out
}

// randomPairs draws n random distinct station pairs, reproducibly.
func randomPairs(net *Network, n int, seed int64) [][2]timetable.StationID {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]timetable.StationID, 0, n)
	for len(out) < n {
		s := timetable.StationID(rng.Intn(net.TT.NumStations()))
		t := timetable.StationID(rng.Intn(net.TT.NumStations()))
		if s != t {
			out = append(out, [2]timetable.StationID{s, t})
		}
	}
	return out
}

// T1Row is one line of Table 1.
type T1Row struct {
	Family string
	Algo   string // "CS" or "LC"
	P      int    // cores (threads); 1 for LC
	// MeanSettled is the average settled connections per query (sum over
	// all cores), the paper's "Settled Conns" column.
	MeanSettled float64
	// MeanTimeMS is the average wall-clock query time.
	MeanTimeMS float64
	// SpeedUp is wall-clock speed-up over the p=1 CS row.
	SpeedUp float64
	// IdealSpeedUp is the machine-independent work speed-up: sequential
	// settled work divided by the mean critical-path (max per-thread) work.
	// On hardware with ≥p cores, wall-clock speed-up approaches this.
	IdealSpeedUp float64
}

// Table1 runs the one-to-all experiment: CS on each thread count in ps,
// plus the label-correcting baseline when includeLC is set.
func Table1(net *Network, ps []int, numQueries int, seed int64, includeLC bool) ([]T1Row, error) {
	sources := randomSources(net, numQueries, seed)
	var rows []T1Row
	var seqAgg *stats.Aggregate
	ws := core.GetWorkspace() // one reused workspace for the whole table
	defer core.PutWorkspace(ws)
	for _, p := range ps {
		agg := &stats.Aggregate{}
		for _, src := range sources {
			res, err := ws.OneToAll(net.G, src, core.Options{Threads: p})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		row := T1Row{
			Family:      net.Family,
			Algo:        "CS",
			P:           p,
			MeanSettled: agg.MeanSettled(),
			MeanTimeMS:  float64(agg.MeanElapsed().Microseconds()) / 1000,
		}
		if seqAgg == nil {
			seqAgg = agg
		}
		row.SpeedUp = safeDiv(float64(seqAgg.MeanElapsed().Microseconds()), float64(agg.MeanElapsed().Microseconds()))
		row.IdealSpeedUp = safeDiv(seqAgg.MeanSettled(), agg.MeanMaxThreadSettled())
		rows = append(rows, row)
	}
	if includeLC {
		agg := &stats.Aggregate{}
		for _, src := range sources {
			res, err := core.LabelCorrecting(net.G, src, core.Options{})
			if err != nil {
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		rows = append(rows, T1Row{
			Family:       net.Family,
			Algo:         "LC",
			P:            1,
			MeanSettled:  agg.MeanSettled(),
			MeanTimeMS:   float64(agg.MeanElapsed().Microseconds()) / 1000,
			SpeedUp:      safeDiv(float64(seqAgg.MeanElapsed().Microseconds()), float64(agg.MeanElapsed().Microseconds())),
			IdealSpeedUp: 1,
		})
	}
	return rows, nil
}

// Selection names one transfer-station selection of Table 2.
type Selection struct {
	Label string
	// Fraction > 0 selects by contraction to that fraction of stations;
	// MinDegree > 0 selects by station-graph degree. Both zero means "no
	// distance table" (the 0.0% row: stopping criterion only).
	Fraction  float64
	MinDegree int
}

// PaperSelections returns the Table 2 selections: 0%, 1%, 2.5%, 5%, 10%,
// 20% and deg > 2. (The paper's 30% row appears only for Oahu; include it
// with full=true.)
func PaperSelections(full bool) []Selection {
	sels := []Selection{
		{Label: "0.0%"},
		{Label: "1.0%", Fraction: 0.01},
		{Label: "2.5%", Fraction: 0.025},
		{Label: "5.0%", Fraction: 0.05},
		{Label: "10.0%", Fraction: 0.10},
		{Label: "20.0%", Fraction: 0.20},
	}
	if full {
		sels = append(sels, Selection{Label: "30.0%", Fraction: 0.30})
	}
	sels = append(sels, Selection{Label: "deg > 2", MinDegree: 2})
	return sels
}

// T2Row is one line of Table 2.
type T2Row struct {
	Family    string
	Selection string
	// Preprocessing cost.
	Transfer   int
	PreproTime time.Duration
	TableMiB   float64
	// Query performance.
	MeanSettled float64
	MeanTimeMS  float64
	// SpeedUp is work speed-up over the 0.0% row (stopping criterion only),
	// the paper's Spd column. Work-based rather than wall-clock so the
	// figure is meaningful on any host.
	SpeedUp float64
	// TimeSpeedUp is the wall-clock variant of SpeedUp.
	TimeSpeedUp float64
	// AllocsPerQuery is the steady-state heap allocations per query when
	// the queries run on a reused workspace — the figure the workspace
	// subsystem exists to drive to zero.
	AllocsPerQuery float64
	// UpdatesPerSec is the dynamic-update throughput of the incremental
	// patch path (Timetable.Patch + Graph.PatchTimes) for a ~100-connection
	// delay batch — the fully dynamic scenario of the paper's conclusion.
	// Selection-independent (updates drop the distance table), so the value
	// repeats on every row of a family.
	UpdatesPerSec float64
	// TableUpdatesPerSec is the same workload *including* the distance
	// table: patch plus incremental table repair (dtable.Repair) from the
	// selection's freshly built table, so a row's gap to UpdatesPerSec is
	// exactly the table-repair cost. Zero on the no-table row.
	TableUpdatesPerSec float64
	// RepairedRows is the mean table rows recomputed per repair in the
	// TableUpdatesPerSec measurement.
	RepairedRows float64
}

// updateBatchConns is the delay-batch size MeasureUpdates targets in
// Table 2, matching the acceptance workload of BenchmarkApplyDelays.
const updateBatchConns = 100

// delayBatch builds a ConnUpdate batch of at least want connections (whole
// trains in ID order, so per-train schedules stay consistent), each shifted
// delta ticks, together with the touched-connection descriptions the
// distance-table repair consumes.
func delayBatch(tt *timetable.Timetable, want int, delta timeutil.Ticks) ([]timetable.ConnUpdate, []timetable.ConnID, []dtable.TouchedConn) {
	var updates []timetable.ConnUpdate
	var touched []timetable.ConnID
	var tcs []dtable.TouchedConn
	for z := 0; z < tt.NumTrains() && len(updates) < want; z++ {
		route := tt.RouteOf(timetable.TrainID(z))
		for _, id := range tt.TrainConnections(timetable.TrainID(z)) {
			c := tt.Connections[id]
			dep := tt.Period.Wrap(c.Dep + delta)
			updates = append(updates, timetable.ConnUpdate{ID: id, Dep: dep, Arr: dep + c.Duration()})
			touched = append(touched, id)
			tcs = append(tcs, dtable.TouchedConn{
				Conn: id, Train: c.Train, Route: route, From: c.From, OldDep: c.Dep, NewDep: dep,
			})
		}
	}
	return updates, touched, tcs
}

// MeasureUpdates times the incremental patch path applying a delay batch of
// roughly batchConns connections against the network, returning achieved
// updates (snapshot swaps) per second. Each repetition patches the original
// timetable, mirroring a registry that applies independent delay feeds.
func MeasureUpdates(net *Network, batchConns int) (float64, error) {
	updates, touched, _ := delayBatch(net.TT, batchConns, 7)
	if len(updates) == 0 {
		return 0, nil
	}
	reps := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond || reps < 3 {
		ntt, err := net.TT.Patch(updates)
		if err != nil {
			return 0, err
		}
		if _, err := net.G.PatchTimes(ntt, touched); err != nil {
			return 0, err
		}
		reps++
	}
	return float64(reps) / time.Since(start).Seconds(), nil
}

// MeasureTableUpdates times the full re-preprocessing update path: the same
// delay batch as MeasureUpdates, but each repetition additionally repairs
// the distance table (dtable.Repair from the given provenance-carrying
// base), so the result is the end-to-end updates-per-second a server
// achieves while keeping table-pruned queries exact. Returns achieved
// updates per second and the mean rows repaired per update.
func MeasureTableUpdates(net *Network, base *dtable.Table, batchConns int) (float64, float64, error) {
	updates, touched, tcs := delayBatch(net.TT, batchConns, 7)
	if len(updates) == 0 || base == nil {
		return 0, 0, nil
	}
	reps, rows := 0, 0
	start := time.Now()
	for time.Since(start) < 250*time.Millisecond || reps < 3 {
		ntt, err := net.TT.Patch(updates)
		if err != nil {
			return 0, 0, err
		}
		ng, err := net.G.PatchTimes(ntt, touched)
		if err != nil {
			return 0, 0, err
		}
		res, err := core.RepairDistanceTable(ng, base, core.RefineTouched(net.G, tcs), core.Options{}, 1, 1.0)
		if err != nil {
			return 0, 0, err
		}
		rows += res.RowsRepaired
		reps++
	}
	return float64(reps) / time.Since(start).Seconds(), float64(rows) / float64(reps), nil
}

// Table2 runs the station-to-station experiment over the given selections.
func Table2(net *Network, sels []Selection, numQueries, threads int, seed int64) ([]T2Row, error) {
	pairs := randomPairs(net, numQueries, seed)
	updPerSec, err := MeasureUpdates(net, updateBatchConns)
	if err != nil {
		return nil, err
	}
	var rows []T2Row
	var base *T2Row
	for _, sel := range sels {
		env := core.QueryEnv{Graph: net.G}
		row := T2Row{Family: net.Family, Selection: sel.Label, UpdatesPerSec: updPerSec}
		if sel.Fraction > 0 || sel.MinDegree > 0 {
			var marked []bool
			if sel.MinDegree > 0 {
				marked = net.SG.SelectByDegree(sel.MinDegree)
			} else {
				keep := int(float64(net.TT.NumStations()) * sel.Fraction)
				if keep < 1 {
					keep = 1
				}
				marked = net.SG.SelectByContraction(keep)
			}
			pre, err := core.BuildDistanceTable(net.G, marked, core.Options{Threads: threads}, 1, true)
			if err != nil {
				return nil, err
			}
			env.StationGraph = net.SG
			env.Table = pre.Table
			row.Transfer = pre.Table.NumTransfer()
			row.PreproTime = pre.Elapsed
			row.TableMiB = float64(pre.SizeBytes) / (1 << 20)
			row.TableUpdatesPerSec, row.RepairedRows, err = MeasureTableUpdates(net, pre.Table, updateBatchConns)
			if err != nil {
				return nil, err
			}
		}
		// Queries run on one reused workspace, matching the paper's
		// per-thread data-structure reuse; the warm-up query grows the
		// arrays so the measured loop is the steady state.
		ws := core.GetWorkspace()
		if _, err := ws.StationToStation(env, pairs[0][0], pairs[0][1], core.QueryOptions{Options: core.Options{Threads: threads}}); err != nil {
			core.PutWorkspace(ws)
			return nil, err
		}
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		agg := &stats.Aggregate{}
		for _, pr := range pairs {
			res, err := ws.StationToStation(env, pr[0], pr[1], core.QueryOptions{Options: core.Options{Threads: threads}})
			if err != nil {
				core.PutWorkspace(ws)
				return nil, err
			}
			agg.Observe(&res.Run)
		}
		runtime.ReadMemStats(&msAfter)
		core.PutWorkspace(ws)
		row.AllocsPerQuery = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(pairs))
		row.MeanSettled = agg.MeanSettled()
		row.MeanTimeMS = float64(agg.MeanElapsed().Microseconds()) / 1000
		if base == nil {
			b := row
			base = &b
			row.SpeedUp = 1
			row.TimeSpeedUp = 1
		} else {
			row.SpeedUp = safeDiv(base.MeanSettled, row.MeanSettled)
			row.TimeSpeedUp = safeDiv(base.MeanTimeMS, row.MeanTimeMS)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PrintTable1 renders Table 1 rows in the paper's layout.
func PrintTable1(w io.Writer, rows []T1Row) {
	fmt.Fprintf(w, "%-12s %-4s %2s %14s %10s %6s %9s\n",
		"network", "algo", "p", "settled conns", "time [ms]", "spd", "ideal-spd")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-4s %2d %14.0f %10.1f %6.1f %9.1f\n",
			r.Family, r.Algo, r.P, r.MeanSettled, r.MeanTimeMS, r.SpeedUp, r.IdealSpeedUp)
	}
}

// PrintTable2 renders Table 2 rows in the paper's layout, extended with the
// dynamic-update columns: upd/s (timetable+graph patch only) and
// upd/s(table) (patch plus incremental distance-table repair, with the mean
// repaired row count in parentheses).
func PrintTable2(w io.Writer, rows []T2Row) {
	fmt.Fprintf(w, "%-12s %-8s %6s %10s %9s %14s %10s %6s %8s %10s %8s %16s\n",
		"network", "sel", "|T|", "prepro", "size MiB", "settled conns", "time [ms]", "spd", "t-spd", "allocs/q", "upd/s", "upd/s(table)")
	for _, r := range rows {
		prepro := "—"
		if r.PreproTime > 0 {
			prepro = r.PreproTime.Round(10 * time.Millisecond).String()
		}
		tblUpd := "—"
		if r.TableUpdatesPerSec > 0 {
			tblUpd = fmt.Sprintf("%.0f (%.0f rows)", r.TableUpdatesPerSec, r.RepairedRows)
		}
		fmt.Fprintf(w, "%-12s %-8s %6d %10s %9.1f %14.0f %10.1f %6.1f %8.1f %10.1f %8.0f %16s\n",
			r.Family, r.Selection, r.Transfer, prepro, r.TableMiB, r.MeanSettled, r.MeanTimeMS, r.SpeedUp, r.TimeSpeedUp, r.AllocsPerQuery, r.UpdatesPerSec, tblUpd)
	}
}

package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"transit/internal/obs"
)

// stubServer mimics the tpserver surface the load generator touches:
// station list, a real exposition-format /metrics (the scraper parses it
// strictly now), and query endpoints that shed every fourth request with
// 429 + Retry-After.
func stubServer() (*httptest.Server, *atomic.Uint64) {
	var reqs, shed atomic.Uint64
	reg := obs.NewRegistry()
	reg.Counter("tpserver_cache_hits_total", "stub", func() float64 { return float64(3 * reqs.Load()) })
	reg.Counter("tpserver_cache_misses_total", "stub", func() float64 { return float64(reqs.Load()) })
	reg.Counter("tpserver_cache_coalesced_total", "stub", func() float64 { return 0 })
	reg.Counter("tpserver_shed_total", "stub", func() float64 { return float64(shed.Load()) })
	reg.LabeledCounter("tpserver_requests_total", "stub", "endpoint", "v1_arrival",
		func() float64 { return 99 })
	queueWait := reg.NewHistogram("tpserver_queue_wait_seconds", "stub", obs.DurationBounds())
	searchDur := reg.NewHistogram("tpserver_search_seconds", "stub", obs.DurationBounds())
	settled := reg.NewHistogram("tpserver_search_settled_labels", "stub", obs.CountBounds())

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stations", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"stations":[{"id":0},{"id":1},{"id":2},{"id":3}]}`)
	})
	mux.Handle("/metrics", reg)
	query := func(w http.ResponseWriter, r *http.Request) {
		if n := reqs.Add(1); n%4 == 0 {
			shed.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"overloaded"}}`)
			return
		}
		queueWait.Observe(0.002) // every admitted search "waited" 2ms
		searchDur.Observe(0.010)
		settled.Observe(1000)
		fmt.Fprint(w, `{"reachable":true}`)
	}
	mux.HandleFunc("/v1/arrival", query)
	mux.HandleFunc("/v1/journey", query)
	mux.HandleFunc("/v1/profile", query)
	return httptest.NewServer(mux), &shed
}

func TestRunServing(t *testing.T) {
	srv, _ := stubServer()
	defer srv.Close()

	rep, err := RunServing(ServingConfig{
		BaseURL:  srv.URL,
		Rate:     200,
		Duration: 250 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if rep.OK+rep.NotFound+rep.Shed+rep.Failed != rep.Sent {
		t.Fatalf("tally doesn't add up: %+v", rep)
	}
	if rep.Shed == 0 {
		t.Fatal("stub sheds every 4th request but report saw none")
	}
	if !rep.RetryAfterOn429 {
		t.Fatal("stub always sets Retry-After but report says otherwise")
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d, want 0", rep.Failed)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("implausible latency stats: %+v", rep)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v, want positive", rep.ThroughputRPS)
	}
	// Stub metrics: 3 hits per request → hit rate 75%.
	if rep.CacheHitRate < 0.74 || rep.CacheHitRate > 0.76 {
		t.Fatalf("cache hit rate = %v, want 0.75", rep.CacheHitRate)
	}
	if rep.ServerShedTotal == 0 {
		t.Fatal("server shed total not scraped")
	}
	if got, want := rep.ShedRate, float64(rep.Shed)/float64(rep.Sent); got != want {
		t.Fatalf("shed rate = %v, want %v", got, want)
	}
	// Stage percentiles come from the server histograms (every admitted
	// search observed 2ms wait / 10ms search / 1000 settled labels; the
	// log-bucketed histogram answers within the enclosing power-of-two
	// bucket).
	if rep.QueueWaitP50Ms < 1 || rep.QueueWaitP50Ms > 5 ||
		rep.QueueWaitP99Ms < rep.QueueWaitP50Ms {
		t.Fatalf("queue wait percentiles implausible: %+v", rep)
	}
	if rep.SearchP99Ms < 7 || rep.SearchP99Ms > 17 {
		t.Fatalf("search p99 = %v ms, want ~10", rep.SearchP99Ms)
	}
	if rep.SettledP50 < 512 || rep.SettledP50 > 1024 {
		t.Fatalf("settled p50 = %v, want ~1000", rep.SettledP50)
	}
}

func TestRunServingValidation(t *testing.T) {
	if _, err := RunServing(ServingConfig{BaseURL: "http://x", Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunServing(ServingConfig{BaseURL: "http://x", Rate: 1, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("arrival=6, journey=3,profile=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["arrival"] != 6 || mix["journey"] != 3 || mix["profile"] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	if m, err := ParseMix(""); err != nil || m != nil {
		t.Fatalf("empty mix: %v %v", m, err)
	}
	for _, bad := range []string{"arrival", "arrival=x", "matrix=1", "journey=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile not zero")
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 0.5); p != 6 {
		t.Fatalf("p50 = %v, want 6", p)
	}
	if p := percentile(s, 0.99); p != 10 {
		t.Fatalf("p99 = %v, want 10", p)
	}
}

package stationgraph

import (
	"math/rand"
	"testing"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

var day = timeutil.NewPeriod(1440)

// starNetwork: hub H connected to leaves L0..L3 in both directions, and a
// chain L3→L4→L5 hanging off one leaf.
func starNetwork(t *testing.T) *timetable.Timetable {
	t.Helper()
	b := timetable.NewBuilder(day)
	h := b.AddStation("H", 5)
	var leaves []timetable.StationID
	for i := 0; i < 4; i++ {
		leaves = append(leaves, b.AddStation("L", 2))
	}
	l4 := b.AddStation("L4", 2)
	l5 := b.AddStation("L5", 2)
	for i, l := range leaves {
		dep := timeutil.Ticks(400 + 10*i)
		b.AddTrainRun("out", []timetable.StationID{h, l}, dep, []timeutil.Ticks{7}, 0)
		b.AddTrainRun("in", []timetable.StationID{l, h}, dep+30, []timeutil.Ticks{7}, 0)
	}
	b.AddTrainRun("chain", []timetable.StationID{leaves[3], l4, l5}, 600, []timeutil.Ticks{5, 5}, 1)
	b.AddTrainRun("chain-back", []timetable.StationID{l5, l4, leaves[3]}, 700, []timeutil.Ticks{5, 5}, 1)
	tt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestBuildStationGraph(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	if g.NumStations() != 7 {
		t.Fatalf("stations = %d", g.NumStations())
	}
	// Hub has degree 4 (the four leaves).
	if g.Degree(0) != 4 {
		t.Fatalf("hub degree = %d, want 4", g.Degree(0))
	}
	// L4 (id 5) has neighbours L3 and L5.
	if g.Degree(5) != 2 {
		t.Fatalf("L4 degree = %d, want 2", g.Degree(5))
	}
	// Arcs carry the minimum travel time.
	for _, a := range g.Out(0) {
		if a.W != 7 {
			t.Fatalf("hub out-arc weight %d, want 7", a.W)
		}
	}
	// Forward and reverse adjacency are mirror images.
	for s := timetable.StationID(0); int(s) < g.NumStations(); s++ {
		for _, a := range g.Out(s) {
			found := false
			for _, r := range g.In(a.To) {
				if r.To == s && r.W == a.W {
					found = true
				}
			}
			if !found {
				t.Fatalf("arc %d→%d missing in reverse adjacency", s, a.To)
			}
		}
	}
}

func TestComputeViasChain(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	// Mark the hub (0) and L3 (4) as transfer stations. Target L5 (6):
	// DFS on reverse graph: L5 ← L4 ← L3(transfer, pruned).
	isTransfer := make([]bool, 7)
	isTransfer[0] = true
	isTransfer[4] = true
	v := g.ComputeVias(6, isTransfer)
	if len(v.Via) != 1 || v.Via[0] != 4 {
		t.Fatalf("via(L5) = %v, want [4]", v.Via)
	}
	if len(v.Local) != 1 || v.Local[0] != 5 {
		t.Fatalf("local(L5) = %v, want [5]", v.Local)
	}
	if !v.IsLocalSource(5) || !v.IsLocalSource(6) {
		t.Fatal("L4 and L5 itself must be local sources")
	}
	if v.IsLocalSource(0) || v.IsLocalSource(1) {
		t.Fatal("hub and leaves are not local to L5")
	}
}

func TestComputeViasTransferTarget(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	isTransfer := make([]bool, 7)
	isTransfer[0] = true
	v := g.ComputeVias(0, isTransfer)
	if len(v.Via) != 1 || v.Via[0] != 0 || len(v.Local) != 0 {
		t.Fatalf("transfer target: via=%v local=%v", v.Via, v.Local)
	}
	if !v.IsLocalSource(0) {
		t.Fatal("target itself must be local")
	}
}

func TestComputeViasNoTransfers(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	isTransfer := make([]bool, 7)
	v := g.ComputeVias(6, isTransfer)
	if len(v.Via) != 0 {
		t.Fatalf("no transfer stations but via=%v", v.Via)
	}
	// Everything reachable in reverse is local: L5←L4←L3←H←L0..L2.
	if len(v.Local) != 6 {
		t.Fatalf("local = %v, want all 6 others", v.Local)
	}
}

func TestSelectByDegree(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	marked := g.SelectByDegree(2)
	// Only the hub (degree 4) exceeds 2; L3 has degree 2 (hub + L4).
	if !marked[0] {
		t.Fatal("hub not selected")
	}
	if CountMarked(marked) != 1 {
		t.Fatalf("selected %d stations, want 1: %v", CountMarked(marked), marked)
	}
}

func TestSelectByContractionKeepsHub(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	marked := g.SelectByContraction(2)
	if CountMarked(marked) != 2 {
		t.Fatalf("kept %d, want 2", CountMarked(marked))
	}
	if !marked[0] {
		t.Fatalf("contraction removed the hub; kept %v", marked)
	}
}

func TestSelectByContractionBounds(t *testing.T) {
	tt := starNetwork(t)
	g := Build(tt)
	all := g.SelectByContraction(100)
	if CountMarked(all) != 7 {
		t.Fatal("keep >= n must mark all")
	}
	none := g.SelectByContraction(0)
	if CountMarked(none) != 0 {
		t.Fatalf("keep 0 marked %d", CountMarked(none))
	}
	neg := g.SelectByContraction(-5)
	if CountMarked(neg) != 0 {
		t.Fatal("negative keep must mark none")
	}
}

// Contraction must preserve shortest-path distances among survivors (that
// is its entire purpose); verify on random graphs against Floyd-Warshall.
func TestContractionPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(8)
		// Random weighted digraph, ~25% density.
		w := make([][]timeutil.Ticks, n)
		for i := range w {
			w[i] = make([]timeutil.Ticks, n)
			for j := range w[i] {
				w[i][j] = timeutil.Infinity
			}
			w[i][i] = 0
		}
		g := &Graph{n: n, out: make([][]Arc, n), in: make([][]Arc, n), deg: make([]int, n)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(4) == 0 {
					wt := timeutil.Ticks(1 + rng.Intn(20))
					g.out[i] = append(g.out[i], Arc{To: timetable.StationID(j), W: wt})
					g.in[j] = append(g.in[j], Arc{To: timetable.StationID(i), W: wt})
					w[i][j] = wt
				}
			}
		}
		// Floyd-Warshall ground truth.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if w[i][k].IsInf() {
					continue
				}
				for j := 0; j < n; j++ {
					if !w[k][j].IsInf() && w[i][k]+w[k][j] < w[i][j] {
						w[i][j] = w[i][k] + w[k][j]
					}
				}
			}
		}
		keep := 2 + rng.Intn(3)
		c := newContractor(g)
		c.run(n - keep)
		// Distances among survivors in the overlay must match ground truth.
		var survivors []int
		for s := 0; s < n; s++ {
			if !c.contracted[s] {
				survivors = append(survivors, s)
			}
		}
		for _, src := range survivors {
			// Dijkstra on the overlay restricted to uncontracted nodes.
			dist := make([]timeutil.Ticks, n)
			for i := range dist {
				dist[i] = timeutil.Infinity
			}
			dist[src] = 0
			visited := make([]bool, n)
			for {
				u, best := -1, timeutil.Infinity
				for i := 0; i < n; i++ {
					if !visited[i] && !c.contracted[i] && dist[i] < best {
						u, best = i, dist[i]
					}
				}
				if u < 0 {
					break
				}
				visited[u] = true
				for to, wt := range c.out[u] {
					if c.contracted[to] {
						continue
					}
					if nd := dist[u] + wt; nd < dist[to] {
						dist[to] = nd
					}
				}
			}
			for _, dst := range survivors {
				if dist[dst] != w[src][dst] {
					t.Fatalf("trial %d: overlay distance %d→%d is %d, want %d (survivors %v)",
						trial, src, dst, dist[dst], w[src][dst], survivors)
				}
			}
		}
	}
}

func TestSelectionString(t *testing.T) {
	if SelectionString([]bool{true, false, true}) != "2/3 transfer stations" {
		t.Fatal("SelectionString format changed")
	}
}

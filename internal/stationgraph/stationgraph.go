// Package stationgraph implements the station graph G_S of Section 4: the
// condensation of a timetable with one node per station and an edge
// (S1, S2) whenever at least one train runs from S1 to S2. On top of it,
// the package provides
//
//   - the on-the-fly via-station computation: a DFS from the target in the
//     reverse station graph, pruned at transfer stations, yielding via(T),
//     local(T) and the local/global query classification;
//   - the two transfer-station selection strategies of the paper:
//     contraction (remove unimportant stations, adding shortcuts that
//     preserve distances between survivors) and station-graph degree.
package stationgraph

import (
	"fmt"
	"slices"
	"sort"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Arc is a directed edge of the station graph, weighted with the minimum
// travel time of any elementary connection between the two stations (the
// weight only steers contraction; correctness never depends on it).
type Arc struct {
	To timetable.StationID
	W  timeutil.Ticks
}

// Graph is the station graph G_S with forward and reverse adjacency.
// Immutable after Build; safe for concurrent readers.
type Graph struct {
	n   int
	out [][]Arc
	in  [][]Arc
	deg []int // undirected degree: number of distinct neighbours
}

// Build condenses the timetable into its station graph.
func Build(tt *timetable.Timetable) *Graph {
	n := tt.NumStations()
	type key struct{ from, to timetable.StationID }
	minW := make(map[key]timeutil.Ticks)
	for _, c := range tt.Connections {
		k := key{c.From, c.To}
		if w, ok := minW[k]; !ok || c.Duration() < w {
			minW[k] = c.Duration()
		}
	}
	for _, f := range tt.Footpaths {
		k := key{f.From, f.To}
		if w, ok := minW[k]; !ok || f.Walk < w {
			minW[k] = f.Walk
		}
	}
	g := &Graph{n: n, out: make([][]Arc, n), in: make([][]Arc, n)}
	for k, w := range minW {
		g.out[k.from] = append(g.out[k.from], Arc{To: k.to, W: w})
		g.in[k.to] = append(g.in[k.to], Arc{To: k.from, W: w})
	}
	for s := 0; s < n; s++ {
		sort.Slice(g.out[s], func(i, j int) bool { return g.out[s][i].To < g.out[s][j].To })
		sort.Slice(g.in[s], func(i, j int) bool { return g.in[s][i].To < g.in[s][j].To })
	}
	g.deg = make([]int, n)
	for s := 0; s < n; s++ {
		nb := make(map[timetable.StationID]struct{}, len(g.out[s])+len(g.in[s]))
		for _, a := range g.out[s] {
			nb[a.To] = struct{}{}
		}
		for _, a := range g.in[s] {
			nb[a.To] = struct{}{}
		}
		g.deg[s] = len(nb)
	}
	return g
}

// NumStations returns the number of stations.
func (g *Graph) NumStations() int { return g.n }

// Out returns the forward arcs of s (shared slice).
func (g *Graph) Out(s timetable.StationID) []Arc { return g.out[s] }

// In returns the reverse arcs of s (shared slice).
func (g *Graph) In(s timetable.StationID) []Arc { return g.in[s] }

// Degree returns the undirected degree of s (distinct neighbours).
func (g *Graph) Degree(s timetable.StationID) int { return g.deg[s] }

// Vias is the result of the via-station computation for a target station.
// The zero value is ready for (re)use with ComputeViasInto: a Vias retains
// its marks and slices across computations, so steady-state query traffic
// (one Vias per core.Workspace) runs the DFS without allocating.
type Vias struct {
	// Target is the station the DFS started from.
	Target timetable.StationID
	// Via are the transfer stations adjacent to the local set: every best
	// connection of a global query must pass through one of them.
	Via []timetable.StationID
	// Local are the non-transfer stations L with a simple path from L to
	// Target through non-transfer stations only (excluding Target itself).
	Local []timetable.StationID

	// Generation-stamped marks (cf. core.Workspace): a slot is set for the
	// current computation iff its stamp equals gen, so per-query reset is a
	// counter increment instead of a map allocation.
	gen     uint32
	seen    []uint32 // Target ∪ Local marks for O(1) locality tests
	viaMark []uint32 // dedup marks for Via collection
	stack   []timetable.StationID
}

// IsLocalSource reports whether an S→Target query is local, i.e. S lies in
// local(Target) ∪ {Target}. Global queries must cross a via station.
func (v *Vias) IsLocalSource(s timetable.StationID) bool {
	return int(s) >= 0 && int(s) < len(v.seen) && v.seen[s] == v.gen
}

// ComputeVias runs the reverse DFS from target, pruned at transfer
// stations, per Section 4 of the paper. isTransfer[s] marks S_trans. In the
// special case target ∈ S_trans, local(T) = ∅ and via(T) = {T}.
func (g *Graph) ComputeVias(target timetable.StationID, isTransfer []bool) *Vias {
	return g.ComputeViasInto(new(Vias), target, isTransfer)
}

// ComputeViasInto is the scratch-reusing form of ComputeVias: the DFS runs
// on v's retained marks and result slices and returns v. The previous
// contents of v are invalidated. Steady-state callers (core.Workspace)
// allocate nothing here beyond the first call's mark arrays.
func (g *Graph) ComputeViasInto(v *Vias, target timetable.StationID, isTransfer []bool) *Vias {
	if len(v.seen) < g.n {
		v.seen = make([]uint32, g.n)
		v.viaMark = make([]uint32, g.n)
		v.gen = 0
	}
	v.gen++
	if v.gen == 0 { // stamp wrap-around: wipe so stale marks cannot collide
		clear(v.seen)
		clear(v.viaMark)
		v.gen = 1
	}
	v.Target = target
	v.Via = v.Via[:0]
	v.Local = v.Local[:0]
	v.seen[target] = v.gen
	if isTransfer[target] {
		v.Via = append(v.Via, target)
		return v
	}
	stack := append(v.stack[:0], target)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.in[s] {
			p := a.To
			if isTransfer[p] {
				if v.viaMark[p] != v.gen {
					v.viaMark[p] = v.gen // touched, but pruned: do not descend
					v.Via = append(v.Via, p)
				}
				continue
			}
			if v.seen[p] != v.gen {
				v.seen[p] = v.gen
				v.Local = append(v.Local, p)
				stack = append(stack, p)
			}
		}
	}
	v.stack = stack
	slices.Sort(v.Via)
	slices.Sort(v.Local)
	return v
}

// SelectByDegree marks every station with undirected station-graph degree
// greater than k as a transfer station (the paper's "deg > k" strategy).
func (g *Graph) SelectByDegree(k int) []bool {
	marked := make([]bool, g.n)
	for s := 0; s < g.n; s++ {
		marked[s] = g.deg[s] > k
	}
	return marked
}

// SelectByContraction contracts stations in increasing order of importance
// until keep stations survive, and marks the survivors. Importance follows
// the contraction-hierarchies heuristic [12]: edge difference (shortcuts
// added minus arcs removed) plus the number of already-contracted
// neighbours, maintained lazily. Shortcuts preserve distances among the
// surviving stations, so later contraction decisions see faithful weights.
func (g *Graph) SelectByContraction(keep int) []bool {
	if keep < 0 {
		keep = 0
	}
	if keep >= g.n {
		marked := make([]bool, g.n)
		for i := range marked {
			marked[i] = true
		}
		return marked
	}
	c := newContractor(g)
	c.run(g.n - keep)
	marked := make([]bool, g.n)
	for s := 0; s < g.n; s++ {
		marked[s] = !c.contracted[s]
	}
	return marked
}

// contractor holds the mutable overlay graph during contraction.
type contractor struct {
	n          int
	out        []map[timetable.StationID]timeutil.Ticks
	in         []map[timetable.StationID]timeutil.Ticks
	contracted []bool
	delNbrs    []int // contracted-neighbour counters
}

func newContractor(g *Graph) *contractor {
	c := &contractor{
		n:          g.n,
		out:        make([]map[timetable.StationID]timeutil.Ticks, g.n),
		in:         make([]map[timetable.StationID]timeutil.Ticks, g.n),
		contracted: make([]bool, g.n),
		delNbrs:    make([]int, g.n),
	}
	for s := 0; s < g.n; s++ {
		c.out[s] = make(map[timetable.StationID]timeutil.Ticks, len(g.out[s]))
		c.in[s] = make(map[timetable.StationID]timeutil.Ticks, len(g.in[s]))
	}
	for s := 0; s < g.n; s++ {
		for _, a := range g.out[s] {
			c.out[s][a.To] = a.W
			c.in[a.To][timetable.StationID(s)] = a.W
		}
	}
	return c
}

// priority computes the lazy importance of station s: shortcuts needed
// minus arcs removed, plus deleted neighbours. Lower contracts earlier.
func (c *contractor) priority(s timetable.StationID) int {
	shortcuts := len(c.simulate(s))
	removed := len(c.out[s]) + len(c.in[s])
	return 2*(shortcuts-removed) + c.delNbrs[s]
}

// shortcut is a u→w edge bridging a contracted station.
type shortcut struct {
	u, w timetable.StationID
	wgt  timeutil.Ticks
}

// simulate returns the shortcuts contraction of s would add. A shortcut
// u→w of weight W(u,s)+W(s,w)
// is skipped when a witness path of at most that weight avoiding s exists;
// the witness search is a Dijkstra limited to a settle budget, erring on
// the side of adding a redundant shortcut (which preserves correctness).
func (c *contractor) simulate(s timetable.StationID) []shortcut {
	var res []shortcut
	for u, wu := range c.in[s] {
		if c.contracted[u] {
			continue
		}
		for w, ww := range c.out[s] {
			if c.contracted[w] || u == w {
				continue
			}
			need := wu + ww
			if !c.witness(u, w, s, need) {
				res = append(res, shortcut{u: u, w: w, wgt: need})
			}
		}
	}
	return res
}

// witnessSettleLimit bounds the witness Dijkstra; small limits only cause
// extra (harmless) shortcuts.
const witnessSettleLimit = 64

// witness reports whether a path u→w of weight ≤ cap exists that avoids
// the station being contracted.
func (c *contractor) witness(u, w, avoid timetable.StationID, cap timeutil.Ticks) bool {
	dist := map[timetable.StationID]timeutil.Ticks{u: 0}
	// A tiny pairing of slices acts as a scratch heap; witness searches are
	// so small that an indexed heap would cost more than it saves.
	type qi struct {
		s timetable.StationID
		d timeutil.Ticks
	}
	queue := []qi{{u, 0}}
	settled := 0
	for len(queue) > 0 && settled < witnessSettleLimit {
		// Extract min.
		mi := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].d < queue[mi].d {
				mi = i
			}
		}
		cur := queue[mi]
		queue[mi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if cur.d > dist[cur.s] {
			continue
		}
		settled++
		if cur.s == w {
			return cur.d <= cap
		}
		if cur.d > cap {
			continue
		}
		for to, wt := range c.out[cur.s] {
			if to == avoid || c.contracted[to] {
				continue
			}
			nd := cur.d + wt
			if d, ok := dist[to]; !ok || nd < d {
				dist[to] = nd
				queue = append(queue, qi{to, nd})
			}
		}
	}
	d, ok := dist[w]
	return ok && d <= cap
}

// contract removes s, applying its shortcuts.
func (c *contractor) contract(s timetable.StationID) {
	for _, sc := range c.simulate(s) {
		if old, ok := c.out[sc.u][sc.w]; !ok || sc.wgt < old {
			c.out[sc.u][sc.w] = sc.wgt
			c.in[sc.w][sc.u] = sc.wgt
		}
	}
	c.contracted[s] = true
	for u := range c.in[s] {
		if !c.contracted[u] {
			c.delNbrs[u]++
			delete(c.out[u], s)
		}
	}
	for w := range c.out[s] {
		if !c.contracted[w] {
			c.delNbrs[w]++
			delete(c.in[w], s)
		}
	}
}

// run contracts count stations in lazy priority order.
func (c *contractor) run(count int) {
	type entry struct {
		s    timetable.StationID
		prio int
	}
	// Initial priorities.
	entries := make([]entry, 0, c.n)
	for s := 0; s < c.n; s++ {
		entries = append(entries, entry{timetable.StationID(s), c.priority(timetable.StationID(s))})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].prio != entries[j].prio {
			return entries[i].prio < entries[j].prio
		}
		return entries[i].s < entries[j].s
	})
	// Lazy heap emulation over a sorted slice: re-evaluate the head; if it
	// no longer has the smallest priority, re-insert and retry. The slice
	// is small (stations, not nodes), so O(n log n) passes are fine.
	contractedCount := 0
	for contractedCount < count && len(entries) > 0 {
		head := entries[0]
		entries = entries[1:]
		if c.contracted[head.s] {
			continue
		}
		cur := c.priority(head.s)
		if len(entries) > 0 && cur > entries[0].prio {
			// Re-insert at the right position (lazy update).
			pos := sort.Search(len(entries), func(i int) bool { return entries[i].prio >= cur })
			entries = append(entries, entry{})
			copy(entries[pos+1:], entries[pos:])
			entries[pos] = entry{head.s, cur}
			continue
		}
		c.contract(head.s)
		contractedCount++
	}
}

// CountMarked returns the number of true entries; a convenience for
// logging selection results.
func CountMarked(marked []bool) int {
	n := 0
	for _, m := range marked {
		if m {
			n++
		}
	}
	return n
}

// String renders selection statistics.
func SelectionString(marked []bool) string {
	return fmt.Sprintf("%d/%d transfer stations", CountMarked(marked), len(marked))
}

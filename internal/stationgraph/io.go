package stationgraph

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// Station-graph section body (little endian), the SecStationGraph payload of
// the snapshot container (docs/SNAPSHOT_FORMAT.md):
//
//	n        int32            number of stations
//	offsets  [n+1]int32       CSR offsets into the forward arc array
//	arcs     [offsets[n]]{to int32, w int32}
//
// Only the forward adjacency is stored; the reverse adjacency and the degree
// array are derived on load, so the section stays flat and mmap-friendly.

// WriteSection serializes the station graph as a snapshot section body (no
// magic, no checksum — the snapshot container frames and checksums it).
func WriteSection(w io.Writer, g *Graph) error {
	put := func(v int32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := put(int32(g.n)); err != nil {
		return err
	}
	off := int32(0)
	for s := 0; s < g.n; s++ {
		if err := put(off); err != nil {
			return err
		}
		off += int32(len(g.out[s]))
	}
	if err := put(off); err != nil {
		return err
	}
	for s := 0; s < g.n; s++ {
		for _, a := range g.out[s] {
			if err := put(int32(a.To)); err != nil {
				return err
			}
			if err := put(int32(a.W)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadSection parses a station-graph section body, rebuilding the reverse
// adjacency and the degree array from the stored forward CSR.
func ReadSection(r io.Reader) (*Graph, error) {
	get := func() (int32, error) {
		var v int32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("stationgraph: reading station count: %w", err)
	}
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("stationgraph: implausible station count %d", n)
	}
	offsets := make([]int32, n+1)
	for i := range offsets {
		if offsets[i], err = get(); err != nil {
			return nil, fmt.Errorf("stationgraph: reading offsets: %w", err)
		}
		if offsets[i] < 0 || (i > 0 && offsets[i] < offsets[i-1]) {
			return nil, fmt.Errorf("stationgraph: offsets not non-decreasing at %d", i)
		}
	}
	m := offsets[n]
	if m > 1<<30 {
		return nil, fmt.Errorf("stationgraph: implausible arc count %d", m)
	}
	g := &Graph{n: int(n), out: make([][]Arc, n), in: make([][]Arc, n)}
	arcs := make([]Arc, m)
	for i := range arcs {
		to, err := get()
		if err != nil {
			return nil, fmt.Errorf("stationgraph: reading arc %d: %w", i, err)
		}
		w, err := get()
		if err != nil {
			return nil, fmt.Errorf("stationgraph: reading arc %d: %w", i, err)
		}
		if to < 0 || to >= n {
			return nil, fmt.Errorf("stationgraph: arc %d targets station %d of %d", i, to, n)
		}
		if w < 0 {
			return nil, fmt.Errorf("stationgraph: arc %d has negative weight %d", i, w)
		}
		arcs[i] = Arc{To: timetable.StationID(to), W: timeutil.Ticks(w)}
	}
	for s := 0; s < int(n); s++ {
		g.out[s] = arcs[offsets[s]:offsets[s+1]:offsets[s+1]]
		for i := 1; i < len(g.out[s]); i++ {
			if g.out[s][i].To <= g.out[s][i-1].To {
				return nil, fmt.Errorf("stationgraph: station %d arcs not strictly sorted", s)
			}
		}
	}
	for s := 0; s < int(n); s++ {
		for _, a := range g.out[s] {
			g.in[a.To] = append(g.in[a.To], Arc{To: timetable.StationID(s), W: a.W})
		}
	}
	for s := 0; s < int(n); s++ {
		sort.Slice(g.in[s], func(i, j int) bool { return g.in[s][i].To < g.in[s][j].To })
	}
	g.deg = make([]int, n)
	nb := make(map[timetable.StationID]struct{})
	for s := 0; s < int(n); s++ {
		clear(nb)
		for _, a := range g.out[s] {
			nb[a.To] = struct{}{}
		}
		for _, a := range g.in[s] {
			nb[a.To] = struct{}{}
		}
		g.deg[s] = len(nb)
	}
	return g, nil
}

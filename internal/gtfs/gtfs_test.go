package gtfs

import (
	"os"
	"path/filepath"
	"testing"

	"transit/internal/timeutil"
)

func writeFeed(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func validFeed() map[string]string {
	return map[string]string{
		"stops.txt": "stop_id,stop_name,stop_lat,stop_lon\n" +
			"A,Alpha,21.3,-157.8\n" +
			"B,Beta,21.35,-157.9\n" +
			"C,Gamma,21.4,-157.95\n",
		"trips.txt": "route_id,service_id,trip_id\n" +
			"r1,wk,t1\n" +
			"r1,wk,t2\n",
		"stop_times.txt": "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
			"t1,08:00:00,08:00:00,A,1\n" +
			"t1,08:10:00,08:11:00,B,2\n" +
			"t1,08:20:00,08:20:00,C,3\n" +
			"t2,09:00:00,09:00:00,A,1\n" +
			"t2,09:10:00,09:11:00,B,2\n" +
			"t2,09:20:00,09:20:00,C,3\n",
	}
}

func TestLoadValidFeed(t *testing.T) {
	dir := writeFeed(t, validFeed())
	tt, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumStations() != 3 || tt.NumTrains() != 2 || tt.NumConnections() != 4 {
		t.Fatalf("sizes: %v", tt.Stats())
	}
	// Both trips share the station sequence → one route.
	if len(tt.Routes()) != 1 {
		t.Fatalf("routes = %d, want 1", len(tt.Routes()))
	}
	c := tt.Connections[0]
	if c.Dep != 480 || c.Arr != 490 {
		t.Fatalf("first hop times: %+v", c)
	}
	// Dwell at B: departs 08:11.
	c = tt.Connections[1]
	if c.Dep != 491 || c.Arr != 500 {
		t.Fatalf("second hop times: %+v", c)
	}
	if tt.Stations[0].Name != "Alpha" || tt.Stations[0].Transfer != DefaultTransfer {
		t.Fatalf("station meta wrong: %+v", tt.Stations[0])
	}
}

func TestLoadTransfers(t *testing.T) {
	files := validFeed()
	files["transfers.txt"] = "from_stop_id,to_stop_id,transfer_type,min_transfer_time\n" +
		"A,A,2,300\n" + // 300 s → 5 min
		"B,B,2,90\n" + // 90 s → 2 min (rounded up)
		"Z,Z,2,60\n" // unknown stop: ignored
	dir := writeFeed(t, files)
	tt, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Stations[0].Transfer != 5 {
		t.Fatalf("A transfer = %d, want 5", tt.Stations[0].Transfer)
	}
	if tt.Stations[1].Transfer != 2 {
		t.Fatalf("B transfer = %d, want 2", tt.Stations[1].Transfer)
	}
}

func TestLoadPastMidnight(t *testing.T) {
	files := validFeed()
	files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
		"t1,23:50:00,23:50:00,A,1\n" +
		"t1,24:10:00,24:10:00,B,2\n" +
		"t2,25:00:00,25:00:00,A,1\n" +
		"t2,25:30:00,25:30:00,B,2\n"
	dir := writeFeed(t, files)
	tt, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := tt.Connections[0]
	if c.Dep != 1430 || c.Arr != 1450 {
		t.Fatalf("overnight hop: %+v", c)
	}
	// 25:00 wraps to 01:00 as a departure time point.
	c = tt.Connections[1]
	if c.Dep != 60 || c.Arr != 90 {
		t.Fatalf("wrapped hop: %+v", c)
	}
}

func TestLoadUnsortedStopSequence(t *testing.T) {
	files := validFeed()
	files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
		"t1,08:20:00,08:20:00,C,30\n" +
		"t1,08:00:00,08:00:00,A,10\n" +
		"t1,08:10:00,08:11:00,B,20\n" +
		"t2,09:00:00,09:00:00,A,1\n" +
		"t2,09:20:00,09:20:00,B,2\n"
	dir := writeFeed(t, files)
	tt, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Connections[0].From != 0 || tt.Connections[0].To != 1 {
		t.Fatalf("sequence sorting wrong: %+v", tt.Connections[0])
	}
}

func TestLoadErrors(t *testing.T) {
	t.Run("missing file", func(t *testing.T) {
		if _, err := Load(t.TempDir()); err == nil {
			t.Fatal("empty dir accepted")
		}
	})
	t.Run("missing column", func(t *testing.T) {
		files := validFeed()
		files["stops.txt"] = "stop_name\nAlpha\n"
		if _, err := Load(writeFeed(t, files)); err == nil {
			t.Fatal("missing stop_id accepted")
		}
	})
	t.Run("duplicate stop", func(t *testing.T) {
		files := validFeed()
		files["stops.txt"] = "stop_id\nA\nA\n"
		if _, err := Load(writeFeed(t, files)); err == nil {
			t.Fatal("duplicate stop accepted")
		}
	})
	t.Run("unknown stop in stop_times", func(t *testing.T) {
		files := validFeed()
		files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
			"t1,08:00:00,08:00:00,NOPE,1\n" +
			"t1,08:10:00,08:10:00,B,2\n"
		if _, err := Load(writeFeed(t, files)); err == nil {
			t.Fatal("unknown stop accepted")
		}
	})
	t.Run("bad time", func(t *testing.T) {
		files := validFeed()
		files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
			"t1,notatime,08:00:00,A,1\n" +
			"t1,08:10:00,08:10:00,B,2\n"
		if _, err := Load(writeFeed(t, files)); err == nil {
			t.Fatal("bad time accepted")
		}
	})
	t.Run("time travel", func(t *testing.T) {
		files := validFeed()
		files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
			"t1,08:00:00,08:00:00,A,1\n" +
			"t1,07:00:00,07:00:00,B,2\n"
		if _, err := Load(writeFeed(t, files)); err == nil {
			t.Fatal("arrival before departure accepted")
		}
	})
}

func TestLoadSkipsSingleStopTrips(t *testing.T) {
	files := validFeed()
	files["stop_times.txt"] = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n" +
		"t1,08:00:00,08:00:00,A,1\n" + // single stop: no connections
		"t2,09:00:00,09:00:00,A,1\n" +
		"t2,09:10:00,09:10:00,B,2\n"
	dir := writeFeed(t, files)
	tt, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tt.NumConnections() != 1 {
		t.Fatalf("connections = %d, want 1", tt.NumConnections())
	}
}

func TestNormalizeGTFSTime(t *testing.T) {
	if normalizeGTFSTime("08:15:42") != "08:15" {
		t.Fatal("seconds not stripped")
	}
	if normalizeGTFSTime(" 08:15 ") != "08:15" {
		t.Fatal("whitespace not handled")
	}
	got, err := timeutil.ParseClock(normalizeGTFSTime("25:10:00"))
	if err != nil || got != 1510 {
		t.Fatal("past-midnight GTFS time broken")
	}
}

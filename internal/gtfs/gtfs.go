// Package gtfs loads a minimal subset of the GTFS feed format — the format
// of the paper's three public inputs (Oahu, Los Angeles, Washington D.C.
// via Google Transit Data Feeds) — into a timetable. It reads stops.txt,
// trips.txt and stop_times.txt from a directory, plus transfers.txt when
// present for minimum transfer times. Calendar handling is deliberately
// simple: all trips are assumed to belong to one service day, matching the
// paper's periodic-timetable model.
package gtfs

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"transit/internal/timetable"
	"transit/internal/timeutil"
)

// DefaultTransfer is the minimum transfer time assumed for stops without a
// transfers.txt entry, in minutes.
const DefaultTransfer timeutil.Ticks = 2

// Load reads a GTFS directory into a validated timetable.
func Load(dir string) (*timetable.Timetable, error) {
	stops, err := readTable(filepath.Join(dir, "stops.txt"), []string{"stop_id"})
	if err != nil {
		return nil, err
	}
	trips, err := readTable(filepath.Join(dir, "trips.txt"), []string{"trip_id"})
	if err != nil {
		return nil, err
	}
	stopTimes, err := readTable(filepath.Join(dir, "stop_times.txt"),
		[]string{"trip_id", "departure_time", "arrival_time", "stop_id", "stop_sequence"})
	if err != nil {
		return nil, err
	}

	b := timetable.NewBuilder(timeutil.NewPeriod(timeutil.DayMinutes))
	stopID := make(map[string]timetable.StationID, len(stops.rows))
	for _, row := range stops.rows {
		id := row[stops.col["stop_id"]]
		if _, dup := stopID[id]; dup {
			return nil, fmt.Errorf("gtfs: duplicate stop_id %q", id)
		}
		name := id
		if c, ok := stops.col["stop_name"]; ok && row[c] != "" {
			name = row[c]
		}
		var x, y float64
		if c, ok := stops.col["stop_lon"]; ok {
			x, _ = strconv.ParseFloat(row[c], 64)
		}
		if c, ok := stops.col["stop_lat"]; ok {
			y, _ = strconv.ParseFloat(row[c], 64)
		}
		stopID[id] = b.AddStationAt(name, DefaultTransfer, x, y)
	}

	// Optional transfers.txt: min_transfer_time is in seconds. Same-stop
	// entries set the station's minimum transfer time; entries between
	// distinct stops become footpaths (walking links).
	if transfers, err := readTable(filepath.Join(dir, "transfers.txt"), []string{"from_stop_id"}); err == nil {
		for _, row := range transfers.rows {
			from, ok := stopID[row[transfers.col["from_stop_id"]]]
			if !ok {
				continue
			}
			var to timetable.StationID = -1
			if c, okc := transfers.col["to_stop_id"]; okc {
				if t, ok2 := stopID[row[c]]; ok2 {
					to = t
				}
			}
			c, okc := transfers.col["min_transfer_time"]
			if !okc {
				continue
			}
			secs, err := strconv.Atoi(row[c])
			if err != nil || secs < 0 {
				continue
			}
			minutes := timeutil.Ticks((secs + 59) / 60)
			if to < 0 || to == from {
				b.SetTransfer(from, minutes)
			} else {
				b.AddFootpath(from, to, minutes)
			}
		}
	} else if !os.IsNotExist(unwrapPathError(err)) {
		return nil, err
	}

	// Group stop_times by trip, ordered by stop_sequence.
	type stopEvent struct {
		seq  int
		stop timetable.StationID
		arr  timeutil.Ticks
		dep  timeutil.Ticks
	}
	events := make(map[string][]stopEvent)
	for i, row := range stopTimes.rows {
		tripID := row[stopTimes.col["trip_id"]]
		seq, err := strconv.Atoi(row[stopTimes.col["stop_sequence"]])
		if err != nil {
			return nil, fmt.Errorf("gtfs: stop_times row %d: bad stop_sequence %q", i+2, row[stopTimes.col["stop_sequence"]])
		}
		sid, ok := stopID[row[stopTimes.col["stop_id"]]]
		if !ok {
			return nil, fmt.Errorf("gtfs: stop_times row %d: unknown stop_id %q", i+2, row[stopTimes.col["stop_id"]])
		}
		arr, err := timeutil.ParseClock(normalizeGTFSTime(row[stopTimes.col["arrival_time"]]))
		if err != nil {
			return nil, fmt.Errorf("gtfs: stop_times row %d: %v", i+2, err)
		}
		dep, err := timeutil.ParseClock(normalizeGTFSTime(row[stopTimes.col["departure_time"]]))
		if err != nil {
			return nil, fmt.Errorf("gtfs: stop_times row %d: %v", i+2, err)
		}
		events[tripID] = append(events[tripID], stopEvent{seq: seq, stop: sid, arr: arr, dep: dep})
	}

	// Emit connections per trip in trips.txt order for determinism.
	for _, row := range trips.rows {
		tripID := row[trips.col["trip_id"]]
		evs, ok := events[tripID]
		if !ok || len(evs) < 2 {
			continue // trip without usable stop sequence
		}
		// Insertion sort by stop_sequence (GTFS sequences are short).
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && evs[j-1].seq > evs[j].seq; j-- {
				evs[j-1], evs[j] = evs[j], evs[j-1]
			}
		}
		z := b.AddTrain(tripID)
		for h := 0; h+1 < len(evs); h++ {
			from, to := evs[h], evs[h+1]
			if to.arr < from.dep {
				return nil, fmt.Errorf("gtfs: trip %q arrives before departing between sequences %d and %d",
					tripID, from.seq, to.seq)
			}
			if from.stop == to.stop {
				continue // degenerate repeated stop
			}
			day := timeutil.DayMinutes
			depPoint := from.dep % day
			arrAbs := depPoint + (to.arr - from.dep)
			b.AddConnection(z, from.stop, to.stop, depPoint, arrAbs)
		}
	}
	return b.Build()
}

// normalizeGTFSTime strips GTFS's HH:MM:SS seconds field, rounding down to
// whole minutes (the model's default tick).
func normalizeGTFSTime(s string) string {
	s = strings.TrimSpace(s)
	parts := strings.Split(s, ":")
	if len(parts) == 3 {
		return parts[0] + ":" + parts[1]
	}
	return s
}

// table is a parsed CSV file with a header index.
type table struct {
	col  map[string]int
	rows [][]string
}

func readTable(path string, required []string) (*table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	r.TrimLeadingSpace = true
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("gtfs: %s: %v", filepath.Base(path), err)
	}
	t := &table{col: make(map[string]int, len(header))}
	for i, h := range header {
		t.col[strings.TrimSpace(strings.TrimPrefix(h, "\ufeff"))] = i
	}
	for _, req := range required {
		if _, ok := t.col[req]; !ok {
			return nil, fmt.Errorf("gtfs: %s: missing required column %q", filepath.Base(path), req)
		}
	}
	for {
		row, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gtfs: %s: %v", filepath.Base(path), err)
		}
		if len(row) < len(t.col) {
			// Pad ragged rows so column lookups stay in range.
			padded := make([]string, len(t.col))
			copy(padded, row)
			row = padded
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}

func unwrapPathError(err error) error {
	if pe, ok := err.(*os.PathError); ok {
		return pe.Err
	}
	return err
}

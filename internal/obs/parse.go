package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series value. Name is the full sample name
// (including a _bucket/_sum/_count suffix for histogram samples).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family with its metadata and samples in
// input order.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a fully parsed scrape.
type Exposition struct {
	Families map[string]*Family
}

// Value returns the value of the family's single unlabeled sample.
func (e *Exposition) Value(name string) (float64, bool) {
	f, ok := e.Families[name]
	if !ok {
		return 0, false
	}
	for _, s := range f.Samples {
		if len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramSnapshot reconstructs a Snapshot from a histogram family's
// cumulative _bucket/_sum/_count samples, selecting the series whose
// non-le labels equal want (nil or empty selects the unlabeled series).
func (f *Family) HistogramSnapshot(want map[string]string) (Snapshot, bool) {
	if f.Type != "histogram" {
		return Snapshot{}, false
	}
	match := func(labels map[string]string) bool {
		n := 0
		for k, v := range labels {
			if k == "le" {
				continue
			}
			if want[k] != v {
				return false
			}
			n++
		}
		return n == len(want)
	}
	type edge struct {
		le  float64
		cum uint64
	}
	var (
		edges []edge
		snap  Snapshot
	)
	for _, s := range f.Samples {
		if !match(s.Labels) {
			continue
		}
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				return Snapshot{}, false
			}
			edges = append(edges, edge{le: le, cum: uint64(s.Value)})
		case f.Name + "_sum":
			snap.Sum = s.Value
		case f.Name + "_count":
			snap.Count = uint64(s.Value)
		}
	}
	if len(edges) == 0 {
		return Snapshot{}, false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	var prev uint64
	for _, e := range edges {
		if !math.IsInf(e.le, 1) {
			snap.Bounds = append(snap.Bounds, e.le)
		}
		snap.Counts = append(snap.Counts, e.cum-prev)
		prev = e.cum
	}
	return snap, true
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Parse reads a text-format exposition strictly: every sample must belong
// to a family announced by a preceding # TYPE line, metadata lines must
// not repeat, duplicate series are rejected, and histogram families must
// have monotone cumulative buckets ending in a +Inf bucket that agrees
// with _count. Anything malformed is an error, not a skip — the parser is
// the test oracle for the registry's writer and the scrape path of the
// load generator.
func Parse(r io.Reader) (*Exposition, error) {
	e := &Exposition{Families: make(map[string]*Family)}
	seen := make(map[string]bool) // sample name + canonical label set
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseMeta(line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineno, err)
			}
			continue
		}
		if err := e.parseSample(line, seen); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Exposition) parseMeta(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q (only # HELP and # TYPE allowed)", line)
	}
	name := fields[2]
	switch fields[1] {
	case "HELP":
		f := e.family(name)
		if f.Help != "" {
			return fmt.Errorf("duplicate # HELP for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("# HELP for %s after its samples", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if help == "" {
			return fmt.Errorf("empty # HELP for %s", name)
		}
		f.Help = help
		return nil
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed # TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", fields[3], name)
		}
		f := e.family(name)
		if f.Type != "" {
			return fmt.Errorf("duplicate # TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("# TYPE for %s after its samples", name)
		}
		f.Type = fields[3]
		return nil
	default:
		return fmt.Errorf("malformed comment %q (only # HELP and # TYPE allowed)", line)
	}
}

func (e *Exposition) family(name string) *Family {
	f, ok := e.Families[name]
	if !ok {
		f = &Family{Name: name}
		e.Families[name] = f
	}
	return f
}

// familyOf maps a sample name to its declaring family: exact match, or the
// base name of a histogram's _bucket/_sum/_count samples.
func (e *Exposition) familyOf(sample string) (*Family, error) {
	if f, ok := e.Families[sample]; ok && f.Type != "" {
		return f, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := e.Families[base]; ok && f.Type == "histogram" {
			return f, nil
		}
	}
	return nil, fmt.Errorf("sample %s has no preceding # TYPE declaration", sample)
}

func (e *Exposition) parseSample(line string, seen map[string]bool) error {
	name := line
	rest := ""
	labels := map[string]string{}
	if i := strings.IndexAny(line, "{ "); i < 0 {
		return fmt.Errorf("malformed sample %q", line)
	} else if line[i] == '{' {
		name = line[:i]
		var err error
		if labels, rest, err = parseLabels(line[i:]); err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	} else {
		name, rest = line[:i], line[i:]
	}
	if name == "" {
		return fmt.Errorf("malformed sample %q", line)
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 { // optional trailing timestamp
		return fmt.Errorf("sample %s: malformed value %q", name, rest)
	}
	v, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, parts[0])
	}
	f, err := e.familyOf(name)
	if err != nil {
		return err
	}
	id := seriesID(name, labels)
	if seen[id] {
		return fmt.Errorf("duplicate series %s", id)
	}
	seen[id] = true
	f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: v})
	return nil
}

func seriesID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parseLabels consumes a {k="v",...} block and returns the remainder of
// the line.
func parseLabels(s string) (map[string]string, string, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, "", fmt.Errorf("missing label block")
	}
	labels := make(map[string]string)
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label block %q", s)
		}
		key := s[i : i+eq]
		if key == "" {
			return nil, "", fmt.Errorf("empty label name in %q", s)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %s in %q", key, s)
		}
		labels[key] = val.String()
	}
}

// validate runs the cross-sample checks: histogram bucket consistency per
// series group.
func (e *Exposition) validate() error {
	for name, f := range e.Families {
		if f.Type == "" {
			return fmt.Errorf("obs: family %s has metadata but no # TYPE", name)
		}
		if f.Type != "histogram" {
			continue
		}
		// Group buckets by their non-le label set.
		groups := make(map[string][]Sample)
		counts := make(map[string]uint64)
		for _, s := range f.Samples {
			rest := make(map[string]string, len(s.Labels))
			for k, v := range s.Labels {
				if k != "le" {
					rest[k] = v
				}
			}
			id := seriesID(name, rest)
			switch s.Name {
			case name + "_bucket":
				groups[id] = append(groups[id], s)
			case name + "_count":
				counts[id] = uint64(s.Value)
			}
		}
		for id, buckets := range groups {
			sort.Slice(buckets, func(i, j int) bool {
				a, _ := parseLe(buckets[i].Labels["le"])
				b, _ := parseLe(buckets[j].Labels["le"])
				return a < b
			})
			var prev float64
			for _, b := range buckets {
				if _, err := parseLe(b.Labels["le"]); err != nil {
					return fmt.Errorf("obs: histogram %s: bad le %q", id, b.Labels["le"])
				}
				if b.Value < prev {
					return fmt.Errorf("obs: histogram %s: non-monotone cumulative buckets", id)
				}
				prev = b.Value
			}
			last := buckets[len(buckets)-1]
			if le, _ := parseLe(last.Labels["le"]); !math.IsInf(le, 1) {
				return fmt.Errorf("obs: histogram %s: missing +Inf bucket", id)
			}
			if uint64(last.Value) != counts[id] {
				return fmt.Errorf("obs: histogram %s: +Inf bucket %g disagrees with _count %d",
					id, last.Value, counts[id])
			}
		}
	}
	return nil
}

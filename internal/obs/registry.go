package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format with one # HELP / # TYPE header per family.
// Registration happens at server construction; after that scrapes only
// read, so the mutex is uncontended in the steady state.
//
// Duplicate families (same name, different help or type) and duplicate
// series (same name and label pair) panic at registration: metrics are
// wired once at startup and a collision is a programming error the strict
// parser would otherwise report on every scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
}

type series struct {
	key, val string // one optional label pair; key == "" means unlabeled
	sample   func() float64
	hist     *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

func (r *Registry) register(name, help, typ, key, val string, s *series) {
	if name == "" || strings.ContainsAny(name, " \n{}") {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ || f.help != help {
		panic("obs: conflicting registration of " + name)
	} else if key == "" {
		panic("obs: duplicate unlabeled series " + name)
	}
	for _, prev := range f.series {
		if prev.key == key && prev.val == val {
			panic(fmt.Sprintf("obs: duplicate series %s{%s=%q}", name, key, val))
		}
	}
	s.key, s.val = key, val
	f.series = append(f.series, s)
}

// Counter registers a monotonically increasing value read via sample.
func (r *Registry) Counter(name, help string, sample func() float64) {
	r.register(name, help, "counter", "", "", &series{sample: sample})
}

// Gauge registers a point-in-time value read via sample.
func (r *Registry) Gauge(name, help string, sample func() float64) {
	r.register(name, help, "gauge", "", "", &series{sample: sample})
}

// LabeledCounter registers one series of a counter family carrying a
// single label pair. All series of a family must share the label key.
func (r *Registry) LabeledCounter(name, help, key, val string, sample func() float64) {
	r.register(name, help, "counter", key, val, &series{sample: sample})
}

// LabeledGauge registers one series of a gauge family carrying a single
// label pair. All series of a family must share the label key.
func (r *Registry) LabeledGauge(name, help, key, val string, sample func() float64) {
	r.register(name, help, "gauge", key, val, &series{sample: sample})
}

// NewHistogram registers and returns an unlabeled histogram family.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", "", "", &series{hist: h})
	return h
}

// NewLabeledHistogram registers one labeled series of a histogram family
// and returns its histogram.
func (r *Registry) NewLabeledHistogram(name, help, key, val string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", key, val, &series{hist: h})
	return h
}

// Write renders every family, sorted by name, in text exposition format.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		ser := append([]*series(nil), f.series...)
		sort.Slice(ser, func(i, j int) bool { return ser[i].val < ser[j].val })
		for _, s := range ser {
			if s.hist != nil {
				writeHistogram(&b, f.name, s)
				continue
			}
			if s.key == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(s.sample()))
			} else {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", f.name, s.key, s.val, formatValue(s.sample()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	prefix := "" // rendered label pair before le, e.g. `endpoint="arrival",`
	if s.key != "" {
		prefix = fmt.Sprintf("%s=%q,", s.key, s.val)
	}
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatValue(snap.Bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, prefix, le, cum)
	}
	if s.key == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(snap.Sum))
		fmt.Fprintf(b, "%s_count %d\n", name, snap.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", name, s.key, s.val, formatValue(snap.Sum))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, s.key, s.val, snap.Count)
	}
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Write(w)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

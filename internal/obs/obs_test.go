package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics: 0.5,1 → bucket le=1; 1.5,2 → le=2; 3,4 → le=4; 5,100 → +Inf.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+5+100 {
		t.Errorf("Sum = %g", s.Sum)
	}
}

func TestHistogramNaNAndNegative(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1 (NaN dropped, negative clamped)", s.Count)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("negative value should clamp into the first bucket")
	}
	if s.Sum != 0 {
		t.Fatalf("Sum = %g, want 0", s.Sum)
	}
}

func TestHistogramAscendingPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines and checks that no observation is lost. Run under -race this
// doubles as the data-race proof for the lock-free write path.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram(DurationBounds())
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%1000) / 1e6)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d (lost observations)", s.Count, writers*perW)
	}
	var wantSum float64
	for i := 0; i < perW; i++ {
		wantSum += float64(i%1000) / 1e6
	}
	wantSum *= writers
	if math.Abs(s.Sum-wantSum) > 1e-9*wantSum {
		t.Fatalf("Sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestSnapshotSubAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	before := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in bucket le=2
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 100 {
		t.Fatalf("delta Count = %d, want 100", d.Count)
	}
	q := d.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Fatalf("median %g outside containing bucket (1,2]", q)
	}
	if got := (Snapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %g, want 0", got)
	}
	// +Inf bucket quantile returns the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("+Inf quantile = %g, want 1", got)
	}
}

func TestSnapshotSubMismatch(t *testing.T) {
	a := NewHistogram([]float64{1}).Snapshot()
	b := NewHistogram([]float64{1, 2}).Snapshot()
	if d := b.Sub(a); d.Count != 0 || d.Counts != nil {
		t.Fatalf("mismatched layouts should return zero Snapshot, got %+v", d)
	}
}

func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.", func() float64 { return 42 })
	r.Gauge("test_epoch", "Current epoch.", func() float64 { return 3 })
	r.LabeledCounter("test_hits_total", "Hits by endpoint.", "endpoint", "arrival", func() float64 { return 7 })
	r.LabeledCounter("test_hits_total", "Hits by endpoint.", "endpoint", "profile", func() float64 { return 9 })
	h := r.NewHistogram("test_latency_seconds", "Latency.", DurationBounds())
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(20 * time.Millisecond)
	hk := r.NewLabeledHistogram("test_kind_seconds", "Per kind.", "kind", "matrix", CountBounds())
	hk.Observe(100)

	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse:\n%s\nerror: %v", b.String(), err)
	}
	if v, ok := exp.Value("test_requests_total"); !ok || v != 42 {
		t.Fatalf("test_requests_total = %g, %v", v, ok)
	}
	if v, ok := exp.Value("test_epoch"); !ok || v != 3 {
		t.Fatalf("test_epoch = %g, %v", v, ok)
	}
	f := exp.Families["test_latency_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatal("missing histogram family")
	}
	snap, ok := f.HistogramSnapshot(nil)
	if !ok {
		t.Fatal("HistogramSnapshot failed")
	}
	if snap.Count != 2 {
		t.Fatalf("reconstructed Count = %d, want 2", snap.Count)
	}
	if math.Abs(snap.Sum-0.023) > 1e-9 {
		t.Fatalf("reconstructed Sum = %g, want 0.023", snap.Sum)
	}
	fk := exp.Families["test_kind_seconds"]
	if fk == nil {
		t.Fatal("missing labeled histogram family")
	}
	if _, ok := fk.HistogramSnapshot(map[string]string{"kind": "matrix"}); !ok {
		t.Fatal("labeled HistogramSnapshot failed")
	}
	if _, ok := fk.HistogramSnapshot(map[string]string{"kind": "nope"}); ok {
		t.Fatal("HistogramSnapshot matched a nonexistent label value")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate unlabeled", func(r *Registry) {
			r.Counter("a_total", "A.", func() float64 { return 0 })
			r.Counter("a_total", "A.", func() float64 { return 0 })
		}},
		{"conflicting help", func(r *Registry) {
			r.Counter("a_total", "A.", func() float64 { return 0 })
			r.LabeledCounter("a_total", "B.", "k", "v", func() float64 { return 0 })
		}},
		{"conflicting type", func(r *Registry) {
			r.Counter("a_total", "A.", func() float64 { return 0 })
			r.Gauge("a_total", "A.", func() float64 { return 0 })
		}},
		{"duplicate label pair", func(r *Registry) {
			r.LabeledCounter("a_total", "A.", "k", "v", func() float64 { return 0 })
			r.LabeledCounter("a_total", "A.", "k", "v", func() float64 { return 0 })
		}},
		{"invalid name", func(r *Registry) {
			r.Counter("bad name", "A.", func() float64 { return 0 })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"sample without TYPE", "foo_total 1\n"},
		{"duplicate series", "# TYPE a_total counter\na_total 1\na_total 2\n"},
		{"duplicate labeled series", "# TYPE a_total counter\na_total{k=\"v\"} 1\na_total{k=\"v\"} 2\n"},
		{"duplicate TYPE", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n"},
		{"TYPE after samples", "# TYPE a_total counter\na_total 1\n# TYPE b gauge\n# HELP a_total late\n# TYPE a_total counter\n"},
		{"bad value", "# TYPE a_total counter\na_total x\n"},
		{"unknown type", "# TYPE a_total widget\na_total 1\n"},
		{"arbitrary comment", "#!comment\n"},
		{"unterminated labels", "# TYPE a_total counter\na_total{k=\"v 1\n"},
		{"non-monotone histogram", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"missing +Inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n"},
		{"count disagrees", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("expected parse error for:\n%s", tc.in)
			}
		})
	}
}

func TestParseAcceptsWellFormed(t *testing.T) {
	in := `# HELP up Whether the server is up.
# TYPE up gauge
up 1
# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="+Inf"} 3
h_sum 12.5
h_count 3
`
	exp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("up"); !ok || v != 1 {
		t.Fatalf("up = %g, %v", v, ok)
	}
	snap, ok := exp.Families["h"].HistogramSnapshot(nil)
	if !ok || snap.Count != 3 || snap.Counts[0] != 1 || snap.Counts[1] != 2 {
		t.Fatalf("snapshot = %+v, %v", snap, ok)
	}
}

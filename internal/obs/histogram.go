// Package obs is the server's dependency-free observability layer:
// lock-free log-bucketed histograms, a small metric registry that renders
// the Prometheus text exposition format (0.0.4), and a strict parser for
// that format shared by tests and the load-generator scrape path.
//
// Everything here is allocation-free on the hot path: observing a value
// into a histogram is one binary search over a fixed bound slice plus two
// atomic operations. The write side never takes a lock; scrapes read the
// counters with plain atomic loads, so a snapshot taken during a burst of
// writes may be torn by a handful of in-flight observations — the same
// weak-consistency contract Prometheus client libraries offer.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bound, lock-free histogram: one atomic counter per
// bucket plus a CAS-maintained float64 sum. Bounds are upper bucket
// boundaries (le semantics) in ascending order; an implicit +Inf bucket
// catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The slice is retained; callers must not mutate it afterwards.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// DurationBounds is the shared log2-spaced latency bucket layout: 2^-20 s
// (~1 µs) through 2^6 s (64 s), one bucket per power of two. 27 buckets
// cover the full range from a cache hit to a pathological stall with ≤2×
// relative error per bucket.
func DurationBounds() []float64 {
	b := make([]float64, 0, 27)
	for e := -20; e <= 6; e++ {
		b = append(b, math.Ldexp(1, e))
	}
	return b
}

// CountBounds is the log2-spaced layout for work counters (settled labels,
// queue pops): 1 through 2^24.
func CountBounds() []float64 {
	b := make([]float64, 0, 25)
	for e := 0; e <= 24; e++ {
		b = append(b, math.Ldexp(1, e))
	}
	return b
}

// Observe records one value. Negative values clamp to zero; NaN is
// dropped. Allocation-free and safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot is a point-in-time copy of a histogram's state. Counts are
// per-bucket (not cumulative), len(Counts) == len(Bounds)+1 with the last
// entry the +Inf bucket.
type Snapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the current state. Taken during concurrent writes it may
// miss observations that are mid-flight, but it never tears a single
// bucket counter.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Sub returns the observation delta s−prev (for scrape-interval
// percentiles). Mismatched layouts or counter resets return the zero
// Snapshot.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	if len(s.Counts) != len(prev.Counts) {
		return Snapshot{}
	}
	out := Snapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts)), Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		if s.Counts[i] < prev.Counts[i] {
			return Snapshot{}
		}
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
		out.Count += out.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket — the standard Prometheus histogram_quantile
// estimate. An empty snapshot returns 0; quantiles landing in the +Inf
// bucket return the largest finite bound.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: no upper edge to interpolate to
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

package pq

import (
	"math/rand"
	"sort"
	"testing"

	"transit/internal/timeutil"
)

func TestBasicOrdering(t *testing.T) {
	h := New(10)
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	if h.Len() != 3 || h.Empty() {
		t.Fatal("Len/Empty wrong")
	}
	if h.MinKey() != 10 {
		t.Fatalf("MinKey = %d", h.MinKey())
	}
	for want := timeutil.Ticks(10); want <= 30; want += 10 {
		item, key := h.PopMin()
		if key != want || item != int32(want/10) {
			t.Fatalf("PopMin = (%d,%d), want (%d,%d)", item, key, want/10, want)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty")
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(10)
	h.Push(1, 100)
	h.Push(2, 50)
	if !h.Contains(1) || h.Key(1) != 100 {
		t.Fatal("Contains/Key wrong")
	}
	if !h.Push(1, 20) {
		t.Fatal("decrease-key reported no change")
	}
	if h.Key(1) != 20 {
		t.Fatalf("Key(1) = %d after decrease", h.Key(1))
	}
	// Increase attempt is a no-op.
	if h.Push(1, 500) {
		t.Fatal("increase-key must be a no-op")
	}
	if h.Key(1) != 20 {
		t.Fatal("no-op changed the key")
	}
	item, _ := h.PopMin()
	if item != 1 {
		t.Fatalf("PopMin = %d, want 1", item)
	}
}

func TestDuplicateSameKey(t *testing.T) {
	h := New(4)
	h.Push(0, 7)
	if h.Push(0, 7) {
		t.Fatal("equal-key push must be a no-op")
	}
	if h.Len() != 1 {
		t.Fatal("duplicate inserted")
	}
}

func TestClearAndReuse(t *testing.T) {
	h := New(8)
	for i := int32(0); i < 8; i++ {
		h.Push(i, timeutil.Ticks(i))
	}
	h.Clear()
	if !h.Empty() {
		t.Fatal("Clear did not empty the heap")
	}
	for i := int32(0); i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d still present after Clear", i)
		}
	}
	h.Push(3, 3)
	if item, key := h.PopMin(); item != 3 || key != 3 {
		t.Fatal("reuse after Clear broken")
	}
}

func TestPanics(t *testing.T) {
	h := New(4)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PopMin", func() { h.PopMin() })
	mustPanic("MinKey", func() { h.MinKey() })
	mustPanic("Key", func() { h.Key(0) })
}

// Exercise both arities against a reference sort with random workloads
// including decrease-keys.
func TestRandomAgainstReference(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(int) *Heap
	}{{"binary", New}, {"quaternary", New4}} {
		t.Run(mk.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.Intn(300)
				h := mk.new(n)
				best := make(map[int32]timeutil.Ticks)
				ops := 3 * n
				for o := 0; o < ops; o++ {
					it := int32(rng.Intn(n))
					key := timeutil.Ticks(rng.Intn(10000))
					h.Push(it, key)
					if cur, ok := best[it]; !ok || key < cur {
						best[it] = key
					}
				}
				if h.Len() != len(best) {
					t.Fatalf("trial %d: Len=%d want %d", trial, h.Len(), len(best))
				}
				type kv struct {
					item int32
					key  timeutil.Ticks
				}
				var want []kv
				for it, k := range best {
					want = append(want, kv{it, k})
				}
				sort.Slice(want, func(i, j int) bool { return want[i].key < want[j].key })
				prev := timeutil.Ticks(-1)
				got := make(map[int32]timeutil.Ticks)
				for !h.Empty() {
					it, k := h.PopMin()
					if k < prev {
						t.Fatalf("trial %d: keys popped out of order", trial)
					}
					prev = k
					got[it] = k
				}
				for it, k := range best {
					if got[it] != k {
						t.Fatalf("trial %d: item %d popped with key %d, want %d", trial, it, got[it], k)
					}
				}
			}
		})
	}
}

// Interleave pops and pushes to stress sift-down paths.
func TestInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := New4(1000)
	inQueue := make(map[int32]bool)
	lastPopped := timeutil.Ticks(0)
	for step := 0; step < 20000; step++ {
		if h.Empty() || rng.Intn(3) > 0 {
			it := int32(rng.Intn(1000))
			// Keys are monotone-ish, as in Dijkstra, so ordering violations
			// would be caught by the lastPopped check below.
			key := lastPopped + timeutil.Ticks(rng.Intn(100))
			h.Push(it, key)
			inQueue[it] = true
		} else {
			it, k := h.PopMin()
			if k < lastPopped {
				t.Fatalf("step %d: popped %d after %d", step, k, lastPopped)
			}
			if !inQueue[it] {
				t.Fatalf("step %d: popped item %d never pushed", step, it)
			}
			delete(inQueue, it)
			lastPopped = k
		}
	}
}

// Reset must invalidate every queued item in O(1) and allow the heap to be
// reused — including growing to a larger item universe — without any stale
// position leaking into the next generation.
func TestResetReuse(t *testing.T) {
	h := New(8)
	h.Push(3, 30)
	h.Push(5, 50)
	h.Reset(8)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("heap not empty after Reset")
	}
	for it := int32(0); it < 8; it++ {
		if h.Contains(it) {
			t.Fatalf("stale item %d survives Reset", it)
		}
	}
	// Re-push the same items with different keys; old positions must not
	// alias.
	h.Push(5, 7)
	h.Push(3, 9)
	if it, key := h.PopMin(); it != 5 || key != 7 {
		t.Fatalf("PopMin = (%d,%d) after Reset, want (5,7)", it, key)
	}
	// Growing Reset.
	h.Reset(100)
	h.Push(99, 1)
	if !h.Contains(99) || h.Key(99) != 1 {
		t.Fatal("grown heap broken")
	}
	if h.Contains(3) {
		t.Fatal("stale item survives growing Reset")
	}
}

// A reused heap must behave exactly like a fresh one over many random
// generations (cross-validated against sorting).
func TestResetGenerationsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := New4(64)
	for gen := 0; gen < 200; gen++ {
		h.Reset(64)
		n := 1 + rng.Intn(40)
		keys := map[int32]timeutil.Ticks{}
		for i := 0; i < n; i++ {
			it := int32(rng.Intn(64))
			k := timeutil.Ticks(rng.Intn(1000))
			if old, ok := keys[it]; !ok || k < old {
				keys[it] = k
			}
			h.Push(it, k)
		}
		var want []int
		for _, k := range keys {
			want = append(want, int(k))
		}
		sort.Ints(want)
		for i := 0; !h.Empty(); i++ {
			it, key := h.PopMin()
			if int(key) != want[i] {
				t.Fatalf("gen %d: pop %d = %d, want %d", gen, i, key, want[i])
			}
			if key != keys[it] {
				t.Fatalf("gen %d: item %d popped with key %d, want %d", gen, it, key, keys[it])
			}
		}
	}
}

// Clear keeps its documented contract (empty, reusable) via the generation
// mechanism.
func TestClearIsReset(t *testing.T) {
	h := New(4)
	h.Push(0, 5)
	h.Push(1, 3)
	h.Clear()
	if !h.Empty() || h.Contains(0) || h.Contains(1) {
		t.Fatal("Clear did not empty the heap")
	}
	h.Push(1, 8)
	if it, key := h.PopMin(); it != 1 || key != 8 {
		t.Fatalf("PopMin = (%d,%d) after Clear", it, key)
	}
}

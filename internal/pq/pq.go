// Package pq implements the addressable d-ary min-heaps used as priority
// queues by all search algorithms in this repository. The paper's
// implementation uses a binary heap; a 4-ary variant is provided for the
// ablation benchmarks.
//
// Items are dense non-negative integers supplied by the caller (node IDs, or
// (node, connection) pair indexes); each item can be in the queue at most
// once, and Push doubles as decrease-key, matching how Dijkstra-style
// algorithms use their queues.
//
// Heaps are built to be reused across queries: Reset invalidates the
// position index in O(1) by bumping a generation stamp instead of sweeping
// the O(maxItems) pos array, so a pooled heap costs nothing to hand to the
// next query (the paper's per-thread data-structure reuse).
package pq

import (
	"transit/internal/timeutil"
)

// Heap is an addressable d-ary min-heap keyed by timeutil.Ticks.
// The zero value is not usable; construct with New or New4.
type Heap struct {
	arity int
	keys  []timeutil.Ticks
	items []int32
	// pos maps item → heap slot + 1. An entry is meaningful only when its
	// posGen stamp equals gen; anything else reads as "absent". Reset bumps
	// gen, invalidating every entry at once.
	pos    []int32
	posGen []uint32
	gen    uint32
}

// New returns a binary heap for items in [0, maxItems).
func New(maxItems int) *Heap { return newHeap(2, maxItems) }

// New4 returns a 4-ary heap for items in [0, maxItems). Shallower trees
// trade more comparisons per level for fewer cache misses; the ablation
// bench quantifies the difference on this workload.
func New4(maxItems int) *Heap { return newHeap(4, maxItems) }

func newHeap(arity, maxItems int) *Heap {
	return &Heap{
		arity:  arity,
		pos:    make([]int32, maxItems),
		posGen: make([]uint32, maxItems),
		gen:    1,
	}
}

// Len returns the number of queued items.
func (h *Heap) Len() int { return len(h.keys) }

// Empty reports whether the queue is empty.
func (h *Heap) Empty() bool { return len(h.keys) == 0 }

// Clear removes all items in O(1) without releasing memory, so a heap can
// be reused across queries.
func (h *Heap) Clear() { h.Reset(len(h.pos)) }

// Reset empties the heap and re-dimensions it for items in [0, maxItems),
// growing the position index when needed but never shrinking it. Unlike a
// sweep over pos, Reset is O(1) (amortized, ignoring growth): it bumps the
// generation stamp, so every stale pos entry reads as absent.
func (h *Heap) Reset(maxItems int) {
	h.keys = h.keys[:0]
	h.items = h.items[:0]
	if maxItems > len(h.pos) {
		h.pos = make([]int32, maxItems)
		h.posGen = make([]uint32, maxItems)
		h.gen = 1
		return
	}
	h.gen++
	if h.gen == 0 { // stamp wrap-around: one real sweep every 2^32 resets
		clear(h.posGen)
		h.gen = 1
	}
}

// slot returns the heap slot + 1 of an item, or 0 when absent.
func (h *Heap) slot(item int32) int32 {
	if h.posGen[item] != h.gen {
		return 0
	}
	return h.pos[item]
}

// Contains reports whether the item is currently queued.
func (h *Heap) Contains(item int32) bool { return h.slot(item) != 0 }

// Key returns the current key of a queued item; it panics when the item is
// absent, which always indicates a logic error in the caller.
func (h *Heap) Key(item int32) timeutil.Ticks {
	p := h.slot(item)
	if p == 0 {
		panic("pq: Key of absent item")
	}
	return h.keys[p-1]
}

// Push inserts the item with the given key, or decreases its key when the
// item is already queued with a larger key. Pushing an already-queued item
// with a key that is not smaller is a no-op, mirroring the
// min(key, tentative) update of the algorithms. It reports whether the
// queue changed.
func (h *Heap) Push(item int32, key timeutil.Ticks) bool {
	if p := h.slot(item); p != 0 {
		i := int(p - 1)
		if key >= h.keys[i] {
			return false
		}
		h.keys[i] = key
		h.up(i)
		return true
	}
	h.keys = append(h.keys, key)
	h.items = append(h.items, item)
	i := len(h.keys) - 1
	h.pos[item] = int32(i + 1)
	h.posGen[item] = h.gen
	h.up(i)
	return true
}

// PopMin removes and returns the item with the smallest key. It panics on
// an empty queue.
func (h *Heap) PopMin() (item int32, key timeutil.Ticks) {
	if len(h.keys) == 0 {
		panic("pq: PopMin on empty queue")
	}
	item, key = h.items[0], h.keys[0]
	h.pos[item] = 0
	last := len(h.keys) - 1
	if last > 0 {
		h.keys[0], h.items[0] = h.keys[last], h.items[last]
		h.pos[h.items[0]] = 1
	}
	h.keys = h.keys[:last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// MinKey returns the smallest key without removing it; it panics on an
// empty queue.
func (h *Heap) MinKey() timeutil.Ticks {
	if len(h.keys) == 0 {
		panic("pq: MinKey on empty queue")
	}
	return h.keys[0]
}

func (h *Heap) up(i int) {
	k, it := h.keys[i], h.items[i]
	for i > 0 {
		parent := (i - 1) / h.arity
		if h.keys[parent] <= k {
			break
		}
		h.keys[i], h.items[i] = h.keys[parent], h.items[parent]
		h.pos[h.items[i]] = int32(i + 1)
		i = parent
	}
	h.keys[i], h.items[i] = k, it
	h.pos[it] = int32(i + 1)
}

func (h *Heap) down(i int) {
	n := len(h.keys)
	k, it := h.keys[i], h.items[i]
	for {
		first := i*h.arity + 1
		if first >= n {
			break
		}
		best := first
		last := first + h.arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.keys[c] < h.keys[best] {
				best = c
			}
		}
		if h.keys[best] >= k {
			break
		}
		h.keys[i], h.items[i] = h.keys[best], h.items[best]
		h.pos[h.items[i]] = int32(i + 1)
		i = best
	}
	h.keys[i], h.items[i] = k, it
	h.pos[it] = int32(i + 1)
}

package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"testing"
)

func TestMemRoundTrip(t *testing.T) {
	m := NewMem()
	if err := WriteFile(m, "dir/a.txt", []byte("hello"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(m, "dir/a.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want hello", got)
	}
	fi, err := m.Stat("dir/a.txt")
	if err != nil || fi.Size() != 5 {
		t.Fatalf("Stat = %v, %v; want size 5", fi, err)
	}
	if _, err := m.Stat("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat missing = %v, want ErrNotExist", err)
	}
}

func TestMemRenameAndGlob(t *testing.T) {
	m := NewMem()
	if err := WriteFile(m, "a.tmp1", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "a.tmp2", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := m.Glob("a.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("Glob = %v, want 2 entries", names)
	}
	if err := m.Rename("a.tmp1", "a.dat"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := m.Stat("a.tmp1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name still present: %v", err)
	}
	if _, err := m.Stat("a.dat"); err != nil {
		t.Fatalf("new name missing: %v", err)
	}
	if err := m.Remove("a.tmp2"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestMemInjectedError(t *testing.T) {
	m := NewMem()
	// Learn the step count of the scenario fault-free.
	if err := WriteFile(m, "f", []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	steps := m.Steps()
	if steps != 4 { // open, write, sync, close
		t.Fatalf("steps = %d, want 4", steps)
	}
	for k := 1; k <= steps; k++ {
		m.SetPlan(Plan{FailStep: k})
		if err := WriteFile(m, "g", []byte("abc"), 0o644); !errors.Is(err, ErrInjected) {
			t.Fatalf("step %d: err = %v, want ErrInjected", k, err)
		}
		m.SetPlan(Plan{})
	}
	// Custom error surfaces as-is.
	boom := errors.New("boom")
	m.SetPlan(Plan{FailStep: 2, Err: boom})
	if err := WriteFile(m, "h", []byte("abc"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMemShortWrite(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.SetPlan(Plan{FailStep: 1, ShortWrite: true})
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want 4 (half the buffer)", n)
	}
}

func TestMemCrashRevertsToSynced(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable.")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("unsynced-tail")); err != nil {
		t.Fatal(err)
	}
	// Crash on the next operation (SetPlan restarts the step count).
	m.SetPlan(Plan{FailStep: 1, Crash: true})
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync after crash plan = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("Crashed() = false after crash fired")
	}
	// Everything fails until reboot, including fresh opens.
	if _, err := m.OpenFile("g", os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("OpenFile while crashed = %v, want ErrCrashed", err)
	}
	m.Reboot()
	got, err := ReadFile(m, "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len("durable.") || string(got[:8]) != "durable." {
		t.Fatalf("after reboot content = %q, want synced prefix %q intact", got, "durable.")
	}
	if len(got) > len("durable.")+len("unsynced-tail") {
		t.Fatalf("after reboot content %q longer than ever written", got)
	}
	// The pre-crash handle is permanently dead.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write = %v, want ErrCrashed", err)
	}
}

func TestMemCrashDuringWriteKeepsPrefixOnly(t *testing.T) {
	// A crash mid-Write must never surface more bytes than were written,
	// and the synced prefix must survive exactly.
	for seed := 1; seed <= 8; seed++ {
		m := NewMem()
		f, err := m.OpenFile("f", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("base")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		// Pad the step counter so the torn-tail fraction (seeded by the
		// crash step) varies across iterations.
		m.SetPlan(Plan{FailStep: seed, Crash: true})
		pad, err := m.OpenFile("pad", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatal(err)
		}
		for i := 2; i < seed && err == nil; i++ {
			_, err = pad.Write([]byte{byte(i)})
		}
		if !m.Crashed() {
			if _, werr := f.Write([]byte("TAIL")); !errors.Is(werr, ErrCrashed) {
				t.Fatalf("seed %d: err = %v, want ErrCrashed", seed, werr)
			}
		}
		m.Reboot()
		got, _ := ReadFile(m, "f")
		if string(got[:4]) != "base" {
			t.Fatalf("seed %d: synced prefix lost: %q", seed, got)
		}
		if len(got) > 8 {
			t.Fatalf("seed %d: content %q longer than written", seed, got)
		}
	}
}

func TestMemRenameDurability(t *testing.T) {
	// A synced file renamed into place must survive a crash immediately
	// after the rename (metadata ops are modelled durable).
	m := NewMem()
	if err := WriteFile(m, "f.tmp", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	m.SetPlan(Plan{FailStep: 1, Crash: true})
	_, _ = m.OpenFile("poke", os.O_RDWR|os.O_CREATE, 0o644)
	m.Reboot()
	got, err := ReadFile(m, "f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("after crash: %q, %v; want payload under final name", got, err)
	}
	if _, err := m.Stat("f.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("tmp name resurrected after crash: %v", err)
	}
}

func TestCreateTemp(t *testing.T) {
	m := NewMem()
	f1, err := CreateTemp(m, "d", "x.snap.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CreateTemp(m, "d", "x.snap.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if f1.Name() == f2.Name() {
		t.Fatalf("CreateTemp returned duplicate name %q", f1.Name())
	}
	names, err := m.Glob("d/x.snap.tmp*")
	if err != nil || len(names) != 2 {
		t.Fatalf("Glob = %v, %v; want both temps", names, err)
	}
}

func TestDiskFS(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/f"
	if err := WriteFile(Disk, path, []byte("on disk"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(Disk, path)
	if err != nil || string(got) != "on disk" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := Disk.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(3, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(f)
	if string(rest) != "disk" {
		t.Fatalf("seek+read = %q", rest)
	}
	f.Close()
	if err := Disk.Rename(path, dir+"/g"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	names, err := Disk.Glob(dir + "/*")
	if err != nil || len(names) != 1 {
		t.Fatalf("Glob = %v, %v", names, err)
	}
	if err := Disk.Remove(dir + "/g"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

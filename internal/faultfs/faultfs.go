// Package faultfs is the injectable filesystem seam under the durability
// paths of the serving stack: live-state persistence (internal/live), the
// delay write-ahead journal (internal/wal) and catalog tenant loading
// (internal/catalog) perform all file I/O through the FS interface.
// Production code runs on Disk, a thin veneer over the os package; tests
// swap in Mem, an in-memory filesystem with an explicit durability model
// that can inject short writes, failed Sync/Rename/Close, ENOSPC, and a
// simulated process crash at any I/O step — the machinery behind the
// crash-safety property tests (docs/RELIABILITY.md).
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FS is the slice of filesystem the durability paths need. Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags the
	// durability paths use (O_RDONLY, O_RDWR, O_CREATE, O_EXCL, O_TRUNC).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// Glob lists the paths matching pattern (filepath.Match syntax on the
	// final path element).
	Glob(pattern string) ([]string, error)
}

// File is one open file of an FS.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes written data to durable storage. Data not synced (or
	// implied durable by a later Sync) may vanish in a crash.
	Sync() error
	// Truncate cuts (or zero-extends) the file to size bytes.
	Truncate(size int64) error
	// Name returns the path the file was opened as.
	Name() string
}

// Disk is the production FS: the real filesystem via the os package.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(name string) error             { return os.Remove(name) }
func (diskFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
func (diskFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// tempSeq makes CreateTemp names unique within a process.
var tempSeq atomic.Uint64

// CreateTemp creates a new file in dir with a name built from pattern
// (os.CreateTemp semantics: the last '*' is replaced by a unique suffix),
// opened for reading and writing. Callers are responsible for removing the
// file when done — or, after a crash, at the next boot (live.CleanupTemps).
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix := pattern, ""
	for i := len(pattern) - 1; i >= 0; i-- {
		if pattern[i] == '*' {
			prefix, suffix = pattern[:i], pattern[i+1:]
			break
		}
	}
	pid := os.Getpid()
	for try := 0; try < 10000; try++ {
		name := filepath.Join(dir, fmt.Sprintf("%s%d_%d%s", prefix, pid, tempSeq.Add(1), suffix))
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if errors.Is(err, fs.ErrExist) {
			continue
		}
		return f, err
	}
	return nil, fmt.Errorf("faultfs: could not create a unique temp file from %q in %s", pattern, dir)
}

// ReadFile reads the whole of name through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to name through fsys (create or truncate), syncing
// before close so the content is durable.
func WriteFile(fsys FS, name string, data []byte, perm fs.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the default error a fault Plan returns at its FailStep —
// it stands in for ENOSPC, EIO and friends.
var ErrInjected = errors.New("faultfs: injected I/O failure")

// ErrCrashed is returned by every operation after a Plan-triggered crash
// and by operations on handles that predate a Reboot: the simulated
// process is dead (or was restarted) and must not observe the filesystem.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Plan is one injected fault. Steps count the write-side operations of a
// Mem — OpenFile, Write, Sync, Close, Rename, Remove, Truncate — in
// execution order starting at 1; pure reads (Read, Seek, Stat, Glob) are
// free.
type Plan struct {
	// FailStep is the 1-based step at which the fault fires; 0 disables
	// the plan.
	FailStep int
	// Err is returned at FailStep (ErrInjected when nil). Ignored when
	// Crash is set.
	Err error
	// Crash, instead of a plain error, kills the simulated process at
	// FailStep: the failing operation takes partial effect (a Write keeps
	// a prefix of its bytes, as a torn write would), and every subsequent
	// operation fails with ErrCrashed until Reboot.
	Crash bool
	// ShortWrite makes a plain (non-crash) failing Write commit a prefix
	// of its buffer before returning Err, modelling a short write.
	ShortWrite bool
}

// Mem is an in-memory FS with an explicit durability model: every file
// tracks its current content and the content made durable by the last
// Sync. A simulated crash reverts each file to its durable content — plus,
// for append-only growth, a deterministic partial tail, modelling a torn
// write that partially reached the platter. Metadata operations (create,
// rename, remove) are modelled as immediately durable.
//
// Paths are flat: any slash-separated name works without mkdir.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile
	plan    Plan
	step    int
	crashed bool
	gen     int // bumped by Reboot; stale handles die
}

type memFile struct {
	data    []byte // current content
	durable []byte // content guaranteed to survive a crash
}

// NewMem returns an empty in-memory filesystem with no fault plan.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile)}
}

// SetPlan arms the fault plan and resets the step counter.
func (m *Mem) SetPlan(p Plan) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.plan = p
	m.step = 0
}

// Steps returns the number of write-side operations performed since the
// last SetPlan/Reboot — run a scenario once fault-free to learn how many
// crash points it has.
func (m *Mem) Steps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.step
}

// Crashed reports whether the plan's crash has fired.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Reboot simulates the restart after a crash: every file drops to its
// durable content, open handles from before the reboot fail permanently,
// the plan is cleared, and the filesystem accepts operations again.
func (m *Mem) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = append([]byte(nil), f.durable...)
	}
	m.crashed = false
	m.plan = Plan{}
	m.step = 0
	m.gen++
}

// op accounts one write-side operation and fires the plan when its step
// comes up. It reports the error the operation must return (nil = proceed)
// and, for a crashing or short Write of n bytes, how many bytes to commit
// first.
func (m *Mem) op(writeLen int) (commit int, err error) {
	if m.crashed {
		return 0, ErrCrashed
	}
	m.step++
	if m.plan.FailStep == 0 || m.step != m.plan.FailStep {
		return writeLen, nil
	}
	if m.plan.Crash {
		m.crashed = true
		// A torn write: a deterministic prefix of the buffer reaches the
		// file before the lights go out.
		return writeLen * (m.step % 3) / 3, ErrCrashed
	}
	err = m.plan.Err
	if err == nil {
		err = ErrInjected
	}
	if m.plan.ShortWrite {
		return writeLen / 2, err
	}
	return 0, err
}

// readCheck guards read-side operations: free of step accounting, but dead
// after a crash.
func (m *Mem) readCheck() error {
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// snapSuffix computes the torn tail kept at crash time: when data grew
// append-only beyond durable, a deterministic fraction of the unsynced
// suffix survives (the page-cache pages that happened to be flushed).
func tornTail(f *memFile, seed int) []byte {
	if len(f.data) <= len(f.durable) {
		return nil
	}
	extra := f.data[len(f.durable):]
	if string(f.data[:len(f.durable)]) != string(f.durable) {
		return nil // rewritten prefix: only the synced content is trustworthy
	}
	keep := (seed * 7919) % (len(extra) + 1)
	return extra[:keep]
}

// crashNow finalizes the durable view at crash time, folding torn tails
// into the durable content so Reboot exposes them.
func (m *Mem) crashNow() {
	for _, f := range m.files {
		f.durable = append(append([]byte(nil), f.durable...), tornTail(f, m.step)...)
	}
}

func (m *Mem) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC) == 0 {
		// Pure read open: free.
		if err := m.readCheck(); err != nil {
			return nil, err
		}
	} else if _, err := m.op(0); err != nil {
		if m.crashed {
			m.crashNow()
		}
		return nil, err
	}
	f, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !ok:
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	return &memHandle{m: m, f: f, name: name, gen: m.gen,
		writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}, nil
}

func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.op(0); err != nil {
		if m.crashed {
			m.crashNow()
		}
		return err
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.op(0); err != nil {
		if m.crashed {
			m.crashNow()
		}
		return err
	}
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *Mem) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.readCheck(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return memInfo{name: filepath.Base(name), size: int64(len(f.data))}, nil
}

func (m *Mem) Glob(pattern string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.readCheck(); err != nil {
		return nil, err
	}
	var out []string
	for name := range m.files {
		ok, err := filepath.Match(pattern, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// memHandle is one open file of a Mem.
type memHandle struct {
	m        *Mem
	f        *memFile
	name     string
	gen      int
	pos      int64
	closed   bool
	writable bool
}

func (h *memHandle) stale() bool { return h.gen != h.m.gen || h.closed }

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return 0, ErrCrashed
	}
	if err := h.m.readCheck(); err != nil {
		return 0, err
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return 0, ErrCrashed
	}
	if !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	commit, err := h.m.op(len(p))
	n := h.commitLocked(p[:commit])
	if err != nil {
		if h.m.crashed {
			h.m.crashNow()
		}
		return n, err
	}
	return h.commitLocked(p[commit:]) + n, nil
}

// commitLocked writes p at the current position, extending with zeros when
// the position is past the end. Caller holds m.mu.
func (h *memHandle) commitLocked(p []byte) int {
	if len(p) == 0 {
		return 0
	}
	end := h.pos + int64(len(p))
	for int64(len(h.f.data)) < end {
		h.f.data = append(h.f.data, 0)
	}
	copy(h.f.data[h.pos:end], p)
	h.pos = end
	return len(p)
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return 0, ErrCrashed
	}
	if err := h.m.readCheck(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	if h.pos < 0 {
		h.pos = 0
	}
	return h.pos, nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if _, err := h.m.op(0); err != nil {
		if h.m.crashed {
			h.m.crashNow()
		}
		return err
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if _, err := h.m.op(0); err != nil {
		if h.m.crashed {
			h.m.crashNow()
		}
		return err
	}
	for int64(len(h.f.data)) < size {
		h.f.data = append(h.f.data, 0)
	}
	h.f.data = h.f.data[:size]
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if _, err := h.m.op(0); err != nil {
		if h.m.crashed {
			h.m.crashNow()
		}
		return err
	}
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.name }

type memInfo struct {
	name string
	size int64
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() fs.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }

package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{SettledConns: 1, PrunedConns: 2, QueuePushes: 3, QueuePops: 4, Relaxed: 5}
	b := Counters{SettledConns: 10, PrunedConns: 20, QueuePushes: 30, QueuePops: 40, Relaxed: 50}
	a.Add(b)
	if a.SettledConns != 11 || a.PrunedConns != 22 || a.QueuePushes != 33 || a.QueuePops != 44 || a.Relaxed != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if !strings.Contains(a.String(), "settled=11") {
		t.Fatalf("String = %q", a.String())
	}
}

func TestRunCriticalPath(t *testing.T) {
	r := Run{PerThread: []Counters{{SettledConns: 10}, {SettledConns: 30}, {SettledConns: 20}}}
	if r.MaxThreadSettled() != 30 {
		t.Fatalf("MaxThreadSettled = %d", r.MaxThreadSettled())
	}
	seq := Run{Total: Counters{SettledConns: 60}}
	if got := r.IdealSpeedup(&seq); got != 2.0 {
		t.Fatalf("IdealSpeedup = %f, want 2", got)
	}
	empty := Run{}
	if empty.IdealSpeedup(&seq) != 1 {
		t.Fatal("empty run speedup must be 1")
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	if a.MeanSettled() != 0 || a.MeanElapsed() != 0 || a.MeanMaxThreadSettled() != 0 {
		t.Fatal("empty aggregate means must be 0")
	}
	r1 := &Run{Total: Counters{SettledConns: 100}, PerThread: []Counters{{SettledConns: 60}, {SettledConns: 40}}, Elapsed: 2 * time.Millisecond}
	r2 := &Run{Total: Counters{SettledConns: 300}, PerThread: []Counters{{SettledConns: 200}, {SettledConns: 100}}, Elapsed: 4 * time.Millisecond}
	a.Observe(r1)
	a.Observe(r2)
	if a.Queries != 2 {
		t.Fatal("Queries wrong")
	}
	if a.MeanSettled() != 200 {
		t.Fatalf("MeanSettled = %f", a.MeanSettled())
	}
	if a.MeanMaxThreadSettled() != 130 {
		t.Fatalf("MeanMaxThreadSettled = %f", a.MeanMaxThreadSettled())
	}
	if a.MeanElapsed() != 3*time.Millisecond {
		t.Fatalf("MeanElapsed = %v", a.MeanElapsed())
	}
}

package stats

import "sync/atomic"

// Effort is an optional per-query counter block a caller threads through
// core.Options to see how much work a search did. Fields are atomic
// because one logical query may run its searches on several goroutines
// (matrix rows, parallel SPCS threads) sharing a single options value.
//
// The write side is a handful of atomic adds per *search*, not per settle
// step — orchestrators fold their already-collected Run counters in once
// at the end — so an attached Effort costs nothing measurable and, being
// caller-owned, keeps the query path allocation-free.
type Effort struct {
	// ConnsScanned counts edge relaxations (connections looked at).
	ConnsScanned atomic.Int64
	// LabelsSettled counts queue extractions that survived pruning and
	// relaxed their edges — the paper's "settled connections".
	LabelsSettled atomic.Int64
	// PrunedConns counts extractions discarded by self-pruning, stopping
	// criterion, distance-table or target pruning.
	PrunedConns atomic.Int64
	// PQPushes / PQPops count priority-queue operations.
	PQPushes atomic.Int64
	PQPops   atomic.Int64
	// CancelPolls counts cancel-stride checks of the Done channel.
	CancelPolls atomic.Int64
	// Rounds counts completed search executions folded into this block
	// (one per settle loop that ran; a matrix query adds one per row).
	Rounds atomic.Int64
}

// Observe folds one finished run into the effort block. Nil-safe: calling
// on a nil receiver is a no-op, so orchestrators can call it
// unconditionally.
func (e *Effort) Observe(r *Run) {
	if e == nil {
		return
	}
	e.ConnsScanned.Add(r.Total.Relaxed)
	e.LabelsSettled.Add(r.Total.SettledConns)
	e.PrunedConns.Add(r.Total.PrunedConns)
	e.PQPushes.Add(r.Total.QueuePushes)
	e.PQPops.Add(r.Total.QueuePops)
	e.CancelPolls.Add(r.Total.CancelPolls)
	e.Rounds.Add(1)
}

// Reset zeroes every counter so the block can be pooled across queries.
func (e *Effort) Reset() {
	e.ConnsScanned.Store(0)
	e.LabelsSettled.Store(0)
	e.PrunedConns.Store(0)
	e.PQPushes.Store(0)
	e.PQPops.Store(0)
	e.CancelPolls.Store(0)
	e.Rounds.Store(0)
}

// EffortSnapshot is a plain-value copy of an Effort block, shaped for JSON
// trace output and the slow-query log.
type EffortSnapshot struct {
	ConnsScanned  int64 `json:"conns_scanned"`
	LabelsSettled int64 `json:"labels_settled"`
	PrunedConns   int64 `json:"pruned_conns"`
	PQPushes      int64 `json:"pq_pushes"`
	PQPops        int64 `json:"pq_pops"`
	CancelPolls   int64 `json:"cancel_polls"`
	Rounds        int64 `json:"rounds"`
}

// Snapshot copies the current counter values. Nil-safe.
func (e *Effort) Snapshot() EffortSnapshot {
	if e == nil {
		return EffortSnapshot{}
	}
	return EffortSnapshot{
		ConnsScanned:  e.ConnsScanned.Load(),
		LabelsSettled: e.LabelsSettled.Load(),
		PrunedConns:   e.PrunedConns.Load(),
		PQPushes:      e.PQPushes.Load(),
		PQPops:        e.PQPops.Load(),
		CancelPolls:   e.CancelPolls.Load(),
		Rounds:        e.Rounds.Load(),
	}
}

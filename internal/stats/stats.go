// Package stats collects the work counters the paper reports: settled
// connections (queue extractions that were not pruned), total queue
// operations, and — for parallel runs — the per-thread maxima that bound
// achievable speed-up. Counters are plain values filled in by each
// algorithm run; they are never shared between goroutines (each thread owns
// its own Counters and a merge step aggregates).
package stats

import (
	"fmt"
	"time"
)

// Counters accumulates the work of one search (or one thread of a parallel
// search).
type Counters struct {
	// SettledConns counts queue extractions that passed self-pruning and
	// relaxed their edges; this is the paper's "settled connections".
	SettledConns int64
	// PrunedConns counts extractions discarded by self-pruning, stopping
	// criterion, distance-table or target pruning.
	PrunedConns int64
	// QueuePushes counts insert + decrease-key operations.
	QueuePushes int64
	// QueuePops counts extract-min operations.
	QueuePops int64
	// Relaxed counts edge relaxations.
	Relaxed int64
	// CancelPolls counts cancel-stride checks: how often the settle loop
	// looked at the Done channel. A measure of cancellation latency — the
	// loop can run for at most (stride × per-pop cost) after a cancel
	// before it notices.
	CancelPolls int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.SettledConns += other.SettledConns
	c.PrunedConns += other.PrunedConns
	c.QueuePushes += other.QueuePushes
	c.QueuePops += other.QueuePops
	c.Relaxed += other.Relaxed
	c.CancelPolls += other.CancelPolls
}

func (c Counters) String() string {
	return fmt.Sprintf("settled=%d pruned=%d pushes=%d pops=%d relaxed=%d",
		c.SettledConns, c.PrunedConns, c.QueuePushes, c.QueuePops, c.Relaxed)
}

// Run describes one complete query execution, possibly multi-threaded.
type Run struct {
	// Total aggregates all threads.
	Total Counters
	// PerThread holds each thread's counters (len 1 for sequential runs).
	PerThread []Counters
	// Elapsed is the wall-clock duration of the query.
	Elapsed time.Duration
}

// MaxThreadSettled returns the largest per-thread settled-connection count:
// the critical path that bounds parallel speed-up, since the final merge
// must wait for the slowest thread.
func (r *Run) MaxThreadSettled() int64 {
	var max int64
	for _, t := range r.PerThread {
		if t.SettledConns > max {
			max = t.SettledConns
		}
	}
	return max
}

// IdealSpeedup estimates the machine-independent speed-up of this parallel
// run over the given sequential baseline: baseline work divided by the
// critical-path work of the slowest thread. On a machine with enough cores
// and perfect memory scaling, wall-clock speed-up approaches this value.
func (r *Run) IdealSpeedup(sequential *Run) float64 {
	m := r.MaxThreadSettled()
	if m == 0 {
		return 1
	}
	return float64(sequential.Total.SettledConns) / float64(m)
}

// Aggregate sums a slice of runs into totals and mean elapsed time.
type Aggregate struct {
	Queries int
	Total   Counters
	// SumMaxThreadSettled accumulates each run's critical path.
	SumMaxThreadSettled int64
	SumElapsed          time.Duration
}

// Observe folds one run into the aggregate.
func (a *Aggregate) Observe(r *Run) {
	a.Queries++
	a.Total.Add(r.Total)
	a.SumMaxThreadSettled += r.MaxThreadSettled()
	a.SumElapsed += r.Elapsed
}

// MeanSettled returns average settled connections per query.
func (a *Aggregate) MeanSettled() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.Total.SettledConns) / float64(a.Queries)
}

// MeanElapsed returns the average query duration.
func (a *Aggregate) MeanElapsed() time.Duration {
	if a.Queries == 0 {
		return 0
	}
	return a.SumElapsed / time.Duration(a.Queries)
}

// MeanMaxThreadSettled returns the average critical path per query.
func (a *Aggregate) MeanMaxThreadSettled() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.SumMaxThreadSettled) / float64(a.Queries)
}

//go:build !race

package transit

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it because instrumentation
// changes allocation behavior.
const raceEnabled = false

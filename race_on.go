//go:build race

package transit

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true

package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"transit"
	"transit/internal/admit"
)

// blockFirstPlan installs a planHook that parks the first admitted search
// until release is closed; later searches pass through.
func blockFirstPlan(s *server) (entered, release chan struct{}) {
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	s.planHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	return entered, release
}

func pollUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestV1OverloadShedding(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.gate = admit.NewGate(1, time.Millisecond)
	entered, release := blockFirstPlan(s)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		first <- get(t, mux, "/v1/profile?from=0&to=1")
	}()
	<-entered // the single slot is now held by a running search

	for i := 0; i < 5; i++ {
		rec := get(t, mux, "/v1/arrival?from=0&to=1&depart=07:00")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("overloaded request %d: status %d, want 429", i, rec.Code)
		}
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Fatal("429 without Retry-After header")
		}
		assertErrorCode(t, rec, transit.CodeOverloaded)
	}
	// The legacy endpoints run through the same gate (plain-text errors).
	rec := get(t, mux, "/arrival?from=0&to=1&at=07:00")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("legacy overloaded: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("legacy 429 without Retry-After header")
	}

	close(release)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("admitted request: status %d body %s", rec.Code, rec.Body)
	}
	if got := s.gate.Shed(); got != 6 {
		t.Fatalf("Shed = %d, want 6", got)
	}
	mrec := get(t, mux, "/metrics")
	if !strings.Contains(mrec.Body.String(), "tpserver_shed_total 6") {
		t.Fatalf("metrics missing shed count:\n%s", mrec.Body)
	}
	if !strings.Contains(mrec.Body.String(), "tpserver_inflight 0") {
		t.Fatalf("metrics inflight not back to zero:\n%s", mrec.Body)
	}
}

func TestV1CacheCoalescing(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.cache = admit.NewCache(16, 0)
	entered, release := blockFirstPlan(s)

	const n = 8
	body := `{"from":0,"to":1,"depart":"07:40"}`
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader fills
		defer wg.Done()
		recs[0] = post(t, mux, "/v1/journey", body)
	}()
	<-entered
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(t, mux, "/v1/journey", body)
		}(i)
	}
	pollUntil(t, func() bool { return s.cache.Stats().Waiting == n-1 })
	close(release)
	wg.Wait()

	want := normalizeV1(t, recs[0].Body.Bytes())
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, rec.Code, rec.Body)
		}
		if got := normalizeV1(t, rec.Body.Bytes()); got != want {
			t.Fatalf("request %d body differs:\n%s\nwant:\n%s", i, got, want)
		}
	}
	st := s.cache.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Fatalf("cache stats = %+v, want 1 miss / %d coalesced", st, n-1)
	}
	mrec := get(t, mux, "/metrics")
	if !strings.Contains(mrec.Body.String(), "tpserver_cache_coalesced_total 7") {
		t.Fatalf("metrics missing coalesced count:\n%s", mrec.Body)
	}
}

func TestV1CacheEpochInvalidation(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.cache = admit.NewCache(16, 0)

	const q = "/v1/arrival?from=0&to=1&depart=07:50"
	r1 := get(t, mux, q)
	r2 := get(t, mux, q)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("status %d/%d, want 200/200", r1.Code, r2.Code)
	}
	if r1.Body.String() != r2.Body.String() {
		t.Fatalf("cached answer differs from fresh:\n%s\n%s", r1.Body, r2.Body)
	}
	if st := s.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats before bump = %+v, want 1 hit / 1 miss", st)
	}
	if !strings.Contains(r1.Body.String(), `"08:30"`) {
		t.Fatalf("expected 08:30 arrival before delay, got %s", r1.Body)
	}

	// Delay the 08:00 train by 20 minutes: epoch bumps, the cached 08:30
	// answer must never be served again.
	drec := post(t, mux, "/delays", `{"ops":[{"train":"h08","delay_min":20}]}`)
	if drec.Code != http.StatusOK {
		t.Fatalf("delays: status %d body %s", drec.Code, drec.Body)
	}
	r3 := get(t, mux, q)
	if r3.Code != http.StatusOK {
		t.Fatalf("post-bump status %d", r3.Code)
	}
	if !strings.Contains(r3.Body.String(), `"08:50"`) {
		t.Fatalf("stale cached answer served across epoch bump: %s", r3.Body)
	}
	if st := s.cache.Stats(); st.Misses != 2 {
		t.Fatalf("stats after bump = %+v, want 2 misses (recompute)", st)
	}

	// Byte-identical to a never-cached server with the same delay applied.
	s2, mux2 := serverFor(t, hourlyNetwork(t))
	if s2.cache != nil {
		t.Fatal("control server unexpectedly has a cache")
	}
	post(t, mux2, "/delays", `{"ops":[{"train":"h08","delay_min":20}]}`)
	fresh := get(t, mux2, q)
	// Normalized: the two answers come from independent searches, so the
	// query_ms timing field legitimately differs.
	if normalizeV1(t, r3.Body.Bytes()) != normalizeV1(t, fresh.Body.Bytes()) {
		t.Fatalf("cached-path answer differs from uncached:\n%s\n%s", r3.Body, fresh.Body)
	}
}

func TestV1PreCancelledNeverAdmitted(t *testing.T) {
	s, mux := serverFor(t, hourlyNetwork(t))
	s.gate = admit.NewGate(4, time.Millisecond)
	s.cache = admit.NewCache(16, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, url := range []string{"/v1/arrival?from=0&to=1&depart=07:00", "/arrival?from=0&to=1&at=07:00"} {
		req := httptest.NewRequest(http.MethodGet, url, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 499 {
			t.Fatalf("%s: status %d, want 499", url, rec.Code)
		}
	}
	if s.gate.Admitted() != 0 || s.gate.Shed() != 0 {
		t.Fatalf("pre-cancelled request touched the gate: admitted %d shed %d",
			s.gate.Admitted(), s.gate.Shed())
	}
	if st := s.cache.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("pre-cancelled request touched the cache: %+v", st)
	}
	if s.cancelled.Load() != 2 {
		t.Fatalf("cancelled metric = %d, want 2", s.cancelled.Load())
	}
}

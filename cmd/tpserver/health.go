// Health probes and panic isolation. GET /healthz is liveness — the
// process is up and the mux answers, nothing more. GET /readyz is
// readiness: whether this instance should receive traffic right now; it
// flips off before the admission gate drains on shutdown, so a load
// balancer stops routing here before in-flight queries are waited out.
// recoverPanics fences every handler: a panicking request becomes a typed
// 500 envelope and a tpserver_panics_total increment instead of a dead
// process, because one poisoned query must not take down the delay feed
// and every other tenant with it.
package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"

	"transit"
	apiv1 "transit/api/v1"
)

// Readiness states, in lifecycle order. Only readyServing answers /readyz
// with 200; the draining state exists so shutdown can take the instance
// out of rotation while queries still drain.
const (
	readyStarting int32 = iota
	readyServing
	readyDraining
)

func readyStatus(st int32) string {
	switch st {
	case readyServing:
		return "ready"
	case readyDraining:
		return "draining"
	default:
		return "starting"
	}
}

// readyz answers the readiness probe: 200 with the serving epoch while
// accepting traffic, 503 (starting or draining) otherwise. The body is a
// typed apiv1.HealthResponse either way, so probes and humans read the
// same thing.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	st := s.ready.Load()
	resp := apiv1.HealthResponse{Status: readyStatus(st)}
	w.Header().Set("Content-Type", "application/json")
	if st != readyServing {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	if s.follower != nil {
		// A replica is ready only once it is near the updater's epoch: a
		// load balancer must not route queries to a node serving last
		// hour's timetable. Lag is unknown until the first hello frame —
		// a replica that never reached its updater stays syncing.
		if lag, known := s.follower.Lag(); !known || lag > s.syncLag {
			resp.Status = "syncing"
			resp.LagEpochs = lag
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(resp)
			return
		}
	}
	resp.Epoch = s.defaultLive().Epoch
	json.NewEncoder(w).Encode(resp)
}

// recoverPanics wraps the whole mux: a handler panic is logged with its
// stack, counted (tpserver_panics_total), and answered with the /v1 error
// envelope under code "internal" — best-effort, since the handler may
// already have written headers. http.ErrAbortHandler passes through: it is
// net/http's own idiom for abandoning a response, not a defect.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			logger := s.logger
			if logger == nil {
				logger = slog.Default()
			}
			logger.Error("panic in handler",
				"method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(apiv1.NewErrorResponse(transit.NewError(
				transit.CodeInternal, "internal server error", fmt.Errorf("%v", rec))))
		}()
		next.ServeHTTP(w, r)
	})
}

// handler is the server's complete HTTP surface: the mux behind the panic
// fence. Everything the listener serves goes through here.
func (s *server) handler() http.Handler {
	return s.recoverPanics(newMux(s))
}

package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transit"
	"transit/internal/live"
)

// TestSnapshotBoot covers the -snapshot path: a preprocessed network written
// by tpgen -o (same API) boots a server that answers queries with its
// embedded distance table and serves delay updates on top.
func TestSnapshotBoot(t *testing.T) {
	n, err := transit.Generate("oahu", 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	pre, _, err := n.Preprocess(transit.TransferSelection{Fraction: 0.1}, transit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, state, err := loadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Preprocessed() {
		t.Fatal("snapshot boot lost the distance table")
	}
	if state.Epoch != 0 {
		t.Fatalf("fresh snapshot epoch %d, want 0", state.Epoch)
	}

	reg := live.NewRegistryAt(loaded, state, live.Config{Policy: live.ServeUnpruned})
	defer reg.Close()
	s := newServer(reg, 1)
	mux := newMux(s)

	rec := get(t, mux, "/arrival?from=0&to=5&at=08:15")
	if rec.Code != http.StatusOK {
		t.Fatalf("arrival status %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["reachable"] != true {
		t.Fatalf("arrival response: %v", out)
	}
	// The snapshot-booted server accepts delay batches like any other.
	rec = post(t, mux, "/delays", `{"ops":[{"route":0,"delay_min":5}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delays status %d: %s", rec.Code, rec.Body.String())
	}
	rec = get(t, mux, "/metrics")
	if !strings.Contains(rec.Body.String(), "tpserver_snapshot_epoch 1") {
		t.Fatalf("metrics missing epoch bump:\n%s", rec.Body.String())
	}

	// Corrupt and foreign files fail with a descriptive error, not a panic.
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSnapshotFile(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt snapshot: got %v, want a bad-magic error", err)
	}
	if _, _, err := loadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("missing snapshot file accepted")
	}
}

// TestPersistedStateWinsOverSnapshot mirrors main()'s startup precedence: a
// state file persisted at a later epoch is preferred over the base snapshot.
func TestPersistedStateWinsOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "net.snap")
	state := filepath.Join(dir, "state.snap")

	n := hourlyNetwork(t)
	writeSnap := func(path string, net *transit.Network, st transit.SnapshotState) {
		t.Helper()
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.WriteSnapshotState(f, st); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeSnap(base, n, transit.SnapshotState{})

	// Simulate a prior server run: two delay batches, then a persist.
	reg := live.NewRegistry(n, live.Config{Policy: live.ServeUnpruned})
	for i := 0; i < 2; i++ {
		if _, _, err := reg.Apply([]transit.DelayOp{{Train: "h08", Delay: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := reg.PersistFile(state); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	if !fileExists(state) || !fileExists(base) {
		t.Fatal("test files missing")
	}
	if fileExists(filepath.Join(dir, "nope.snap")) {
		t.Fatal("fileExists on a missing file")
	}

	resumed, st, err := loadSnapshotFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Fatalf("resumed epoch %d, want 2", st.Epoch)
	}
	reg2 := live.NewRegistryAt(resumed, st, live.Config{Policy: live.ServeUnpruned})
	defer reg2.Close()
	mux := newMux(newServer(reg2, 1))
	// 20 minutes of accumulated delay: 08:00 → 08:50 instead of 08:30.
	if got := arrivalAt(t, mux, 0, 1, "08:00"); got != "08:50" {
		t.Fatalf("resumed arrival %s, want 08:50", got)
	}
}
